//===- tests/polybench_golden_test.cpp - Analytic golden results ----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Miss counts that can be derived by hand pin the whole pipeline
// (frontend -> layout -> simulation) to the right absolute numbers, not
// just to simulator-vs-simulator consistency.
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/trace/StackDistance.h"
#include "wcs/trace/TraceGenerator.h"

#include <gtest/gtest.h>

#include <set>

using namespace wcs;

namespace {

/// Distinct blocks a program touches (= cold misses in any big cache).
uint64_t distinctBlocks(const ScopProgram &P) {
  std::set<BlockId> Blocks;
  TraceOptions TO;
  generateTrace(P, TO, [&](const TraceRecord &R) {
    Blocks.insert(R.Addr >> 6);
  });
  return Blocks.size();
}

HierarchyConfig hugeCache() {
  // Big enough that only cold misses remain; fully associative LRU.
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = 1 << 15;
  C.SizeBytes = static_cast<uint64_t>(C.Assoc) * 64;
  C.Policy = PolicyKind::Lru;
  return HierarchyConfig::singleLevel(C);
}

TEST(PolybenchGolden, HugeCacheLeavesExactlyColdMisses) {
  for (const char *Name : {"gemm", "jacobi-2d", "trisolv", "durbin",
                           "doitgen", "nussinov"}) {
    std::string Err;
    ScopProgram P = buildKernel(Name, ProblemSize::Mini, &Err);
    ASSERT_EQ(Err, "") << Name;
    ConcreteSimulator Sim(P, hugeCache());
    SimStats S = Sim.run();
    EXPECT_EQ(S.Level[0].Misses, distinctBlocks(P)) << Name;
    WarpingSimulator Warp(P, hugeCache());
    EXPECT_EQ(Warp.run().Level[0].Misses, distinctBlocks(P)) << Name;
  }
}

TEST(PolybenchGolden, Jacobi1dStreamingMissCount) {
  // jacobi-1d at MINI: TSTEPS=10, N=60. Two 60-double arrays = 2 * 8
  // blocks (block-aligned base, 480 bytes -> blocks 0..7 of each array).
  // In a direct-mapped single-set cache of one line, every access to a
  // different block than the previous one misses; with a huge cache only
  // the 16 cold misses remain.
  std::string Err;
  ScopProgram P = buildKernel("jacobi-1d", ProblemSize::Mini, &Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(distinctBlocks(P), 16u);
  ConcreteSimulator Sim(P, hugeCache());
  EXPECT_EQ(Sim.run().Level[0].Misses, 16u);
}

TEST(PolybenchGolden, GemmFullyAssociativeLruByStackDistance) {
  // The stack-distance oracle and both simulators must agree on
  // fully-associative LRU miss counts for every associativity.
  std::string Err;
  ScopProgram P = buildKernel("gemm", ProblemSize::Mini, &Err);
  ASSERT_EQ(Err, "");
  StackDistanceProfiler Prof = profileProgram(P, 64);
  for (unsigned Lines : {4u, 16u, 64u, 256u}) {
    CacheConfig C;
    C.BlockBytes = 64;
    C.Assoc = Lines;
    C.SizeBytes = static_cast<uint64_t>(Lines) * 64;
    C.Policy = PolicyKind::Lru;
    HierarchyConfig H = HierarchyConfig::singleLevel(C);
    ConcreteSimulator Sim(P, H);
    EXPECT_EQ(Sim.run().Level[0].Misses, Prof.missesForAssoc(Lines))
        << Lines;
  }
}

TEST(PolybenchGolden, MissesDecreaseWithCacheSize) {
  // LRU inclusion property at the kernel level: growing a
  // fully-associative LRU cache never adds misses.
  for (const char *Name : {"atax", "seidel-2d", "lu"}) {
    std::string Err;
    ScopProgram P = buildKernel(Name, ProblemSize::Mini, &Err);
    ASSERT_EQ(Err, "") << Name;
    uint64_t Prev = UINT64_MAX;
    for (unsigned Lines = 2; Lines <= 512; Lines *= 4) {
      CacheConfig C;
      C.BlockBytes = 64;
      C.Assoc = Lines;
      C.SizeBytes = static_cast<uint64_t>(Lines) * 64;
      C.Policy = PolicyKind::Lru;
      ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(C));
      uint64_t M = Sim.run().Level[0].Misses;
      EXPECT_LE(M, Prev) << Name << " at " << Lines << " lines";
      Prev = M;
    }
  }
}

TEST(PolybenchGolden, AccessCountsAreSizeIndependentOfCache) {
  // The access count is a program property; every cache configuration
  // must report the same one.
  std::string Err;
  ScopProgram P = buildKernel("gemver", ProblemSize::Mini, &Err);
  ASSERT_EQ(Err, "");
  uint64_t Expected = 0;
  {
    ConcreteSimulator Sim(P, hugeCache());
    Expected = Sim.run().totalAccesses();
  }
  // gemver at MINI (N=40), scalars excluded: nest1 performs 6 array
  // accesses per (i,j); nests 2 and 4 perform 4 (alpha/beta are
  // scalars); nest3 performs 3 per i.
  EXPECT_EQ(Expected, 40u * 40 * 6 + 40u * 40 * 4 + 40u * 3 + 40u * 40 * 4);
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Plru}) {
    CacheConfig C;
    C.BlockBytes = 64;
    C.Assoc = 4;
    C.SizeBytes = 4 * 8 * 64;
    C.Policy = K;
    ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(C));
    EXPECT_EQ(Sim.run().totalAccesses(), Expected) << policyName(K);
  }
}

} // namespace
