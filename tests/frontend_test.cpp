//===- tests/frontend_test.cpp - Frontend (mini-pet) unit tests ----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

ScopProgram parseOk(const std::string &Src,
                    std::map<std::string, int64_t> Params = {}) {
  ParseResult R = parseScop(Src, Params, "test");
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(R.Program);
}

std::string parseErr(const std::string &Src,
                     std::map<std::string, int64_t> Params = {}) {
  ParseResult R = parseScop(Src, Params, "test");
  EXPECT_FALSE(R.ok()) << "expected a parse error";
  return R.Error;
}

TEST(Frontend, PaperFig1Stencil) {
  ScopProgram P = parseOk(R"(
    int A[1000]; int B[1000];
    for (int i = 1; i < 999; i++)
      B[i-1] = A[i-1] + A[i];
  )");
  ASSERT_EQ(P.accesses().size(), 3u);
  // Reads in right-hand-side order, then the write.
  EXPECT_EQ(P.accesses()[0]->AKind, AccessKind::Read);
  EXPECT_EQ(P.array(P.accesses()[0]->ArrayId).Name, "A");
  EXPECT_EQ(P.accesses()[1]->AKind, AccessKind::Read);
  EXPECT_EQ(P.accesses()[2]->AKind, AccessKind::Write);
  EXPECT_EQ(P.array(P.accesses()[2]->ArrayId).Name, "B");
  // A[i-1]: address = base + 4*(i-1).
  const AccessNode *A0 = P.accesses()[0];
  EXPECT_EQ(A0->Address.eval(IterVec{5}),
            P.array(A0->ArrayId).BaseAddr + 4 * 4);
  // Loop domain: i in [1, 998].
  const LoopNode *L = P.loops()[0];
  auto B = L->Domain.lastDimBounds(IterVec{});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lo, 1);
  EXPECT_EQ(B->Hi, 998);
}

TEST(Frontend, ParameterBindingAndDefaults) {
  ScopProgram P = parseOk(R"(
    param N;
    param M = 7;
    double A[N][M];
    for (i = 0; i < N; i++)
      A[i][M-1] = 0.0;
  )",
                          {{"N", 10}});
  EXPECT_EQ(P.array(0).DimSizes, (std::vector<int64_t>{10, 7}));
  const AccessNode *W = P.accesses()[0];
  EXPECT_EQ(W->Address.eval(IterVec{2}),
            P.array(0).BaseAddr + 8 * (2 * 7 + 6));
  // Binding overrides the default.
  ScopProgram P2 = parseOk("param M = 7; double A[M]; A[0] = 1.0;",
                           {{"M", 3}});
  EXPECT_EQ(P2.array(0).DimSizes, (std::vector<int64_t>{3}));

  EXPECT_NE(parseErr("param N; double A[N]; A[0]=1.0;").find("no binding"),
            std::string::npos);
}

TEST(Frontend, CompoundAssignmentReadsLhsFirst) {
  ScopProgram P = parseOk(R"(
    double C[10]; double A[10];
    for (i = 0; i < 10; i++)
      C[i] += A[i];
  )");
  ASSERT_EQ(P.accesses().size(), 3u);
  EXPECT_EQ(P.array(P.accesses()[0]->ArrayId).Name, "C");
  EXPECT_EQ(P.accesses()[0]->AKind, AccessKind::Read);
  EXPECT_EQ(P.array(P.accesses()[1]->ArrayId).Name, "A");
  EXPECT_EQ(P.accesses()[2]->AKind, AccessKind::Write);
}

TEST(Frontend, TriangularLoopAndFig4Order) {
  ScopProgram P = parseOk(R"(
    param N = 100;
    double c[N]; double A[N][N]; double x[N];
    for (i = 0; i < N; i++) {
      c[i] = 0.0;
      for (j = i; j < N; j++)
        c[i] = c[i] + A[i][j] * x[j];
    }
  )");
  ASSERT_EQ(P.accesses().size(), 5u);
  EXPECT_EQ(P.array(P.accesses()[1]->ArrayId).Name, "c"); // read c[i]
  EXPECT_EQ(P.array(P.accesses()[2]->ArrayId).Name, "A");
  EXPECT_EQ(P.array(P.accesses()[3]->ArrayId).Name, "x");
  EXPECT_EQ(P.array(P.accesses()[4]->ArrayId).Name, "c"); // write c[i]
  const LoopNode *Lj = P.loops()[1];
  EXPECT_FALSE(Lj->Domain.contains(IterVec{5, 4}));
  EXPECT_TRUE(Lj->Domain.contains(IterVec{5, 5}));
}

TEST(Frontend, DescendingLoopIsNormalized) {
  // for (i = 8; i >= 2; i--) A[i] = 0: canonical t in [0, 6], i = 8 - t.
  ScopProgram P = parseOk(R"(
    double A[10];
    for (i = 8; i >= 2; i--)
      A[i] = 0.0;
  )");
  const LoopNode *L = P.loops()[0];
  auto B = L->Domain.lastDimBounds(IterVec{});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lo, 0);
  EXPECT_EQ(B->Hi, 6);
  // At t = 0 the write touches A[8].
  const AccessNode *W = P.accesses()[0];
  EXPECT_EQ(W->Address.eval(IterVec{0}), P.array(0).BaseAddr + 8 * 8);
  EXPECT_EQ(W->Address.eval(IterVec{6}), P.array(0).BaseAddr + 8 * 2);
}

TEST(Frontend, StridedLoopRequiresConstantBounds) {
  ScopProgram P = parseOk(R"(
    double A[100];
    for (i = 0; i < 100; i += 3)
      A[i] = 0.0;
  )");
  const LoopNode *L = P.loops()[0];
  auto B = L->Domain.lastDimBounds(IterVec{});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Hi - B->Lo + 1, 34); // i = 0,3,...,99.
  const AccessNode *W = P.accesses()[0];
  EXPECT_EQ(W->Address.eval(IterVec{2}), P.array(0).BaseAddr + 8 * 6);

  std::string E = parseErr(R"(
    param N = 50; double A[100];
    for (i = 0; i < N; i++)
      for (j = i; j < 100; j += 2)
        A[j] = 0.0;
  )");
  EXPECT_NE(E.find("constant bounds"), std::string::npos);
}

TEST(Frontend, GuardsBecomeDomainConstraints) {
  ScopProgram P = parseOk(R"(
    double A[50];
    for (i = 0; i < 50; i++)
      if (i >= 10 && i < 40)
        A[i] = 0.0;
  )");
  const AccessNode *W = P.accesses()[0];
  EXPECT_TRUE(W->Guarded);
  EXPECT_FALSE(W->Domain.contains(IterVec{9}));
  EXPECT_TRUE(W->Domain.contains(IterVec{10}));
  EXPECT_FALSE(W->Domain.contains(IterVec{40}));
}

TEST(Frontend, CallsReadTheirArguments) {
  ScopProgram P = parseOk(R"(
    double A[10]; double B[10]; double n;
    for (i = 0; i < 10; i++)
      B[i] = max(A[i], sqrt(n));
  )");
  ASSERT_EQ(P.accesses().size(), 3u);
  EXPECT_EQ(P.array(P.accesses()[0]->ArrayId).Name, "A");
  EXPECT_EQ(P.array(P.accesses()[1]->ArrayId).Name, "n");
  EXPECT_TRUE(P.array(P.accesses()[1]->ArrayId).isScalar());
  EXPECT_EQ(P.accesses()[2]->AKind, AccessKind::Write);
}

TEST(Frontend, ScalarReadsAndWrites) {
  ScopProgram P = parseOk(R"(
    double s; double A[10];
    s = 0.0;
    for (i = 0; i < 10; i++)
      s += A[i];
  )");
  // s=0: write s. Loop: read s, read A[i], write s.
  ASSERT_EQ(P.accesses().size(), 4u);
  EXPECT_EQ(P.accesses()[0]->AKind, AccessKind::Write);
  EXPECT_EQ(P.accesses()[0]->Depth, 0u);
  EXPECT_EQ(P.accesses()[1]->AKind, AccessKind::Read);
  EXPECT_TRUE(P.array(P.accesses()[1]->ArrayId).isScalar());
}

TEST(Frontend, IteratorShadowingAcrossNests) {
  ScopProgram P = parseOk(R"(
    double A[10];
    for (i = 0; i < 10; i++)
      A[i] = 0.0;
    for (i = 0; i < 5; i++)
      A[i+1] = 1.0;
  )");
  EXPECT_EQ(P.loops().size(), 2u);
  EXPECT_EQ(P.accesses()[1]->Address.eval(IterVec{3}),
            P.array(0).BaseAddr + 8 * 4);
}

TEST(Frontend, Diagnostics) {
  EXPECT_NE(parseErr("double A[10]; A[0] = B[0];").find("undeclared"),
            std::string::npos);
  EXPECT_NE(parseErr("double A[10]; for (i=0;i<10;i++) A[i*i] = 0.0;")
                .find("non-affine"),
            std::string::npos);
  EXPECT_NE(parseErr("double A[10]; A[0][1] = 0.0;").find("subscripts"),
            std::string::npos);
  EXPECT_NE(
      parseErr("double A[4]; for (i=0;i<4;i++) if (i == 1 || i == 2) "
               "A[i]=0.0;")
          .find("'||'"),
      std::string::npos);
  EXPECT_NE(parseErr("param N = 4; N = 5;").find("read-only"),
            std::string::npos);
  EXPECT_NE(parseErr("double A[10]; for (i = 0; i < 10; i--) A[i]=0.0;")
                .find("descending"),
            std::string::npos);
  EXPECT_NE(parseErr("double A[10]; A[0] = 1.0").find("';'"),
            std::string::npos);
  EXPECT_NE(parseErr("double A[0]; A[0]=1.0;").find("extent"),
            std::string::npos);
  // Lexer-level diagnostics propagate with locations.
  ParseResult R = parseScop("double A[10]; A[0] = #;", {}, "t");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.ErrorLoc.Line, 1);
}

TEST(Frontend, ErrorLocationsAreMeaningful) {
  ParseResult R = parseScop("double A[10];\nfor (i = 0; i < 10; i++)\n"
                            "  A[j] = 0.0;",
                            {}, "t");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.ErrorLoc.Line, 3);
  EXPECT_NE(R.message().find("line 3"), std::string::npos);
}

TEST(Frontend, CommentsAndWhitespace) {
  ScopProgram P = parseOk(R"(
    // array declaration
    double A[10]; /* block
                     comment */
    for (i = 0; i < 10; i++)
      A[i] = 0.0; // trailing
  )");
  EXPECT_EQ(P.accesses().size(), 1u);
}

TEST(Frontend, DivisionByConstantInAffineContext) {
  ScopProgram P = parseOk(R"(
    param N = 64;
    double A[N];
    for (i = 0; i < N / 2; i++)
      A[2*i] = 0.0;
  )");
  auto B = P.loops()[0]->Domain.lastDimBounds(IterVec{});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Hi, 31);
  EXPECT_NE(parseErr("double A[10]; for (i=0;i<10;i++) A[i/2] = 0.0;")
                .find("constant"),
            std::string::npos);
}

} // namespace
