//===- wcs/poly/IntegerSet.h - Unions of convex sets ------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Presburger-lite integer set: a finite union of convex sets. Loop and
/// access iteration domains are represented as IntegerSets. PolyBench
/// domains are single-disjunct; unions arise only from disjunctive guards,
/// which the warping applicability checks treat conservatively.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_POLY_INTEGERSET_H
#define WCS_POLY_INTEGERSET_H

#include "wcs/poly/ConvexSet.h"

#include <string>
#include <vector>

namespace wcs {

/// A finite union of convex integer sets over a common dimension count.
class IntegerSet {
public:
  IntegerSet() = default;
  explicit IntegerSet(ConvexSet S) : Dims(S.numDims()) {
    Parts.push_back(std::move(S));
  }

  static IntegerSet universe(unsigned NumDims) {
    return IntegerSet(ConvexSet::universe(NumDims));
  }

  unsigned numDims() const { return Dims; }
  bool isSingleDisjunct() const { return Parts.size() == 1; }
  const std::vector<ConvexSet> &disjuncts() const { return Parts; }

  /// The unique disjunct; asserts isSingleDisjunct().
  const ConvexSet &onlyDisjunct() const;

  void addDisjunct(ConvexSet S);

  /// Intersects every disjunct with \p S (dimensions must match).
  void intersectWith(const ConvexSet &S);

  IntegerSet extendedTo(unsigned NumDims) const;

  bool contains(const IterVec &At) const;

  /// Union of per-disjunct bounds of the last dimension under \p Prefix
  /// (the hull interval; exact for single disjuncts). Membership inside
  /// the hull must be re-tested with contains() when there are multiple
  /// disjuncts.
  std::optional<VarBounds> lastDimBounds(const IterVec &Prefix) const;

  std::string str(const std::vector<std::string> &DimNames = {}) const;

private:
  unsigned Dims = 0;
  std::vector<ConvexSet> Parts;
};

} // namespace wcs

#endif // WCS_POLY_INTEGERSET_H
