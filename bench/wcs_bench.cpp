//===- bench/wcs_bench.cpp - Machine-readable benchmark driver ------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Runs the kernels behind the paper's headline performance figures and
// writes every result -- wall time plus the full warp counters -- as one
// wcs-results JSON file (default BENCH_results.json). The file is the
// input to wcs-report, which diffs two runs and gates CI on counter
// drift and time regressions. Three suites:
//
//   fig06        warping vs non-warping per replacement policy (scaled L1)
//   fig07        warping vs non-warping at the chosen size and the next
//                larger
//   fig07-sweep  single-pass capacity sweep (stack-distance fast path)
//                vs independent per-config warping runs
//   fig07-warp-sweep
//                the same capacity ladder through the warp-aware
//                periodic pass (trace/PeriodicPass, forced on): the
//                sweep must beat the SUM of independent warping runs
//                -- the crossover the linear pass loses at large
//                problem sizes -- while staying bit-identical per point
//   fig09-hier   two-level NINE grid through the filtered-stream engine
//                (one recorded L1-miss stream per distinct L1; L2s
//                answered from conditioned stack-distance banks or
//                stream replays) vs independent per-point concrete runs
//   fig12        non-warping tree simulation vs trace-driven simulation
//                (LRU)
//   hotloop      end-to-end accesses-per-second of the concrete backend:
//                batched address generation + policy-templated SoA cache
//                vs the per-access reference walk (BatchConcrete off),
//                bit-identical counters enforced, >= 2x aggregate
//                throughput required in the CI gate configuration
//
// Every warping/concrete and concrete/trace pair is verified to produce
// identical miss counters before the file is written, so a results file
// never contains an unsound speedup. The sweep suites additionally
// verify that every fast-path miss count equals its independently
// simulated twin, and abort unless the sweep beats the independent runs
// it replaces in aggregate: >= 3x for the fig07-sweep single pass (see
// ISSUE 3), >= 2x for the fig09-hier filtered-stream engine (ISSUE 4),
// >= 1x -- strictly better than the runs it replaces -- for the
// fig07-warp-sweep periodic pass (ISSUE 5).
//
//   wcs-bench --size small --out BENCH_results.json
//   wcs-bench --suite fig06 --suite fig12 --jobs 4
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/driver/Results.h"
#include "wcs/driver/Sweep.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/support/StringUtil.h"
#include "wcs/support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iterator>
#include <map>
#include <string>
#include <vector>

using namespace wcs;
using namespace wcs::bench;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: wcs-bench [options]\n"
      "  --size S         mini|small|medium|large|xlarge (default small)\n"
      "  --out FILE       results file to write (default "
      "BENCH_results.json)\n"
      "  --suite NAME     fig06|fig07|fig07-sweep|fig07-warp-sweep|"
      "fig09-hier|fig12|hotloop; repeatable (default: all)\n"
      "  --jobs N         worker threads (0 = all cores; defaults to\n"
      "                   $WCS_JOBS, else 1 for clean timings; an\n"
      "                   explicit --jobs beats the environment)\n"
      "  --reps N         time the main batch N times (default 1); every\n"
      "                   entry records its per-rep wall-time samples and\n"
      "                   reports their mean, so wcs-report --check can\n"
      "                   gate against measured noise instead of one draw\n"
      "  --trace-json FILE\n"
      "                   record spans and write a Chrome trace-event\n"
      "                   file on exit (NOT for gated timings: the\n"
      "                   tracer, while cheap, is not free)\n");
}

/// --trace-json sink, written via atexit so every exit path flushes.
std::string TraceJsonPath;

void writeTraceAtExit() {
  std::string Err;
  if (!telemetry::writeTraceFile(TraceJsonPath, &Err))
    std::fprintf(stderr, "error: %s\n", Err.c_str());
  else
    std::fprintf(stderr, "trace: wrote %s\n", TraceJsonPath.c_str());
}

/// Builds each (kernel, size) program once; std::deque keeps addresses
/// stable while jobs accumulate pointers into it.
class ProgramPool {
public:
  const ScopProgram *get(const KernelInfo &K, ProblemSize S) {
    auto Key = std::make_pair(std::string(K.Name), S);
    auto It = Index.find(Key);
    if (It != Index.end())
      return &Programs[It->second];
    Programs.push_back(mustBuild(K, S));
    Index.emplace(std::move(Key), Programs.size() - 1);
    return &Programs.back();
  }

private:
  std::deque<ScopProgram> Programs;
  std::map<std::pair<std::string, ProblemSize>, size_t> Index;
};

/// A pair of job indices whose counters must agree (warping vs concrete,
/// or tree vs trace), plus the kernel name for diagnostics and the suite
/// it belongs to (for the per-suite summary).
struct VerifyPair {
  size_t Slow, Fast;
  const char *Kernel;
  unsigned Suite;
};

const char *const SuiteNames[] = {"fig06", "fig07", "fig12"};
constexpr unsigned NumSuites = 3;

/// The capacity axis of the fig07-sweep suite: fully-associative LRU
/// (the HayStack cache model) from 512 B to 256 KiB, doubling -- ten
/// points, all answered from ONE stack-distance pass per kernel while
/// the independent baseline pays one warping simulation per point.
/// 256 KiB is the largest capacity whose fully-associative twin stays
/// within the 4096-way LRU limit at 64 B lines.
std::vector<uint64_t> sweepCapacities() {
  std::vector<uint64_t> Sizes;
  for (uint64_t S = 512; S <= 256 * 1024; S *= 2)
    Sizes.push_back(S);
  return Sizes;
}

std::string capacityName(uint64_t Bytes) {
  return Bytes % 1024 == 0 ? std::to_string(Bytes / 1024) + "K"
                           : std::to_string(Bytes) + "B";
}

CacheConfig sweepPointConfig(uint64_t Bytes) {
  CacheConfig C;
  C.SizeBytes = Bytes;
  C.BlockBytes = 64;
  C.Assoc = static_cast<unsigned>(Bytes / 64); // Fully associative.
  C.Policy = PolicyKind::Lru;
  return C;
}

ProblemSize nextLarger(ProblemSize S) {
  unsigned I = static_cast<unsigned>(S);
  return I + 1 < NumProblemSizes ? static_cast<ProblemSize>(I + 1) : S;
}

/// The fig09-hier grid: two L1 configurations (the scaled test-system
/// PLRU L1 and its LRU twin) crossed with a six-point L2 axis, all
/// NINE, so six L2 points share each recorded L1 stream. The LRU leg is
/// a capacity ladder at a FIXED set count (8K/4-way .. 64K/32-way, all
/// 32 sets): one conditioned stack-distance bank per L1 answers all
/// four associativities at once (Mattson's inclusion property over the
/// filtered stream). The two QLRU points exercise the replay path.
std::vector<HierarchyConfig> hierGrid() {
  std::vector<HierarchyConfig> Grid;
  CacheConfig L1s[2] = {CacheConfig::scaledL1(), CacheConfig::scaledL1()};
  L1s[1].Policy = PolicyKind::Lru;
  for (const CacheConfig &L1 : L1s) {
    for (unsigned Assoc : {4u, 8u, 16u, 32u}) {
      CacheConfig L2{static_cast<uint64_t>(Assoc) * 32 * 64, Assoc, 64,
                     PolicyKind::Lru, WriteAllocate::Yes};
      Grid.push_back(HierarchyConfig::twoLevel(L1, L2));
    }
    for (uint64_t L2Bytes : {8u * 1024, 32u * 1024}) {
      CacheConfig L2{L2Bytes, 16, 64, PolicyKind::QuadAgeLru,
                     WriteAllocate::Yes};
      Grid.push_back(HierarchyConfig::twoLevel(L1, L2));
    }
  }
  return Grid;
}

/// Compact per-point tag segment, e.g. "plru4K+qlru32K".
std::string hierPointTag(const HierarchyConfig &H) {
  return toLowerAscii(policyName(H.Levels[0].Policy)) +
         capacityName(H.Levels[0].SizeBytes) + "+" +
         toLowerAscii(policyName(H.Levels[1].Policy)) +
         capacityName(H.Levels[1].SizeBytes);
}

} // namespace

int main(int argc, char **argv) {
  ProblemSize Size = ProblemSize::Small;
  std::string OutPath = "BENCH_results.json";
  std::vector<std::string> Suites;
  // $WCS_JOBS seeds the default; an explicit --jobs takes precedence.
  unsigned Jobs = jobsFromEnv(1);
  unsigned Reps = 1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--size") {
      if (!parseProblemSize(Next(), Size)) {
        std::fprintf(stderr, "error: unknown size\n");
        return 2;
      }
    } else if (A == "--out") {
      OutPath = Next();
    } else if (A == "--suite") {
      std::string S = Next();
      if (S != "fig06" && S != "fig07" && S != "fig07-sweep" &&
          S != "fig07-warp-sweep" && S != "fig09-hier" && S != "fig12" &&
          S != "hotloop") {
        std::fprintf(stderr, "error: unknown suite '%s'\n", S.c_str());
        return 2;
      }
      Suites.push_back(std::move(S));
    } else if (A == "--jobs") {
      const char *N = Next();
      if (!parseJobCount(N, Jobs)) {
        std::fprintf(stderr,
                     "error: --jobs expects a non-negative number, got "
                     "'%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--reps") {
      const char *N = Next();
      if (!parseJobCount(N, Reps) || Reps == 0) {
        std::fprintf(stderr,
                     "error: --reps expects a positive number, got "
                     "'%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--trace-json") {
      if (TraceJsonPath.empty()) {
        telemetry::enableTracing();
        std::atexit(writeTraceAtExit);
      }
      TraceJsonPath = Next();
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (Suites.empty())
    Suites = {"fig06",           "fig07",      "fig07-sweep",
              "fig07-warp-sweep", "fig09-hier", "fig12",
              "hotloop"};
  auto HasSuite = [&](const char *Name) {
    for (const std::string &S : Suites)
      if (S == Name)
        return true;
    return false;
  };

  ProgramPool Pool;
  std::vector<BatchJob> Work;
  std::vector<VerifyPair> Pairs;
  const std::vector<KernelInfo> &Kernels = polybenchKernels();

  auto pushPair = [&](unsigned Suite, const KernelInfo &K, ProblemSize S,
                      const HierarchyConfig &H, SimBackend SlowBackend,
                      SimBackend FastBackend, std::string TagPrefix) {
    BatchJob J;
    J.Program = Pool.get(K, S);
    J.Cache = H;
    J.Backend = SlowBackend;
    J.Tag = TagPrefix + "/" + backendName(SlowBackend);
    Work.push_back(J);
    J.Backend = FastBackend;
    J.Tag = TagPrefix + "/" + backendName(FastBackend);
    Work.push_back(std::move(J));
    Pairs.push_back(
        VerifyPair{Work.size() - 2, Work.size() - 1, K.Name, Suite});
  };

  if (HasSuite("fig06")) {
    const PolicyKind Policies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                   PolicyKind::Plru,
                                   PolicyKind::QuadAgeLru};
    for (const KernelInfo &K : Kernels)
      for (PolicyKind P : Policies) {
        CacheConfig C = CacheConfig::scaledL1();
        C.Policy = P;
        pushPair(0, K, Size, HierarchyConfig::singleLevel(C),
                 SimBackend::Concrete, SimBackend::Warping,
                 std::string("fig06/") + K.Name + "/" + policyName(P));
      }
  }
  if (HasSuite("fig07")) {
    HierarchyConfig H = HierarchyConfig::singleLevel(CacheConfig::scaledL1());
    ProblemSize Sizes[2] = {Size, nextLarger(Size)};
    unsigned NumSizes = Sizes[0] == Sizes[1] ? 1 : 2;
    for (const KernelInfo &K : Kernels)
      for (unsigned SI = 0; SI < NumSizes; ++SI)
        pushPair(1, K, Sizes[SI], H, SimBackend::Concrete,
                 SimBackend::Warping,
                 std::string("fig07/") + K.Name + "/" +
                     problemSizeName(Sizes[SI]));
  }
  // fig07-sweep independent baseline: one warping job per capacity
  // point, riding in the main batch. The sweeps themselves run after
  // the batch (each is a single shared trace pass, measured serially).
  struct SweepKernelRef {
    const char *Kernel;
    const ScopProgram *Program;
    size_t FirstJob; ///< Index of the kernel's first indep job in Work.
  };
  std::vector<SweepKernelRef> SweepKernels;
  const std::vector<uint64_t> Caps = sweepCapacities();
  if (HasSuite("fig07-sweep")) {
    for (const KernelInfo &K : Kernels) {
      SweepKernels.push_back(
          SweepKernelRef{K.Name, Pool.get(K, Size), Work.size()});
      for (uint64_t Cap : Caps) {
        BatchJob J;
        J.Program = SweepKernels.back().Program;
        J.Cache = HierarchyConfig::singleLevel(sweepPointConfig(Cap));
        J.Backend = SimBackend::Warping;
        J.Tag = std::string("fig07-sweep/") + K.Name + "/" +
                capacityName(Cap) + "/indep";
        Work.push_back(std::move(J));
      }
    }
  }

  // fig07-warp-sweep independent baseline: one warping job per capacity
  // point (its own tag namespace; the suite can run without
  // fig07-sweep). The periodic-pass sweeps run after the batch.
  std::vector<SweepKernelRef> WarpSweepKernels;
  if (HasSuite("fig07-warp-sweep")) {
    for (const KernelInfo &K : Kernels) {
      WarpSweepKernels.push_back(
          SweepKernelRef{K.Name, Pool.get(K, Size), Work.size()});
      for (uint64_t Cap : Caps) {
        BatchJob J;
        J.Program = WarpSweepKernels.back().Program;
        J.Cache = HierarchyConfig::singleLevel(sweepPointConfig(Cap));
        J.Backend = SimBackend::Warping;
        J.Tag = std::string("fig07-warp-sweep/") + K.Name + "/" +
                capacityName(Cap) + "/indep";
        Work.push_back(std::move(J));
      }
    }
  }

  // fig09-hier independent baseline: one concrete two-level job per
  // grid point, riding in the main batch. The filtered-stream sweeps
  // run after the batch (one recorded stream per L1, measured serially).
  struct HierKernelRef {
    const char *Kernel;
    const ScopProgram *Program;
    size_t FirstJob; ///< Index of the kernel's first indep job in Work.
  };
  std::vector<HierKernelRef> HierKernels;
  const std::vector<HierarchyConfig> HierGrid = hierGrid();
  if (HasSuite("fig09-hier")) {
    for (const KernelInfo &K : Kernels) {
      HierKernels.push_back(
          HierKernelRef{K.Name, Pool.get(K, Size), Work.size()});
      for (const HierarchyConfig &H : HierGrid) {
        BatchJob J;
        J.Program = HierKernels.back().Program;
        J.Cache = H;
        J.Backend = SimBackend::Concrete;
        J.Tag = std::string("fig09-hier/") + K.Name + "/" +
                hierPointTag(H) + "/indep";
        Work.push_back(std::move(J));
      }
    }
  }

  if (HasSuite("fig12")) {
    CacheConfig C = CacheConfig::scaledL1();
    C.Policy = PolicyKind::Lru; // Trace simulators model LRU, not PLRU.
    HierarchyConfig H = HierarchyConfig::singleLevel(C);
    for (const KernelInfo &K : Kernels)
      pushPair(2, K, Size, H, SimBackend::Trace, SimBackend::Concrete,
               std::string("fig12/") + K.Name);
  }

  std::fprintf(stderr, "wcs-bench: %zu jobs (%zu verified pairs), size %s\n",
               Work.size(), Pairs.size(), problemSizeName(Size));
  BatchReport Rep = runBatchOn(Work, Jobs);

  // Soundness first: a results file must never record a speedup obtained
  // from diverging counters.
  for (const VerifyPair &P : Pairs)
    requireEqualMisses(P.Kernel, Rep.Results[P.Slow].Stats,
                       Rep.Results[P.Fast].Stats);

  // --reps: re-time the whole batch so every entry carries a wall-time
  // sample distribution (wcs-report's noise-aware gate needs more than
  // one draw to estimate anything). Counters must not move between
  // repetitions -- a drift here is a determinism bug, not noise.
  std::vector<std::vector<double>> BatchSamples(Work.size());
  for (size_t J = 0; J < Work.size(); ++J)
    BatchSamples[J].push_back(Rep.Results[J].Stats.Seconds);
  for (unsigned R = 1; R < Reps; ++R) {
    std::fprintf(stderr, "wcs-bench: timing rep %u/%u\n", R + 1, Reps);
    BatchReport Again = runBatchOn(Work, Jobs);
    for (size_t J = 0; J < Work.size(); ++J) {
      requireEqualMisses(Work[J].Tag.c_str(), Rep.Results[J].Stats,
                         Again.Results[J].Stats);
      BatchSamples[J].push_back(Again.Results[J].Stats.Seconds);
    }
  }

  // The sweep suite: per kernel, answer all capacity points from one
  // stack-distance pass, verify bit-identity against the independent
  // runs, and enforce the subsystem's >= 3x aggregate-speedup contract.
  std::vector<ResultEntry> SweepEntries;
  if (!SweepKernels.empty()) {
    std::vector<HierarchyConfig> Grid;
    for (uint64_t Cap : Caps)
      Grid.push_back(HierarchyConfig::singleLevel(sweepPointConfig(Cap)));
    double IndepTotal = 0.0, SweepTotal = 0.0;
    GeoMean PerKernel;
    for (const SweepKernelRef &SK : SweepKernels) {
      SweepOptions SO;
      SO.Threads = 1;
      SweepReport SRep = runSweep(*SK.Program, Grid, SO);
      double Indep = 0.0;
      for (size_t CI = 0; CI < Caps.size(); ++CI) {
        const SweepPoint &Pt = SRep.Points[CI];
        if (!Pt.Ok) {
          std::fprintf(stderr, "fatal: sweep point %s of %s failed: %s\n",
                       Pt.Cache.str().c_str(), SK.Kernel,
                       Pt.Error.c_str());
          return 1;
        }
        const BatchResult &IR = Rep.Results[SK.FirstJob + CI];
        // Soundness: the analytical fast path must agree with the
        // simulation it replaces, point for point.
        requireEqualMisses(SK.Kernel, IR.Stats, Pt.Stats);
        Indep += IR.Stats.Seconds;
        ResultEntry E;
        E.Tag = std::string("fig07-sweep/") + SK.Kernel + "/" +
                capacityName(Caps[CI]) + "/sweep";
        E.Backend = SimBackend::StackDistance;
        E.Cache = Pt.Cache;
        E.Ok = true;
        E.Stats = Pt.Stats;
        SweepEntries.push_back(std::move(E));
      }
      IndepTotal += Indep;
      SweepTotal += SRep.WallSeconds;
      if (SRep.WallSeconds > 0)
        PerKernel.add(Indep / SRep.WallSeconds);
    }
    double Aggregate = SweepTotal > 0 ? IndepTotal / SweepTotal : 0.0;
    std::printf("fig07-sweep: %zu kernels x %zu capacities, aggregate "
                "sweep speedup %.2fx (per-kernel geomean %.2fx)\n",
                SweepKernels.size(), Caps.size(), Aggregate,
                PerKernel.count() ? PerKernel.value() : 0.0);
    // The 3x contract is defined for the configuration the CI gate
    // runs: serial jobs (--jobs 1, so the independent runs are timed
    // without contention) at the gate sizes (measured: ~17x at small,
    // ~10x at medium). At large sizes warping's cost shrinks with
    // regularity while the shared pass stays linear in trace length,
    // and under --jobs N the independent jobs time each other; in both
    // cases the number is reported but not enforced (see ROADMAP:
    // warp-aware sweeping).
    if (Jobs != 1) // 0 = all cores, also contended.
      std::printf("fig07-sweep: speedup not enforced (independent runs "
                  "timed under --jobs %u contention)\n",
                  Jobs);
    if (Jobs == 1 && Size <= ProblemSize::Medium && Aggregate < 3.0) {
      std::fprintf(stderr,
                   "fatal: fig07-sweep aggregate speedup %.2fx is below "
                   "the 3x single-pass contract (%zu capacity points "
                   "per pass)\n",
                   Aggregate, Caps.size());
      return 1;
    }
  }

  // The warp-aware sweep suite: the same capacity ladder, answered by
  // the periodic pass (forced on, so CI exercises the warp-scaled
  // histogram machinery at every size). The contract inverts the
  // crossover the linear pass loses: ONE warping depth-profile run at
  // the ladder's largest associativity must undercut the SUM of the
  // independent warping runs it replaces -- which it does structurally,
  // since that sum contains the same largest-associativity run plus
  // nine cheaper ones -- while every point stays bit-identical.
  if (!WarpSweepKernels.empty()) {
    std::vector<HierarchyConfig> Grid;
    for (uint64_t Cap : Caps)
      Grid.push_back(HierarchyConfig::singleLevel(sweepPointConfig(Cap)));
    double IndepTotal = 0.0, SweepTotal = 0.0;
    GeoMean PerKernel;
    uint64_t Warps = 0;
    for (const SweepKernelRef &SK : WarpSweepKernels) {
      SweepOptions SO;
      SO.Threads = 1;
      SO.WarpSweepMinAccesses = 0; // Force the periodic flavor.
      SweepReport SRep = runSweep(*SK.Program, Grid, SO);
      if (!SRep.PeriodicPass) {
        std::fprintf(stderr,
                     "fatal: fig07-warp-sweep of %s did not take the "
                     "periodic pass\n",
                     SK.Kernel);
        return 1;
      }
      Warps += SRep.PeriodicWarps;
      double Indep = 0.0;
      for (size_t CI = 0; CI < Caps.size(); ++CI) {
        const SweepPoint &Pt = SRep.Points[CI];
        if (!Pt.Ok) {
          std::fprintf(stderr,
                       "fatal: warp-sweep point %s of %s failed: %s\n",
                       Pt.Cache.str().c_str(), SK.Kernel,
                       Pt.Error.c_str());
          return 1;
        }
        const BatchResult &IR = Rep.Results[SK.FirstJob + CI];
        // Soundness: the warp-scaled histogram must agree with the
        // simulation it replaces, point for point.
        requireEqualMisses(SK.Kernel, IR.Stats, Pt.Stats);
        Indep += IR.Stats.Seconds;
        ResultEntry E;
        E.Tag = std::string("fig07-warp-sweep/") + SK.Kernel + "/" +
                capacityName(Caps[CI]) + "/sweep";
        E.Backend = SimBackend::StackDistance;
        E.Cache = Pt.Cache;
        E.Ok = true;
        E.Stats = Pt.Stats;
        SweepEntries.push_back(std::move(E));
      }
      IndepTotal += Indep;
      SweepTotal += SRep.WallSeconds;
      if (SRep.WallSeconds > 0)
        PerKernel.add(Indep / SRep.WallSeconds);
    }
    double Aggregate = SweepTotal > 0 ? IndepTotal / SweepTotal : 0.0;
    std::printf("fig07-warp-sweep: %zu kernels x %zu capacities, "
                "aggregate periodic-pass speedup %.2fx (per-kernel "
                "geomean %.2fx, %llu warps)\n",
                WarpSweepKernels.size(), Caps.size(), Aggregate,
                PerKernel.count() ? PerKernel.value() : 0.0,
                static_cast<unsigned long long>(Warps));
    // The contract: the sweep must beat the independent runs it
    // replaces. Enforced in the CI gate's configuration (serial jobs,
    // gate sizes); elsewhere reported only, like the other suites.
    if (Jobs != 1)
      std::printf("fig07-warp-sweep: speedup not enforced (independent "
                  "runs timed under --jobs %u contention)\n",
                  Jobs);
    if (Jobs == 1 && Size <= ProblemSize::Medium && Aggregate < 1.0) {
      std::fprintf(stderr,
                   "fatal: fig07-warp-sweep aggregate speedup %.2fx "
                   "fails the >= 1x periodic-pass contract (the sweep "
                   "must beat the %zu warping runs it replaces)\n",
                   Aggregate, Caps.size());
      return 1;
    }
  }

  // The hierarchy suite: per kernel, run the two-level NINE grid
  // through the filtered-stream engine, verify bit-identity against the
  // independent concrete runs, and enforce the engine's >= 2x
  // aggregate-speedup contract (ISSUE 4): the grid shares each L1's
  // recorded stream across four L2 points, so the engine pays two L1
  // simulations plus cheap bank/replay work where the baseline pays
  // eight full two-level simulations.
  if (!HierKernels.empty()) {
    // The speedup contract -- and the demand that every point actually
    // ride the engine -- applies in the CI gate's configuration:
    // serial jobs at the gate sizes. At larger sizes a recording may
    // legitimately overrun the stream-memory cap and demote its group
    // to plain simulation; that is the engine's designed fallback, so
    // it is counted and reported, not fatal.
    const bool Enforced = Jobs == 1 && Size <= ProblemSize::Medium;
    double IndepTotal = 0.0, SweepTotal = 0.0;
    GeoMean PerKernel;
    size_t Demoted = 0;
    for (const HierKernelRef &HK : HierKernels) {
      SweepOptions SO;
      SO.Threads = 1;
      SweepReport SRep = runSweep(*HK.Program, HierGrid, SO);
      double Indep = 0.0;
      for (size_t PI = 0; PI < HierGrid.size(); ++PI) {
        const SweepPoint &Pt = SRep.Points[PI];
        if (!Pt.Ok) {
          std::fprintf(stderr, "fatal: hier point %s of %s failed: %s\n",
                       Pt.Cache.str().c_str(), HK.Kernel,
                       Pt.Error.c_str());
          return 1;
        }
        if (Pt.Method != SweepMethod::FilteredStream) {
          if (Enforced) {
            std::fprintf(stderr,
                         "fatal: hier point %s of %s took method %s, "
                         "not the filtered-stream engine\n",
                         Pt.Cache.str().c_str(), HK.Kernel,
                         sweepMethodName(Pt.Method));
            return 1;
          }
          ++Demoted;
        }
        const BatchResult &IR = Rep.Results[HK.FirstJob + PI];
        // Soundness: the engine must agree with the full simulation it
        // replaces, point for point.
        requireEqualMisses(HK.Kernel, IR.Stats, Pt.Stats);
        Indep += IR.Stats.Seconds;
        ResultEntry E;
        E.Tag = std::string("fig09-hier/") + HK.Kernel + "/" +
                hierPointTag(Pt.Cache) + "/sweep";
        E.Backend = Pt.Backend;
        E.Cache = Pt.Cache;
        E.Ok = true;
        E.Stats = Pt.Stats;
        SweepEntries.push_back(std::move(E));
      }
      IndepTotal += Indep;
      SweepTotal += SRep.WallSeconds;
      if (SRep.WallSeconds > 0)
        PerKernel.add(Indep / SRep.WallSeconds);
    }
    double Aggregate = SweepTotal > 0 ? IndepTotal / SweepTotal : 0.0;
    std::printf("fig09-hier: %zu kernels x %zu grid points, aggregate "
                "filtered-stream speedup %.2fx (per-kernel geomean "
                "%.2fx)\n",
                HierKernels.size(), HierGrid.size(), Aggregate,
                PerKernel.count() ? PerKernel.value() : 0.0);
    if (Demoted)
      std::printf("fig09-hier: %zu point(s) fell back to full "
                  "simulation (stream cap); counters still verified\n",
                  Demoted);
    // Like fig07-sweep, the contract is defined for the CI gate's
    // configuration: serial jobs (the baseline timed without
    // contention) at the gate sizes. Elsewhere the number is reported
    // but not enforced.
    if (Jobs != 1)
      std::printf("fig09-hier: speedup not enforced (independent runs "
                  "timed under --jobs %u contention)\n",
                  Jobs);
    if (Enforced && Aggregate < 2.0) {
      std::fprintf(stderr,
                   "fatal: fig09-hier aggregate speedup %.2fx is below "
                   "the 2x filtered-stream contract (%zu-point L1-shared "
                   "grid)\n",
                   Aggregate, HierGrid.size());
      return 1;
    }
  }

  // The hot-loop suite: end-to-end accesses-per-second of the concrete
  // backend, batched (BatchConcrete on: stride-generated address chunks
  // through the policy-templated SoA cache) against the per-access
  // reference walk (BatchConcrete off). Both runs are timed serially and
  // verified bit-identical; the overhaul's >= 2x throughput contract is
  // enforced in the CI gate configuration (serial jobs, gate sizes).
  // All four policies of the scaled L1 are covered, same as fig06: LRU
  // exercises the recency memmove, the fixed-way policies the mask scan
  // and metadata updates.
  if (HasSuite("hotloop")) {
    double ScalarSeconds = 0.0, BatchSeconds = 0.0;
    uint64_t ScalarAccesses = 0, BatchAccesses = 0;
    std::vector<ResultEntry> HotEntries;
    const PolicyKind HotPolicies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                      PolicyKind::Plru,
                                      PolicyKind::QuadAgeLru};
    for (const KernelInfo &K : Kernels) {
      const ScopProgram *P = Pool.get(K, Size);
      for (PolicyKind Pol : HotPolicies) {
        CacheConfig C = CacheConfig::scaledL1();
        C.Policy = Pol;
        HierarchyConfig H = HierarchyConfig::singleLevel(C);
        SimOptions ScalarOpts;
        ScalarOpts.BatchConcrete = false;
        SimStats A = ConcreteSimulator(*P, H, ScalarOpts).run();
        SimStats B = ConcreteSimulator(*P, H).run();
        requireEqualMisses(K.Name, A, B);
        ScalarSeconds += A.Seconds;
        BatchSeconds += B.Seconds;
        ScalarAccesses += A.SimulatedAccesses;
        BatchAccesses += B.SimulatedAccesses;
        std::string Prefix = std::string("hotloop/") + K.Name + "/" +
                             toLowerAscii(policyName(Pol)) + "/";
        ResultEntry E;
        E.Backend = SimBackend::Concrete;
        E.Cache = H;
        E.Ok = true;
        E.Tag = Prefix + "scalar";
        E.Stats = A;
        HotEntries.push_back(E);
        E.Tag = Prefix + "batched";
        E.Stats = B;
        HotEntries.push_back(std::move(E));
      }
    }
    double ScalarAps =
        ScalarSeconds > 0 ? ScalarAccesses / ScalarSeconds : 0.0;
    double BatchAps = BatchSeconds > 0 ? BatchAccesses / BatchSeconds : 0.0;
    double Speedup = ScalarAps > 0 ? BatchAps / ScalarAps : 0.0;
    std::printf("hotloop: %zu kernels x %zu policies, %.1fM -> %.1fM "
                "accesses/s (%.2fx batched speedup)\n",
                Kernels.size(), std::size(HotPolicies), ScalarAps / 1e6,
                BatchAps / 1e6, Speedup);
    if (Jobs == 1 && Size <= ProblemSize::Medium && Speedup < 2.0) {
      std::fprintf(stderr,
                   "fatal: hotloop batched throughput %.2fx is below the "
                   "2x hot-loop overhaul contract\n",
                   Speedup);
      return 1;
    }
    SweepEntries.insert(SweepEntries.end(),
                        std::make_move_iterator(HotEntries.begin()),
                        std::make_move_iterator(HotEntries.end()));
  }

  // Per-suite geomean of slow/fast time ratios (the headline numbers).
  GeoMean BySuite[NumSuites];
  for (const VerifyPair &P : Pairs)
    if (Rep.Results[P.Fast].Stats.Seconds > 0)
      BySuite[P.Suite].add(Rep.Results[P.Slow].Stats.Seconds /
                           Rep.Results[P.Fast].Stats.Seconds);
  for (unsigned S = 0; S < NumSuites; ++S)
    if (BySuite[S].count())
      std::printf("%s: %u pairs, geomean speedup %.2fx\n", SuiteNames[S],
                  BySuite[S].count(), BySuite[S].value());

  ResultsDoc Doc;
  Doc.Tool = "wcs-bench";
  Doc.SizeName = problemSizeName(Size);
  Doc.Threads = Rep.Threads;
  Doc.Entries = makeResultEntries(Work, Rep);
  // Multi-rep entries report the mean of their samples as the headline
  // wall time (pre-reps readers keep working) and carry the raw samples
  // for the noise-aware gate. The post-batch suites (sweeps, hotloop)
  // time serially once and stay single-sample.
  if (Reps > 1)
    for (size_t J = 0; J < Work.size(); ++J) {
      MeanStddev MS;
      for (double S : BatchSamples[J])
        MS.add(S);
      Doc.Entries[J].Samples = std::move(BatchSamples[J]);
      Doc.Entries[J].Stats.Seconds = MS.mean();
    }
  Doc.Entries.insert(Doc.Entries.end(),
                     std::make_move_iterator(SweepEntries.begin()),
                     std::make_move_iterator(SweepEntries.end()));
  std::string Err;
  if (!writeResultsFile(OutPath, Doc, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("wrote %zu entries to %s\n", Doc.Entries.size(),
              OutPath.c_str());
  return 0;
}
