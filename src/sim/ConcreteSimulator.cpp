//===- sim/ConcreteSimulator.cpp ------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/sim/ConcreteSimulator.h"

#include "wcs/support/MathUtil.h"
#include "wcs/support/Telemetry.h"

#include <cassert>
#include <sstream>

using namespace wcs;

std::string SimStats::str() const {
  std::ostringstream OS;
  OS << "accesses=" << totalAccesses();
  for (unsigned L = 0; L < NumLevels; ++L)
    OS << " L" << L + 1 << "-misses=" << Level[L].Misses;
  OS << " simulated=" << SimulatedAccesses << " warped=" << WarpedAccesses
     << " warps=" << Warps;
  return OS.str();
}

ConcreteSimulator::ConcreteSimulator(const ScopProgram &Program,
                                     const HierarchyConfig &CacheCfg,
                                     SimOptions Options)
    : Program(Program), Cache(CacheCfg), Options(Options),
      BlockShift(log2Exact(CacheCfg.blockBytes())) {
  Stats.NumLevels = CacheCfg.numLevels();
}

SimStats ConcreteSimulator::run() {
  telemetry::TimePoint Start = telemetry::now();
  // The full tap observes every access individually, so batching (which
  // never materializes per-access outcomes) is reserved for untapped
  // runs. A miss tap is fine: the batch loop calls it from the miss
  // branch only.
  UseBatch = Options.BatchConcrete && !Tap;
  IterVec Iter;
  for (const std::unique_ptr<Node> &R : Program.roots())
    simulateNode(R.get(), Iter);
  Stats.Seconds = telemetry::secondsSince(Start);
  return Stats;
}

void ConcreteSimulator::simulateNode(const Node *N, IterVec &Iter) {
  if (const LoopNode *L = asLoop(N))
    simulateLoop(L, Iter);
  else
    simulateAccess(asAccess(N), Iter);
}

void ConcreteSimulator::simulateLoop(const LoopNode *L, IterVec &Iter) {
  std::optional<VarBounds> B = L->Domain.lastDimBounds(Iter);
  assert(B && "loop domain must be bounded");
  if (B->empty())
    return;
  // Domains with several disjuncts may have holes inside the hull; test
  // membership per iteration in that case (Algorithm 1 line 5).
  bool NeedMembership = !L->Domain.isSingleDisjunct();
  if (UseBatch && !NeedMembership && loopIsBatchable(L)) {
    simulateLoopBatched(L, Iter, B->Lo, B->Hi);
    return;
  }
  Iter.push(0);
  for (int64_t X = B->Lo; X <= B->Hi; ++X) {
    Iter.back() = X;
    if (NeedMembership && !L->Domain.contains(Iter))
      continue;
    for (const std::unique_ptr<Node> &C : L->Children)
      simulateNode(C.get(), Iter);
  }
  Iter.pop();
}

bool ConcreteSimulator::loopIsBatchable(const LoopNode *L) const {
  for (const std::unique_ptr<Node> &C : L->Children) {
    const AccessNode *A = asAccess(C.get());
    if (!A || A->Guarded)
      return false;
  }
  return true;
}

void ConcreteSimulator::simulateLoopBatched(const LoopNode *L, IterVec &Iter,
                                            int64_t Lo, int64_t Hi) {
  // Per included child: start address at X = Lo, plus the constant
  // stride its affine address takes along the innermost iterator. From
  // there the whole activation is add/shift address generation.
  Lanes.clear();
  Iter.push(Lo);
  for (const std::unique_ptr<Node> &C : L->Children) {
    const AccessNode *A = asAccess(C.get());
    if (!Options.IncludeScalars && Program.array(A->ArrayId).isScalar())
      continue;
    int64_t Stride =
        A->Address.numDims() > L->Depth ? A->Address.coeff(L->Depth) : 0;
    Lanes.push_back(BatchLane{A->Address.eval(Iter), Stride, A->isWrite()});
  }
  Iter.pop();
  if (Lanes.empty())
    return;

  // Chunks are flushed at iteration boundaries, so accessBatch always
  // sees whole iterations in program order. 1024 entries = 8 KiB keeps
  // the buffer L1-resident between the two loops; raw-pointer writes
  // keep the generating loop free of per-element size bookkeeping.
  constexpr size_t ChunkCap = 1024;
  BatchBuf.resize(ChunkCap + Lanes.size());
  BatchedAccess *const Begin = BatchBuf.data();
  BatchedAccess *const Flush = Begin + ChunkCap;
  BatchedAccess *Out = Begin;
  BatchCounters C;
  const ConcreteHierarchy::L1MissSink *Sink =
      MissTapFn ? &MissTapFn : nullptr;
  for (int64_t X = Lo; X <= Hi; ++X) {
    for (BatchLane &Ln : Lanes) {
      *Out++ = BatchedAccess::make(Ln.Addr >> BlockShift, Ln.IsWrite);
      Ln.Addr += Ln.Stride;
    }
    if (Out >= Flush) {
      Cache.accessBatch(Begin, static_cast<size_t>(Out - Begin), C, Sink);
      Out = Begin;
    }
  }
  if (Out != Begin)
    Cache.accessBatch(Begin, static_cast<size_t>(Out - Begin), C, Sink);
  Stats.SimulatedAccesses += C.L1Accesses;
  Stats.Level[0].Accesses += C.L1Accesses;
  Stats.Level[0].Misses += C.L1Misses;
  if (Stats.NumLevels > 1) {
    Stats.Level[1].Accesses += C.L2Accesses;
    Stats.Level[1].Misses += C.L2Misses;
  }
}

void ConcreteSimulator::simulateAccess(const AccessNode *A,
                                       const IterVec &Iter) {
  if (!Options.IncludeScalars && Program.array(A->ArrayId).isScalar())
    return;
  if (A->Guarded && !A->Domain.contains(Iter))
    return;
  BlockId B = A->Address.eval(Iter) >> BlockShift;
  HierarchyOutcome O = Cache.access(B, A->isWrite());
  if (Tap)
    Tap(B, A->isWrite(), O);
  if (MissTapFn && !O.L1Hit)
    MissTapFn(B, A->isWrite());
  ++Stats.SimulatedAccesses;
  ++Stats.Level[0].Accesses;
  if (!O.L1Hit)
    ++Stats.Level[0].Misses;
  if (O.L2Accessed) {
    ++Stats.Level[1].Accesses;
    if (!O.L2Hit)
      ++Stats.Level[1].Misses;
  }
}
