//===- src/driver/Results.cpp - Structured results serialization ----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/Results.h"

#include "wcs/support/JsonReader.h"

#include <sstream>

using namespace wcs;
using namespace wcs::jsonfield;
using json::Value;

//===----------------------------------------------------------------------===//
// Counters
//===----------------------------------------------------------------------===//

Value wcs::toJson(const LevelStats &S) {
  Value V = Value::object();
  V.set("accesses", S.Accesses);
  V.set("misses", S.Misses);
  return V;
}

bool wcs::fromJson(const Value &V, LevelStats &Out, std::string *Err) {
  return needUInt(V, "accesses", Out.Accesses, Err) &&
         needUInt(V, "misses", Out.Misses, Err);
}

Value wcs::toJson(const SimStats &S) {
  Value V = Value::object();
  Value Levels = Value::array();
  for (unsigned L = 0; L < S.NumLevels; ++L)
    Levels.push(toJson(S.Level[L]));
  V.set("levels", std::move(Levels));
  V.set("simulated_accesses", S.SimulatedAccesses);
  V.set("warped_accesses", S.WarpedAccesses);
  V.set("warps", S.Warps);
  V.set("failed_warp_checks", S.FailedWarpChecks);
  V.set("seconds", S.Seconds);
  return V;
}

bool wcs::fromJson(const Value &V, SimStats &Out, std::string *Err) {
  const Value *Levels;
  if (!needArray(V, "levels", Levels, Err))
    return false;
  constexpr size_t MaxLevels = sizeof(Out.Level) / sizeof(Out.Level[0]);
  if (Levels->size() < 1 || Levels->size() > MaxLevels)
    return failMsg(Err, "'levels' must hold 1 or 2 entries");
  Out = SimStats();
  Out.NumLevels = static_cast<unsigned>(Levels->size());
  for (size_t L = 0; L < Levels->size(); ++L)
    if (!fromJson(Levels->at(L), Out.Level[L], Err))
      return false;
  return needUInt(V, "simulated_accesses", Out.SimulatedAccesses, Err) &&
         needUInt(V, "warped_accesses", Out.WarpedAccesses, Err) &&
         needUInt(V, "warps", Out.Warps, Err) &&
         needUInt(V, "failed_warp_checks", Out.FailedWarpChecks, Err) &&
         needDouble(V, "seconds", Out.Seconds, Err);
}

//===----------------------------------------------------------------------===//
// Configurations
//===----------------------------------------------------------------------===//

Value wcs::toJson(const CacheConfig &C) {
  Value V = Value::object();
  V.set("size_bytes", C.SizeBytes);
  V.set("assoc", C.Assoc);
  V.set("block_bytes", C.BlockBytes);
  V.set("policy", policyName(C.Policy));
  V.set("write_allocate", C.WriteAlloc == WriteAllocate::Yes);
  return V;
}

bool wcs::fromJson(const Value &V, CacheConfig &Out, std::string *Err) {
  std::string Policy;
  bool WriteAlloc;
  if (!needUInt(V, "size_bytes", Out.SizeBytes, Err) ||
      !needU32(V, "assoc", Out.Assoc, Err) ||
      !needU32(V, "block_bytes", Out.BlockBytes, Err) ||
      !needString(V, "policy", Policy, Err) ||
      !needBool(V, "write_allocate", WriteAlloc, Err))
    return false;
  if (!parsePolicyName(Policy, Out.Policy))
    return failMsg(Err, "unknown replacement policy '" + Policy + "'");
  Out.WriteAlloc = WriteAlloc ? WriteAllocate::Yes : WriteAllocate::No;
  return true;
}

Value wcs::toJson(const HierarchyConfig &H) {
  Value V = Value::object();
  Value Levels = Value::array();
  for (const CacheConfig &C : H.Levels)
    Levels.push(toJson(C));
  V.set("levels", std::move(Levels));
  V.set("inclusion", inclusionName(H.Inclusion));
  return V;
}

bool wcs::fromJson(const Value &V, HierarchyConfig &Out, std::string *Err) {
  const Value *Levels;
  std::string Inclusion;
  if (!needArray(V, "levels", Levels, Err) ||
      !needString(V, "inclusion", Inclusion, Err))
    return false;
  Out.Levels.clear();
  for (size_t L = 0; L < Levels->size(); ++L) {
    CacheConfig C;
    if (!fromJson(Levels->at(L), C, Err))
      return false;
    Out.Levels.push_back(C);
  }
  if (!parseInclusionName(Inclusion, Out.Inclusion))
    return failMsg(Err, "unknown inclusion policy '" + Inclusion + "'");
  return true;
}

Value wcs::toJson(const WarpConfig &W) {
  Value V = Value::object();
  V.set("enable", W.Enable);
  V.set("max_probe_iters", W.MaxProbeIters);
  V.set("snapshot_ring_size", W.SnapshotRingSize);
  V.set("max_snapshots_per_bucket", W.MaxSnapshotsPerBucket);
  V.set("min_snapshot_spacing", W.MinSnapshotSpacing);
  V.set("max_delta_for_coupled_domains", W.MaxDeltaForCoupledDomains);
  V.set("eager_snapshot_trip_limit", W.EagerSnapshotTripLimit);
  V.set("max_delta", W.MaxDelta);
  V.set("disable_after_failed_activations", W.DisableAfterFailedActivations);
  V.set("min_probes_for_learning", W.MinProbesForLearning);
  V.set("enable_profit_guard", W.EnableProfitGuard);
  V.set("profit_guard_activations", W.ProfitGuardActivations);
  return V;
}

bool wcs::fromJson(const Value &V, WarpConfig &Out, std::string *Err) {
  return needBool(V, "enable", Out.Enable, Err) &&
         needU32(V, "max_probe_iters", Out.MaxProbeIters, Err) &&
         needU32(V, "snapshot_ring_size", Out.SnapshotRingSize, Err) &&
         needU32(V, "max_snapshots_per_bucket", Out.MaxSnapshotsPerBucket,
                 Err) &&
         needInt(V, "min_snapshot_spacing", Out.MinSnapshotSpacing, Err) &&
         needInt(V, "max_delta_for_coupled_domains",
                 Out.MaxDeltaForCoupledDomains, Err) &&
         needInt(V, "eager_snapshot_trip_limit", Out.EagerSnapshotTripLimit,
                 Err) &&
         needInt(V, "max_delta", Out.MaxDelta, Err) &&
         needU32(V, "disable_after_failed_activations",
                 Out.DisableAfterFailedActivations, Err) &&
         needU32(V, "min_probes_for_learning", Out.MinProbesForLearning,
                 Err) &&
         needBool(V, "enable_profit_guard", Out.EnableProfitGuard, Err) &&
         needU32(V, "profit_guard_activations", Out.ProfitGuardActivations,
                 Err);
}

Value wcs::toJson(const SimOptions &O) {
  Value V = Value::object();
  V.set("include_scalars", O.IncludeScalars);
  V.set("warp", toJson(O.Warp));
  return V;
}

bool wcs::fromJson(const Value &V, SimOptions &Out, std::string *Err) {
  const Value *Warp;
  return needBool(V, "include_scalars", Out.IncludeScalars, Err) &&
         needMember(V, "warp", Warp, Err) && fromJson(*Warp, Out.Warp, Err);
}

//===----------------------------------------------------------------------===//
// Batch results and the results file
//===----------------------------------------------------------------------===//

Value wcs::toJson(const BatchResult &R) {
  Value V = Value::object();
  V.set("job_index", static_cast<uint64_t>(R.JobIndex));
  V.set("tag", R.Tag);
  V.set("ok", R.Ok);
  V.set("error", R.Error);
  V.set("stats", toJson(R.Stats));
  return V;
}

bool wcs::fromJson(const Value &V, BatchResult &Out, std::string *Err) {
  uint64_t Index;
  const Value *Stats;
  if (!needUInt(V, "job_index", Index, Err) ||
      !needString(V, "tag", Out.Tag, Err) ||
      !needBool(V, "ok", Out.Ok, Err) ||
      !needString(V, "error", Out.Error, Err) ||
      !needMember(V, "stats", Stats, Err) ||
      !fromJson(*Stats, Out.Stats, Err))
    return false;
  Out.JobIndex = static_cast<size_t>(Index);
  return true;
}

Value wcs::toJson(const ResultEntry &E) {
  Value V = Value::object();
  V.set("tag", E.Tag);
  V.set("backend", backendName(E.Backend));
  V.set("cache", toJson(E.Cache));
  V.set("options", toJson(E.Options));
  V.set("ok", E.Ok);
  V.set("error", E.Error);
  V.set("stats", toJson(E.Stats));
  // Only multi-sample producers carry the array; a single-sample entry
  // serializes exactly as it did before --reps existed.
  if (!E.Samples.empty()) {
    Value S = Value::array();
    for (double Sample : E.Samples)
      S.push(Value(Sample));
    V.set("samples", std::move(S));
  }
  return V;
}

bool wcs::fromJson(const Value &V, ResultEntry &Out, std::string *Err) {
  std::string Backend;
  const Value *Cache, *Options, *Stats;
  if (!needString(V, "tag", Out.Tag, Err) ||
      !needString(V, "backend", Backend, Err) ||
      !needMember(V, "cache", Cache, Err) ||
      !fromJson(*Cache, Out.Cache, Err) ||
      !needMember(V, "options", Options, Err) ||
      !fromJson(*Options, Out.Options, Err) ||
      !needBool(V, "ok", Out.Ok, Err) ||
      !needString(V, "error", Out.Error, Err) ||
      !needMember(V, "stats", Stats, Err) ||
      !fromJson(*Stats, Out.Stats, Err))
    return false;
  if (!parseBackendName(Backend, Out.Backend))
    return failMsg(Err, "unknown backend '" + Backend + "'");
  Out.Samples.clear();
  if (const Value *Samples = V.find("samples")) {
    if (!Samples->isArray())
      return failMsg(Err, "member 'samples' must be an array");
    for (size_t N = 0; N < Samples->size(); ++N) {
      if (!Samples->at(N).isNumber())
        return failMsg(Err, "member 'samples' must hold numbers");
      Out.Samples.push_back(Samples->at(N).asDouble());
    }
  }
  return true;
}

const ResultEntry *ResultsDoc::find(const std::string &Tag) const {
  for (const ResultEntry &E : Entries)
    if (E.Tag == Tag)
      return &E;
  return nullptr;
}

Value wcs::toJson(const ResultsDoc &D) {
  Value V = Value::object();
  V.set("schema", ResultsSchemaName);
  V.set("schema_version", ResultsSchemaVersion);
  V.set("tool", D.Tool);
  V.set("size", D.SizeName);
  V.set("threads", D.Threads);
  Value Entries = Value::array();
  for (const ResultEntry &E : D.Entries)
    Entries.push(toJson(E));
  V.set("entries", std::move(Entries));
  return V;
}

bool wcs::fromJson(const Value &V, ResultsDoc &Out, std::string *Err) {
  if (!needSchema(V, ResultsSchemaName, ResultsSchemaVersion, Err))
    return false;
  const Value *Entries;
  if (!needString(V, "tool", Out.Tool, Err) ||
      !needString(V, "size", Out.SizeName, Err) ||
      !needU32(V, "threads", Out.Threads, Err) ||
      !needArray(V, "entries", Entries, Err))
    return false;
  Out.Entries.clear();
  Out.Entries.reserve(Entries->size());
  for (size_t N = 0; N < Entries->size(); ++N) {
    ResultEntry E;
    if (!fromJson(Entries->at(N), E, Err)) {
      if (Err) {
        std::ostringstream OS;
        OS << "entry " << N << ": " << *Err;
        *Err = OS.str();
      }
      return false;
    }
    Out.Entries.push_back(std::move(E));
  }
  return true;
}

bool wcs::writeResultsFile(const std::string &Path, const ResultsDoc &D,
                           std::string *Err) {
  return json::writeFile(Path, toJson(D), Err);
}

bool wcs::readResultsFile(const std::string &Path, ResultsDoc &Out,
                          std::string *Err) {
  Value V;
  if (!json::readFile(Path, V, Err))
    return false;
  std::string ParseErr;
  if (!fromJson(V, Out, &ParseErr)) {
    if (Err)
      *Err = Path + ": " + ParseErr;
    return false;
  }
  return true;
}

std::vector<ResultEntry>
wcs::makeResultEntries(const std::vector<BatchJob> &Jobs,
                       const BatchReport &Report) {
  std::vector<ResultEntry> Entries;
  size_t N = std::min(Jobs.size(), Report.Results.size());
  Entries.reserve(N);
  for (size_t J = 0; J < N; ++J) {
    ResultEntry E;
    E.Tag = Report.Results[J].Tag;
    E.Backend = Jobs[J].Backend;
    E.Cache = Jobs[J].Cache;
    E.Options = Jobs[J].Options;
    E.Ok = Report.Results[J].Ok;
    E.Error = Report.Results[J].Error;
    E.Stats = Report.Results[J].Stats;
    Entries.push_back(std::move(E));
  }
  return Entries;
}
