//===- tests/support_test.cpp - Support library unit tests ---------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Hashing.h"
#include "wcs/support/IterVec.h"
#include "wcs/support/MathUtil.h"
#include "wcs/support/Stats.h"
#include "wcs/support/StringUtil.h"

#include <gtest/gtest.h>

using namespace wcs;

TEST(MathUtil, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
  EXPECT_EQ(floorDiv(0, 5), 0);
}

TEST(MathUtil, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(MathUtil, FloorModIsAlwaysNonNegativeForPositiveModulus) {
  EXPECT_EQ(floorMod(7, 4), 3);
  EXPECT_EQ(floorMod(-7, 4), 1);
  EXPECT_EQ(floorMod(-8, 4), 0);
  for (int64_t X = -20; X <= 20; ++X) {
    int64_t M = floorMod(X, 8);
    EXPECT_GE(M, 0);
    EXPECT_LT(M, 8);
    EXPECT_EQ(floorDiv(X, 8) * 8 + M, X);
  }
}

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(17, 13), 1);
}

TEST(MathUtil, CheckedArithmeticDetectsOverflow) {
  EXPECT_EQ(checkedMul(1 << 20, 1 << 20), std::optional<int64_t>(1LL << 40));
  EXPECT_FALSE(checkedMul(INT64_MAX, 2).has_value());
  EXPECT_FALSE(checkedAdd(INT64_MAX, 1).has_value());
  EXPECT_EQ(checkedAdd(-5, 3), std::optional<int64_t>(-2));
}

TEST(MathUtil, PowerOfTwoHelpers) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(64));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(48));
  EXPECT_EQ(log2Exact(64), 6u);
  EXPECT_EQ(log2Exact(1), 0u);
}

TEST(Hashing, MixAndCombineAreDeterministicAndSpread) {
  EXPECT_EQ(hashMix(42), hashMix(42));
  EXPECT_NE(hashMix(42), hashMix(43));
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1)) << "order must matter";
  HashStream A, B;
  A.add(int64_t{1});
  A.add(int64_t{2});
  B.add(int64_t{2});
  B.add(int64_t{1});
  EXPECT_NE(A.digest(), B.digest());
}

TEST(IterVec, BasicOperations) {
  IterVec V{1, 2, 3};
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V.back(), 3);
  V.push(4);
  EXPECT_EQ(V.size(), 4u);
  V.pop();
  EXPECT_EQ(V, (IterVec{1, 2, 3}));
  EXPECT_EQ(V.prefix(2), (IterVec{1, 2}));
  EXPECT_TRUE(V.prefixEquals(IterVec{1, 2, 99}, 2));
  EXPECT_FALSE(V.prefixEquals(IterVec{1, 3, 3}, 2));
}

TEST(IterVec, LexicographicOrder) {
  EXPECT_LT((IterVec{1, 2}), (IterVec{1, 3}));
  EXPECT_LT((IterVec{1, 9}), (IterVec{2, 0}));
  EXPECT_EQ((IterVec{5}), (IterVec{5}));
  EXPECT_GT((IterVec{2, 0, 0}), (IterVec{1, 9, 9}));
}

TEST(IterVec, HashDistinguishesSizeAndContent) {
  EXPECT_NE((IterVec{1, 2}).hash(), (IterVec{1, 2, 0}).hash());
  EXPECT_NE((IterVec{1, 2}).hash(), (IterVec{2, 1}).hash());
  EXPECT_EQ((IterVec{7, 8}).hash(), (IterVec{7, 8}).hash());
}

TEST(StringUtil, ToLowerAscii) {
  EXPECT_EQ(toLowerAscii("PLRU"), "plru");
  EXPECT_EQ(toLowerAscii("MiXeD_09"), "mixed_09");
  EXPECT_EQ(toLowerAscii(""), "");
}

TEST(StringUtil, ParseUInt64Strict) {
  uint64_t V = 99;
  EXPECT_TRUE(parseUInt64("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUInt64("18446744073709551615", V));
  EXPECT_EQ(V, UINT64_MAX);
  V = 99;
  // Overflow, signs, spaces, suffixes and empty input all reject and
  // leave the output untouched.
  EXPECT_FALSE(parseUInt64("18446744073709551616", V));
  EXPECT_FALSE(parseUInt64("99999999999999999999999", V));
  EXPECT_FALSE(parseUInt64("-1", V));
  EXPECT_FALSE(parseUInt64("+1", V));
  EXPECT_FALSE(parseUInt64(" 1", V));
  EXPECT_FALSE(parseUInt64("1k", V));
  EXPECT_FALSE(parseUInt64("", V));
  EXPECT_EQ(V, 99u);
  // The Max parameter caps inclusively, including single-digit caps
  // (which once underflowed the overflow guard).
  EXPECT_TRUE(parseUInt64("255", V, 255));
  EXPECT_FALSE(parseUInt64("256", V, 255));
  EXPECT_TRUE(parseUInt64("3", V, 3));
  EXPECT_FALSE(parseUInt64("9", V, 3));
  EXPECT_FALSE(parseUInt64("25", V, 3));
  EXPECT_TRUE(parseUInt64("0", V, 0));
  EXPECT_FALSE(parseUInt64("1", V, 0));
}

TEST(StringUtil, ParseInt64Range) {
  int64_t V = 7;
  EXPECT_TRUE(parseInt64("9223372036854775807", V));
  EXPECT_EQ(V, INT64_MAX);
  EXPECT_TRUE(parseInt64("-9223372036854775808", V));
  EXPECT_EQ(V, INT64_MIN);
  EXPECT_TRUE(parseInt64("-0", V));
  EXPECT_EQ(V, 0);
  V = 7;
  EXPECT_FALSE(parseInt64("9223372036854775808", V));
  EXPECT_FALSE(parseInt64("-9223372036854775809", V));
  EXPECT_FALSE(parseInt64("-", V));
  EXPECT_FALSE(parseInt64("1.5", V));
  EXPECT_EQ(V, 7);
}

TEST(StringUtil, ParseParamBinding) {
  std::string Name;
  int64_t V = 0;
  EXPECT_TRUE(parseParamBinding("N=1024", Name, V));
  EXPECT_EQ(Name, "N");
  EXPECT_EQ(V, 1024);
  EXPECT_TRUE(parseParamBinding("TSTEPS=-3", Name, V));
  EXPECT_EQ(Name, "TSTEPS");
  EXPECT_EQ(V, -3);
  EXPECT_FALSE(parseParamBinding("N", Name, V));
  EXPECT_FALSE(parseParamBinding("N=abc", Name, V));
  EXPECT_FALSE(parseParamBinding("N=", Name, V));
}

TEST(Stats, GeoMeanSkipsNonPositiveSamples) {
  GeoMean G;
  EXPECT_EQ(G.count(), 0u);
  EXPECT_DOUBLE_EQ(G.value(), 0.0);
  G.add(2.0);
  G.add(8.0);
  G.add(0.0);  // Skipped: would collapse the product.
  G.add(-3.0); // Skipped.
  EXPECT_EQ(G.count(), 2u);
  EXPECT_DOUBLE_EQ(G.value(), 4.0); // sqrt(2 * 8)
}

TEST(Stats, MeanStddevMatchesClosedForm) {
  MeanStddev M;
  EXPECT_EQ(M.count(), 0u);
  EXPECT_DOUBLE_EQ(M.mean(), 0.0);
  EXPECT_DOUBLE_EQ(M.stddev(), 0.0);

  // One sample: a mean but no spread estimate.
  M.add(0.5);
  EXPECT_EQ(M.count(), 1u);
  EXPECT_DOUBLE_EQ(M.mean(), 0.5);
  EXPECT_DOUBLE_EQ(M.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(M.stderror(), 0.0);

  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample stddev sqrt(32/7).
  MeanStddev K;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    K.add(V);
  EXPECT_EQ(K.count(), 8u);
  EXPECT_DOUBLE_EQ(K.mean(), 5.0);
  EXPECT_NEAR(K.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(K.stderror(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0), 1e-12);
}

TEST(Stats, MeanStddevIsStableAroundALargeOffset) {
  // Welford's algorithm must not lose the spread to cancellation when
  // the values sit on a huge common offset (the naive sum-of-squares
  // formula returns garbage here).
  MeanStddev M;
  const double Offset = 1e9;
  for (double V : {4.0, 7.0, 13.0, 16.0})
    M.add(Offset + V);
  EXPECT_NEAR(M.mean(), Offset + 10.0, 1e-3);
  EXPECT_NEAR(M.stddev(), std::sqrt(30.0), 1e-6);
}
