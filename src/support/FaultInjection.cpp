//===- support/FaultInjection.cpp - Seeded fault injection ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/FaultInjection.h"

#include "wcs/support/Hashing.h"
#include "wcs/support/JsonReader.h" // failMsg
#include "wcs/support/Telemetry.h"

#include <cstdlib>
#include <map>
#include <mutex>

using namespace wcs;
using namespace wcs::faultinject;
using wcs::jsonfield::failMsg;

namespace {

/// The closed set of sites wired through the serving stack. arm()
/// rejects anything else so a misspelled point fails loudly instead of
/// silently never firing.
const char *const KnownPoints[] = {"store.write", "socket.send",
                                   "socket.recv", "scheduler.job"};

struct Config {
  std::mutex Mu;
  std::map<std::string, double> Probs;       // point -> probability
  std::map<std::string, uint64_t> Injected;  // point -> faults fired
  uint64_t Seed = 0;
  uint64_t Draws = 0; // total draws since arm(); indexes the sequence
};

Config &config() {
  static Config C;
  return C;
}

bool knownPoint(const std::string &Name) {
  for (const char *P : KnownPoints)
    if (Name == P)
      return true;
  return false;
}

/// Draw I of a run seeded with S, as a uniform double in [0, 1). A
/// pure function of (S, I): replaying the same spec and seed replays
/// the same fault schedule.
double drawUniform(uint64_t Seed, uint64_t Index) {
  uint64_t Bits = hashCombine(hashMix(Seed + 0x9e3779b97f4a7c15ull), Index);
  return double(Bits >> 11) * (1.0 / 9007199254740992.0); // 2^-53
}

} // namespace

bool faultinject::detail::shouldFailSlow(const char *Point) {
  Config &C = config();
  std::lock_guard<std::mutex> L(C.Mu);
  auto It = C.Probs.find(Point);
  if (It == C.Probs.end())
    return false;
  double U = drawUniform(C.Seed, C.Draws++);
  if (U >= It->second)
    return false;
  ++C.Injected[Point];
  telemetry::registry().counter("fault.injected").add();
  return true;
}

bool faultinject::arm(const std::string &Spec, uint64_t Seed,
                      std::string *Err) {
  std::map<std::string, double> Probs;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;
    size_t Colon = Entry.find(':');
    if (Colon == std::string::npos)
      return failMsg(Err, "fault spec entry '" + Entry +
                              "' is not point:probability");
    std::string Point = Entry.substr(0, Colon);
    if (!knownPoint(Point))
      return failMsg(Err, "unknown fault point '" + Point +
                              "' (known: store.write, socket.send, "
                              "socket.recv, scheduler.job)");
    char *EndPtr = nullptr;
    std::string ProbStr = Entry.substr(Colon + 1);
    double Prob = std::strtod(ProbStr.c_str(), &EndPtr);
    if (ProbStr.empty() || EndPtr == ProbStr.c_str() || *EndPtr != '\0' ||
        !(Prob >= 0.0 && Prob <= 1.0))
      return failMsg(Err, "fault probability '" + ProbStr + "' for '" + Point +
                              "' is not a number in [0, 1]");
    Probs[Point] = Prob;
  }
  Config &C = config();
  std::lock_guard<std::mutex> L(C.Mu);
  C.Probs = std::move(Probs);
  C.Injected.clear();
  C.Seed = Seed;
  C.Draws = 0;
  detail::Armed.store(C.Probs.empty() ? 0 : 1, std::memory_order_relaxed);
  return true;
}

bool faultinject::armFromEnv(std::string *Err) {
  const char *Spec = std::getenv("WCS_FAULT");
  if (!Spec || !*Spec)
    return true;
  uint64_t Seed = 0;
  if (const char *SeedStr = std::getenv("WCS_FAULT_SEED"))
    Seed = std::strtoull(SeedStr, nullptr, 10);
  return arm(Spec, Seed, Err);
}

void faultinject::disarm() {
  Config &C = config();
  std::lock_guard<std::mutex> L(C.Mu);
  C.Probs.clear();
  C.Injected.clear();
  C.Draws = 0;
  detail::Armed.store(0, std::memory_order_relaxed);
}

bool faultinject::armed() {
  return detail::Armed.load(std::memory_order_relaxed) != 0;
}

std::string faultinject::armedSpec() {
  Config &C = config();
  std::lock_guard<std::mutex> L(C.Mu);
  std::string Out;
  for (const auto &KV : C.Probs) {
    if (!Out.empty())
      Out += ',';
    Out += KV.first + ':' + std::to_string(KV.second);
  }
  return Out;
}

uint64_t faultinject::injectedCount() {
  Config &C = config();
  std::lock_guard<std::mutex> L(C.Mu);
  uint64_t Total = 0;
  for (const auto &KV : C.Injected)
    Total += KV.second;
  return Total;
}

uint64_t faultinject::injectedCount(const std::string &Point) {
  Config &C = config();
  std::lock_guard<std::mutex> L(C.Mu);
  auto It = C.Injected.find(Point);
  return It == C.Injected.end() ? 0 : It->second;
}
