//===- src/driver/JsonFieldHelpers.h - fromJson field plumbing -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared member-extraction helpers behind every fromJson of the results
/// layer (Results.cpp) and the sweep layer (Sweep.cpp): fetch an object
/// member, check its kind, and produce the uniform "missing or mistyped
/// member" diagnostics. Internal to src/driver — results files are read
/// through the typed fromJson entry points, never through these.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_DRIVER_JSONFIELDHELPERS_H
#define WCS_DRIVER_JSONFIELDHELPERS_H

#include "wcs/support/Json.h"

#include <cstdint>
#include <string>

namespace wcs {
namespace jsonfield {

inline bool failMsg(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Fetches object member \p Key into \p Out. Central place for the
/// "missing or mistyped member" diagnostics every fromJson needs.
inline bool needMember(const json::Value &V, const char *Key,
                       const json::Value *&Out, std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  Out = V.find(Key);
  if (!Out)
    return failMsg(Err, std::string("missing member '") + Key + "'");
  return true;
}

// Counters and config fields are written as exact JSON integers, so the
// readers demand the Int kind outright: a fractional, out-of-range or
// (for unsigned fields) negative number is a malformed file and fails
// loudly instead of being truncated or wrapped into a plausible value.

inline bool needUInt(const json::Value &V, const char *Key, uint64_t &Out,
                     std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (M->kind() != json::Value::Kind::Int || M->asInt() < 0)
    return failMsg(Err, std::string("member '") + Key +
                            "' must be a non-negative integer");
  Out = M->asUInt();
  return true;
}

inline bool needInt(const json::Value &V, const char *Key, int64_t &Out,
                    std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (M->kind() != json::Value::Kind::Int)
    return failMsg(Err, std::string("member '") + Key + "' must be an integer");
  Out = M->asInt();
  return true;
}

inline bool needU32(const json::Value &V, const char *Key, unsigned &Out,
                    std::string *Err) {
  uint64_t U;
  if (!needUInt(V, Key, U, Err))
    return false;
  if (U > 0xffffffffull)
    return failMsg(Err, std::string("member '") + Key +
                            "' does not fit in 32 bits");
  Out = static_cast<unsigned>(U);
  return true;
}

inline bool needDouble(const json::Value &V, const char *Key, double &Out,
                       std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (!M->isNumber())
    return failMsg(Err, std::string("member '") + Key + "' must be a number");
  Out = M->asDouble();
  return true;
}

inline bool needBool(const json::Value &V, const char *Key, bool &Out,
                     std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (!M->isBool())
    return failMsg(Err, std::string("member '") + Key + "' must be a bool");
  Out = M->asBool();
  return true;
}

inline bool needString(const json::Value &V, const char *Key,
                       std::string &Out, std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (!M->isString())
    return failMsg(Err, std::string("member '") + Key + "' must be a string");
  Out = M->asString();
  return true;
}

inline bool needArray(const json::Value &V, const char *Key,
                      const json::Value *&Out, std::string *Err) {
  if (!needMember(V, Key, Out, Err))
    return false;
  if (!Out->isArray())
    return failMsg(Err, std::string("member '") + Key + "' must be an array");
  return true;
}

// Optional variants: an absent member leaves \p Out at its caller-set
// default and succeeds; a present but mistyped member still fails
// loudly. For fields added to a schema after its first release --
// writers always emit them, but older files of the same version must
// keep parsing.

inline bool optUInt(const json::Value &V, const char *Key, uint64_t &Out,
                    std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needUInt(V, Key, Out, Err);
}

inline bool optU32(const json::Value &V, const char *Key, unsigned &Out,
                   std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needU32(V, Key, Out, Err);
}

inline bool optDouble(const json::Value &V, const char *Key, double &Out,
                      std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needDouble(V, Key, Out, Err);
}

inline bool optBool(const json::Value &V, const char *Key, bool &Out,
                    std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needBool(V, Key, Out, Err);
}

} // namespace jsonfield
} // namespace wcs

#endif // WCS_DRIVER_JSONFIELDHELPERS_H
