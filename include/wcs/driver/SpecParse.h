//===- wcs/driver/SpecParse.h - Config/grid spec parsing --------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one parsing authority for every user-facing cache-configuration
/// spelling: the single-level cache spec ("BYTES,ASSOC,POLICY" behind
/// wcs-sim --l1/--l2 and wcs-trace --filtered), the sweep grid syntax
/// ("8K:256K:x2,assoc=4,8" behind wcs-sim --sweep-l1/--sweep-l2 and the
/// grid member of wcs-request documents), and the grid-to-hierarchy
/// expansion both the CLI and the wcs-serve daemon run. Tools and the
/// daemon parse through these entry points only, so a spec means exactly
/// the same thing no matter which surface it arrives through; byte
/// counts within the specs go through support/StringUtil's
/// parseByteSize. Directly unit-tested in tests/spec_parse_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_DRIVER_SPECPARSE_H
#define WCS_DRIVER_SPECPARSE_H

#include "wcs/cache/CacheConfig.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wcs {

/// Parses the tools' cache-level spelling "BYTES,ASSOC,POLICY" (exactly
/// three fields, 64 B blocks) into \p Out, e.g. "4096,8,plru". Shared by
/// wcs-sim --l1/--l2 and wcs-trace --filtered. Returns false on
/// malformed specs, leaving \p Out untouched.
bool parseCacheSpec(const std::string &Spec, CacheConfig &Out);

/// The grid of one cache level: capacities x associativities x policies
/// at a fixed block size. Expanded as a cross product.
struct SweepLevelGrid {
  std::vector<uint64_t> SizesBytes;
  /// Way counts; the value 0 encodes "fully associative" (one set, the
  /// HayStack cache model), resolved per capacity during expansion.
  std::vector<unsigned> Assocs = {8};
  std::vector<PolicyKind> Policies = {PolicyKind::Lru};
  unsigned BlockBytes = 64;

  friend bool operator==(const SweepLevelGrid &,
                         const SweepLevelGrid &) = default;
};

/// Parses the wcs-sim sweep grid syntax for one level:
///
///   SIZES[,assoc=A[,A...]][,policy=P[,P...]][,block=N]
///
/// SIZES is one or more capacities ("8K", "4096", "1M") or geometric
/// ranges "LO:HI:xF" (LO, LO*F, ... up to HI inclusive). assoc values
/// are way counts or "full" (fully associative); policies are the
/// wcs-sim policy spellings (lru|fifo|plru|qlru); block takes a single
/// byte count. Example: "8K:256K:x2,assoc=4,8" is six capacities times
/// two way counts = twelve LRU points. Returns false with a diagnostic
/// in \p Err on malformed specs.
bool parseSweepLevelGrid(const std::string &Spec, SweepLevelGrid &Out,
                         std::string *Err);

/// Expands one or two level grids into the hierarchy-config list of a
/// sweep (cross product over levels; no \p L2 = single-level). Every
/// expanded configuration is validated; the first invalid point fails
/// the expansion with a diagnostic naming it.
bool expandSweepGrid(const SweepLevelGrid &L1, const SweepLevelGrid *L2,
                     InclusionPolicy Inclusion,
                     std::vector<HierarchyConfig> &Out, std::string *Err);

} // namespace wcs

#endif // WCS_DRIVER_SPECPARSE_H
