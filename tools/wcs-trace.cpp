//===- tools/wcs-trace.cpp - Trace export and locality profiles -----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Companion tool to wcs-sim: exports the memory trace of a polyhedral
// program in Dinero "din" format (so the reproduction can be cross-
// checked against an actual Dinero IV installation), prints the exact
// stack-distance histogram and the resulting miss-ratio curve for
// fully-associative LRU caches (the stack histograms of Mattson et al.
// that the paper's related-work section discusses), or dumps the
// L1-miss-filtered stream of a given L1 configuration -- the exact
// access stream a NINE L2 sees, and the recording the sweep driver's
// multi-level fast path shares across grid points.
//
//   wcs-trace --kernel jacobi-1d --size mini --din > trace.din
//   wcs-trace --kernel gemm --size small --curve
//   wcs-trace --file mykernel.c --param N=512 --histogram
//   wcs-trace --kernel gemm --size mini --filtered 4096,8,plru
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/SpecParse.h"
#include "wcs/frontend/Frontend.h"
#include "wcs/polybench/Polybench.h"
#include "wcs/support/StringUtil.h"
#include "wcs/trace/FilteredStream.h"
#include "wcs/trace/StackDistance.h"
#include "wcs/trace/TraceGenerator.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace wcs;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: wcs-trace [options] <mode>\n"
      "  --kernel NAME | --file PATH   program selection (see wcs-sim)\n"
      "  --size S / --param NAME=VALUE\n"
      "  --scalars                     include scalar accesses\n"
      "modes:\n"
      "  --din             emit the trace in Dinero IV 'din' format\n"
      "  --histogram       print the exact stack-distance histogram\n"
      "  --curve           print the fully-associative LRU miss-ratio "
      "curve\n"
      "  --filtered L1CFG  emit the L1-miss-filtered stream (din format,\n"
      "                    block-aligned addresses) of the L1 config\n"
      "                    BYTES,ASSOC,POLICY -- what a NINE L2 sees\n");
}


} // namespace

int main(int argc, char **argv) {
  std::string Kernel, File, Mode;
  ProblemSize Size = ProblemSize::Mini;
  std::map<std::string, int64_t> Params;
  TraceOptions TO;
  CacheConfig FilterL1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--kernel") {
      Kernel = Next();
    } else if (A == "--file") {
      File = Next();
    } else if (A == "--size") {
      if (!parseProblemSize(Next(), Size)) {
        std::fprintf(stderr, "error: unknown size\n");
        return 2;
      }
    } else if (A == "--param") {
      const char *P = Next();
      std::string ParamName;
      int64_t ParamVal = 0;
      if (!parseParamBinding(P, ParamName, ParamVal)) {
        std::fprintf(stderr,
                     "error: --param expects NAME=VALUE with an integer "
                     "value, got '%s'\n",
                     P);
        return 2;
      }
      Params[ParamName] = ParamVal;
    } else if (A == "--scalars") {
      TO.IncludeScalars = true;
    } else if (A == "--din" || A == "--histogram" || A == "--curve") {
      Mode = A;
    } else if (A == "--filtered") {
      const char *Spec = Next();
      if (!parseCacheSpec(Spec, FilterL1)) {
        std::fprintf(stderr,
                     "error: --filtered expects BYTES,ASSOC,POLICY, got "
                     "'%s'\n",
                     Spec);
        return 2;
      }
      std::string CfgErr = FilterL1.validate();
      if (!CfgErr.empty()) {
        std::fprintf(stderr, "error: --filtered %s: %s\n", Spec,
                     CfgErr.c_str());
        return 2;
      }
      Mode = A;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (Mode.empty() || Kernel.empty() == File.empty()) {
    usage();
    return 2;
  }

  ScopProgram P;
  if (!Kernel.empty()) {
    std::string Err;
    P = buildKernel(Kernel, Size, &Err);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    ParseResult PR = parseScop(SS.str(), Params, File);
    if (!PR.ok()) {
      std::fprintf(stderr, "%s: %s\n", File.c_str(), PR.message().c_str());
      return 1;
    }
    P = std::move(PR.Program);
  }

  if (Mode == "--filtered") {
    // One concrete L1 simulation, dumping the misses: the din-format
    // stream a NINE L2 of this L1 would see. Addresses are block
    // starts (the filter works at block granularity).
    SimOptions SO;
    SO.IncludeScalars = TO.IncludeScalars;
    FilteredStream FS = FilteredStream::record(P, FilterL1, SO);
    std::printf("# %s: L1-filtered stream of %s\n", P.Name.c_str(),
                FilterL1.str().c_str());
    std::printf("# accesses=%llu l1-misses=%llu (%.3f%%)\n",
                static_cast<unsigned long long>(FS.l1Accesses()),
                static_cast<unsigned long long>(FS.l1Misses()),
                100.0 * FS.l1Stats().missRatio());
    unsigned Shift = 0;
    while ((1u << Shift) < FilterL1.BlockBytes)
      ++Shift;
    FS.forEachRecord([&](const FilteredRecord &R) {
      std::printf("%d %llx\n", R.IsWrite ? 1 : 0,
                  static_cast<unsigned long long>(
                      static_cast<uint64_t>(R.Block) << Shift));
    });
    return 0;
  }

  if (Mode == "--din") {
    // Dinero IV din format: "<label> <hex address>" per line, label 0 =
    // read, 1 = write.
    generateTrace(P, TO, [](const TraceRecord &R) {
      std::printf("%d %llx\n", R.IsWrite ? 1 : 0,
                  static_cast<unsigned long long>(R.Addr));
    });
    return 0;
  }

  StackDistanceProfiler Prof(64);
  generateTrace(P, TO,
                [&](const TraceRecord &R) { Prof.accessAddr(R.Addr); });

  if (Mode == "--histogram") {
    std::printf("# %s: %llu accesses, %llu cold\n", P.Name.c_str(),
                static_cast<unsigned long long>(Prof.totalAccesses()),
                static_cast<unsigned long long>(Prof.coldAccesses()));
    std::printf("# distance  count\n");
    for (size_t D = 0; D < Prof.histogram().size(); ++D)
      if (Prof.histogram()[D] != 0)
        std::printf("%9zu %10llu\n", D,
                    static_cast<unsigned long long>(Prof.histogram()[D]));
    return 0;
  }

  // --curve: miss ratio of fully-associative LRU per power-of-two size.
  std::printf("# %s: fully-associative LRU miss-ratio curve\n",
              P.Name.c_str());
  std::printf("# %10s %12s %10s\n", "cache", "misses", "ratio");
  uint64_t Total = Prof.totalAccesses();
  for (uint64_t Lines = 1; Lines <= (1u << 20); Lines *= 2) {
    uint64_t M = Prof.missesForAssoc(Lines);
    uint64_t Bytes = Lines * 64;
    char SizeBuf[32];
    if (Bytes < 1024)
      std::snprintf(SizeBuf, sizeof(SizeBuf), "%lluB",
                    static_cast<unsigned long long>(Bytes));
    else
      std::snprintf(SizeBuf, sizeof(SizeBuf), "%lluKiB",
                    static_cast<unsigned long long>(Bytes / 1024));
    std::printf("  %10s %12llu %9.3f%%\n", SizeBuf,
                static_cast<unsigned long long>(M),
                Total ? 100.0 * static_cast<double>(M) / Total : 0.0);
    if (M == Prof.coldAccesses())
      break; // Larger caches cannot do better.
  }
  return 0;
}
