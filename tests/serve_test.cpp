//===- tests/serve_test.cpp - wcs-serve serving-core tests ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The wcs-serve semantic surface, driven two ways: serveSweepRequest()
// directly (store hit/miss partitioning, method "store" relabeling,
// bit-identical counters, progress events, malformed-request handling)
// and end-to-end through the Unix-domain socket (runServer on a thread,
// the submitSweepRequest client, control shutdown). Both paths must
// agree bit for bit.
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Server.h"
#include "wcs/support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace wcs;

namespace {

const char *TestSource = R"(
  int A[512]; int B[512];
  for (int i = 1; i < 511; i++)
    B[i] = A[i-1] + A[i+1];
)";

SweepRequest smallRequest() {
  SweepRequest R;
  R.Source = TestSource;
  R.SourceName = "stencil.wcs";
  R.L1.SizesBytes = {1024, 2048};
  R.L1.Assocs = {2};
  R.L1.Policies = {PolicyKind::Lru, PolicyKind::Fifo};
  return R;
}

/// Per-point JSON with the timing zeroed: counters and provenance only.
std::string counters(SweepPoint P) {
  P.Stats.Seconds = 0.0;
  return toJson(P).dump(false);
}

std::string tempPath(const char *Tag, const char *Ext) {
  std::ostringstream OS;
  OS << ::testing::TempDir() << "wcs-serve-" << Tag << "-" << ::getpid()
     << Ext;
  return OS.str();
}

TEST(Serve, MissesThenHitsBitIdentical) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Req = smallRequest();

  // Cold store: every point is a miss, simulated and inserted.
  SweepResponse First = serveSweepRequest(Req, Store, 2, nullptr);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.RequestHash, requestHash(Req));
  EXPECT_EQ(First.StoreHits, 0u);
  EXPECT_EQ(First.StoreMisses, 4u);
  EXPECT_EQ(First.StoreEntries, 4u);
  ASSERT_EQ(First.Sweep.Points.size(), 4u);
  for (const SweepPoint &P : First.Sweep.Points) {
    ASSERT_TRUE(P.Ok) << P.Error;
    EXPECT_NE(P.Method, SweepMethod::Store); // Fresh results keep their
                                             // computing method.
  }

  // Resubmission: every point comes from the store, zero simulation.
  SweepResponse Second = serveSweepRequest(Req, Store, 2, nullptr);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(Second.StoreHits, 4u);
  EXPECT_EQ(Second.StoreMisses, 0u);
  ASSERT_EQ(Second.Sweep.Points.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    // Honest provenance: the point is re-labeled "store"...
    EXPECT_EQ(Second.Sweep.Points[I].Method, SweepMethod::Store);
    // ...but everything else -- counters, backend, even the original
    // timing measurement -- is the stored point verbatim.
    SweepPoint Norm = Second.Sweep.Points[I];
    Norm.Method = First.Sweep.Points[I].Method;
    EXPECT_EQ(toJson(Norm).dump(false),
              toJson(First.Sweep.Points[I]).dump(false))
        << "point " << I;
  }
}

TEST(Serve, OverlappingGridsShareStoredPoints) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  SweepRequest Narrow = smallRequest();
  Narrow.L1.SizesBytes = {1024};
  SweepResponse First = serveSweepRequest(Narrow, Store, 2, nullptr);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.StoreMisses, 2u);

  // A DIFFERENT request whose grid overlaps: the shared capacity is
  // served from the store, only the new one simulates.
  SweepRequest Wide = smallRequest();
  Wide.L1.SizesBytes = {1024, 2048};
  SweepResponse Second = serveSweepRequest(Wide, Store, 2, nullptr);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_NE(Second.RequestHash, First.RequestHash);
  EXPECT_EQ(Second.StoreHits, 2u);
  EXPECT_EQ(Second.StoreMisses, 2u);
  EXPECT_EQ(Second.StoreEntries, 4u);
  // Grid expansion orders sizes outermost: points 0-1 are the 1024-byte
  // capacities served from the store.
  EXPECT_EQ(Second.Sweep.Points[0].Method, SweepMethod::Store);
  EXPECT_EQ(Second.Sweep.Points[1].Method, SweepMethod::Store);
  EXPECT_NE(Second.Sweep.Points[2].Method, SweepMethod::Store);
  EXPECT_NE(Second.Sweep.Points[3].Method, SweepMethod::Store);
}

TEST(Serve, ProgressCoversEveryPointInInputOrder) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Req = smallRequest();

  // Warm half the store so both hit and miss progress paths fire.
  SweepRequest Narrow = Req;
  Narrow.L1.SizesBytes = {1024};
  ASSERT_TRUE(serveSweepRequest(Narrow, Store, 2, nullptr).Ok);

  std::vector<ProgressEvent> Events;
  SweepResponse Resp = serveSweepRequest(
      Req, Store, 2, [&](const ProgressEvent &E) { Events.push_back(E); });
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  ASSERT_EQ(Events.size(), 4u);
  size_t Hits = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Events[I].Point, I); // One event per point, input order.
    EXPECT_EQ(Events[I].Total, 4u);
    EXPECT_TRUE(Events[I].Ok);
    EXPECT_EQ(Events[I].Cache, Resp.Sweep.Points[I].Cache.str());
    Hits += Events[I].Method == SweepMethod::Store ? 1 : 0;
  }
  EXPECT_EQ(Hits, 2u);
}

TEST(Serve, MalformedRequestIsAnOkFalseResponse) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Bad = smallRequest();
  Bad.Source = "for (;;) nonsense";
  SweepResponse Resp = serveSweepRequest(Bad, Store, 2, nullptr);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_FALSE(Resp.Error.empty());
  EXPECT_EQ(Resp.RequestHash, requestHash(Bad)); // Still attributed.
  EXPECT_EQ(Store.numEntries(), 0u); // Nothing was stored.
}

TEST(Serve, FailedPointsAreNeverStored) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  // A grid that expands fine but cannot all simulate does not poison
  // the store; here every point is fine, so instead pin the contract
  // from the other side: only Ok points land in the store.
  SweepRequest Req = smallRequest();
  SweepResponse Resp = serveSweepRequest(Req, Store, 2, nullptr);
  ASSERT_TRUE(Resp.Ok);
  EXPECT_EQ(Store.numEntries(),
            static_cast<size_t>(Resp.StoreMisses)); // All Ok, all stored.
}

//===----------------------------------------------------------------------===//
// Through the socket
//===----------------------------------------------------------------------===//

TEST(ServeSocket, EndToEndMatchesDirectServing) {
  std::string Socket = tempPath("sock", ".sock");
  std::string StorePath = tempPath("store", ".jsonl");
  std::remove(StorePath.c_str());

  ServerOptions SO;
  SO.SocketPath = Socket;
  SO.StorePath = StorePath;
  SO.Threads = 2;

  std::string ServerErr;
  std::mutex ReadyMu;
  std::condition_variable ReadyCv;
  bool Ready = false;
  std::thread Server([&] {
    bool Ok = runServer(
        SO,
        [&] {
          std::lock_guard<std::mutex> L(ReadyMu);
          Ready = true;
          ReadyCv.notify_one();
        },
        &ServerErr);
    if (!Ok) {
      // Unblock the main thread even on setup failure.
      std::lock_guard<std::mutex> L(ReadyMu);
      Ready = true;
      ReadyCv.notify_one();
    }
  });
  {
    std::unique_lock<std::mutex> L(ReadyMu);
    ReadyCv.wait(L, [&] { return Ready; });
  }
  ASSERT_EQ(ServerErr, "");

  SweepRequest Req = smallRequest();
  std::string Err;

  // First submission: all misses.
  SweepResponse First;
  std::vector<ProgressEvent> Events;
  ASSERT_TRUE(submitSweepRequest(
      Socket, Req, First,
      [&](const ProgressEvent &E) { Events.push_back(E); }, &Err))
      << Err;
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.StoreMisses, 4u);
  EXPECT_EQ(Events.size(), 4u); // Progress streamed over the wire too.

  // Second submission: answered from the store, bit-identical counters.
  SweepResponse Second;
  ASSERT_TRUE(submitSweepRequest(Socket, Req, Second, nullptr, &Err)) << Err;
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(Second.StoreHits, 4u);
  EXPECT_EQ(Second.StoreMisses, 0u);
  ASSERT_EQ(Second.Sweep.Points.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Second.Sweep.Points[I].Method, SweepMethod::Store);
    SweepPoint Norm = Second.Sweep.Points[I];
    Norm.Method = First.Sweep.Points[I].Method;
    EXPECT_EQ(toJson(Norm).dump(false),
              toJson(First.Sweep.Points[I]).dump(false));
  }

  // The socket path and the in-process path are the same computation.
  ResultStore Fresh;
  ASSERT_TRUE(Fresh.open("", &Err)) << Err;
  SweepResponse Direct = serveSweepRequest(Req, Fresh, 2, nullptr);
  ASSERT_TRUE(Direct.Ok) << Direct.Error;
  ASSERT_EQ(Direct.Sweep.Points.size(), First.Sweep.Points.size());
  for (size_t I = 0; I < Direct.Sweep.Points.size(); ++I)
    EXPECT_EQ(counters(Direct.Sweep.Points[I]),
              counters(First.Sweep.Points[I]))
        << "point " << I;

  // A malformed line gets a refusal, not a hang or a dropped connection
  // (transport stays healthy for the shutdown below).
  SweepRequest Bad = Req;
  Bad.Source = "for (;;) nonsense";
  SweepResponse BadResp;
  ASSERT_TRUE(submitSweepRequest(Socket, Bad, BadResp, nullptr, &Err))
      << Err;
  EXPECT_FALSE(BadResp.Ok);
  EXPECT_FALSE(BadResp.Error.empty());

  // Clean shutdown: acknowledged, thread joins, socket file removed.
  ASSERT_TRUE(requestShutdown(Socket, &Err)) << Err;
  Server.join();
  EXPECT_NE(::access(Socket.c_str(), F_OK), 0);

  // The store log persists past the daemon: a fresh ResultStore opens
  // it clean with all four points.
  ResultStore Reopened;
  ASSERT_TRUE(Reopened.open(StorePath, &Err)) << Err;
  EXPECT_EQ(Reopened.recoveredBytes(), 0u);
  EXPECT_EQ(Reopened.numEntries(), 4u);
  std::remove(StorePath.c_str());
}

TEST(ServeSocket, ClientReportsConnectFailure) {
  std::string Err;
  SweepResponse Resp;
  EXPECT_FALSE(submitSweepRequest(tempPath("nosock", ".sock"),
                                  smallRequest(), Resp, nullptr, &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Hardening: line caps, stale sockets, timeouts, retries, drain
//===----------------------------------------------------------------------===//

/// Boilerplate for the hardening tests: runServer on a thread, block
/// until the socket accepts (or setup failed).
struct TestServer {
  std::thread Thread;
  std::string Err;
  void start(const ServerOptions &SO) {
    // Shared latch: the server thread outlives this frame, so the
    // ready state must too.
    struct Latch {
      std::mutex Mu;
      std::condition_variable Cv;
      bool Ready = false;
    };
    auto L = std::make_shared<Latch>();
    auto Release = [L] {
      std::lock_guard<std::mutex> G(L->Mu);
      L->Ready = true;
      L->Cv.notify_one();
    };
    Thread = std::thread([this, SO, Release] {
      if (!runServer(SO, Release, &Err))
        Release(); // Unblock start() even on setup failure.
    });
    std::unique_lock<std::mutex> G(L->Mu);
    L->Cv.wait(G, [&] { return L->Ready; });
  }
  void join() { Thread.join(); }
};

TEST(ServeSocket, LineReaderRefusesUnframedOverlongLines) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  LineReader Reader(Pair[0]);
  Reader.setMaxLineBytes(1024);

  // 2000 bytes and no '\n': the reader must fail the connection with a
  // diagnostic instead of buffering until the peer decides to frame.
  std::string Blob(2000, 'x');
  std::string Err;
  ASSERT_TRUE(sendLine(Pair[1], Blob.substr(0, 999), &Err)) << Err;
  // First line (framed, under the cap) still reads fine.
  std::string Line;
  ASSERT_TRUE(Reader.readLine(Line, &Err)) << Err;
  EXPECT_EQ(Line.size(), 999u);

  ssize_t Sent = ::send(Pair[1], Blob.data(), Blob.size(), 0);
  ASSERT_EQ(Sent, static_cast<ssize_t>(Blob.size()));
  EXPECT_FALSE(Reader.readLine(Line, &Err));
  EXPECT_NE(Err.find("exceeds"), std::string::npos) << Err;

  closeFd(Pair[0]);
  closeFd(Pair[1]);
}

TEST(ServeSocket, ListenRefusesLiveSocketButReclaimsStaleOne) {
  std::string Path = tempPath("stale", ".sock");
  std::remove(Path.c_str());

  std::string Err;
  int First = listenUnix(Path, &Err);
  ASSERT_GE(First, 0) << Err;

  // The socket answers (the listen backlog accepts the probe), so a
  // second daemon must refuse to steal it.
  std::string Err2;
  EXPECT_LT(listenUnix(Path, &Err2), 0);
  EXPECT_NE(Err2.find("daemon already running"), std::string::npos) << Err2;

  // Close WITHOUT unlinking: exactly what a crashed daemon leaves
  // behind. Now the probe is refused, the file is stale, and binding
  // over it succeeds.
  closeFd(First);
  int Second = listenUnix(Path, &Err);
  EXPECT_GE(Second, 0) << Err;
  closeFd(Second);
  std::remove(Path.c_str());
}

TEST(ServeSocket, IoTimeoutFreesSlotParkedBySilentClient) {
  std::string Socket = tempPath("iotimeout", ".sock");
  ServerOptions SO;
  SO.SocketPath = Socket;
  SO.Threads = 2;
  SO.MaxConnections = 1; // The silent client parks the ONLY slot.
  SO.IoTimeoutSeconds = 0.25;

  TestServer Server;
  Server.start(SO);
  ASSERT_EQ(Server.Err, "");

  std::string Err;
  int Silent = connectUnix(Socket, &Err);
  ASSERT_GE(Silent, 0) << Err;

  // A real request behind it: served only once the read timeout kicks
  // the silent client out of the slot.
  SweepResponse Resp;
  ASSERT_TRUE(submitSweepRequest(Socket, smallRequest(), Resp, nullptr,
                                 &Err))
      << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;

  // The silent connection was closed server-side without a byte sent.
  char B;
  ssize_t N = -1;
  for (int I = 0; I < 500 && N != 0; ++I) {
    N = ::recv(Silent, &B, 1, MSG_DONTWAIT);
    if (N != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(N, 0) << "silent client still connected (or was sent data)";
  closeFd(Silent);

  ASSERT_TRUE(requestShutdown(Socket, &Err)) << Err;
  Server.join();
}

TEST(ServeSocket, ClientRetriesUntilDaemonAppears) {
  std::string Socket = tempPath("lateboot", ".sock");
  std::remove(Socket.c_str());

  MetricsDoc MBefore = telemetry::registry().snapshot("test");

  // The daemon comes up ~150ms AFTER the first connect attempt fails.
  TestServer Server;
  std::thread Boot([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ServerOptions SO;
    SO.SocketPath = Socket;
    SO.Threads = 2;
    Server.start(SO);
  });

  ClientRetryPolicy Policy;
  Policy.Retries = 8;
  Policy.BaseBackoffSeconds = 0.05;
  SweepResponse Resp;
  std::string Err;
  ASSERT_TRUE(submitSweepRequest(Socket, smallRequest(), Resp, nullptr,
                                 Policy, &Err))
      << Err;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;

  Boot.join();
  ASSERT_EQ(Server.Err, "");
  MetricsDoc MAfter = telemetry::registry().snapshot("test");
  EXPECT_GE(MAfter.counter("client.retries") -
                MBefore.counter("client.retries"),
            1u);

  ASSERT_TRUE(requestShutdown(Socket, &Err)) << Err;
  Server.join();
}

TEST(ServeSocket, ClientRetriesOverloadedButTakesOtherErrorsAsFinal) {
  std::string Socket = tempPath("overload", ".sock");
  std::remove(Socket.c_str());
  std::string Err;
  int Listen = listenUnix(Socket, &Err);
  ASSERT_GE(Listen, 0) << Err;

  SweepRequest Req = smallRequest();
  SweepResponse Overloaded;
  Overloaded.Ok = false;
  Overloaded.Error = "overloaded";
  Overloaded.RequestHash = requestHash(Req);
  Overloaded.RetryAfterSeconds = 0.01;
  SweepResponse Final;
  Final.Ok = false;
  Final.Error = "unknown kernel"; // Retrying could never fix this.
  Final.RequestHash = requestHash(Req);

  // A hand-rolled daemon: sheds the first attempt, answers the retry
  // with a non-retryable refusal.
  std::thread Fake([&] {
    for (int C = 0; C < 2; ++C) {
      int Fd = ::accept(Listen, nullptr, nullptr);
      if (Fd < 0)
        return;
      LineReader Reader(Fd);
      std::string Line, E;
      if (Reader.readLine(Line, &E))
        sendLine(Fd,
                 toJson(C == 0 ? Overloaded : Final).dump(false), &E);
      closeFd(Fd);
    }
  });

  MetricsDoc MBefore = telemetry::registry().snapshot("test");
  ClientRetryPolicy Policy;
  Policy.Retries = 5;
  Policy.BaseBackoffSeconds = 0.01;
  SweepResponse Resp;
  ASSERT_TRUE(submitSweepRequest(Socket, Req, Resp, nullptr, Policy, &Err))
      << Err;
  // The overloaded answer was retried once; the refusal came back as
  // the daemon's final word (returns true, Ok=false).
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error, "unknown kernel");
  MetricsDoc MAfter = telemetry::registry().snapshot("test");
  EXPECT_EQ(MAfter.counter("client.retries") -
                MBefore.counter("client.retries"),
            1u);

  Fake.join();
  closeFd(Listen);
  std::remove(Socket.c_str());
}

TEST(ServeSocket, ShutdownDrainsInFlightRequests) {
  std::string Socket = tempPath("drain", ".sock");
  ServerOptions SO;
  SO.SocketPath = Socket;
  SO.Threads = 1;
  SO.DrainTimeoutSeconds = 30.0; // Generous: must NOT expire here.

  TestServer Server;
  Server.start(SO);
  ASSERT_EQ(Server.Err, "");

  // Shutdown lands while the request streams progress; the drain must
  // let it finish and answer Ok with every point.
  std::mutex Mu;
  std::condition_variable Cv;
  bool Progressed = false;
  SweepResponse Resp;
  std::string SubmitErr;
  bool Submitted = false;
  std::thread Client([&] {
    Submitted = submitSweepRequest(
        Socket, smallRequest(), Resp,
        [&](const ProgressEvent &) {
          std::lock_guard<std::mutex> L(Mu);
          Progressed = true;
          Cv.notify_one();
        },
        &SubmitErr);
  });
  {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return Progressed; });
  }
  std::string Err;
  ASSERT_TRUE(requestShutdown(Socket, &Err)) << Err;
  Client.join();
  Server.join();

  ASSERT_TRUE(Submitted) << SubmitErr;
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  ASSERT_EQ(Resp.Sweep.Points.size(), 4u);
  for (const SweepPoint &P : Resp.Sweep.Points)
    EXPECT_TRUE(P.Ok) << P.Error;

  // The daemon recorded how long the drain took.
  MetricsDoc M = telemetry::registry().snapshot("test");
  bool SawDrainGauge = false;
  for (const auto &G : M.Gauges)
    SawDrainGauge |= G.first == "serve.drain_seconds";
  EXPECT_TRUE(SawDrainGauge);
}

} // namespace
