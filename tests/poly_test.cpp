//===- tests/poly_test.cpp - Polyhedral substrate unit tests -------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/poly/AffineExpr.h"
#include "wcs/poly/ConvexSet.h"
#include "wcs/poly/FourierMotzkin.h"
#include "wcs/poly/IntegerSet.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

// Convenience: e = c0 + sum ci * xi over N dims.
AffineExpr expr(std::vector<int64_t> Coeffs, int64_t Const) {
  AffineExpr E(static_cast<unsigned>(Coeffs.size()));
  for (unsigned I = 0; I < Coeffs.size(); ++I)
    E.setCoeff(I, Coeffs[I]);
  E.setConstantTerm(Const);
  return E;
}

TEST(AffineExpr, EvalAndArithmetic) {
  AffineExpr E = expr({2, -3}, 5); // 2x - 3y + 5
  EXPECT_EQ(E.eval(IterVec{4, 1}), 10);
  EXPECT_EQ((E * 2).eval(IterVec{4, 1}), 20);
  EXPECT_EQ((E - E).eval(IterVec{7, 9}), 0);
  AffineExpr F = E + AffineExpr::dim(2, 1); // 2x - 2y + 5
  EXPECT_EQ(F.eval(IterVec{0, 1}), 3);
  EXPECT_FALSE(E.isConstant());
  EXPECT_TRUE(AffineExpr::constant(3, 9).isConstant());
}

TEST(AffineExpr, SameLinearPartIgnoresConstant) {
  EXPECT_TRUE(expr({1, 2}, 0).sameLinearPart(expr({1, 2}, 50)));
  EXPECT_FALSE(expr({1, 2}, 0).sameLinearPart(expr({1, 3}, 0)));
  // Extension with zero coefficients still matches.
  EXPECT_TRUE(expr({1}, 4).sameLinearPart(expr({1, 0}, 9)));
}

TEST(AffineExpr, EvalUnderDeeperIterators) {
  AffineExpr E = expr({1}, 0);
  EXPECT_EQ(E.eval(IterVec{5, 77, 99}), 5) << "extra dims must be ignored";
}

TEST(AffineExpr, Printing) {
  EXPECT_EQ(expr({1, -2}, 3).str({"i", "j"}), "i - 2*j + 3");
  EXPECT_EQ(expr({0, 0}, -7).str(), "-7");
  EXPECT_EQ(expr({-1, 0}, 0).str({"i", "j"}), "-i");
}

TEST(ConvexSet, MembershipAndBounds) {
  // Triangular domain: 0 <= i < 10, i <= j < 10.
  ConvexSet S(2);
  S.addConstraint(Constraint::ge(expr({1, 0}, 0)));   // i >= 0
  S.addConstraint(Constraint::ge(expr({-1, 0}, 9)));  // i <= 9
  S.addConstraint(Constraint::ge(expr({-1, 1}, 0)));  // j >= i
  S.addConstraint(Constraint::ge(expr({0, -1}, 9)));  // j <= 9

  EXPECT_TRUE(S.contains(IterVec{3, 3}));
  EXPECT_TRUE(S.contains(IterVec{0, 9}));
  EXPECT_FALSE(S.contains(IterVec{4, 3}));
  EXPECT_FALSE(S.contains(IterVec{10, 10}));

  auto B = S.lastDimBounds(IterVec{4});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lo, 4);
  EXPECT_EQ(B->Hi, 9);

  auto B2 = S.lastDimBounds(IterVec{20}); // i out of range: empty j range?
  ASSERT_TRUE(B2.has_value());
  // Constraints on i alone (dims below last) make the set empty for i=20.
  EXPECT_TRUE(B2->empty());
}

TEST(ConvexSet, EqualityConstraints) {
  ConvexSet S(1);
  S.addConstraint(Constraint::eq(expr({2}, -6))); // 2i == 6
  auto B = S.lastDimBounds(IterVec{});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lo, 3);
  EXPECT_EQ(B->Hi, 3);

  ConvexSet T(1);
  T.addConstraint(Constraint::eq(expr({2}, -5))); // 2i == 5: no int solution
  auto BT = T.lastDimBounds(IterVec{});
  ASSERT_TRUE(BT.has_value());
  EXPECT_TRUE(BT->empty());
}

TEST(ConvexSet, UnboundedDomainReportsNullopt) {
  ConvexSet S(1);
  S.addConstraint(Constraint::ge(expr({1}, 0))); // i >= 0 only
  EXPECT_FALSE(S.lastDimBounds(IterVec{}).has_value());
}

TEST(ConvexSet, RationalEmptiness) {
  ConvexSet S(2);
  S.addConstraint(Constraint::ge(expr({1, 1}, -10))); // x + y >= 10
  S.addConstraint(Constraint::ge(expr({-1, 0}, 3)));  // x <= 3
  S.addConstraint(Constraint::ge(expr({0, -1}, 3)));  // y <= 3
  EXPECT_EQ(S.emptyRational(), FMStatus::Infeasible);

  ConvexSet T(2);
  T.addConstraint(Constraint::ge(expr({1, 1}, -6))); // x + y >= 6
  T.addConstraint(Constraint::ge(expr({-1, 0}, 3))); // x <= 3
  T.addConstraint(Constraint::ge(expr({0, -1}, 3))); // y <= 3
  EXPECT_EQ(T.emptyRational(), FMStatus::Feasible);
}

TEST(FourierMotzkin, MinimizeSimpleLP) {
  // min k s.t. k >= 1, 3k >= y, 0 <= y <= 10, y >= 8  => k >= 8/3.
  LinearSystem Sys(2); // vars: k, y
  Sys.addGE({1, 0}, -1);  // k - 1 >= 0
  Sys.addGE({3, -1}, 0);  // 3k - y >= 0
  Sys.addGE({0, 1}, 0);   // y >= 0
  Sys.addGE({0, -1}, 10); // y <= 10
  Sys.addGE({0, 1}, -8);  // y >= 8
  std::optional<Rational> Min;
  ASSERT_EQ(Sys.minimize(0, Min), FMStatus::Feasible);
  ASSERT_TRUE(Min.has_value());
  EXPECT_EQ(Min->Num, 8);
  EXPECT_EQ(Min->Den, 3);
  EXPECT_EQ(Min->ceil(), 3);
  EXPECT_EQ(Min->floor(), 2);
}

TEST(FourierMotzkin, MinimizeInfeasible) {
  LinearSystem Sys(1);
  Sys.addGE({1}, -5);  // x >= 5
  Sys.addGE({-1}, 2);  // x <= 2
  std::optional<Rational> Min;
  EXPECT_EQ(Sys.minimize(0, Min), FMStatus::Infeasible);
}

TEST(FourierMotzkin, MinimizeUnboundedBelow) {
  LinearSystem Sys(1);
  Sys.addGE({-1}, 100); // x <= 100
  std::optional<Rational> Min;
  ASSERT_EQ(Sys.minimize(0, Min), FMStatus::Feasible);
  EXPECT_FALSE(Min.has_value());
}

TEST(FourierMotzkin, EqualityRows) {
  // x == 2y, y == 3  =>  min x == 6.
  LinearSystem Sys(2);
  Sys.addEQ({1, -2}, 0);
  Sys.addEQ({0, 1}, -3);
  std::optional<Rational> Min;
  ASSERT_EQ(Sys.minimize(0, Min), FMStatus::Feasible);
  ASSERT_TRUE(Min.has_value());
  EXPECT_EQ(*Min, Rational::fromInt(6));
}

TEST(Rational, NormalizationAndOrder) {
  Rational A(6, -4); // -3/2
  EXPECT_EQ(A.Num, -3);
  EXPECT_EQ(A.Den, 2);
  EXPECT_EQ(A.floor(), -2);
  EXPECT_EQ(A.ceil(), -1);
  EXPECT_LT(A, Rational(0, 1));
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
}

TEST(IntegerSet, UnionSemantics) {
  ConvexSet A(1);
  A.addConstraint(Constraint::ge(expr({1}, 0)));  // i >= 0
  A.addConstraint(Constraint::ge(expr({-1}, 3))); // i <= 3
  ConvexSet B(1);
  B.addConstraint(Constraint::ge(expr({1}, -7)));  // i >= 7
  B.addConstraint(Constraint::ge(expr({-1}, 9)));  // i <= 9

  IntegerSet U(A);
  U.addDisjunct(B);
  EXPECT_TRUE(U.contains(IterVec{2}));
  EXPECT_TRUE(U.contains(IterVec{8}));
  EXPECT_FALSE(U.contains(IterVec{5}));

  auto Bd = U.lastDimBounds(IterVec{});
  ASSERT_TRUE(Bd.has_value());
  EXPECT_EQ(Bd->Lo, 0);
  EXPECT_EQ(Bd->Hi, 9) << "hull of both disjuncts";
}

} // namespace
