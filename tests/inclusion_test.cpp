//===- tests/inclusion_test.cpp - Inclusive/exclusive hierarchies ---------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The paper's appendix A.2 models NINE hierarchies and notes that
// inclusive and exclusive hierarchies also satisfy data independence and
// "could be captured in a similar manner" -- this implementation does
// capture them. These tests check the structural invariants (inclusion /
// disjointness), back-invalidation, victim migration, and that warping
// remains bit-exact under both modes.
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/ConcreteCache.h"
#include "wcs/frontend/Frontend.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;

namespace {

HierarchyConfig hierarchy(InclusionPolicy P, PolicyKind K) {
  CacheConfig L1;
  L1.SizeBytes = 4 * 2 * 64; // 4 sets x 2 ways.
  L1.Assoc = 2;
  L1.BlockBytes = 64;
  L1.Policy = K;
  CacheConfig L2 = L1;
  L2.SizeBytes = 8 * 4 * 64; // 8 sets x 4 ways.
  L2.Assoc = 4;
  return HierarchyConfig::twoLevel(L1, L2, P);
}

void checkInvariant(const ConcreteHierarchy &H, InclusionPolicy P) {
  const ConcreteCache &L1 = H.level(0);
  const ConcreteCache &L2 = H.level(1);
  for (unsigned S = 0; S < L1.numSets(); ++S) {
    for (unsigned W = 0; W < L1.assoc(); ++W) {
      BlockId B = L1.blockAt(S, W);
      if (B == kInvalidBlock)
        continue;
      if (P == InclusionPolicy::Inclusive) {
        EXPECT_TRUE(L2.probe(B)) << "L1 block " << B << " missing from L2";
      } else if (P == InclusionPolicy::Exclusive) {
        EXPECT_FALSE(L2.probe(B)) << "L1 block " << B << " also in L2";
      }
    }
  }
}

TEST(Inclusion, InvariantsHoldOnRandomTraces) {
  std::mt19937 Rng(77);
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Plru,
                       PolicyKind::QuadAgeLru}) {
    for (InclusionPolicy P :
         {InclusionPolicy::Inclusive, InclusionPolicy::Exclusive}) {
      ConcreteHierarchy H(hierarchy(P, K));
      std::uniform_int_distribution<BlockId> Blocks(0, 63);
      for (int I = 0; I < 3000; ++I) {
        H.access(Blocks(Rng), I % 4 == 0);
        if (I % 64 == 0)
          checkInvariant(H, P);
      }
      checkInvariant(H, P);
    }
  }
}

TEST(Inclusion, BackInvalidationIsReported) {
  // 1-set/1-way L2 over a 1-set/2-way L1: inserting a second distinct
  // block into the L2 must evict the first and back-invalidate it.
  CacheConfig L1;
  L1.SizeBytes = 2 * 64;
  L1.Assoc = 2;
  L1.BlockBytes = 64;
  L1.Policy = PolicyKind::Lru;
  CacheConfig L2;
  L2.SizeBytes = 64;
  L2.Assoc = 1;
  L2.BlockBytes = 64;
  L2.Policy = PolicyKind::Lru;
  ConcreteHierarchy H(
      HierarchyConfig::twoLevel(L1, L2, InclusionPolicy::Inclusive));
  EXPECT_FALSE(H.access(10, false).L1Hit);
  HierarchyOutcome O = H.access(20, false);
  EXPECT_EQ(O.BackInvalidations, 1u) << "10 must leave the L1 with its "
                                        "L2 copy";
  EXPECT_FALSE(H.level(0).probe(10));
  EXPECT_TRUE(H.level(0).probe(20));
}

TEST(Inclusion, ExclusivePromotionAndVictimMigration) {
  CacheConfig L1;
  L1.SizeBytes = 64; // 1 line.
  L1.Assoc = 1;
  L1.BlockBytes = 64;
  L1.Policy = PolicyKind::Lru;
  CacheConfig L2;
  L2.SizeBytes = 2 * 64;
  L2.Assoc = 2;
  L2.BlockBytes = 64;
  L2.Policy = PolicyKind::Lru;
  ConcreteHierarchy H(
      HierarchyConfig::twoLevel(L1, L2, InclusionPolicy::Exclusive));
  H.access(10, false); // L1={10}, L2={}.
  EXPECT_FALSE(H.level(1).probe(10)) << "exclusive: no L2 copy on fill";
  H.access(20, false); // 10 demoted: L1={20}, L2={10}.
  EXPECT_TRUE(H.level(1).probe(10));
  EXPECT_FALSE(H.level(1).probe(20));
  HierarchyOutcome O = H.access(10, false); // Promote 10 back.
  EXPECT_FALSE(O.L1Hit);
  EXPECT_TRUE(O.L2Hit);
  EXPECT_TRUE(H.level(0).probe(10));
  EXPECT_FALSE(H.level(1).probe(10)) << "promotion removes the L2 copy";
  EXPECT_TRUE(H.level(1).probe(20));
}

TEST(Inclusion, ExclusiveHierarchyEffectivelyAddsCapacity) {
  // A thrash pattern bigger than the L1 but no bigger than L1+L2 should
  // eventually hit fully under exclusivity.
  ConcreteHierarchy H(hierarchy(InclusionPolicy::Exclusive,
                                PolicyKind::Lru));
  uint64_t Misses = 0;
  for (int Round = 0; Round < 50; ++Round)
    for (BlockId B = 0; B < 24; ++B) { // 24 blocks <= 8 + 32 lines.
      HierarchyOutcome O = H.access(B, false);
      if (!O.L1Hit && !O.L2Hit)
        ++Misses;
    }
  EXPECT_EQ(Misses, 24u) << "only cold misses once warmed up";
}

TEST(Inclusion, WarpingStaysExactUnderAllInclusionPolicies) {
  ParseResult PR = parseScop(R"(
    param T = 5; param N = 900;
    int A[N]; int B[N];
    for (t = 0; t < T; t++)
      for (i = 1; i < N - 1; i++)
        B[i] = A[i-1] + A[i+1];
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  for (InclusionPolicy P :
       {InclusionPolicy::NonInclusiveNonExclusive,
        InclusionPolicy::Inclusive, InclusionPolicy::Exclusive}) {
    for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Plru}) {
      HierarchyConfig H = hierarchy(P, K);
      ConcreteSimulator Ref(PR.Program, H);
      WarpingSimulator Warp(PR.Program, H);
      SimStats R = Ref.run(), W = Warp.run();
      ASSERT_EQ(W.totalAccesses(), R.totalAccesses())
          << inclusionName(P) << "/" << policyName(K);
      ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses)
          << inclusionName(P) << "/" << policyName(K);
      ASSERT_EQ(W.Level[1].Accesses, R.Level[1].Accesses)
          << inclusionName(P) << "/" << policyName(K);
      ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses)
          << inclusionName(P) << "/" << policyName(K);
      EXPECT_GE(W.Warps, 1u) << inclusionName(P) << "/" << policyName(K);
    }
  }
}

TEST(Inclusion, RandomizedWarpEquivalenceAcrossModes) {
  // Randomized nests under inclusive and exclusive hierarchies; the
  // equivalence oracle is the concrete simulator.
  std::mt19937 Rng(2024);
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  for (int Trial = 0; Trial < 12; ++Trial) {
    std::string Src =
        "param N = " + std::to_string(Rand(80, 400)) +
        "; param T = " + std::to_string(Rand(2, 5)) + ";\n" +
        "int A[N]; int B[N];\n"
        "for (t = 0; t < T; t++) {\n"
        "  for (i = 2; i < N - 2; i++)\n"
        "    B[i] = A[i-2] + A[i+" +
        std::to_string(Rand(0, 2)) + "];\n" +
        "  for (i = 0; i < N; i += " + std::to_string(Rand(1, 3)) +
        ")\n    A[i] = B[i];\n}\n";
    ParseResult PR = parseScop(Src);
    ASSERT_TRUE(PR.ok()) << PR.message() << "\n" << Src;
    InclusionPolicy P = Trial % 2 == 0 ? InclusionPolicy::Inclusive
                                       : InclusionPolicy::Exclusive;
    PolicyKind K = Trial % 3 == 0 ? PolicyKind::QuadAgeLru : PolicyKind::Lru;
    HierarchyConfig H = hierarchy(P, K);
    ConcreteSimulator Ref(PR.Program, H);
    WarpingSimulator Warp(PR.Program, H);
    SimStats R = Ref.run(), W = Warp.run();
    ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses) << Src;
    ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses) << Src;
    ASSERT_EQ(W.Level[1].Accesses, R.Level[1].Accesses) << Src;
  }
}

} // namespace
