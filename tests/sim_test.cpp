//===- tests/sim_test.cpp - Simulator unit tests --------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Direct checks of Algorithm 1 and Algorithm 2 on the paper's running
// examples, with analytically known hit/miss counts.
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Frontend.h"
#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

/// The paper's Fig. 1 running example: each array cell occupies a full
/// cache line (64-byte elements), fully-associative LRU cache of size 2.
ScopProgram fig1Stencil() {
  ScopBuilder B("fig1");
  unsigned A = B.addArray("A", 64, {1000});
  unsigned Bv = B.addArray("B", 64, {1000});
  B.beginLoop("i", B.cst(1), B.cst(998));
  B.read(A, {B.iter("i") - B.cst(1)});
  B.read(A, {B.iter("i")});
  B.write(Bv, {B.iter("i") - B.cst(1)});
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  EXPECT_EQ(Err, "");
  return P;
}

HierarchyConfig tinyFullyAssoc(unsigned Lines, PolicyKind K) {
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = Lines;
  C.SizeBytes = static_cast<uint64_t>(Lines) * 64;
  C.Policy = K;
  return HierarchyConfig::singleLevel(C);
}

TEST(ConcreteSim, Fig1MissCountsMatchThePaper) {
  ScopProgram P = fig1Stencil();
  ConcreteSimulator Sim(P, tinyFullyAssoc(2, PolicyKind::Lru));
  SimStats S = Sim.run();
  // 998 iterations: 3 misses in the first, then 1 hit + 2 misses each.
  EXPECT_EQ(S.totalAccesses(), 998u * 3);
  EXPECT_EQ(S.Level[0].Misses, 3u + 997u * 2);
  EXPECT_EQ(S.Level[0].hits(), 997u);
  EXPECT_EQ(S.SimulatedAccesses, S.totalAccesses());
  EXPECT_EQ(S.WarpedAccesses, 0u);
}

TEST(WarpingSim, Fig1WarpsAndCountsExactly) {
  ScopProgram P = fig1Stencil();
  WarpingSimulator Sim(P, tinyFullyAssoc(2, PolicyKind::Lru));
  SimStats S = Sim.run();
  EXPECT_EQ(S.totalAccesses(), 998u * 3);
  EXPECT_EQ(S.Level[0].Misses, 3u + 997u * 2);
  EXPECT_GE(S.Warps, 1u);
  // The paper fast-forwards after two explicit iterations; our two-phase
  // store needs one more, so at most a handful are simulated explicitly.
  EXPECT_LE(S.SimulatedAccesses, 5u * 3);
  EXPECT_EQ(S.SimulatedAccesses + S.WarpedAccesses, S.totalAccesses());
  EXPECT_LT(S.nonWarpedShare(), 0.01);
}

TEST(WarpingSim, Fig3SetAssociativeRotation) {
  // The paper's Fig. 3: four sets of associativity two, LRU; the state
  // rotates by one set per iteration (pi_rot(1)). Warping must still be
  // exact and must engage.
  ScopProgram P = fig1Stencil();
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = 2;
  C.SizeBytes = 4 * 2 * 64; // 4 sets.
  C.Policy = PolicyKind::Lru;
  WarpingSimulator Warp(P, HierarchyConfig::singleLevel(C));
  ConcreteSimulator Ref(P, HierarchyConfig::singleLevel(C));
  SimStats W = Warp.run(), R = Ref.run();
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses);
  EXPECT_GE(W.Warps, 1u);
  EXPECT_LT(W.nonWarpedShare(), 0.05);
}

TEST(WarpingSim, WarpingDisabledMatchesConcrete) {
  ScopProgram P = fig1Stencil();
  SimOptions O;
  O.Warp.Enable = false;
  WarpingSimulator Sim(P, tinyFullyAssoc(2, PolicyKind::Lru), O);
  SimStats S = Sim.run();
  EXPECT_EQ(S.Warps, 0u);
  EXPECT_EQ(S.WarpedAccesses, 0u);
  EXPECT_EQ(S.Level[0].Misses, 3u + 997u * 2);
}

TEST(WarpingSim, AllPoliciesWarpTheStencil) {
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Plru,
                       PolicyKind::QuadAgeLru}) {
    ScopProgram P = fig1Stencil();
    HierarchyConfig H = tinyFullyAssoc(2, K);
    WarpingSimulator Warp(P, H);
    ConcreteSimulator Ref(P, H);
    SimStats W = Warp.run(), R = Ref.run();
    EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses) << policyName(K);
    EXPECT_GE(W.Warps, 1u) << policyName(K);
  }
}

TEST(WarpingSim, TwoLevelHierarchyIsExactAndWarps) {
  // Dense sweep over a 1D array with 4-byte elements: the classic
  // delta = blocksize/elemsize rotating match.
  ParseResult PR = parseScop(R"(
    param N = 4096;
    int A[N]; int B[N];
    for (t = 0; t < 6; t++)
      for (i = 1; i < N - 1; i++)
        B[i] = A[i-1] + A[i] + A[i+1];
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  CacheConfig L1;
  L1.BlockBytes = 64;
  L1.Assoc = 2;
  L1.SizeBytes = 8 * 2 * 64; // 8 sets.
  L1.Policy = PolicyKind::Lru;
  CacheConfig L2 = L1;
  L2.SizeBytes = 32 * 2 * 64; // 32 sets.
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);
  WarpingSimulator Warp(PR.Program, H);
  ConcreteSimulator Ref(PR.Program, H);
  SimStats W = Warp.run(), R = Ref.run();
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses);
  EXPECT_EQ(W.Level[1].Accesses, R.Level[1].Accesses);
  EXPECT_EQ(W.Level[1].Misses, R.Level[1].Misses);
  EXPECT_GE(W.Warps, 1u);
  EXPECT_LT(W.nonWarpedShare(), 0.2);
}

TEST(WarpingSim, GuardedBoundaryLimitsTheWarp) {
  // The guard turns off the extra access midway through the loop; the
  // domain check must stop warping at the boundary, keeping counts exact.
  ParseResult PR = parseScop(R"(
    param N = 2048;
    int A[N]; int B[N];
    for (i = 0; i < N; i++) {
      B[i] = A[i];
      if (i >= 1000)
        B[i] = A[i] + A[i - 1000];
    }
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = 4;
  C.SizeBytes = 4 * 4 * 64;
  C.Policy = PolicyKind::Lru;
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  WarpingSimulator Warp(PR.Program, H);
  ConcreteSimulator Ref(PR.Program, H);
  SimStats W = Warp.run(), R = Ref.run();
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses);
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
}

TEST(WarpingSim, TriangularInnerLoopStaysExact) {
  // Triangular bounds couple the outer iterator with the inner loop; the
  // coupled-domain (slow) path must reject or bound outer-loop warps.
  ParseResult PR = parseScop(R"(
    param N = 96;
    double A[N][N]; double x[N]; double c[N];
    for (i = 0; i < N; i++) {
      c[i] = 0.0;
      for (j = i; j < N; j++)
        c[i] = c[i] + A[i][j] * x[j];
    }
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Plru}) {
    CacheConfig C;
    C.BlockBytes = 64;
    C.Assoc = 4;
    C.SizeBytes = 8 * 4 * 64;
    C.Policy = K;
    HierarchyConfig H = HierarchyConfig::singleLevel(C);
    WarpingSimulator Warp(PR.Program, H);
    ConcreteSimulator Ref(PR.Program, H);
    SimStats W = Warp.run(), R = Ref.run();
    EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses) << policyName(K);
    EXPECT_EQ(W.totalAccesses(), R.totalAccesses()) << policyName(K);
  }
}

TEST(WarpingSim, DescendingAndStridedLoopsStayExact) {
  ParseResult PR = parseScop(R"(
    param N = 1500;
    int A[N]; int B[N];
    for (t = 0; t < 4; t++) {
      for (i = N - 1; i >= 1; i--)
        B[i] = A[i] + A[i-1];
      for (i = 0; i < N; i += 2)
        A[i] = B[i];
    }
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = 2;
  C.SizeBytes = 8 * 2 * 64;
  C.Policy = PolicyKind::Lru;
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  WarpingSimulator Warp(PR.Program, H);
  ConcreteSimulator Ref(PR.Program, H);
  SimStats W = Warp.run(), R = Ref.run();
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses);
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
}

TEST(WarpingSim, TimeLoopWarpsWholeSteadyState) {
  // Small working set: the cache state becomes identical across outer
  // time iterations, which admits an identity (rotation 0) warp across
  // the entire time loop.
  ParseResult PR = parseScop(R"(
    param T = 500; param N = 64;
    int A[N]; int B[N];
    for (t = 0; t < T; t++) {
      for (i = 1; i < N - 1; i++)
        B[i] = A[i-1] + A[i+1];
      for (i = 1; i < N - 1; i++)
        A[i] = B[i];
    }
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = 4;
  C.SizeBytes = 16 * 4 * 64; // Holds the whole working set.
  C.Policy = PolicyKind::Lru;
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  WarpingSimulator Warp(PR.Program, H);
  ConcreteSimulator Ref(PR.Program, H);
  SimStats W = Warp.run(), R = Ref.run();
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses);
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
  EXPECT_LT(W.nonWarpedShare(), 0.05)
      << "the time loop should warp almost everything";
}

TEST(WarpingSim, ScalarInclusionStaysExact) {
  ParseResult PR = parseScop(R"(
    param N = 800;
    double s; double A[N];
    s = 0.0;
    for (i = 0; i < N; i++)
      s += A[i];
  )");
  ASSERT_TRUE(PR.ok()) << PR.message();
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = 2;
  C.SizeBytes = 4 * 2 * 64;
  C.Policy = PolicyKind::Lru;
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  for (bool Scalars : {false, true}) {
    SimOptions O;
    O.IncludeScalars = Scalars;
    WarpingSimulator Warp(PR.Program, H, O);
    ConcreteSimulator Ref(PR.Program, H, O);
    SimStats W = Warp.run(), R = Ref.run();
    EXPECT_EQ(W.totalAccesses(), R.totalAccesses()) << Scalars;
    EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses) << Scalars;
    if (Scalars)
      EXPECT_EQ(R.totalAccesses(), 1u + 800u * 3);
    else
      EXPECT_EQ(R.totalAccesses(), 800u);
  }
}

} // namespace
