//===- tests/polybench_test.cpp - PolyBench suite integration tests -------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Every kernel must parse at every size, have the expected structure, and
// above all: warping simulation must agree bit-exactly with non-warping
// simulation on all 30 kernels, across replacement policies and both
// hierarchy depths. This is the suite-level instance of the paper's
// soundness claim.
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

TEST(Polybench, ThirtyKernelsRegistered) {
  EXPECT_EQ(polybenchKernels().size(), 30u);
  EXPECT_NE(findKernel("gemm"), nullptr);
  EXPECT_NE(findKernel("floyd-warshall"), nullptr);
  EXPECT_EQ(findKernel("nonexistent"), nullptr);
}

TEST(Polybench, EveryKernelBuildsAtEverySize) {
  for (const KernelInfo &K : polybenchKernels()) {
    for (unsigned S = 0; S < NumProblemSizes; ++S) {
      std::string Err;
      ScopProgram P = buildKernel(K, static_cast<ProblemSize>(S), &Err);
      ASSERT_EQ(Err, "") << K.Name << " at "
                         << problemSizeName(static_cast<ProblemSize>(S));
      EXPECT_FALSE(P.accesses().empty()) << K.Name;
      EXPECT_FALSE(P.loops().empty()) << K.Name;
    }
  }
}

TEST(Polybench, SizesAreStrictlyIncreasing) {
  for (const KernelInfo &K : polybenchKernels()) {
    for (unsigned S = 1; S < NumProblemSizes; ++S) {
      int64_t Prev = 1, Cur = 1;
      for (int64_t V : K.SizeValues[S - 1])
        Prev *= V;
      for (int64_t V : K.SizeValues[S])
        Cur *= V;
      EXPECT_GT(Cur, Prev) << K.Name << " size step " << S;
    }
  }
}

TEST(Polybench, KnownAccessCounts) {
  // gemm at MINI: NI=16, NJ=18, NK=20.
  std::string Err;
  ScopProgram P = buildKernel("gemm", ProblemSize::Mini, &Err);
  ASSERT_EQ(Err, "");
  ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(
                               CacheConfig::scaledL1()));
  SimStats S = Sim.run();
  // C *= beta: 2 accesses per (i,j); C += alpha*A*B: 4 array accesses per
  // (i,k,j) (read C, read A, read B, write C).
  EXPECT_EQ(S.totalAccesses(), 16u * 18 * 2 + 16u * 20 * 18 * 4);

  // trisolv at MINI: N=40: per i: x=b (2) + j-loop (4 each: read x[i],
  // L[i][j], x[j], write x[i]) + final divide (read x, read L, write x).
  ScopProgram P2 = buildKernel("trisolv", ProblemSize::Mini, &Err);
  ASSERT_EQ(Err, "");
  ConcreteSimulator Sim2(P2, HierarchyConfig::singleLevel(
                                CacheConfig::scaledL1()));
  SimStats S2 = Sim2.run();
  uint64_t Expected = 0;
  for (uint64_t I = 0; I < 40; ++I)
    Expected += 2 + 4 * I + 3;
  EXPECT_EQ(S2.totalAccesses(), Expected);
}

struct SuiteParam {
  PolicyKind Policy;
  bool TwoLevel;
};

class PolybenchEquivalence : public ::testing::TestWithParam<SuiteParam> {};

TEST_P(PolybenchEquivalence, WarpingEqualsConcreteOnAllKernels) {
  SuiteParam SP = GetParam();
  CacheConfig L1;
  L1.SizeBytes = 1024; // Tiny scaled cache: heavy capacity traffic even
  L1.Assoc = 4;        // at MINI problem sizes.
  L1.BlockBytes = 64;
  L1.Policy = SP.Policy;
  CacheConfig L2 = L1;
  L2.SizeBytes = 4096;
  L2.Assoc = 8;
  HierarchyConfig H = SP.TwoLevel ? HierarchyConfig::twoLevel(L1, L2)
                                  : HierarchyConfig::singleLevel(L1);
  for (const KernelInfo &K : polybenchKernels()) {
    std::string Err;
    ScopProgram P = buildKernel(K, ProblemSize::Mini, &Err);
    ASSERT_EQ(Err, "") << K.Name;
    ConcreteSimulator Ref(P, H);
    WarpingSimulator Warp(P, H);
    SimStats R = Ref.run(), W = Warp.run();
    ASSERT_EQ(W.totalAccesses(), R.totalAccesses()) << K.Name;
    ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses) << K.Name;
    if (SP.TwoLevel) {
      ASSERT_EQ(W.Level[1].Accesses, R.Level[1].Accesses) << K.Name;
      ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses) << K.Name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolybenchEquivalence,
    ::testing::Values(SuiteParam{PolicyKind::Lru, false},
                      SuiteParam{PolicyKind::Fifo, false},
                      SuiteParam{PolicyKind::Plru, false},
                      SuiteParam{PolicyKind::QuadAgeLru, false},
                      SuiteParam{PolicyKind::Lru, true},
                      SuiteParam{PolicyKind::Plru, true},
                      SuiteParam{PolicyKind::QuadAgeLru, true}),
    [](const ::testing::TestParamInfo<SuiteParam> &Info) {
      return std::string(policyName(Info.param.Policy)) +
             (Info.param.TwoLevel ? "_L2" : "_L1");
    });

TEST(PolybenchWarping, StencilsWarpAtSmallSize) {
  // The paper's headline claim (Fig. 6): stencil kernels warp almost all
  // of their accesses. Verify on the scaled test-system L1.
  CacheConfig L1;
  L1.SizeBytes = 2048; // Scaled with SMALL problem sizes.
  L1.Assoc = 8;
  L1.BlockBytes = 64;
  L1.Policy = PolicyKind::Lru;
  HierarchyConfig H = HierarchyConfig::singleLevel(L1);
  for (const char *Name : {"jacobi-1d", "jacobi-2d", "seidel-2d"}) {
    std::string Err;
    ScopProgram P = buildKernel(Name, ProblemSize::Small, &Err);
    ASSERT_EQ(Err, "") << Name;
    WarpingSimulator Warp(P, H);
    SimStats W = Warp.run();
    EXPECT_GE(W.Warps, 1u) << Name;
    EXPECT_LT(W.nonWarpedShare(), 0.7) << Name;
    ConcreteSimulator Ref(P, H);
    SimStats R = Ref.run();
    EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses) << Name;
  }
}

} // namespace
