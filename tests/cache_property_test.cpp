//===- tests/cache_property_test.cpp - Data-independence properties ------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Property tests for Theorem 1 (data independence of caches) and
// Corollary 5 (data independence of hierarchies): for an index-preserving
// bijection pi, simulating pi(sequence) from pi(initial state) produces
// pi(final state) with identical hit/miss classifications. Warping's
// soundness rests entirely on this property, so it is tested for every
// policy over randomized access sequences and two bijection families.
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/ConcreteCache.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;

namespace {

struct Params {
  PolicyKind Policy;
  unsigned Assoc;
  unsigned Sets;
};

class DataIndependenceTest : public ::testing::TestWithParam<Params> {};

/// An index-preserving bijection on blocks.
struct Bijection {
  enum class Kind { Shift, XorHigh } K;
  int64_t Amount; ///< Shift amount, or XOR mask multiple of the set count.

  BlockId operator()(BlockId B) const {
    if (K == Kind::Shift)
      return B + Amount;
    return B ^ Amount;
  }
  /// Induced bijection on cache sets (modulo placement).
  unsigned mapSet(unsigned S, unsigned Sets) const {
    if (K == Kind::Shift)
      return static_cast<unsigned>(floorMod(S + Amount, Sets));
    return static_cast<unsigned>((S ^ Amount) & (Sets - 1));
  }
};

std::vector<BlockId> randomSequence(std::mt19937 &Rng, unsigned Length,
                                    BlockId Universe) {
  // Mix uniform blocks with short repeats so that hits actually occur.
  std::uniform_int_distribution<BlockId> Blocks(0, Universe - 1);
  std::uniform_int_distribution<int> Coin(0, 3);
  std::vector<BlockId> Seq;
  Seq.reserve(Length);
  for (unsigned I = 0; I < Length; ++I) {
    if (!Seq.empty() && Coin(Rng) == 0)
      Seq.push_back(Seq[Rng() % Seq.size()]); // Revisit an earlier block.
    else
      Seq.push_back(Blocks(Rng));
  }
  return Seq;
}

void expectRelatedStates(const ConcreteCache &C1, const ConcreteCache &C2,
                         const Bijection &Pi) {
  unsigned Sets = C1.numSets();
  for (unsigned S = 0; S < Sets; ++S) {
    unsigned S2 = Pi.mapSet(S, Sets);
    EXPECT_EQ(C1.policyWord(S), C2.policyWord(S2))
        << "policy metadata differs at set " << S;
    for (unsigned W = 0; W < C1.assoc(); ++W) {
      BlockId B1 = C1.blockAt(S, W);
      BlockId B2 = C2.blockAt(S2, W);
      if (B1 == kInvalidBlock)
        EXPECT_EQ(B2, kInvalidBlock);
      else
        EXPECT_EQ(B2, Pi(B1)) << "line (" << S << "," << W << ")";
    }
  }
}

TEST_P(DataIndependenceTest, SingleCacheTheorem1) {
  Params P = GetParam();
  CacheConfig Cfg;
  Cfg.Assoc = P.Assoc;
  Cfg.BlockBytes = 64;
  Cfg.SizeBytes = static_cast<uint64_t>(P.Assoc) * P.Sets * 64;
  Cfg.Policy = P.Policy;
  ASSERT_EQ(Cfg.validate(), "");

  std::mt19937 Rng(12345);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<BlockId> Seq =
        randomSequence(Rng, 400, static_cast<BlockId>(P.Sets) * P.Assoc * 3);
    Bijection Pi;
    if (Trial % 2 == 0) {
      Pi.K = Bijection::Kind::Shift;
      Pi.Amount = static_cast<int64_t>(Rng() % 1000);
    } else {
      Pi.K = Bijection::Kind::XorHigh;
      // XOR with a multiple of the set count flips only "tag" bits, so it
      // preserves the partition of blocks into sets.
      Pi.Amount = static_cast<int64_t>((Rng() % 16)) * P.Sets;
    }

    ConcreteCache C1(Cfg), C2(Cfg);
    for (BlockId B : Seq) {
      AccessOutcome O1 = C1.access(B, true);
      AccessOutcome O2 = C2.access(Pi(B), true);
      ASSERT_EQ(O1.Hit, O2.Hit)
          << "classification differs under bijection (Theorem 1)";
    }
    expectRelatedStates(C1, C2, Pi);
  }
}

TEST_P(DataIndependenceTest, TwoLevelHierarchyCorollary5) {
  Params P = GetParam();
  CacheConfig L1;
  L1.Assoc = P.Assoc;
  L1.BlockBytes = 64;
  L1.SizeBytes = static_cast<uint64_t>(P.Assoc) * P.Sets * 64;
  L1.Policy = P.Policy;
  CacheConfig L2 = L1;
  L2.SizeBytes *= 4; // 4x the sets.
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);
  ASSERT_EQ(H.validate(), "");

  std::mt19937 Rng(999);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<BlockId> Seq =
        randomSequence(Rng, 600, static_cast<BlockId>(P.Sets) * P.Assoc * 8);
    Bijection Pi{Bijection::Kind::Shift,
                 static_cast<int64_t>(Rng() % 4096)};

    ConcreteHierarchy H1(H), H2(H);
    for (size_t I = 0; I < Seq.size(); ++I) {
      bool IsWrite = (I % 3) == 0;
      HierarchyOutcome O1 = H1.access(Seq[I], IsWrite);
      HierarchyOutcome O2 = H2.access(Pi(Seq[I]), IsWrite);
      ASSERT_EQ(O1.L1Hit, O2.L1Hit);
      ASSERT_EQ(O1.L2Accessed, O2.L2Accessed);
      ASSERT_EQ(O1.L2Hit, O2.L2Hit);
    }
    expectRelatedStates(H1.level(0), H2.level(0), Pi);
    expectRelatedStates(H1.level(1), H2.level(1), Pi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DataIndependenceTest,
    ::testing::Values(Params{PolicyKind::Lru, 4, 8},
                      Params{PolicyKind::Lru, 8, 4},
                      Params{PolicyKind::Fifo, 4, 8},
                      Params{PolicyKind::Fifo, 2, 16},
                      Params{PolicyKind::Plru, 4, 8},
                      Params{PolicyKind::Plru, 8, 4},
                      Params{PolicyKind::QuadAgeLru, 4, 8},
                      Params{PolicyKind::QuadAgeLru, 16, 2}),
    [](const ::testing::TestParamInfo<Params> &Info) {
      return std::string(policyName(Info.param.Policy)) + "_a" +
             std::to_string(Info.param.Assoc) + "_s" +
             std::to_string(Info.param.Sets);
    });

} // namespace
