//===- wcs/support/Hashing.h - 64-bit hashing utilities ---------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit hashing used for symbolic cache-state keys and
/// for content-addressing canonicalized sweep requests in the wcs-serve
/// result store. The warping simulator hashes full symbolic cache
/// states once per loop iteration probe, so the mixer is a cheap
/// splitmix64-style function; the byte/string entry points reuse it
/// word-at-a-time so store keys are deterministic across platforms and
/// runs (no pointer or seed dependence).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_HASHING_H
#define WCS_SUPPORT_HASHING_H

#include <cstdint>
#include <cstring>
#include <string>

namespace wcs {

/// splitmix64 finalizer; a solid, fast 64-bit mixer.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines an existing hash with a new value, order-sensitively.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// Incremental order-sensitive hasher for streaming state fingerprints.
class HashStream {
public:
  void add(uint64_t V) { State = hashCombine(State, V); }
  void add(int64_t V) { add(static_cast<uint64_t>(V)); }
  void add(int32_t V) { add(static_cast<uint64_t>(static_cast<uint64_t>(V))); }
  void add(uint32_t V) { add(static_cast<uint64_t>(V)); }

  uint64_t digest() const { return State; }

private:
  uint64_t State = 0x2545f4914f6cdd1dULL;
};

/// Hashes a byte buffer: full little-endian words through the
/// order-sensitive combiner, then the (zero-padded) tail and the length
/// so "ab","c" and "a","bc" differ. Deterministic across platforms.
inline uint64_t hashBytes(const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  HashStream H;
  size_t I = 0;
  for (; I + 8 <= Len; I += 8) {
    uint64_t W = 0;
    for (unsigned B = 0; B < 8; ++B)
      W |= static_cast<uint64_t>(P[I + B]) << (8 * B);
    H.add(W);
  }
  if (I < Len) {
    uint64_t W = 0;
    for (unsigned B = 0; I + B < Len; ++B)
      W |= static_cast<uint64_t>(P[I + B]) << (8 * B);
    H.add(W);
  }
  H.add(static_cast<uint64_t>(Len));
  return H.digest();
}

inline uint64_t hashString(const std::string &S) {
  return hashBytes(S.data(), S.size());
}

/// Renders a 64-bit hash as the fixed-width 16-digit lowercase hex the
/// result store uses as its content-address key.
inline std::string hashHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, H >>= 4)
    S[static_cast<size_t>(I)] = Digits[H & 0xf];
  return S;
}

} // namespace wcs

#endif // WCS_SUPPORT_HASHING_H
