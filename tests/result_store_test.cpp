//===- tests/result_store_test.cpp - wcs-serve result store tests ---------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The content-addressed result store behind wcs-serve: hit/miss
// accounting, last-insert-wins persistence, torn-tail recovery from a
// truncated log, compaction (dedup + oldest-first eviction), and the
// property that a stored point read back -- in-process or across a
// reopen -- is byte-identical to what a fresh simulation produced.
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/ResultStore.h"

#include "RandomProgram.h"
#include "wcs/support/Hashing.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include <unistd.h>

using namespace wcs;

namespace {

/// A unique scratch path, removed on destruction.
class TempFile {
public:
  explicit TempFile(const char *Tag) {
    std::ostringstream OS;
    OS << ::testing::TempDir() << "wcs-store-" << Tag << "-" << ::getpid()
       << ".jsonl";
    P = OS.str();
    std::remove(P.c_str());
  }
  ~TempFile() { std::remove(P.c_str()); }
  const std::string &path() const { return P; }

private:
  std::string P;
};

SweepPoint makePoint(uint64_t Accesses, uint64_t Misses) {
  SweepPoint P;
  CacheConfig C{4096, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  P.Cache = HierarchyConfig::singleLevel(C);
  P.Method = SweepMethod::StackDistance;
  P.Ok = true;
  P.Stats.NumLevels = 1;
  P.Stats.Level[0].Accesses = Accesses;
  P.Stats.Level[0].Misses = Misses;
  P.Stats.Seconds = 0.125;
  return P;
}

std::string dumpPoint(const SweepPoint &P) { return toJson(P).dump(false); }

std::string readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

size_t countLines(const std::string &Path) {
  std::string S = readAll(Path);
  size_t N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

TEST(ResultStore, InMemoryHitMissAccounting) {
  ResultStore S;
  std::string Err;
  ASSERT_TRUE(S.open("", &Err)) << Err;

  SweepPoint Out;
  EXPECT_FALSE(S.lookup("k1", Out));
  EXPECT_EQ(S.misses(), 1u);
  EXPECT_EQ(S.hits(), 0u);

  SweepPoint P = makePoint(1000, 77);
  ASSERT_TRUE(S.insert("k1", P, &Err)) << Err;
  EXPECT_EQ(S.numEntries(), 1u);
  ASSERT_TRUE(S.lookup("k1", Out));
  EXPECT_EQ(S.hits(), 1u);
  // The hit is the inserted point, verbatim.
  EXPECT_EQ(dumpPoint(Out), dumpPoint(P));
}

TEST(ResultStore, LastInsertWins) {
  ResultStore S;
  std::string Err;
  ASSERT_TRUE(S.open("", &Err)) << Err;
  ASSERT_TRUE(S.insert("k", makePoint(10, 1), &Err));
  ASSERT_TRUE(S.insert("k", makePoint(20, 2), &Err));
  EXPECT_EQ(S.numEntries(), 1u);
  SweepPoint Out;
  ASSERT_TRUE(S.lookup("k", Out));
  EXPECT_EQ(Out.Stats.Level[0].Accesses, 20u);
}

TEST(ResultStore, PersistsAcrossReopen) {
  TempFile F("reopen");
  std::string Err;
  SweepPoint P1 = makePoint(100, 9), P2 = makePoint(200, 18);
  {
    ResultStore S;
    ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
    ASSERT_TRUE(S.insert("k1", P1, &Err));
    ASSERT_TRUE(S.insert("k2", P2, &Err));
  }
  ResultStore S;
  ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
  EXPECT_EQ(S.recoveredBytes(), 0u); // Clean log, nothing dropped.
  EXPECT_EQ(S.numEntries(), 2u);
  SweepPoint Out;
  ASSERT_TRUE(S.lookup("k1", Out));
  EXPECT_EQ(dumpPoint(Out), dumpPoint(P1));
  ASSERT_TRUE(S.lookup("k2", Out));
  EXPECT_EQ(dumpPoint(Out), dumpPoint(P2));
}

TEST(ResultStore, StoreLineIsSelfChecking) {
  std::string Line = resultStoreLine("some-key", makePoint(5, 1));
  std::string Err;
  json::Value V;
  ASSERT_TRUE(json::parse(Line, V, &Err)) << Err;
  const json::Value *Hash = V.find("hash");
  const json::Value *Key = V.find("key");
  ASSERT_NE(Hash, nullptr);
  ASSERT_NE(Key, nullptr);
  EXPECT_EQ(Hash->asString(), hashHex(hashString("some-key")));
  EXPECT_NE(V.find("point"), nullptr);
  // One line, newline-free: the log frames entries with '\n'.
  EXPECT_EQ(Line.find('\n'), std::string::npos);
}

TEST(ResultStore, TornTailIsTruncatedAndRecovered) {
  TempFile F("torn");
  std::string Err;
  {
    ResultStore S;
    ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
    ASSERT_TRUE(S.insert("k1", makePoint(100, 9), &Err));
    ASSERT_TRUE(S.insert("k2", makePoint(200, 18), &Err));
  }
  // A writer crashed mid-insert: the final line is a prefix with no
  // trailing newline.
  std::string GoodBytes = readAll(F.path());
  {
    std::ofstream Out(F.path(), std::ios::binary | std::ios::app);
    Out << R"({"hash":"0000000000000000","key":"k3","poi)";
  }

  ResultStore S;
  ASSERT_TRUE(S.open(F.path(), &Err)) << Err; // Recovery is not an error.
  EXPECT_GT(S.recoveredBytes(), 0u);
  EXPECT_EQ(S.numEntries(), 2u); // Everything before the tear survives.
  SweepPoint Out;
  EXPECT_TRUE(S.lookup("k1", Out));
  EXPECT_TRUE(S.lookup("k2", Out));

  // Recovery truncated the file back to the good bytes, so the NEXT
  // open is clean -- and the store stays appendable.
  EXPECT_EQ(readAll(F.path()), GoodBytes);
  ASSERT_TRUE(S.insert("k3", makePoint(300, 27), &Err));
  ResultStore S2;
  ASSERT_TRUE(S2.open(F.path(), &Err)) << Err;
  EXPECT_EQ(S2.recoveredBytes(), 0u);
  EXPECT_EQ(S2.numEntries(), 3u);
}

TEST(ResultStore, CorruptLineDropsItAndEverythingAfter) {
  TempFile F("corrupt");
  std::string Err;
  {
    ResultStore S;
    ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
    ASSERT_TRUE(S.insert("k1", makePoint(1, 0), &Err));
    ASSERT_TRUE(S.insert("k2", makePoint(2, 0), &Err));
    ASSERT_TRUE(S.insert("k3", makePoint(3, 0), &Err));
  }
  // Flip one hash digit of the second line: it no longer self-checks.
  std::string Bytes = readAll(F.path());
  size_t SecondLine = Bytes.find('\n') + 1;
  size_t HashDigit = Bytes.find(R"("hash":")", SecondLine) + 8;
  Bytes[HashDigit] = Bytes[HashDigit] == 'f' ? '0' : 'f';
  {
    std::ofstream Out(F.path(), std::ios::binary | std::ios::trunc);
    Out << Bytes;
  }

  ResultStore S;
  ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
  EXPECT_GT(S.recoveredBytes(), 0u);
  // Truncation at the first bad byte: k1 survives, k2 and k3 do not --
  // the log is a sequential journal, not a skip list.
  EXPECT_EQ(S.numEntries(), 1u);
  SweepPoint Out;
  EXPECT_TRUE(S.lookup("k1", Out));
}

TEST(ResultStore, CompactionDropsSupersededLines) {
  TempFile F("compact");
  std::string Err;
  ResultStore S;
  ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
  ASSERT_TRUE(S.insert("k1", makePoint(10, 1), &Err));
  ASSERT_TRUE(S.insert("k1", makePoint(11, 1), &Err)); // Supersedes.
  ASSERT_TRUE(S.insert("k2", makePoint(20, 2), &Err));
  EXPECT_EQ(countLines(F.path()), 3u); // Append-only until compaction.

  ASSERT_TRUE(S.compact(0, &Err)) << Err;
  EXPECT_EQ(countLines(F.path()), 2u);
  EXPECT_EQ(S.numEntries(), 2u);

  ResultStore S2;
  ASSERT_TRUE(S2.open(F.path(), &Err)) << Err;
  EXPECT_EQ(S2.numEntries(), 2u);
  SweepPoint Out;
  ASSERT_TRUE(S2.lookup("k1", Out));
  EXPECT_EQ(Out.Stats.Level[0].Accesses, 11u); // The superseding insert.
}

TEST(ResultStore, CompactionEvictsOldestBeyondCap) {
  TempFile F("evict");
  std::string Err;
  ResultStore S;
  ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
  for (int I = 1; I <= 4; ++I)
    ASSERT_TRUE(
        S.insert("k" + std::to_string(I), makePoint(10 * I, I), &Err));

  ASSERT_TRUE(S.compact(2, &Err)) << Err;
  EXPECT_EQ(S.numEntries(), 2u);
  SweepPoint Out;
  EXPECT_FALSE(S.lookup("k1", Out)); // Oldest two evicted...
  EXPECT_FALSE(S.lookup("k2", Out));
  EXPECT_TRUE(S.lookup("k3", Out)); // ...newest two kept.
  EXPECT_TRUE(S.lookup("k4", Out));

  ResultStore S2;
  ASSERT_TRUE(S2.open(F.path(), &Err)) << Err;
  EXPECT_EQ(S2.numEntries(), 2u);
}

// The load-bearing property: for random programs x random hierarchy
// configs, a point served from the store -- including across a
// close/reopen of the log -- is byte-identical to the freshly simulated
// result. Counters must match a re-simulation exactly (the sweep driver
// is deterministic); the stored bytes must match the inserted point
// INCLUDING its timing, since a hit returns the original measurement
// verbatim rather than re-measuring.
TEST(ResultStoreProperty, StoredPointsAreByteIdenticalToFreshSimulation) {
  std::mt19937 Rng(0xC0FFEE);
  TempFile F("property");
  const PolicyKind Kinds[] = {PolicyKind::Lru, PolicyKind::Fifo,
                              PolicyKind::Plru};

  for (int Trial = 0; Trial < 6; ++Trial) {
    ScopProgram Program = testutil::generateProgram(Rng);
    std::vector<HierarchyConfig> Configs;
    for (int I = 0; I < 3; ++I)
      Configs.push_back(testutil::randomHierarchy(
          Rng, Kinds[Trial % 3], /*TwoLevel=*/Trial % 2 == 1));

    SweepOptions Opts;
    Opts.Threads = 2;
    SweepReport First = runSweep(Program, Configs, Opts);

    // Insert under keys namespaced by trial (distinct programs must not
    // collide; in wcs-serve the key is sweepPointKey, which embeds the
    // whole program).
    std::string Err;
    {
      ResultStore S;
      ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
      for (size_t I = 0; I < Configs.size(); ++I) {
        ASSERT_TRUE(First.Points[I].Ok) << First.Points[I].Error;
        ASSERT_TRUE(S.insert("t" + std::to_string(Trial) + "/" +
                                 Configs[I].str(),
                             First.Points[I], &Err))
            << Err;
      }
    }

    // Reopen (fresh replay of the log) and re-simulate.
    ResultStore S;
    ASSERT_TRUE(S.open(F.path(), &Err)) << Err;
    ASSERT_EQ(S.recoveredBytes(), 0u);
    SweepReport Second = runSweep(Program, Configs, Opts);

    for (size_t I = 0; I < Configs.size(); ++I) {
      SweepPoint Stored;
      ASSERT_TRUE(S.lookup("t" + std::to_string(Trial) + "/" +
                               Configs[I].str(),
                           Stored));
      // Store round-trip: byte-identical to the inserted point.
      EXPECT_EQ(dumpPoint(Stored), dumpPoint(First.Points[I]))
          << "trial " << Trial << " config " << Configs[I].str();
      // And the counters equal a fresh simulation bit-for-bit; only the
      // wall-time measurement may differ between runs.
      SweepPoint Fresh = Second.Points[I];
      SweepPoint Norm = Stored;
      Fresh.Stats.Seconds = 0.0;
      Norm.Stats.Seconds = 0.0;
      EXPECT_EQ(dumpPoint(Norm), dumpPoint(Fresh))
          << "trial " << Trial << " config " << Configs[I].str();
    }
  }
}

} // namespace
