//===- wcs/driver/SweepRequest.h - The sweep request/response API -*- C++ -*-=//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one request type behind every sweep, CLI or served: a
/// JSON-round-trippable "wcs-request" v1 document naming a program (a
/// PolyBench kernel reference or inline wcs-dialect source), a one- or
/// two-level grid, and the SweepOptions to run it under. `wcs-sim
/// --sweep` constructs a SweepRequest from its flags and executes it;
/// `wcs-serve` accepts the same document over a socket -- so one request
/// document reproduces any sweep bit-identically in either mode, and
/// CLI flags are a thin adapter rather than a second parser.
///
/// The companion "wcs-response" v1 document wraps the familiar
/// wcs-sweep payload with serving provenance: the request's content
/// hash and the store hit/miss split. Canonicalization for the
/// wcs-serve result store also lives here: sweepPointKey() renders the
/// (program, options, hierarchy config) identity of one grid point --
/// deliberately excluding the grid, so overlapping grids from
/// different clients share points -- and requestHash() fingerprints a
/// whole request for response provenance.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_DRIVER_SWEEPREQUEST_H
#define WCS_DRIVER_SWEEPREQUEST_H

#include "wcs/driver/Sweep.h"
#include "wcs/polybench/Polybench.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wcs {

/// Request-file format identifier and version; same regime as the
/// wcs-results schema (readers reject any mismatch).
inline constexpr const char RequestSchemaName[] = "wcs-request";
inline constexpr int64_t RequestSchemaVersion = 1;
inline constexpr const char ResponseSchemaName[] = "wcs-response";
inline constexpr int64_t ResponseSchemaVersion = 1;

/// One sweep, fully specified: program x grid x options. Every field
/// that affects a single counter is in here and serialized; fields
/// that only affect execution (worker threads) are per-run knobs on
/// SweepOptions and deliberately NOT part of the document, so the same
/// request hashes identically no matter where it runs.
struct SweepRequest {
  /// Program, variant A: a registry reference -- PolyBench kernel name
  /// plus problem size. Used when Kernel is non-empty.
  std::string Kernel;
  ProblemSize Size = ProblemSize::Mini;

  /// Program, variant B: inline wcs-dialect source with an explicit
  /// parameter binding (std::map, so serialization order -- and thus
  /// the content hash -- is independent of insertion order). Used when
  /// Kernel is empty.
  std::string Source;
  std::string SourceName; ///< Label for documents ("query.wcs").
  std::map<std::string, int64_t> Params;

  SweepLevelGrid L1;
  bool HasL2 = false;
  SweepLevelGrid L2;
  InclusionPolicy Inclusion = InclusionPolicy::NonInclusiveNonExclusive;

  /// How to simulate (SimOptions, backend, warp-sweep knobs). Threads
  /// is ignored by the serializers, see above.
  SweepOptions Options;

  /// Serving deadline in seconds (0 = none). Enforced by the wcs-serve
  /// scheduler from request admission: on expiry the daemon answers
  /// with the points computed so far and honest "deadline exceeded"
  /// errors for the rest. Serialized as "deadline_seconds" only when
  /// set, so deadline-free requests hash as they always did; and it is
  /// deliberately NOT part of sweepPointKey() -- a deadline changes how
  /// long the daemon tries, never what a point means, so deadlined and
  /// undeadlined requests share stored points. The serial
  /// serveSweepRequest/CLI paths ignore it.
  double DeadlineSeconds = 0.0;

  /// Label for the SweepDoc Program / SizeName fields: the kernel name
  /// (variant A) or SourceName (variant B); the size name, or "" for
  /// inline source.
  std::string programLabel() const;
  std::string sizeLabel() const;
};

/// Fast structural check with a diagnostic: exactly one program
/// variant, a non-empty L1 grid. Serialization and preparation both
/// run it; tools can call it early for better error placement.
bool validateSweepRequest(const SweepRequest &Req, std::string *Err);

json::Value toJson(const SweepRequest &R);
bool fromJson(const json::Value &V, SweepRequest &Out, std::string *Err);

bool writeRequestFile(const std::string &Path, const SweepRequest &R,
                      std::string *Err);
bool readRequestFile(const std::string &Path, SweepRequest &Out,
                     std::string *Err);

/// A request made runnable: the parsed/built program plus the expanded
/// hierarchy-config list (input grid order).
struct PreparedSweep {
  ScopProgram Program;
  std::vector<HierarchyConfig> Configs;
};

/// Builds the program and expands the grid. Returns false with a
/// diagnostic on unknown kernels, frontend parse errors or invalid
/// grid points.
bool prepareSweep(const SweepRequest &Req, PreparedSweep &Out,
                  std::string *Err);

/// Prepares and runs \p Req in one call (the wcs-sim --sweep path).
/// \p Threads overrides Req.Options.Threads for this run only.
bool runSweepRequest(const SweepRequest &Req, unsigned Threads,
                     PreparedSweep &Prep, SweepReport &Report,
                     std::string *Err);

/// The canonical content identity of one grid point of \p Req: a
/// compact JSON dump of {program, options, cache}. Grid and request
/// identity are deliberately absent, so any two requests that evaluate
/// the same program under the same options at the same hierarchy
/// config produce the same key -- that is what lets overlapping grids
/// share stored points. Keys are byte-deterministic (std::map params,
/// fixed-order toJson).
std::string sweepPointKey(const SweepRequest &Req,
                          const HierarchyConfig &H);

/// 16-hex-digit fingerprint of the whole canonicalized request
/// document; wcs-response provenance.
std::string requestHash(const SweepRequest &Req);

//===----------------------------------------------------------------------===//
// The wcs-response document
//===----------------------------------------------------------------------===//

/// What wcs-serve sends back for one request: the standard wcs-sweep
/// payload (every point carries method provenance; store-served points
/// have method "store") plus the serving figures.
struct SweepResponse {
  bool Ok = false;
  std::string Error;       ///< Set when Ok is false; Sweep is empty then.
  std::string RequestHash; ///< requestHash() of the request served.
  uint64_t StoreHits = 0;   ///< Points answered from the store.
  uint64_t StoreMisses = 0; ///< Points freshly simulated (then stored).
  /// Points answered by subscribing to another in-flight request that
  /// was already computing the same key (the concurrent-scheduler
  /// extension of store sharing to the live pipeline; always 0 from
  /// the serial serveSweepRequest path). The three counters partition
  /// the grid: hits + inflight_hits + misses == points. Serialized as
  /// "inflight_hits", optional on read so pre-scheduler responses
  /// still parse.
  uint64_t InFlightHits = 0;
  uint64_t StoreEntries = 0; ///< Store size after serving this request.
  /// With Error="overloaded" (admission-cap shedding): how long the
  /// daemon suggests waiting before resubmitting, from its current
  /// queue depth and measured per-point compute time. Serialized as
  /// "retry_after_seconds" only when > 0; optional on read.
  double RetryAfterSeconds = 0.0;
  SweepDoc Sweep;
};

json::Value toJson(const SweepResponse &R);
bool fromJson(const json::Value &V, SweepResponse &Out, std::string *Err);

} // namespace wcs

#endif // WCS_DRIVER_SWEEPREQUEST_H
