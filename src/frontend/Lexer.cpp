//===- frontend/Lexer.cpp -------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Lexer.h"

#include <cctype>

using namespace wcs;

const char *wcs::tokenKindName(Token::Kind K) {
  switch (K) {
  case Token::Kind::End:
    return "end of input";
  case Token::Kind::Ident:
    return "identifier";
  case Token::Kind::IntLit:
    return "integer literal";
  case Token::Kind::FloatLit:
    return "floating literal";
  case Token::Kind::LParen:
    return "'('";
  case Token::Kind::RParen:
    return "')'";
  case Token::Kind::LBrace:
    return "'{'";
  case Token::Kind::RBrace:
    return "'}'";
  case Token::Kind::LBracket:
    return "'['";
  case Token::Kind::RBracket:
    return "']'";
  case Token::Kind::Semi:
    return "';'";
  case Token::Kind::Comma:
    return "','";
  case Token::Kind::Assign:
    return "'='";
  case Token::Kind::PlusAssign:
    return "'+='";
  case Token::Kind::MinusAssign:
    return "'-='";
  case Token::Kind::StarAssign:
    return "'*='";
  case Token::Kind::SlashAssign:
    return "'/='";
  case Token::Kind::Plus:
    return "'+'";
  case Token::Kind::Minus:
    return "'-'";
  case Token::Kind::Star:
    return "'*'";
  case Token::Kind::Slash:
    return "'/'";
  case Token::Kind::Percent:
    return "'%'";
  case Token::Kind::PlusPlus:
    return "'++'";
  case Token::Kind::MinusMinus:
    return "'--'";
  case Token::Kind::Lt:
    return "'<'";
  case Token::Kind::Le:
    return "'<='";
  case Token::Kind::Gt:
    return "'>'";
  case Token::Kind::Ge:
    return "'>='";
  case Token::Kind::EqEq:
    return "'=='";
  case Token::Kind::NotEq:
    return "'!='";
  case Token::Kind::AndAnd:
    return "'&&'";
  case Token::Kind::OrOr:
    return "'||'";
  case Token::Kind::Error:
    return "error";
  }
  return "?";
}

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Loc.Line;
    Loc.Col = 1;
  } else {
    ++Loc.Col;
  }
  return C;
}

bool Lexer::skipWhitespaceAndComments(Token &ErrOut) {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SrcLoc Start = Loc;
      advance();
      advance();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Src.size()) {
        ErrOut.K = Token::Kind::Error;
        ErrOut.Text = "unterminated block comment";
        ErrOut.Loc = Start;
        return false;
      }
      advance();
      advance();
      continue;
    }
    return true;
  }
}

Token Lexer::next() {
  Token T;
  if (!skipWhitespaceAndComments(T))
    return T;
  T.Loc = Loc;
  if (Pos >= Src.size()) {
    T.K = Token::Kind::End;
    return T;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Ident;
    while (Pos < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_'))
      Ident += advance();
    T.K = Token::Kind::Ident;
    T.Text = std::move(Ident);
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Num;
    bool IsFloat = false;
    while (Pos < Src.size() &&
           (std::isdigit(static_cast<unsigned char>(peek())) ||
            peek() == '.' || peek() == 'e' || peek() == 'E' ||
            ((peek() == '+' || peek() == '-') && !Num.empty() &&
             (Num.back() == 'e' || Num.back() == 'E')))) {
      char D = advance();
      if (D == '.' || D == 'e' || D == 'E')
        IsFloat = true;
      Num += D;
    }
    // Accept C float suffixes.
    if (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L') {
      IsFloat = true;
      advance();
    }
    T.Text = Num;
    if (IsFloat) {
      T.K = Token::Kind::FloatLit;
    } else {
      T.K = Token::Kind::IntLit;
      T.IntValue = std::stoll(Num);
    }
    return T;
  }

  advance();
  auto Two = [&](char Next, Token::Kind TwoK, Token::Kind OneK) {
    if (peek() == Next) {
      advance();
      T.K = TwoK;
    } else {
      T.K = OneK;
    }
  };
  switch (C) {
  case '(':
    T.K = Token::Kind::LParen;
    break;
  case ')':
    T.K = Token::Kind::RParen;
    break;
  case '{':
    T.K = Token::Kind::LBrace;
    break;
  case '}':
    T.K = Token::Kind::RBrace;
    break;
  case '[':
    T.K = Token::Kind::LBracket;
    break;
  case ']':
    T.K = Token::Kind::RBracket;
    break;
  case ';':
    T.K = Token::Kind::Semi;
    break;
  case ',':
    T.K = Token::Kind::Comma;
    break;
  case '+':
    if (peek() == '+') {
      advance();
      T.K = Token::Kind::PlusPlus;
    } else {
      Two('=', Token::Kind::PlusAssign, Token::Kind::Plus);
    }
    break;
  case '-':
    if (peek() == '-') {
      advance();
      T.K = Token::Kind::MinusMinus;
    } else {
      Two('=', Token::Kind::MinusAssign, Token::Kind::Minus);
    }
    break;
  case '*':
    Two('=', Token::Kind::StarAssign, Token::Kind::Star);
    break;
  case '/':
    Two('=', Token::Kind::SlashAssign, Token::Kind::Slash);
    break;
  case '%':
    T.K = Token::Kind::Percent;
    break;
  case '<':
    Two('=', Token::Kind::Le, Token::Kind::Lt);
    break;
  case '>':
    Two('=', Token::Kind::Ge, Token::Kind::Gt);
    break;
  case '=':
    Two('=', Token::Kind::EqEq, Token::Kind::Assign);
    break;
  case '!':
    if (peek() == '=') {
      advance();
      T.K = Token::Kind::NotEq;
    } else {
      T.K = Token::Kind::Error;
      T.Text = "unexpected character '!'";
    }
    break;
  case '&':
    if (peek() == '&') {
      advance();
      T.K = Token::Kind::AndAnd;
    } else {
      T.K = Token::Kind::Error;
      T.Text = "unexpected character '&'";
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      T.K = Token::Kind::OrOr;
    } else {
      T.K = Token::Kind::Error;
      T.Text = "unexpected character '|'";
    }
    break;
  default:
    T.K = Token::Kind::Error;
    T.Text = std::string("unexpected character '") + C + "'";
    break;
  }
  return T;
}
