//===- examples/policy_comparison.cpp - Replacement-policy study ----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// A miniature of the paper's Fig. 10 experiment: one PolyBench kernel
// simulated under LRU, FIFO, PLRU and Quad-age LRU on the same
// set-associative geometry, plus the fully-associative LRU model
// (HayStack's cache model) computed from exact stack distances. Pass a
// kernel name to study a different one:  ./policy_comparison doitgen
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/trace/StackDistance.h"

#include <cstdio>
#include <string>

using namespace wcs;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "durbin";
  std::string Err;
  ScopProgram P = buildKernel(Name, ProblemSize::Medium, &Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  CacheConfig Base = CacheConfig::scaledL1();
  std::printf("kernel %s at %s, cache %s (policy varies)\n\n", Name.c_str(),
              problemSizeName(ProblemSize::Medium), Base.str().c_str());
  std::printf("%-16s %12s %12s %14s\n", "policy", "misses", "miss ratio",
              "vs set-assoc LRU");

  uint64_t LruMisses = 0;
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Plru,
                       PolicyKind::QuadAgeLru}) {
    CacheConfig C = Base;
    C.Policy = K;
    WarpingSimulator Sim(P, HierarchyConfig::singleLevel(C));
    SimStats S = Sim.run();
    if (K == PolicyKind::Lru)
      LruMisses = S.Level[0].Misses;
    std::printf("%-16s %12llu %11.2f%% %13.3fx\n", policyName(K),
                static_cast<unsigned long long>(S.Level[0].Misses),
                100.0 * S.Level[0].missRatio(),
                static_cast<double>(S.Level[0].Misses) / LruMisses);
  }

  // HayStack's model: a fully-associative LRU cache of the same capacity,
  // derived from the exact stack-distance histogram in one pass.
  StackDistanceProfiler Prof = profileProgram(P, Base.BlockBytes);
  uint64_t FA = Prof.missesForCache(Base);
  std::printf("%-16s %12llu %11.2f%% %13.3fx\n", "FA-LRU (model)",
              static_cast<unsigned long long>(FA),
              100.0 * static_cast<double>(FA) / Prof.totalAccesses(),
              static_cast<double>(FA) / LruMisses);

  std::printf("\nThe paper's Fig. 10 finding: most kernels are policy-"
              "insensitive, but kernels like\ndurbin and doitgen separate "
              "the policies (Quad-age LRU's scan resistance helps,\nFIFO "
              "hurts), which is exactly why warping's support for real "
              "policies matters.\n");
  return 0;
}
