//===- src/serve/Server.cpp - The wcs-serve daemon ------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Server.h"

#include "wcs/support/JsonReader.h"

#include <cerrno>
#include <cstdio>

#include <sys/socket.h>
#include <unistd.h>

using namespace wcs;
using json::Value;

SweepResponse wcs::serveSweepRequest(
    const SweepRequest &Req, ResultStore &Store, unsigned Threads,
    const std::function<void(const ProgressEvent &)> &OnProgress) {
  SweepResponse Resp;
  Resp.RequestHash = requestHash(Req);

  PreparedSweep Prep;
  std::string Err;
  if (!prepareSweep(Req, Prep, &Err)) {
    Resp.Error = Err;
    Resp.StoreEntries = Store.numEntries();
    return Resp;
  }

  // Partition the expanded grid by store state. Hits come back
  // verbatim -- the stored counters ARE the fresh-simulation counters,
  // property-tested bit-identical -- under method "store" so the
  // provenance of every answer stays honest.
  size_t Total = Prep.Configs.size();
  std::vector<SweepPoint> Points(Total);
  std::vector<size_t> MissIdx;
  std::vector<std::string> Keys(Total);
  for (size_t I = 0; I < Total; ++I) {
    Keys[I] = sweepPointKey(Req, Prep.Configs[I]);
    SweepPoint Hit;
    if (Store.lookup(Keys[I], Hit)) {
      Hit.Method = SweepMethod::Store;
      Points[I] = std::move(Hit);
      ++Resp.StoreHits;
      if (OnProgress)
        OnProgress({I, Total, Prep.Configs[I].str(),
                    SweepMethod::Store, Points[I].Ok});
    } else {
      MissIdx.push_back(I);
    }
  }
  Resp.StoreMisses = MissIdx.size();

  // The misses run as ONE sub-sweep, so they still share passes and
  // streams among themselves exactly as a CLI sweep would.
  SweepReport Merged;
  Merged.Threads = Threads == 0 ? 1 : Threads;
  if (!MissIdx.empty()) {
    std::vector<HierarchyConfig> MissConfigs;
    MissConfigs.reserve(MissIdx.size());
    for (size_t I : MissIdx)
      MissConfigs.push_back(Prep.Configs[I]);
    SweepOptions SO = Req.Options;
    SO.Threads = Threads;
    Merged = runSweep(Prep.Program, MissConfigs, SO);
    for (size_t J = 0; J < MissIdx.size(); ++J) {
      size_t I = MissIdx[J];
      Points[I] = Merged.Points[J];
      if (Points[I].Ok)
        Store.insert(Keys[I], Points[I], nullptr);
      if (OnProgress)
        OnProgress({I, Total, Prep.Configs[I].str(), Points[I].Method,
                    Points[I].Ok});
    }
  }
  Merged.Points = std::move(Points);

  Resp.Ok = true;
  Resp.StoreEntries = Store.numEntries();
  Resp.Sweep = makeSweepDoc("wcs-serve", Req.programLabel(),
                            Req.sizeLabel(), Merged);
  return Resp;
}

//===----------------------------------------------------------------------===//
// The accept loop
//===----------------------------------------------------------------------===//

namespace {

/// Serves one accepted connection; returns false when the client asked
/// for shutdown.
bool serveConnection(int Fd, ResultStore &Store, unsigned Threads) {
  LineReader Reader(Fd);
  std::string Line, Err;
  if (!Reader.readLine(Line, &Err)) {
    if (!Err.empty())
      std::fprintf(stderr, "wcs-serve: %s\n", Err.c_str());
    return true; // Client went away; keep serving.
  }

  Value V;
  std::string Schema;
  SweepResponse Resp;
  if (!json::parse(Line, V, &Err) ||
      !jsonfield::needString(V, "schema", Schema, &Err)) {
    Resp.Error = "malformed request: " + Err;
    sendLine(Fd, toJson(Resp).dump(false), nullptr);
    return true;
  }

  if (Schema == ControlSchemaName) {
    std::string Cmd;
    Value Ack = Value::object();
    Ack.set("schema", ControlSchemaName);
    Ack.set("schema_version", ServeProtocolVersion);
    bool Shutdown = jsonfield::needString(V, "cmd", Cmd, nullptr) &&
                    Cmd == "shutdown";
    Ack.set("ok", Shutdown);
    sendLine(Fd, Ack.dump(false), nullptr);
    return !Shutdown;
  }

  SweepRequest Req;
  if (!fromJson(V, Req, &Err)) {
    Resp.Error = Err;
    sendLine(Fd, toJson(Resp).dump(false), nullptr);
    return true;
  }

  Resp = serveSweepRequest(Req, Store, Threads,
                           [Fd](const ProgressEvent &E) {
                             sendLine(Fd, toJson(E).dump(false), nullptr);
                           });
  sendLine(Fd, toJson(Resp).dump(false), nullptr);
  std::fprintf(stderr,
               "wcs-serve: %s %s: %llu hits, %llu misses, store %llu "
               "entries\n",
               Req.programLabel().c_str(), Resp.Ok ? "ok" : "FAILED",
               static_cast<unsigned long long>(Resp.StoreHits),
               static_cast<unsigned long long>(Resp.StoreMisses),
               static_cast<unsigned long long>(Resp.StoreEntries));
  return true;
}

} // namespace

bool wcs::runServer(const ServerOptions &Opts,
                    const std::function<void()> &OnReady,
                    std::string *Err) {
  ResultStore Store;
  if (!Store.open(Opts.StorePath, Err))
    return false;
  if (Store.recoveredBytes() > 0)
    std::fprintf(stderr,
                 "wcs-serve: recovered torn tail (%llu bytes dropped)\n",
                 static_cast<unsigned long long>(Store.recoveredBytes()));
  int Listen = listenUnix(Opts.SocketPath, Err);
  if (Listen < 0)
    return false;
  std::fprintf(stderr, "wcs-serve: listening on %s (%zu stored entries)\n",
               Opts.SocketPath.c_str(), Store.numEntries());
  if (OnReady)
    OnReady();

  for (;;) {
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = "accept failed";
      closeFd(Listen);
      ::unlink(Opts.SocketPath.c_str());
      return false;
    }
    bool KeepServing = serveConnection(Fd, Store, Opts.Threads);
    closeFd(Fd);
    if (!KeepServing)
      break;
  }
  closeFd(Listen);
  ::unlink(Opts.SocketPath.c_str());
  std::fprintf(stderr, "wcs-serve: shut down (%llu hits / %llu misses "
                       "served)\n",
               static_cast<unsigned long long>(Store.hits()),
               static_cast<unsigned long long>(Store.misses()));
  return true;
}
