//===- wcs/support/FaultInjection.h - Seeded fault injection ----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, env/flag-armed fault points for hardening tests. A fault
/// point is a named site in the serving stack that can be made to fail
/// with a configured probability:
///
///   store.write     ResultStore::insert tears the append mid-line and
///                   fails (crash-equivalent: the log grows a torn tail
///                   that the next open truncates; the store refuses
///                   further appends until reopened)
///   socket.send     Protocol sendLine fails before writing
///   socket.recv     Protocol LineReader::readLine fails
///   scheduler.job   Scheduler job execution throws mid-compute
///
/// Arm with a spec string ("point:prob,point:prob,...") via arm() or
/// the WCS_FAULT environment variable (seed: WCS_FAULT_SEED); draws are
/// a deterministic function of (seed, draw index), so a failing run
/// replays exactly. Compiled in always; when disarmed every shouldFail
/// is one relaxed atomic load (the telemetry span discipline), so the
/// hooks cost nothing in production.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_FAULTINJECTION_H
#define WCS_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>

namespace wcs {
namespace faultinject {

namespace detail {
/// Nonzero while any fault point is armed. Relaxed is enough: arming
/// happens before the traffic a test observes, and a stale read in the
/// handover instant merely injects (or skips) one draw.
inline std::atomic<unsigned> Armed{0};
bool shouldFailSlow(const char *Point);
} // namespace detail

/// True when the armed configuration says the named fault point fails
/// this time. The caller then fails the operation as if the real
/// counterpart (disk, peer, kernel) had. Disarmed: one relaxed load.
inline bool shouldFail(const char *Point) {
  if (detail::Armed.load(std::memory_order_relaxed) == 0)
    return false;
  return detail::shouldFailSlow(Point);
}

/// Arms fault points from \p Spec ("store.write:0.05,socket.send:0.1").
/// Probabilities are in [0, 1]; unknown point names are rejected (a
/// typo that never fires is worse than an error). Resets the draw
/// counter so equal (Spec, Seed) pairs replay identically.
bool arm(const std::string &Spec, uint64_t Seed, std::string *Err);

/// Arms from WCS_FAULT / WCS_FAULT_SEED when set; no-op (and true)
/// when WCS_FAULT is absent or empty. False on a malformed spec.
bool armFromEnv(std::string *Err);

/// Disarms every fault point and zeroes the injected counters.
void disarm();

/// True when any fault point is armed.
bool armed();

/// The armed spec in canonical form (diagnostics/logging), empty when
/// disarmed.
std::string armedSpec();

/// Faults injected since the last arm(), in total or for one point.
uint64_t injectedCount();
uint64_t injectedCount(const std::string &Point);

} // namespace faultinject
} // namespace wcs

#endif // WCS_SUPPORT_FAULTINJECTION_H
