//===- wcs/driver/BatchRunner.h - Parallel batch simulation -----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel batch driver: fans a work list of (program, cache config)
/// simulation jobs across N worker threads and collects per-job results.
/// Jobs are independent (every simulator owns its entire state), so the
/// counters of each job are bit-identical regardless of thread count and
/// schedule; only wall-clock fields vary. The driver exposes the three
/// simulation backends -- warping (Algorithm 2), concrete (Algorithm 1)
/// and trace-driven (Dinero-style) -- behind one job interface, which is
/// what the command-line tool and the figure harnesses drive.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_DRIVER_BATCHRUNNER_H
#define WCS_DRIVER_BATCHRUNNER_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace wcs {

class FilteredStream;

/// The simulation engine a job runs on.
enum class SimBackend {
  Warping,  ///< Warping symbolic simulation (paper Algorithm 2).
  Concrete, ///< Non-warping simulation (paper Algorithm 1).
  Trace,    ///< Trace-driven simulation (materialized address trace).
  /// Analytical LRU model: one trace pass into per-set stack-distance
  /// histograms (the HayStack approach generalized to set-associative
  /// geometries). Exact for single-level write-allocate LRU; any other
  /// configuration fails the job with a diagnostic.
  StackDistance,
};

const char *backendName(SimBackend B);

/// Inverse of backendName. Also accepts the wcs-sim spelling "warp".
/// Returns false on an unknown name, leaving \p Out untouched.
bool parseBackendName(const std::string &Name, SimBackend &Out);

/// Strictly parses a worker-thread count (digits only, fits unsigned):
/// the one parser behind --jobs and $WCS_JOBS, so tool and bench
/// harnesses accept exactly the same inputs. Returns false on malformed
/// input, leaving \p Out untouched.
bool parseJobCount(const char *Text, unsigned &Out);

/// One unit of batch work: simulate \p Program on \p Cache with \p Backend.
struct BatchJob {
  /// Non-owning; the program must outlive BatchRunner::run(). Programs are
  /// shared freely between jobs: simulation never mutates them.
  const ScopProgram *Program = nullptr;
  HierarchyConfig Cache;
  SimOptions Options;
  SimBackend Backend = SimBackend::Warping;
  /// Non-owning; must outlive run(). When set, the job answers \p Cache
  /// -- a two-level NINE hierarchy whose L1 equals the stream's -- by
  /// replaying the recorded L1-miss-filtered stream through the L2
  /// instead of simulating \p Program (which may then be null). Streams
  /// are shared freely between jobs: replay never mutates them.
  const FilteredStream *Filtered = nullptr;
  /// Label carried through to the result (e.g. "gemm/large/L1+L2").
  std::string Tag;
};

/// Outcome of one job.
struct BatchResult {
  size_t JobIndex = 0;
  std::string Tag;
  SimStats Stats;
  bool Ok = false;
  std::string Error; ///< Set when Ok is false (e.g. invalid config).
};

/// Everything run() returns: per-job results in job order plus batch-level
/// wall-clock and throughput figures.
struct BatchReport {
  std::vector<BatchResult> Results; ///< Indexed by job order.
  unsigned Threads = 1;
  double WallSeconds = 0.0;

  bool allOk() const;
  uint64_t totalAccesses() const;
  /// Sum of per-job simulation seconds (the serial-execution estimate).
  double cpuSeconds() const;
  double jobsPerSecond() const;
  double accessesPerSecond() const;

  /// One-line throughput summary for tools and benches.
  std::string summary() const;
};

/// Thread-pool batch scheduler. Worker threads pull jobs from a shared
/// atomic cursor (dynamic scheduling: long jobs do not convoy short ones)
/// and write results into a preallocated slot per job, so the result
/// vector is deterministic in content and order for any thread count.
class BatchRunner {
public:
  /// \p NumThreads = 0 selects std::thread::hardware_concurrency().
  explicit BatchRunner(unsigned NumThreads = 0);

  unsigned threads() const { return NumThreads; }

  /// Observer invoked once per finished job, serialized under a lock but
  /// concurrent with other jobs' execution; must be set before run().
  void setProgress(std::function<void(const BatchResult &)> Fn) {
    Progress = std::move(Fn);
  }

  /// Runs all jobs and blocks until completion.
  BatchReport run(const std::vector<BatchJob> &Jobs);

  /// Fans a list of independent thunks across the pool and blocks until
  /// all have run (same dynamic scheduling as run(), minus the
  /// simulation plumbing). Used by the sweep driver for work that is
  /// not a simulation job -- filtered-stream recordings, periodic
  /// passes -- but parallelizes the same way. Each task owns its slot's
  /// data, so no locking is needed as long as tasks touch disjoint
  /// state. A throwing task does not take down the process: remaining
  /// tasks still run, and the first captured exception is rethrown here
  /// after the pool joins. Callers wanting per-task failure semantics
  /// catch inside the task body.
  void runTasks(const std::vector<std::function<void()>> &Tasks);

  /// Executes a single job synchronously on the calling thread (the unit
  /// of work the pool dispatches; exposed for tests and single-job
  /// callers).
  static BatchResult runJob(const BatchJob &Job, size_t JobIndex = 0);

  /// Shared-pool admission: spawns threads() persistent workers that
  /// repeatedly pull work through \p Next. A worker calls Next with an
  /// empty task slot; Next blocks until work is available (filling the
  /// slot and returning true) or the pool is being retired (returning
  /// false, which ends that worker). The scheduling POLICY therefore
  /// lives entirely in the caller's Next -- the wcs-serve scheduler
  /// uses it for fair round-robin across requests -- while this class
  /// keeps owning the threads. Tasks must not throw (there is no batch
  /// to attribute a failure to; callers catch inside the task).
  /// run()/runTasks() remain usable on a separate BatchRunner while a
  /// pool runs, but not on this one.
  void startPool(std::function<bool(std::function<void()> &)> Next);

  /// Joins every pool worker. The caller must first make Next return
  /// false for all workers (e.g. flip a stop flag and wake them), or
  /// this blocks forever. No-op when no pool is running.
  void stopPool();

  ~BatchRunner() { stopPool(); }
  BatchRunner(const BatchRunner &) = delete;
  BatchRunner &operator=(const BatchRunner &) = delete;

private:
  unsigned NumThreads;
  std::function<void(const BatchResult &)> Progress;
  std::vector<std::thread> Pool;
  std::function<bool(std::function<void()> &)> PoolNext;
};

} // namespace wcs

#endif // WCS_DRIVER_BATCHRUNNER_H
