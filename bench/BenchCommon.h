//===- bench/BenchCommon.h - Shared benchmark-harness helpers --*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure benchmark binaries: cache-config
/// presets (the scaled test system and the scaled PolyCache setup),
/// problem-size selection via the WCS_SIZE environment variable, kernel
/// iteration, and result verification.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_BENCH_BENCHCOMMON_H
#define WCS_BENCH_BENCHCOMMON_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/driver/BatchRunner.h"
#include "wcs/polybench/Polybench.h"
#include "wcs/sim/SimStats.h"
#include "wcs/support/Stats.h"

#include <string>
#include <vector>

namespace wcs {
namespace bench {

/// Problem size from $WCS_SIZE (mini/small/medium/large/xlarge), or
/// \p Default.
ProblemSize sizeFromEnv(ProblemSize Default);

/// The scaled test-system hierarchy (paper Sec. 6.1, scaled per
/// EXPERIMENTS.md): 4 KiB 8-way PLRU L1 + 32 KiB 16-way Quad-age LRU L2.
HierarchyConfig scaledTestSystem();

/// The scaled PolyCache comparison configuration (paper Sec. 6.3):
/// two-level LRU, write-back write-allocate; 4 KiB 4-way + 32 KiB 4-way.
HierarchyConfig scaledPolyCacheConfig();

/// The fully-associative LRU twin of \p C (HayStack's cache model).
CacheConfig fullyAssociativeTwin(const CacheConfig &C);

/// Builds a kernel or dies with a message.
ScopProgram mustBuild(const KernelInfo &K, ProblemSize S);

/// Worker-thread count from $WCS_JOBS, or \p Default when unset or
/// malformed (malformed values warn). 0 means every hardware thread.
unsigned jobsFromEnv(unsigned Default);

/// Runs \p Jobs on a BatchRunner sized by $WCS_JOBS (defaulting to
/// \p DefaultThreads when unset), dies if any job failed, and prints the
/// batch throughput summary to stderr (kept off stdout so figure tables
/// stay machine-readable). Harnesses whose *timing* columns feed a
/// figure should pass DefaultThreads = 1: concurrent jobs contend for
/// cores and memory bandwidth, so parallelism must be an explicit
/// WCS_JOBS opt-in there. Counter-only harnesses can pass 0 (all cores).
BatchReport runBatch(const std::vector<BatchJob> &Jobs,
                     unsigned DefaultThreads = 1);

/// Like runBatch but with an exact thread count: $WCS_JOBS is NOT
/// consulted. For drivers whose thread count comes from an explicit
/// command-line flag that must not be overridden by ambient environment
/// (stray parallelism contaminates the timing columns).
BatchReport runBatchOn(const std::vector<BatchJob> &Jobs, unsigned Threads);

/// Aborts the benchmark if two simulators disagree (soundness check that
/// runs inside every figure harness).
void requireEqualMisses(const char *Kernel, const SimStats &A,
                        const SimStats &B);

/// The geometric-mean helper now lives in wcs/support/Stats.h (shared
/// with wcs-report); re-exported here for the figure harnesses.
using wcs::GeoMean;

} // namespace bench
} // namespace wcs

#endif // WCS_BENCH_BENCHCOMMON_H
