//===- examples/triangular_matvec.cpp - Builder API tour ------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The paper's Fig. 4 program (upper-triangular matrix-vector product)
// built programmatically with ScopBuilder instead of the frontend, then
// analyzed under several cache geometries. Demonstrates triangular
// domains, the tree representation, and per-level statistics.
//
//===----------------------------------------------------------------------===//

#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <cstdio>

using namespace wcs;

int main() {
  const int64_t N = 400;

  // c[i] = 0; for (j = i; j < N; j++) c[i] += A[i][j] * x[j];
  ScopBuilder B("triangular-matvec");
  unsigned C = B.addArray("c", 8, {N});
  unsigned A = B.addArray("A", 8, {N, N});
  unsigned X = B.addArray("x", 8, {N});

  B.beginLoop("i", B.cst(0), B.cst(N - 1));
  B.write(C, {B.iter("i")});
  B.beginLoop("j", B.iter("i"), B.cst(N - 1));
  B.read(C, {B.iter("i")});
  B.read(A, {B.iter("i"), B.iter("j")});
  B.read(X, {B.iter("j")});
  B.write(C, {B.iter("i")});
  B.endLoop();
  B.endLoop();

  std::string Err;
  ScopProgram P = B.finish(&Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "builder error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("%s\n", P.str().c_str());

  std::printf("%-28s %12s %12s %12s %10s\n", "cache", "accesses",
              "L1 misses", "miss ratio", "speedup");
  for (uint64_t KiB : {2, 4, 8, 16}) {
    CacheConfig Cfg;
    Cfg.SizeBytes = KiB * 1024;
    Cfg.Assoc = 8;
    Cfg.BlockBytes = 64;
    Cfg.Policy = PolicyKind::Plru;
    HierarchyConfig H = HierarchyConfig::singleLevel(Cfg);

    ConcreteSimulator Ref(P, H);
    SimStats R = Ref.run();
    WarpingSimulator Warp(P, H);
    SimStats W = Warp.run();
    if (W.Level[0].Misses != R.Level[0].Misses) {
      std::fprintf(stderr, "mismatch at %s!\n", Cfg.str().c_str());
      return 1;
    }
    std::printf("%-28s %12llu %12llu %11.2f%% %9.1fx\n", Cfg.str().c_str(),
                static_cast<unsigned long long>(R.totalAccesses()),
                static_cast<unsigned long long>(R.Level[0].Misses),
                100.0 * R.Level[0].missRatio(), R.Seconds / W.Seconds);
  }
  std::printf("\nTriangular inner bounds couple the loop dimensions, so "
              "warping opportunities are\nlimited here (the paper's "
              "FurthestByDomains detects the changing trip counts);\n"
              "the simulation stays exact either way.\n");
  return 0;
}
