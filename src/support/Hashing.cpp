//===- support/Hashing.cpp ------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Hashing.h"
#include "wcs/support/IterVec.h"
#include "wcs/support/MathUtil.h"

// The support library is header-only; this file anchors the static library
// and holds compile-time checks of the support types.

namespace wcs {

static_assert(sizeof(IterVec) <= 72, "IterVec should stay small; it is "
                                     "stored per cache line in the symbolic "
                                     "simulator");

} // namespace wcs
