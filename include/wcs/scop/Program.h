//===- wcs/scop/Program.h - SCoP tree representation ------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree-structured SCoP representation of paper Sec. 3.2: loop nodes
/// with iteration domains and ordered children, and access nodes carrying
/// an iteration domain and an affine access function. A ScopProgram is a
/// sequence of such trees (PolyBench kernels consist of several loop
/// nests) plus the arrays they reference and a concrete memory layout.
///
/// Loops are canonicalized to stride +1; descending or strided source
/// loops are normalized by an affine change of iterators in the frontend.
/// Parameters (problem sizes) are bound to constants before construction.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SCOP_PROGRAM_H
#define WCS_SCOP_PROGRAM_H

#include "wcs/poly/IntegerSet.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wcs {

/// An array (or scalar, modeled as a zero-dimensional array, paper
/// footnote 1) referenced by the program.
struct ArrayInfo {
  std::string Name;
  unsigned ElemBytes = 8;
  std::vector<int64_t> DimSizes; ///< Empty for scalars.
  int64_t BaseAddr = -1;         ///< Assigned by Layout.

  bool isScalar() const { return DimSizes.empty(); }

  /// Total extent in bytes.
  int64_t byteSize() const;

  /// Row-major element stride (in elements) of dimension \p Dim.
  int64_t elemStride(unsigned Dim) const;
};

enum class AccessKind { Read, Write };

class LoopNode;
class AccessNode;

/// Base of the two SCoP tree node kinds (closed hierarchy, tag dispatch).
class Node {
public:
  enum class Kind { Loop, Access };

  Kind kind() const { return K; }
  virtual ~Node() = default;

protected:
  explicit Node(Kind K) : K(K) {}

private:
  Kind K;
};

/// A leaf access: one array reference instance per point of its domain.
class AccessNode : public Node {
public:
  AccessNode() : Node(Kind::Access) {}

  int Id = -1;          ///< DFS index, assigned by ScopProgram::finalize.
  unsigned ArrayId = 0; ///< Index into ScopProgram::arrays().
  AccessKind AKind = AccessKind::Read;
  unsigned Depth = 0; ///< Number of enclosing loop dimensions.
  std::vector<AffineExpr> Subscripts; ///< One per array dimension.
  IntegerSet Domain;                  ///< Over Depth dimensions.

  /// Linearized byte-address function over Depth dimensions; computed by
  /// ScopProgram::finalize once the layout is fixed.
  AffineExpr Address;

  /// True if every disjunct of Domain equals the enclosing loop's domain
  /// (the access is unguarded); set by finalize.
  bool Guarded = false;

  bool isWrite() const { return AKind == AccessKind::Write; }
};

/// A loop with an iteration domain and ordered children.
class LoopNode : public Node {
public:
  LoopNode() : Node(Kind::Loop) {}

  int Id = -1;
  std::string IterName = "i";
  unsigned Depth = 0; ///< Nesting depth; the loop's own iterator is
                      ///< dimension Depth (domains have Depth+1 dims).
  IntegerSet Domain;  ///< Over Depth+1 dimensions.
  std::vector<std::unique_ptr<Node>> Children;

  /// DFS access-id range [FirstAccess, EndAccess) of this subtree;
  /// assigned by finalize. Used by the warping checks to enumerate the
  /// access nodes a warp must validate.
  int FirstAccess = 0;
  int EndAccess = 0;
};

inline LoopNode *asLoop(Node *N) {
  return N && N->kind() == Node::Kind::Loop ? static_cast<LoopNode *>(N)
                                            : nullptr;
}
inline const LoopNode *asLoop(const Node *N) {
  return asLoop(const_cast<Node *>(N));
}
inline AccessNode *asAccess(Node *N) {
  return N && N->kind() == Node::Kind::Access ? static_cast<AccessNode *>(N)
                                              : nullptr;
}
inline const AccessNode *asAccess(const Node *N) {
  return asAccess(const_cast<Node *>(N));
}

/// A full static control part: arrays plus a sequence of trees.
class ScopProgram {
public:
  ScopProgram() = default;
  ScopProgram(ScopProgram &&) = default;
  ScopProgram &operator=(ScopProgram &&) = default;

  const std::vector<ArrayInfo> &arrays() const { return Arrays; }
  ArrayInfo &array(unsigned Id) { return Arrays[Id]; }
  const ArrayInfo &array(unsigned Id) const { return Arrays[Id]; }

  const std::vector<std::unique_ptr<Node>> &roots() const { return Roots; }

  /// All access nodes in execution (DFS) order, indexed by AccessNode::Id.
  const std::vector<AccessNode *> &accesses() const { return AllAccesses; }
  /// All loop nodes in DFS order, indexed by LoopNode::Id.
  const std::vector<LoopNode *> &loops() const { return AllLoops; }

  unsigned maxLoopDepth() const { return MaxDepth; }

  /// Name of this program (e.g. the kernel name); informational.
  std::string Name;

  /// Assigns node ids, computes linearized address functions, marks
  /// guarded accesses and validates the tree. Must be called after
  /// construction and after the layout assigned array base addresses.
  /// Returns an error message, or "" on success.
  std::string finalize();

  /// Pretty-prints the tree (for debugging and examples).
  std::string str() const;

  // Mutable construction interface (used by ScopBuilder / the frontend).
  std::vector<ArrayInfo> &mutableArrays() { return Arrays; }
  std::vector<std::unique_ptr<Node>> &mutableRoots() { return Roots; }

private:
  std::vector<ArrayInfo> Arrays;
  std::vector<std::unique_ptr<Node>> Roots;
  std::vector<AccessNode *> AllAccesses;
  std::vector<LoopNode *> AllLoops;
  unsigned MaxDepth = 0;
};

/// Assigns base addresses to all arrays: each array is aligned to
/// \p AlignBytes (default: page size, matching how allocators place large
/// arrays); scalars are packed contiguously in a separate region.
void assignLayout(ScopProgram &P, int64_t AlignBytes = 4096);

} // namespace wcs

#endif // WCS_SCOP_PROGRAM_H
