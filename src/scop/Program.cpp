//===- scop/Program.cpp ---------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/scop/Program.h"

#include <cassert>
#include <sstream>

using namespace wcs;

namespace {

/// DFS finalization state.
struct Finalizer {
  ScopProgram &P;
  std::vector<AccessNode *> Accesses;
  std::vector<LoopNode *> Loops;
  unsigned MaxDepth = 0;
  std::string Error;

  explicit Finalizer(ScopProgram &P) : P(P) {}

  void visit(Node *N, unsigned Depth) {
    if (!Error.empty())
      return;
    if (LoopNode *L = asLoop(N)) {
      if (Depth + 1 > MaxLoopDepth) {
        Error = "loop nest deeper than MaxLoopDepth";
        return;
      }
      L->Id = static_cast<int>(Loops.size());
      Loops.push_back(L);
      L->Depth = Depth;
      if (L->Domain.numDims() != Depth + 1) {
        Error = "loop '" + L->IterName + "' domain has wrong arity";
        return;
      }
      MaxDepth = std::max(MaxDepth, Depth + 1);
      L->FirstAccess = static_cast<int>(Accesses.size());
      for (const std::unique_ptr<Node> &C : L->Children)
        visit(C.get(), Depth + 1);
      L->EndAccess = static_cast<int>(Accesses.size());
      return;
    }
    AccessNode *A = asAccess(N);
    assert(A && "unknown node kind");
    A->Id = static_cast<int>(Accesses.size());
    Accesses.push_back(A);
    A->Depth = Depth;
    if (A->Domain.numDims() != Depth) {
      Error = "access to array #" + std::to_string(A->ArrayId) +
              " has a domain of wrong arity";
      return;
    }
    const ArrayInfo &Arr = P.array(A->ArrayId);
    if (A->Subscripts.size() != Arr.DimSizes.size()) {
      Error = "access to '" + Arr.Name + "' has wrong subscript count";
      return;
    }
    if (Arr.BaseAddr < 0) {
      Error = "array '" + Arr.Name + "' has no layout; call assignLayout()";
      return;
    }
    // Linearize: Address = Base + ElemBytes * sum_k Sub[k] * stride_k.
    AffineExpr Addr = AffineExpr::constant(Depth, Arr.BaseAddr);
    for (unsigned K = 0; K < A->Subscripts.size(); ++K) {
      AffineExpr Sub = A->Subscripts[K].extendedTo(Depth);
      Addr += Sub * (Arr.elemStride(K) * Arr.ElemBytes);
    }
    A->Address = Addr;
    // Note: A->Guarded is set by the builder / frontend, which knows
    // whether an if-guard applies at construction time.
  }
};

void printNode(std::ostringstream &OS, const ScopProgram &P, const Node *N,
               unsigned Indent, std::vector<std::string> &DimNames) {
  std::string Pad(Indent * 2, ' ');
  if (const LoopNode *L = asLoop(N)) {
    DimNames.push_back(L->IterName);
    OS << Pad << "for " << L->IterName << " in " << L->Domain.str(DimNames)
       << "\n";
    for (const std::unique_ptr<Node> &C : L->Children)
      printNode(OS, P, C.get(), Indent + 1, DimNames);
    DimNames.pop_back();
    return;
  }
  const AccessNode *A = asAccess(N);
  const ArrayInfo &Arr = P.array(A->ArrayId);
  OS << Pad << (A->isWrite() ? "write " : "read  ") << Arr.Name;
  for (const AffineExpr &S : A->Subscripts)
    OS << "[" << S.str(DimNames) << "]";
  if (A->Guarded)
    OS << " if " << A->Domain.str(DimNames);
  OS << "\n";
}

} // namespace

std::string ScopProgram::finalize() {
  Finalizer F(*this);
  for (const std::unique_ptr<Node> &R : Roots)
    F.visit(R.get(), 0);
  if (!F.Error.empty())
    return F.Error;
  AllAccesses = std::move(F.Accesses);
  AllLoops = std::move(F.Loops);
  MaxDepth = F.MaxDepth;
  return "";
}

std::string ScopProgram::str() const {
  std::ostringstream OS;
  OS << "scop " << Name << "\n";
  for (const ArrayInfo &A : Arrays) {
    OS << "  array " << A.Name;
    for (int64_t D : A.DimSizes)
      OS << "[" << D << "]";
    OS << " elem=" << A.ElemBytes << "B base=" << A.BaseAddr << "\n";
  }
  std::vector<std::string> DimNames;
  for (const std::unique_ptr<Node> &R : Roots)
    printNode(OS, *this, R.get(), 1, DimNames);
  return OS.str();
}
