//===- wcs/support/JsonReader.h - Typed JSON document reading ---*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reader API behind every schema-versioned wcs document: the
/// wcs-results and wcs-sweep files plus the wcs-request/wcs-response
/// serving protocol. Three layers:
///
///  - needX(V, Key, Out, Err): fetch object member \p Key, demand kind
///    X, fail with the uniform "missing or mistyped member" diagnostic.
///    Counters and config fields are written as exact JSON integers, so
///    the integer readers demand the Int kind outright: a fractional,
///    out-of-range or (for unsigned fields) negative number is a
///    malformed file and fails loudly instead of being truncated or
///    wrapped into a plausible value.
///
///  - optX(V, Key, Out, Err): an absent member leaves \p Out at its
///    caller-set default and succeeds; a present but mistyped member
///    still fails loudly. For fields added to a schema after its first
///    release -- writers always emit them, but older files of the same
///    version must keep parsing.
///
///  - needSchema(V, Name, Version, Err): the envelope check every
///    document reader runs first. Rejects a wrong "schema" member
///    ("not a <Name> file") and a wrong "schema_version" ("unsupported
///    schema version"), so no reader ever half-parses a document it
///    does not speak. Rejection behavior for all four document types is
///    pinned by tests/json_reader_test.cpp.
///
/// Documents are still read through their typed fromJson entry points;
/// these helpers are what those entry points are built from.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_JSONREADER_H
#define WCS_SUPPORT_JSONREADER_H

#include "wcs/support/Json.h"

#include <cstdint>
#include <sstream>
#include <string>

namespace wcs {
namespace jsonfield {

inline bool failMsg(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Fetches object member \p Key into \p Out. Central place for the
/// "missing or mistyped member" diagnostics every fromJson needs.
inline bool needMember(const json::Value &V, const char *Key,
                       const json::Value *&Out, std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  Out = V.find(Key);
  if (!Out)
    return failMsg(Err, std::string("missing member '") + Key + "'");
  return true;
}

inline bool needUInt(const json::Value &V, const char *Key, uint64_t &Out,
                     std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (M->kind() != json::Value::Kind::Int || M->asInt() < 0)
    return failMsg(Err, std::string("member '") + Key +
                            "' must be a non-negative integer");
  Out = M->asUInt();
  return true;
}

inline bool needInt(const json::Value &V, const char *Key, int64_t &Out,
                    std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (M->kind() != json::Value::Kind::Int)
    return failMsg(Err, std::string("member '") + Key + "' must be an integer");
  Out = M->asInt();
  return true;
}

inline bool needU32(const json::Value &V, const char *Key, unsigned &Out,
                    std::string *Err) {
  uint64_t U;
  if (!needUInt(V, Key, U, Err))
    return false;
  if (U > 0xffffffffull)
    return failMsg(Err, std::string("member '") + Key +
                            "' does not fit in 32 bits");
  Out = static_cast<unsigned>(U);
  return true;
}

inline bool needDouble(const json::Value &V, const char *Key, double &Out,
                       std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (!M->isNumber())
    return failMsg(Err, std::string("member '") + Key + "' must be a number");
  Out = M->asDouble();
  return true;
}

inline bool needBool(const json::Value &V, const char *Key, bool &Out,
                     std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (!M->isBool())
    return failMsg(Err, std::string("member '") + Key + "' must be a bool");
  Out = M->asBool();
  return true;
}

inline bool needString(const json::Value &V, const char *Key,
                       std::string &Out, std::string *Err) {
  const json::Value *M;
  if (!needMember(V, Key, M, Err))
    return false;
  if (!M->isString())
    return failMsg(Err, std::string("member '") + Key + "' must be a string");
  Out = M->asString();
  return true;
}

inline bool needArray(const json::Value &V, const char *Key,
                      const json::Value *&Out, std::string *Err) {
  if (!needMember(V, Key, Out, Err))
    return false;
  if (!Out->isArray())
    return failMsg(Err, std::string("member '") + Key + "' must be an array");
  return true;
}

inline bool needObject(const json::Value &V, const char *Key,
                       const json::Value *&Out, std::string *Err) {
  if (!needMember(V, Key, Out, Err))
    return false;
  if (!Out->isObject())
    return failMsg(Err, std::string("member '") + Key + "' must be an object");
  return true;
}

inline bool optUInt(const json::Value &V, const char *Key, uint64_t &Out,
                    std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needUInt(V, Key, Out, Err);
}

inline bool optU32(const json::Value &V, const char *Key, unsigned &Out,
                   std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needU32(V, Key, Out, Err);
}

inline bool optDouble(const json::Value &V, const char *Key, double &Out,
                      std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needDouble(V, Key, Out, Err);
}

inline bool optBool(const json::Value &V, const char *Key, bool &Out,
                    std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needBool(V, Key, Out, Err);
}

inline bool optString(const json::Value &V, const char *Key, std::string &Out,
                      std::string *Err) {
  if (!V.isObject())
    return failMsg(Err, "expected an object");
  return V.find(Key) == nullptr || needString(V, Key, Out, Err);
}

/// The envelope check of every schema-versioned document reader:
/// demands `"schema": Name` and `"schema_version": Version` before any
/// payload member is touched. A document of another type fails with
/// "not a <Name> file"; a version this reader does not speak fails
/// with "unsupported schema version".
inline bool needSchema(const json::Value &V, const char *Name,
                       int64_t Version, std::string *Err) {
  std::string Schema;
  int64_t Got;
  if (!needString(V, "schema", Schema, Err) ||
      !needInt(V, "schema_version", Got, Err))
    return false;
  if (Schema != Name)
    return failMsg(Err, "not a " + std::string(Name) + " file (schema '" +
                            Schema + "')");
  if (Got != Version) {
    std::ostringstream OS;
    OS << "unsupported schema version " << Got << " (this reader speaks "
       << Version << ")";
    return failMsg(Err, OS.str());
  }
  return true;
}

} // namespace jsonfield
} // namespace wcs

#endif // WCS_SUPPORT_JSONREADER_H
