//===- tests/json_reader_test.cpp - Reader API and schema rejection -------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Tests for the public JSON reader API (support/JsonReader.h): the
// need/opt member extractors, and -- via needSchema -- the
// wrong-schema / wrong-version rejection contract of every
// schema-versioned document type (wcs-results, wcs-sweep,
// wcs-request, wcs-response, wcs-status, wcs-metrics). Every reader
// must refuse a document of another type and a version it does not
// speak, with a diagnostic naming the problem, before touching any
// payload member.
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/Results.h"
#include "wcs/driver/SweepRequest.h"
#include "wcs/serve/Protocol.h"
#include "wcs/support/JsonReader.h"
#include "wcs/support/Telemetry.h"

#include "gtest/gtest.h"

using namespace wcs;
using namespace wcs::jsonfield;
using json::Value;

namespace {

//===----------------------------------------------------------------------===//
// Member extractors
//===----------------------------------------------------------------------===//

TEST(JsonReader, NeedRejectsMissingAndMistyped) {
  Value V = Value::object();
  V.set("n", 7);
  V.set("s", "text");
  V.set("d", 1.5);
  V.set("b", true);

  uint64_t U;
  std::string S, Err;
  EXPECT_TRUE(needUInt(V, "n", U, &Err));
  EXPECT_EQ(U, 7u);
  EXPECT_FALSE(needUInt(V, "absent", U, &Err));
  EXPECT_NE(Err.find("missing member 'absent'"), std::string::npos);
  EXPECT_FALSE(needUInt(V, "s", U, &Err)); // Mistyped.
  EXPECT_FALSE(needUInt(V, "d", U, &Err)); // Fractional is not a counter.
  EXPECT_FALSE(needString(V, "n", S, &Err));
  EXPECT_FALSE(needUInt(Value("not an object"), "n", U, &Err));
  EXPECT_EQ(Err, "expected an object");
}

TEST(JsonReader, NeedUIntRejectsNegative) {
  Value V = Value::object();
  V.set("n", -1);
  uint64_t U;
  std::string Err;
  EXPECT_FALSE(needUInt(V, "n", U, &Err));
  EXPECT_NE(Err.find("non-negative"), std::string::npos);
  int64_t I;
  EXPECT_TRUE(needInt(V, "n", I, &Err));
  EXPECT_EQ(I, -1);
}

TEST(JsonReader, NeedU32RejectsOverflow) {
  Value V = Value::object();
  V.set("n", int64_t(1) << 33);
  unsigned U;
  std::string Err;
  EXPECT_FALSE(needU32(V, "n", U, &Err));
  EXPECT_NE(Err.find("32 bits"), std::string::npos);
}

TEST(JsonReader, OptLeavesDefaultWhenAbsentButChecksTypeWhenPresent) {
  Value V = Value::object();
  V.set("present", 42);
  V.set("mistyped", "nope");

  uint64_t U = 99;
  std::string Err;
  EXPECT_TRUE(optUInt(V, "absent", U, &Err));
  EXPECT_EQ(U, 99u); // Caller default untouched.
  EXPECT_TRUE(optUInt(V, "present", U, &Err));
  EXPECT_EQ(U, 42u);
  EXPECT_FALSE(optUInt(V, "mistyped", U, &Err)); // Present + wrong kind.

  bool B = true;
  EXPECT_TRUE(optBool(V, "absent", B, &Err));
  EXPECT_TRUE(B);
  double D = 2.5;
  EXPECT_TRUE(optDouble(V, "absent", D, &Err));
  EXPECT_EQ(D, 2.5);
  std::string S = "default";
  EXPECT_TRUE(optString(V, "absent", S, &Err));
  EXPECT_EQ(S, "default");
}

TEST(JsonReader, NeedSchemaDiagnostics) {
  Value V = Value::object();
  V.set("schema", "wcs-other");
  V.set("schema_version", 1);
  std::string Err;
  EXPECT_FALSE(needSchema(V, "wcs-results", 1, &Err));
  EXPECT_EQ(Err, "not a wcs-results file (schema 'wcs-other')");
  V.set("schema", "wcs-results");
  V.set("schema_version", 2);
  EXPECT_FALSE(needSchema(V, "wcs-results", 1, &Err));
  EXPECT_EQ(Err, "unsupported schema version 2 (this reader speaks 1)");
  V.set("schema_version", 1);
  EXPECT_TRUE(needSchema(V, "wcs-results", 1, &Err));
}

//===----------------------------------------------------------------------===//
// The document types: wrong schema / wrong version rejection
//===----------------------------------------------------------------------===//

// One valid instance of each document type, round-tripped through its
// serializer so the rejection tests start from known-good JSON.

Value validResults() {
  ResultsDoc D;
  D.Tool = "test";
  D.SizeName = "mini";
  return toJson(D);
}

Value validSweep() {
  SweepDoc D;
  D.Tool = "test";
  D.Program = "gemm";
  return toJson(D);
}

Value validRequest() {
  SweepRequest R;
  R.Kernel = "gemm";
  R.Size = ProblemSize::Mini;
  R.L1.SizesBytes = {4096};
  return toJson(R);
}

Value validResponse() {
  SweepResponse R;
  R.Ok = true;
  R.RequestHash = "0123456789abcdef";
  R.Sweep.Tool = "wcs-serve";
  return toJson(R);
}

Value validStatus() {
  StatusDoc D;
  D.RequestsServed = 4;
  D.PointsComputed = 6;
  D.MaxConnections = 8;
  return toJson(D);
}

Value validMetrics() {
  MetricsDoc D;
  D.Tool = "wcs-serve";
  D.Counters.emplace_back("serve.requests", 4);
  MetricsDoc::Hist H;
  H.Name = "serve.request_seconds";
  H.Bounds = {0.001, 1.0};
  H.Counts = {1, 2, 1};
  H.Count = 4;
  H.Sum = 2.5;
  D.Histograms.push_back(std::move(H));
  D.Spans.push_back({"serve.request", 4, 2.5});
  return toJson(D);
}

template <typename DocT>
void expectRejection(Value Good, const char *SchemaName) {
  DocT Out;
  std::string Err;
  // The untampered document parses.
  ASSERT_TRUE(fromJson(Good, Out, &Err)) << SchemaName << ": " << Err;

  // Wrong schema: a document of another type must be refused by name.
  Value WrongSchema = Good;
  WrongSchema.set("schema", "wcs-imposter");
  EXPECT_FALSE(fromJson(WrongSchema, Out, &Err));
  EXPECT_NE(Err.find(std::string("not a ") + SchemaName),
            std::string::npos)
      << Err;

  // Wrong version: same type, future version, must be refused.
  Value WrongVersion = Good;
  WrongVersion.set("schema_version", 99);
  EXPECT_FALSE(fromJson(WrongVersion, Out, &Err));
  EXPECT_NE(Err.find("unsupported schema version 99"), std::string::npos)
      << Err;

  // Missing envelope entirely.
  EXPECT_FALSE(fromJson(Value::object(), Out, &Err));
  EXPECT_NE(Err.find("missing member 'schema'"), std::string::npos) << Err;
}

TEST(SchemaRejection, ResultsDoc) {
  expectRejection<ResultsDoc>(validResults(), "wcs-results");
}

TEST(SchemaRejection, SweepDoc) {
  expectRejection<SweepDoc>(validSweep(), "wcs-sweep");
}

TEST(SchemaRejection, SweepRequest) {
  expectRejection<SweepRequest>(validRequest(), "wcs-request");
}

TEST(SchemaRejection, SweepResponse) {
  expectRejection<SweepResponse>(validResponse(), "wcs-response");
}

TEST(SchemaRejection, StatusDoc) {
  expectRejection<StatusDoc>(validStatus(), "wcs-status");
}

TEST(SchemaRejection, MetricsDoc) {
  expectRejection<MetricsDoc>(validMetrics(), "wcs-metrics");
}

TEST(SchemaRejection, CrossTypeConfusion) {
  // Feeding one document type to another type's reader must fail on
  // the schema name -- not half-parse into garbage.
  SweepRequest Req;
  std::string Err;
  EXPECT_FALSE(fromJson(validSweep(), Req, &Err));
  EXPECT_NE(Err.find("not a wcs-request"), std::string::npos) << Err;
  SweepDoc Doc;
  EXPECT_FALSE(fromJson(validRequest(), Doc, &Err));
  EXPECT_NE(Err.find("not a wcs-sweep"), std::string::npos) << Err;
  StatusDoc St;
  EXPECT_FALSE(fromJson(validMetrics(), St, &Err));
  EXPECT_NE(Err.find("not a wcs-status"), std::string::npos) << Err;
  MetricsDoc Me;
  EXPECT_FALSE(fromJson(validStatus(), Me, &Err));
  EXPECT_NE(Err.find("not a wcs-metrics"), std::string::npos) << Err;
}

} // namespace
