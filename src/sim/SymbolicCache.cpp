//===- sim/SymbolicCache.cpp ----------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/sim/SymbolicCache.h"

#include <cassert>

using namespace wcs;

SymbolicHierarchy::SymbolicHierarchy(const HierarchyConfig &Config)
    : Inclusion(Config.Inclusion) {
  assert(Config.validate().empty() && "invalid hierarchy configuration");
  for (const CacheConfig &C : Config.Levels)
    Levels.emplace_back(C);
}

SymAccessOutcome SymbolicHierarchy::access(BlockId B, bool IsWrite,
                                           int32_t NodeId,
                                           const IterVec &Iter) {
  SymAccessOutcome R;
  SymbolicCache &L1 = Levels.front();
  bool Alloc1 = !(IsWrite && L1.config().WriteAlloc == WriteAllocate::No);
  AccessOutcome O1 = L1.access(B, Alloc1);
  R.L1Hit = O1.Hit;
  R.L1HitDepth = O1.HitDepth;
  if (O1.Hit || O1.Inserted) {
    SymTag &T = L1.tagAt(O1.Set, O1.Way);
    T.NodeId = NodeId;
    T.Iter = Iter;
    L1.orDirtyAt(O1.Set, O1.Way, IsWrite);
  }
  if (O1.Hit || Levels.size() < 2)
    return R;

  SymbolicCache &L2 = Levels[1];
  bool Alloc2 = !(IsWrite && L2.config().WriteAlloc == WriteAllocate::No);
  R.L2Accessed = true;

  switch (Inclusion) {
  case InclusionPolicy::NonInclusiveNonExclusive:
  case InclusionPolicy::Inclusive: {
    AccessOutcome O2 = L2.access(B, Alloc2);
    R.L2Hit = O2.Hit;
    if (O2.Hit || O2.Inserted) {
      SymTag &T = L2.tagAt(O2.Set, O2.Way);
      T.NodeId = NodeId;
      T.Iter = Iter;
      L2.orDirtyAt(O2.Set, O2.Way, IsWrite);
    }
    if (Inclusion == InclusionPolicy::Inclusive && O2.Inserted &&
        O2.EvictedValid)
      L1.invalidate(O2.EvictedBlock);
    break;
  }
  case InclusionPolicy::Exclusive: {
    if (!Alloc1) {
      R.L2Hit = L2.probe(B);
      break;
    }
    // Promotion: the L2 copy (with whatever tag it carried) moves into
    // the L1 slot just filled; the access re-tags it anyway. The L1
    // victim migrates to the L2 *keeping its own tag*, so the warping
    // bijection checks continue to see its installing access instance.
    std::optional<SymLine> InL2 = L2.invalidate(B);
    R.L2Hit = InL2.has_value();
    if (InL2)
      L1.orDirtyAt(O1.Set, O1.Way, InL2->Dirty);
    if (O1.Inserted && O1.EvictedValid) {
      SymLine Victim = L1.lastEvicted();
      AccessOutcome OV = L2.access(O1.EvictedBlock, /*Allocate=*/true);
      if (OV.Hit || OV.Inserted) {
        SymTag &T = L2.tagAt(OV.Set, OV.Way);
        T.NodeId = Victim.NodeId;
        T.Iter = Victim.Iter;
        L2.setDirtyAt(OV.Set, OV.Way, Victim.Dirty);
      }
    }
    break;
  }
  }
  return R;
}
