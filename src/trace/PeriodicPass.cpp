//===- trace/PeriodicPass.cpp ---------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/PeriodicPass.h"

#include "wcs/sim/WarpingSimulator.h"

#include <cassert>

using namespace wcs;

uint64_t PeriodicPassResult::missesForAssoc(uint64_t Assoc) const {
  assert(Assoc <= MaxAssoc && "histogram is truncated below Assoc");
  uint64_t M = Histogram.Beyond + Histogram.Colds;
  for (uint64_t D = Assoc; D < Histogram.Hist.size(); ++D)
    M += Histogram.Hist[D];
  return M;
}

PeriodicPassResult wcs::runPeriodicPass(const ScopProgram &Program,
                                        unsigned BlockBytes,
                                        unsigned NumSets, unsigned MaxAssoc,
                                        const SimOptions &Opts) {
  CacheConfig C;
  C.SizeBytes =
      static_cast<uint64_t>(BlockBytes) * NumSets * MaxAssoc;
  C.BlockBytes = BlockBytes;
  C.Assoc = MaxAssoc;
  C.Policy = PolicyKind::Lru;
  C.WriteAlloc = WriteAllocate::Yes;
  assert(C.validate().empty() && "invalid periodic-pass geometry");

  WarpingSimulator Sim(Program, HierarchyConfig::singleLevel(C), Opts);
  Sim.enableDepthProfile();

  PeriodicPassResult R;
  R.MaxAssoc = MaxAssoc;
  R.Stats = Sim.run();
  R.Histogram.Hist = Sim.depthHist();
  // Trim trailing zero bins so bulk updates touch only populated depths.
  while (!R.Histogram.Hist.empty() && R.Histogram.Hist.back() == 0)
    R.Histogram.Hist.pop_back();
  // Everything that was not a hit below MaxAssoc -- colds and distances
  // at or beyond it -- misses at every answerable associativity. The
  // run cannot tell the two apart (nor does any consumer need it), so
  // all of it lands in Beyond and Colds stays 0: a nonzero Colds is the
  // periodicity-violation signal of CAPTURED fragments, which this
  // whole-run histogram is not.
  R.Histogram.Beyond = R.Stats.Level[0].Misses;
  R.Histogram.Accesses = R.Stats.Level[0].Accesses;
  return R;
}
