//===- tests/serve_test.cpp - wcs-serve serving-core tests ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The wcs-serve semantic surface, driven two ways: serveSweepRequest()
// directly (store hit/miss partitioning, method "store" relabeling,
// bit-identical counters, progress events, malformed-request handling)
// and end-to-end through the Unix-domain socket (runServer on a thread,
// the submitSweepRequest client, control shutdown). Both paths must
// agree bit for bit.
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Server.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace wcs;

namespace {

const char *TestSource = R"(
  int A[512]; int B[512];
  for (int i = 1; i < 511; i++)
    B[i] = A[i-1] + A[i+1];
)";

SweepRequest smallRequest() {
  SweepRequest R;
  R.Source = TestSource;
  R.SourceName = "stencil.wcs";
  R.L1.SizesBytes = {1024, 2048};
  R.L1.Assocs = {2};
  R.L1.Policies = {PolicyKind::Lru, PolicyKind::Fifo};
  return R;
}

/// Per-point JSON with the timing zeroed: counters and provenance only.
std::string counters(SweepPoint P) {
  P.Stats.Seconds = 0.0;
  return toJson(P).dump(false);
}

std::string tempPath(const char *Tag, const char *Ext) {
  std::ostringstream OS;
  OS << ::testing::TempDir() << "wcs-serve-" << Tag << "-" << ::getpid()
     << Ext;
  return OS.str();
}

TEST(Serve, MissesThenHitsBitIdentical) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Req = smallRequest();

  // Cold store: every point is a miss, simulated and inserted.
  SweepResponse First = serveSweepRequest(Req, Store, 2, nullptr);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.RequestHash, requestHash(Req));
  EXPECT_EQ(First.StoreHits, 0u);
  EXPECT_EQ(First.StoreMisses, 4u);
  EXPECT_EQ(First.StoreEntries, 4u);
  ASSERT_EQ(First.Sweep.Points.size(), 4u);
  for (const SweepPoint &P : First.Sweep.Points) {
    ASSERT_TRUE(P.Ok) << P.Error;
    EXPECT_NE(P.Method, SweepMethod::Store); // Fresh results keep their
                                             // computing method.
  }

  // Resubmission: every point comes from the store, zero simulation.
  SweepResponse Second = serveSweepRequest(Req, Store, 2, nullptr);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(Second.StoreHits, 4u);
  EXPECT_EQ(Second.StoreMisses, 0u);
  ASSERT_EQ(Second.Sweep.Points.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    // Honest provenance: the point is re-labeled "store"...
    EXPECT_EQ(Second.Sweep.Points[I].Method, SweepMethod::Store);
    // ...but everything else -- counters, backend, even the original
    // timing measurement -- is the stored point verbatim.
    SweepPoint Norm = Second.Sweep.Points[I];
    Norm.Method = First.Sweep.Points[I].Method;
    EXPECT_EQ(toJson(Norm).dump(false),
              toJson(First.Sweep.Points[I]).dump(false))
        << "point " << I;
  }
}

TEST(Serve, OverlappingGridsShareStoredPoints) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  SweepRequest Narrow = smallRequest();
  Narrow.L1.SizesBytes = {1024};
  SweepResponse First = serveSweepRequest(Narrow, Store, 2, nullptr);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.StoreMisses, 2u);

  // A DIFFERENT request whose grid overlaps: the shared capacity is
  // served from the store, only the new one simulates.
  SweepRequest Wide = smallRequest();
  Wide.L1.SizesBytes = {1024, 2048};
  SweepResponse Second = serveSweepRequest(Wide, Store, 2, nullptr);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_NE(Second.RequestHash, First.RequestHash);
  EXPECT_EQ(Second.StoreHits, 2u);
  EXPECT_EQ(Second.StoreMisses, 2u);
  EXPECT_EQ(Second.StoreEntries, 4u);
  // Grid expansion orders sizes outermost: points 0-1 are the 1024-byte
  // capacities served from the store.
  EXPECT_EQ(Second.Sweep.Points[0].Method, SweepMethod::Store);
  EXPECT_EQ(Second.Sweep.Points[1].Method, SweepMethod::Store);
  EXPECT_NE(Second.Sweep.Points[2].Method, SweepMethod::Store);
  EXPECT_NE(Second.Sweep.Points[3].Method, SweepMethod::Store);
}

TEST(Serve, ProgressCoversEveryPointInInputOrder) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Req = smallRequest();

  // Warm half the store so both hit and miss progress paths fire.
  SweepRequest Narrow = Req;
  Narrow.L1.SizesBytes = {1024};
  ASSERT_TRUE(serveSweepRequest(Narrow, Store, 2, nullptr).Ok);

  std::vector<ProgressEvent> Events;
  SweepResponse Resp = serveSweepRequest(
      Req, Store, 2, [&](const ProgressEvent &E) { Events.push_back(E); });
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  ASSERT_EQ(Events.size(), 4u);
  size_t Hits = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Events[I].Point, I); // One event per point, input order.
    EXPECT_EQ(Events[I].Total, 4u);
    EXPECT_TRUE(Events[I].Ok);
    EXPECT_EQ(Events[I].Cache, Resp.Sweep.Points[I].Cache.str());
    Hits += Events[I].Method == SweepMethod::Store ? 1 : 0;
  }
  EXPECT_EQ(Hits, 2u);
}

TEST(Serve, MalformedRequestIsAnOkFalseResponse) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Bad = smallRequest();
  Bad.Source = "for (;;) nonsense";
  SweepResponse Resp = serveSweepRequest(Bad, Store, 2, nullptr);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_FALSE(Resp.Error.empty());
  EXPECT_EQ(Resp.RequestHash, requestHash(Bad)); // Still attributed.
  EXPECT_EQ(Store.numEntries(), 0u); // Nothing was stored.
}

TEST(Serve, FailedPointsAreNeverStored) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  // A grid that expands fine but cannot all simulate does not poison
  // the store; here every point is fine, so instead pin the contract
  // from the other side: only Ok points land in the store.
  SweepRequest Req = smallRequest();
  SweepResponse Resp = serveSweepRequest(Req, Store, 2, nullptr);
  ASSERT_TRUE(Resp.Ok);
  EXPECT_EQ(Store.numEntries(),
            static_cast<size_t>(Resp.StoreMisses)); // All Ok, all stored.
}

//===----------------------------------------------------------------------===//
// Through the socket
//===----------------------------------------------------------------------===//

TEST(ServeSocket, EndToEndMatchesDirectServing) {
  std::string Socket = tempPath("sock", ".sock");
  std::string StorePath = tempPath("store", ".jsonl");
  std::remove(StorePath.c_str());

  ServerOptions SO;
  SO.SocketPath = Socket;
  SO.StorePath = StorePath;
  SO.Threads = 2;

  std::string ServerErr;
  std::mutex ReadyMu;
  std::condition_variable ReadyCv;
  bool Ready = false;
  std::thread Server([&] {
    bool Ok = runServer(
        SO,
        [&] {
          std::lock_guard<std::mutex> L(ReadyMu);
          Ready = true;
          ReadyCv.notify_one();
        },
        &ServerErr);
    if (!Ok) {
      // Unblock the main thread even on setup failure.
      std::lock_guard<std::mutex> L(ReadyMu);
      Ready = true;
      ReadyCv.notify_one();
    }
  });
  {
    std::unique_lock<std::mutex> L(ReadyMu);
    ReadyCv.wait(L, [&] { return Ready; });
  }
  ASSERT_EQ(ServerErr, "");

  SweepRequest Req = smallRequest();
  std::string Err;

  // First submission: all misses.
  SweepResponse First;
  std::vector<ProgressEvent> Events;
  ASSERT_TRUE(submitSweepRequest(
      Socket, Req, First,
      [&](const ProgressEvent &E) { Events.push_back(E); }, &Err))
      << Err;
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_EQ(First.StoreMisses, 4u);
  EXPECT_EQ(Events.size(), 4u); // Progress streamed over the wire too.

  // Second submission: answered from the store, bit-identical counters.
  SweepResponse Second;
  ASSERT_TRUE(submitSweepRequest(Socket, Req, Second, nullptr, &Err)) << Err;
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_EQ(Second.StoreHits, 4u);
  EXPECT_EQ(Second.StoreMisses, 0u);
  ASSERT_EQ(Second.Sweep.Points.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Second.Sweep.Points[I].Method, SweepMethod::Store);
    SweepPoint Norm = Second.Sweep.Points[I];
    Norm.Method = First.Sweep.Points[I].Method;
    EXPECT_EQ(toJson(Norm).dump(false),
              toJson(First.Sweep.Points[I]).dump(false));
  }

  // The socket path and the in-process path are the same computation.
  ResultStore Fresh;
  ASSERT_TRUE(Fresh.open("", &Err)) << Err;
  SweepResponse Direct = serveSweepRequest(Req, Fresh, 2, nullptr);
  ASSERT_TRUE(Direct.Ok) << Direct.Error;
  ASSERT_EQ(Direct.Sweep.Points.size(), First.Sweep.Points.size());
  for (size_t I = 0; I < Direct.Sweep.Points.size(); ++I)
    EXPECT_EQ(counters(Direct.Sweep.Points[I]),
              counters(First.Sweep.Points[I]))
        << "point " << I;

  // A malformed line gets a refusal, not a hang or a dropped connection
  // (transport stays healthy for the shutdown below).
  SweepRequest Bad = Req;
  Bad.Source = "for (;;) nonsense";
  SweepResponse BadResp;
  ASSERT_TRUE(submitSweepRequest(Socket, Bad, BadResp, nullptr, &Err))
      << Err;
  EXPECT_FALSE(BadResp.Ok);
  EXPECT_FALSE(BadResp.Error.empty());

  // Clean shutdown: acknowledged, thread joins, socket file removed.
  ASSERT_TRUE(requestShutdown(Socket, &Err)) << Err;
  Server.join();
  EXPECT_NE(::access(Socket.c_str(), F_OK), 0);

  // The store log persists past the daemon: a fresh ResultStore opens
  // it clean with all four points.
  ResultStore Reopened;
  ASSERT_TRUE(Reopened.open(StorePath, &Err)) << Err;
  EXPECT_EQ(Reopened.recoveredBytes(), 0u);
  EXPECT_EQ(Reopened.numEntries(), 4u);
  std::remove(StorePath.c_str());
}

TEST(ServeSocket, ClientReportsConnectFailure) {
  std::string Err;
  SweepResponse Resp;
  EXPECT_FALSE(submitSweepRequest(tempPath("nosock", ".sock"),
                                  smallRequest(), Resp, nullptr, &Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
