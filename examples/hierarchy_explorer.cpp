//===- examples/hierarchy_explorer.cpp - Two-level hierarchies ------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Explores a two-level non-inclusive non-exclusive hierarchy (paper
// Sec. 2.3) on a stencil kernel: per-level miss counts from the warping
// simulator, the effect of no-write-allocate L1s, and the extra L2
// traffic caused by dirty write-backs (trace-simulator reference model).
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/trace/TraceSimulator.h"

#include <cstdio>

using namespace wcs;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "jacobi-2d";
  std::string Err;
  ScopProgram P = buildKernel(Name, ProblemSize::Medium, &Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  HierarchyConfig H = HierarchyConfig::twoLevel(CacheConfig::scaledL1(),
                                                CacheConfig::scaledL2());
  std::printf("kernel %s at %s\nhierarchy %s\n\n", Name.c_str(),
              problemSizeName(ProblemSize::Medium), H.str().c_str());

  WarpingSimulator Warp(P, H);
  SimStats W = Warp.run();
  std::printf("warping simulation (Eq. 24 model, array accesses):\n");
  std::printf("  L1: %llu accesses, %llu misses (%.2f%%)\n",
              static_cast<unsigned long long>(W.Level[0].Accesses),
              static_cast<unsigned long long>(W.Level[0].Misses),
              100.0 * W.Level[0].missRatio());
  std::printf("  L2: %llu accesses, %llu misses (%.2f%%)\n",
              static_cast<unsigned long long>(W.Level[1].Accesses),
              static_cast<unsigned long long>(W.Level[1].Misses),
              100.0 * W.Level[1].missRatio());
  std::printf("  warped %.1f%% of all accesses in %llu warps\n\n",
              100.0 * (1.0 - W.nonWarpedShare()),
              static_cast<unsigned long long>(W.Warps));

  // No-write-allocate L1: write misses bypass the cache.
  HierarchyConfig HN = H;
  HN.Levels[0].WriteAlloc = WriteAllocate::No;
  WarpingSimulator WarpN(P, HN);
  SimStats WN = WarpN.run();
  std::printf("with a no-write-allocate L1: %llu L1 misses (%+.2f%%)\n\n",
              static_cast<unsigned long long>(WN.Level[0].Misses),
              100.0 * (static_cast<double>(WN.Level[0].Misses) /
                           W.Level[0].Misses -
                       1.0));

  // Reference trace simulation with dirty write-backs propagated to L2
  // and scalar accesses included (the "measured" model of Fig. 11).
  TraceSimOptions TSO;
  TraceSimulator TS(H, TSO);
  TraceSimResult TR = TS.runOnProgram(P);
  std::printf("reference trace model (scalars + write-backs):\n");
  std::printf("  L1: %llu accesses, %llu misses\n",
              static_cast<unsigned long long>(TR.Stats.Level[0].Accesses),
              static_cast<unsigned long long>(TR.Stats.Level[0].Misses));
  std::printf("  L2: %llu demand accesses + %llu write-backs "
              "(%llu write-back misses)\n",
              static_cast<unsigned long long>(TR.Stats.Level[1].Accesses),
              static_cast<unsigned long long>(TR.Writebacks),
              static_cast<unsigned long long>(TR.WritebackMisses));
  return 0;
}
