//===- poly/IntegerSet.cpp ------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/poly/IntegerSet.h"

#include <cassert>
#include <sstream>

using namespace wcs;

const ConvexSet &IntegerSet::onlyDisjunct() const {
  assert(isSingleDisjunct() && "set is not a single disjunct");
  return Parts.front();
}

void IntegerSet::addDisjunct(ConvexSet S) {
  if (Parts.empty())
    Dims = S.numDims();
  assert(S.numDims() == Dims && "dimension mismatch in union");
  Parts.push_back(std::move(S));
}

void IntegerSet::intersectWith(const ConvexSet &S) {
  for (ConvexSet &P : Parts)
    P.intersectWith(S);
}

IntegerSet IntegerSet::extendedTo(unsigned NumDims) const {
  IntegerSet R;
  for (const ConvexSet &P : Parts)
    R.addDisjunct(P.extendedTo(NumDims));
  R.Dims = NumDims;
  return R;
}

bool IntegerSet::contains(const IterVec &At) const {
  for (const ConvexSet &P : Parts)
    if (P.contains(At))
      return true;
  return false;
}

std::optional<VarBounds>
IntegerSet::lastDimBounds(const IterVec &Prefix) const {
  std::optional<VarBounds> Result;
  for (const ConvexSet &P : Parts) {
    std::optional<VarBounds> B = P.lastDimBounds(Prefix);
    if (!B)
      return std::nullopt; // Unbounded disjunct.
    if (B->empty())
      continue;
    if (!Result) {
      Result = B;
    } else {
      Result->Lo = std::min(Result->Lo, B->Lo);
      Result->Hi = std::max(Result->Hi, B->Hi);
    }
  }
  if (!Result)
    return VarBounds{1, 0}; // All disjuncts empty for this prefix.
  return Result;
}

std::string IntegerSet::str(const std::vector<std::string> &DimNames) const {
  std::ostringstream OS;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      OS << " or ";
    OS << Parts[I].str(DimNames);
  }
  if (Parts.empty())
    OS << "{ }";
  return OS.str();
}
