//===- tests/telemetry_test.cpp - Span tracer and metrics registry --------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Pins the observable contracts of support/Telemetry: span nesting
// order in a drained trace, multi-thread lane merging, ring overflow
// (oldest events dropped, survivors never torn -- including under a
// concurrent drain, which is what TSan exercises here), the
// histogram's exact bucket-boundary rule, the wcs-metrics document
// round trip, and registry snapshot deltas.
//
// The tracer and registry are process-global, so every tracing test
// resets them through TracingGuard and records its spans on FRESH
// threads: a thread's ring capacity is fixed when its buffer first
// registers, and only a new thread is guaranteed to pick up the
// capacity a test just configured.
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Telemetry.h"

#include "gtest/gtest.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace wcs;
namespace tel = wcs::telemetry;

namespace {

/// Resets the global tracer, then enables tracing with \p RingCapacity
/// (0 = keep the current default). Disables again on scope exit so no
/// suite leaks an enabled tracer into the next.
struct TracingGuard {
  explicit TracingGuard(size_t RingCapacity = 0) {
    tel::disableTracing();
    tel::enableTracing(RingCapacity);
  }
  ~TracingGuard() { tel::disableTracing(); }
};

/// The drained spans recorded by thread \p ThreadName, in snapshot
/// (= lane-chronological) order.
std::vector<tel::DrainedSpan> laneOf(const tel::TraceSnapshot &Snap,
                                     const std::string &ThreadName) {
  std::vector<tel::DrainedSpan> Out;
  for (const tel::DrainedSpan &D : Snap.Spans)
    if (D.ThreadName == ThreadName)
      Out.push_back(D);
  return Out;
}

const MetricsDoc::SpanAgg *spanAgg(const MetricsDoc &D,
                                   const std::string &Name) {
  for (const MetricsDoc::SpanAgg &A : D.Spans)
    if (A.Name == Name)
      return &A;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Span tracer
//===----------------------------------------------------------------------===//

TEST(Telemetry, NestedSpansDrainParentFirst) {
  TracingGuard Guard;
  std::thread T([] {
    tel::setThreadName("nest");
    tel::Span Outer("outer");
    Outer.arg("key", std::string("value"));
    Outer.arg("n", static_cast<uint64_t>(7));
    {
      tel::Span Inner("inner");
      tel::Span Leaf("leaf");
    }
    tel::Span Second("second");
  });
  T.join();

  tel::TraceSnapshot Snap = tel::drainTrace();
  std::vector<tel::DrainedSpan> Lane = laneOf(Snap, "nest");
  ASSERT_EQ(Lane.size(), 4u);

  // Spans COMPLETE leaf-first, but the snapshot sorts each lane by
  // (start, -duration), so a parent always precedes its children.
  EXPECT_EQ(Lane[0].Name, "outer");
  EXPECT_EQ(Lane[1].Name, "inner");
  EXPECT_EQ(Lane[2].Name, "leaf");
  EXPECT_EQ(Lane[3].Name, "second");

  // Nesting shows as interval containment in one shared time domain.
  const tel::DrainedSpan &Outer = Lane[0], &Inner = Lane[1],
                         &Leaf = Lane[2], &Second = Lane[3];
  EXPECT_LE(Outer.StartSeconds, Inner.StartSeconds);
  EXPECT_GE(Outer.StartSeconds + Outer.DurSeconds,
            Inner.StartSeconds + Inner.DurSeconds);
  EXPECT_LE(Inner.StartSeconds, Leaf.StartSeconds);
  EXPECT_GE(Outer.StartSeconds + Outer.DurSeconds,
            Second.StartSeconds + Second.DurSeconds);

  ASSERT_EQ(Outer.Args.size(), 2u);
  EXPECT_EQ(Outer.Args[0].first, "key");
  EXPECT_EQ(Outer.Args[0].second, "value");
  EXPECT_EQ(Outer.Args[1].first, "n");
  EXPECT_EQ(Outer.Args[1].second, "7");

  // All lanes drained and cleared: a second drain is empty.
  EXPECT_TRUE(tel::drainTrace().Spans.empty());
}

TEST(Telemetry, ExplicitEndIsIdempotent) {
  TracingGuard Guard;
  std::thread T([] {
    tel::setThreadName("end");
    tel::Span S("ended");
    S.end();
    S.end(); // Second end must not record a duplicate.
  });
  T.join();
  EXPECT_EQ(laneOf(tel::drainTrace(), "end").size(), 1u);
}

TEST(Telemetry, DisabledSpansRecordNothing) {
  tel::disableTracing();
  std::thread T([] {
    tel::Span S("invisible");
    S.arg("k", std::string("v"));
  });
  T.join();
  tel::TraceSnapshot Snap = tel::drainTrace();
  for (const tel::DrainedSpan &D : Snap.Spans)
    EXPECT_NE(D.Name, "invisible");
}

TEST(Telemetry, ThreadsMergeIntoDistinctLanes) {
  TracingGuard Guard;
  const unsigned NumThreads = 4, SpansPerThread = 3;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T] {
      tel::setThreadName("merge-" + std::to_string(T));
      for (unsigned I = 0; I < SpansPerThread; ++I)
        tel::Span S("merged");
    });
  for (std::thread &T : Threads)
    T.join();

  tel::TraceSnapshot Snap = tel::drainTrace();
  std::vector<unsigned> Tids;
  for (unsigned T = 0; T < NumThreads; ++T) {
    std::vector<tel::DrainedSpan> Lane =
        laneOf(Snap, "merge-" + std::to_string(T));
    ASSERT_EQ(Lane.size(), SpansPerThread) << "thread " << T;
    // One lane id per thread, chronological within the lane.
    for (const tel::DrainedSpan &D : Lane)
      EXPECT_EQ(D.Tid, Lane[0].Tid);
    for (size_t I = 1; I < Lane.size(); ++I)
      EXPECT_LE(Lane[I - 1].StartSeconds, Lane[I].StartSeconds);
    Tids.push_back(Lane[0].Tid);
  }
  for (size_t A = 0; A < Tids.size(); ++A)
    for (size_t B = A + 1; B < Tids.size(); ++B)
      EXPECT_NE(Tids[A], Tids[B]);
}

TEST(Telemetry, RingOverflowDropsOldest) {
  const size_t Capacity = 4;
  const uint64_t Pushed = 10;
  TracingGuard Guard(Capacity);
  std::thread T([&] {
    tel::setThreadName("ring");
    for (uint64_t I = 0; I < Pushed; ++I) {
      tel::Span S("ring-span");
      S.arg("i", I);
    }
  });
  T.join();

  tel::TraceSnapshot Snap = tel::drainTrace();
  std::vector<tel::DrainedSpan> Lane = laneOf(Snap, "ring");
  ASSERT_EQ(Lane.size(), Capacity);
  EXPECT_EQ(Snap.Dropped, Pushed - Capacity);
  // The survivors are exactly the NEWEST events, still in order.
  for (size_t I = 0; I < Capacity; ++I) {
    ASSERT_EQ(Lane[I].Args.size(), 1u);
    EXPECT_EQ(Lane[I].Args[0].second,
              std::to_string(Pushed - Capacity + I));
  }
}

TEST(Telemetry, ConcurrentDrainNeverTearsSpans) {
  const unsigned NumWriters = 4;
  const uint64_t SpansPerWriter = 2000;
  TracingGuard Guard(64); // Small ring: force overflow under load.

  std::atomic<bool> Done{false};
  std::vector<std::thread> Writers;
  for (unsigned W = 0; W < NumWriters; ++W)
    Writers.emplace_back([W] {
      tel::setThreadName("torn-writer-" + std::to_string(W));
      for (uint64_t I = 0; I < SpansPerWriter; ++I) {
        tel::Span S("torn-test");
        S.arg("payload", std::string("0123456789abcdef"));
      }
    });

  // Drain continuously while the writers hammer their rings. Every
  // drained event must come out whole: right name, right arg, sane
  // interval. This is the TSan-relevant path.
  uint64_t DrainedCount = 0;
  uint64_t FinalDropped = 0;
  auto Consume = [&](const tel::TraceSnapshot &Snap) {
    for (const tel::DrainedSpan &D : Snap.Spans) {
      if (D.Name != "torn-test")
        continue;
      ++DrainedCount;
      ASSERT_EQ(D.Args.size(), 1u);
      EXPECT_EQ(D.Args[0].first, "payload");
      EXPECT_EQ(D.Args[0].second, "0123456789abcdef");
      EXPECT_GE(D.DurSeconds, 0.0);
    }
    FinalDropped = Snap.Dropped;
  };
  std::thread Drainer([&] {
    while (!Done.load(std::memory_order_relaxed))
      Consume(tel::drainTrace());
  });
  for (std::thread &W : Writers)
    W.join();
  Done.store(true, std::memory_order_relaxed);
  Drainer.join();
  Consume(tel::drainTrace());

  // Nothing is lost silently: every span was either drained whole or
  // counted as dropped by ring overflow.
  EXPECT_EQ(DrainedCount + FinalDropped, NumWriters * SpansPerWriter);
}

TEST(Telemetry, TraceJsonCarriesLanesAndEvents) {
  TracingGuard Guard;
  std::thread T([] {
    tel::setThreadName("json-lane");
    tel::Span S("json-span");
    S.arg("k", std::string("v"));
  });
  T.join();

  json::Value V = tel::traceToJson(tel::drainTrace());
  std::string Dump = V.dump(true); // What writeTraceFile writes.
  // Perfetto essentials: the traceEvents array, a thread_name
  // metadata record for the lane, and the "X" complete event.
  EXPECT_NE(Dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Dump.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Dump.find("\"json-lane\""), std::string::npos);
  EXPECT_NE(Dump.find("\"json-span\""), std::string::npos);
  EXPECT_NE(Dump.find("\"ph\": \"X\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Telemetry, HistogramBucketBoundaries) {
  tel::Histogram H({1.0, 2.0, 4.0});
  // A value exactly on a boundary belongs to THAT boundary's bucket.
  H.observe(0.5); // bucket 0 (<= 1)
  H.observe(1.0); // bucket 0: exactly on the first bound
  H.observe(1.5); // bucket 1 (<= 2)
  H.observe(2.0); // bucket 1: exactly on the second bound
  H.observe(4.0); // bucket 2: exactly on the last bound
  H.observe(4.5); // overflow
  H.observe(1e9); // overflow
  EXPECT_EQ(H.bucketCounts(), (std::vector<uint64_t>{2, 2, 1, 2}));
  EXPECT_EQ(H.count(), 7u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.5 + 1e9);
}

TEST(Telemetry, DefaultLatencyBoundsAreAscendingDecades) {
  const std::vector<double> &B = tel::defaultLatencyBounds();
  ASSERT_GE(B.size(), 2u);
  for (size_t I = 1; I < B.size(); ++I)
    EXPECT_LT(B[I - 1], B[I]);
  EXPECT_DOUBLE_EQ(B.front(), 1e-4);
  EXPECT_DOUBLE_EQ(B.back(), 100.0);
}

//===----------------------------------------------------------------------===//
// The wcs-metrics document
//===----------------------------------------------------------------------===//

TEST(Telemetry, MetricsDocRoundTripsThroughJson) {
  MetricsDoc D;
  D.Tool = "wcs-serve";
  D.Counters.emplace_back("serve.requests", 42);
  D.Counters.emplace_back("serve.store_hits", 7);
  D.Gauges.emplace_back("store.entries", 12.0);
  MetricsDoc::Hist H;
  H.Name = "serve.request_seconds";
  H.Bounds = {0.001, 0.01, 0.1};
  H.Counts = {3, 2, 1, 0};
  H.Count = 6;
  H.Sum = 0.125;
  D.Histograms.push_back(H);
  D.Spans.push_back({"serve.request", 42, 1.25});

  std::string Err;
  json::Value V;
  ASSERT_TRUE(json::parse(toJson(D).dump(true), V, &Err)) << Err;
  MetricsDoc Back;
  ASSERT_TRUE(fromJson(V, Back, &Err)) << Err;

  EXPECT_EQ(Back.Tool, D.Tool);
  EXPECT_EQ(Back.Counters, D.Counters);
  EXPECT_EQ(Back.Gauges, D.Gauges);
  ASSERT_EQ(Back.Histograms.size(), 1u);
  EXPECT_EQ(Back.Histograms[0].Name, H.Name);
  EXPECT_EQ(Back.Histograms[0].Bounds, H.Bounds);
  EXPECT_EQ(Back.Histograms[0].Counts, H.Counts);
  EXPECT_EQ(Back.Histograms[0].Count, H.Count);
  EXPECT_DOUBLE_EQ(Back.Histograms[0].Sum, H.Sum);
  ASSERT_EQ(Back.Spans.size(), 1u);
  EXPECT_EQ(Back.Spans[0].Name, "serve.request");
  EXPECT_EQ(Back.Spans[0].Count, 42u);
  EXPECT_DOUBLE_EQ(Back.Spans[0].TotalSeconds, 1.25);

  // The lookup helpers the report renderer leans on.
  EXPECT_EQ(Back.counter("serve.requests"), 42u);
  EXPECT_EQ(Back.counter("no.such.counter"), 0u);
  ASSERT_NE(Back.histogram("serve.request_seconds"), nullptr);
  EXPECT_EQ(Back.histogram("no.such.histogram"), nullptr);
}

TEST(Telemetry, MetricsDocRejectsMalformedHistogram) {
  MetricsDoc D;
  D.Tool = "t";
  MetricsDoc::Hist H;
  H.Name = "bad";
  H.Bounds = {1.0, 2.0};
  H.Counts = {1, 2}; // Needs Bounds.size()+1 entries.
  D.Histograms.push_back(H);
  std::string Err;
  MetricsDoc Back;
  EXPECT_FALSE(fromJson(toJson(D), Back, &Err));
  EXPECT_NE(Err.find("one count per bucket"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

// The registry is process-global, so these assert snapshot DELTAS.

TEST(Telemetry, RegistrySnapshotReflectsDeltas) {
  tel::Registry &Reg = tel::registry();
  MetricsDoc Before = Reg.snapshot("test");

  Reg.counter("test.telemetry.counter").add(3);
  Reg.gauge("test.telemetry.gauge").set(2.5);
  Reg.histogram("test.telemetry.hist", {1.0}).observe(0.5);
  Reg.recordSpan("test.telemetry.span", 0.25);
  Reg.recordSpan("test.telemetry.span", 0.75);

  MetricsDoc After = Reg.snapshot("test");
  EXPECT_EQ(After.Tool, "test");
  EXPECT_EQ(After.counter("test.telemetry.counter") -
                Before.counter("test.telemetry.counter"),
            3u);
  const MetricsDoc::Hist *H = After.histogram("test.telemetry.hist");
  const MetricsDoc::Hist *HB = Before.histogram("test.telemetry.hist");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Count - (HB ? HB->Count : 0), 1u);

  const MetricsDoc::SpanAgg *A = spanAgg(After, "test.telemetry.span");
  const MetricsDoc::SpanAgg *AB = spanAgg(Before, "test.telemetry.span");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Count - (AB ? AB->Count : 0), 2u);
  EXPECT_DOUBLE_EQ(A->TotalSeconds - (AB ? AB->TotalSeconds : 0.0), 1.0);

  // Snapshot sections come out name-sorted -- the determinism the
  // document comment promises.
  for (size_t I = 1; I < After.Counters.size(); ++I)
    EXPECT_LT(After.Counters[I - 1].first, After.Counters[I].first);
  for (size_t I = 1; I < After.Spans.size(); ++I)
    EXPECT_LT(After.Spans[I - 1].Name, After.Spans[I].Name);
}

TEST(Telemetry, SpanAggregationWorksWithoutRings) {
  tel::disableTracing();
  tel::enableSpanAggregation();
  MetricsDoc Before = tel::registry().snapshot("test");
  const MetricsDoc::SpanAgg *AggBefore =
      spanAgg(Before, "agg-only-span");
  std::thread T([] { tel::Span S("agg-only-span"); });
  T.join();
  tel::TraceSnapshot Snap = tel::drainTrace();
  for (const tel::DrainedSpan &D : Snap.Spans)
    EXPECT_NE(D.Name, "agg-only-span"); // No ring fills without bit 0.
  MetricsDoc After = tel::registry().snapshot("test");
  const MetricsDoc::SpanAgg *AggAfter = spanAgg(After, "agg-only-span");
  ASSERT_NE(AggAfter, nullptr);
  EXPECT_EQ(AggAfter->Count - (AggBefore ? AggBefore->Count : 0), 1u);
  tel::disableTracing();
}

} // namespace
