//===- scop/Builder.cpp ---------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/scop/Builder.h"

#include <cassert>

using namespace wcs;

ScopBuilder::ScopBuilder(std::string Name) { P.Name = std::move(Name); }

unsigned ScopBuilder::addArray(std::string Name, unsigned ElemBytes,
                               std::vector<int64_t> DimSizes) {
  ArrayInfo A;
  A.Name = std::move(Name);
  A.ElemBytes = ElemBytes;
  A.DimSizes = std::move(DimSizes);
  P.mutableArrays().push_back(std::move(A));
  return static_cast<unsigned>(P.mutableArrays().size() - 1);
}

unsigned ScopBuilder::addScalar(std::string Name, unsigned ElemBytes) {
  return addArray(std::move(Name), ElemBytes, {});
}

AffineExpr ScopBuilder::iter(const std::string &Name) const {
  for (unsigned I = 0; I < IterNames.size(); ++I)
    if (IterNames[I] == Name)
      return AffineExpr::dim(depth(), I);
  assert(false && "unknown iterator name");
  return AffineExpr(depth());
}

AffineExpr ScopBuilder::iterAt(unsigned Level) const {
  assert(Level < depth() && "iterator level out of range");
  return AffineExpr::dim(depth(), Level);
}

AffineExpr ScopBuilder::cst(int64_t C) const {
  return AffineExpr::constant(depth(), C);
}

void ScopBuilder::beginLoop(std::string Name, AffineExpr Lo, AffineExpr Hi) {
  unsigned D = depth();
  auto L = std::make_unique<LoopNode>();
  L->IterName = Name;
  L->Depth = D;

  ConvexSet Dom = CurDomain.extendedTo(D + 1);
  AffineExpr X = AffineExpr::dim(D + 1, D);
  Dom.addConstraint(Constraint::ge(X - Lo.extendedTo(D + 1)));
  Dom.addConstraint(Constraint::ge(Hi.extendedTo(D + 1) - X));
  L->Domain = IntegerSet(Dom);

  LoopNode *Raw = L.get();
  appendNode(std::move(L));
  OpenLoops.push_back(Raw);
  IterNames.push_back(std::move(Name));
  DomainStack.push_back(std::move(CurDomain));
  CurDomain = std::move(Dom);
}

void ScopBuilder::addLoopConstraint(Constraint C) {
  assert(!OpenLoops.empty() && "no open loop");
  Constraint Ext(C.Expr.extendedTo(depth()), C.K);
  CurDomain.addConstraint(Ext);
  LoopNode *L = OpenLoops.back();
  IntegerSet NewDom(CurDomain);
  L->Domain = std::move(NewDom);
}

void ScopBuilder::endLoop() {
  assert(!OpenLoops.empty() && "endLoop without beginLoop");
  assert(OpenGuards == 0 && "guard still open at endLoop");
  OpenLoops.pop_back();
  IterNames.pop_back();
  CurDomain = std::move(DomainStack.back());
  DomainStack.pop_back();
}

void ScopBuilder::beginGuard(Constraint C) {
  DomainStack.push_back(CurDomain);
  Constraint Ext(C.Expr.extendedTo(depth()), C.K);
  CurDomain.addConstraint(std::move(Ext));
  ++OpenGuards;
}

void ScopBuilder::endGuard() {
  assert(OpenGuards > 0 && "endGuard without beginGuard");
  --OpenGuards;
  CurDomain = std::move(DomainStack.back());
  DomainStack.pop_back();
}

void ScopBuilder::access(unsigned ArrayId, AccessKind K,
                         std::vector<AffineExpr> Subscripts) {
  assert(ArrayId < P.mutableArrays().size() && "unknown array");
  auto A = std::make_unique<AccessNode>();
  A->ArrayId = ArrayId;
  A->AKind = K;
  A->Depth = depth();
  A->Subscripts = std::move(Subscripts);
  A->Domain = IntegerSet(CurDomain);
  A->Guarded = OpenGuards > 0;
  appendNode(std::move(A));
}

void ScopBuilder::appendNode(std::unique_ptr<Node> N) {
  if (OpenLoops.empty())
    P.mutableRoots().push_back(std::move(N));
  else
    OpenLoops.back()->Children.push_back(std::move(N));
}

ScopProgram ScopBuilder::finish(std::string *Error, int64_t AlignBytes) {
  assert(OpenLoops.empty() && "finish with open loops");
  assert(OpenGuards == 0 && "finish with open guards");
  assignLayout(P, AlignBytes);
  std::string E = P.finalize();
  if (Error)
    *Error = E;
  return std::move(P);
}
