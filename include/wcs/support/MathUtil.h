//===- wcs/support/MathUtil.h - Checked integer arithmetic ------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small exact integer helpers used throughout the polyhedral substrate.
/// All routines operate on int64_t with __int128 intermediates so that
/// overflow can be detected instead of silently wrapping.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_MATHUTIL_H
#define WCS_SUPPORT_MATHUTIL_H

#include <cassert>
#include <cstdint>
#include <optional>

namespace wcs {

/// Floor division (rounds toward negative infinity), defined for Den != 0.
inline int64_t floorDiv(int64_t Num, int64_t Den) {
  assert(Den != 0 && "floorDiv by zero");
  int64_t Q = Num / Den;
  int64_t R = Num % Den;
  if (R != 0 && ((R < 0) != (Den < 0)))
    --Q;
  return Q;
}

/// Ceiling division (rounds toward positive infinity), defined for Den != 0.
inline int64_t ceilDiv(int64_t Num, int64_t Den) {
  assert(Den != 0 && "ceilDiv by zero");
  int64_t Q = Num / Den;
  int64_t R = Num % Den;
  if (R != 0 && ((R < 0) == (Den < 0)))
    ++Q;
  return Q;
}

/// Mathematical modulus: result is always in [0, |Den|).
inline int64_t floorMod(int64_t Num, int64_t Den) {
  return Num - floorDiv(Num, Den) * Den;
}

/// Greatest common divisor of |A| and |B|; gcd(0, 0) == 0.
inline int64_t gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Returns A * B, or std::nullopt if the product does not fit in int64_t.
inline std::optional<int64_t> checkedMul(int64_t A, int64_t B) {
  __int128 P = static_cast<__int128>(A) * B;
  if (P > INT64_MAX || P < INT64_MIN)
    return std::nullopt;
  return static_cast<int64_t>(P);
}

/// Returns A + B, or std::nullopt on overflow.
inline std::optional<int64_t> checkedAdd(int64_t A, int64_t B) {
  __int128 S = static_cast<__int128>(A) + B;
  if (S > INT64_MAX || S < INT64_MIN)
    return std::nullopt;
  return static_cast<int64_t>(S);
}

/// True if V is a power of two (V > 0).
inline bool isPowerOf2(uint64_t V) { return V != 0 && (V & (V - 1)) == 0; }

/// log2 of a power of two.
inline unsigned log2Exact(uint64_t V) {
  assert(isPowerOf2(V) && "log2Exact of non-power-of-two");
  unsigned L = 0;
  while ((V >>= 1) != 0)
    ++L;
  return L;
}

} // namespace wcs

#endif // WCS_SUPPORT_MATHUTIL_H
