//===- cache/Policy.cpp ---------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/Policy.h"

#include <cassert>

using namespace wcs;

unsigned QlruOps::victimAging(uint8_t *Ages, unsigned Assoc) {
  for (;;) {
    for (unsigned W = 0; W < Assoc; ++W)
      if (Ages[W] >= EvictAge)
        return W;
    for (unsigned W = 0; W < Assoc; ++W)
      ++Ages[W];
  }
}
