//===- src/serve/Scheduler.cpp - Cross-request job scheduler --------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Scheduler.h"

#include <algorithm>
#include <chrono>

using namespace wcs;

namespace {

ProgressEvent makeEvent(uint64_t Serial, size_t Total, size_t I,
                        const SweepPoint &P) {
  ProgressEvent E;
  E.Request = Serial;
  E.Point = I;
  E.Total = Total;
  E.Cache = P.Cache.str();
  E.Method = P.Method;
  E.Ok = P.Ok;
  return E;
}

} // namespace

Scheduler::Scheduler(ResultStore &Store, unsigned Threads)
    : Store(Store), Runner(Threads) {
  PoolThreads = Runner.threads();
  Runner.startPool(
      [this](std::function<void()> &Task) { return nextJob(Task); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
  }
  WorkCv.notify_all();
  Runner.stopPool();
}

bool Scheduler::nextJob(std::function<void()> &Task) {
  Job J;
  double QueueWait = 0.0;
  {
    std::unique_lock<std::mutex> L(Mu);
    WorkCv.wait(L, [this] { return Stopping || !RoundRobin.empty(); });
    if (RoundRobin.empty())
      return false; // Stopping, nothing queued: retire the worker.
    // Fairness: take ONE job from the front request, then rotate it to
    // the back, so K active requests each get every K-th job slot no
    // matter how many jobs any one of them brought.
    RequestState *RS = RoundRobin.front();
    RoundRobin.pop_front();
    J = std::move(RS->Queue.front());
    RS->Queue.pop_front();
    if (!RS->Queue.empty())
      RoundRobin.push_back(RS);
    QueueWait = telemetry::secondsSince(J.Enqueued);
    RS->QueueWaitSeconds += QueueWait;
  }
  telemetry::registry().counter("scheduler.jobs_dequeued").add();
  telemetry::registry()
      .histogram("scheduler.queue_wait_seconds",
                 telemetry::defaultLatencyBounds())
      .observe(QueueWait);
  Task = [this, J = std::move(J)]() mutable { runJob(J); };
  return true;
}

void Scheduler::runJob(Job &J) {
  RequestState *RS = J.Owner;
  if (Observer)
    Observer(RS->Serial, J.Configs.size());

  telemetry::Span JobSpan("scheduler.job");
  JobSpan.arg("request", RS->Serial);
  JobSpan.arg("points", static_cast<uint64_t>(J.Configs.size()));
  telemetry::TimePoint C0 = telemetry::now();

  // The sub-sweep itself runs unlocked and single-threaded: the
  // scheduler's parallelism is across jobs, so one worker owns one
  // group end to end. Same honesty rule as runSweep's internal tasks: a
  // throwing sub-sweep becomes per-point failures, never a dead worker.
  SweepReport Rep;
  bool Threw = false;
  std::string ThrowErr;
  try {
    Rep = runSweep(*RS->Program, J.Configs, RS->SO);
  } catch (const std::exception &E) {
    Threw = true;
    ThrowErr = E.what();
  } catch (...) {
    Threw = true;
    ThrowErr = "unknown exception";
  }
  if (Threw) {
    Rep = SweepReport();
    Rep.Points.resize(J.Configs.size());
    for (size_t G = 0; G < J.Configs.size(); ++G) {
      Rep.Points[G].Cache = J.Configs[G];
      Rep.Points[G].Backend = RS->SO.Backend;
      Rep.Points[G].Error = ThrowErr;
    }
  }

  double Compute = telemetry::secondsSince(C0);
  telemetry::registry()
      .counter("scheduler.points_computed")
      .add(J.PointIdx.size());

  telemetry::Span PublishSpan("scheduler.publish");
  PublishSpan.arg("points", static_cast<uint64_t>(J.PointIdx.size()));
  std::lock_guard<std::mutex> L(Mu);
  RS->ComputeSeconds += Compute;
  mergeSweepReports(RS->Merged, Rep);
  for (size_t G = 0; G < J.PointIdx.size(); ++G) {
    size_t I = J.PointIdx[G];
    const SweepPoint &P = Rep.Points[G];
    // THE single writer: every insert in the process happens here,
    // under Mu, no matter which request raced the key in.
    if (P.Ok)
      Store.insert(RS->Keys[I], P, nullptr);
    ++Counters.PointsComputed;
    RS->Points[I] = P;
    RS->Ready.push_back(makeEvent(RS->Serial, RS->Total, I, P));
    // Hand the result to every subscriber, then retire the in-flight
    // entry -- later requests hit the store instead.
    auto It = InFlight.find(RS->Keys[I]);
    if (It != InFlight.end()) {
      for (const auto &[SubRS, SubI] : It->second->Subscribers) {
        SweepPoint SP = P;
        if (SP.Ok)
          SP.Method = SweepMethod::Store; // It is in the store now;
                                          // failed points are not, and
                                          // keep their honest method.
        SubRS->Points[SubI] = std::move(SP);
        --SubRS->PendingSubscriptions;
        SubRS->Ready.push_back(
            makeEvent(SubRS->Serial, SubRS->Total, SubI,
                      SubRS->Points[SubI]));
        SubRS->Cv.notify_all();
      }
      InFlight.erase(It);
    }
  }
  --RS->JobsOutstanding;
  RS->Cv.notify_all();
}

void Scheduler::cancelLocked(RequestState &RS) {
  RS.Cancelled = true;
  // Withdraw subscriptions first -- both from other requests' points
  // (their owners keep going; the result still lands in the store) and
  // from this grid's own duplicate points, so a self-subscription
  // cannot keep a doomed job below alive.
  for (const std::string &K : RS.SubscribedKeys) {
    auto It = InFlight.find(K);
    if (It == InFlight.end())
      continue;
    auto &Subs = It->second->Subscribers;
    Subs.erase(std::remove_if(Subs.begin(), Subs.end(),
                              [&RS](const auto &S) {
                                return S.first == &RS;
                              }),
               Subs.end());
  }
  RS.PendingSubscriptions = 0;
  RS.SubscribedKeys.clear();
  // Drop queued jobs nobody else wants; keep any job with at least one
  // subscriber (it computes points another live request is waiting for
  // -- the drop rule is per job, not per point, so a partially-shared
  // job simply runs whole).
  std::deque<Job> Keep;
  for (Job &J : RS.Queue) {
    bool Wanted = false;
    for (size_t I : J.PointIdx) {
      auto It = InFlight.find(RS.Keys[I]);
      if (It != InFlight.end() && !It->second->Subscribers.empty()) {
        Wanted = true;
        break;
      }
    }
    if (Wanted) {
      Keep.push_back(std::move(J));
      continue;
    }
    for (size_t G = 0; G < J.PointIdx.size(); ++G) {
      size_t I = J.PointIdx[G];
      InFlight.erase(RS.Keys[I]);
      RS.Points[I].Cache = J.Configs[G];
      RS.Points[I].Error = "cancelled: client disconnected";
    }
    ++Counters.CancelledJobs;
    telemetry::registry().counter("scheduler.jobs_cancelled").add();
    --RS.JobsOutstanding;
  }
  RS.Queue.swap(Keep);
  if (RS.Queue.empty())
    RoundRobin.erase(
        std::remove(RoundRobin.begin(), RoundRobin.end(), &RS),
        RoundRobin.end());
}

SweepResponse Scheduler::serve(
    const SweepRequest &Req,
    const std::function<bool(const ProgressEvent &)> &OnProgress,
    const std::function<bool()> &IsCancelled, RequestTelemetry *Tel) {
  telemetry::Span ReqSpan("serve.request");
  telemetry::TimePoint W0 = telemetry::now();
  SweepResponse Resp;
  Resp.RequestHash = requestHash(Req);
  ReqSpan.arg("hash", Resp.RequestHash);
  telemetry::registry().counter("serve.requests").add();

  PreparedSweep Prep;
  std::string Err;
  {
    telemetry::Span ExpandSpan("serve.expand");
    if (!prepareSweep(Req, Prep, &Err)) {
      Resp.Error = Err;
      std::lock_guard<std::mutex> L(Mu);
      ++Counters.RequestsServed;
      Resp.StoreEntries = Store.numEntries();
      if (Tel)
        Tel->WallSeconds = telemetry::secondsSince(W0);
      return Resp;
    }
    ExpandSpan.arg("points", static_cast<uint64_t>(Prep.Configs.size()));
  }

  RequestState RS;
  RS.Program = &Prep.Program;
  RS.SO = Req.Options;
  RS.SO.Threads = 1; // One worker owns one job; parallelism is across jobs.
  RS.Total = Prep.Configs.size();
  RS.Points.resize(RS.Total);
  RS.Keys.resize(RS.Total);

  std::vector<ProgressEvent> HitEvents;
  {
    telemetry::Span AdmitSpan("serve.admission");
    std::lock_guard<std::mutex> L(Mu);
    RS.Serial = ++LastSerial;
    ++NumActive;
    std::vector<size_t> Owned;
    for (size_t I = 0; I < RS.Total; ++I) {
      RS.Keys[I] = sweepPointKey(Req, Prep.Configs[I]);
      SweepPoint Hit;
      if (Store.lookup(RS.Keys[I], Hit)) {
        Hit.Method = SweepMethod::Store;
        RS.Points[I] = std::move(Hit);
        ++Resp.StoreHits;
        HitEvents.push_back(
            makeEvent(RS.Serial, RS.Total, I, RS.Points[I]));
        continue;
      }
      auto It = InFlight.find(RS.Keys[I]);
      if (It != InFlight.end()) {
        // Someone -- another request, or an earlier duplicate point of
        // this very grid -- is already computing this key: subscribe.
        It->second->Subscribers.emplace_back(&RS, I);
        ++RS.PendingSubscriptions;
        RS.SubscribedKeys.push_back(RS.Keys[I]);
        ++Resp.InFlightHits;
        continue;
      }
      InFlight.emplace(RS.Keys[I], std::make_unique<PointState>());
      Owned.push_back(I);
    }
    Resp.StoreMisses = Owned.size();
    if (!Owned.empty()) {
      std::vector<HierarchyConfig> OwnedCfgs;
      OwnedCfgs.reserve(Owned.size());
      for (size_t I : Owned)
        OwnedCfgs.push_back(Prep.Configs[I]);
      telemetry::TimePoint Enq = telemetry::now();
      for (const std::vector<size_t> &G :
           partitionSweepGroups(OwnedCfgs)) {
        Job J;
        J.Owner = &RS;
        J.PointIdx.reserve(G.size());
        J.Configs.reserve(G.size());
        for (size_t K : G) {
          J.PointIdx.push_back(Owned[K]);
          J.Configs.push_back(OwnedCfgs[K]);
        }
        J.Enqueued = Enq;
        RS.Queue.push_back(std::move(J));
      }
      RS.JobsOutstanding = RS.Queue.size();
      RoundRobin.push_back(&RS);
      telemetry::registry()
          .counter("scheduler.jobs_enqueued")
          .add(RS.Queue.size());
    }
    RS.Merged.Threads = PoolThreads;
    AdmitSpan.arg("store_hits", Resp.StoreHits);
    AdmitSpan.arg("inflight_hits", Resp.InFlightHits);
    AdmitSpan.arg("jobs", static_cast<uint64_t>(RS.Queue.size()));
    if (Resp.InFlightHits != 0)
      telemetry::registry()
          .counter("scheduler.inflight_subscriptions")
          .add(Resp.InFlightHits);
  }
  WorkCv.notify_all();

  // Progress always fires on this (the connection's) thread, outside
  // the lock: a slow or dead socket stalls this request only.
  bool Alive = true;
  auto Fire = [&](const ProgressEvent &E) {
    if (OnProgress && !OnProgress(E))
      return false;
    return !(IsCancelled && IsCancelled());
  };
  if (IsCancelled && IsCancelled())
    Alive = false;
  if (!HitEvents.empty()) {
    telemetry::Span DeliverSpan("serve.deliver");
    DeliverSpan.arg("events", static_cast<uint64_t>(HitEvents.size()));
    for (const ProgressEvent &E : HitEvents) {
      if (!Alive)
        break;
      Alive = Fire(E);
    }
  }

  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    if (!Alive && !RS.Cancelled)
      cancelLocked(RS);
    if (!RS.Ready.empty()) {
      std::vector<ProgressEvent> Batch;
      Batch.swap(RS.Ready);
      if (Alive) {
        L.unlock();
        {
          telemetry::Span DeliverSpan("serve.deliver");
          DeliverSpan.arg("events", static_cast<uint64_t>(Batch.size()));
          for (const ProgressEvent &E : Batch) {
            if (!Alive)
              break;
            Alive = Fire(E);
          }
        }
        L.lock();
      }
      continue;
    }
    if (RS.JobsOutstanding == 0 && RS.PendingSubscriptions == 0)
      break;
    // Wake on results; time-bounded so IsCancelled is polled even when
    // nothing completes (a silent disconnect must still cancel).
    bool TimedOut = RS.Cv.wait_for(L, std::chrono::milliseconds(20)) ==
                    std::cv_status::timeout;
    if (TimedOut && Alive && IsCancelled) {
      L.unlock();
      bool Gone = IsCancelled();
      L.lock();
      if (Gone)
        Alive = false;
    }
  }

  ++Counters.RequestsServed;
  Counters.StoreHits += Resp.StoreHits;
  Counters.InFlightHits += Resp.InFlightHits;
  --NumActive;
  Resp.StoreEntries = Store.numEntries();

  telemetry::Registry &Reg = telemetry::registry();
  Reg.counter("serve.store_hits").add(Resp.StoreHits);
  Reg.counter("serve.store_misses").add(Resp.StoreMisses);
  Reg.counter("serve.inflight_hits").add(Resp.InFlightHits);
  Reg.gauge("store.entries").set(static_cast<double>(Resp.StoreEntries));
  double Wall = telemetry::secondsSince(W0);
  Reg.histogram("serve.request_seconds", telemetry::defaultLatencyBounds())
      .observe(Wall);
  if (Tel) {
    Tel->QueueWaitSeconds = RS.QueueWaitSeconds;
    Tel->ComputeSeconds = RS.ComputeSeconds;
    Tel->WallSeconds = Wall;
  }

  if (!Alive) {
    Resp.Error = "cancelled: client disconnected";
    return Resp;
  }
  SweepReport Merged = std::move(RS.Merged);
  Merged.Points = std::move(RS.Points);
  L.unlock();
  Resp.Ok = true;
  Resp.Sweep = makeSweepDoc("wcs-serve", Req.programLabel(),
                            Req.sizeLabel(), Merged);
  return Resp;
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  Stats S = Counters;
  S.ActiveRequests = NumActive;
  S.QueuedJobs = 0;
  for (const RequestState *RS : RoundRobin)
    S.QueuedJobs += RS->Queue.size();
  S.StoreEntries = Store.numEntries();
  return S;
}
