//===- scop/Access.cpp ----------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/scop/Program.h"

#include <cassert>

using namespace wcs;

int64_t ArrayInfo::byteSize() const {
  int64_t N = 1;
  for (int64_t D : DimSizes)
    N *= D;
  return N * ElemBytes;
}

int64_t ArrayInfo::elemStride(unsigned Dim) const {
  assert(Dim < DimSizes.size() && "dimension out of range");
  int64_t S = 1;
  for (unsigned I = Dim + 1; I < DimSizes.size(); ++I)
    S *= DimSizes[I];
  return S;
}
