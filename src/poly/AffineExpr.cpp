//===- poly/AffineExpr.cpp ------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/poly/AffineExpr.h"

#include <cassert>
#include <sstream>

using namespace wcs;

AffineExpr AffineExpr::constant(unsigned NumDims, int64_t C) {
  AffineExpr E(NumDims);
  E.Const = C;
  return E;
}

AffineExpr AffineExpr::dim(unsigned NumDims, unsigned Dim) {
  assert(Dim < NumDims && "dimension out of range");
  AffineExpr E(NumDims);
  E.Coeffs[Dim] = 1;
  return E;
}

bool AffineExpr::isConstant() const {
  for (int64_t C : Coeffs)
    if (C != 0)
      return false;
  return true;
}

bool AffineExpr::sameLinearPart(const AffineExpr &Other) const {
  unsigned N = std::max(numDims(), Other.numDims());
  for (unsigned I = 0; I < N; ++I) {
    int64_t A = I < numDims() ? Coeffs[I] : 0;
    int64_t B = I < Other.numDims() ? Other.Coeffs[I] : 0;
    if (A != B)
      return false;
  }
  return true;
}

int64_t AffineExpr::eval(const IterVec &At) const {
  assert(At.size() >= numDims() && "iteration point too shallow");
  int64_t R = Const;
  for (unsigned I = 0, N = numDims(); I < N; ++I)
    R += Coeffs[I] * At[I];
  return R;
}

AffineExpr AffineExpr::extendedTo(unsigned NumDims) const {
  assert(NumDims >= numDims() && "cannot shrink an affine expression");
  AffineExpr E(NumDims);
  for (unsigned I = 0, N = numDims(); I < N; ++I)
    E.Coeffs[I] = Coeffs[I];
  E.Const = Const;
  return E;
}

AffineExpr AffineExpr::operator+(const AffineExpr &O) const {
  AffineExpr R = *this;
  R += O;
  return R;
}

AffineExpr &AffineExpr::operator+=(const AffineExpr &O) {
  if (O.numDims() > numDims())
    Coeffs.resize(O.numDims(), 0);
  for (unsigned I = 0, N = O.numDims(); I < N; ++I)
    Coeffs[I] += O.Coeffs[I];
  Const += O.Const;
  return *this;
}

AffineExpr AffineExpr::operator-(const AffineExpr &O) const {
  return *this + (-O);
}

AffineExpr AffineExpr::operator-() const { return *this * -1; }

AffineExpr AffineExpr::operator*(int64_t S) const {
  AffineExpr R = *this;
  for (int64_t &C : R.Coeffs)
    C *= S;
  R.Const *= S;
  return R;
}

std::string AffineExpr::str(const std::vector<std::string> &DimNames) const {
  std::ostringstream OS;
  bool First = true;
  for (unsigned I = 0, N = numDims(); I < N; ++I) {
    if (Coeffs[I] == 0)
      continue;
    std::string Name;
    if (I < DimNames.size()) {
      Name = DimNames[I];
    } else {
      Name = "i";
      Name += std::to_string(I);
    }
    if (First) {
      if (Coeffs[I] == -1)
        OS << "-";
      else if (Coeffs[I] != 1)
        OS << Coeffs[I] << "*";
    } else {
      OS << (Coeffs[I] < 0 ? " - " : " + ");
      int64_t A = Coeffs[I] < 0 ? -Coeffs[I] : Coeffs[I];
      if (A != 1)
        OS << A << "*";
    }
    OS << Name;
    First = false;
  }
  if (First) {
    OS << Const;
  } else if (Const != 0) {
    OS << (Const < 0 ? " - " : " + ") << (Const < 0 ? -Const : Const);
  }
  return OS.str();
}
