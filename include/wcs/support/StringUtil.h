//===- wcs/support/StringUtil.h - Small string helpers ----------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the case-insensitive enum-name parsers
/// (policy/inclusion/backend/problem-size spellings on the command line
/// and in results files).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_STRINGUTIL_H
#define WCS_SUPPORT_STRINGUTIL_H

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>

namespace wcs {

/// ASCII-lowercases a copy of \p S (locale-independent).
inline std::string toLowerAscii(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}

/// Strictly parses an unsigned decimal: digits only (no sign, spaces or
/// suffixes), the whole token, value at most \p Max. Returns false on
/// malformed or overflowing input, leaving \p Out untouched — never
/// throws, unlike std::stoull. The one parser behind every numeric
/// command-line field.
inline bool parseUInt64(std::string_view Text, uint64_t &Out,
                        uint64_t Max = UINT64_MAX) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    // V*10 + Digit <= Max, tested without overflow or underflow (the
    // naive (Max - Digit) form wraps when Digit > Max).
    if (V > Max / 10 || (V == Max / 10 && Digit > Max % 10))
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

/// Parses a byte count with an optional binary-unit suffix: "4096",
/// "8K"/"8k" (KiB), "2M" (MiB), "1G" (GiB). Same strictness as
/// parseUInt64 (whole token, no sign or spaces), overflow-checked
/// against \p Max. The parser behind cache-capacity fields of the sweep
/// grid syntax.
inline bool parseByteSize(std::string_view Text, uint64_t &Out,
                          uint64_t Max = UINT64_MAX) {
  uint64_t Shift = 0;
  if (!Text.empty()) {
    switch (Text.back()) {
    case 'K':
    case 'k':
      Shift = 10;
      break;
    case 'M':
    case 'm':
      Shift = 20;
      break;
    case 'G':
    case 'g':
      Shift = 30;
      break;
    default:
      break;
    }
    if (Shift != 0)
      Text.remove_suffix(1);
  }
  uint64_t V;
  if (!parseUInt64(Text, V, Max >> Shift))
    return false;
  Out = V << Shift;
  return true;
}

/// Signed companion of parseUInt64: an optional leading '-' followed by
/// digits, anywhere in [INT64_MIN, INT64_MAX]. Same strictness, never
/// throws.
inline bool parseInt64(std::string_view Text, int64_t &Out) {
  bool Negative = !Text.empty() && Text.front() == '-';
  uint64_t Mag;
  if (!parseUInt64(Negative ? Text.substr(1) : Text, Mag,
                   Negative ? static_cast<uint64_t>(1) << 63
                            : static_cast<uint64_t>(INT64_MAX)))
    return false;
  Out = Negative ? -static_cast<int64_t>(Mag - 1) - 1
                 : static_cast<int64_t>(Mag);
  return true;
}

/// Parses a command-line parameter binding "NAME=VALUE" with a strict
/// integer value (the --param flag of wcs-sim and wcs-trace). Returns
/// false when '=' is missing or the value fails parseInt64.
inline bool parseParamBinding(std::string_view Arg, std::string &Name,
                              int64_t &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string_view::npos || !parseInt64(Arg.substr(Eq + 1), Value))
    return false;
  Name.assign(Arg.substr(0, Eq));
  return true;
}

} // namespace wcs

#endif // WCS_SUPPORT_STRINGUTIL_H
