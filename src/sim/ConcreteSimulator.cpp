//===- sim/ConcreteSimulator.cpp ------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/sim/ConcreteSimulator.h"

#include "wcs/support/MathUtil.h"

#include <cassert>
#include <chrono>
#include <sstream>

using namespace wcs;

std::string SimStats::str() const {
  std::ostringstream OS;
  OS << "accesses=" << totalAccesses();
  for (unsigned L = 0; L < NumLevels; ++L)
    OS << " L" << L + 1 << "-misses=" << Level[L].Misses;
  OS << " simulated=" << SimulatedAccesses << " warped=" << WarpedAccesses
     << " warps=" << Warps;
  return OS.str();
}

ConcreteSimulator::ConcreteSimulator(const ScopProgram &Program,
                                     const HierarchyConfig &CacheCfg,
                                     SimOptions Options)
    : Program(Program), Cache(CacheCfg), Options(Options),
      BlockShift(log2Exact(CacheCfg.blockBytes())) {
  Stats.NumLevels = CacheCfg.numLevels();
}

SimStats ConcreteSimulator::run() {
  auto Start = std::chrono::steady_clock::now();
  IterVec Iter;
  for (const std::unique_ptr<Node> &R : Program.roots())
    simulateNode(R.get(), Iter);
  Stats.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Stats;
}

void ConcreteSimulator::simulateNode(const Node *N, IterVec &Iter) {
  if (const LoopNode *L = asLoop(N))
    simulateLoop(L, Iter);
  else
    simulateAccess(asAccess(N), Iter);
}

void ConcreteSimulator::simulateLoop(const LoopNode *L, IterVec &Iter) {
  std::optional<VarBounds> B = L->Domain.lastDimBounds(Iter);
  assert(B && "loop domain must be bounded");
  if (B->empty())
    return;
  // Domains with several disjuncts may have holes inside the hull; test
  // membership per iteration in that case (Algorithm 1 line 5).
  bool NeedMembership = !L->Domain.isSingleDisjunct();
  Iter.push(0);
  for (int64_t X = B->Lo; X <= B->Hi; ++X) {
    Iter.back() = X;
    if (NeedMembership && !L->Domain.contains(Iter))
      continue;
    for (const std::unique_ptr<Node> &C : L->Children)
      simulateNode(C.get(), Iter);
  }
  Iter.pop();
}

void ConcreteSimulator::simulateAccess(const AccessNode *A,
                                       const IterVec &Iter) {
  if (!Options.IncludeScalars && Program.array(A->ArrayId).isScalar())
    return;
  if (A->Guarded && !A->Domain.contains(Iter))
    return;
  BlockId B = A->Address.eval(Iter) >> BlockShift;
  HierarchyOutcome O = Cache.access(B, A->isWrite());
  if (Tap)
    Tap(B, A->isWrite(), O);
  ++Stats.SimulatedAccesses;
  ++Stats.Level[0].Accesses;
  if (!O.L1Hit)
    ++Stats.Level[0].Misses;
  if (O.L2Accessed) {
    ++Stats.Level[1].Accesses;
    if (!O.L2Hit)
      ++Stats.Level[1].Misses;
  }
}
