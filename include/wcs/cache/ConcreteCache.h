//===- wcs/cache/ConcreteCache.h - Concrete caches & hierarchy --*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete (non-symbolic) caches and the one/two-level non-inclusive
/// non-exclusive hierarchy of the paper's Eq. (24): the L2 is accessed
/// exactly when the L1 misses, with the same block. An optional
/// writeback-propagation mode additionally sends dirty L1 victims to the
/// L2, for the richer reference model used as "measured" ground truth in
/// the accuracy experiments (Figs. 11/13/14); the formal model used for
/// warping does not propagate victims, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_CONCRETECACHE_H
#define WCS_CACHE_CONCRETECACHE_H

#include "wcs/cache/SetAssocCache.h"

#include <functional>
#include <vector>

namespace wcs {

/// Line payload of a concrete cache: the block plus a dirty bit.
struct ConcreteLine {
  BlockId Block = kInvalidBlock;
  bool Dirty = false;
};

using ConcreteCache = SetAssocCache<ConcreteLine>;

/// Result of one hierarchy access.
struct HierarchyOutcome {
  bool L1Hit = false;
  bool L2Accessed = false; ///< Only in two-level configurations.
  bool L2Hit = false;
  unsigned L2Writebacks = 0;      ///< Victim writes issued to the L2.
  unsigned L2WritebackMisses = 0; ///< Of those, how many missed in L2.
  unsigned BackInvalidations = 0; ///< Inclusive mode: L1 lines removed
                                  ///< because their L2 copy was evicted.
};

/// One element of a batched address stream: a block plus its access
/// direction, in program order. The polyhedral iterator fills arrays of
/// these (one innermost-loop chunk at a time) instead of making one
/// hierarchy call per access.
/// One word per access keeps a 1024-entry chunk at 8 KiB, small enough
/// to stay L1-resident between the generating and the consuming loop.
struct BatchedAccess {
  uint64_t Bits; ///< Block << 1 | IsWrite.

  static BatchedAccess make(BlockId Block, bool IsWrite) {
    return BatchedAccess{static_cast<uint64_t>(Block) << 1 |
                         static_cast<uint64_t>(IsWrite)};
  }
  BlockId block() const { return static_cast<BlockId>(Bits >> 1); }
  bool isWrite() const { return (Bits & 1) != 0; }
};

/// Counter deltas of one accessBatch call.
struct BatchCounters {
  uint64_t L1Accesses = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Accesses = 0;
  uint64_t L2Misses = 0;
};

/// A one- or two-level concrete cache hierarchy supporting all three
/// inclusion policies (NINE per paper Eq. (24); inclusive with
/// back-invalidation; exclusive with victim caching).
class ConcreteHierarchy {
public:
  explicit ConcreteHierarchy(const HierarchyConfig &Config,
                             bool PropagateWritebacks = false);

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  const HierarchyConfig &config() const { return Cfg; }

  ConcreteCache &level(unsigned I) { return Levels[I]; }
  const ConcreteCache &level(unsigned I) const { return Levels[I]; }

  /// Performs one memory access (paper Eq. (24) extended to writes).
  HierarchyOutcome access(BlockId B, bool IsWrite);

  /// Observer of the L1 miss stream: called once per L1 miss, in
  /// program order, with the block and the write flag. This is exactly
  /// the stream a NINE L2 sees (trace/FilteredStream records through
  /// it), and because hits never reach it, it rides the batched hot
  /// loop without forcing per-access outcomes. The sink may throw; the
  /// exception propagates out of accessBatch mid-chunk.
  using L1MissSink = std::function<void(BlockId, bool IsWrite)>;

  /// Performs \p N accesses in order, accumulating counter deltas into
  /// \p C. Semantically identical to N access() calls, but the L1
  /// replacement policy -- and, for the common way counts, the L1
  /// associativity -- is dispatched once for the whole chunk and the
  /// L1-hit fast path never leaves the loop; only L1 misses take the
  /// (runtime-dispatched) lower-level leg and, when \p Sink is nonnull,
  /// the miss-sink call.
  void accessBatch(const BatchedAccess *Ops, size_t N, BatchCounters &C,
                   const L1MissSink *Sink = nullptr);

  void reset();

private:
  /// The below-L1 leg of access(): everything that happens after an L1
  /// miss in a two-level hierarchy (shared by access and accessBatch).
  /// \p O1 is the L1 outcome of the miss; fills the L2 fields of \p R.
  void lowerLevels(BlockId B, bool IsWrite, bool Alloc1,
                   const AccessOutcome &O1, HierarchyOutcome &R);

  template <PolicyKind P, unsigned CtAssoc>
  void accessBatchImpl(const BatchedAccess *Ops, size_t N, BatchCounters &C,
                       const L1MissSink *Sink);
  /// Second dispatch stage: picks the compile-time associativity
  /// instantiation matching the L1 (0 = the runtime-assoc fallback).
  template <PolicyKind P>
  void accessBatchAs(const BatchedAccess *Ops, size_t N, BatchCounters &C,
                     const L1MissSink *Sink);

  HierarchyConfig Cfg;
  bool Writebacks;
  std::vector<ConcreteCache> Levels;
};

} // namespace wcs

#endif // WCS_CACHE_CONCRETECACHE_H
