//===- bench/fig07_problem_size_scaling.cpp - Paper Fig. 7 ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates Fig. 7: warping and non-warping L1 simulation times at the
// two largest problem sizes (the paper's L and XL; our scaled Large and
// ExtraLarge). Non-warping times grow proportionally with the access
// count; warping times stay flat wherever warping engages (time ratio
// close to 1 despite an access ratio of 2-4x). The occasional warping
// time ratio *below* 1 reproduces the paper's observation that larger
// problems can warp further.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <cstdio>

using namespace wcs;
using namespace wcs::bench;

int main() {
  CacheConfig C = CacheConfig::scaledL1();
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  std::printf("== Figure 7: L vs XL simulation times, L1 %s ==\n\n",
              C.str().c_str());
  std::printf("%-15s %10s %10s | %10s %10s %8s | %10s %10s %8s\n", "kernel",
              "acc(L)", "acc(XL)", "nonwarp-L", "nonwarp-XL", "ratio",
              "warp-L", "warp-XL", "ratio");
  for (const KernelInfo &K : polybenchKernels()) {
    double NW[2], WP[2];
    uint64_t Acc[2];
    ProblemSize Sizes[2] = {ProblemSize::Large, ProblemSize::ExtraLarge};
    for (int I = 0; I < 2; ++I) {
      ScopProgram P = mustBuild(K, Sizes[I]);
      ConcreteSimulator Ref(P, H);
      SimStats R = Ref.run();
      WarpingSimulator Warp(P, H);
      SimStats W = Warp.run();
      requireEqualMisses(K.Name, R, W);
      NW[I] = R.Seconds;
      WP[I] = W.Seconds;
      Acc[I] = R.totalAccesses();
    }
    std::printf("%-15s %10llu %10llu | %9.3fs %9.3fs %7.2fx | %9.3fs "
                "%9.3fs %7.2fx\n",
                K.Name, static_cast<unsigned long long>(Acc[0]),
                static_cast<unsigned long long>(Acc[1]), NW[0], NW[1],
                NW[1] / NW[0], WP[0], WP[1], WP[1] / WP[0]);
  }
  std::printf("\nnon-warping ratios track the access ratio; warping ratios "
              "stay near (or below) 1\nwherever warping engages.\n");
  return 0;
}
