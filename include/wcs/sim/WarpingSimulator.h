//===- wcs/sim/WarpingSimulator.h - Algorithm 2 ----------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warping symbolic cache simulation (paper Algorithm 2). Each loop-node
/// activation keeps a hash map of the symbolic cache states reached at
/// the top of its iterations (fresh per activation: warping is attempted
/// only across iterations of one loop while the enclosing iterators are
/// fixed, as in the paper). When the current state's key recurs, the
/// engine verifies the match under set rotations, bounds the number of
/// warpable iterations (IterationsToWarp), and fast-forwards: iteration
/// counter, per-level access/miss counters and the symbolic state all
/// advance analytically.
///
/// Storage discipline: the first occurrence of a key records only a
/// marker; a snapshot (full symbolic state copy) is taken on the second
/// occurrence; later occurrences attempt warps against the stored
/// snapshots. Loops whose activations repeatedly probe without ever
/// warping stop probing (see WarpConfig), keeping non-warping kernels at
/// ordinary-simulation cost.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_WARPINGSIMULATOR_H
#define WCS_SIM_WARPINGSIMULATOR_H

#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"
#include "wcs/sim/SymbolicCache.h"
#include "wcs/sim/WarpEngine.h"

#include <memory>

namespace wcs {

/// Warping symbolic simulator (paper Algorithm 2).
class WarpingSimulator {
public:
  WarpingSimulator(const ScopProgram &Program, const HierarchyConfig &Cache,
                   SimOptions Options = SimOptions());

  /// Simulates the whole program on an initially empty hierarchy.
  SimStats run();

  /// Enables L1 hit-depth profiling: run() then additionally produces
  /// the histogram of per-set stack distances of all hits (depthHist()).
  /// Requires a single-level write-allocate LRU configuration, where a
  /// hit's pre-update way IS its per-set stack distance; the histogram
  /// of an A-way run is thus the Mattson histogram truncated at depth A
  /// (everything at or beyond A is a miss), from which the miss count
  /// of EVERY associativity up to A follows. Warps contribute their
  /// repetitions analytically: the depth sequence of a verified match
  /// window repeats exactly (Theorem 3's state bijection preserves
  /// per-set recency positions, which are invariant under the set
  /// rotations and block shifts a warp applies), so the window's
  /// histogram delta is scaled by the repetition count -- the
  /// trace-pass analogue of warping itself, and the engine behind
  /// trace/PeriodicPass. Call before run().
  void enableDepthProfile();

  /// Hit counts by L1 stack depth (size = L1 associativity); valid
  /// after a run() with enableDepthProfile().
  const std::vector<uint64_t> &depthHist() const { return DepthHist; }

  /// The symbolic hierarchy state after run().
  const SymbolicHierarchy &hierarchy() const { return Cache; }

  ~WarpingSimulator();

private:
  void runNode(const Node *N, IterVec &Iter);
  void runLoop(const LoopNode *L, IterVec &Iter);
  void runAccess(const AccessNode *A, const IterVec &Iter);

  /// Per-nesting-depth activation scratch (hash map + snapshot storage),
  /// pooled across activations to avoid allocation churn in loops with
  /// many short activations.
  struct Activation;
  Activation &activationAtDepth(unsigned Depth);

  const ScopProgram &Program;
  HierarchyConfig CacheCfg;
  SymbolicHierarchy Cache;
  WarpEngine Engine;
  SimOptions Options;
  SimStats Stats;
  unsigned BlockShift;
  /// Per-loop learning state: consecutive fully-probed activations with
  /// no warp; probing disabled once the threshold is reached.
  std::vector<unsigned> LoopFailures;
  std::vector<uint8_t> LoopDisabled;
  /// Profit-guard accounting (in access-equivalents) per loop node.
  std::vector<uint64_t> ProbeCost;
  std::vector<uint64_t> ProbeGain;
  std::vector<unsigned> GuardedActivations;
  /// Per-loop viable-delta unit (-1 = not yet computed; 0 = never warps).
  std::vector<int64_t> DeltaUnit;
  uint64_t TotalLines = 0;
  std::vector<std::unique_ptr<Activation>> Pools;
  /// Depth profiling (enableDepthProfile): hit counts by L1 stack depth.
  std::vector<uint64_t> DepthHist;
  bool DepthProfile = false;
};

} // namespace wcs

#endif // WCS_SIM_WARPINGSIMULATOR_H
