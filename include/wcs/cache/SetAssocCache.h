//===- wcs/cache/SetAssocCache.h - Generic set-associative cache -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative cache over an arbitrary line payload, shared by the
/// concrete simulator (payload: block + dirty bit) and the symbolic warping
/// simulator (payload: block + symbolic tag).
///
/// Two features exist specifically for warping (paper Sec. 5):
///  - logical-to-physical set indirection, so that applying the set
///    rotation pi_rot^n of Theorem 4 is an O(1) base-offset update;
///  - the most-recently-accessed set is tracked, anchoring the
///    rotation-invariant state hash of Algorithm 2.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_SETASSOCCACHE_H
#define WCS_CACHE_SETASSOCCACHE_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/cache/Policy.h"
#include "wcs/support/MathUtil.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace wcs {

/// Memory-block identifier (byte address / block size). Non-negative for
/// real blocks; kInvalidBlock marks empty cache lines.
using BlockId = int64_t;
inline constexpr BlockId kInvalidBlock = -1;

/// Outcome of a single cache access.
struct AccessOutcome {
  bool Hit = false;
  bool Inserted = false;   ///< A new line was allocated.
  unsigned Set = 0;        ///< Logical set index.
  unsigned Way = 0;        ///< Way of the (hit or inserted) line.
  /// On a hit: the way the line occupied BEFORE the policy update. Under
  /// LRU the lines of a set sit in recency order, so this is the per-set
  /// stack distance of the access (the quantity Mattson histograms
  /// count); the depth-profiling passes of trace/PeriodicPass read it.
  unsigned HitDepth = 0;
  bool EvictedValid = false;
  bool EvictedDirty = false;
  BlockId EvictedBlock = kInvalidBlock;
};

/// Set-associative cache with pluggable line payload.
///
/// \tparam LineT must provide members `BlockId Block` and `bool Dirty`,
/// be cheaply copyable, and default-construct to an invalid line
/// (`Block == kInvalidBlock`).
template <typename LineT>
class SetAssocCache {
public:
  explicit SetAssocCache(const CacheConfig &Config)
      : Cfg(Config), Sets(Config.numSets()), Assoc(Config.Assoc),
        SetMask(Sets - 1), Lines(static_cast<size_t>(Sets) * Assoc),
        PlruBits(Sets, 0),
        Ages(Config.Policy == PolicyKind::QuadAgeLru
                 ? static_cast<size_t>(Sets) * Assoc
                 : 0,
             QlruOps::EvictAge) {
    assert(Config.validate().empty() && "invalid cache configuration");
  }

  const CacheConfig &config() const { return Cfg; }
  unsigned numSets() const { return Sets; }
  unsigned assoc() const { return Assoc; }

  /// Logical set of a block under modulo placement.
  unsigned setOf(BlockId B) const {
    return static_cast<unsigned>(static_cast<uint64_t>(B) & SetMask);
  }

  /// Most-recently-accessed logical set (hash anchor for warping).
  unsigned mraSet() const { return MraSet; }

  /// The full payload of the line evicted by the most recent inserting
  /// access (valid when AccessOutcome::EvictedValid). Exclusive
  /// hierarchies use this to migrate a victim (with its symbolic tag)
  /// into the next level.
  const LineT &lastEvicted() const { return EvictedLine; }

  /// Accesses block \p B. On a miss with \p Allocate, the block is
  /// inserted and the victim (if any) reported in the outcome. The caller
  /// is responsible for updating the payload at (Set, Way) after the call
  /// (e.g. refreshing the symbolic tag, setting the dirty bit).
  AccessOutcome access(BlockId B, bool Allocate) {
    assert(B >= 0 && "accessing an invalid block");
    unsigned S = setOf(B);
    MraSet = S;
    LineT *W = setLines(S);
    AccessOutcome R;
    R.Set = S;
    for (unsigned I = 0; I < Assoc; ++I) {
      if (W[I].Block == B) {
        R.Hit = true;
        R.HitDepth = I;
        R.Way = onHit(S, W, I);
        return R;
      }
    }
    if (!Allocate)
      return R;
    R.Inserted = true;
    R.Way = onFill(S, W, B, R);
    return R;
  }

  /// True if \p B is currently cached (no state change).
  bool probe(BlockId B) const {
    const LineT *W = setLines(setOf(B));
    for (unsigned I = 0; I < Assoc; ++I)
      if (W[I].Block == B)
        return true;
    return false;
  }

  /// Invalidates \p B if present (back-invalidation in inclusive
  /// hierarchies, or the L2->L1 promotion of exclusive hierarchies).
  /// Returns the removed line, or std::nullopt. Under LRU/FIFO the
  /// remaining lines keep their relative order (the freed slot sinks to
  /// the back); PLRU/QLRU metadata for the slot is reset.
  std::optional<LineT> invalidate(BlockId B) {
    unsigned S = setOf(B);
    LineT *W = setLines(S);
    for (unsigned I = 0; I < Assoc; ++I) {
      if (W[I].Block != B)
        continue;
      LineT Removed = W[I];
      switch (Cfg.Policy) {
      case PolicyKind::Lru:
      case PolicyKind::Fifo:
        // Close the recency gap; empty lines live at the back.
        for (unsigned J = I; J + 1 < Assoc; ++J)
          W[J] = W[J + 1];
        W[Assoc - 1] = LineT();
        break;
      case PolicyKind::Plru:
        W[I] = LineT();
        break;
      case PolicyKind::QuadAgeLru:
        W[I] = LineT();
        Ages[static_cast<size_t>(phys(S)) * Assoc + I] = QlruOps::EvictAge;
        break;
      }
      return Removed;
    }
    return std::nullopt;
  }

  /// Line accessors by logical set index.
  LineT &line(unsigned Set, unsigned Way) {
    return Lines[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }
  const LineT &line(unsigned Set, unsigned Way) const {
    return Lines[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }

  uint32_t plruBits(unsigned Set) const { return PlruBits[phys(Set)]; }
  uint8_t age(unsigned Set, unsigned Way) const {
    assert(!Ages.empty() && "ages only exist under Quad-age LRU");
    return Ages[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }

  /// Per-set policy metadata as a single word, for hashing and state
  /// comparison. Captures PLRU tree bits or QLRU ages; LRU/FIFO state is
  /// already encoded in the line order.
  uint64_t policyWord(unsigned Set) const {
    switch (Cfg.Policy) {
    case PolicyKind::Lru:
    case PolicyKind::Fifo:
      return 0;
    case PolicyKind::Plru:
      return PlruBits[phys(Set)];
    case PolicyKind::QuadAgeLru: {
      uint64_t W = 0;
      const uint8_t *A = &Ages[static_cast<size_t>(phys(Set)) * Assoc];
      for (unsigned I = 0; I < Assoc; ++I)
        W = (W << 2) | A[I];
      return W;
    }
    }
    return 0;
  }

  /// Exact logical-state equality: line contents in logical (set, way)
  /// order plus the replacement metadata that decides future victims.
  /// The internal rotation base and the MRA anchor are representation
  /// details with no effect on future hit/miss behavior, so they are
  /// deliberately NOT compared. Used by the periodic replay fast path of
  /// trace/FilteredStream to prove that one more period repetition maps
  /// the cache onto itself (and may then be applied analytically).
  bool stateEquals(const SetAssocCache &O) const {
    if (Sets != O.Sets || Assoc != O.Assoc || Cfg.Policy != O.Cfg.Policy)
      return false;
    for (unsigned S = 0; S < Sets; ++S) {
      for (unsigned W = 0; W < Assoc; ++W) {
        const LineT &A = line(S, W), &B = O.line(S, W);
        if (A.Block != B.Block || A.Dirty != B.Dirty)
          return false;
        if (Cfg.Policy == PolicyKind::QuadAgeLru && age(S, W) != O.age(S, W))
          return false;
      }
      if (Cfg.Policy == PolicyKind::Plru && plruBits(S) != O.plruBits(S))
        return false;
    }
    return true;
  }

  /// Applies the set rotation `s -> s + Amount (mod Sets)` to the whole
  /// cache state in O(1) (paper Theorem 4: warping rotates cache sets).
  /// Line payloads are NOT rewritten; the symbolic layer re-derives
  /// concrete blocks from tags after a warp.
  void rotateSets(int64_t Amount) {
    Base = static_cast<unsigned>(
        static_cast<uint64_t>(Base + floorMod(-Amount, Sets)) & SetMask);
    MraSet = static_cast<unsigned>(
        static_cast<uint64_t>(MraSet + floorMod(Amount, Sets)) & SetMask);
  }

  /// Resets to the empty cache.
  void reset() {
    for (LineT &L : Lines)
      L = LineT();
    std::fill(PlruBits.begin(), PlruBits.end(), 0u);
    std::fill(Ages.begin(), Ages.end(), QlruOps::EvictAge);
    Base = 0;
    MraSet = 0;
  }

private:
  unsigned phys(unsigned LogicalSet) const {
    return static_cast<unsigned>(
        static_cast<uint64_t>(LogicalSet + Base) & SetMask);
  }

  LineT *setLines(unsigned LogicalSet) {
    return &Lines[static_cast<size_t>(phys(LogicalSet)) * Assoc];
  }
  const LineT *setLines(unsigned LogicalSet) const {
    return &Lines[static_cast<size_t>(phys(LogicalSet)) * Assoc];
  }

  /// Policy update on a hit at way \p I; returns the way where the line
  /// now lives (LRU moves it to the front).
  unsigned onHit(unsigned S, LineT *W, unsigned I) {
    switch (Cfg.Policy) {
    case PolicyKind::Lru:
      rotateToFront(W, I);
      return 0;
    case PolicyKind::Fifo:
      return I;
    case PolicyKind::Plru:
      PlruOps::touch(PlruBits[phys(S)], Assoc, I);
      return I;
    case PolicyKind::QuadAgeLru:
      Ages[static_cast<size_t>(phys(S)) * Assoc + I] = QlruOps::HitAge;
      return I;
    }
    return I;
  }

  /// Inserts block \p B into set \p S; returns the way used and records
  /// the victim in \p R.
  unsigned onFill(unsigned S, LineT *W, BlockId B, AccessOutcome &R) {
    unsigned Way = 0;
    switch (Cfg.Policy) {
    case PolicyKind::Lru:
    case PolicyKind::Fifo: {
      LineT Last = shiftDownForInsert(W, Assoc);
      recordVictim(Last, R);
      Way = 0;
      break;
    }
    case PolicyKind::Plru: {
      Way = firstInvalid(W);
      if (Way == Assoc)
        Way = PlruOps::victim(PlruBits[phys(S)], Assoc);
      recordVictim(W[Way], R);
      PlruOps::touch(PlruBits[phys(S)], Assoc, Way);
      break;
    }
    case PolicyKind::QuadAgeLru: {
      uint8_t *A = &Ages[static_cast<size_t>(phys(S)) * Assoc];
      Way = firstInvalid(W);
      if (Way == Assoc)
        Way = QlruOps::victimAging(A, Assoc);
      recordVictim(W[Way], R);
      A[Way] = QlruOps::InsertAge;
      break;
    }
    }
    W[Way] = LineT();
    W[Way].Block = B;
    return Way;
  }

  unsigned firstInvalid(const LineT *W) const {
    for (unsigned I = 0; I < Assoc; ++I)
      if (W[I].Block == kInvalidBlock)
        return I;
    return Assoc;
  }

  void recordVictim(const LineT &L, AccessOutcome &R) {
    R.EvictedValid = L.Block != kInvalidBlock;
    R.EvictedDirty = R.EvictedValid && L.Dirty;
    R.EvictedBlock = L.Block;
    if (R.EvictedValid)
      EvictedLine = L;
  }

  CacheConfig Cfg;
  unsigned Sets;
  unsigned Assoc;
  uint64_t SetMask;
  unsigned Base = 0;   ///< Logical-to-physical set rotation offset.
  unsigned MraSet = 0; ///< Most-recently-accessed logical set.
  LineT EvictedLine;   ///< Payload of the most recent victim.
  std::vector<LineT> Lines;
  std::vector<uint32_t> PlruBits;
  std::vector<uint8_t> Ages;
};

} // namespace wcs

#endif // WCS_CACHE_SETASSOCCACHE_H
