//===- tests/periodic_pass_test.cpp - Warp-aware pass cross-checks --------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The periodic (warp-aware) stack-distance pass must be bit-identical to
// the linear trace walk it replaces -- histogram for histogram, miss
// count for miss count at every associativity -- whether or not the
// program actually warps. The property suite enforces this across random
// programs (which mostly do NOT warp, exercising the concrete-stepping
// fallback) and hand-built periodic programs (which warp, exercising the
// analytic histogram scaling), plus the sweep driver's flavor switch.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/driver/Sweep.h"
#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/trace/PeriodicPass.h"
#include "wcs/trace/StackDistance.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;
using testutil::generateProgram;

namespace {

/// A strongly periodic program: \p Steps sweeps over a \p Blocks-block
/// array (8 accesses per block at 8-byte elements, 64-byte lines) -- the
/// time-loop shape that makes warping and the periodic pass shine.
ScopProgram periodicSweepProgram(int Steps, int Blocks) {
  ScopBuilder B("periodic");
  unsigned A = B.addArray("A", 8, {static_cast<int64_t>(Blocks) * 8});
  B.beginLoop("t", B.cst(0), B.cst(Steps - 1));
  B.beginLoop("i", B.cst(0), B.cst(Blocks * 8 - 1));
  B.read(A, {B.iterAt(1)});
  B.endLoop();
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  EXPECT_EQ(Err, "");
  return P;
}

/// Requires the periodic pass and the linear pass to agree at EVERY
/// associativity up to the truncation depth, and both to agree with the
/// bulk-updated bank the sweep driver builds.
void expectPassesAgree(const ScopProgram &P, unsigned BlockBytes,
                       unsigned NumSets, unsigned MaxAssoc) {
  SetDistanceBank Linear =
      profileProgramSets(P, BlockBytes, NumSets);
  PeriodicPassResult R =
      runPeriodicPass(P, BlockBytes, NumSets, MaxAssoc);
  SetDistanceBank Warp(BlockBytes, NumSets);
  ASSERT_TRUE(R.addTo(Warp));
  EXPECT_EQ(Warp.totalAccesses(), Linear.totalAccesses()) << P.str();
  EXPECT_EQ(Warp.truncatedAtAssoc(), MaxAssoc);
  for (uint64_t Assoc = 1; Assoc <= MaxAssoc; Assoc *= 2) {
    EXPECT_EQ(Warp.missesForAssoc(Assoc), Linear.missesForAssoc(Assoc))
        << "assoc " << Assoc << " sets " << NumSets << " block "
        << BlockBytes << "\n"
        << P.str();
    EXPECT_EQ(R.missesForAssoc(Assoc), Linear.missesForAssoc(Assoc));
  }
}

TEST(PeriodicPass, MatchesLinearPassOnRandomPrograms) {
  std::mt19937 Rng(20260729);
  for (int Trial = 0; Trial < 6; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    auto Rand = [&](int Lo, int Hi) {
      return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
    };
    unsigned BlockBytes = Rand(0, 1) ? 64 : 32;
    unsigned NumSets = 1u << Rand(0, 3);
    unsigned MaxAssoc = 1u << Rand(2, 6);
    expectPassesAgree(P, BlockBytes, NumSets, MaxAssoc);
  }
}

TEST(PeriodicPass, WarpsAndStaysIdenticalOnPeriodicProgram) {
  // 64 blocks fit a 128-way stack (hits at depths 0 and 63); 40 sweeps
  // give the warp engine plenty of periods to skip.
  ScopProgram P = periodicSweepProgram(/*Steps=*/40, /*Blocks=*/64);
  PeriodicPassResult R = runPeriodicPass(P, 64, 1, 128);
  EXPECT_GT(R.Stats.Warps, 0u) << "periodic program must warp";
  EXPECT_GT(R.Stats.WarpedAccesses, 0u);
  expectPassesAgree(P, 64, 1, 128);

  // Thrashing geometry: the array exceeds the stack, so every re-touch
  // lands beyond the truncation depth. Still bit-identical.
  ScopProgram Big = periodicSweepProgram(/*Steps=*/20, /*Blocks=*/512);
  expectPassesAgree(Big, 64, 1, 128);
  // And a set-associative geometry of the same pass.
  expectPassesAgree(Big, 64, 8, 32);
}

TEST(PeriodicPass, AgreesWithConcreteSimulatorSpotChecks) {
  ScopProgram P = periodicSweepProgram(/*Steps=*/12, /*Blocks=*/96);
  unsigned MaxAssoc = 256;
  PeriodicPassResult R = runPeriodicPass(P, 64, 1, MaxAssoc);
  for (unsigned Assoc : {16u, 64u, 256u}) {
    CacheConfig C{static_cast<uint64_t>(Assoc) * 64, Assoc, 64,
                  PolicyKind::Lru, WriteAllocate::Yes};
    ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(C));
    SimStats Ref = Sim.run();
    EXPECT_EQ(R.missesForAssoc(Assoc), Ref.Level[0].Misses)
        << C.str();
  }
}

TEST(PeriodicPass, TruncatedBankAnswersOnlyWithinDepth) {
  ScopProgram P = periodicSweepProgram(/*Steps=*/4, /*Blocks=*/16);
  PeriodicPassResult R = runPeriodicPass(P, 64, 1, 8);
  SetDistanceBank Bank(64, 1);
  EXPECT_EQ(Bank.truncatedAtAssoc(), 0u); // Exact before the update.
  ASSERT_TRUE(R.addTo(Bank));
  EXPECT_EQ(Bank.truncatedAtAssoc(), 8u);
  CacheConfig Within{8 * 64, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Beyond{16 * 64, 16, 64, PolicyKind::Lru,
                     WriteAllocate::Yes};
  EXPECT_TRUE(Bank.matches(Within));
  EXPECT_FALSE(Bank.matches(Beyond));
}

//===----------------------------------------------------------------------===//
// The sweep driver's flavor switch
//===----------------------------------------------------------------------===//

/// Forcing the periodic pass and forcing the linear pass must produce
/// bit-identical points; only the provenance figures differ.
TEST(PeriodicPass, SweepFlavorsAreBitIdentical) {
  std::mt19937 Rng(7);
  std::vector<ScopProgram> Programs;
  Programs.push_back(periodicSweepProgram(30, 48));
  Programs.push_back(generateProgram(Rng));
  for (const ScopProgram &P : Programs) {
    std::vector<HierarchyConfig> Grid;
    for (uint64_t Cap = 512; Cap <= 16 * 1024; Cap *= 2) {
      CacheConfig C{Cap, static_cast<unsigned>(Cap / 64), 64,
                    PolicyKind::Lru, WriteAllocate::Yes};
      Grid.push_back(HierarchyConfig::singleLevel(C));
    }
    // A second geometry (set-associative) forces a second bank.
    CacheConfig SA{4096, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
    Grid.push_back(HierarchyConfig::singleLevel(SA));

    SweepOptions Periodic;
    Periodic.WarpSweep = true;
    Periodic.WarpSweepMinAccesses = 0; // Force the periodic flavor.
    SweepOptions Linear;
    Linear.WarpSweep = false;

    SweepReport RP = runSweep(P, Grid, Periodic);
    SweepReport RL = runSweep(P, Grid, Linear);
    ASSERT_TRUE(RP.allOk());
    ASSERT_TRUE(RL.allOk());
    EXPECT_TRUE(RP.PeriodicPass);
    EXPECT_FALSE(RL.PeriodicPass);
    EXPECT_EQ(RP.NumBanks, 2u);
    for (size_t I = 0; I < Grid.size(); ++I) {
      EXPECT_EQ(RP.Points[I].Method, SweepMethod::StackDistance);
      EXPECT_EQ(RP.Points[I].Stats.Level[0].Accesses,
                RL.Points[I].Stats.Level[0].Accesses)
          << Grid[I].str();
      EXPECT_EQ(RP.Points[I].Stats.Level[0].Misses,
                RL.Points[I].Stats.Level[0].Misses)
          << Grid[I].str();
    }
  }
}

/// The counting pre-walk: short traces stay on the linear pass under
/// the default threshold; a zero threshold forces the periodic pass.
TEST(PeriodicPass, CountingPrewalkPicksTheFlavor) {
  ScopProgram P = periodicSweepProgram(4, 16);
  CacheConfig C{1024, 16, 64, PolicyKind::Lru, WriteAllocate::Yes};
  std::vector<HierarchyConfig> Grid = {HierarchyConfig::singleLevel(C)};
  SweepOptions Default; // WarpSweep on, threshold at its default.
  SweepReport RD = runSweep(P, Grid, Default);
  ASSERT_TRUE(RD.allOk());
  EXPECT_FALSE(RD.PeriodicPass) << "tiny trace must use the linear pass";
  SweepOptions Forced;
  Forced.WarpSweepMinAccesses = 0;
  SweepReport RF = runSweep(P, Grid, Forced);
  ASSERT_TRUE(RF.allOk());
  EXPECT_TRUE(RF.PeriodicPass);
  EXPECT_EQ(RF.Points[0].Stats.Level[0].Misses,
            RD.Points[0].Stats.Level[0].Misses);
}

/// Sweeps over the warp-aware pass agree with independent concrete
/// simulation point for point -- the same contract the linear pass has,
/// across programs that warp and programs that do not.
TEST(PeriodicPass, SweepMatchesConcretePerPoint) {
  std::mt19937 Rng(101);
  std::vector<ScopProgram> Programs;
  Programs.push_back(periodicSweepProgram(16, 80));
  Programs.push_back(generateProgram(Rng));
  for (const ScopProgram &P : Programs) {
    std::vector<HierarchyConfig> Grid;
    for (uint64_t Cap : {512u, 2048u, 8192u}) {
      CacheConfig C{Cap, static_cast<unsigned>(Cap / 64), 64,
                    PolicyKind::Lru, WriteAllocate::Yes};
      Grid.push_back(HierarchyConfig::singleLevel(C));
    }
    SweepOptions SO;
    SO.WarpSweepMinAccesses = 0; // Force the periodic flavor.
    SweepReport Rep = runSweep(P, Grid, SO);
    ASSERT_TRUE(Rep.allOk());
    EXPECT_TRUE(Rep.PeriodicPass);
    for (size_t I = 0; I < Grid.size(); ++I) {
      ConcreteSimulator Sim(P, Grid[I]);
      SimStats Ref = Sim.run();
      EXPECT_EQ(Rep.Points[I].Stats.Level[0].Misses,
                Ref.Level[0].Misses)
          << Grid[I].str();
      EXPECT_EQ(Rep.Points[I].Stats.Level[0].Accesses,
                Ref.Level[0].Accesses)
          << Grid[I].str();
    }
  }
}

} // namespace
