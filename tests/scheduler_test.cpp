//===- tests/scheduler_test.cpp - Cross-request scheduler tests -----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The concurrent scheduler's semantic surface: in-flight subscription
// (two racing requests compute each shared point once, bit-identically),
// round-robin fairness (a huge sweep cannot starve a small one),
// disconnect cancellation (unshared queued jobs drop, shared ones
// survive for their subscribers), the single-writer store guarantee
// (racing same-key requests append exactly one log line per key), and a
// seeded multi-threaded stress run whose every response must match the
// serial reference bit for bit. The deterministic tests steer the
// interleaving through the job observer, which runs on the worker
// thread after dequeue and before any work.
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Scheduler.h"
#include "wcs/serve/Server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace wcs;

namespace {

const char *TestSource = R"(
  int A[512]; int B[512];
  for (int i = 1; i < 511; i++)
    B[i] = A[i-1] + A[i+1];
)";

/// FIFO points land one per sub-sweep job (each config is its own
/// simulated group), which is what the job-level tests need: one size =
/// one job = one point.
SweepRequest fifoRequest(std::vector<uint64_t> Sizes) {
  SweepRequest R;
  R.Source = TestSource;
  R.SourceName = "stencil.wcs";
  R.L1.SizesBytes = std::move(Sizes);
  R.L1.Assocs = {2};
  R.L1.Policies = {PolicyKind::Fifo};
  return R;
}

SweepRequest mixedRequest(std::vector<uint64_t> Sizes) {
  SweepRequest R = fifoRequest(std::move(Sizes));
  R.L1.Policies = {PolicyKind::Lru, PolicyKind::Fifo};
  return R;
}

/// Provenance- and timing-independent view of a point: the scheduler
/// may relabel a point "store" and keeps the computing request's
/// timing, but the counters must never change.
std::string counters(SweepPoint P) {
  P.Stats.Seconds = 0.0;
  P.Method = SweepMethod::Simulated;
  return toJson(P).dump(false);
}

std::string tempPath(const char *Tag, const char *Ext) {
  std::ostringstream OS;
  OS << ::testing::TempDir() << "wcs-sched-" << Tag << "-" << ::getpid()
     << Ext;
  return OS.str();
}

/// Spins until \p Pred holds or ~5s pass; the scheduler's admission and
/// counters are lock-protected, so polling stats() is race-free.
template <typename PredT> bool waitFor(PredT Pred) {
  for (int I = 0; I < 5000; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// A gate the job observer blocks on until the test opens it.
struct Gate {
  std::mutex Mu;
  std::condition_variable Cv;
  bool Open = false;
  void open() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Open = true;
    }
    Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [this] { return Open; });
  }
};

TEST(Scheduler, MatchesSerialReferenceBitForBit) {
  ResultStore Ref, Store;
  std::string Err;
  ASSERT_TRUE(Ref.open("", &Err)) << Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;
  SweepRequest Req = mixedRequest({1024, 2048});

  SweepResponse Serial = serveSweepRequest(Req, Ref, 2, nullptr);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;

  Scheduler Sched(Store, 2);
  SweepResponse Resp = Sched.serve(Req, nullptr);
  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(Resp.StoreHits, Serial.StoreHits);
  EXPECT_EQ(Resp.StoreMisses, Serial.StoreMisses);
  EXPECT_EQ(Resp.InFlightHits, 0u);
  EXPECT_EQ(Resp.StoreEntries, Serial.StoreEntries);
  ASSERT_EQ(Resp.Sweep.Points.size(), Serial.Sweep.Points.size());
  for (size_t I = 0; I < Resp.Sweep.Points.size(); ++I)
    EXPECT_EQ(counters(Resp.Sweep.Points[I]),
              counters(Serial.Sweep.Points[I]))
        << "point " << I;

  // Resubmission hits the store for every point, like the reference.
  SweepResponse Again = Sched.serve(Req, nullptr);
  ASSERT_TRUE(Again.Ok) << Again.Error;
  EXPECT_EQ(Again.StoreHits, Resp.Sweep.Points.size());
  EXPECT_EQ(Again.StoreMisses, 0u);
}

TEST(Scheduler, InFlightSubscriptionComputesSharedPointsOnce) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  Scheduler Sched(Store, 2);
  Gate Release;
  Sched.setJobObserver([&](uint64_t, size_t) { Release.wait(); });

  SweepRequest Req = mixedRequest({1024, 2048});

  // Admit A; its jobs dequeue but block in the observer before any
  // point computes or lands in the store.
  SweepResponse RespA, RespB;
  std::thread A([&] { RespA = Sched.serve(Req, nullptr); });
  ASSERT_TRUE(waitFor([&] { return Sched.stats().ActiveRequests == 1; }));

  // Admit B with the SAME grid: nothing is stored yet, so every point
  // must be answered by subscribing to A's in-flight jobs.
  std::thread B([&] { RespB = Sched.serve(Req, nullptr); });
  ASSERT_TRUE(waitFor([&] { return Sched.stats().ActiveRequests == 2; }));

  Release.open();
  A.join();
  B.join();

  ASSERT_TRUE(RespA.Ok) << RespA.Error;
  ASSERT_TRUE(RespB.Ok) << RespB.Error;
  EXPECT_EQ(RespA.StoreMisses, 4u);
  EXPECT_EQ(RespB.StoreHits, 0u);
  EXPECT_EQ(RespB.StoreMisses, 0u);
  EXPECT_EQ(RespB.InFlightHits, 4u);

  // Each shared point was computed once and delivered twice,
  // bit-identically; the subscriber sees honest "store" provenance.
  Scheduler::Stats St = Sched.stats();
  EXPECT_EQ(St.PointsComputed, 4u);
  EXPECT_EQ(St.InFlightHits, 4u);
  EXPECT_EQ(St.StoreEntries, 4u);
  ASSERT_EQ(RespB.Sweep.Points.size(), RespA.Sweep.Points.size());
  for (size_t I = 0; I < RespB.Sweep.Points.size(); ++I) {
    EXPECT_EQ(RespB.Sweep.Points[I].Method, SweepMethod::Store);
    EXPECT_EQ(counters(RespB.Sweep.Points[I]),
              counters(RespA.Sweep.Points[I]))
        << "point " << I;
  }
}

TEST(Scheduler, RoundRobinKeepsSmallRequestsAheadOfHugeOnes) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  // ONE worker makes the job order a total order we can assert on.
  Scheduler Sched(Store, 1);
  Gate Release;
  std::atomic<unsigned> Started{0};
  std::mutex OrderMu;
  std::vector<uint64_t> Order;
  Sched.setJobObserver([&](uint64_t Serial, size_t) {
    {
      std::lock_guard<std::mutex> L(OrderMu);
      Order.push_back(Serial);
    }
    // Hold only the FIRST job, so the small request is admitted while
    // the big one still has its whole queue in front of the worker.
    if (Started.fetch_add(1) == 0)
      Release.wait();
  });

  SweepResponse Big, Small;
  std::thread A(
      [&] { Big = Sched.serve(fifoRequest({1024, 2048, 4096, 8192}),
                              nullptr); });
  // The worker has dequeued big job 1 (blocked); three remain queued.
  ASSERT_TRUE(waitFor([&] { return Started.load() == 1; }));
  std::thread B(
      [&] { Small = Sched.serve(fifoRequest({512}), nullptr); });
  ASSERT_TRUE(waitFor([&] { return Sched.stats().QueuedJobs == 4; }));

  Release.open();
  A.join();
  B.join();
  ASSERT_TRUE(Big.Ok) << Big.Error;
  ASSERT_TRUE(Small.Ok) << Small.Error;

  // Round-robin: one big job per turn, so the small request's only job
  // runs after at most two big jobs -- never behind the whole queue.
  std::lock_guard<std::mutex> L(OrderMu);
  ASSERT_EQ(Order.size(), 5u);
  uint64_t BigSerial = Order[0];
  size_t SmallAt = Order.size();
  for (size_t I = 0; I < Order.size(); ++I)
    if (Order[I] != BigSerial)
      SmallAt = I;
  EXPECT_EQ(SmallAt, 2u) << "small request's job did not interleave";
}

TEST(Scheduler, DisconnectCancelsQueuedJobsButKeepsSubscribedOnes) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  Scheduler Sched(Store, 1);
  Gate Release;
  std::atomic<unsigned> Started{0};
  Sched.setJobObserver([&](uint64_t, size_t) {
    if (Started.fetch_add(1) == 0)
      Release.wait();
  });

  // A owns two jobs (1024, 2048); the worker blocks inside the first.
  std::atomic<bool> AGone{false};
  SweepResponse RespA, RespB;
  std::thread A([&] {
    RespA = Sched.serve(fifoRequest({1024, 2048}), nullptr,
                        [&] { return AGone.load(); });
  });
  ASSERT_TRUE(waitFor([&] { return Started.load() == 1; }));

  // B needs only the 1024 point -- the one A's RUNNING job computes --
  // so it subscribes rather than enqueueing anything.
  std::thread B([&] { RespB = Sched.serve(fifoRequest({1024}), nullptr); });
  ASSERT_TRUE(waitFor([&] { return Sched.stats().ActiveRequests == 2; }));
  EXPECT_EQ(Sched.stats().QueuedJobs, 1u);

  // A's client disconnects. Its queued 2048 job has no subscriber and
  // must be dropped unrun; the running 1024 job finishes for B.
  AGone.store(true);
  ASSERT_TRUE(waitFor([&] { return Sched.stats().CancelledJobs == 1; }));
  Release.open();
  A.join();
  B.join();

  EXPECT_FALSE(RespA.Ok);
  EXPECT_NE(RespA.Error.find("cancelled"), std::string::npos)
      << RespA.Error;
  ASSERT_TRUE(RespB.Ok) << RespB.Error;
  EXPECT_EQ(RespB.InFlightHits, 1u);
  ASSERT_EQ(RespB.Sweep.Points.size(), 1u);
  EXPECT_TRUE(RespB.Sweep.Points[0].Ok) << RespB.Sweep.Points[0].Error;

  Scheduler::Stats St = Sched.stats();
  EXPECT_EQ(St.CancelledJobs, 1u);  // The 2048 job never ran...
  EXPECT_EQ(St.PointsComputed, 1u); // ...only the shared 1024 did,
  EXPECT_EQ(St.StoreEntries, 1u);   // and only it was stored.
}

// Regression: ResultStore is not thread-safe, and its log is
// append-only -- if two racing requests on the same key both inserted,
// the log would carry a duplicate line (and a torn one, in the worst
// interleaving). All inserts funnel through the scheduler's lock, so
// two simultaneous misses on one key must append EXACTLY one line.
TEST(Scheduler, RacingSameKeyRequestsAppendOneLogLinePerKey) {
  std::string StorePath = tempPath("single-writer", ".jsonl");
  std::remove(StorePath.c_str());
  std::string Err;
  {
    ResultStore Store;
    ASSERT_TRUE(Store.open(StorePath, &Err)) << Err;

    Scheduler Sched(Store, 2);
    Gate Release;
    Sched.setJobObserver([&](uint64_t, size_t) { Release.wait(); });

    SweepRequest Req = fifoRequest({1024, 2048});
    SweepResponse RespA, RespB;
    std::thread A([&] { RespA = Sched.serve(Req, nullptr); });
    ASSERT_TRUE(
        waitFor([&] { return Sched.stats().ActiveRequests == 1; }));
    std::thread B([&] { RespB = Sched.serve(Req, nullptr); });
    ASSERT_TRUE(
        waitFor([&] { return Sched.stats().ActiveRequests == 2; }));
    Release.open();
    A.join();
    B.join();

    ASSERT_TRUE(RespA.Ok) << RespA.Error;
    ASSERT_TRUE(RespB.Ok) << RespB.Error;
    // Identical counters from both views of the shared computation.
    ASSERT_EQ(RespA.Sweep.Points.size(), RespB.Sweep.Points.size());
    for (size_t I = 0; I < RespA.Sweep.Points.size(); ++I)
      EXPECT_EQ(counters(RespA.Sweep.Points[I]),
                counters(RespB.Sweep.Points[I]));
    EXPECT_EQ(RespA.StoreMisses + RespB.StoreMisses, 2u);
    EXPECT_EQ(RespA.InFlightHits + RespB.InFlightHits, 2u);
  }

  // One line per key, every line intact (a torn or duplicate line
  // would change the count or trip the reopen's self-check).
  std::ifstream In(StorePath);
  size_t Lines = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++Lines;
  EXPECT_EQ(Lines, 2u);
  ResultStore Reopened;
  ASSERT_TRUE(Reopened.open(StorePath, &Err)) << Err;
  EXPECT_EQ(Reopened.recoveredBytes(), 0u);
  EXPECT_EQ(Reopened.numEntries(), 2u);
  std::remove(StorePath.c_str());
}

// Seeded stress: many client threads submit overlapping grids from a
// deterministic schedule; every response must partition its grid
// across the three counters and match the serial reference bit for
// bit. WCS_STRESS_ITERS scales the run (CI cranks it up under TSan).
TEST(Scheduler, SeededConcurrentStressMatchesReference) {
  unsigned Iters = 6;
  if (const char *E = std::getenv("WCS_STRESS_ITERS"))
    Iters = static_cast<unsigned>(std::strtoul(E, nullptr, 10));
  if (Iters == 0)
    Iters = 1;

  // The universe of grids: subsets of sizes x both policies, all
  // expanding into one shared key space.
  const std::vector<std::vector<uint64_t>> SizeSets = {
      {1024}, {2048}, {1024, 2048}, {1024, 4096}, {2048, 4096},
      {1024, 2048, 4096}};

  // Serial reference for the whole universe.
  ResultStore Ref;
  std::string Err;
  ASSERT_TRUE(Ref.open("", &Err)) << Err;
  SweepResponse Union =
      serveSweepRequest(mixedRequest({1024, 2048, 4096}), Ref, 2, nullptr);
  ASSERT_TRUE(Union.Ok) << Union.Error;
  std::map<std::string, std::string> Expect;
  for (const SweepPoint &P : Union.Sweep.Points)
    Expect[P.Cache.str()] = counters(P);

  ResultStore Store;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  // The metrics registry is process-global, so the telemetry
  // assertions below work on snapshot DELTAS across this run. The
  // serial reference above ran through serveSweepRequest (no
  // scheduler), so it does not pollute the scheduler.* deltas.
  MetricsDoc MBefore = telemetry::registry().snapshot("test");
  Scheduler Sched(Store, 4);

  const unsigned NumClients = 4;
  std::atomic<uint64_t> InFlightHitsSeen{0};
  std::atomic<unsigned> Failures{0};
  std::vector<std::string> FailWhy(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      for (unsigned I = 0; I < Iters; ++I) {
        // Deterministic per-(client, iter) grid pick; clients collide
        // on purpose so hits, subscriptions, and misses all exercise.
        SweepRequest Req =
            mixedRequest(SizeSets[(C * 7 + I * 3) % SizeSets.size()]);
        SweepResponse Resp = Sched.serve(Req, nullptr);
        if (!Resp.Ok) {
          FailWhy[C] = "not ok: " + Resp.Error;
          ++Failures;
          return;
        }
        InFlightHitsSeen += Resp.InFlightHits;
        size_t Total = Resp.Sweep.Points.size();
        if (Resp.StoreHits + Resp.InFlightHits + Resp.StoreMisses !=
            Total) {
          FailWhy[C] = "counters do not partition the grid";
          ++Failures;
          return;
        }
        for (const SweepPoint &P : Resp.Sweep.Points) {
          auto It = Expect.find(P.Cache.str());
          if (It == Expect.end() || counters(P) != It->second) {
            FailWhy[C] = "point diverged from reference: " + P.Cache.str();
            ++Failures;
            return;
          }
        }
      }
    });
  for (std::thread &T : Clients)
    T.join();
  for (unsigned C = 0; C < NumClients; ++C)
    EXPECT_EQ(FailWhy[C], "") << "client " << C;
  EXPECT_EQ(Failures.load(), 0u);

  // Every point was computed at most once ever: the whole run costs no
  // more simulation than the union grid, however the races fell.
  Scheduler::Stats St = Sched.stats();
  EXPECT_LE(St.PointsComputed, Union.Sweep.Points.size());
  EXPECT_EQ(St.StoreEntries, Union.Sweep.Points.size());
  EXPECT_EQ(St.RequestsServed, NumClients * Iters);

  // The telemetry registry tells the same story as the scheduler's own
  // stats, however the races fell.
  MetricsDoc MAfter = telemetry::registry().snapshot("test");
  auto CounterDelta = [&](const char *Name) {
    return MAfter.counter(Name) - MBefore.counter(Name);
  };
  EXPECT_EQ(CounterDelta("serve.requests"), NumClients * Iters);
  EXPECT_EQ(CounterDelta("scheduler.points_computed"),
            St.PointsComputed);
  // Dedup subscriptions: one registry bump per in-flight hit handed
  // out, exactly what the responses reported.
  EXPECT_EQ(CounterDelta("scheduler.inflight_subscriptions"),
            InFlightHitsSeen.load());
  // Every enqueued job was dequeued (serve() blocks until its request
  // drains, and nothing disconnected), and every dequeue observed its
  // queue wait in the histogram.
  EXPECT_EQ(CounterDelta("scheduler.jobs_cancelled"), 0u);
  EXPECT_EQ(CounterDelta("scheduler.jobs_enqueued"),
            CounterDelta("scheduler.jobs_dequeued"));
  const MetricsDoc::Hist *WaitAfter =
      MAfter.histogram("scheduler.queue_wait_seconds");
  const MetricsDoc::Hist *WaitBefore =
      MBefore.histogram("scheduler.queue_wait_seconds");
  ASSERT_NE(WaitAfter, nullptr);
  EXPECT_EQ(WaitAfter->Count - (WaitBefore ? WaitBefore->Count : 0),
            CounterDelta("scheduler.jobs_dequeued"));
}

// A deadline that fires mid-compute yields a PARTIAL answer: Ok=true
// (this is the answer), Resp.Error names the degradation, every
// finished point is bit-identical to a fresh run, and every cut-off
// point carries an honest per-point error -- no silent gaps.
TEST(Scheduler, DeadlineExpiredMidComputeReturnsPartialResults) {
  ResultStore Ref, Store;
  std::string Err;
  ASSERT_TRUE(Ref.open("", &Err)) << Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  SweepResponse Serial =
      serveSweepRequest(fifoRequest({1024, 2048}), Ref, 1, nullptr);
  ASSERT_TRUE(Serial.Ok) << Serial.Error;
  std::map<std::string, std::string> Expect;
  for (const SweepPoint &P : Serial.Sweep.Points)
    Expect[P.Cache.str()] = counters(P);

  MetricsDoc MBefore = telemetry::registry().snapshot("test");
  // ONE worker: the first job is dequeued and held in the observer;
  // the second is still queued when the deadline fires and must be
  // dropped unrun.
  Scheduler Sched(Store, 1);
  Gate Release;
  std::atomic<unsigned> Started{0};
  Sched.setJobObserver([&](uint64_t, size_t) {
    if (Started.fetch_add(1) == 0)
      Release.wait();
  });

  SweepRequest Req = fifoRequest({1024, 2048});
  Req.DeadlineSeconds = 0.2;
  SweepResponse Resp;
  std::thread A([&] { Resp = Sched.serve(Req, nullptr); });
  ASSERT_TRUE(waitFor([&] { return Started.load() == 1; }));
  ASSERT_TRUE(
      waitFor([&] { return Sched.stats().DeadlineExpired == 1; }));
  // The running job survives expiry: release it and let it finish.
  Release.open();
  A.join();

  ASSERT_TRUE(Resp.Ok) << Resp.Error;
  EXPECT_EQ(Resp.Error, "deadline exceeded");
  ASSERT_EQ(Resp.Sweep.Points.size(), 2u);
  size_t OkPoints = 0, Expired = 0;
  for (const SweepPoint &P : Resp.Sweep.Points) {
    if (P.Ok) {
      ++OkPoints;
      auto It = Expect.find(P.Cache.str());
      ASSERT_NE(It, Expect.end()) << P.Cache.str();
      EXPECT_EQ(counters(P), It->second) << P.Cache.str();
    } else {
      ++Expired;
      EXPECT_EQ(P.Error, "deadline exceeded");
      EXPECT_FALSE(P.Cache.str().empty()) << "cut-off point lost its config";
    }
  }
  EXPECT_EQ(OkPoints, 1u); // The job that was already running landed...
  EXPECT_EQ(Expired, 1u);  // ...the queued one was cut off, honestly.

  Scheduler::Stats St = Sched.stats();
  EXPECT_EQ(St.DeadlineExpired, 1u);
  EXPECT_EQ(St.CancelledJobs, 1u);
  EXPECT_EQ(St.PointsComputed, 1u);
  MetricsDoc MAfter = telemetry::registry().snapshot("test");
  EXPECT_EQ(MAfter.counter("serve.deadline_expired") -
                MBefore.counter("serve.deadline_expired"),
            1u);
}

// The admission cap refuses requests that would grow the compute queue
// past --max-queued-points -- immediately, with a retry hint, and
// without leaving any in-flight registration behind.
TEST(Scheduler, AdmissionCapShedsOverloadedRequests) {
  ResultStore Store;
  std::string Err;
  ASSERT_TRUE(Store.open("", &Err)) << Err;

  MetricsDoc MBefore = telemetry::registry().snapshot("test");
  Scheduler Sched(Store, 1, /*MaxQueuedPoints=*/4);
  Gate Release;
  std::atomic<unsigned> Started{0};
  Sched.setJobObserver([&](uint64_t, size_t) {
    if (Started.fetch_add(1) == 0)
      Release.wait();
  });

  // A owns 4 points; the worker holds the first job, so 3 stay queued.
  SweepResponse Big;
  std::thread A([&] {
    Big = Sched.serve(fifoRequest({1024, 2048, 4096, 8192}), nullptr);
  });
  ASSERT_TRUE(waitFor([&] { return Started.load() == 1; }));

  // B would add 2 fresh points: 3 queued + 2 > 4, so it is shed.
  SweepRequest Small = fifoRequest({512, 16384});
  SweepResponse Resp = Sched.serve(Small, nullptr);
  EXPECT_FALSE(Resp.Ok);
  EXPECT_EQ(Resp.Error, "overloaded");
  EXPECT_GT(Resp.RetryAfterSeconds, 0.0);
  // Shed means NOTHING was answered, store hits included.
  EXPECT_EQ(Resp.StoreHits + Resp.StoreMisses + Resp.InFlightHits, 0u);

  // The overloaded response survives the wire format, hint and all.
  SweepResponse Round;
  ASSERT_TRUE(fromJson(toJson(Resp), Round, &Err)) << Err;
  EXPECT_FALSE(Round.Ok);
  EXPECT_EQ(Round.Error, "overloaded");
  EXPECT_EQ(Round.RetryAfterSeconds, Resp.RetryAfterSeconds);

  Release.open();
  A.join();
  ASSERT_TRUE(Big.Ok) << Big.Error;

  // Capacity freed: the same request is admitted now -- the shed
  // attempt leaked no InFlight state that could block or dedup it.
  SweepResponse Again = Sched.serve(Small, nullptr);
  ASSERT_TRUE(Again.Ok) << Again.Error;
  EXPECT_EQ(Again.StoreMisses, 2u);

  Scheduler::Stats St = Sched.stats();
  EXPECT_EQ(St.ShedRequests, 1u);
  EXPECT_EQ(St.QueuedPoints, 0u);
  MetricsDoc MAfter = telemetry::registry().snapshot("test");
  EXPECT_EQ(MAfter.counter("serve.shed") - MBefore.counter("serve.shed"),
            1u);
}

} // namespace
