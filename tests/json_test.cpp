//===- tests/json_test.cpp - JSON writer/parser unit tests ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Json.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <limits>

using namespace wcs;
using json::Value;

namespace {

Value parseOk(const std::string &Text) {
  Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Text, V, &Err)) << Text << ": " << Err;
  return V;
}

std::string parseErr(const std::string &Text) {
  Value V;
  std::string Err;
  EXPECT_FALSE(json::parse(Text, V, &Err)) << Text;
  return Err;
}

TEST(JsonValue, Scalars) {
  EXPECT_TRUE(Value().isNull());
  EXPECT_TRUE(Value(nullptr).isNull());
  EXPECT_TRUE(Value(true).asBool());
  EXPECT_EQ(Value(int64_t(-7)).asInt(), -7);
  EXPECT_EQ(Value(uint64_t(42)).asUInt(), 42u);
  EXPECT_DOUBLE_EQ(Value(2.5).asDouble(), 2.5);
  EXPECT_EQ(Value("hi").asString(), "hi");
  // Numeric kinds convert into each other; mismatches yield the default.
  EXPECT_DOUBLE_EQ(Value(int64_t(3)).asDouble(), 3.0);
  EXPECT_EQ(Value(2.9).asInt(), 2);
  EXPECT_EQ(Value("x").asInt(123), 123);
  EXPECT_EQ(Value(int64_t(1)).asString(), "");
  // Unrepresentable conversions yield the default instead of UB: doubles
  // beyond the integer ranges, and negatives under asUInt.
  EXPECT_EQ(Value(1e300).asInt(-5), -5);
  EXPECT_EQ(Value(-1e300).asInt(-5), -5);
  EXPECT_EQ(Value(1e300).asUInt(9), 9u);
  EXPECT_EQ(Value(-0.5).asUInt(9), 9u);
  EXPECT_EQ(Value(int64_t(-1)).asUInt(9), 9u);
  EXPECT_EQ(Value(18446744073709551615.0).asUInt(9), 9u); // Rounds to 2^64.
  // uint64 values above int64 max cannot round-trip as JSON integers;
  // they degrade to doubles instead of wrapping negative.
  EXPECT_EQ(Value(uint64_t(123)).kind(), Value::Kind::Int);
  EXPECT_EQ(Value(uint64_t(9223372036854775807ull)).asInt(), // 2^63 - 1
            9223372036854775807LL);
  Value Big(uint64_t(1) << 63);
  EXPECT_EQ(Big.kind(), Value::Kind::Double);
  EXPECT_GT(Big.asDouble(), 0.0);
}

TEST(JsonValue, ObjectInsertionOrderAndReplace) {
  Value V = Value::object();
  V.set("zebra", 1).set("alpha", 2).set("mid", 3);
  // Keys serialize in insertion order, not sorted.
  EXPECT_EQ(V.dump(/*Pretty=*/false), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Replacing keeps the original position.
  V.set("alpha", 9);
  EXPECT_EQ(V.dump(false), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V["alpha"].asInt(), 9);
  EXPECT_EQ(V.find("missing"), nullptr);
  EXPECT_TRUE(V["missing"].isNull());
}

TEST(JsonValue, ArrayPushAndAt) {
  Value V = Value::array();
  V.push(1);
  V.push("two");
  V.push(Value::array());
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V.at(0).asInt(), 1);
  EXPECT_EQ(V.at(1).asString(), "two");
  EXPECT_TRUE(V.at(7).isNull());
  EXPECT_EQ(V.dump(false), "[1,\"two\",[]]");
}

TEST(JsonWriter, Escaping) {
  Value V = Value::object();
  V.set("k\"ey", "line1\nline2\ttab \\ back \"quote\" \x01");
  EXPECT_EQ(V.dump(false),
            "{\"k\\\"ey\":"
            "\"line1\\nline2\\ttab \\\\ back \\\"quote\\\" \\u0001\"}");
  // And the escaped form parses back to the original.
  Value Back = parseOk(V.dump(false));
  EXPECT_EQ(Back, V);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  Value V = Value::array();
  V.push(std::numeric_limits<double>::infinity());
  V.push(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(V.dump(false), "[null,null]");
}

TEST(JsonWriter, PrettyForm) {
  Value V = Value::object();
  V.set("a", 1);
  Value Arr = Value::array();
  Arr.push(2);
  V.set("b", std::move(Arr));
  EXPECT_EQ(V.dump(true), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonParser, RoundTripNested) {
  const char *Text = "{\"name\":\"gemm\",\"levels\":[{\"misses\":10},"
                     "{\"misses\":0}],\"ok\":true,\"ratio\":0.25,"
                     "\"nothing\":null}";
  Value V = parseOk(Text);
  EXPECT_EQ(V["name"].asString(), "gemm");
  EXPECT_EQ(V["levels"].at(0)["misses"].asInt(), 10);
  EXPECT_TRUE(V["ok"].asBool());
  EXPECT_DOUBLE_EQ(V["ratio"].asDouble(), 0.25);
  EXPECT_TRUE(V["nothing"].isNull());
  // Compact dump of the parse result reproduces the input byte for byte.
  EXPECT_EQ(V.dump(false), Text);
}

TEST(JsonParser, Numbers) {
  EXPECT_EQ(parseOk("9223372036854775807").asInt(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(parseOk("-9223372036854775808").asInt(),
            std::numeric_limits<int64_t>::min());
  // Beyond int64 range degrades to double instead of failing.
  EXPECT_TRUE(parseOk("123456789012345678901").isNumber());
  EXPECT_DOUBLE_EQ(parseOk("1.5e3").asDouble(), 1500.0);
  EXPECT_DOUBLE_EQ(parseOk("-2.5E-1").asDouble(), -0.25);
  // Integers parse as Int exactly (no double round-trip).
  Value V = parseOk("[1152921504606846977]"); // 2^60 + 1, not double-exact.
  EXPECT_EQ(V.at(0).asInt(), 1152921504606846977LL);
}

TEST(JsonParser, UnicodeEscapes) {
  EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xC3\xA9");     // é
  EXPECT_EQ(parseOk("\"\\u20ac\"").asString(), "\xE2\x82\xAC"); // €
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParser, Whitespace) {
  Value V = parseOk("  \n\t{ \"a\" : [ 1 , 2 ] }\r\n ");
  EXPECT_EQ(V["a"].size(), 2u);
}

TEST(JsonParser, Errors) {
  // Every diagnostic carries a line:col prefix.
  EXPECT_NE(parseErr("{\"a\":}").find("1:6"), std::string::npos);
  parseErr("");
  parseErr("{");
  parseErr("[1,]");
  parseErr("{\"a\" 1}");
  parseErr("{\"a\":1,}");
  parseErr("\"unterminated");
  parseErr("\"bad escape \\x\"");
  parseErr("\"bad hex \\u00zz\"");
  parseErr("tru");
  parseErr("nul");
  parseErr("01x");
  parseErr("-");
  parseErr("1.e5"); // Digits required after the decimal point.
  parseErr("[1] trailing");
  parseErr("{\"a\":1} {}");
  // Raw control characters must be escaped.
  parseErr("\"a\nb\"");
  // Error positions track newlines.
  EXPECT_NE(parseErr("{\n  \"a\": oops\n}").find("2:8"), std::string::npos);
}

TEST(JsonParser, DepthLimit) {
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  EXPECT_NE(parseErr(Deep).find("depth"), std::string::npos);
  // 50 levels is comfortably inside the limit.
  std::string Ok(50, '[');
  Ok += std::string(50, ']');
  parseOk(Ok);
}

TEST(JsonParser, DuplicateKeysLastWins) {
  // The parser builds objects through set(), which replaces in place, so
  // a duplicate key keeps the later value at the original position.
  Value V = parseOk("{\"a\":1,\"a\":2,\"b\":3}");
  EXPECT_EQ(V["a"].asInt(), 2);
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(V.dump(false), "{\"a\":2,\"b\":3}");
}

TEST(JsonFile, WriteReadRoundTrip) {
  Value V = Value::object();
  V.set("answer", 42).set("text", "with \"quotes\"");
  std::string Path = ::testing::TempDir() + "/wcs_json_test.json";
  std::string Err;
  ASSERT_TRUE(json::writeFile(Path, V, &Err)) << Err;
  Value Back;
  ASSERT_TRUE(json::readFile(Path, Back, &Err)) << Err;
  EXPECT_EQ(Back, V);
}

TEST(JsonFile, ReadErrors) {
  Value V;
  std::string Err;
  EXPECT_FALSE(json::readFile("/nonexistent/wcs.json", V, &Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos);
}

} // namespace
