//===- wcs/sim/SimConfig.h - Simulation options -----------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Options shared by the simulators, and the engineering bounds of the
/// warping search. All bounds are soundness-neutral: exceeding them only
/// forfeits warping opportunities, never correctness (validated by the
/// warping == non-warping equivalence suite).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_SIMCONFIG_H
#define WCS_SIM_SIMCONFIG_H

#include <cstdint>

namespace wcs {

/// Bounds of the warping search (Algorithm 2).
struct WarpConfig {
  bool Enable = true;

  /// State keys are only computed for the first MaxProbeIters iterations
  /// of a loop activation. The window must cover the cold-start
  /// transient: periodic states only appear once the initial cache
  /// content has been flushed, which for a dense stream takes on the
  /// order of (cache lines) * (elements per block) iterations.
  unsigned MaxProbeIters = 4096;

  /// Snapshots are stored in a per-activation ring: when full, the
  /// oldest snapshot is overwritten (and its stored entry invalidated).
  /// Recycling makes cold-start transients harmless -- their useless
  /// snapshots age out -- while one matching snapshot suffices to warp
  /// the whole tail of a loop. Together with MinSnapshotSpacing, the
  /// ring covers the last SnapshotRingSize * MinSnapshotSpacing
  /// iterations, which should be at least MaxDelta.
  unsigned SnapshotRingSize = 64;

  /// Snapshots compared per state-key bucket.
  unsigned MaxSnapshotsPerBucket = 2;

  /// Minimum iteration distance between stored snapshots (global within
  /// an activation). State keys often recur at adjacent iterations (the
  /// key is deliberately insensitive to the warped iterator); spacing
  /// stretches the ring's reach and avoids copying near-duplicates.
  int64_t MinSnapshotSpacing = 16;

  /// Match distances above this cap are rejected outright when any
  /// access node's domain couples the warped iterator with inner
  /// dimensions (triangular bounds): the coupled FurthestByDomains path
  /// solves Fourier-Motzkin systems per residue class, so large deltas
  /// would make *failed* checks expensive. Rotating matches with large
  /// deltas only arise for uncoupled (rectangular) domains, which use
  /// the closed-form fast path.
  int64_t MaxDeltaForCoupledDomains = 32;

  /// Loops with at most this many iterations snapshot on the *first*
  /// occurrence of a key instead of the second. Short loops (outer time
  /// loops in particular) cannot afford to burn a whole state period on
  /// the two-phase discipline, and their snapshot volume is tiny.
  int64_t EagerSnapshotTripLimit = 128;

  /// Maximum match distance delta = x1 - x0 considered for warping.
  /// Under PLRU / Quad-age LRU the way-placement pattern of a dense
  /// stream can take several block periods to recur (empirically ~16
  /// blocks), so this must comfortably exceed
  /// (elements per block) * (a few way-placement cycles).
  int64_t MaxDelta = 512;

  /// A loop node stops probing after this many consecutive activations
  /// that probed at least MinProbesForLearning iterations without a
  /// single successful warp (keeps non-warping kernels near 1x cost).
  unsigned DisableAfterFailedActivations = 4;
  unsigned MinProbesForLearning = 32;

  /// Profit guard: after ProfitGuardActivations activations of a loop
  /// node, probing is disabled if the accesses saved by warping stay
  /// below the (access-equivalent) cost of probing and snapshotting.
  /// Loops that warp but with poor return (e.g. short inner loops whose
  /// pattern period is a large fraction of their trip count) then fall
  /// back to plain symbolic simulation.
  bool EnableProfitGuard = true;
  unsigned ProfitGuardActivations = 8;
};

/// Options shared by all simulators.
struct SimOptions {
  /// Include scalar (zero-dimensional) accesses. The paper's tool counts
  /// array accesses only (Sec. 6.4), so the default is off.
  bool IncludeScalars = false;

  /// Concrete backend: batched address generation. Innermost loops whose
  /// bodies are plain (unguarded, single-disjunct) affine accesses are
  /// lowered to stride-incremented address chunks handed to
  /// ConcreteHierarchy::accessBatch, instead of one tree-walk step and
  /// one hierarchy call per access. Counters are bit-identical either
  /// way (the equivalence suite runs both); off = the per-access
  /// reference walk, kept as the bench baseline and escape hatch.
  bool BatchConcrete = true;

  WarpConfig Warp;
};

} // namespace wcs

#endif // WCS_SIM_SIMCONFIG_H
