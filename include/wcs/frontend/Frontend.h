//===- wcs/frontend/Frontend.h - SCoP dialect entry point -------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the wcs frontend: parse a kernel written in
/// the C-like loop-nest dialect and lower it to a ScopProgram under a
/// concrete parameter binding. This plays the role of pet [63] in the
/// paper's toolchain.
///
/// The dialect (see the test suite for many examples):
/// \code
///   param N;                      // bound via the Params argument,
///   param M = 64;                 // optionally with a default
///   double A[N][M]; double x[M]; // arrays (double/float/long: 8/4/8 B)
///   double alpha;                 // scalars = 0-dim arrays
///
///   for (i = 0; i < N; i++) {     // stride +1/-1 and +=c/-=c loops
///     x[i] = 0.0;
///     if (i >= 1 && i < N - 1)    // affine guards, && conjunction
///       for (j = i; j < M; j--)   // affine (triangular) bounds
///         x[i] = x[i] + A[i][j] * alpha;
///   }
/// \endcode
///
/// Assignments `=`, `+=`, `-=`, `*=`, `/=` generate access nodes: a
/// compound assignment reads its left-hand side first, then the right-hand
/// side reads in source order, then writes the left-hand side; a plain
/// assignment skips the initial read. Calls (sqrt, min, max, ...) read
/// their array/scalar arguments. Array subscripts must be affine in the
/// loop iterators; loops with stride other than +-1 require bounds that
/// are constant under the parameter binding.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_FRONTEND_FRONTEND_H
#define WCS_FRONTEND_FRONTEND_H

#include "wcs/frontend/Lexer.h"
#include "wcs/scop/Program.h"

#include <map>
#include <string>

namespace wcs {

/// Result of parsing + lowering a kernel source.
struct ParseResult {
  ScopProgram Program;
  std::string Error; ///< Empty on success.
  SrcLoc ErrorLoc;

  bool ok() const { return Error.empty(); }
  /// "line L, column C: message" for diagnostics.
  std::string message() const;
};

/// Parses \p Source under the parameter binding \p Params, producing a
/// finalized ScopProgram named \p Name with array layout aligned to
/// \p AlignBytes.
ParseResult parseScop(const std::string &Source,
                      const std::map<std::string, int64_t> &Params = {},
                      const std::string &Name = "scop",
                      int64_t AlignBytes = 4096);

} // namespace wcs

#endif // WCS_FRONTEND_FRONTEND_H
