//===- tests/warp_engine_test.cpp - WarpEngine unit tests -----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Direct unit tests of the warp-detection machinery: rotation-invariant
// state keys (Theorem 3 / Sec. 5.3), the per-loop delta unit, and the
// rejection behavior of checkWarp on hand-constructed near-matches.
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Frontend.h"
#include "wcs/sim/SymbolicCache.h"
#include "wcs/sim/WarpEngine.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

/// A dense 1D sweep reading A[i-1], A[i] and writing B[i].
ScopProgram sweepProgram(unsigned ElemBytes = 8) {
  std::string Elem = ElemBytes == 8 ? "double" : "int";
  std::string Src = "param N = 4096;\n" + Elem + " A[N]; " + Elem +
                    " B[N];\n"
                    "for (i = 1; i < N; i++)\n"
                    "  B[i] = A[i-1] + A[i];\n";
  ParseResult R = parseScop(Src);
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(R.Program);
}

HierarchyConfig l1Only(unsigned Sets, unsigned Assoc, PolicyKind K) {
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = Assoc;
  C.SizeBytes = static_cast<uint64_t>(Sets) * Assoc * 64;
  C.Policy = K;
  return HierarchyConfig::singleLevel(C);
}

/// Runs the sweep body for iterations [From, To) on \p Cache.
void runSweep(const ScopProgram &P, SymbolicHierarchy &Cache, int64_t From,
              int64_t To) {
  const LoopNode *L = P.loops()[0];
  IterVec Iter{0};
  for (int64_t X = From; X < To; ++X) {
    Iter[0] = X;
    for (const std::unique_ptr<Node> &C : L->Children) {
      const AccessNode *A = asAccess(C.get());
      Cache.access(A->Address.eval(Iter) >> 6, A->isWrite(), A->Id, Iter);
    }
  }
}

TEST(WarpEngine, DeltaUnitReflectsBlockDivisibility) {
  SimOptions O;
  // 8-byte elements, unit coefficient: delta must be a multiple of 8.
  {
    ScopProgram P = sweepProgram(8);
    HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
    WarpEngine E(P, H, O);
    EXPECT_EQ(E.deltaUnit(P.loops()[0]), 8);
  }
  // 4-byte elements: multiples of 16.
  {
    ScopProgram P = sweepProgram(4);
    HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
    WarpEngine E(P, H, O);
    EXPECT_EQ(E.deltaUnit(P.loops()[0]), 16);
  }
  // Iterator-independent accesses put no constraint on delta; the time
  // loop of a stencil therefore has unit 1.
  {
    ParseResult R = parseScop(R"(
      param T = 10; param N = 256;
      double A[N];
      for (t = 0; t < T; t++)
        for (i = 0; i < N; i++)
          A[i] = A[i] * 2.0;
    )");
    ASSERT_TRUE(R.ok());
    HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
    WarpEngine E(R.Program, H, O);
    EXPECT_EQ(E.deltaUnit(R.Program.loops()[0]), 1) << "time loop";
    EXPECT_EQ(E.deltaUnit(R.Program.loops()[1]), 8) << "sweep loop";
  }
}

TEST(WarpEngine, StateKeyIsInvariantUnderRotatingProgress) {
  // After the cold-start transient, the sweep's symbolic state repeats
  // (up to set rotation) every `unit` iterations; keys must collide
  // exactly then.
  ScopProgram P = sweepProgram(8);
  HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
  SimOptions O;
  WarpEngine E(P, H, O);
  SymbolicHierarchy Cache(H);
  WarpScope S;
  S.Loop = P.loops()[0];
  S.Hi = 4095;

  runSweep(P, Cache, 1, 601); // Past the transient.
  uint64_t K0 = E.stateKey(Cache, S);
  runSweep(P, Cache, 601, 605);
  uint64_t KMid = E.stateKey(Cache, S);
  runSweep(P, Cache, 605, 609);
  uint64_t K1 = E.stateKey(Cache, S);
  EXPECT_EQ(K0, K1) << "one full block period (8 iterations) apart";
  EXPECT_EQ(K0, KMid) << "the key deliberately ignores the warped "
                         "iterator, so mid-period states collide too "
                         "(verification rejects them)";
}

TEST(WarpEngine, CheckWarpAcceptsTheRotatingMatch) {
  ScopProgram P = sweepProgram(8);
  HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
  SimOptions O;
  WarpEngine E(P, H, O);
  SymbolicHierarchy Cache(H);
  WarpScope S;
  S.Loop = P.loops()[0];
  S.Hi = 4095;

  runSweep(P, Cache, 1, 601);
  SymbolicHierarchy Snapshot = Cache; // State at x = 601.
  runSweep(P, Cache, 601, 609);       // State at x = 609: delta = 8.

  WarpPlan Plan;
  ASSERT_TRUE(E.checkWarp(Snapshot, Cache, S, 601, 609, Plan));
  EXPECT_EQ(Plan.Delta, 8);
  EXPECT_EQ(Plan.Rot[0], 1) << "8 iterations advance one 64-byte block "
                               "= one cache set";
  // The loop ends at 4095; everything up to it is conflict-free.
  EXPECT_EQ(Plan.N, (4096 - 609) / 8);
}

TEST(WarpEngine, CheckWarpRejectsOffPeriodAndPerturbedStates) {
  ScopProgram P = sweepProgram(8);
  HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
  SimOptions O;
  WarpEngine E(P, H, O);
  SymbolicHierarchy Cache(H);
  WarpScope S;
  S.Loop = P.loops()[0];
  S.Hi = 4095;

  runSweep(P, Cache, 1, 601);
  SymbolicHierarchy Snapshot = Cache;

  // Off-period delta: the induced block mapping is not functional.
  runSweep(P, Cache, 601, 606);
  WarpPlan Plan;
  EXPECT_FALSE(E.checkWarp(Snapshot, Cache, S, 601, 606, Plan))
      << "delta = 5 is not a multiple of the block period";

  // Complete the period but perturb one line's block: pi would not be
  // consistent.
  runSweep(P, Cache, 606, 609);
  SymbolicHierarchy Broken = Cache;
  // Same set, wrong block.
  Broken.level(0).setBlockAt(3, 0, Broken.level(0).blockAt(3, 0) + 8);
  EXPECT_FALSE(E.checkWarp(Snapshot, Broken, S, 601, 609, Plan));

  // Sanity: the unperturbed state still matches.
  EXPECT_TRUE(E.checkWarp(Snapshot, Cache, S, 601, 609, Plan));
}

TEST(WarpEngine, CheckWarpRespectsDomainBoundaries) {
  // The access is guarded off beyond i = 2000; a match at x ~ 600 may
  // only warp up to the guard boundary.
  ParseResult R = parseScop(R"(
    param N = 4096;
    double A[N]; double B[N];
    for (i = 1; i < N; i++) {
      B[i] = A[i-1] + A[i];
      if (i < 2000)
        B[i] = B[i] + A[i];
    }
  )");
  ASSERT_TRUE(R.ok()) << R.message();
  const ScopProgram &P = R.Program;
  HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
  SimOptions O;
  WarpEngine E(P, H, O);
  SymbolicHierarchy Cache(H);
  WarpScope S;
  S.Loop = P.loops()[0];
  S.Hi = 4095;

  const LoopNode *L = P.loops()[0];
  IterVec Iter{0};
  auto Step = [&](int64_t X) {
    Iter[0] = X;
    for (const std::unique_ptr<Node> &C : L->Children) {
      const AccessNode *A = asAccess(C.get());
      if (A->Guarded && !A->Domain.contains(Iter))
        continue;
      Cache.access(A->Address.eval(Iter) >> 6, A->isWrite(), A->Id, Iter);
    }
  };
  for (int64_t X = 1; X < 601; ++X)
    Step(X);
  SymbolicHierarchy Snapshot = Cache;
  for (int64_t X = 601; X < 609; ++X)
    Step(X);

  WarpPlan Plan;
  ASSERT_TRUE(E.checkWarp(Snapshot, Cache, S, 601, 609, Plan));
  // FurthestByDomains: the guarded access disappears at i = 2000, so
  // the warp may cover iterations [609, 2000) at most.
  EXPECT_LE(609 + Plan.N * Plan.Delta, 2000);
  EXPECT_GE(609 + Plan.N * Plan.Delta, 2000 - 8) << "but it should get "
                                                    "right up to the "
                                                    "boundary";
}

TEST(WarpEngine, ApplyWarpRotatesAndReconcretizes) {
  ScopProgram P = sweepProgram(8);
  HierarchyConfig H = l1Only(8, 2, PolicyKind::Lru);
  SimOptions O;
  WarpEngine E(P, H, O);
  SymbolicHierarchy Cache(H);
  WarpScope S;
  S.Loop = P.loops()[0];
  S.Hi = 4095;

  runSweep(P, Cache, 1, 601);
  SymbolicHierarchy Snapshot = Cache;
  runSweep(P, Cache, 601, 609);
  WarpPlan Plan;
  ASSERT_TRUE(E.checkWarp(Snapshot, Cache, S, 601, 609, Plan));
  E.applyWarp(Cache, S, Plan);

  // Reference: simulate the same span explicitly.
  SymbolicHierarchy Ref = Snapshot;
  runSweep(P, Ref, 601, 609 + Plan.N * Plan.Delta);
  for (unsigned Set = 0; Set < 8; ++Set)
    for (unsigned Way = 0; Way < 2; ++Way) {
      EXPECT_EQ(Cache.level(0).blockAt(Set, Way),
                Ref.level(0).blockAt(Set, Way))
          << "set " << Set << " way " << Way;
    }
  EXPECT_EQ(Cache.level(0).mraSet(), Ref.level(0).mraSet());
}

} // namespace
