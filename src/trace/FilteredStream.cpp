//===- trace/FilteredStream.cpp -------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/FilteredStream.h"

#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace wcs;

namespace {

/// Thrown by the recording tap to abort the simulation once MaxRecords
/// is exceeded: the stream is useless from that point on, so finishing
/// the walk would only burn the time the fallback simulation needs.
struct RecordCapExceeded {};

/// Compression tuning: a run is folded only when it repeats at least
/// MinFoldReps times and covers at least MinFoldRecords records (tiny
/// runs fragment the segment list for no memory win). Two repetitions
/// already halve the storage -- and at the recording cap the stream may
/// hold no more than two copies of a long period, so demanding more
/// would truncate streams the continuation fold could still save. Both
/// thresholds only trade compression ratio for segment-list size;
/// folding is exact regardless.
constexpr uint64_t MinFoldReps = 2;
constexpr uint64_t MinFoldRecords = 64;

/// Replay walks at most this many repetitions of a folded segment while
/// probing for a state recurrence before giving up and walking the rest
/// (FIFO insertion orders, for example, can cycle with a longer period
/// than the stream's).
constexpr unsigned MaxReplayStateChecks = 8;

} // namespace

void FilteredStream::appendRecord(const FilteredRecord &R) {
  if (Segments.empty() || Segments.back().Reps != 1 ||
      Segments.back().Offset + Segments.back().Len != Records.size())
    Segments.push_back(FilteredSegment{Records.size(), 0, 1});
  Records.push_back(R);
  ++Segments.back().Len;
  ++Expanded;
}

size_t FilteredStream::compressTail() {
  // Only the trailing literal segment is uncompressed; earlier segments
  // were already folded by a previous pass.
  if (Segments.empty() || Segments.back().Reps != 1)
    return 0;
  const size_t Base = Segments.back().Offset;
  size_t FreedByContinuation = 0;
  // Continuation fold: when the tail keeps repeating the PREVIOUS
  // periodic segment's template (a long run interrupted mid-period by
  // an earlier compression at the cap), fold those copies into that
  // segment directly. Without this, each cap overflow would start a
  // fresh template and a tail shorter than two periods could never
  // fold again.
  if (Segments.size() >= 2) {
    const FilteredSegment &Prev = Segments[Segments.size() - 2];
    if (Prev.Reps > 1 && Prev.Offset + Prev.Len == Base) {
      const size_t P = static_cast<size_t>(Prev.Len);
      size_t K = 0;
      while ((K + 1) * P <= Records.size() - Base &&
             std::equal(Records.begin() + Base + K * P,
                        Records.begin() + Base + (K + 1) * P,
                        Records.begin() + Prev.Offset))
        ++K;
      if (K > 0) {
        Segments[Segments.size() - 2].Reps += K;
        Records.erase(Records.begin() + Base,
                      Records.begin() + Base + K * P);
        Segments.back().Len -= K * P;
        FreedByContinuation = K * P;
        if (Segments.back().Len == 0)
          Segments.pop_back();
      }
    }
  }
  if (Segments.empty() || Segments.back().Reps != 1)
    return FreedByContinuation;
  const size_t N = Records.size() - Base;
  if (N < MinFoldRecords)
    return FreedByContinuation;
  auto Rec = [&](size_t I) -> const FilteredRecord & {
    return Records[Base + I];
  };
  // Candidate periods come from the previous occurrence of the current
  // record (for the miss streams of loop nests, one period back); every
  // candidate run is then verified by verbatim comparison, so a wrong
  // candidate costs time, never exactness. The comparison budget keeps
  // the scan O(N) even on adversarial streams -- when it runs out, the
  // remainder simply stays literal.
  auto Key = [](const FilteredRecord &R) {
    return (static_cast<uint64_t>(R.Block) << 1) | (R.IsWrite ? 1u : 0u);
  };
  std::unordered_map<uint64_t, size_t> LastPos;
  LastPos.reserve(N);
  struct RelSeg {
    size_t Off;
    uint64_t Len;
    uint64_t Reps;
  };
  std::vector<RelSeg> Out;
  uint64_t Budget = 4 * static_cast<uint64_t>(N);
  size_t I = 0, LitStart = 0;
  while (I < N) {
    size_t P = 0;
    auto It = LastPos.find(Key(Rec(I)));
    // The run template is [I - P, I); it must lie inside the pending
    // literal region, not in an already-emitted segment.
    if (It != LastPos.end() && It->second >= LitStart)
      P = I - It->second;
    LastPos[Key(Rec(I))] = I;
    if (P != 0 && Budget != 0) {
      size_t Q = 0;
      while (I + Q < N && Budget != 0 && Rec(I + Q) == Rec(I + Q - P)) {
        ++Q;
        --Budget;
      }
      // Rec(X) == Rec(X - P) throughout [I, I + Q): the range
      // [I - P, I + Q) is periodic with period P, i.e. the template
      // repeats 1 + Q/P full times (a trailing partial period stays
      // literal).
      uint64_t Reps = 1 + Q / P;
      if (Reps >= MinFoldReps && Reps * P >= MinFoldRecords) {
        if (I - P > LitStart)
          Out.push_back(RelSeg{LitStart, I - P - LitStart, 1});
        Out.push_back(RelSeg{I - P, P, Reps});
        I += (Reps - 1) * P;
        LitStart = I;
        continue;
      }
    }
    ++I;
  }
  bool Folded = false;
  for (const RelSeg &S : Out)
    Folded |= S.Reps > 1;
  if (!Folded)
    return FreedByContinuation;
  if (LitStart < N)
    Out.push_back(RelSeg{LitStart, N - LitStart, 1});

  // Compact the stored tail: keep one template copy per segment.
  std::vector<FilteredRecord> Kept;
  Segments.pop_back();
  for (const RelSeg &S : Out) {
    Segments.push_back(
        FilteredSegment{Base + Kept.size(), S.Len, S.Reps});
    Kept.insert(Kept.end(), Records.begin() + Base + S.Off,
                Records.begin() + Base + S.Off + S.Len);
  }
  size_t FreedRecords = N - Kept.size();
  Records.resize(Base);
  Records.insert(Records.end(), Kept.begin(), Kept.end());
  return FreedRecords + FreedByContinuation;
}

FilteredStream FilteredStream::record(const ScopProgram &Program,
                                      const CacheConfig &L1,
                                      const SimOptions &Opts,
                                      uint64_t MaxRecords) {
  FilteredStream FS;
  FS.L1 = L1;
  telemetry::TimePoint T0 = telemetry::now();
  ConcreteSimulator Sim(Program, HierarchyConfig::singleLevel(L1), Opts);
  // A miss tap (not a full tap) keeps the recording run on the batched
  // concrete hot loop: hits never surface, and misses are exactly what
  // the record holds.
  Sim.setMissTap([&FS, MaxRecords](BlockId B, bool IsWrite) {
    if (MaxRecords != 0 && FS.Records.size() >= MaxRecords) {
      // Fold periodic repetitions before giving up on the cap -- and
      // demand real headroom from the fold: anything less would
      // re-trigger compression every few records and turn the
      // recording quadratic.
      size_t Freed = FS.compressTail();
      if (Freed < MaxRecords / 4 || FS.Records.size() >= MaxRecords)
        throw RecordCapExceeded{};
    }
    FS.appendRecord(FilteredRecord{B, IsWrite});
  });
  try {
    SimStats S = Sim.run();
    FS.L1Stats = S.Level[0];
    // Final fold: cheap (one linear scan of the uncompressed tail) and
    // it puts every later feed/replay on the periodic fast path.
    FS.compressTail();
    assert(FS.L1Stats.Misses == FS.size() &&
           "every L1 miss must be recorded");
  } catch (const RecordCapExceeded &) {
    FS.Truncated = true;
    FS.Expanded = 0;
    FS.Records.clear();
    FS.Records.shrink_to_fit();
    FS.Segments.clear();
    FS.Segments.shrink_to_fit();
  }
  FS.Seconds = telemetry::secondsSince(T0);
  return FS;
}

bool FilteredStream::answersHierarchy(const HierarchyConfig &H,
                                      std::string *Why) const {
  auto Fail = [&](const char *Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Truncated)
    return Fail("stream recording was truncated");
  if (H.numLevels() != 2)
    return Fail("filtered streams answer two-level hierarchies only");
  if (H.Inclusion != InclusionPolicy::NonInclusiveNonExclusive)
    return Fail("inclusive/exclusive L2s couple back into the L1; only "
                "NINE hierarchies share L1-filtered streams");
  if (!(H.Levels.front() == L1))
    return Fail("hierarchy L1 differs from the recorded L1");
  return true;
}

void FilteredStream::feed(SetDistanceBank &Bank) const {
  assert(!Truncated && "cannot condition a bank on a truncated stream");
  assert(Bank.blockBytes() == L1.BlockBytes &&
         "bank block size must equal the recorded L1's");
  for (const FilteredSegment &S : Segments) {
    auto Walk = [&] {
      for (uint64_t I = 0; I < S.Len; ++I)
        Bank.accessBlock(Records[S.Offset + I].Block);
    };
    if (S.Reps <= 2) {
      for (uint64_t R = 0; R < S.Reps; ++R)
        Walk();
      continue;
    }
    // Repetition 1 enters from whatever state the stream prefix left;
    // repetition 2 is the stationary one whose increments every later
    // repetition copies (see the periodic-bulk-update comment in
    // StackDistance.h). Capture it and apply the rest analytically.
    Walk();
    Bank.beginPeriodCapture();
    Walk();
    DistanceHistogram H = Bank.endPeriodCapture();
    if (H.Colds != 0 || !Bank.addPeriodicContribution(H, S.Reps - 2)) {
      // A repetition of an identical block sequence cannot touch a new
      // block, so a cold here falsifies the period hypothesis. It is
      // unreachable for verbatim RLE segments, but the check is the
      // verification discipline: reject and fall back to walking. The
      // same fallback covers a bulk update the bank rejects because the
      // scaled counters would overflow (the walked path increments by
      // one per access and cannot).
      for (uint64_t R = 2; R < S.Reps; ++R)
        Walk();
      continue;
    }
  }
}

SimStats FilteredStream::replay(const CacheConfig &L2) const {
  assert(!Truncated && "cannot replay a truncated stream");
  assert(L2.BlockBytes == L1.BlockBytes &&
         "levels of a hierarchy share one block size");
  telemetry::TimePoint T0 = telemetry::now();
  SimStats S;
  S.NumLevels = 2;
  S.Level[0] = L1Stats;
  S.Level[1].Accesses = Expanded;
  ConcreteCache Cache(L2);
  uint64_t Misses = 0, Walked = 0;
  // Mirror of ConcreteHierarchy's NINE L2 leg: the L2 sees the same
  // block, allocating unless a write miss under no-write-allocate.
  auto WalkOnce = [&](const FilteredSegment &Seg) {
    for (uint64_t I = 0; I < Seg.Len; ++I) {
      const FilteredRecord &R = Records[Seg.Offset + I];
      bool Alloc = !(R.IsWrite && L2.WriteAlloc == WriteAllocate::No);
      AccessOutcome O = Cache.access(R.Block, Alloc);
      if (!O.Hit)
        ++Misses;
    }
    Walked += Seg.Len;
  };
  for (const FilteredSegment &Seg : Segments) {
    if (Seg.Reps == 1) {
      WalkOnce(Seg);
      continue;
    }
    // Walk repetitions until the L2 state maps onto itself across one
    // repetition. From a fixed point, every further repetition
    // reproduces the same misses (same input from the same state), so
    // the remainder is applied analytically. If the state never recurs
    // within the probe limit, walk everything -- the sound fallback.
    uint64_t Done = 0;
    WalkOnce(Seg);
    ++Done;
    unsigned Checks = 0;
    ConcreteCache Prev = Cache;
    while (Done < Seg.Reps) {
      uint64_t M0 = Misses;
      WalkOnce(Seg);
      ++Done;
      uint64_t PerRep = Misses - M0;
      if (Cache.stateEquals(Prev)) {
        Misses += PerRep * (Seg.Reps - Done);
        break;
      }
      if (++Checks >= MaxReplayStateChecks) {
        while (Done < Seg.Reps) {
          WalkOnce(Seg);
          ++Done;
        }
        break;
      }
      Prev = Cache;
    }
  }
  S.Level[1].Misses = Misses;
  // Records actually walked; repetitions answered from a recurred state
  // are analytic work, like warped accesses elsewhere.
  S.SimulatedAccesses = Walked;
  S.Seconds = telemetry::secondsSince(T0);
  return S;
}
