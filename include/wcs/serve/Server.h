//===- wcs/serve/Server.h - The wcs-serve daemon ----------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving core behind tools/wcs-serve: serveSweepRequest() answers
/// one wcs-request against a ResultStore -- store hits return their
/// stored SweepPoint verbatim under method "store" provenance, misses
/// are sharded through the existing runSweep machinery (which itself
/// partitions them across the stack-distance / filtered-stream /
/// simulated fast paths) and the fresh results are inserted back.
/// runServer() wraps the same semantics in a concurrent accept loop
/// speaking serve/Protocol: one thread per connection, every request
/// admitted to one shared serve/Scheduler (cross-request point dedup,
/// fair round-robin, disconnect cancellation). serveSweepRequest stays
/// as the SERIAL REFERENCE implementation of one request's semantics;
/// the tests drive it directly and through the socket, and both must
/// agree bit-for-bit on counters and provenance.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SERVE_SERVER_H
#define WCS_SERVE_SERVER_H

#include "wcs/serve/Protocol.h"
#include "wcs/serve/ResultStore.h"

#include <functional>
#include <string>

namespace wcs {

/// Serves one request: prepare, look every expanded point up in
/// \p Store, run the misses through runSweep with \p Threads workers,
/// insert the fresh Ok points, and package everything as a
/// wcs-response. Store hits keep their stored counters bit-identical
/// and are re-labeled method "store"; failed points are never stored.
/// \p OnProgress (may be null) fires once per point in input order.
/// Malformed requests come back as Ok=false responses, never as a
/// transport error.
SweepResponse
serveSweepRequest(const SweepRequest &Req, ResultStore &Store,
                  unsigned Threads,
                  const std::function<void(const ProgressEvent &)>
                      &OnProgress);

struct ServerOptions {
  std::string SocketPath;
  std::string StorePath; ///< Empty = in-memory store.
  /// Scheduler worker threads, shared by ALL connections (0 = all
  /// cores). The machine's parallelism budget stays in one place no
  /// matter how many clients are connected.
  unsigned Threads = 0;
  /// Connections served at once; further clients wait in the listen
  /// backlog until a slot frees. 0 = unlimited.
  unsigned MaxConnections = 8;
  /// JSON-lines request log: one compact object per served request
  /// (hash, point counts, hit/miss split, queue wait, compute and wall
  /// time, outcome), appended as each request finishes. Empty = off.
  std::string LogPath;
  /// Socket timeout (SO_RCVTIMEO/SO_SNDTIMEO) armed on every accepted
  /// connection: a client that never sends a complete request line, or
  /// stops draining its progress stream, is disconnected after this
  /// many seconds instead of parking a connection slot forever. 0 =
  /// no timeout (the pre-hardening behaviour).
  double IoTimeoutSeconds = 30.0;
  /// Graceful-shutdown budget: once the accept loop stops (SIGTERM/
  /// SIGINT or the wcs-control shutdown command), in-flight requests
  /// get this long to finish; past it they are cancelled like client
  /// disconnects so the daemon can exit. 0 = drain without a bound.
  double DrainTimeoutSeconds = 0.0;
  /// Scheduler admission cap, in queued-to-compute points (see
  /// Scheduler): over-cap requests are answered Error="overloaded"
  /// with a retry_after_seconds hint. 0 = unbounded.
  uint64_t MaxQueuedPoints = 0;
  /// Install SIGTERM/SIGINT handlers that stop accepting and drain
  /// (restored on return). The wcs-serve tool turns this on; it stays
  /// off by default because process-wide signal dispositions do not
  /// belong in library code (gtest processes own theirs).
  bool HandleSignals = false;
};

/// The daemon: open the store, start the shared scheduler, listen, and
/// serve up to MaxConnections connections concurrently -- one thread
/// per connection, every request admitted to the one scheduler so
/// overlapping grids from simultaneous clients compute each shared
/// point once. A client that disconnects mid-request has its unshared
/// queued jobs cancelled. Exits cleanly on a wcs-control shutdown
/// (in-flight requests drain first); a wcs-control "status" line
/// answers with scheduler/store/connection counters. Diagnostics on
/// stderr only; nothing is ever written to stdout. \p OnReady (may be
/// null) fires once the socket is accepting -- tests use it instead of
/// polling. Returns false with \p Err on setup failure.
bool runServer(const ServerOptions &Opts,
               const std::function<void()> &OnReady, std::string *Err);

} // namespace wcs

#endif // WCS_SERVE_SERVER_H
