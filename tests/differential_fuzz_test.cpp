//===- tests/differential_fuzz_test.cpp - Randomized differential net -----===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Seeded randomized differential harness: random programs x random
// hierarchies x all four replacement policies, driven through every
// backend and every sweep flavor, all required to agree bit for bit.
// This is the bug-finding net under the SoA/policy-template hot-loop
// refactor (and under any future change to the simulation floor): the
// scalar concrete walk, the batched walk, the warping simulator, the
// trace simulator and the sweep fast paths are independent
// implementations of the same semantics, so any divergence is a bug in
// one of them.
//
// The default iteration count keeps the suite in the sub-second range;
// set WCS_FUZZ_ITERS for longer local runs (the seed stays fixed, so a
// failure reproduces from the test name + iteration count alone).
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/driver/BatchRunner.h"
#include "wcs/driver/Sweep.h"
#include "wcs/sim/ConcreteSimulator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using namespace wcs;
using testutil::generateProgram;
using testutil::randomHierarchy;

namespace {

constexpr PolicyKind kPolicies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                    PolicyKind::Plru,
                                    PolicyKind::QuadAgeLru};

/// Iterations per fuzz test: WCS_FUZZ_ITERS when set, else a default
/// small enough for the suite to stay in the default ctest budget.
unsigned fuzzIters() {
  if (const char *Env = std::getenv("WCS_FUZZ_ITERS")) {
    unsigned V = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
    if (V != 0)
      return V;
  }
  return 20;
}

void expectStatsEqual(const SimStats &A, const SimStats &B,
                      const std::string &Ctx) {
  ASSERT_EQ(A.NumLevels, B.NumLevels) << Ctx;
  EXPECT_EQ(A.totalAccesses(), B.totalAccesses()) << Ctx;
  for (unsigned L = 0; L < A.NumLevels; ++L) {
    EXPECT_EQ(A.Level[L].Accesses, B.Level[L].Accesses)
        << Ctx << " level " << L;
    EXPECT_EQ(A.Level[L].Misses, B.Level[L].Misses)
        << Ctx << " level " << L;
  }
}

/// The batched concrete walk (SoA hot loop, per-chunk policy and
/// associativity dispatch, duplicate-block fast path) is an optimization
/// of the scalar walk and must be invisible in every counter.
TEST(DifferentialFuzz, BatchedConcreteMatchesScalarAllPolicies) {
  std::mt19937 Rng(0xC0FFEE);
  const unsigned Iters = fuzzIters();
  for (unsigned I = 0; I < Iters; ++I) {
    ScopProgram P = generateProgram(Rng);
    for (PolicyKind K : kPolicies)
      for (bool TwoLevel : {false, true}) {
        HierarchyConfig H = randomHierarchy(Rng, K, TwoLevel);
        SimOptions Scalar;
        Scalar.BatchConcrete = false;
        SimStats A = ConcreteSimulator(P, H, Scalar).run();
        SimStats B = ConcreteSimulator(P, H).run();
        expectStatsEqual(A, B,
                         "iter " + std::to_string(I) + " " + H.str());
      }
  }
}

/// Warping, concrete and trace backends (plus stack-distance where it
/// applies) are independent models of the same hierarchy semantics.
TEST(DifferentialFuzz, BackendsAgreeAcrossRandomHierarchies) {
  std::mt19937 Rng(0xBEEF);
  const unsigned Iters = fuzzIters();
  for (unsigned I = 0; I < Iters; ++I) {
    ScopProgram P = generateProgram(Rng);
    for (PolicyKind K : kPolicies) {
      HierarchyConfig H =
          randomHierarchy(Rng, K, /*TwoLevel=*/(I % 2) == 1);
      std::string Ctx = "iter " + std::to_string(I) + " " + H.str();
      BatchJob J;
      J.Program = &P;
      J.Cache = H;
      BatchResult Ref;
      for (SimBackend BE :
           {SimBackend::Concrete, SimBackend::Warping, SimBackend::Trace}) {
        J.Backend = BE;
        BatchResult R = BatchRunner::runJob(J);
        ASSERT_TRUE(R.Ok) << Ctx << ": " << R.Error;
        if (BE == SimBackend::Concrete) {
          Ref = R;
          continue;
        }
        expectStatsEqual(Ref.Stats, R.Stats,
                         Ctx + " backend " + backendName(BE));
      }
      if (H.numLevels() == 1 && K == PolicyKind::Lru &&
          H.Levels.front().WriteAlloc == WriteAllocate::Yes) {
        J.Backend = SimBackend::StackDistance;
        BatchResult R = BatchRunner::runJob(J);
        ASSERT_TRUE(R.Ok) << Ctx << ": " << R.Error;
        EXPECT_EQ(Ref.Stats.Level[0].Misses, R.Stats.Level[0].Misses)
            << Ctx << " stack-distance";
      }
    }
  }
}

/// All three sweep flavors -- auto, forced-periodic (warp-aware shared
/// pass) and forced-linear -- must answer every grid point with the
/// exact counters an independent concrete simulation produces.
TEST(DifferentialFuzz, SweepFlavorsBitIdentical) {
  std::mt19937 Rng(0xD15EA5E);
  const unsigned Iters = fuzzIters();
  for (unsigned I = 0; I < Iters; ++I) {
    ScopProgram P = generateProgram(Rng);
    std::vector<HierarchyConfig> Grid;
    for (PolicyKind K : kPolicies)
      Grid.push_back(randomHierarchy(Rng, K, /*TwoLevel=*/(I % 2) == 0));
    // A few single-level LRU capacity points keep the stack-distance
    // fast path in every run.
    for (unsigned Assoc : {1u, 4u})
      Grid.push_back(HierarchyConfig::singleLevel(CacheConfig{
          Assoc * 4 * 64, Assoc, 64, PolicyKind::Lru, WriteAllocate::Yes}));

    SweepOptions Auto;
    SweepOptions Periodic;
    Periodic.WarpSweep = true;
    Periodic.WarpSweepMinAccesses = 0; // Always take the periodic pass.
    SweepOptions Linear;
    Linear.WarpSweep = false;
    const SweepReport Reports[] = {runSweep(P, Grid, Auto),
                                   runSweep(P, Grid, Periodic),
                                   runSweep(P, Grid, Linear)};
    for (const SweepReport &Rep : Reports)
      ASSERT_EQ(Rep.Points.size(), Grid.size());
    for (size_t G = 0; G < Grid.size(); ++G) {
      std::string Ctx =
          "iter " + std::to_string(I) + " " + Grid[G].str();
      SimStats Ref = ConcreteSimulator(P, Grid[G]).run();
      for (const SweepReport &Rep : Reports) {
        const SweepPoint &Pt = Rep.Points[G];
        ASSERT_TRUE(Pt.Ok) << Ctx << ": " << Pt.Error;
        ASSERT_EQ(Pt.Stats.NumLevels, Ref.NumLevels) << Ctx;
        for (unsigned L = 0; L < Ref.NumLevels; ++L) {
          EXPECT_EQ(Pt.Stats.Level[L].Accesses, Ref.Level[L].Accesses)
              << Ctx << " level " << L << " ("
              << sweepMethodName(Pt.Method) << ")";
          EXPECT_EQ(Pt.Stats.Level[L].Misses, Ref.Level[L].Misses)
              << Ctx << " level " << L << " ("
              << sweepMethodName(Pt.Method) << ")";
        }
      }
    }
  }
}

} // namespace
