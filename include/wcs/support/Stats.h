//===- wcs/support/Stats.h - Small statistics helpers -----------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The geometric mean — the project's headline statistic for speedup
/// ratios (paper Figs. 6-12) — and the mean/stddev accumulator behind
/// wcs-bench --reps / wcs-report's noise-aware time gate. One
/// definition shared by the figure harnesses, wcs-bench and
/// wcs-report, so the reported numbers can never drift between
/// producers and the regression gate.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_STATS_H
#define WCS_SUPPORT_STATS_H

#include <cmath>

namespace wcs {

/// Accumulates log-space and reports exp(mean(log)). Non-positive
/// samples are skipped (a ratio of 0 would collapse the product);
/// value() is 0.0 when no sample was accepted — callers wanting a
/// neutral 1.0 for "nothing compared" must check count().
class GeoMean {
public:
  void add(double V) {
    if (V <= 0)
      return;
    LogSum += std::log(V);
    ++N;
  }

  double value() const { return N == 0 ? 0.0 : std::exp(LogSum / N); }
  unsigned count() const { return N; }

private:
  double LogSum = 0.0;
  unsigned N = 0;
};

/// Streaming mean / sample standard deviation (Welford's algorithm, so
/// long sample runs do not lose precision to catastrophic cancellation).
/// stddev() is the n-1 sample estimator, 0.0 below two samples;
/// stderror() is stddev()/sqrt(n), the noise of the MEAN itself, which
/// is what a repetition-aware regression gate must compare against.
class MeanStddev {
public:
  void add(double V) {
    ++N;
    double Delta = V - Mean;
    Mean += Delta / N;
    M2 += Delta * (V - Mean);
  }

  double mean() const { return N == 0 ? 0.0 : Mean; }
  double stddev() const {
    return N < 2 ? 0.0 : std::sqrt(M2 / (N - 1));
  }
  double stderror() const {
    return N < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(N));
  }
  unsigned count() const { return N; }

private:
  double Mean = 0.0;
  double M2 = 0.0;
  unsigned N = 0;
};

} // namespace wcs

#endif // WCS_SUPPORT_STATS_H
