//===- tests/batch_runner_test.cpp - Parallel batch determinism -----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The contract of the batch driver: per-job counters are bit-identical
// for any worker-thread count and schedule, results arrive in job order,
// the three backends agree on hit/miss classification, and job-level
// failures are reported without poisoning the batch.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/driver/BatchRunner.h"
#include "wcs/polybench/Polybench.h"
#include "wcs/sim/ConcreteSimulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <random>
#include <stdexcept>

using namespace wcs;
using testutil::generateProgram;
using testutil::randomHierarchy;

namespace {

/// A randomized work list over all policies, both hierarchy depths and
/// all three backends. Programs are owned by the fixture and shared by
/// pointer, as in production use.
struct RandomBatch {
  std::vector<ScopProgram> Programs;
  std::vector<BatchJob> Jobs;

  explicit RandomBatch(unsigned Seed, unsigned NumJobs) {
    std::mt19937 Rng(Seed);
    auto Rand = [&](int Lo, int Hi) {
      return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
    };
    const PolicyKind Policies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                   PolicyKind::Plru, PolicyKind::QuadAgeLru};
    Programs.reserve(NumJobs); // Stable addresses for Job.Program.
    for (unsigned I = 0; I < NumJobs; ++I) {
      Programs.push_back(generateProgram(Rng));
      BatchJob J;
      J.Program = &Programs.back();
      J.Cache = randomHierarchy(Rng, Policies[Rand(0, 3)], Rand(0, 1) == 1);
      J.Backend = static_cast<SimBackend>(Rand(0, 2));
      J.Tag = "job" + std::to_string(I);
      Jobs.push_back(std::move(J));
    }
  }
};

/// Strips the fields that legitimately vary between runs (wall-clock)
/// down to the deterministic counter tuple.
std::vector<uint64_t> counterKey(const BatchReport &Rep) {
  std::vector<uint64_t> Key;
  for (const BatchResult &R : Rep.Results) {
    Key.push_back(R.Ok);
    Key.push_back(R.JobIndex);
    const SimStats &S = R.Stats;
    Key.push_back(S.NumLevels);
    for (unsigned L = 0; L < S.NumLevels; ++L) {
      Key.push_back(S.Level[L].Accesses);
      Key.push_back(S.Level[L].Misses);
    }
    Key.push_back(S.SimulatedAccesses);
    Key.push_back(S.WarpedAccesses);
  }
  return Key;
}

TEST(BatchRunner, DeterministicAcrossThreadCounts) {
  RandomBatch Batch(/*Seed=*/20220613, /*NumJobs=*/24);

  BatchReport Serial = BatchRunner(1).run(Batch.Jobs);
  ASSERT_TRUE(Serial.allOk());
  std::vector<uint64_t> Expected = counterKey(Serial);

  for (unsigned Threads : {2u, 8u}) {
    BatchReport Par = BatchRunner(Threads).run(Batch.Jobs);
    ASSERT_TRUE(Par.allOk()) << Threads << " threads";
    EXPECT_EQ(counterKey(Par), Expected)
        << "counters depend on thread count " << Threads;
  }
}

TEST(BatchRunner, ResultsStayInJobOrder) {
  RandomBatch Batch(/*Seed=*/42, /*NumJobs=*/16);
  BatchReport Rep = BatchRunner(8).run(Batch.Jobs);
  ASSERT_EQ(Rep.Results.size(), Batch.Jobs.size());
  for (size_t I = 0; I < Rep.Results.size(); ++I) {
    EXPECT_EQ(Rep.Results[I].JobIndex, I);
    EXPECT_EQ(Rep.Results[I].Tag, Batch.Jobs[I].Tag);
  }
}

TEST(BatchRunner, BackendsAgreeOnMissCounts) {
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial < 6; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    HierarchyConfig H = randomHierarchy(Rng, PolicyKind::Lru, true);

    std::vector<BatchJob> Jobs(3);
    for (auto &J : Jobs) {
      J.Program = &P;
      J.Cache = H;
    }
    Jobs[0].Backend = SimBackend::Warping;
    Jobs[1].Backend = SimBackend::Concrete;
    Jobs[2].Backend = SimBackend::Trace;

    BatchReport Rep = BatchRunner(3).run(Jobs);
    ASSERT_TRUE(Rep.allOk());
    const SimStats &W = Rep.Results[0].Stats;
    const SimStats &C = Rep.Results[1].Stats;
    const SimStats &T = Rep.Results[2].Stats;
    for (const SimStats *S : {&C, &T}) {
      ASSERT_EQ(S->totalAccesses(), W.totalAccesses()) << "trial " << Trial;
      for (unsigned L = 0; L < W.NumLevels; ++L)
        ASSERT_EQ(S->Level[L].Misses, W.Level[L].Misses)
            << "trial " << Trial << " level " << L;
    }
  }
}

TEST(BatchRunner, SingleJobMatchesDirectSimulation) {
  std::mt19937 Rng(99);
  ScopProgram P = generateProgram(Rng);
  HierarchyConfig H = randomHierarchy(Rng, PolicyKind::Plru, false);

  ConcreteSimulator Direct(P, H);
  SimStats Ref = Direct.run();

  BatchJob J;
  J.Program = &P;
  J.Cache = H;
  J.Backend = SimBackend::Concrete;
  BatchResult R = BatchRunner::runJob(J);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Stats.totalAccesses(), Ref.totalAccesses());
  EXPECT_EQ(R.Stats.Level[0].Misses, Ref.Level[0].Misses);
}

TEST(BatchRunner, InvalidJobsFailIndividually) {
  std::mt19937 Rng(5);
  ScopProgram P = generateProgram(Rng);

  std::vector<BatchJob> Jobs(3);
  Jobs[0].Program = &P;
  Jobs[0].Cache = HierarchyConfig::singleLevel(CacheConfig());
  Jobs[1].Program = nullptr; // Missing program.
  Jobs[1].Cache = Jobs[0].Cache;
  CacheConfig Bad;
  Bad.SizeBytes = 100; // Not set-aligned: validate() rejects it.
  Jobs[2].Program = &P;
  Jobs[2].Cache = HierarchyConfig::singleLevel(Bad);

  BatchReport Rep = BatchRunner(2).run(Jobs);
  EXPECT_TRUE(Rep.Results[0].Ok) << Rep.Results[0].Error;
  EXPECT_FALSE(Rep.Results[1].Ok);
  EXPECT_FALSE(Rep.Results[2].Ok);
  EXPECT_FALSE(Rep.allOk());
  EXPECT_NE(Rep.Results[1].Error, "");
  EXPECT_NE(Rep.Results[2].Error, "");
}

TEST(BatchRunner, ThrowingTasksAreCapturedAndRethrown) {
  // A task that throws must neither terminate the process (an exception
  // escaping a worker thread would) nor starve the remaining tasks; the
  // first exception resurfaces on the calling thread after the join.
  for (unsigned Threads : {1u, 4u}) {
    std::atomic<unsigned> Ran{0};
    std::vector<std::function<void()>> Tasks;
    for (int I = 0; I < 16; ++I) {
      if (I % 4 == 1)
        Tasks.push_back([] { throw std::runtime_error("injected"); });
      else
        Tasks.push_back([&Ran] { ++Ran; });
    }
    BatchRunner Runner(Threads);
    EXPECT_THROW(Runner.runTasks(Tasks), std::runtime_error)
        << Threads << " threads";
    EXPECT_EQ(Ran.load(), 12u) << Threads << " threads";
  }
}

TEST(BatchRunner, ParseJobCountIsStrict) {
  unsigned N = 77;
  EXPECT_TRUE(parseJobCount("0", N));
  EXPECT_EQ(N, 0u);
  EXPECT_TRUE(parseJobCount("16", N));
  EXPECT_EQ(N, 16u);
  for (const char *Bad :
       {"", "-1", "+4", " 8", "8 ", "abc", "1O", "4294967296"}) {
    N = 77;
    EXPECT_FALSE(parseJobCount(Bad, N)) << "'" << Bad << "'";
    EXPECT_EQ(N, 77u) << "out param clobbered on '" << Bad << "'";
  }
  EXPECT_FALSE(parseJobCount(nullptr, N));
}

TEST(BatchRunner, ProgressSeesEveryJobExactlyOnce) {
  RandomBatch Batch(/*Seed=*/11, /*NumJobs=*/12);
  std::vector<unsigned> Seen(Batch.Jobs.size(), 0);
  BatchRunner Runner(4);
  Runner.setProgress([&](const BatchResult &R) { ++Seen[R.JobIndex]; });
  BatchReport Rep = Runner.run(Batch.Jobs);
  ASSERT_TRUE(Rep.allOk());
  for (unsigned Count : Seen)
    EXPECT_EQ(Count, 1u);
}

TEST(BatchRunner, PersistentPoolDrainsASharedQueue) {
  // The scheduler-style use: workers loop a caller-owned Next until it
  // says retire. Every queued task runs exactly once, on some worker,
  // and stopPool() returns only after all of them did.
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<int> Queue;
  bool Stop = false;
  std::atomic<unsigned> Ran{0};
  std::atomic<unsigned> MaxSeen{0};

  BatchRunner Runner(4);
  Runner.startPool([&](std::function<void()> &Task) {
    std::unique_lock<std::mutex> L(Mu);
    Cv.wait(L, [&] { return Stop || !Queue.empty(); });
    if (Queue.empty())
      return false;
    int V = Queue.front();
    Queue.pop_front();
    Task = [&, V] {
      ++Ran;
      unsigned Cur = static_cast<unsigned>(V);
      unsigned Prev = MaxSeen.load();
      while (Prev < Cur && !MaxSeen.compare_exchange_weak(Prev, Cur))
        ;
    };
    return true;
  });

  {
    std::lock_guard<std::mutex> L(Mu);
    for (int I = 0; I < 64; ++I)
      Queue.push_back(I);
  }
  Cv.notify_all();
  // Retire: workers drain the queue first (Next only returns false on
  // empty), then see Stop.
  {
    std::lock_guard<std::mutex> L(Mu);
    Stop = true;
  }
  Cv.notify_all();
  Runner.stopPool();
  EXPECT_EQ(Ran.load(), 64u);
  EXPECT_EQ(MaxSeen.load(), 63u);
  EXPECT_TRUE(Queue.empty());

  // A stopped pool restarts cleanly on the same runner.
  std::atomic<unsigned> Again{0};
  std::atomic<bool> Once{true};
  Runner.startPool([&](std::function<void()> &Task) {
    if (!Once.exchange(false))
      return false;
    Task = [&] { ++Again; };
    return true;
  });
  Runner.stopPool();
  EXPECT_EQ(Again.load(), 1u);
}

TEST(BatchRunner, PoolDestructorJoinsRetiredWorkers) {
  // A runner whose Next immediately retires every worker must be safe
  // to destroy without an explicit stopPool().
  std::atomic<unsigned> Polled{0};
  {
    BatchRunner Runner(3);
    Runner.startPool([&](std::function<void()> &) {
      ++Polled;
      return false;
    });
  }
  EXPECT_EQ(Polled.load(), 3u);
}

TEST(BatchRunner, PolybenchKernelAcrossThreadCounts) {
  // One real kernel at a small size, swept over configs, as wcs-sim does.
  std::string Err;
  ScopProgram P = buildKernel("gemm", ProblemSize::Mini, &Err);
  ASSERT_EQ(Err, "");

  std::vector<BatchJob> Jobs;
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::Plru}) {
    CacheConfig L1 = CacheConfig::scaledL1();
    L1.Policy = K;
    for (SimBackend B : {SimBackend::Warping, SimBackend::Concrete}) {
      BatchJob J;
      J.Program = &P;
      J.Cache = HierarchyConfig::singleLevel(L1);
      J.Backend = B;
      Jobs.push_back(std::move(J));
    }
  }

  BatchReport One = BatchRunner(1).run(Jobs);
  BatchReport Eight = BatchRunner(8).run(Jobs);
  ASSERT_TRUE(One.allOk() && Eight.allOk());
  EXPECT_EQ(counterKey(One), counterKey(Eight));
  // Warping and concrete agree per config.
  EXPECT_EQ(One.Results[0].Stats.Level[0].Misses,
            One.Results[1].Stats.Level[0].Misses);
  EXPECT_EQ(One.Results[2].Stats.Level[0].Misses,
            One.Results[3].Stats.Level[0].Misses);
}

} // namespace
