//===- poly/FourierMotzkin.cpp --------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/poly/FourierMotzkin.h"

#include "wcs/support/MathUtil.h"

#include <cassert>

using namespace wcs;

/// Elimination is abandoned once a system grows beyond this many rows;
/// the caller then receives Unknown and acts conservatively. Real warping
/// queries stay far below this (PolyBench domains have < 10 constraints).
static constexpr unsigned MaxRows = 4096;

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t G = gcd64(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Num = N;
  Den = D;
}

int64_t Rational::floor() const { return floorDiv(Num, Den); }
int64_t Rational::ceil() const { return ceilDiv(Num, Den); }

void LinearSystem::addGE(std::vector<int64_t> Coeffs, int64_t Const) {
  assert(Coeffs.size() == NumVars && "row has wrong arity");
  Row R{std::move(Coeffs), Const};
  normalize(R);
  Rows.push_back(std::move(R));
}

void LinearSystem::addEQ(const std::vector<int64_t> &Coeffs, int64_t Const) {
  addGE(Coeffs, Const);
  std::vector<int64_t> Neg(Coeffs.size());
  for (size_t I = 0; I < Coeffs.size(); ++I)
    Neg[I] = -Coeffs[I];
  addGE(std::move(Neg), -Const);
}

bool LinearSystem::normalize(Row &R) {
  // Dividing the whole row (constant included) by the common gcd preserves
  // the rational solution set exactly.
  int64_t G = gcd64(0, R.Const);
  for (int64_t C : R.Coeffs)
    G = gcd64(G, C);
  if (G > 1) {
    for (int64_t &C : R.Coeffs)
      C /= G;
    R.Const /= G;
  }
  return true;
}

bool LinearSystem::eliminate(std::vector<Row> &Rows, unsigned Var) {
  std::vector<Row> Pos, Neg, Rest;
  for (Row &R : Rows) {
    int64_t C = R.Coeffs[Var];
    if (C > 0)
      Pos.push_back(std::move(R));
    else if (C < 0)
      Neg.push_back(std::move(R));
    else
      Rest.push_back(std::move(R));
  }
  if (Pos.size() * Neg.size() + Rest.size() > MaxRows)
    return false;
  for (const Row &P : Pos) {
    for (const Row &N : Neg) {
      // P: a*x + p >= 0 (a > 0); N: b*x + n >= 0 (b < 0).
      // Combined: a*n - b*p >= 0, eliminating x.
      int64_t A = P.Coeffs[Var];
      int64_t B = N.Coeffs[Var];
      Row C;
      C.Coeffs.resize(P.Coeffs.size());
      for (size_t I = 0; I < P.Coeffs.size(); ++I) {
        __int128 V = static_cast<__int128>(A) * N.Coeffs[I] -
                     static_cast<__int128>(B) * P.Coeffs[I];
        if (V > INT64_MAX || V < INT64_MIN)
          return false;
        C.Coeffs[I] = static_cast<int64_t>(V);
      }
      __int128 K = static_cast<__int128>(A) * N.Const -
                   static_cast<__int128>(B) * P.Const;
      if (K > INT64_MAX || K < INT64_MIN)
        return false;
      C.Const = static_cast<int64_t>(K);
      assert(C.Coeffs[Var] == 0 && "elimination failed to zero the pivot");
      normalize(C);
      Rest.push_back(std::move(C));
    }
  }
  Rows = std::move(Rest);
  return true;
}

FMStatus LinearSystem::feasible() const {
  std::vector<Row> Work = Rows;
  for (unsigned V = 0; V < NumVars; ++V)
    if (!eliminate(Work, V))
      return FMStatus::Unknown;
  for (const Row &R : Work)
    if (R.Const < 0)
      return FMStatus::Infeasible;
  return FMStatus::Feasible;
}

FMStatus LinearSystem::minimize(unsigned Var,
                                std::optional<Rational> &Min) const {
  assert(Var < NumVars && "variable out of range");
  Min.reset();
  std::vector<Row> Work = Rows;
  for (unsigned V = 0; V < NumVars; ++V) {
    if (V == Var)
      continue;
    if (!eliminate(Work, V))
      return FMStatus::Unknown;
  }
  std::optional<Rational> Lo, Hi;
  for (const Row &R : Work) {
    int64_t A = R.Coeffs[Var];
    if (A == 0) {
      if (R.Const < 0)
        return FMStatus::Infeasible;
      continue;
    }
    Rational Bound(-R.Const, A);
    if (A > 0) {
      if (!Lo || *Lo < Bound)
        Lo = Bound;
    } else {
      if (!Hi || Bound < *Hi)
        Hi = Bound;
    }
  }
  if (Lo && Hi && *Hi < *Lo)
    return FMStatus::Infeasible;
  Min = Lo;
  return FMStatus::Feasible;
}
