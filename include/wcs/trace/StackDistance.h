//===- wcs/trace/StackDistance.h - Stack-distance profiling -----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact stack-distance (reuse-distance) profiling at block granularity:
/// for every access, the number of *distinct* blocks touched since the
/// previous access to the same block. This is precisely the quantity
/// HayStack [34] computes by symbolic counting; here it is computed
/// exactly with Mattson's algorithm over a binary indexed tree (see
/// DESIGN.md on this substitution). From the resulting histogram, the
/// miss count of a fully-associative LRU cache of *any* associativity
/// follows immediately: an access misses iff its stack distance is at
/// least the associativity (or it is a cold access). This also yields
/// the full stack histograms of Mattson et al. [44] / Cascaval-Padua
/// [14] in one pass.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TRACE_STACKDISTANCE_H
#define WCS_TRACE_STACKDISTANCE_H

#include "wcs/cache/SetAssocCache.h"
#include "wcs/scop/Program.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wcs {

/// A stack-distance histogram fragment: the contribution one trace
/// segment (typically one verified period of a periodic access stream)
/// makes to a profile. The periodic fast paths capture a fragment by
/// walking ONE period and then apply the remaining repetitions
/// analytically through SetDistanceBank::addPeriodicContribution.
struct DistanceHistogram {
  /// Hit counts by exact per-set stack distance (index = distance).
  std::vector<uint64_t> Hist;
  /// Accesses known only to miss at every answerable associativity:
  /// distances at or beyond a truncation depth (a depth-profiling run
  /// observes hits only up to its cache's ways).
  uint64_t Beyond = 0;
  /// Cold (first-touch) accesses. Kept apart from Beyond because a
  /// nonzero cold count falsifies the stationarity a captured period
  /// needs (a repetition of an identical block sequence cannot touch a
  /// new block), so consumers use it as a verification signal before
  /// scaling the fragment.
  uint64_t Colds = 0;
  /// Accesses covered by the fragment (== Colds + Beyond + sum of Hist).
  uint64_t Accesses = 0;
};

/// Online exact stack-distance profiler at block granularity.
class StackDistanceProfiler {
public:
  /// \p InitialTreeCapacity sizes the binary indexed tree before the
  /// first growth step (rounded up to a power of two, which the growth
  /// logic requires). The default suits a lone profiler; per-set banks
  /// pass a small value so thousands of profilers start cheap.
  explicit StackDistanceProfiler(unsigned BlockBytes = 64,
                                 size_t InitialTreeCapacity = 1024);

  /// Records an access to byte address \p Addr.
  void accessAddr(int64_t Addr) { accessBlock(Addr >> BlockShift); }
  /// Records an access; returns its stack distance, or -1 when cold.
  int64_t accessBlock(BlockId B);

  /// Number of cold (first-touch) accesses.
  uint64_t coldAccesses() const { return Colds; }
  uint64_t totalAccesses() const { return Time; }

  /// Histogram of finite stack distances (index = distance).
  const std::vector<uint64_t> &histogram() const { return Hist; }

  /// Misses of a fully-associative LRU cache with \p Assoc lines:
  /// cold accesses plus all accesses with stack distance >= Assoc.
  uint64_t missesForAssoc(uint64_t Assoc) const;

  /// Convenience: misses of the fully-associative LRU cache with the
  /// same capacity as \p C (the HayStack cache model).
  uint64_t missesForCache(const CacheConfig &C) const {
    return missesForAssoc(C.numLines());
  }

private:
  /// Binary indexed tree over access timestamps; position t holds 1 iff
  /// t is the most recent access of some block.
  void bitAdd(uint64_t Pos, int64_t Val);
  int64_t bitPrefix(uint64_t Pos) const; ///< Sum of [1, Pos].

  unsigned BlockShift;
  uint64_t Time = 0;
  uint64_t Colds = 0;
  int64_t TreeTotal = 0;                 ///< Sum of all BIT elements.
  std::vector<int64_t> Bit;              ///< 1-based BIT, grown on demand.
  std::unordered_map<BlockId, uint64_t> LastAccess; ///< Block -> time.
  std::vector<uint64_t> Hist;
};

/// Bank of per-set stack-distance profilers: exact LRU miss counts of a
/// fixed (block size, set count) geometry for *every* associativity at
/// once. Under modulo placement each set is an independent
/// fully-associative LRU over the blocks mapping to it, so per-set
/// Mattson histograms generalize the fully-associative profiler
/// (NumSets == 1 degenerates to exactly it). This is the single-pass
/// fast path of the sweep driver: one trace pass feeds one bank per
/// distinct geometry, and every LRU capacity point is answered from the
/// histograms.
class SetDistanceBank {
public:
  /// \p NumSets must be a power of two (modulo placement).
  SetDistanceBank(unsigned BlockBytes, unsigned NumSets);

  unsigned numSets() const { return static_cast<unsigned>(Sets.size()); }
  unsigned blockBytes() const { return 1u << BlockShift; }

  void accessAddr(int64_t Addr) { accessBlock(Addr >> BlockShift); }

  /// Records an access that is already at block granularity (e.g. a
  /// record of an L1-miss-filtered stream; the block size of the
  /// producing L1 must equal this bank's).
  void accessBlock(BlockId B) {
    int64_t D = Sets[static_cast<size_t>(static_cast<uint64_t>(B) & SetMask)]
                    .accessBlock(B);
    ++Total;
    if (Capturing) {
      ++Capture.Accesses;
      if (D < 0) {
        ++Capture.Colds;
      } else {
        uint64_t UD = static_cast<uint64_t>(D);
        if (Capture.Hist.size() <= UD)
          Capture.Hist.resize(UD + 1, 0);
        ++Capture.Hist[UD];
      }
    }
  }

  uint64_t totalAccesses() const { return Total; }

  //===--------------------------------------------------------------------===//
  // Periodic bulk updates (the sublinear fast path)
  //===--------------------------------------------------------------------===//
  //
  // When an access stream contains a segment that repeats an identical
  // block sequence, the histogram increments of every repetition after
  // the first are identical: each block's previous access lies at a
  // fixed offset within the previous repetition, and the distinct-block
  // count of that window is the same in every repetition (the window
  // content is a verbatim copy). The per-set profilers' internal marker
  // structures are likewise position-for-position equivalent after each
  // repetition, so skipping repetitions analytically leaves every later
  // distance bit-identical: the markers simply stay at their
  // second-repetition timestamps while the logical access count
  // advances. Consumers therefore walk one repetition concretely, walk
  // the next one under beginPeriodCapture()/endPeriodCapture(), and add
  // the remaining N-2 analytically with addPeriodicContribution.

  /// Starts capturing the histogram increments of subsequent
  /// accessBlock calls (one verified period of a periodic stream).
  void beginPeriodCapture() {
    Capture = DistanceHistogram();
    Capturing = true;
  }

  /// Stops capturing and returns the increments since
  /// beginPeriodCapture. A nonzero Colds count in the result falsifies
  /// periodicity (see DistanceHistogram::Colds) and callers must then
  /// fall back to walking the repetitions.
  DistanceHistogram endPeriodCapture() {
    Capturing = false;
    return std::move(Capture);
  }

  /// Bulk analytic update: adds \p Reps copies of fragment \p H to the
  /// bank, as if the accesses had been replayed, without touching the
  /// per-set profiler state (which is exactly the point: after a
  /// repetition of an identical block sequence the profilers already
  /// sit in an equivalent state). When \p TruncatedAtAssoc is nonzero,
  /// \p H came from a depth-profiling run that observes distances only
  /// below that associativity, and the bank afterwards answers only
  /// configurations with at most that many ways (enforced by matches()).
  ///
  /// Returns false -- leaving the bank completely untouched -- when any
  /// of the scaled accumulations would overflow uint64. Callers treat
  /// that exactly like a failed period verification (the Colds != 0
  /// path) and fall back to walking the repetitions, which cannot
  /// overflow: the walked counters grow by 1 per access, and 2^64
  /// accesses are unwalkable.
  [[nodiscard]] bool addPeriodicContribution(const DistanceHistogram &H,
                                             uint64_t Reps,
                                             unsigned TruncatedAtAssoc = 0);

  /// 0 when the bank is exact at every associativity; otherwise the
  /// largest associativity it can answer.
  unsigned truncatedAtAssoc() const { return TruncAssoc; }

  /// Misses of the set-associative LRU cache with this bank's geometry
  /// and \p Assoc ways: per set, cold accesses plus accesses at stack
  /// distance >= Assoc (plus any bulk periodic contributions).
  uint64_t missesForAssoc(uint64_t Assoc) const;

  /// True when \p C is answerable from this bank: same block size and
  /// set count, LRU, write-allocate (a non-allocating write miss leaves
  /// the stack untouched in hardware but not in the histogram), and an
  /// associativity within the bank's truncation depth (if any).
  bool matches(const CacheConfig &C) const;

  /// Miss count of \p C; \p C must satisfy matches().
  uint64_t missesForCache(const CacheConfig &C) const;

private:
  unsigned BlockShift;
  uint64_t SetMask;
  uint64_t Total = 0;
  std::vector<StackDistanceProfiler> Sets;
  /// Analytic contributions from addPeriodicContribution, kept apart
  /// from the per-set profilers (they are pure output, never part of
  /// the profilers' evolving state).
  std::vector<uint64_t> BulkHist;
  uint64_t BulkAlwaysMiss = 0; ///< Beyond-truncation + cold fragments.
  unsigned TruncAssoc = 0;     ///< 0 = exact at every associativity.
  bool Capturing = false;
  DistanceHistogram Capture;
};

/// Profiles every (array) access of \p Program; scalar accesses are
/// excluded to match HayStack's accounting.
StackDistanceProfiler profileProgram(const ScopProgram &Program,
                                     unsigned BlockBytes,
                                     bool IncludeScalars = false,
                                     double *Seconds = nullptr);

/// One-config companion of the sweep fast path: profiles \p Program into
/// a single bank of \p NumSets per-set histograms (the stack-distance
/// simulation backend of BatchRunner).
SetDistanceBank profileProgramSets(const ScopProgram &Program,
                                   unsigned BlockBytes, unsigned NumSets,
                                   bool IncludeScalars = false,
                                   double *Seconds = nullptr);

} // namespace wcs

#endif // WCS_TRACE_STACKDISTANCE_H
