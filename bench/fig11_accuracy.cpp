//===- bench/fig11_accuracy.cpp - Paper Figs. 11, 13, 14 ------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates the accuracy experiments: the L1 miss counts predicted by
// three approaches are compared against a "measured" reference, at the
// Small, Medium and Large problem sizes (the paper's Figs. 13, 14 and 11
// respectively).
//
// Substitution (DESIGN.md): PAPI measurements on real hardware are
// replaced by a golden reference simulation that includes everything the
// simpler models omit -- scalar accesses and dirty write-backs -- on the
// scaled test-system hierarchy with its true policies (PLRU L1). The
// modeling deltas of the three predictors are faithful to the paper:
//   Dinero-substitute: trace-driven, counts scalar accesses, but models
//                      LRU instead of PLRU (Dinero IV has no PLRU);
//   Warping:           exact set-associative PLRU, array accesses only;
//   HayStack-substitute: fully-associative LRU, array accesses only.
// Because the reference is itself a simulator, warping's residual error
// comes only from the scalar accesses it excludes; the paper's
// additional gap from speculation and prefetching has no analogue here.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/trace/StackDistance.h"
#include "wcs/trace/TraceSimulator.h"

#include <cstdio>
#include <cstdlib>

using namespace wcs;
using namespace wcs::bench;

namespace {

void runSize(ProblemSize Size, const char *Figure) {
  CacheConfig L1 = CacheConfig::scaledL1();
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, CacheConfig::scaledL2());
  std::printf("== Figure %s: accuracy vs the reference model, size %s ==\n",
              Figure, problemSizeName(Size));
  std::printf("%-15s %11s | %21s | %21s | %21s\n", "kernel", "measured",
              "DineroIV-sub (rel%)", "Warping (rel%)",
              "HayStack-sub (rel%)");
  for (const KernelInfo &K : polybenchKernels()) {
    ScopProgram P = mustBuild(K, Size);

    // "Measured": golden reference with scalars + write-backs, true
    // policies.
    TraceSimOptions RefOpts; // scalars + writebacks on.
    TraceSimulator Ref(H, RefOpts);
    uint64_t Measured = Ref.runOnProgram(P).Stats.Level[0].Misses;

    // Dinero IV substitute: trace-driven, scalars included, LRU L1.
    HierarchyConfig HLru = H;
    HLru.Levels[0].Policy = PolicyKind::Lru;
    HLru.Levels[1].Policy = PolicyKind::Lru;
    TraceSimulator Dinero(HLru, RefOpts);
    uint64_t DineroM = Dinero.runOnProgram(P).Stats.Level[0].Misses;

    // Warping: exact PLRU, arrays only.
    WarpingSimulator Warp(P, H);
    uint64_t WarpM = Warp.run().Level[0].Misses;

    // HayStack substitute: fully-associative LRU, arrays only.
    StackDistanceProfiler Prof = profileProgram(P, L1.BlockBytes);
    uint64_t HayM = Prof.missesForCache(L1);

    auto Rel = [&](uint64_t V) {
      return Measured == 0
                 ? 0.0
                 : 100.0 * (static_cast<double>(V) - Measured) / Measured;
    };
    std::printf("%-15s %11llu | %12llu %7.2f | %12llu %7.2f | %12llu "
                "%7.2f\n",
                K.Name, static_cast<unsigned long long>(Measured),
                static_cast<unsigned long long>(DineroM), Rel(DineroM),
                static_cast<unsigned long long>(WarpM), Rel(WarpM),
                static_cast<unsigned long long>(HayM), Rel(HayM));
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **) {
  if (argc > 1 || std::getenv("WCS_SIZE")) {
    // Single size requested.
    runSize(sizeFromEnv(ProblemSize::Large), "11 (custom size)");
    return 0;
  }
  runSize(ProblemSize::Small, "13");
  runSize(ProblemSize::Medium, "14");
  runSize(ProblemSize::Large, "11");
  return 0;
}
