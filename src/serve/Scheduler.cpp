//===- src/serve/Scheduler.cpp - Cross-request job scheduler --------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Scheduler.h"

#include "wcs/support/FaultInjection.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

using namespace wcs;

namespace {

ProgressEvent makeEvent(uint64_t Serial, size_t Total, size_t I,
                        const SweepPoint &P) {
  ProgressEvent E;
  E.Request = Serial;
  E.Point = I;
  E.Total = Total;
  E.Cache = P.Cache.str();
  E.Method = P.Method;
  E.Ok = P.Ok;
  return E;
}

} // namespace

Scheduler::Scheduler(ResultStore &Store, unsigned Threads,
                     uint64_t MaxQueuedPoints)
    : Store(Store), Runner(Threads), MaxQueuedPoints(MaxQueuedPoints) {
  PoolThreads = Runner.threads();
  Runner.startPool(
      [this](std::function<void()> &Task) { return nextJob(Task); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
  }
  WorkCv.notify_all();
  Runner.stopPool();
}

bool Scheduler::nextJob(std::function<void()> &Task) {
  Job J;
  double QueueWait = 0.0;
  {
    std::unique_lock<std::mutex> L(Mu);
    WorkCv.wait(L, [this] { return Stopping || !RoundRobin.empty(); });
    if (RoundRobin.empty())
      return false; // Stopping, nothing queued: retire the worker.
    // Fairness: take ONE job from the front request, then rotate it to
    // the back, so K active requests each get every K-th job slot no
    // matter how many jobs any one of them brought.
    RequestState *RS = RoundRobin.front();
    RoundRobin.pop_front();
    J = std::move(RS->Queue.front());
    RS->Queue.pop_front();
    QueuedPoints -= J.PointIdx.size(); // Dequeued: no longer backlog.
    if (!RS->Queue.empty())
      RoundRobin.push_back(RS);
    QueueWait = telemetry::secondsSince(J.Enqueued);
    RS->QueueWaitSeconds += QueueWait;
  }
  telemetry::registry().counter("scheduler.jobs_dequeued").add();
  telemetry::registry()
      .histogram("scheduler.queue_wait_seconds",
                 telemetry::defaultLatencyBounds())
      .observe(QueueWait);
  Task = [this, J = std::move(J)]() mutable { runJob(J); };
  return true;
}

void Scheduler::runJob(Job &J) {
  RequestState *RS = J.Owner;
  if (Observer)
    Observer(RS->Serial, J.Configs.size());

  telemetry::Span JobSpan("scheduler.job");
  JobSpan.arg("request", RS->Serial);
  JobSpan.arg("points", static_cast<uint64_t>(J.Configs.size()));
  telemetry::TimePoint C0 = telemetry::now();

  // The sub-sweep itself runs unlocked and single-threaded: the
  // scheduler's parallelism is across jobs, so one worker owns one
  // group end to end. Same honesty rule as runSweep's internal tasks: a
  // throwing sub-sweep becomes per-point failures, never a dead worker.
  SweepReport Rep;
  bool Threw = false;
  std::string ThrowErr;
  try {
    if (faultinject::shouldFail("scheduler.job"))
      throw std::runtime_error("injected fault (scheduler.job)");
    Rep = runSweep(*RS->Program, J.Configs, RS->SO);
  } catch (const std::exception &E) {
    Threw = true;
    ThrowErr = E.what();
  } catch (...) {
    Threw = true;
    ThrowErr = "unknown exception";
  }
  if (Threw) {
    Rep = SweepReport();
    Rep.Points.resize(J.Configs.size());
    for (size_t G = 0; G < J.Configs.size(); ++G) {
      Rep.Points[G].Cache = J.Configs[G];
      Rep.Points[G].Backend = RS->SO.Backend;
      Rep.Points[G].Error = ThrowErr;
    }
  }

  double Compute = telemetry::secondsSince(C0);
  telemetry::registry()
      .counter("scheduler.points_computed")
      .add(J.PointIdx.size());

  telemetry::Span PublishSpan("scheduler.publish");
  PublishSpan.arg("points", static_cast<uint64_t>(J.PointIdx.size()));
  std::lock_guard<std::mutex> L(Mu);
  RS->ComputeSeconds += Compute;
  ComputeSecondsTotal += Compute;
  mergeSweepReports(RS->Merged, Rep);
  for (size_t G = 0; G < J.PointIdx.size(); ++G) {
    size_t I = J.PointIdx[G];
    const SweepPoint &P = Rep.Points[G];
    // THE single writer: every insert in the process happens here,
    // under Mu, no matter which request raced the key in. An insert
    // failure (disk error, injected fault) is never fatal to the
    // request -- the freshly computed point is still delivered; it is
    // just not persisted, so a later request recomputes it.
    std::string StoreErr;
    if (P.Ok && !Store.insert(RS->Keys[I], P, &StoreErr)) {
      telemetry::registry().counter("store.insert_failed").add();
      std::fprintf(stderr, "wcs-serve: store insert failed: %s\n",
                   StoreErr.c_str());
    }
    ++Counters.PointsComputed;
    RS->Points[I] = P;
    RS->Ready.push_back(makeEvent(RS->Serial, RS->Total, I, P));
    // Hand the result to every subscriber, then retire the in-flight
    // entry -- later requests hit the store instead.
    auto It = InFlight.find(RS->Keys[I]);
    if (It != InFlight.end()) {
      for (const auto &[SubRS, SubI] : It->second->Subscribers) {
        SweepPoint SP = P;
        if (SP.Ok)
          SP.Method = SweepMethod::Store; // It is in the store now;
                                          // failed points are not, and
                                          // keep their honest method.
        SubRS->Points[SubI] = std::move(SP);
        --SubRS->PendingSubscriptions;
        SubRS->Ready.push_back(
            makeEvent(SubRS->Serial, SubRS->Total, SubI,
                      SubRS->Points[SubI]));
        SubRS->Cv.notify_all();
      }
      InFlight.erase(It);
    }
  }
  --RS->JobsOutstanding;
  RS->Cv.notify_all();
}

void Scheduler::cancelLocked(RequestState &RS, const char *Reason) {
  // Withdraw subscriptions first -- both from other requests' points
  // (their owners keep going; the result still lands in the store) and
  // from this grid's own duplicate points, so a self-subscription
  // cannot keep a doomed job below alive.
  for (const std::string &K : RS.SubscribedKeys) {
    auto It = InFlight.find(K);
    if (It == InFlight.end())
      continue;
    auto &Subs = It->second->Subscribers;
    Subs.erase(std::remove_if(Subs.begin(), Subs.end(),
                              [&RS](const auto &S) {
                                return S.first == &RS;
                              }),
               Subs.end());
  }
  RS.PendingSubscriptions = 0;
  RS.SubscribedKeys.clear();
  // Drop queued jobs nobody else wants; keep any job with at least one
  // subscriber (it computes points another live request is waiting for
  // -- the drop rule is per job, not per point, so a partially-shared
  // job simply runs whole).
  std::deque<Job> Keep;
  for (Job &J : RS.Queue) {
    bool Wanted = false;
    for (size_t I : J.PointIdx) {
      auto It = InFlight.find(RS.Keys[I]);
      if (It != InFlight.end() && !It->second->Subscribers.empty()) {
        Wanted = true;
        break;
      }
    }
    if (Wanted) {
      Keep.push_back(std::move(J));
      continue;
    }
    for (size_t G = 0; G < J.PointIdx.size(); ++G) {
      size_t I = J.PointIdx[G];
      InFlight.erase(RS.Keys[I]);
      RS.Points[I].Cache = J.Configs[G];
      RS.Points[I].Backend = RS.SO.Backend;
      RS.Points[I].Error = Reason;
    }
    QueuedPoints -= J.PointIdx.size();
    ++Counters.CancelledJobs;
    telemetry::registry().counter("scheduler.jobs_cancelled").add();
    --RS.JobsOutstanding;
  }
  RS.Queue.swap(Keep);
  if (RS.Queue.empty())
    RoundRobin.erase(
        std::remove(RoundRobin.begin(), RoundRobin.end(), &RS),
        RoundRobin.end());
}

SweepResponse Scheduler::serve(
    const SweepRequest &Req,
    const std::function<bool(const ProgressEvent &)> &OnProgress,
    const std::function<bool()> &IsCancelled, RequestTelemetry *Tel) {
  telemetry::Span ReqSpan("serve.request");
  telemetry::TimePoint W0 = telemetry::now();
  SweepResponse Resp;
  Resp.RequestHash = requestHash(Req);
  ReqSpan.arg("hash", Resp.RequestHash);
  telemetry::registry().counter("serve.requests").add();

  PreparedSweep Prep;
  std::string Err;
  {
    telemetry::Span ExpandSpan("serve.expand");
    if (!prepareSweep(Req, Prep, &Err)) {
      Resp.Error = Err;
      std::lock_guard<std::mutex> L(Mu);
      ++Counters.RequestsServed;
      Resp.StoreEntries = Store.numEntries();
      if (Tel)
        Tel->WallSeconds = telemetry::secondsSince(W0);
      return Resp;
    }
    ExpandSpan.arg("points", static_cast<uint64_t>(Prep.Configs.size()));
  }

  RequestState RS;
  RS.Program = &Prep.Program;
  RS.SO = Req.Options;
  RS.SO.Threads = 1; // One worker owns one job; parallelism is across jobs.
  RS.Total = Prep.Configs.size();
  RS.Points.resize(RS.Total);
  RS.Keys.resize(RS.Total);
  RS.HasDeadline = Req.DeadlineSeconds > 0;
  if (RS.HasDeadline)
    RS.Deadline = W0 + std::chrono::duration_cast<
                           telemetry::TimePoint::duration>(
                           std::chrono::duration<double>(
                               Req.DeadlineSeconds));

  std::vector<ProgressEvent> HitEvents;
  bool Shed = false;
  {
    telemetry::Span AdmitSpan("serve.admission");
    std::lock_guard<std::mutex> L(Mu);
    RS.Serial = ++LastSerial;
    ++NumActive;
    // Pass 1: resolve store hits and count the points this request
    // would have to compute itself (subscriptions ride on another
    // request's queue budget). Nothing is registered yet, so an
    // over-cap request can be refused without leaving any in-flight
    // state behind.
    std::vector<char> Answered(RS.Total, 0);
    std::unordered_set<std::string> WouldOwn;
    for (size_t I = 0; I < RS.Total; ++I) {
      RS.Keys[I] = sweepPointKey(Req, Prep.Configs[I]);
      SweepPoint Hit;
      if (Store.lookup(RS.Keys[I], Hit)) {
        Hit.Method = SweepMethod::Store;
        RS.Points[I] = std::move(Hit);
        Answered[I] = 1;
        ++Resp.StoreHits;
        HitEvents.push_back(
            makeEvent(RS.Serial, RS.Total, I, RS.Points[I]));
        continue;
      }
      if (!InFlight.count(RS.Keys[I]))
        WouldOwn.insert(RS.Keys[I]);
    }
    if (MaxQueuedPoints != 0 && !WouldOwn.empty() &&
        QueuedPoints + WouldOwn.size() > MaxQueuedPoints) {
      // Overloaded: answer immediately instead of growing the backlog
      // without bound. The hint scales with the backlog's measured
      // per-point compute cost; a fresh daemon guesses conservatively.
      Shed = true;
      ++Counters.ShedRequests;
      ++Counters.RequestsServed;
      --NumActive;
      telemetry::registry().counter("serve.shed").add();
      Resp.StoreHits = 0; // Nothing was answered, hits included.
      Resp.Error = "overloaded";
      Resp.StoreEntries = Store.numEntries();
      double AvgPointSeconds =
          Counters.PointsComputed != 0
              ? ComputeSecondsTotal / double(Counters.PointsComputed)
              : 0.05;
      double Est = double(QueuedPoints) * AvgPointSeconds /
                   double(PoolThreads != 0 ? PoolThreads : 1);
      Resp.RetryAfterSeconds = std::min(10.0, std::max(0.05, Est));
      AdmitSpan.arg("shed", uint64_t(1));
    }
    std::vector<size_t> Owned;
    if (!Shed) {
      // Pass 2: admitted -- register subscriptions and take ownership
      // of the rest, exactly as before the cap existed.
      for (size_t I = 0; I < RS.Total; ++I) {
        if (Answered[I])
          continue;
        auto It = InFlight.find(RS.Keys[I]);
        if (It != InFlight.end()) {
          // Someone -- another request, or an earlier duplicate point
          // of this very grid -- is already computing this key:
          // subscribe.
          It->second->Subscribers.emplace_back(&RS, I);
          ++RS.PendingSubscriptions;
          RS.SubscribedKeys.push_back(RS.Keys[I]);
          ++Resp.InFlightHits;
          continue;
        }
        InFlight.emplace(RS.Keys[I], std::make_unique<PointState>());
        Owned.push_back(I);
      }
      Resp.StoreMisses = Owned.size();
    }
    if (!Owned.empty()) {
      std::vector<HierarchyConfig> OwnedCfgs;
      OwnedCfgs.reserve(Owned.size());
      for (size_t I : Owned)
        OwnedCfgs.push_back(Prep.Configs[I]);
      telemetry::TimePoint Enq = telemetry::now();
      for (const std::vector<size_t> &G :
           partitionSweepGroups(OwnedCfgs)) {
        Job J;
        J.Owner = &RS;
        J.PointIdx.reserve(G.size());
        J.Configs.reserve(G.size());
        for (size_t K : G) {
          J.PointIdx.push_back(Owned[K]);
          J.Configs.push_back(OwnedCfgs[K]);
        }
        J.Enqueued = Enq;
        RS.Queue.push_back(std::move(J));
      }
      RS.JobsOutstanding = RS.Queue.size();
      QueuedPoints += Owned.size();
      RoundRobin.push_back(&RS);
      telemetry::registry()
          .counter("scheduler.jobs_enqueued")
          .add(RS.Queue.size());
    }
    RS.Merged.Threads = PoolThreads;
    AdmitSpan.arg("store_hits", Resp.StoreHits);
    AdmitSpan.arg("inflight_hits", Resp.InFlightHits);
    AdmitSpan.arg("jobs", static_cast<uint64_t>(RS.Queue.size()));
    if (Resp.InFlightHits != 0)
      telemetry::registry()
          .counter("scheduler.inflight_subscriptions")
          .add(Resp.InFlightHits);
  }
  if (Shed) {
    if (Tel)
      Tel->WallSeconds = telemetry::secondsSince(W0);
    return Resp;
  }
  WorkCv.notify_all();

  // Progress always fires on this (the connection's) thread, outside
  // the lock: a slow or dead socket stalls this request only.
  bool Alive = true;
  auto Fire = [&](const ProgressEvent &E) {
    if (OnProgress && !OnProgress(E))
      return false;
    return !(IsCancelled && IsCancelled());
  };
  if (IsCancelled && IsCancelled())
    Alive = false;
  if (!HitEvents.empty()) {
    telemetry::Span DeliverSpan("serve.deliver");
    DeliverSpan.arg("events", static_cast<uint64_t>(HitEvents.size()));
    for (const ProgressEvent &E : HitEvents) {
      if (!Alive)
        break;
      Alive = Fire(E);
    }
  }

  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    if (!Alive && !RS.Cancelled) {
      RS.Cancelled = true;
      cancelLocked(RS, "cancelled: client disconnected");
    }
    // Deadline expiry reuses the cancellation path for the backlog --
    // queued jobs nobody else wants are dropped, subscriptions
    // withdrawn -- but the request stays alive: jobs already running
    // finish and their points are returned.
    if (Alive && RS.HasDeadline && !RS.DeadlineExpired && !RS.Cancelled &&
        (RS.JobsOutstanding != 0 || RS.PendingSubscriptions != 0) &&
        telemetry::now() >= RS.Deadline) {
      RS.DeadlineExpired = true;
      cancelLocked(RS, "deadline exceeded");
      ++Counters.DeadlineExpired;
      telemetry::registry().counter("serve.deadline_expired").add();
    }
    if (!RS.Ready.empty()) {
      std::vector<ProgressEvent> Batch;
      Batch.swap(RS.Ready);
      if (Alive) {
        L.unlock();
        {
          telemetry::Span DeliverSpan("serve.deliver");
          DeliverSpan.arg("events", static_cast<uint64_t>(Batch.size()));
          for (const ProgressEvent &E : Batch) {
            if (!Alive)
              break;
            Alive = Fire(E);
          }
        }
        L.lock();
      }
      continue;
    }
    if (RS.JobsOutstanding == 0 && RS.PendingSubscriptions == 0)
      break;
    // Wake on results; time-bounded so IsCancelled is polled even when
    // nothing completes (a silent disconnect must still cancel).
    bool TimedOut = RS.Cv.wait_for(L, std::chrono::milliseconds(20)) ==
                    std::cv_status::timeout;
    if (TimedOut && Alive && IsCancelled) {
      L.unlock();
      bool Gone = IsCancelled();
      L.lock();
      if (Gone)
        Alive = false;
    }
  }

  ++Counters.RequestsServed;
  Counters.StoreHits += Resp.StoreHits;
  Counters.InFlightHits += Resp.InFlightHits;
  --NumActive;
  Resp.StoreEntries = Store.numEntries();

  telemetry::Registry &Reg = telemetry::registry();
  Reg.counter("serve.store_hits").add(Resp.StoreHits);
  Reg.counter("serve.store_misses").add(Resp.StoreMisses);
  Reg.counter("serve.inflight_hits").add(Resp.InFlightHits);
  Reg.gauge("store.entries").set(static_cast<double>(Resp.StoreEntries));
  double Wall = telemetry::secondsSince(W0);
  Reg.histogram("serve.request_seconds", telemetry::defaultLatencyBounds())
      .observe(Wall);
  if (Tel) {
    Tel->QueueWaitSeconds = RS.QueueWaitSeconds;
    Tel->ComputeSeconds = RS.ComputeSeconds;
    Tel->WallSeconds = Wall;
  }

  if (!Alive) {
    Resp.Error = "cancelled: client disconnected";
    return Resp;
  }
  if (RS.DeadlineExpired) {
    // Partial answer, honestly labeled: every point the deadline cut
    // off -- dropped jobs and withdrawn subscriptions alike -- carries
    // Ok=false, Error="deadline exceeded"; points that did land are
    // returned verbatim. Resp.Ok stays true (this IS the answer) and
    // Resp.Error names the degradation.
    for (size_t I = 0; I < RS.Total; ++I) {
      SweepPoint &P = RS.Points[I];
      if (!P.Ok && P.Error.empty()) {
        P.Cache = Prep.Configs[I];
        P.Backend = RS.SO.Backend;
        P.Error = "deadline exceeded";
      }
    }
    Resp.Error = "deadline exceeded";
  }
  SweepReport Merged = std::move(RS.Merged);
  Merged.Points = std::move(RS.Points);
  L.unlock();
  Resp.Ok = true;
  Resp.Sweep = makeSweepDoc("wcs-serve", Req.programLabel(),
                            Req.sizeLabel(), Merged);
  return Resp;
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  Stats S = Counters;
  S.ActiveRequests = NumActive;
  S.QueuedJobs = 0;
  for (const RequestState *RS : RoundRobin)
    S.QueuedJobs += RS->Queue.size();
  S.QueuedPoints = QueuedPoints;
  S.StoreEntries = Store.numEntries();
  return S;
}
