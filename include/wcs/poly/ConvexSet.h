//===- wcs/poly/ConvexSet.h - Conjunctions of affine constraints -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A convex integer set: the integer points satisfying a conjunction of
/// affine constraints. Iteration domains of loop and access nodes (paper
/// Sec. 3.2) are represented as these (or small unions of them, see
/// IntegerSet.h).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_POLY_CONVEXSET_H
#define WCS_POLY_CONVEXSET_H

#include "wcs/poly/AffineExpr.h"
#include "wcs/poly/FourierMotzkin.h"
#include "wcs/support/IterVec.h"

#include <optional>
#include <string>
#include <vector>

namespace wcs {

/// A single affine constraint: `Expr >= 0` or `Expr == 0`.
struct Constraint {
  enum class Kind { GE, EQ };

  AffineExpr Expr;
  Kind K = Kind::GE;

  Constraint() = default;
  Constraint(AffineExpr E, Kind K) : Expr(std::move(E)), K(K) {}

  static Constraint ge(AffineExpr E) {
    return Constraint(std::move(E), Kind::GE);
  }
  static Constraint eq(AffineExpr E) {
    return Constraint(std::move(E), Kind::EQ);
  }

  bool holdsAt(const IterVec &At) const {
    int64_t V = Expr.eval(At);
    return K == Kind::EQ ? V == 0 : V >= 0;
  }
};

/// Inclusive integer bounds of one variable under a fixed prefix.
struct VarBounds {
  int64_t Lo;
  int64_t Hi; ///< Lo > Hi encodes an empty range.

  bool empty() const { return Lo > Hi; }
  int64_t extent() const { return empty() ? 0 : Hi - Lo + 1; }
};

/// The integer points of `Z^NumDims` satisfying all constraints.
class ConvexSet {
public:
  ConvexSet() = default;
  explicit ConvexSet(unsigned NumDims) : Dims(NumDims) {}

  /// The universe set over \p NumDims dimensions.
  static ConvexSet universe(unsigned NumDims) { return ConvexSet(NumDims); }

  unsigned numDims() const { return Dims; }
  const std::vector<Constraint> &constraints() const { return Cons; }

  void addConstraint(Constraint C);

  /// Adds all constraints of \p Other (dimensions must match).
  void intersectWith(const ConvexSet &Other);

  /// Returns this set with dimensions extended to \p NumDims (constraints
  /// are unchanged; the new trailing dimensions are unconstrained).
  ConvexSet extendedTo(unsigned NumDims) const;

  /// Exact membership test.
  bool contains(const IterVec &At) const;

  /// Integer bounds of the last dimension when all other dimensions are
  /// fixed to the first numDims()-1 values of \p Prefix. Requires that no
  /// constraint mentions dimensions beyond the last (always true for loop
  /// domains). Returns std::nullopt if the variable is unbounded in either
  /// direction (an invalid loop domain).
  ///
  /// Because all constraints are affine inequalities/equalities, the
  /// feasible values of the last dimension under a fixed prefix always
  /// form a contiguous interval, so no per-point membership test is needed
  /// when iterating a loop domain.
  std::optional<VarBounds> lastDimBounds(const IterVec &Prefix) const;

  /// Rational emptiness check (Infeasible implies integer-empty).
  FMStatus emptyRational() const;

  /// Builds a LinearSystem over numDims() variables with all constraints.
  LinearSystem toSystem() const;

  /// Appends the constraints into \p Sys, remapping this set's dimension
  /// \p D to system variable `VarMap[D]`. The system may have extra
  /// variables (e.g. the warp-count variable k in conflict systems).
  void addToSystem(LinearSystem &Sys,
                   const std::vector<unsigned> &VarMap) const;

  std::string str(const std::vector<std::string> &DimNames = {}) const;

private:
  unsigned Dims = 0;
  std::vector<Constraint> Cons;
};

} // namespace wcs

#endif // WCS_POLY_CONVEXSET_H
