//===- cache/ConcreteCache.cpp --------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/ConcreteCache.h"

#include <cassert>

using namespace wcs;

ConcreteHierarchy::ConcreteHierarchy(const HierarchyConfig &Config,
                                     bool PropagateWritebacks)
    : Cfg(Config), Writebacks(PropagateWritebacks) {
  assert(Config.validate().empty() && "invalid hierarchy configuration");
  for (const CacheConfig &C : Config.Levels)
    Levels.emplace_back(C);
}

HierarchyOutcome ConcreteHierarchy::access(BlockId B, bool IsWrite) {
  HierarchyOutcome R;
  ConcreteCache &L1 = Levels.front();
  bool Alloc1 = !(IsWrite && L1.config().WriteAlloc == WriteAllocate::No);
  AccessOutcome O1 = L1.access(B, Alloc1);
  R.L1Hit = O1.Hit;
  if (O1.Hit || O1.Inserted)
    L1.orDirtyAt(O1.Set, O1.Way, IsWrite);

  if (O1.Hit || Levels.size() < 2)
    return R;
  lowerLevels(B, IsWrite, Alloc1, O1, R);
  return R;
}

void ConcreteHierarchy::lowerLevels(BlockId B, bool IsWrite, bool Alloc1,
                                    const AccessOutcome &O1,
                                    HierarchyOutcome &R) {
  ConcreteCache &L1 = Levels.front();
  ConcreteCache &L2 = Levels[1];
  bool Alloc2 = !(IsWrite && L2.config().WriteAlloc == WriteAllocate::No);
  R.L2Accessed = true;

  switch (Cfg.Inclusion) {
  case InclusionPolicy::NonInclusiveNonExclusive:
  case InclusionPolicy::Inclusive: {
    // The L2 sees the same block (paper Eq. (24)); inclusively, an L2
    // victim additionally back-invalidates its L1 copy.
    AccessOutcome O2 = L2.access(B, Alloc2);
    R.L2Hit = O2.Hit;
    if (O2.Hit || O2.Inserted)
      L2.orDirtyAt(O2.Set, O2.Way, IsWrite);
    if (Cfg.Inclusion == InclusionPolicy::Inclusive && O2.Inserted &&
        O2.EvictedValid && L1.invalidate(O2.EvictedBlock))
      ++R.BackInvalidations;
    // Optional richer model: a dirty L1 victim is written back to the L2.
    if (Writebacks && O1.Inserted && O1.EvictedDirty) {
      AccessOutcome WB = L2.access(O1.EvictedBlock, /*Allocate=*/true);
      if (WB.Hit || WB.Inserted)
        L2.setDirtyAt(WB.Set, WB.Way, true);
      if (Cfg.Inclusion == InclusionPolicy::Inclusive && WB.Inserted &&
          WB.EvictedValid && L1.invalidate(WB.EvictedBlock))
        ++R.BackInvalidations;
      ++R.L2Writebacks;
      if (!WB.Hit)
        ++R.L2WritebackMisses;
    }
    break;
  }
  case InclusionPolicy::Exclusive: {
    if (!Alloc1) {
      // Bypassed write miss: look up the L2 without promoting.
      R.L2Hit = L2.probe(B);
      break;
    }
    // Promotion: the block leaves the L2 (if present) and lives in the
    // L1 only; the L1 victim becomes an L2 resident.
    std::optional<ConcreteLine> InL2 = L2.invalidate(B);
    R.L2Hit = InL2.has_value();
    if (InL2)
      L1.orDirtyAt(O1.Set, O1.Way, InL2->Dirty);
    if (O1.Inserted && O1.EvictedValid) {
      AccessOutcome OV = L2.access(O1.EvictedBlock, /*Allocate=*/true);
      if (OV.Inserted)
        L2.setDirtyAt(OV.Set, OV.Way, O1.EvictedDirty);
      else if (OV.Hit)
        L2.orDirtyAt(OV.Set, OV.Way, O1.EvictedDirty);
    }
    break;
  }
  }
}

template <PolicyKind P, unsigned CtAssoc>
void ConcreteHierarchy::accessBatchImpl(const BatchedAccess *Ops, size_t N,
                                        BatchCounters &C,
                                        const L1MissSink *Sink) {
  ConcreteCache &L1 = Levels.front();
  const bool NoWriteAlloc = L1.config().WriteAlloc == WriteAllocate::No;
  const bool TwoLevel = Levels.size() >= 2;
  C.L1Accesses += N;
  // Consecutive accesses to one block are guaranteed hits whose policy
  // update is idempotent (LRU: already most recent; FIFO: no-op; PLRU:
  // touch of the same way; QLRU: re-zeroing a zero hit age) -- only the
  // dirty OR of a write still matters. Sub-block strides and stride-0
  // operands make such runs common, so they bypass the cache entirely.
  // For QLRU the previous access must itself have been a hit: a hit on
  // a just-inserted line ages it InsertAge -> HitAge, a real update.
  BlockId LastB = kInvalidBlock;
  unsigned LastSet = 0, LastWay = 0;
  for (size_t K = 0; K < N; ++K) {
    BlockId B = Ops[K].block();
    bool IsWrite = Ops[K].isWrite();
    if (B == LastB) {
      if (IsWrite)
        L1.orDirtyAt(LastSet, LastWay, true);
      continue;
    }
    bool Alloc1 = !(IsWrite && NoWriteAlloc);
    AccessOutcome O1 = L1.accessAsNoMra<P, CtAssoc>(B, Alloc1);
    bool Resident = P == PolicyKind::QuadAgeLru ? O1.Hit
                                                : O1.Hit || O1.Inserted;
    LastB = Resident ? B : kInvalidBlock;
    LastSet = O1.Set;
    LastWay = O1.Way;
    if (O1.Hit) {
      if (IsWrite)
        L1.orDirtyAt(O1.Set, O1.Way, true);
      continue;
    }
    ++C.L1Misses;
    if (Sink)
      (*Sink)(B, IsWrite);
    if (O1.Inserted && IsWrite)
      L1.orDirtyAt(O1.Set, O1.Way, true);
    if (!TwoLevel)
      continue;
    HierarchyOutcome R;
    lowerLevels(B, IsWrite, Alloc1, O1, R);
    ++C.L2Accesses;
    if (!R.L2Hit)
      ++C.L2Misses;
  }
  if (N != 0)
    L1.noteAccessedSet(L1.setOf(Ops[N - 1].block()));
}

template <PolicyKind P>
void ConcreteHierarchy::accessBatchAs(const BatchedAccess *Ops, size_t N,
                                      BatchCounters &C,
                                      const L1MissSink *Sink) {
  switch (Levels.front().assoc()) {
  case 4:
    accessBatchImpl<P, 4>(Ops, N, C, Sink);
    break;
  case 8:
    accessBatchImpl<P, 8>(Ops, N, C, Sink);
    break;
  case 16:
    accessBatchImpl<P, 16>(Ops, N, C, Sink);
    break;
  default:
    accessBatchImpl<P, 0>(Ops, N, C, Sink);
    break;
  }
}

void ConcreteHierarchy::accessBatch(const BatchedAccess *Ops, size_t N,
                                    BatchCounters &C,
                                    const L1MissSink *Sink) {
  switch (Levels.front().config().Policy) {
  case PolicyKind::Lru:
    accessBatchAs<PolicyKind::Lru>(Ops, N, C, Sink);
    break;
  case PolicyKind::Fifo:
    accessBatchAs<PolicyKind::Fifo>(Ops, N, C, Sink);
    break;
  case PolicyKind::Plru:
    accessBatchAs<PolicyKind::Plru>(Ops, N, C, Sink);
    break;
  case PolicyKind::QuadAgeLru:
    accessBatchAs<PolicyKind::QuadAgeLru>(Ops, N, C, Sink);
    break;
  }
}

void ConcreteHierarchy::reset() {
  for (ConcreteCache &C : Levels)
    C.reset();
}
