//===- wcs/driver/Sweep.h - Single-pass cache-hierarchy sweep ---*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Design-space sweep driver: evaluates one program against a whole grid
/// of cache-hierarchy configurations for far less than one simulation
/// per configuration. Two mechanisms stack:
///
///  - Single-level write-allocate LRU points are answered analytically
///    from shared stack-distance passes: a per-set stack-distance bank
///    (SetDistanceBank) per distinct (block size, set count) geometry,
///    and every associativity of a geometry -- and thus every capacity
///    point -- falls out of the Mattson inclusion property without
///    further work. K LRU capacity points cost one shared pass instead
///    of K simulations. The pass itself comes in two flavors: for long
///    traces (decided by a cheap counting pre-walk) each bank is
///    produced by a warp-aware periodic pass (trace/PeriodicPass) that
///    skips periodic trace phases analytically and is sublinear in
///    trace length like warping itself; short traces, and sweeps with
///    WarpSweep off, use ONE linear trace walk feeding all banks.
///    Both flavors are bit-identical.
///
///  - Two-level NINE points are grouped by their L1 configuration: the
///    L1-miss-filtered access stream of each distinct L1 is recorded
///    ONCE (trace/FilteredStream) and answers every L2 sharing that L1
///    -- LRU write-allocate L2s analytically from stack-distance banks
///    conditioned on the stream, all other L2s by replaying the (much
///    shorter) recorded stream through a concrete L2 as deduplicated
///    BatchRunner jobs. K two-level points over G distinct L1s cost G
///    L1 simulations plus cheap replays instead of K full simulations.
///
///  - All remaining points (single-level FIFO / PLRU / QLRU,
///    no-write-allocate LRU, inclusive/exclusive hierarchies, and
///    two-level points whose stream recording overran its cap) are
///    deduplicated -- grids routinely expand to identical
///    configurations -- and fanned across BatchRunner workers, on the
///    warping backend by default.
///
/// Results carry per-point provenance (method, backend, attributed wall
/// time) and serialize as a schema-versioned "wcs-sweep" document,
/// reusing the Json/Results plumbing of the wcs-results files.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_DRIVER_SWEEP_H
#define WCS_DRIVER_SWEEP_H

#include "wcs/driver/BatchRunner.h"
#include "wcs/driver/SpecParse.h"
#include "wcs/support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wcs {

/// How one sweep point's counters were obtained.
enum class SweepMethod {
  StackDistance, ///< Shared per-set stack-distance pass (LRU fast path).
  /// Shared L1-miss-filtered stream (two-level NINE fast path); the
  /// point's Backend tells the second stage apart: StackDistance for
  /// L2s answered from a conditioned bank, Concrete for replayed L2s.
  FilteredStream,
  Simulated, ///< Dedicated simulation job through BatchRunner.
  /// Answered from the wcs-serve content-addressed result store: the
  /// counters were computed by an earlier request (whose own method
  /// provenance was one of the above at insert time) and returned
  /// verbatim, bit-identical to fresh simulation.
  Store,
};

const char *sweepMethodName(SweepMethod M);

/// Inverse of sweepMethodName. Returns false on an unknown name, leaving
/// \p Out untouched.
bool parseSweepMethodName(const std::string &Name, SweepMethod &Out);

/// Outcome of one grid point.
struct SweepPoint {
  HierarchyConfig Cache;
  SweepMethod Method = SweepMethod::Simulated;
  SimBackend Backend = SimBackend::Warping;
  bool Ok = false;
  std::string Error;
  /// Counters; Stats.Seconds is the wall time attributed to this point
  /// (its job's time, or an equal share of the shared trace pass for
  /// stack-distance points).
  SimStats Stats;
};

struct SweepOptions {
  SimOptions Sim;
  /// Worker threads for the simulated partition, the filtered-stream
  /// recordings and the periodic passes (0 = all cores).
  unsigned Threads = 1;
  /// Backend for points no fast path can answer.
  SimBackend Backend = SimBackend::Warping;
  /// Cap on the STORED records of one L1-miss-filtered stream (memory
  /// guard: a record is 16 bytes). Streams are run-length encoded, so
  /// periodic streams stay far below their logical length; a recording
  /// that would exceed the cap even compressed is aborted and its grid
  /// points fall back to full simulation with method "simulated".
  /// 0 = unlimited. The default bounds a stream at 1 GiB.
  uint64_t MaxFilteredRecords = 1ull << 26;
  /// Warp-aware sweeping: produce the single-level LRU banks by
  /// per-geometry periodic passes (trace/PeriodicPass) when the trace
  /// is long, instead of the linear shared walk. Results are
  /// bit-identical either way; this only moves the crossover at which
  /// the sweep beats independent warping runs. false = always the
  /// linear walk (the wcs-sim --no-warp-sweep escape hatch).
  bool WarpSweep = true;
  /// Trace length (in accesses) at which the periodic pass takes over
  /// from the linear walk. Decided by a counting pre-walk that aborts
  /// at the threshold, so the probe costs a few ms at most. Below it
  /// the linear walk is already cheap and the per-bank warping runs
  /// would not pay for themselves (a cache that never fills never
  /// warps). 0 = periodic whenever WarpSweep is on.
  uint64_t WarpSweepMinAccesses = 2ull << 20;
};

/// Everything runSweep returns: per-point results in input order plus
/// the shared-pass and partition figures.
struct SweepReport {
  std::vector<SweepPoint> Points; ///< Indexed by input config order.
  double TracePassSeconds = 0.0;  ///< Cost of the linear shared pass.
  uint64_t TraceAccesses = 0;     ///< Accesses in the shared pass(es).
  unsigned NumBanks = 0;          ///< Distinct (block, sets) geometries.
  size_t StackDistancePoints = 0; ///< Points answered analytically.
  /// Warp-aware sweeping: true when the banks came from periodic
  /// passes (one warping depth-profile run per geometry) instead of
  /// the linear walk.
  bool PeriodicPass = false;
  double PeriodicPassSeconds = 0.0;   ///< Sum of per-bank pass times.
  uint64_t PeriodicWarps = 0;         ///< Warps across all passes.
  uint64_t PeriodicWarpedAccesses = 0;///< Accesses skipped analytically.
  size_t FilteredPoints = 0;      ///< Points answered via filtered streams.
  unsigned FilteredGroups = 0;    ///< Distinct L1 configs recorded.
  uint64_t FilteredRecords = 0;   ///< Logical records across all streams.
  uint64_t FilteredStoredRecords = 0; ///< Stored after RLE compression.
  double RecordSeconds = 0.0;     ///< Stream recording + bank feeding.
  /// L1 configs of groups demoted to full simulation because their
  /// recording overran the stream cap even after compression; tools
  /// surface these so the method change is visible interactively.
  std::vector<std::string> DemotedL1s;
  size_t SimulatedJobs = 0;       ///< Jobs actually run (after dedup).
  size_t ReplayJobs = 0;          ///< Of those, filtered-stream replays.
  size_t DedupedPoints = 0;       ///< Simulated points sharing a job.
  double SimulatedSeconds = 0.0;  ///< Sum of full-simulation job times.
  double ReplaySeconds = 0.0;     ///< Sum of stream-replay job times.
  double WallSeconds = 0.0;
  unsigned Threads = 1;

  bool allOk() const;
  /// Wall time attributed to the stack-distance method (whichever pass
  /// flavor ran).
  double stackDistanceSeconds() const {
    return TracePassSeconds + PeriodicPassSeconds;
  }
  /// Wall time attributed to the filtered-stream method (recording +
  /// bank conditioning + replays).
  double filteredSeconds() const { return RecordSeconds + ReplaySeconds; }
  /// One-line partition/cost summary for tools.
  std::string summary() const;
};

/// Sweeps \p Program over \p Configs. Configurations may repeat; every
/// input index gets a point. The program must outlive the call.
SweepReport runSweep(const ScopProgram &Program,
                     const std::vector<HierarchyConfig> &Configs,
                     const SweepOptions &Opts);

/// Splits \p Configs into sub-sweep groups along exactly the seams
/// runSweep's internal partition never shares across: all single-level
/// write-allocate LRU points form ONE group (they share the
/// stack-distance pass and its banks), two-level NINE points group by
/// their L1 configuration (one recorded filtered stream per distinct
/// L1), and every other point groups by its exact configuration (the
/// BatchRunner dedup key). Each returned group lists input indices in
/// input order; every index appears in exactly one group.
///
/// The invariant this buys: running each group through its own
/// runSweep call yields counters bit-identical to one combined call
/// over all of \p Configs -- per-point results never depend on which
/// other points ride along, only the COST does, and the grouping keeps
/// every intra-request sharing opportunity (shared pass, shared
/// stream, job dedup) inside one group. This is what lets the
/// wcs-serve scheduler interleave jobs from many requests without
/// giving up the sharing that makes sweeps fast. Invalid
/// configurations group by their exact configuration like the
/// simulated remainder (they fail identically wherever they run).
std::vector<std::vector<size_t>>
partitionSweepGroups(const std::vector<HierarchyConfig> &Configs);

/// Accumulates the aggregate pass/partition figures of \p From into
/// \p Into: additive figures (pass seconds, job counts, record
/// counts...) sum, TraceAccesses takes the max (same program, same
/// trace -- summing would double-count), PeriodicPass ORs, DemotedL1s
/// appends. Points and Threads are left untouched: the caller owns
/// point placement. Used to reassemble one SweepReport from per-group
/// sub-sweeps (see partitionSweepGroups).
void mergeSweepReports(SweepReport &Into, const SweepReport &From);

//===----------------------------------------------------------------------===//
// The wcs-sweep results document
//===----------------------------------------------------------------------===//

/// Sweep-file format identifier and version; same regime as the
/// wcs-results schema (readers reject any mismatch).
inline constexpr const char SweepSchemaName[] = "wcs-sweep";
inline constexpr int64_t SweepSchemaVersion = 1;

/// A whole sweep file: producer metadata, shared-pass figures, points.
/// The periodic-pass and per-method-seconds figures joined the v1
/// schema after its first release: always written, optional on read
/// (defaulting to 0/false/empty, which is what pre-periodic sweeps
/// genuinely had), so older v1 files keep parsing.
struct SweepDoc {
  std::string Tool;     ///< Producing tool ("wcs-sim").
  std::string Program;  ///< Swept program (kernel name or file).
  std::string SizeName; ///< Problem-size label, empty when inapplicable.
  unsigned Threads = 1;
  double TracePassSeconds = 0.0;
  uint64_t TraceAccesses = 0;
  bool PeriodicPass = false;          ///< Warp-aware pass produced the banks.
  double PeriodicPassSeconds = 0.0;   ///< Sum of per-bank pass times.
  uint64_t PeriodicWarps = 0;
  uint64_t PeriodicWarpedAccesses = 0;
  unsigned FilteredGroups = 0;  ///< Distinct L1 streams recorded.
  uint64_t FilteredRecords = 0; ///< Logical records across all streams.
  uint64_t FilteredStoredRecords = 0; ///< Stored after RLE compression.
  double RecordSeconds = 0.0;   ///< Stream recording + bank feeding.
  double ReplaySeconds = 0.0;   ///< Stream-replay job times.
  double SimulatedSeconds = 0.0;///< Full-simulation job times.
  std::vector<std::string> DemotedL1s; ///< Cap-demoted L1 groups.
  size_t SimulatedJobs = 0;
  size_t DedupedPoints = 0;
  std::vector<SweepPoint> Points;
};

/// One-line per-method breakdown of a sweep document -- point counts
/// and attributed seconds per method, periodic-pass provenance -- used
/// verbatim by wcs-sim (on a freshly packaged report) and by
/// wcs-report's single-file rendering, so the live run and the
/// artifact rendering can never drift apart.
std::string methodBreakdownLine(const SweepDoc &D);

json::Value toJson(const SweepPoint &P);
bool fromJson(const json::Value &V, SweepPoint &Out, std::string *Err);
json::Value toJson(const SweepDoc &D);
bool fromJson(const json::Value &V, SweepDoc &Out, std::string *Err);

bool writeSweepFile(const std::string &Path, const SweepDoc &D,
                    std::string *Err);
bool readSweepFile(const std::string &Path, SweepDoc &Out, std::string *Err);

/// Packages a sweep report as a document.
SweepDoc makeSweepDoc(std::string Tool, std::string Program,
                      std::string SizeName, const SweepReport &Report);

} // namespace wcs

#endif // WCS_DRIVER_SWEEP_H
