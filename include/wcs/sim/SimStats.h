//===- wcs/sim/SimStats.h - Simulation counters -----------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters produced by the simulators: per-level access/miss counts plus
/// warping diagnostics (share of non-warped accesses, Fig. 6 top panel).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_SIMSTATS_H
#define WCS_SIM_SIMSTATS_H

#include <cstdint>
#include <string>

namespace wcs {

/// Access/miss counters of one cache level.
struct LevelStats {
  uint64_t Accesses = 0;
  uint64_t Misses = 0;

  uint64_t hits() const { return Accesses - Misses; }
  double missRatio() const {
    return Accesses == 0 ? 0.0 : static_cast<double>(Misses) / Accesses;
  }
};

/// Full result of one simulation run.
struct SimStats {
  unsigned NumLevels = 1;
  LevelStats Level[2];

  /// Accesses performed by explicit (symbolic or concrete) simulation.
  uint64_t SimulatedAccesses = 0;
  /// Accesses accounted for analytically by warping (Theorem 4).
  uint64_t WarpedAccesses = 0;
  /// Number of successful warp applications.
  uint64_t Warps = 0;
  /// Warp candidates that matched the state hash but failed verification
  /// or the applicability checks of IterationsToWarp.
  uint64_t FailedWarpChecks = 0;

  /// Wall-clock seconds spent inside the simulation loop.
  double Seconds = 0.0;

  uint64_t totalAccesses() const { return Level[0].Accesses; }
  /// Share of accesses that had to be simulated explicitly (Fig. 6 top).
  double nonWarpedShare() const {
    uint64_t T = totalAccesses();
    return T == 0 ? 1.0 : static_cast<double>(SimulatedAccesses) / T;
  }

  std::string str() const;
};

} // namespace wcs

#endif // WCS_SIM_SIMSTATS_H
