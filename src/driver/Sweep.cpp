//===- src/driver/Sweep.cpp - Single-pass cache-hierarchy sweep -----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/Sweep.h"

#include "wcs/driver/Results.h"
#include "wcs/support/JsonReader.h"
#include "wcs/support/StringUtil.h"
#include "wcs/support/Telemetry.h"
#include "wcs/trace/FilteredStream.h"
#include "wcs/trace/PeriodicPass.h"
#include "wcs/trace/StackDistance.h"
#include "wcs/trace/TraceGenerator.h"

#include <cstdio>
#include <map>
#include <sstream>

using namespace wcs;
using namespace wcs::jsonfield;
using json::Value;

const char *wcs::sweepMethodName(SweepMethod M) {
  switch (M) {
  case SweepMethod::StackDistance:
    return "stack-distance";
  case SweepMethod::FilteredStream:
    return "filtered-stream";
  case SweepMethod::Simulated:
    return "simulated";
  case SweepMethod::Store:
    return "store";
  }
  return "?";
}

bool wcs::parseSweepMethodName(const std::string &Name, SweepMethod &Out) {
  std::string L = toLowerAscii(Name);
  if (L == "stack-distance" || L == "stackdistance")
    Out = SweepMethod::StackDistance;
  else if (L == "filtered-stream" || L == "filteredstream")
    Out = SweepMethod::FilteredStream;
  else if (L == "simulated")
    Out = SweepMethod::Simulated;
  else if (L == "store")
    Out = SweepMethod::Store;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// The sweep driver
//===----------------------------------------------------------------------===//

bool SweepReport::allOk() const {
  for (const SweepPoint &P : Points)
    if (!P.Ok)
      return false;
  return true;
}

std::string SweepReport::summary() const {
  char Pass[128];
  if (PeriodicPass)
    std::snprintf(Pass, sizeof(Pass),
                  "%u periodic warp passes (%llu warps, %.3f s)",
                  NumBanks,
                  static_cast<unsigned long long>(PeriodicWarps),
                  PeriodicPassSeconds);
  else
    std::snprintf(Pass, sizeof(Pass),
                  "one stack-distance pass (%u banks, %.3f s)", NumBanks,
                  TracePassSeconds);
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "%zu points: %zu from %s, "
      "%zu from %u filtered L1 streams (%llu records, %llu stored, "
      "%.3f s), %zu fully simulated; %zu jobs (%zu replays, %zu deduped) "
      "on %u threads; %.3f s total",
      Points.size(), StackDistancePoints, Pass, FilteredPoints,
      FilteredGroups, static_cast<unsigned long long>(FilteredRecords),
      static_cast<unsigned long long>(FilteredStoredRecords),
      RecordSeconds, Points.size() - StackDistancePoints - FilteredPoints,
      SimulatedJobs, ReplayJobs, DedupedPoints, Threads, WallSeconds);
  return Buf;
}

SweepReport wcs::runSweep(const ScopProgram &Program,
                          const std::vector<HierarchyConfig> &Configs,
                          const SweepOptions &Opts) {
  telemetry::Span RunSpan("sweep.run");
  RunSpan.arg("points", static_cast<uint64_t>(Configs.size()));
  telemetry::TimePoint T0 = telemetry::now();
  SweepReport Rep;
  Rep.Points.resize(Configs.size());

  // Partition the grid three ways:
  //  - single-level write-allocate LRU: answered from a per-set
  //    stack-distance bank keyed on (block size, set count), produced
  //    by a shared pass (periodic warp-aware per bank, or one linear
  //    walk feeding all banks -- see below);
  //  - two-level NINE: grouped by L1 config; each group records the
  //    L1-miss-filtered stream once, then answers LRU write-allocate
  //    L2s from banks conditioned on the stream and replays the rest
  //    through deduplicated BatchRunner jobs;
  //  - everything else: a simulation job, deduplicated by exact
  //    configuration.
  std::vector<SetDistanceBank> Banks;
  std::vector<unsigned> BankMaxAssoc; ///< Largest ways asked of each bank.
  std::map<std::pair<unsigned, unsigned>, size_t> BankIndex;
  struct FastPoint {
    size_t Point;
    size_t Bank;
  };
  std::vector<FastPoint> Fast;

  struct AnalyticPoint {
    size_t Point;
    size_t Bank; ///< Index into the group's conditioned banks.
  };
  struct FilteredGroup {
    CacheConfig L1;
    std::vector<size_t> Members; ///< All input indices sharing this L1.
    std::vector<AnalyticPoint> Analytic;
    std::vector<size_t> ReplayPoints;
    std::vector<SetDistanceBank> Banks; ///< Conditioned on the stream.
    std::map<std::pair<unsigned, unsigned>, size_t> BankIndex;
    FilteredStream Stream;
    double FeedSeconds = 0.0;
    /// Recording/feeding threw: the stream is unusable, exactly like a
    /// truncated one, and the group's points demote to plain simulation.
    bool Failed = false;
  };
  std::vector<FilteredGroup> Groups;
  std::map<std::string, size_t> GroupIndex; ///< L1 config key -> group.

  std::vector<size_t> PlainSim; ///< Input indices needing a full job.

  telemetry::Span PartitionSpan("sweep.partition");
  for (size_t I = 0; I < Configs.size(); ++I) {
    const HierarchyConfig &H = Configs[I];
    SweepPoint &P = Rep.Points[I];
    P.Cache = H;
    std::string CfgErr = H.validate();
    if (!CfgErr.empty()) {
      P.Error = CfgErr;
      continue;
    }
    const CacheConfig &L1 = H.Levels.front();
    if (H.numLevels() == 1 && L1.Policy == PolicyKind::Lru &&
        L1.WriteAlloc == WriteAllocate::Yes) {
      P.Method = SweepMethod::StackDistance;
      P.Backend = SimBackend::StackDistance;
      auto Key = std::make_pair(L1.BlockBytes, L1.numSets());
      auto It = BankIndex.find(Key);
      if (It == BankIndex.end()) {
        It = BankIndex.emplace(Key, Banks.size()).first;
        Banks.emplace_back(L1.BlockBytes, L1.numSets());
        BankMaxAssoc.push_back(0);
      }
      BankMaxAssoc[It->second] =
          std::max(BankMaxAssoc[It->second], L1.Assoc);
      Fast.push_back(FastPoint{I, It->second});
      continue;
    }
    if (H.numLevels() == 2 &&
        H.Inclusion == InclusionPolicy::NonInclusiveNonExclusive) {
      std::string GKey = toJson(L1).dump(false);
      auto It = GroupIndex.find(GKey);
      if (It == GroupIndex.end()) {
        It = GroupIndex.emplace(std::move(GKey), Groups.size()).first;
        Groups.emplace_back();
        Groups.back().L1 = L1;
      }
      FilteredGroup &G = Groups[It->second];
      G.Members.push_back(I);
      P.Method = SweepMethod::FilteredStream;
      const CacheConfig &L2 = H.Levels[1];
      if (FilteredStream::l2IsAnalytic(L2)) {
        P.Backend = SimBackend::StackDistance;
        auto BKey = std::make_pair(L2.BlockBytes, L2.numSets());
        auto BIt = G.BankIndex.find(BKey);
        if (BIt == G.BankIndex.end()) {
          BIt = G.BankIndex.emplace(BKey, G.Banks.size()).first;
          G.Banks.emplace_back(L2.BlockBytes, L2.numSets());
        }
        G.Analytic.push_back(AnalyticPoint{I, BIt->second});
      } else {
        P.Backend = SimBackend::Concrete;
        G.ReplayPoints.push_back(I);
      }
      continue;
    }
    P.Method = SweepMethod::Simulated;
    P.Backend = Opts.Backend;
    PlainSim.push_back(I);
  }
  PartitionSpan.arg("banks", static_cast<uint64_t>(Banks.size()));
  PartitionSpan.arg("l1_groups", static_cast<uint64_t>(Groups.size()));
  PartitionSpan.arg("plain_sim", static_cast<uint64_t>(PlainSim.size()));
  PartitionSpan.end();
  Rep.NumBanks = static_cast<unsigned>(Banks.size());
  Rep.StackDistancePoints = Fast.size();

  // One runner serves the periodic passes, the stream recordings and
  // the simulated partition (all independent work items).
  BatchRunner Runner(Opts.Threads);
  Rep.Threads = Runner.threads();

  // The shared stack-distance pass(es). Two flavors, bit-identical:
  //  - periodic (warp-aware): one warping depth-profile run per bank
  //    geometry, sublinear on periodic traces (trace/PeriodicPass);
  //  - linear: one trace walk feeding every bank.
  // A counting pre-walk (aborted at the threshold, so it costs a few ms
  // at most) picks the flavor: short traces walk linearly -- their pass
  // is already cheap, and warping a cache that never fills cannot pay
  // for itself -- long traces take the periodic passes.
  std::vector<PeriodicPassResult> PassResults;
  double PassProbeSeconds = 0.0;
  if (!Banks.empty()) {
    telemetry::TimePoint P0 = telemetry::now();
    TraceOptions TO;
    TO.IncludeScalars = Opts.Sim.IncludeScalars;
    bool Periodic = false;
    if (Opts.WarpSweep) {
      if (Opts.WarpSweepMinAccesses == 0) {
        Periodic = true;
      } else {
        struct LongEnough {};
        uint64_t Count = 0;
        try {
          generateTrace(Program, TO, [&](const TraceRecord &) {
            if (++Count >= Opts.WarpSweepMinAccesses)
              throw LongEnough{};
          });
        } catch (const LongEnough &) {
        }
        Periodic = Count >= Opts.WarpSweepMinAccesses;
      }
    }
    if (Periodic) {
      Rep.PeriodicPass = true;
      // The probe walk is pass cost too; count it so the attributed
      // shares still sum to the real cost of the method.
      PassProbeSeconds = telemetry::secondsSince(P0);
      Rep.PeriodicPassSeconds += PassProbeSeconds;
      PassResults.resize(Banks.size());
      // A pass that throws (e.g. bad_alloc) must not poison its bank: a
      // default-constructed PassResult holds an EMPTY histogram whose
      // addTo would "succeed" and make every point on the bank report
      // zero misses as if nothing was ever accessed. Track failures and
      // demote those banks to the linear walk.
      std::vector<uint8_t> PassFailed(Banks.size(), 0);
      std::vector<std::function<void()>> Tasks;
      Tasks.reserve(Banks.size());
      for (size_t B = 0; B < Banks.size(); ++B)
        Tasks.push_back([&Program, &Opts, &PassResults, &Banks,
                         &BankMaxAssoc, &PassFailed, B] {
          telemetry::Span PassSpan("sweep.periodic-bank");
          PassSpan.arg("bank", static_cast<uint64_t>(B));
          try {
            PassResults[B] =
                runPeriodicPass(Program, Banks[B].blockBytes(),
                                Banks[B].numSets(), BankMaxAssoc[B],
                                Opts.Sim);
          } catch (...) {
            PassFailed[B] = 1;
          }
        });
      Runner.runTasks(Tasks);
      // A bank may also reject a successful pass result (its bulk
      // counters would overflow). Either way the bank stays empty and
      // is conditioned by the linear pass below instead -- the same
      // accesses, walked not scaled, so its points stay exact.
      std::vector<SetDistanceBank *> Demoted;
      for (size_t B = 0; B < Banks.size(); ++B) {
        if (PassFailed[B] || !PassResults[B].addTo(Banks[B]))
          Demoted.push_back(&Banks[B]);
        Rep.PeriodicPassSeconds += PassResults[B].Stats.Seconds;
        Rep.PeriodicWarps += PassResults[B].Stats.Warps;
        Rep.PeriodicWarpedAccesses +=
            PassResults[B].Stats.WarpedAccesses;
      }
      Rep.TraceAccesses = PassResults.front().Histogram.Accesses;
      if (!Demoted.empty()) {
        telemetry::Span WalkSpan("sweep.stack-distance-pass");
        WalkSpan.arg("flavor", "demoted-linear");
        WalkSpan.arg("banks", static_cast<uint64_t>(Demoted.size()));
        telemetry::TimePoint L0 = telemetry::now();
        uint64_t Walked =
            generateTrace(Program, TO, [&](const TraceRecord &R) {
              for (SetDistanceBank *B : Demoted)
                B->accessAddr(R.Addr);
            });
        if (Rep.TraceAccesses == 0)
          Rep.TraceAccesses = Walked;
        Rep.TracePassSeconds += telemetry::secondsSince(L0);
      }
    } else {
      telemetry::Span WalkSpan("sweep.stack-distance-pass");
      WalkSpan.arg("flavor", "linear");
      WalkSpan.arg("banks", static_cast<uint64_t>(Banks.size()));
      Rep.TraceAccesses =
          generateTrace(Program, TO, [&](const TraceRecord &R) {
            for (SetDistanceBank &B : Banks)
              B.accessAddr(R.Addr);
          });
      Rep.TracePassSeconds = telemetry::secondsSince(P0);
    }
  }

  // Record one L1-miss-filtered stream per group and condition the L2
  // banks on it -- independent per group, so the recordings fan across
  // the worker pool. A truncated recording (stream cap exceeded even
  // after compression) demotes the whole group to plain simulation with
  // honest provenance.
  if (!Groups.empty()) {
    std::vector<std::function<void()>> RecTasks;
    RecTasks.reserve(Groups.size());
    for (FilteredGroup &G : Groups)
      RecTasks.push_back([&Program, &Opts, &G] {
        telemetry::Span RecSpan("sweep.filtered-record");
        RecSpan.arg("l1", G.L1.str());
        // Same honesty rule as the periodic passes: a recording that
        // throws leaves a default (empty, non-truncated) stream whose
        // replays would report zero misses. Fail the group instead; its
        // points demote to plain simulation below.
        try {
          G.Stream = FilteredStream::record(Program, G.L1, Opts.Sim,
                                            Opts.MaxFilteredRecords);
          if (!G.Stream.truncated() && !G.Banks.empty()) {
            telemetry::Span FeedSpan("sweep.filtered-feed");
            FeedSpan.arg("banks", static_cast<uint64_t>(G.Banks.size()));
            telemetry::TimePoint F0 = telemetry::now();
            for (SetDistanceBank &B : G.Banks)
              G.Stream.feed(B);
            G.FeedSeconds = telemetry::secondsSince(F0);
          }
        } catch (...) {
          G.Failed = true;
        }
      });
    Runner.runTasks(RecTasks);
  }
  for (FilteredGroup &G : Groups) {
    Rep.RecordSeconds += G.Stream.recordSeconds() + G.FeedSeconds;
    if (G.Stream.truncated() || G.Failed) {
      Rep.DemotedL1s.push_back(G.L1.str());
      for (size_t I : G.Members) {
        Rep.Points[I].Method = SweepMethod::Simulated;
        Rep.Points[I].Backend = Opts.Backend;
        PlainSim.push_back(I);
      }
      G.Analytic.clear();
      G.ReplayPoints.clear();
      continue;
    }
    ++Rep.FilteredGroups;
    Rep.FilteredPoints += G.Members.size();
    Rep.FilteredRecords += G.Stream.size();
    Rep.FilteredStoredRecords += G.Stream.storedRecords();
  }

  // Build the job list: full simulations plus stream replays, both
  // deduplicated by exact configuration (replays in their own key
  // namespace -- a replay and a full job of the same config must not
  // merge, their cost models differ).
  std::vector<BatchJob> Jobs;
  std::vector<std::vector<size_t>> JobPoints; ///< Job -> input indices.
  std::map<std::string, size_t> JobIndex;     ///< Config key -> job.
  auto addJob = [&](std::string Key, size_t PointIdx, BatchJob J) {
    auto It = JobIndex.find(Key);
    if (It == JobIndex.end()) {
      It = JobIndex.emplace(std::move(Key), Jobs.size()).first;
      Jobs.push_back(std::move(J));
      JobPoints.emplace_back();
    } else {
      ++Rep.DedupedPoints;
    }
    JobPoints[It->second].push_back(PointIdx);
  };
  for (size_t I : PlainSim) {
    const HierarchyConfig &H = Configs[I];
    BatchJob J;
    J.Program = &Program;
    J.Cache = H;
    J.Options = Opts.Sim;
    J.Backend = Opts.Backend;
    J.Tag = H.str();
    addJob(toJson(H).dump(false), I, std::move(J));
  }
  for (FilteredGroup &G : Groups)
    for (size_t I : G.ReplayPoints) {
      const HierarchyConfig &H = Configs[I];
      BatchJob J;
      J.Cache = H;
      J.Options = Opts.Sim;
      J.Backend = SimBackend::Concrete;
      J.Filtered = &G.Stream;
      J.Tag = H.str();
      addJob("replay:" + toJson(H).dump(false), I, std::move(J));
    }
  Rep.SimulatedJobs = Jobs.size();
  for (const BatchJob &J : Jobs)
    if (J.Filtered)
      ++Rep.ReplayJobs;

  // Fan the simulated partition across the workers.
  if (!Jobs.empty()) {
    BatchReport BRep = Runner.run(Jobs);
    for (size_t J = 0; J < Jobs.size(); ++J) {
      if (BRep.Results[J].Ok) {
        if (Jobs[J].Filtered)
          Rep.ReplaySeconds += BRep.Results[J].Stats.Seconds;
        else
          Rep.SimulatedSeconds += BRep.Results[J].Stats.Seconds;
      }
      for (size_t I : JobPoints[J]) {
        SweepPoint &P = Rep.Points[I];
        P.Ok = BRep.Results[J].Ok;
        P.Error = BRep.Results[J].Error;
        P.Stats = BRep.Results[J].Stats;
      }
    }
  }

  // Answer the fast-path points from the histograms. The pass cost is
  // attributed in equal shares over the points a pass answered (per
  // bank under periodic passes, where each bank had its own run): it is
  // the only cost these points have, and the shares sum back to the
  // true pass time.
  std::vector<size_t> BankPoints(Banks.size(), 0);
  for (const FastPoint &F : Fast)
    ++BankPoints[F.Bank];
  double EqualShare =
      Fast.empty() ? 0.0
                   : (Rep.TracePassSeconds + Rep.PeriodicPassSeconds) /
                         static_cast<double>(Fast.size());
  for (const FastPoint &F : Fast) {
    SweepPoint &P = Rep.Points[F.Point];
    const SetDistanceBank &Bank = Banks[F.Bank];
    P.Stats.NumLevels = 1;
    P.Stats.Level[0].Accesses = Bank.totalAccesses();
    P.Stats.Level[0].Misses =
        Bank.missesForCache(P.Cache.Levels.front());
    if (Rep.PeriodicPass) {
      const SimStats &PassStats = PassResults[F.Bank].Stats;
      P.Stats.SimulatedAccesses = PassStats.SimulatedAccesses;
      P.Stats.WarpedAccesses = PassStats.WarpedAccesses;
      P.Stats.Warps = PassStats.Warps;
      P.Stats.FailedWarpChecks = PassStats.FailedWarpChecks;
      P.Stats.Seconds =
          PassStats.Seconds / static_cast<double>(BankPoints[F.Bank]) +
          PassProbeSeconds / static_cast<double>(Fast.size());
    } else {
      P.Stats.SimulatedAccesses = Bank.totalAccesses();
      P.Stats.Seconds = EqualShare;
    }
    P.Ok = true;
  }

  // Answer the conditioned-bank points and attribute each group's
  // recording cost in equal shares over its members (replayed points
  // add their job's replay time on top; the shares again sum back to
  // the true recording cost).
  for (FilteredGroup &G : Groups) {
    if (G.Stream.truncated() || G.Failed)
      continue;
    double GShare = G.Members.empty()
                        ? 0.0
                        : (G.Stream.recordSeconds() + G.FeedSeconds) /
                              static_cast<double>(G.Members.size());
    for (const AnalyticPoint &A : G.Analytic) {
      SweepPoint &P = Rep.Points[A.Point];
      P.Stats.NumLevels = 2;
      P.Stats.Level[0] = G.Stream.l1Stats();
      P.Stats.Level[1].Accesses = G.Stream.size();
      P.Stats.Level[1].Misses =
          G.Banks[A.Bank].missesForCache(P.Cache.Levels[1]);
      P.Stats.SimulatedAccesses = G.Stream.l1Accesses();
      P.Stats.Seconds = GShare;
      P.Ok = true;
    }
    for (size_t I : G.ReplayPoints)
      Rep.Points[I].Stats.Seconds += GShare;
  }

  Rep.WallSeconds = telemetry::secondsSince(T0);
  return Rep;
}

std::vector<std::vector<size_t>>
wcs::partitionSweepGroups(const std::vector<HierarchyConfig> &Configs) {
  // Mirrors the three-way partition at the top of runSweep: the group
  // key is the sharing resource a point consumes, so points that could
  // share work in one combined call always land in one group.
  std::vector<std::vector<size_t>> Groups;
  std::map<std::string, size_t> ByKey;
  auto groupFor = [&](std::string Key) -> std::vector<size_t> & {
    auto It = ByKey.find(Key);
    if (It == ByKey.end()) {
      It = ByKey.emplace(std::move(Key), Groups.size()).first;
      Groups.emplace_back();
    }
    return Groups[It->second];
  };
  for (size_t I = 0; I < Configs.size(); ++I) {
    const HierarchyConfig &H = Configs[I];
    if (!H.validate().empty()) {
      groupFor("sim:" + toJson(H).dump(false)).push_back(I);
      continue;
    }
    const CacheConfig &L1 = H.Levels.front();
    if (H.numLevels() == 1 && L1.Policy == PolicyKind::Lru &&
        L1.WriteAlloc == WriteAllocate::Yes)
      groupFor("sd").push_back(I);
    else if (H.numLevels() == 2 &&
             H.Inclusion == InclusionPolicy::NonInclusiveNonExclusive)
      groupFor("fs:" + toJson(L1).dump(false)).push_back(I);
    else
      groupFor("sim:" + toJson(H).dump(false)).push_back(I);
  }
  return Groups;
}

void wcs::mergeSweepReports(SweepReport &Into, const SweepReport &From) {
  Into.TracePassSeconds += From.TracePassSeconds;
  Into.TraceAccesses = std::max(Into.TraceAccesses, From.TraceAccesses);
  Into.NumBanks += From.NumBanks;
  Into.StackDistancePoints += From.StackDistancePoints;
  Into.PeriodicPass = Into.PeriodicPass || From.PeriodicPass;
  Into.PeriodicPassSeconds += From.PeriodicPassSeconds;
  Into.PeriodicWarps += From.PeriodicWarps;
  Into.PeriodicWarpedAccesses += From.PeriodicWarpedAccesses;
  Into.FilteredPoints += From.FilteredPoints;
  Into.FilteredGroups += From.FilteredGroups;
  Into.FilteredRecords += From.FilteredRecords;
  Into.FilteredStoredRecords += From.FilteredStoredRecords;
  Into.RecordSeconds += From.RecordSeconds;
  Into.DemotedL1s.insert(Into.DemotedL1s.end(), From.DemotedL1s.begin(),
                         From.DemotedL1s.end());
  Into.SimulatedJobs += From.SimulatedJobs;
  Into.ReplayJobs += From.ReplayJobs;
  Into.DedupedPoints += From.DedupedPoints;
  Into.SimulatedSeconds += From.SimulatedSeconds;
  Into.ReplaySeconds += From.ReplaySeconds;
  Into.WallSeconds += From.WallSeconds;
}

std::string wcs::methodBreakdownLine(const SweepDoc &D) {
  size_t ByMethod[4] = {0, 0, 0, 0};
  for (const SweepPoint &P : D.Points)
    if (P.Ok)
      ++ByMethod[static_cast<unsigned>(P.Method)];
  char Buf[448];
  int N = std::snprintf(
      Buf, sizeof(Buf),
      "stack-distance %zu pts %.3f s (%s)  |  filtered-stream %zu pts "
      "%.3f s (record %.3f, replay %.3f)  |  simulated %zu pts %.3f s",
      ByMethod[static_cast<unsigned>(SweepMethod::StackDistance)],
      D.TracePassSeconds + D.PeriodicPassSeconds,
      D.PeriodicPass ? "periodic warp pass" : "linear trace pass",
      ByMethod[static_cast<unsigned>(SweepMethod::FilteredStream)],
      D.RecordSeconds + D.ReplaySeconds, D.RecordSeconds,
      D.ReplaySeconds,
      ByMethod[static_cast<unsigned>(SweepMethod::Simulated)],
      D.SimulatedSeconds);
  // Store-served points only occur in daemon responses; the segment is
  // omitted for plain CLI sweeps so their summary line is unchanged.
  size_t Stored = ByMethod[static_cast<unsigned>(SweepMethod::Store)];
  if (Stored > 0 && N > 0 && static_cast<size_t>(N) < sizeof(Buf))
    std::snprintf(Buf + N, sizeof(Buf) - static_cast<size_t>(N),
                  "  |  store %zu pts", Stored);
  return Buf;
}

//===----------------------------------------------------------------------===//
// The wcs-sweep document
//===----------------------------------------------------------------------===//

Value wcs::toJson(const SweepPoint &P) {
  Value V = Value::object();
  V.set("cache", toJson(P.Cache));
  V.set("method", sweepMethodName(P.Method));
  V.set("backend", backendName(P.Backend));
  V.set("ok", P.Ok);
  V.set("error", P.Error);
  V.set("stats", toJson(P.Stats));
  return V;
}

bool wcs::fromJson(const Value &V, SweepPoint &Out, std::string *Err) {
  std::string Method, Backend;
  const Value *Cache, *Stats;
  if (!needMember(V, "cache", Cache, Err) ||
      !fromJson(*Cache, Out.Cache, Err) ||
      !needString(V, "method", Method, Err) ||
      !needString(V, "backend", Backend, Err) ||
      !needBool(V, "ok", Out.Ok, Err) ||
      !needString(V, "error", Out.Error, Err) ||
      !needMember(V, "stats", Stats, Err) ||
      !fromJson(*Stats, Out.Stats, Err))
    return false;
  if (!parseSweepMethodName(Method, Out.Method))
    return failMsg(Err, "unknown sweep method '" + Method + "'");
  if (!parseBackendName(Backend, Out.Backend))
    return failMsg(Err, "unknown backend '" + Backend + "'");
  return true;
}

Value wcs::toJson(const SweepDoc &D) {
  Value V = Value::object();
  V.set("schema", SweepSchemaName);
  V.set("schema_version", SweepSchemaVersion);
  V.set("tool", D.Tool);
  V.set("program", D.Program);
  V.set("size", D.SizeName);
  V.set("threads", D.Threads);
  V.set("trace_pass_seconds", D.TracePassSeconds);
  V.set("trace_accesses", D.TraceAccesses);
  V.set("periodic_pass", D.PeriodicPass);
  V.set("periodic_pass_seconds", D.PeriodicPassSeconds);
  V.set("periodic_warps", D.PeriodicWarps);
  V.set("periodic_warped_accesses", D.PeriodicWarpedAccesses);
  V.set("filtered_groups", D.FilteredGroups);
  V.set("filtered_records", D.FilteredRecords);
  V.set("filtered_stored_records", D.FilteredStoredRecords);
  V.set("record_seconds", D.RecordSeconds);
  V.set("replay_seconds", D.ReplaySeconds);
  V.set("simulated_seconds", D.SimulatedSeconds);
  Value Demoted = Value::array();
  for (const std::string &L1 : D.DemotedL1s)
    Demoted.push(L1);
  V.set("demoted_l1_groups", std::move(Demoted));
  V.set("simulated_jobs", static_cast<uint64_t>(D.SimulatedJobs));
  V.set("deduped_points", static_cast<uint64_t>(D.DedupedPoints));
  Value Points = Value::array();
  for (const SweepPoint &P : D.Points)
    Points.push(toJson(P));
  V.set("points", std::move(Points));
  return V;
}

bool wcs::fromJson(const Value &V, SweepDoc &Out, std::string *Err) {
  if (!needSchema(V, SweepSchemaName, SweepSchemaVersion, Err))
    return false;
  uint64_t SimJobs, Deduped;
  const Value *Points;
  // Defaults for the optional fields (absent in pre-engine and
  // pre-periodic v1 files).
  Out.FilteredGroups = 0;
  Out.FilteredRecords = 0;
  Out.FilteredStoredRecords = 0;
  Out.RecordSeconds = 0.0;
  Out.PeriodicPass = false;
  Out.PeriodicPassSeconds = 0.0;
  Out.PeriodicWarps = 0;
  Out.PeriodicWarpedAccesses = 0;
  Out.ReplaySeconds = 0.0;
  Out.SimulatedSeconds = 0.0;
  Out.DemotedL1s.clear();
  if (!needString(V, "tool", Out.Tool, Err) ||
      !needString(V, "program", Out.Program, Err) ||
      !needString(V, "size", Out.SizeName, Err) ||
      !needU32(V, "threads", Out.Threads, Err) ||
      !needDouble(V, "trace_pass_seconds", Out.TracePassSeconds, Err) ||
      !needUInt(V, "trace_accesses", Out.TraceAccesses, Err) ||
      // The filtered-stream and periodic-pass figures joined the v1
      // schema after its first release: optional on read (defaulting
      // to 0/false, which is what older sweeps genuinely had), always
      // written.
      !optBool(V, "periodic_pass", Out.PeriodicPass, Err) ||
      !optDouble(V, "periodic_pass_seconds", Out.PeriodicPassSeconds,
                 Err) ||
      !optUInt(V, "periodic_warps", Out.PeriodicWarps, Err) ||
      !optUInt(V, "periodic_warped_accesses",
               Out.PeriodicWarpedAccesses, Err) ||
      !optU32(V, "filtered_groups", Out.FilteredGroups, Err) ||
      !optUInt(V, "filtered_records", Out.FilteredRecords, Err) ||
      !optUInt(V, "filtered_stored_records", Out.FilteredStoredRecords,
               Err) ||
      !optDouble(V, "record_seconds", Out.RecordSeconds, Err) ||
      !optDouble(V, "replay_seconds", Out.ReplaySeconds, Err) ||
      !optDouble(V, "simulated_seconds", Out.SimulatedSeconds, Err) ||
      !needUInt(V, "simulated_jobs", SimJobs, Err) ||
      !needUInt(V, "deduped_points", Deduped, Err) ||
      !needArray(V, "points", Points, Err))
    return false;
  if (const Value *Demoted = V.find("demoted_l1_groups")) {
    if (!Demoted->isArray())
      return failMsg(Err, "member 'demoted_l1_groups' must be an array");
    for (size_t N = 0; N < Demoted->size(); ++N) {
      if (!Demoted->at(N).isString())
        return failMsg(Err,
                       "member 'demoted_l1_groups' must hold strings");
      Out.DemotedL1s.push_back(Demoted->at(N).asString());
    }
  }
  Out.SimulatedJobs = static_cast<size_t>(SimJobs);
  Out.DedupedPoints = static_cast<size_t>(Deduped);
  Out.Points.clear();
  Out.Points.reserve(Points->size());
  for (size_t N = 0; N < Points->size(); ++N) {
    SweepPoint P;
    if (!fromJson(Points->at(N), P, Err)) {
      if (Err) {
        std::ostringstream OS;
        OS << "point " << N << ": " << *Err;
        *Err = OS.str();
      }
      return false;
    }
    Out.Points.push_back(std::move(P));
  }
  return true;
}

bool wcs::writeSweepFile(const std::string &Path, const SweepDoc &D,
                         std::string *Err) {
  return json::writeFile(Path, toJson(D), Err);
}

bool wcs::readSweepFile(const std::string &Path, SweepDoc &Out,
                        std::string *Err) {
  Value V;
  if (!json::readFile(Path, V, Err))
    return false;
  std::string ParseErr;
  if (!fromJson(V, Out, &ParseErr)) {
    if (Err)
      *Err = Path + ": " + ParseErr;
    return false;
  }
  return true;
}

SweepDoc wcs::makeSweepDoc(std::string Tool, std::string Program,
                           std::string SizeName, const SweepReport &Report) {
  SweepDoc D;
  D.Tool = std::move(Tool);
  D.Program = std::move(Program);
  D.SizeName = std::move(SizeName);
  D.Threads = Report.Threads;
  D.TracePassSeconds = Report.TracePassSeconds;
  D.TraceAccesses = Report.TraceAccesses;
  D.PeriodicPass = Report.PeriodicPass;
  D.PeriodicPassSeconds = Report.PeriodicPassSeconds;
  D.PeriodicWarps = Report.PeriodicWarps;
  D.PeriodicWarpedAccesses = Report.PeriodicWarpedAccesses;
  D.FilteredGroups = Report.FilteredGroups;
  D.FilteredRecords = Report.FilteredRecords;
  D.FilteredStoredRecords = Report.FilteredStoredRecords;
  D.RecordSeconds = Report.RecordSeconds;
  D.ReplaySeconds = Report.ReplaySeconds;
  D.SimulatedSeconds = Report.SimulatedSeconds;
  D.DemotedL1s = Report.DemotedL1s;
  D.SimulatedJobs = Report.SimulatedJobs;
  D.DedupedPoints = Report.DedupedPoints;
  D.Points = Report.Points;
  return D;
}
