//===- bench/wcs_bench.cpp - Machine-readable benchmark driver ------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Runs the kernels behind the paper's headline performance figures and
// writes every result -- wall time plus the full warp counters -- as one
// wcs-results JSON file (default BENCH_results.json). The file is the
// input to wcs-report, which diffs two runs and gates CI on counter
// drift and time regressions. Three suites:
//
//   fig06  warping vs non-warping per replacement policy (scaled L1)
//   fig07  warping vs non-warping at the chosen size and the next larger
//   fig12  non-warping tree simulation vs trace-driven simulation (LRU)
//
// Every warping/concrete and concrete/trace pair is verified to produce
// identical miss counters before the file is written, so a results file
// never contains an unsound speedup.
//
//   wcs-bench --size small --out BENCH_results.json
//   wcs-bench --suite fig06 --suite fig12 --jobs 4
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/driver/Results.h"

#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

using namespace wcs;
using namespace wcs::bench;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: wcs-bench [options]\n"
      "  --size S         mini|small|medium|large|xlarge (default small)\n"
      "  --out FILE       results file to write (default "
      "BENCH_results.json)\n"
      "  --suite NAME     fig06|fig07|fig12; repeatable (default: all)\n"
      "  --jobs N         worker threads (0 = all cores; defaults to\n"
      "                   $WCS_JOBS, else 1 for clean timings; an\n"
      "                   explicit --jobs beats the environment)\n");
}

/// Builds each (kernel, size) program once; std::deque keeps addresses
/// stable while jobs accumulate pointers into it.
class ProgramPool {
public:
  const ScopProgram *get(const KernelInfo &K, ProblemSize S) {
    auto Key = std::make_pair(std::string(K.Name), S);
    auto It = Index.find(Key);
    if (It != Index.end())
      return &Programs[It->second];
    Programs.push_back(mustBuild(K, S));
    Index.emplace(std::move(Key), Programs.size() - 1);
    return &Programs.back();
  }

private:
  std::deque<ScopProgram> Programs;
  std::map<std::pair<std::string, ProblemSize>, size_t> Index;
};

/// A pair of job indices whose counters must agree (warping vs concrete,
/// or tree vs trace), plus the kernel name for diagnostics and the suite
/// it belongs to (for the per-suite summary).
struct VerifyPair {
  size_t Slow, Fast;
  const char *Kernel;
  unsigned Suite;
};

const char *const SuiteNames[] = {"fig06", "fig07", "fig12"};
constexpr unsigned NumSuites = 3;

ProblemSize nextLarger(ProblemSize S) {
  unsigned I = static_cast<unsigned>(S);
  return I + 1 < NumProblemSizes ? static_cast<ProblemSize>(I + 1) : S;
}

} // namespace

int main(int argc, char **argv) {
  ProblemSize Size = ProblemSize::Small;
  std::string OutPath = "BENCH_results.json";
  std::vector<std::string> Suites;
  // $WCS_JOBS seeds the default; an explicit --jobs takes precedence.
  unsigned Jobs = jobsFromEnv(1);

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--size") {
      if (!parseProblemSize(Next(), Size)) {
        std::fprintf(stderr, "error: unknown size\n");
        return 2;
      }
    } else if (A == "--out") {
      OutPath = Next();
    } else if (A == "--suite") {
      std::string S = Next();
      if (S != "fig06" && S != "fig07" && S != "fig12") {
        std::fprintf(stderr, "error: unknown suite '%s'\n", S.c_str());
        return 2;
      }
      Suites.push_back(std::move(S));
    } else if (A == "--jobs") {
      const char *N = Next();
      if (!parseJobCount(N, Jobs)) {
        std::fprintf(stderr,
                     "error: --jobs expects a non-negative number, got "
                     "'%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }
  if (Suites.empty())
    Suites = {"fig06", "fig07", "fig12"};
  auto HasSuite = [&](const char *Name) {
    for (const std::string &S : Suites)
      if (S == Name)
        return true;
    return false;
  };

  ProgramPool Pool;
  std::vector<BatchJob> Work;
  std::vector<VerifyPair> Pairs;
  const std::vector<KernelInfo> &Kernels = polybenchKernels();

  auto pushPair = [&](unsigned Suite, const KernelInfo &K, ProblemSize S,
                      const HierarchyConfig &H, SimBackend SlowBackend,
                      SimBackend FastBackend, std::string TagPrefix) {
    BatchJob J;
    J.Program = Pool.get(K, S);
    J.Cache = H;
    J.Backend = SlowBackend;
    J.Tag = TagPrefix + "/" + backendName(SlowBackend);
    Work.push_back(J);
    J.Backend = FastBackend;
    J.Tag = TagPrefix + "/" + backendName(FastBackend);
    Work.push_back(std::move(J));
    Pairs.push_back(
        VerifyPair{Work.size() - 2, Work.size() - 1, K.Name, Suite});
  };

  if (HasSuite("fig06")) {
    const PolicyKind Policies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                   PolicyKind::Plru,
                                   PolicyKind::QuadAgeLru};
    for (const KernelInfo &K : Kernels)
      for (PolicyKind P : Policies) {
        CacheConfig C = CacheConfig::scaledL1();
        C.Policy = P;
        pushPair(0, K, Size, HierarchyConfig::singleLevel(C),
                 SimBackend::Concrete, SimBackend::Warping,
                 std::string("fig06/") + K.Name + "/" + policyName(P));
      }
  }
  if (HasSuite("fig07")) {
    HierarchyConfig H = HierarchyConfig::singleLevel(CacheConfig::scaledL1());
    ProblemSize Sizes[2] = {Size, nextLarger(Size)};
    unsigned NumSizes = Sizes[0] == Sizes[1] ? 1 : 2;
    for (const KernelInfo &K : Kernels)
      for (unsigned SI = 0; SI < NumSizes; ++SI)
        pushPair(1, K, Sizes[SI], H, SimBackend::Concrete,
                 SimBackend::Warping,
                 std::string("fig07/") + K.Name + "/" +
                     problemSizeName(Sizes[SI]));
  }
  if (HasSuite("fig12")) {
    CacheConfig C = CacheConfig::scaledL1();
    C.Policy = PolicyKind::Lru; // Trace simulators model LRU, not PLRU.
    HierarchyConfig H = HierarchyConfig::singleLevel(C);
    for (const KernelInfo &K : Kernels)
      pushPair(2, K, Size, H, SimBackend::Trace, SimBackend::Concrete,
               std::string("fig12/") + K.Name);
  }

  std::fprintf(stderr, "wcs-bench: %zu jobs (%zu verified pairs), size %s\n",
               Work.size(), Pairs.size(), problemSizeName(Size));
  BatchReport Rep = runBatchOn(Work, Jobs);

  // Soundness first: a results file must never record a speedup obtained
  // from diverging counters.
  for (const VerifyPair &P : Pairs)
    requireEqualMisses(P.Kernel, Rep.Results[P.Slow].Stats,
                       Rep.Results[P.Fast].Stats);

  // Per-suite geomean of slow/fast time ratios (the headline numbers).
  GeoMean BySuite[NumSuites];
  for (const VerifyPair &P : Pairs)
    if (Rep.Results[P.Fast].Stats.Seconds > 0)
      BySuite[P.Suite].add(Rep.Results[P.Slow].Stats.Seconds /
                           Rep.Results[P.Fast].Stats.Seconds);
  for (unsigned S = 0; S < NumSuites; ++S)
    if (BySuite[S].count())
      std::printf("%s: %u pairs, geomean speedup %.2fx\n", SuiteNames[S],
                  BySuite[S].count(), BySuite[S].value());

  ResultsDoc Doc;
  Doc.Tool = "wcs-bench";
  Doc.SizeName = problemSizeName(Size);
  Doc.Threads = Rep.Threads;
  Doc.Entries = makeResultEntries(Work, Rep);
  std::string Err;
  if (!writeResultsFile(OutPath, Doc, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("wrote %zu entries to %s\n", Doc.Entries.size(),
              OutPath.c_str());
  return 0;
}
