//===- tests/spec_parse_test.cpp - Spec/grid parsing tests ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Direct unit tests for the consolidated parsing authority
// (driver/SpecParse): the "BYTES,ASSOC,POLICY" cache spec, the sweep
// grid syntax, and grid-to-hierarchy expansion. Every user-facing
// spelling both CLIs and the wcs-serve daemon accept goes through these
// entry points, so this is where their meaning is pinned.
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/SpecParse.h"

#include "gtest/gtest.h"

using namespace wcs;

namespace {

//===----------------------------------------------------------------------===//
// parseCacheSpec
//===----------------------------------------------------------------------===//

TEST(CacheSpec, ParsesThreeFields) {
  CacheConfig C;
  ASSERT_TRUE(parseCacheSpec("4096,8,plru", C));
  EXPECT_EQ(C.SizeBytes, 4096u);
  EXPECT_EQ(C.Assoc, 8u);
  EXPECT_EQ(C.BlockBytes, 64u);
  EXPECT_EQ(C.Policy, PolicyKind::Plru);
  EXPECT_EQ(C.WriteAlloc, WriteAllocate::Yes);
}

TEST(CacheSpec, PolicyNamesAreCaseInsensitive) {
  CacheConfig C;
  ASSERT_TRUE(parseCacheSpec("32768,8,LRU", C));
  EXPECT_EQ(C.Policy, PolicyKind::Lru);
  ASSERT_TRUE(parseCacheSpec("32768,8,QLRU", C));
  EXPECT_EQ(C.Policy, PolicyKind::QuadAgeLru);
}

TEST(CacheSpec, RejectsMalformedSpecs) {
  CacheConfig C;
  C.SizeBytes = 12345; // Sentinel: failures must leave Out untouched.
  EXPECT_FALSE(parseCacheSpec("", C));
  EXPECT_FALSE(parseCacheSpec("4096,8", C));         // Too few fields.
  EXPECT_FALSE(parseCacheSpec("4096,8,lru,x", C));   // Trailing junk.
  EXPECT_FALSE(parseCacheSpec("4096,8,mru", C));     // Unknown policy.
  EXPECT_FALSE(parseCacheSpec("4K,8,lru", C));       // No suffixes here.
  EXPECT_FALSE(parseCacheSpec("-4096,8,lru", C));    // Negative size.
  EXPECT_FALSE(parseCacheSpec("4096,4294967296,lru", C)); // Assoc > u32.
  EXPECT_EQ(C.SizeBytes, 12345u);
}

//===----------------------------------------------------------------------===//
// parseSweepLevelGrid
//===----------------------------------------------------------------------===//

TEST(SweepGrid, SingleCapacityGetsDefaults) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("8K", G, &Err)) << Err;
  EXPECT_EQ(G.SizesBytes, std::vector<uint64_t>({8192}));
  EXPECT_EQ(G.Assocs, std::vector<unsigned>({8}));
  EXPECT_EQ(G.Policies, std::vector<PolicyKind>({PolicyKind::Lru}));
  EXPECT_EQ(G.BlockBytes, 64u);
}

TEST(SweepGrid, GeometricRangeIsInclusive) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("8K:64K:x2", G, &Err)) << Err;
  EXPECT_EQ(G.SizesBytes,
            std::vector<uint64_t>({8192, 16384, 32768, 65536}));
}

TEST(SweepGrid, RangeStopsBelowNonAlignedHi) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("8K:100K:x4", G, &Err)) << Err;
  EXPECT_EQ(G.SizesBytes, std::vector<uint64_t>({8192, 32768}));
}

TEST(SweepGrid, KeyOpensValueListThatBareTokensExtend) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(
      parseSweepLevelGrid("4K,8K,assoc=4,8,full,policy=lru,plru,block=32", G,
                          &Err))
      << Err;
  EXPECT_EQ(G.SizesBytes, std::vector<uint64_t>({4096, 8192}));
  // "full" parses to the fully-associative sentinel 0.
  EXPECT_EQ(G.Assocs, std::vector<unsigned>({4, 8, 0}));
  EXPECT_EQ(G.Policies,
            std::vector<PolicyKind>({PolicyKind::Lru, PolicyKind::Plru}));
  EXPECT_EQ(G.BlockBytes, 32u);
}

TEST(SweepGrid, RejectsMalformedSpecs) {
  SweepLevelGrid G;
  std::string Err;
  EXPECT_FALSE(parseSweepLevelGrid("", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("assoc=8", G, &Err)); // No capacity.
  EXPECT_FALSE(parseSweepLevelGrid("8K,,16K", G, &Err)); // Empty token.
  EXPECT_FALSE(parseSweepLevelGrid("8K,ways=4", G, &Err)); // Unknown key.
  EXPECT_FALSE(parseSweepLevelGrid("8K,assoc=0", G, &Err)); // Spell "full".
  EXPECT_FALSE(parseSweepLevelGrid("8K,policy=mru", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("8K,block=32,block=64", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("64K:8K:x2", G, &Err)); // Empty range.
  EXPECT_FALSE(parseSweepLevelGrid("8K:64K:x1", G, &Err)); // Factor < 2.
  EXPECT_FALSE(parseSweepLevelGrid("8K:64K:2", G, &Err));  // Missing 'x'.
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// expandSweepGrid
//===----------------------------------------------------------------------===//

TEST(SweepGridExpand, CrossProductSingleLevel) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("4K,8K,assoc=4,8,policy=lru,fifo", G, &Err));
  std::vector<HierarchyConfig> Configs;
  ASSERT_TRUE(expandSweepGrid(G, nullptr,
                              InclusionPolicy::NonInclusiveNonExclusive,
                              Configs, &Err))
      << Err;
  // 2 sizes x 2 assocs x 2 policies, policy fastest-varying.
  ASSERT_EQ(Configs.size(), 8u);
  for (const HierarchyConfig &H : Configs)
    EXPECT_EQ(H.numLevels(), 1u);
  EXPECT_EQ(Configs[0].Levels[0].SizeBytes, 4096u);
  EXPECT_EQ(Configs[0].Levels[0].Policy, PolicyKind::Lru);
  EXPECT_EQ(Configs[1].Levels[0].Policy, PolicyKind::Fifo);
  EXPECT_EQ(Configs[2].Levels[0].Assoc, 8u);
  EXPECT_EQ(Configs[4].Levels[0].SizeBytes, 8192u);
}

TEST(SweepGridExpand, FullAssocResolvesPerCapacity) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("4K,8K,assoc=full", G, &Err));
  std::vector<HierarchyConfig> Configs;
  ASSERT_TRUE(expandSweepGrid(G, nullptr,
                              InclusionPolicy::NonInclusiveNonExclusive,
                              Configs, &Err))
      << Err;
  ASSERT_EQ(Configs.size(), 2u);
  EXPECT_EQ(Configs[0].Levels[0].Assoc, 4096u / 64);
  EXPECT_EQ(Configs[1].Levels[0].Assoc, 8192u / 64);
  EXPECT_TRUE(Configs[0].Levels[0].isFullyAssociative());
  EXPECT_TRUE(Configs[1].Levels[0].isFullyAssociative());
}

TEST(SweepGridExpand, TwoLevelCarriesInclusion) {
  SweepLevelGrid L1, L2;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("4K", L1, &Err));
  ASSERT_TRUE(parseSweepLevelGrid("32K,64K,assoc=16", L2, &Err));
  std::vector<HierarchyConfig> Configs;
  ASSERT_TRUE(expandSweepGrid(L1, &L2, InclusionPolicy::Inclusive, Configs,
                              &Err))
      << Err;
  ASSERT_EQ(Configs.size(), 2u);
  for (const HierarchyConfig &H : Configs) {
    EXPECT_EQ(H.numLevels(), 2u);
    EXPECT_EQ(H.Inclusion, InclusionPolicy::Inclusive);
    EXPECT_TRUE(H.validate().empty());
  }
}

TEST(SweepGridExpand, InvalidPointFailsWithDiagnostic) {
  SweepLevelGrid G;
  std::string Err;
  // PLRU needs power-of-two associativity; 3 ways must fail expansion.
  ASSERT_TRUE(parseSweepLevelGrid("6K,assoc=3,policy=plru", G, &Err));
  std::vector<HierarchyConfig> Configs;
  EXPECT_FALSE(expandSweepGrid(G, nullptr,
                               InclusionPolicy::NonInclusiveNonExclusive,
                               Configs, &Err));
  EXPECT_NE(Err.find("PLRU"), std::string::npos) << Err;
}

TEST(SweepGridExpand, OversizedFullAssocFails) {
  SweepLevelGrid G;
  std::string Err;
  // 1 MiB / 64 B = 16384 lines > the 4096-way cap.
  ASSERT_TRUE(parseSweepLevelGrid("1M,assoc=full", G, &Err));
  std::vector<HierarchyConfig> Configs;
  EXPECT_FALSE(expandSweepGrid(G, nullptr,
                               InclusionPolicy::NonInclusiveNonExclusive,
                               Configs, &Err));
  EXPECT_NE(Err.find("ways"), std::string::npos) << Err;
}

TEST(SweepGrid, RoundTripEquality) {
  SweepLevelGrid A, B;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("8K:64K:x2,assoc=4,8", A, &Err));
  ASSERT_TRUE(parseSweepLevelGrid("8K,16K,32K,64K,assoc=4,8", B, &Err));
  EXPECT_EQ(A, B); // Same grid, different spellings.
  B.BlockBytes = 32;
  EXPECT_FALSE(A == B);
}

} // namespace
