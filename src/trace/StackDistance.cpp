//===- trace/StackDistance.cpp --------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/StackDistance.h"

#include "wcs/support/MathUtil.h"
#include "wcs/support/Telemetry.h"
#include "wcs/trace/TraceGenerator.h"

#include <cassert>

using namespace wcs;

StackDistanceProfiler::StackDistanceProfiler(unsigned BlockBytes,
                                             size_t InitialTreeCapacity)
    : BlockShift(log2Exact(BlockBytes)) {
  // The growth step in bitAdd doubles and seeds the new root with the
  // tree total, which is only correct when the size is a power of two.
  size_t Cap = 2;
  while (Cap < InitialTreeCapacity)
    Cap *= 2;
  Bit.resize(Cap, 0);
}

void StackDistanceProfiler::bitAdd(uint64_t Pos, int64_t Val) {
  // Grow by doubling. A new power-of-two node P covers the range (0, P],
  // which contains every existing element, so it must start at the
  // current tree total (all other new nodes cover only new, empty
  // positions).
  while (Pos >= Bit.size()) {
    size_t Old = Bit.size();
    Bit.resize(Old * 2, 0);
    Bit[Old] = TreeTotal;
  }
  TreeTotal += Val;
  for (uint64_t I = Pos; I < Bit.size(); I += I & (~I + 1))
    Bit[I] += Val;
}

int64_t StackDistanceProfiler::bitPrefix(uint64_t Pos) const {
  if (Pos >= Bit.size())
    Pos = Bit.size() - 1;
  int64_t S = 0;
  for (uint64_t I = Pos; I > 0; I -= I & (~I + 1))
    S += Bit[I];
  return S;
}

int64_t StackDistanceProfiler::accessBlock(BlockId B) {
  ++Time; // 1-based timestamps.
  int64_t Dist = -1;
  auto It = LastAccess.find(B);
  if (It == LastAccess.end()) {
    ++Colds;
  } else {
    // Distinct blocks touched strictly between the previous access to B
    // and now = number of "last access" markers in (last, now).
    uint64_t D = static_cast<uint64_t>(bitPrefix(Time - 1) -
                                       bitPrefix(It->second));
    if (Hist.size() <= D)
      Hist.resize(D + 1, 0);
    ++Hist[D];
    bitAdd(It->second, -1);
    Dist = static_cast<int64_t>(D);
  }
  bitAdd(Time, +1);
  LastAccess[B] = Time;
  return Dist;
}

uint64_t StackDistanceProfiler::missesForAssoc(uint64_t Assoc) const {
  uint64_t M = Colds;
  for (uint64_t D = Assoc; D < Hist.size(); ++D)
    M += Hist[D];
  return M;
}

SetDistanceBank::SetDistanceBank(unsigned BlockBytes, unsigned NumSets)
    : BlockShift(log2Exact(BlockBytes)), SetMask(NumSets - 1) {
  assert(NumSets != 0 && (NumSets & (NumSets - 1)) == 0 &&
         "set count must be a power of two (modulo placement)");
  // Small initial trees: a bank with thousands of sets would otherwise
  // pay 8 KiB per set before the first access.
  Sets.reserve(NumSets);
  for (unsigned S = 0; S < NumSets; ++S)
    Sets.emplace_back(BlockBytes, NumSets > 1 ? 64 : 1024);
}

bool SetDistanceBank::addPeriodicContribution(const DistanceHistogram &H,
                                              uint64_t Reps,
                                              unsigned TruncatedAtAssoc) {
  assert(!Capturing && "cannot bulk-update while capturing a period");
  // Validate every scaled accumulation before applying any of them, so
  // a rejected update leaves the bank exactly as it was (the caller
  // falls back to walking the repetitions against this same bank).
  uint64_t Scaled, Accum;
  for (size_t D = 0; D < H.Hist.size(); ++D) {
    uint64_t Cur = D < BulkHist.size() ? BulkHist[D] : 0;
    if (__builtin_mul_overflow(H.Hist[D], Reps, &Scaled) ||
        __builtin_add_overflow(Cur, Scaled, &Accum))
      return false;
  }
  // Colds and beyond-truncation distances both miss at every
  // associativity the bank may answer afterwards.
  uint64_t AlwaysMiss;
  if (__builtin_add_overflow(H.Beyond, H.Colds, &AlwaysMiss) ||
      __builtin_mul_overflow(AlwaysMiss, Reps, &Scaled) ||
      __builtin_add_overflow(BulkAlwaysMiss, Scaled, &Accum))
    return false;
  if (__builtin_mul_overflow(H.Accesses, Reps, &Scaled) ||
      __builtin_add_overflow(Total, Scaled, &Accum))
    return false;

  if (BulkHist.size() < H.Hist.size())
    BulkHist.resize(H.Hist.size(), 0);
  for (size_t D = 0; D < H.Hist.size(); ++D)
    BulkHist[D] += H.Hist[D] * Reps;
  BulkAlwaysMiss += (H.Beyond + H.Colds) * Reps;
  Total += H.Accesses * Reps;
  if (TruncatedAtAssoc != 0 &&
      (TruncAssoc == 0 || TruncatedAtAssoc < TruncAssoc))
    TruncAssoc = TruncatedAtAssoc;
  return true;
}

uint64_t SetDistanceBank::missesForAssoc(uint64_t Assoc) const {
  assert((TruncAssoc == 0 || Assoc <= TruncAssoc) &&
         "bank is truncated below the requested associativity");
  uint64_t M = BulkAlwaysMiss;
  for (uint64_t D = Assoc; D < BulkHist.size(); ++D)
    M += BulkHist[D];
  for (const StackDistanceProfiler &P : Sets)
    M += P.missesForAssoc(Assoc);
  return M;
}

bool SetDistanceBank::matches(const CacheConfig &C) const {
  return C.Policy == PolicyKind::Lru &&
         C.WriteAlloc == WriteAllocate::Yes &&
         C.BlockBytes == blockBytes() && C.numSets() == numSets() &&
         (TruncAssoc == 0 || C.Assoc <= TruncAssoc);
}

uint64_t SetDistanceBank::missesForCache(const CacheConfig &C) const {
  assert(matches(C) && "config does not match the bank geometry");
  return missesForAssoc(C.Assoc);
}

StackDistanceProfiler wcs::profileProgram(const ScopProgram &Program,
                                          unsigned BlockBytes,
                                          bool IncludeScalars,
                                          double *Seconds) {
  telemetry::TimePoint Start = telemetry::now();
  StackDistanceProfiler Prof(BlockBytes);
  TraceOptions TO;
  TO.IncludeScalars = IncludeScalars;
  generateTrace(Program, TO,
                [&](const TraceRecord &R) { Prof.accessAddr(R.Addr); });
  if (Seconds)
    *Seconds = telemetry::secondsSince(Start);
  return Prof;
}

SetDistanceBank wcs::profileProgramSets(const ScopProgram &Program,
                                        unsigned BlockBytes,
                                        unsigned NumSets,
                                        bool IncludeScalars,
                                        double *Seconds) {
  telemetry::TimePoint Start = telemetry::now();
  SetDistanceBank Bank(BlockBytes, NumSets);
  TraceOptions TO;
  TO.IncludeScalars = IncludeScalars;
  generateTrace(Program, TO,
                [&](const TraceRecord &R) { Bank.accessAddr(R.Addr); });
  if (Seconds)
    *Seconds = telemetry::secondsSince(Start);
  return Bank;
}
