//===- tests/results_test.cpp - Results serialization round-trips ---------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// serialize -> parse -> compare coverage for the wcs-results pipeline:
// SimStats, cache configurations, batch results and whole results
// documents (including one produced by a real BatchRunner run), plus
// schema-version rejection and tag escaping.
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/Results.h"
#include "wcs/polybench/Polybench.h"

#include "gtest/gtest.h"

using namespace wcs;
using json::Value;

namespace {

/// Dump + reparse, asserting both directions succeed.
template <typename T> T reserialized(const T &In) {
  std::string Text = toJson(In).dump();
  Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Text, V, &Err)) << Err;
  T Out;
  EXPECT_TRUE(fromJson(V, Out, &Err)) << Err << "\n" << Text;
  return Out;
}

void expectStatsEq(const SimStats &A, const SimStats &B) {
  ASSERT_EQ(A.NumLevels, B.NumLevels);
  for (unsigned L = 0; L < A.NumLevels; ++L) {
    EXPECT_EQ(A.Level[L].Accesses, B.Level[L].Accesses);
    EXPECT_EQ(A.Level[L].Misses, B.Level[L].Misses);
  }
  EXPECT_EQ(A.SimulatedAccesses, B.SimulatedAccesses);
  EXPECT_EQ(A.WarpedAccesses, B.WarpedAccesses);
  EXPECT_EQ(A.Warps, B.Warps);
  EXPECT_EQ(A.FailedWarpChecks, B.FailedWarpChecks);
  EXPECT_DOUBLE_EQ(A.Seconds, B.Seconds);
}

void expectCacheEq(const CacheConfig &A, const CacheConfig &B) {
  EXPECT_EQ(A.SizeBytes, B.SizeBytes);
  EXPECT_EQ(A.Assoc, B.Assoc);
  EXPECT_EQ(A.BlockBytes, B.BlockBytes);
  EXPECT_EQ(A.Policy, B.Policy);
  EXPECT_EQ(A.WriteAlloc, B.WriteAlloc);
}

SimStats sampleStats() {
  SimStats S;
  S.NumLevels = 2;
  S.Level[0] = {123456789012345ull, 987654321ull};
  S.Level[1] = {987654321ull, 13ull};
  S.SimulatedAccesses = 1111;
  S.WarpedAccesses = 123456789012345ull - 1111;
  S.Warps = 77;
  S.FailedWarpChecks = 3;
  S.Seconds = 0.0625; // Binary-exact, so EXPECT_DOUBLE_EQ is meaningful.
  return S;
}

TEST(ResultsJson, SimStatsRoundTrip) {
  SimStats S = sampleStats();
  expectStatsEq(reserialized(S), S);

  SimStats OneLevel;
  OneLevel.NumLevels = 1;
  OneLevel.Level[0] = {42, 7};
  OneLevel.Seconds = 1.5;
  expectStatsEq(reserialized(OneLevel), OneLevel);
}

TEST(ResultsJson, SimStatsRejectsMalformed) {
  SimStats Out;
  std::string Err;
  Value V;
  ASSERT_TRUE(json::parse("{\"levels\":[]}", V, &Err));
  EXPECT_FALSE(fromJson(V, Out, &Err)); // Zero levels.
  ASSERT_TRUE(json::parse("{\"levels\":[{\"accesses\":1}]}", V, &Err));
  EXPECT_FALSE(fromJson(V, Out, &Err)); // Missing misses member.
  EXPECT_NE(Err.find("misses"), std::string::npos);
  ASSERT_TRUE(json::parse("[]", V, &Err));
  EXPECT_FALSE(fromJson(V, Out, &Err)); // Not an object at all.
}

TEST(ResultsJson, CountersMustBeExactIntegers) {
  // Counters are written as exact integers; a negative, fractional or
  // astronomically large (double-kind) value is a malformed file and
  // must fail loudly, not truncate or wrap into a plausible counter.
  SimStats Out;
  std::string Err;
  Value V;
  const char *Base = "{\"levels\":[{\"accesses\":%s,\"misses\":0}],"
                     "\"simulated_accesses\":0,\"warped_accesses\":0,"
                     "\"warps\":0,\"failed_warp_checks\":0,\"seconds\":0}";
  for (const char *BadCount : {"-1", "1.5", "1e300"}) {
    char Text[256];
    std::snprintf(Text, sizeof(Text), Base, BadCount);
    ASSERT_TRUE(json::parse(Text, V, &Err)) << Err;
    EXPECT_FALSE(fromJson(V, Out, &Err)) << BadCount;
    EXPECT_NE(Err.find("accesses"), std::string::npos);
  }
  char Good[256];
  std::snprintf(Good, sizeof(Good), Base, "7");
  ASSERT_TRUE(json::parse(Good, V, &Err));
  EXPECT_TRUE(fromJson(V, Out, &Err)) << Err;
  EXPECT_EQ(Out.Level[0].Accesses, 7u);
}

TEST(ResultsJson, CacheConfigRoundTrip) {
  for (PolicyKind P : {PolicyKind::Lru, PolicyKind::Fifo, PolicyKind::Plru,
                       PolicyKind::QuadAgeLru})
    for (WriteAllocate W : {WriteAllocate::Yes, WriteAllocate::No}) {
      CacheConfig C{3 * 1024 * 1024, 12, 128, P, W};
      expectCacheEq(reserialized(C), C);
    }
}

TEST(ResultsJson, HierarchyConfigRoundTrip) {
  for (InclusionPolicy Inc :
       {InclusionPolicy::NonInclusiveNonExclusive, InclusionPolicy::Inclusive,
        InclusionPolicy::Exclusive}) {
    HierarchyConfig H = HierarchyConfig::twoLevel(
        CacheConfig::testSystemL1(), CacheConfig::testSystemL2(), Inc);
    HierarchyConfig Out = reserialized(H);
    ASSERT_EQ(Out.numLevels(), 2u);
    expectCacheEq(Out.Levels[0], H.Levels[0]);
    expectCacheEq(Out.Levels[1], H.Levels[1]);
    EXPECT_EQ(Out.Inclusion, H.Inclusion);
  }
  HierarchyConfig L1 = HierarchyConfig::singleLevel(CacheConfig::scaledL1());
  EXPECT_EQ(reserialized(L1).numLevels(), 1u);
}

TEST(ResultsJson, HierarchyRejectsUnknownPolicyNames) {
  HierarchyConfig Out;
  std::string Err;
  Value V = toJson(HierarchyConfig::singleLevel(CacheConfig::scaledL1()));
  Value Bad = V;
  ASSERT_TRUE(json::parse(
      V.dump(false), Bad, &Err)); // Copy through text, then corrupt.
  // (Mutating a nested member needs re-set on the copy's levels array.)
  Value Level0 = Bad["levels"].at(0);
  Level0.set("policy", "mru");
  Value Levels = Value::array();
  Levels.push(std::move(Level0));
  Bad.set("levels", std::move(Levels));
  EXPECT_FALSE(fromJson(Bad, Out, &Err));
  EXPECT_NE(Err.find("mru"), std::string::npos);

  Bad.set("inclusion", "sideways");
  Value Good = toJson(CacheConfig::scaledL1());
  Levels = Value::array();
  Levels.push(std::move(Good));
  Bad.set("levels", std::move(Levels));
  EXPECT_FALSE(fromJson(Bad, Out, &Err));
  EXPECT_NE(Err.find("sideways"), std::string::npos);
}

TEST(ResultsJson, SimOptionsRoundTrip) {
  SimOptions O;
  O.IncludeScalars = true;
  O.Warp.Enable = false;
  O.Warp.MaxProbeIters = 17;
  O.Warp.SnapshotRingSize = 3;
  O.Warp.MaxSnapshotsPerBucket = 9;
  O.Warp.MinSnapshotSpacing = -4;
  O.Warp.MaxDeltaForCoupledDomains = 1234;
  O.Warp.EagerSnapshotTripLimit = 99;
  O.Warp.MaxDelta = 4096;
  O.Warp.DisableAfterFailedActivations = 2;
  O.Warp.MinProbesForLearning = 5;
  O.Warp.EnableProfitGuard = false;
  O.Warp.ProfitGuardActivations = 11;
  SimOptions Out = reserialized(O);
  EXPECT_EQ(Out.IncludeScalars, O.IncludeScalars);
  EXPECT_EQ(Out.Warp.Enable, O.Warp.Enable);
  EXPECT_EQ(Out.Warp.MaxProbeIters, O.Warp.MaxProbeIters);
  EXPECT_EQ(Out.Warp.SnapshotRingSize, O.Warp.SnapshotRingSize);
  EXPECT_EQ(Out.Warp.MaxSnapshotsPerBucket, O.Warp.MaxSnapshotsPerBucket);
  EXPECT_EQ(Out.Warp.MinSnapshotSpacing, O.Warp.MinSnapshotSpacing);
  EXPECT_EQ(Out.Warp.MaxDeltaForCoupledDomains,
            O.Warp.MaxDeltaForCoupledDomains);
  EXPECT_EQ(Out.Warp.EagerSnapshotTripLimit, O.Warp.EagerSnapshotTripLimit);
  EXPECT_EQ(Out.Warp.MaxDelta, O.Warp.MaxDelta);
  EXPECT_EQ(Out.Warp.DisableAfterFailedActivations,
            O.Warp.DisableAfterFailedActivations);
  EXPECT_EQ(Out.Warp.MinProbesForLearning, O.Warp.MinProbesForLearning);
  EXPECT_EQ(Out.Warp.EnableProfitGuard, O.Warp.EnableProfitGuard);
  EXPECT_EQ(Out.Warp.ProfitGuardActivations, O.Warp.ProfitGuardActivations);
}

TEST(ResultsJson, BatchResultRoundTrip) {
  BatchResult R;
  R.JobIndex = 17;
  R.Tag = "gemm/\"quoted\"/new\nline\ttab\\slash";
  R.Ok = false;
  R.Error = "invalid config: \"bad\"";
  R.Stats = sampleStats();
  BatchResult Out = reserialized(R);
  EXPECT_EQ(Out.JobIndex, R.JobIndex);
  EXPECT_EQ(Out.Tag, R.Tag); // Escaping survives the round trip.
  EXPECT_EQ(Out.Ok, R.Ok);
  EXPECT_EQ(Out.Error, R.Error);
  expectStatsEq(Out.Stats, R.Stats);
}

TEST(ResultsJson, EntrySamplesRoundTripAndStayOptional) {
  ResultEntry E;
  E.Tag = "bench/gemm";
  E.Cache = HierarchyConfig::singleLevel(CacheConfig::scaledL1());
  E.Ok = true;
  E.Stats.NumLevels = 1;
  E.Stats.Seconds = 0.2;
  E.Samples = {0.25, 0.2, 0.15};
  ResultEntry Out = reserialized(E);
  ASSERT_EQ(Out.Samples.size(), 3u);
  EXPECT_DOUBLE_EQ(Out.Samples[0], 0.25);
  EXPECT_DOUBLE_EQ(Out.Samples[1], 0.2);
  EXPECT_DOUBLE_EQ(Out.Samples[2], 0.15);

  // Single-sample producers leave Samples empty and the key is omitted
  // entirely, so single-rep output is byte-identical to pre-reps files.
  E.Samples.clear();
  Value Single = toJson(E);
  EXPECT_EQ(Single.find("samples"), nullptr);

  // A baseline written before the key existed still parses (and a stale
  // Samples vector in Out must not leak through the parse).
  std::string Err;
  ResultEntry Legacy = Out;
  ASSERT_TRUE(fromJson(Single, Legacy, &Err)) << Err;
  EXPECT_TRUE(Legacy.Samples.empty());

  // Malformed samples fail loudly rather than gating on garbage.
  Value Bad = Single;
  Bad.set("samples", "not-an-array");
  EXPECT_FALSE(fromJson(Bad, Legacy, &Err));
  EXPECT_NE(Err.find("samples"), std::string::npos);

  Value BadElem = Single;
  Value Arr = Value::array();
  Arr.push(Value(1.0));
  Arr.push(Value("fast"));
  BadElem.set("samples", std::move(Arr));
  EXPECT_FALSE(fromJson(BadElem, Legacy, &Err));
  EXPECT_NE(Err.find("samples"), std::string::npos);
}

TEST(ResultsJson, DocFromRealBatchRoundTrip) {
  // Run a real two-job batch (warping + concrete on a mini kernel) and
  // push the whole report through the file format.
  std::string BuildErr;
  ScopProgram P = buildKernel("gemm", ProblemSize::Mini, &BuildErr);
  ASSERT_TRUE(BuildErr.empty()) << BuildErr;

  std::vector<BatchJob> Jobs;
  BatchJob J;
  J.Program = &P;
  J.Cache = HierarchyConfig::twoLevel(CacheConfig::scaledL1(),
                                      CacheConfig::scaledL2());
  J.Options.IncludeScalars = true; // Must survive into the file.
  J.Backend = SimBackend::Concrete;
  J.Tag = "gemm/concrete";
  Jobs.push_back(J);
  J.Backend = SimBackend::Warping;
  J.Tag = "gemm/warping";
  Jobs.push_back(J);

  BatchReport Rep = BatchRunner(1).run(Jobs);
  ASSERT_TRUE(Rep.allOk());

  ResultsDoc Doc;
  Doc.Tool = "results_test";
  Doc.SizeName = "MINI";
  Doc.Threads = Rep.Threads;
  Doc.Entries = makeResultEntries(Jobs, Rep);
  ASSERT_EQ(Doc.Entries.size(), 2u);
  EXPECT_EQ(Doc.Entries[1].Backend, SimBackend::Warping);

  std::string Path = ::testing::TempDir() + "/wcs_results_test.json";
  std::string Err;
  ASSERT_TRUE(writeResultsFile(Path, Doc, &Err)) << Err;
  ResultsDoc Back;
  ASSERT_TRUE(readResultsFile(Path, Back, &Err)) << Err;

  EXPECT_EQ(Back.Tool, Doc.Tool);
  EXPECT_EQ(Back.SizeName, Doc.SizeName);
  EXPECT_EQ(Back.Threads, Doc.Threads);
  ASSERT_EQ(Back.Entries.size(), Doc.Entries.size());
  for (size_t N = 0; N < Doc.Entries.size(); ++N) {
    EXPECT_EQ(Back.Entries[N].Tag, Doc.Entries[N].Tag);
    EXPECT_EQ(Back.Entries[N].Backend, Doc.Entries[N].Backend);
    EXPECT_EQ(Back.Entries[N].Ok, Doc.Entries[N].Ok);
    EXPECT_TRUE(Back.Entries[N].Options.IncludeScalars);
    expectStatsEq(Back.Entries[N].Stats, Doc.Entries[N].Stats);
    ASSERT_EQ(Back.Entries[N].Cache.numLevels(),
              Doc.Entries[N].Cache.numLevels());
    for (unsigned L = 0; L < Doc.Entries[N].Cache.numLevels(); ++L)
      expectCacheEq(Back.Entries[N].Cache.Levels[L],
                    Doc.Entries[N].Cache.Levels[L]);
  }
  const ResultEntry *Warp = Back.find("gemm/warping");
  ASSERT_NE(Warp, nullptr);
  EXPECT_EQ(Warp->Stats.totalAccesses(),
            Back.find("gemm/concrete")->Stats.totalAccesses());
  EXPECT_EQ(Back.find("gemm/nope"), nullptr);

  // Serialization is deterministic: the same document always dumps to
  // byte-identical text.
  EXPECT_EQ(toJson(Doc).dump(), toJson(Doc).dump());
}

TEST(ResultsJson, SchemaRejection) {
  ResultsDoc Doc;
  Doc.Tool = "t";
  Value Good = toJson(Doc);
  ResultsDoc Out;
  std::string Err;
  ASSERT_TRUE(fromJson(Good, Out, &Err)) << Err;

  Value WrongName = Good;
  WrongName.set("schema", "speedometer");
  EXPECT_FALSE(fromJson(WrongName, Out, &Err));
  EXPECT_NE(Err.find("speedometer"), std::string::npos);

  // A future schema version must be rejected, not half-read.
  Value Future = Good;
  Future.set("schema_version", ResultsSchemaVersion + 1);
  EXPECT_FALSE(fromJson(Future, Out, &Err));
  EXPECT_NE(Err.find("version"), std::string::npos);

  Value NoStamp = Value::object();
  NoStamp.set("entries", Value::array());
  EXPECT_FALSE(fromJson(NoStamp, Out, &Err));
  EXPECT_NE(Err.find("schema"), std::string::npos);
}

TEST(ResultsJson, BadEntryDiagnosticsNameTheEntry) {
  ResultsDoc Doc;
  ResultEntry E;
  E.Tag = "ok-entry";
  E.Cache = HierarchyConfig::singleLevel(CacheConfig::scaledL1());
  E.Stats.NumLevels = 1;
  Doc.Entries.push_back(E);
  Value V = toJson(Doc);

  // Corrupt the (only) entry: drop its stats member.
  Value BadEntry = V["entries"].at(0);
  BadEntry.set("stats", Value::array()); // Wrong kind.
  Value Entries = Value::array();
  Entries.push(std::move(BadEntry));
  V.set("entries", std::move(Entries));

  ResultsDoc Out;
  std::string Err;
  EXPECT_FALSE(fromJson(V, Out, &Err));
  EXPECT_NE(Err.find("entry 0"), std::string::npos);
}

} // namespace
