//===- bench/fig12_vs_trace_sim.cpp - Paper Fig. 12 (appendix B) ----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates Fig. 12: non-warping tree-based simulation against a
// traditional trace-driven simulator (Dinero IV fed by QEMU in the
// paper; here, our trace simulator fed by a chunked trace generator that
// materializes the trace in buffers, modeling the trace-transport cost
// of a real trace-driven pipeline). Both simulate the same LRU version
// of the scaled L1 -- Dinero IV has no Pseudo-LRU, as in the paper.
// The expected shape: tree-based simulation wins on most kernels because
// it avoids trace materialization.
//
// Environment: WCS_SIZE (default large).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/trace/TraceSimulator.h"

#include <cstdio>

using namespace wcs;
using namespace wcs::bench;

int main() {
  ProblemSize Size = sizeFromEnv(ProblemSize::Large);
  CacheConfig C = CacheConfig::scaledL1();
  C.Policy = PolicyKind::Lru; // Dinero IV supports LRU, not PLRU.
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  std::printf("== Figure 12: non-warping tree simulation vs trace-driven "
              "simulation, L1 %s, size %s ==\n\n",
              C.str().c_str(), problemSizeName(Size));
  std::printf("%-15s %12s %12s | %10s %10s %9s\n", "kernel", "accesses",
              "misses", "trace[s]", "tree[s]", "speedup");
  GeoMean Mean;
  for (const KernelInfo &K : polybenchKernels()) {
    ScopProgram P = mustBuild(K, Size);

    TraceSimOptions TSO;
    TSO.IncludeScalars = false; // Same accesses for a fair comparison.
    TSO.PropagateWritebacks = false;
    TraceSimulator TS(H, TSO);
    TraceSimResult TR = TS.runOnProgram(P);

    ConcreteSimulator Tree(P, H);
    SimStats R = Tree.run();
    requireEqualMisses(K.Name, TR.Stats, R);
    double Speedup = TR.Stats.Seconds / R.Seconds;
    Mean.add(Speedup);
    std::printf("%-15s %12llu %12llu | %9.3fs %9.3fs %8.2fx\n", K.Name,
                static_cast<unsigned long long>(R.totalAccesses()),
                static_cast<unsigned long long>(R.Level[0].Misses),
                TR.Stats.Seconds, R.Seconds, Speedup);
  }
  std::printf("\ngeomean tree-over-trace speedup: %.2fx (the paper "
              "attributes this to trace retrieval overhead)\n",
              Mean.value());
  return 0;
}
