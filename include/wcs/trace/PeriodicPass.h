//===- wcs/trace/PeriodicPass.h - Warp-aware distance pass ------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The periodic (warp-aware) stack-distance pass: a sublinear
/// replacement for the linear trace walk behind the sweep driver's LRU
/// fast path. Polyhedral programs put caches through long periodic
/// phases; the plain pass (trace/StackDistance) walks every access of
/// every phase, so at large problem sizes a single warping simulation
/// undercuts the whole shared pass. This pass closes that gap by making
/// the histogram computation itself warp:
///
///   - One warping simulation of the geometry's largest requested
///     associativity runs with depth profiling enabled
///     (WarpingSimulator::enableDepthProfile): under LRU, a hit's
///     pre-update way is its per-set stack distance, so the run yields
///     the Mattson histogram truncated at that associativity -- and, by
///     the inclusion property, the exact miss count of EVERY
///     associativity up to it.
///
///   - Periodic segments of the access stream are detected and verified
///     by the warping machinery itself (rotation-invariant state keys,
///     Theorem 3 state matching, the IterationsToWarp applicability
///     bounds): once one period has been walked concretely, the
///     remaining N-1 repetitions contribute their histogram delta
///     scaled analytically instead of being replayed. Soundness is
///     inherited wholesale -- every relaxation in the warp engine errs
///     toward concrete stepping, never toward an unsound skip, so the
///     resulting histogram is bit-identical to the linear pass (on
///     non-periodic programs the run degrades to an ordinary concrete
///     walk and the result is still exact, just not faster).
///
/// The resulting DistanceHistogram enters a SetDistanceBank through the
/// bulk entry point (SetDistanceBank::addPeriodicContribution), marking
/// the bank truncated at the profiled associativity.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TRACE_PERIODICPASS_H
#define WCS_TRACE_PERIODICPASS_H

#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"
#include "wcs/trace/StackDistance.h"

namespace wcs {

/// Outcome of one warp-aware periodic pass.
struct PeriodicPassResult {
  /// The Mattson histogram of the profiled geometry, truncated at
  /// MaxAssoc: Hist[d] counts hits at per-set stack distance d
  /// (d < MaxAssoc), Beyond counts everything else (colds and
  /// distances >= MaxAssoc -- exactly the profiled cache's misses).
  DistanceHistogram Histogram;
  /// Associativity the histogram is truncated at (the profiled ways).
  unsigned MaxAssoc = 0;
  /// Counters of the underlying warping run; Stats.Seconds is the pass
  /// cost, Stats.WarpedAccesses / Warps its periodicity diagnostics.
  SimStats Stats;

  /// Misses of the profiled geometry at \p Assoc ways
  /// (requires Assoc <= MaxAssoc).
  uint64_t missesForAssoc(uint64_t Assoc) const;

  /// Conditions \p Bank (of the same geometry) on the pass result: one
  /// bulk update, truncating the bank at MaxAssoc. Returns false --
  /// leaving the bank untouched -- when the bank rejects the update
  /// because its scaled counters would overflow; the caller must then
  /// condition the bank through the linear pass instead.
  [[nodiscard]] bool addTo(SetDistanceBank &Bank) const {
    return Bank.addPeriodicContribution(Histogram, 1, MaxAssoc);
  }
};

/// Runs the periodic pass for geometry (\p BlockBytes, \p NumSets),
/// answering write-allocate LRU points of every associativity up to
/// \p MaxAssoc. \p NumSets must be a power of two and \p MaxAssoc within
/// the LRU associativity limit (4096).
PeriodicPassResult runPeriodicPass(const ScopProgram &Program,
                                   unsigned BlockBytes, unsigned NumSets,
                                   unsigned MaxAssoc,
                                   const SimOptions &Opts = SimOptions());

} // namespace wcs

#endif // WCS_TRACE_PERIODICPASS_H
