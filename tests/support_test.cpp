//===- tests/support_test.cpp - Support library unit tests ---------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Hashing.h"
#include "wcs/support/IterVec.h"
#include "wcs/support/MathUtil.h"

#include <gtest/gtest.h>

using namespace wcs;

TEST(MathUtil, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
  EXPECT_EQ(floorDiv(0, 5), 0);
}

TEST(MathUtil, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(MathUtil, FloorModIsAlwaysNonNegativeForPositiveModulus) {
  EXPECT_EQ(floorMod(7, 4), 3);
  EXPECT_EQ(floorMod(-7, 4), 1);
  EXPECT_EQ(floorMod(-8, 4), 0);
  for (int64_t X = -20; X <= 20; ++X) {
    int64_t M = floorMod(X, 8);
    EXPECT_GE(M, 0);
    EXPECT_LT(M, 8);
    EXPECT_EQ(floorDiv(X, 8) * 8 + M, X);
  }
}

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(17, 13), 1);
}

TEST(MathUtil, CheckedArithmeticDetectsOverflow) {
  EXPECT_EQ(checkedMul(1 << 20, 1 << 20), std::optional<int64_t>(1LL << 40));
  EXPECT_FALSE(checkedMul(INT64_MAX, 2).has_value());
  EXPECT_FALSE(checkedAdd(INT64_MAX, 1).has_value());
  EXPECT_EQ(checkedAdd(-5, 3), std::optional<int64_t>(-2));
}

TEST(MathUtil, PowerOfTwoHelpers) {
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(64));
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_FALSE(isPowerOf2(48));
  EXPECT_EQ(log2Exact(64), 6u);
  EXPECT_EQ(log2Exact(1), 0u);
}

TEST(Hashing, MixAndCombineAreDeterministicAndSpread) {
  EXPECT_EQ(hashMix(42), hashMix(42));
  EXPECT_NE(hashMix(42), hashMix(43));
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1)) << "order must matter";
  HashStream A, B;
  A.add(int64_t{1});
  A.add(int64_t{2});
  B.add(int64_t{2});
  B.add(int64_t{1});
  EXPECT_NE(A.digest(), B.digest());
}

TEST(IterVec, BasicOperations) {
  IterVec V{1, 2, 3};
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 1);
  EXPECT_EQ(V.back(), 3);
  V.push(4);
  EXPECT_EQ(V.size(), 4u);
  V.pop();
  EXPECT_EQ(V, (IterVec{1, 2, 3}));
  EXPECT_EQ(V.prefix(2), (IterVec{1, 2}));
  EXPECT_TRUE(V.prefixEquals(IterVec{1, 2, 99}, 2));
  EXPECT_FALSE(V.prefixEquals(IterVec{1, 3, 3}, 2));
}

TEST(IterVec, LexicographicOrder) {
  EXPECT_LT((IterVec{1, 2}), (IterVec{1, 3}));
  EXPECT_LT((IterVec{1, 9}), (IterVec{2, 0}));
  EXPECT_EQ((IterVec{5}), (IterVec{5}));
  EXPECT_GT((IterVec{2, 0, 0}), (IterVec{1, 9, 9}));
}

TEST(IterVec, HashDistinguishesSizeAndContent) {
  EXPECT_NE((IterVec{1, 2}).hash(), (IterVec{1, 2, 0}).hash());
  EXPECT_NE((IterVec{1, 2}).hash(), (IterVec{2, 1}).hash());
  EXPECT_EQ((IterVec{7, 8}).hash(), (IterVec{7, 8}).hash());
}
