//===- tests/warp_stress_test.cpp - Warp-config robustness ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Every engineering bound of the warping search must be soundness-
// neutral: whatever the probe window, snapshot budget, delta cap or
// learning thresholds, miss counts must equal non-warping simulation.
// This suite sweeps extreme configurations over a workload mix that
// exercises rotating matches, identity (time-loop) matches, guards and
// triangular domains.
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Frontend.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

const char *MixedWorkload = R"(
  param T = 6; param N = 700;
  int A[N]; int B[N]; double M[64][64]; double v[64];
  for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
      B[i] = A[i-1] + A[i+1];
    for (i = 1; i < N - 1; i++)
      A[i] = B[i];
  }
  for (i = 0; i < 64; i++) {
    v[i] = 0.0;
    for (j = i; j < 64; j++)
      v[i] += M[i][j];
    if (i >= 32)
      v[i] += M[i][i];
  }
)";

ScopProgram workload() {
  ParseResult R = parseScop(MixedWorkload);
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(R.Program);
}

HierarchyConfig smallHierarchy(PolicyKind K) {
  CacheConfig L1;
  L1.SizeBytes = 1024;
  L1.Assoc = 4;
  L1.BlockBytes = 64;
  L1.Policy = K;
  CacheConfig L2 = L1;
  L2.SizeBytes = 4096;
  return HierarchyConfig::twoLevel(L1, L2);
}

struct StressCase {
  const char *Name;
  WarpConfig W;
};

std::vector<StressCase> stressCases() {
  std::vector<StressCase> Cases;
  {
    WarpConfig W;
    Cases.push_back({"defaults", W});
  }
  {
    WarpConfig W;
    W.MaxProbeIters = 8;
    Cases.push_back({"tiny_probe_window", W});
  }
  {
    WarpConfig W;
    W.MaxDelta = 1;
    Cases.push_back({"delta_one_only", W});
  }
  {
    WarpConfig W;
    W.MaxDelta = 3; // Odd cap: forces unusual match distances.
    Cases.push_back({"delta_three", W});
  }
  {
    WarpConfig W;
    W.SnapshotRingSize = 1;
    W.MaxSnapshotsPerBucket = 1;
    Cases.push_back({"one_snapshot_ring", W});
  }
  {
    WarpConfig W;
    W.MinSnapshotSpacing = 100;
    Cases.push_back({"huge_spacing", W});
  }
  {
    WarpConfig W;
    W.EagerSnapshotTripLimit = 1 << 20; // Eager everywhere.
    Cases.push_back({"always_eager", W});
  }
  {
    WarpConfig W;
    W.EagerSnapshotTripLimit = 0; // Never eager.
    Cases.push_back({"never_eager", W});
  }
  {
    WarpConfig W;
    W.DisableAfterFailedActivations = 1;
    W.MinProbesForLearning = 1;
    Cases.push_back({"trigger_happy_learning", W});
  }
  {
    WarpConfig W;
    W.ProfitGuardActivations = 1;
    Cases.push_back({"instant_profit_guard", W});
  }
  {
    WarpConfig W;
    W.Enable = false;
    Cases.push_back({"disabled", W});
  }
  return Cases;
}

class WarpStress : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(WarpStress, AllConfigsProduceIdenticalCounts) {
  ScopProgram P = workload();
  HierarchyConfig H = smallHierarchy(GetParam());
  ConcreteSimulator Ref(P, H);
  SimStats R = Ref.run();
  for (const StressCase &C : stressCases()) {
    SimOptions O;
    O.Warp = C.W;
    WarpingSimulator Warp(P, H, O);
    SimStats W = Warp.run();
    ASSERT_EQ(W.totalAccesses(), R.totalAccesses()) << C.Name;
    ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses) << C.Name;
    ASSERT_EQ(W.Level[1].Accesses, R.Level[1].Accesses) << C.Name;
    ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses) << C.Name;
    ASSERT_EQ(W.SimulatedAccesses + W.WarpedAccesses, W.totalAccesses())
        << C.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, WarpStress,
                         ::testing::Values(PolicyKind::Lru, PolicyKind::Fifo,
                                           PolicyKind::Plru,
                                           PolicyKind::QuadAgeLru),
                         [](const ::testing::TestParamInfo<PolicyKind> &I) {
                           return std::string(policyName(I.param));
                         });

TEST(WarpStress, DefaultsActuallyWarpTheWorkload) {
  // Guard against silently losing all warping capability: the default
  // configuration must fast-forward most of the stencil part.
  ScopProgram P = workload();
  WarpingSimulator Warp(P, smallHierarchy(PolicyKind::Lru));
  SimStats W = Warp.run();
  EXPECT_GE(W.Warps, 1u);
  EXPECT_LT(W.nonWarpedShare(), 0.5);
}

TEST(WarpStress, NoWriteAllocateSweep) {
  ScopProgram P = workload();
  for (PolicyKind K : {PolicyKind::Lru, PolicyKind::QuadAgeLru}) {
    HierarchyConfig H = smallHierarchy(K);
    H.Levels[0].WriteAlloc = WriteAllocate::No;
    ConcreteSimulator Ref(P, H);
    WarpingSimulator Warp(P, H);
    SimStats R = Ref.run(), W = Warp.run();
    ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses) << policyName(K);
    ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses) << policyName(K);
  }
}

TEST(WarpStress, ScalarInclusionSweep) {
  ScopProgram P = workload();
  SimOptions O;
  O.IncludeScalars = true;
  HierarchyConfig H = smallHierarchy(PolicyKind::Plru);
  ConcreteSimulator Ref(P, H, O);
  WarpingSimulator Warp(P, H, O);
  SimStats R = Ref.run(), W = Warp.run();
  ASSERT_EQ(W.totalAccesses(), R.totalAccesses());
  ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses);
}

} // namespace
