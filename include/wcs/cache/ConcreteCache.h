//===- wcs/cache/ConcreteCache.h - Concrete caches & hierarchy --*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete (non-symbolic) caches and the one/two-level non-inclusive
/// non-exclusive hierarchy of the paper's Eq. (24): the L2 is accessed
/// exactly when the L1 misses, with the same block. An optional
/// writeback-propagation mode additionally sends dirty L1 victims to the
/// L2, for the richer reference model used as "measured" ground truth in
/// the accuracy experiments (Figs. 11/13/14); the formal model used for
/// warping does not propagate victims, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_CONCRETECACHE_H
#define WCS_CACHE_CONCRETECACHE_H

#include "wcs/cache/SetAssocCache.h"

#include <vector>

namespace wcs {

/// Line payload of a concrete cache: the block plus a dirty bit.
struct ConcreteLine {
  BlockId Block = kInvalidBlock;
  bool Dirty = false;
};

using ConcreteCache = SetAssocCache<ConcreteLine>;

/// Result of one hierarchy access.
struct HierarchyOutcome {
  bool L1Hit = false;
  bool L2Accessed = false; ///< Only in two-level configurations.
  bool L2Hit = false;
  unsigned L2Writebacks = 0;      ///< Victim writes issued to the L2.
  unsigned L2WritebackMisses = 0; ///< Of those, how many missed in L2.
  unsigned BackInvalidations = 0; ///< Inclusive mode: L1 lines removed
                                  ///< because their L2 copy was evicted.
};

/// A one- or two-level concrete cache hierarchy supporting all three
/// inclusion policies (NINE per paper Eq. (24); inclusive with
/// back-invalidation; exclusive with victim caching).
class ConcreteHierarchy {
public:
  explicit ConcreteHierarchy(const HierarchyConfig &Config,
                             bool PropagateWritebacks = false);

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  const HierarchyConfig &config() const { return Cfg; }

  ConcreteCache &level(unsigned I) { return Levels[I]; }
  const ConcreteCache &level(unsigned I) const { return Levels[I]; }

  /// Performs one memory access (paper Eq. (24) extended to writes).
  HierarchyOutcome access(BlockId B, bool IsWrite);

  void reset();

private:
  HierarchyConfig Cfg;
  bool Writebacks;
  std::vector<ConcreteCache> Levels;
};

} // namespace wcs

#endif // WCS_CACHE_CONCRETECACHE_H
