//===- sim/WarpEngine.cpp -------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/sim/WarpEngine.h"

#include "wcs/poly/FourierMotzkin.h"
#include "wcs/support/Hashing.h"
#include "wcs/support/MathUtil.h"

#include <cassert>

using namespace wcs;

WarpEngine::WarpEngine(const ScopProgram &Program,
                       const HierarchyConfig &Cache,
                       const SimOptions &Options)
    : Program(Program), WC(Options.Warp), NumLevels(Cache.numLevels()),
      BlockBytes(Cache.blockBytes()),
      BlockShift(log2Exact(Cache.blockBytes())),
      IncludeScalars(Options.IncludeScalars) {
  for (unsigned L = 0; L < NumLevels; ++L)
    SetCount[L] = Cache.Levels[L].numSets();
}

int64_t WarpEngine::deltaUnit(const LoopNode *Loop) const {
  const unsigned D = Loop->Depth;
  int64_t Unit = 1;
  for (int Id = Loop->FirstAccess; Id < Loop->EndAccess; ++Id) {
    const AccessNode *A = Program.accesses()[Id];
    if (!IncludeScalars && Program.array(A->ArrayId).isScalar())
      continue;
    if (!A->Domain.isSingleDisjunct())
      return 0; // collectShifts rejects such loops unconditionally.
    int64_t Coef = A->Address.numDims() > D ? A->Address.coeff(D) : 0;
    if (Coef == 0)
      continue;
    int64_t Step =
        static_cast<int64_t>(BlockBytes) / gcd64(BlockBytes, Coef);
    Unit = Unit / gcd64(Unit, Step) * Step;
    if (Unit > WC.MaxDelta)
      return 0; // No admissible delta below the cap.
  }
  return Unit;
}

//===----------------------------------------------------------------------===//
// State keys
//===----------------------------------------------------------------------===//

uint64_t WarpEngine::stateKey(const SymbolicHierarchy &State,
                              const WarpScope &Scope) const {
  const unsigned D = Scope.Loop->Depth;
  const int First = Scope.Loop->FirstAccess;
  const int End = Scope.Loop->EndAccess;
  HashStream H;
  for (unsigned Lv = 0; Lv < NumLevels; ++Lv) {
    const SymbolicCache &C = State.level(Lv);
    unsigned Sets = C.numSets(), Assoc = C.assoc(), Mra = C.mraSet();
    for (unsigned I = 0; I < Sets; ++I) {
      unsigned S = (Mra + I) & (Sets - 1);
      H.add(C.policyWord(S));
      for (unsigned W = 0; W < Assoc; ++W) {
        BlockId Blk = C.blockAt(S, W);
        if (Blk == kInvalidBlock) {
          H.add(uint64_t{0});
          continue;
        }
        // Subtree tags at the current prefix hash by (node, inner dims):
        // stable both across periodic re-touching (iteration advances
        // uniformly) and for frozen lines. Everything else hashes by its
        // concrete block.
        const SymTag &T = C.tagAt(S, W);
        bool Subtree = T.NodeId >= First && T.NodeId < End &&
                       T.Iter.size() > D && T.Iter.prefixEquals(Scope.Prefix, D);
        if (Subtree) {
          H.add(uint64_t{1});
          H.add(static_cast<uint64_t>(T.NodeId));
          for (unsigned K = D + 1; K < T.Iter.size(); ++K)
            H.add(T.Iter[K]);
        } else {
          H.add(uint64_t{2});
          H.add(static_cast<uint64_t>(Blk));
        }
      }
    }
  }
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Shift collection (ConstructAccessMapping, functional/index-preserving)
//===----------------------------------------------------------------------===//

bool WarpEngine::collectShifts(const WarpScope &Scope, int64_t Delta,
                               const int64_t Rot[2],
                               std::vector<NodeShift> &Out) const {
  const unsigned D = Scope.Loop->Depth;
  for (int Id = Scope.Loop->FirstAccess; Id < Scope.Loop->EndAccess; ++Id) {
    const AccessNode *A = Program.accesses()[Id];
    if (!IncludeScalars && Program.array(A->ArrayId).isScalar())
      continue; // Performs no simulated access.
    if (!A->Domain.isSingleDisjunct())
      return false; // Conservative: disjunctive domains are not warped.
    int64_t CoefBytes = A->Address.numDims() > D ? A->Address.coeff(D) : 0;
    std::optional<int64_t> SBytes = checkedMul(CoefBytes, Delta);
    if (!SBytes || *SBytes % static_cast<int64_t>(BlockBytes) != 0)
      return false; // The induced block mapping would not be functional.
    int64_t T = *SBytes / static_cast<int64_t>(BlockBytes);
    // pi must shift cache-set indices by Rot[l] at every level.
    for (unsigned Lv = 0; Lv < NumLevels; ++Lv)
      if (floorMod(T - Rot[Lv], SetCount[Lv]) != 0)
        return false;
    Out.push_back(NodeShift{A, CoefBytes, T});
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Domain reduction helpers
//===----------------------------------------------------------------------===//

std::vector<WarpEngine::ReducedConstraint>
WarpEngine::reduceDomain(const AccessNode *A, const IterVec &Prefix) const {
  const unsigned D = static_cast<unsigned>(Prefix.size());
  const unsigned M = A->Depth;
  std::vector<ReducedConstraint> Out;
  for (const Constraint &C : A->Domain.onlyDisjunct().constraints()) {
    ReducedConstraint R;
    R.IsEq = C.K == Constraint::Kind::EQ;
    R.C0 = C.Expr.constantTerm();
    unsigned N = C.Expr.numDims();
    for (unsigned K = 0; K < std::min(N, D); ++K)
      R.C0 += C.Expr.coeff(K) * Prefix[K];
    R.Cx = N > D ? C.Expr.coeff(D) : 0;
    R.Cy.assign(M > D + 1 ? M - D - 1 : 0, 0);
    for (unsigned K = D + 1; K < N; ++K)
      R.Cy[K - D - 1] = C.Expr.coeff(K);
    Out.push_back(std::move(R));
  }
  return Out;
}

namespace {

/// Candidate conflict for one residue class: the smallest x = U + k*Delta
/// (k >= 1) with x >= Target; int64 max if none exists below the cap.
int64_t firstClassPointAtOrAbove(int64_t U, int64_t Delta, int64_t Target) {
  int64_t K = std::max<int64_t>(1, ceilDiv(Target - U, Delta));
  return U + K * Delta;
}

} // namespace

int64_t
WarpEngine::furthestByDomains(const WarpScope &Scope, int64_t X0, int64_t X1,
                              int64_t Delta,
                              const std::vector<NodeShift> &Nodes) const {
  const unsigned D = Scope.Loop->Depth;
  int64_t XF = Scope.Hi + 1;
  for (const NodeShift &NS : Nodes) {
    std::vector<ReducedConstraint> RC = reduceDomain(NS.A, Scope.Prefix);
    unsigned NY = NS.A->Depth > D + 1 ? NS.A->Depth - D - 1 : 0;

    bool Coupled = false;
    for (const ReducedConstraint &R : RC) {
      if (R.Cx == 0)
        continue;
      for (int64_t Cy : R.Cy)
        if (Cy != 0) {
          Coupled = true;
          break;
        }
    }

    if (!Coupled) {
      // Fast path: the executed x-values form one interval [XLo, XHi];
      // the inner pattern is x-independent. Conflicts arise exactly where
      // a future iteration's presence differs from its template residue.
      int64_t XLo = INT64_MIN / 4, XHi = INT64_MAX / 4;
      bool Never = false;
      for (const ReducedConstraint &R : RC) {
        bool HasY = false;
        for (int64_t Cy : R.Cy)
          HasY |= Cy != 0;
        if (HasY)
          continue; // Same inner slice for every x.
        if (R.Cx == 0) {
          if (R.IsEq ? R.C0 != 0 : R.C0 < 0)
            Never = true; // Node executes nowhere under this prefix.
          continue;
        }
        if (R.Cx > 0 || R.IsEq) {
          int64_t B = R.Cx > 0 ? ceilDiv(-R.C0, R.Cx) : floorDiv(-R.C0, R.Cx);
          XLo = std::max(XLo, B);
        }
        if (R.Cx < 0 || R.IsEq) {
          int64_t B =
              R.Cx < 0 ? floorDiv(R.C0, -R.Cx) : floorDiv(-R.C0, R.Cx);
          XHi = std::min(XHi, B);
        }
        if (R.IsEq && floorMod(-R.C0, R.Cx < 0 ? -R.Cx : R.Cx) != 0)
          Never = true;
      }
      if (Never || XHi < XLo)
        continue; // No access instances at all: no conflicts.
      for (int64_t U = X0; U < X1; ++U) {
        bool Present = U >= XLo && U <= XHi;
        if (Present) {
          // Future points of this class beyond XHi are absent: conflict.
          int64_t Cand = firstClassPointAtOrAbove(U, Delta, XHi + 1);
          if (Cand <= Scope.Hi)
            XF = std::min(XF, Cand);
        } else if (XLo > U) {
          // The class becomes present once x reaches [XLo, XHi].
          int64_t Cand = firstClassPointAtOrAbove(U, Delta, XLo);
          if (Cand <= std::min(XHi, Scope.Hi))
            XF = std::min(XF, Cand);
        }
        // U past XHi: future points are absent too; no conflict.
      }
      continue;
    }

    // Slow path: x is coupled with inner dimensions (e.g. triangular
    // inner bounds). Solve, per residue class and per constraint, for the
    // smallest warp count k whose slice differs from the template slice.
    // Large deltas would make this expensive, so they are rejected (they
    // do not occur for genuine warps of coupled domains).
    if (Delta > WC.MaxDeltaForCoupledDomains)
      return X1; // Immediate conflict: the caller computes n = 0.
    // Variables: k (index 0), y (indices 1..NY).
    for (int64_t U = X0; U < X1; ++U) {
      auto FutureRow = [&](const ReducedConstraint &R) {
        std::vector<int64_t> Row(1 + NY, 0);
        Row[0] = R.Cx * Delta;
        for (unsigned K = 0; K < NY; ++K)
          Row[1 + K] = R.Cy[K];
        return std::make_pair(Row, R.Cx * U + R.C0);
      };
      auto TemplateRow = [&](const ReducedConstraint &R) {
        std::vector<int64_t> Row(1 + NY, 0);
        for (unsigned K = 0; K < NY; ++K)
          Row[1 + K] = R.Cy[K];
        return std::make_pair(Row, R.Cx * U + R.C0);
      };
      auto AddPresence = [&](LinearSystem &Sys, bool Future) {
        for (const ReducedConstraint &R : RC) {
          auto [Row, C] = Future ? FutureRow(R) : TemplateRow(R);
          if (R.IsEq)
            Sys.addEQ(Row, C);
          else
            Sys.addGE(std::move(Row), C);
        }
        std::vector<int64_t> KRow(1 + NY, 0);
        KRow[0] = 1;
        Sys.addGE(KRow, -1); // k >= 1.
      };
      // Violation directions of one constraint: GE has one (< 0), EQ two.
      auto SolveWithViolation = [&](bool FuturePresent,
                                    const ReducedConstraint &R,
                                    int Direction) -> bool {
        LinearSystem Sys(1 + NY);
        AddPresence(Sys, FuturePresent);
        auto [Row, C] = FuturePresent ? TemplateRow(R) : FutureRow(R);
        for (int64_t &V : Row)
          V = Direction * -V; // Direction=+1: -(expr) - 1 >= 0.
        Sys.addGE(std::move(Row), Direction * -C - 1);
        std::optional<Rational> Min;
        FMStatus St = Sys.minimize(0, Min);
        if (St == FMStatus::Unknown)
          return false;
        if (St == FMStatus::Infeasible)
          return true;
        int64_t K = Min ? std::max<int64_t>(1, Min->ceil()) : 1;
        int64_t Cand = U + K * Delta;
        if (Cand <= Scope.Hi)
          XF = std::min(XF, Cand);
        return true;
      };
      for (const ReducedConstraint &R : RC) {
        // Future present, template misses constraint R (and vice versa).
        if (!SolveWithViolation(true, R, +1))
          return -1;
        if (!SolveWithViolation(false, R, +1))
          return -1;
        if (R.IsEq) {
          if (!SolveWithViolation(true, R, -1))
            return -1;
          if (!SolveWithViolation(false, R, -1))
            return -1;
        }
      }
    }
  }
  return XF;
}

//===----------------------------------------------------------------------===//
// FurthestByOverlap
//===----------------------------------------------------------------------===//

int64_t
WarpEngine::furthestByOverlap(const WarpScope &Scope, int64_t X0,
                              const std::vector<NodeShift> &Nodes) const {
  const unsigned D = Scope.Loop->Depth;
  int64_t XF = Scope.Hi + 1;
  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (size_t J = I + 1; J < Nodes.size(); ++J) {
      const AccessNode *A = Nodes[I].A, *B = Nodes[J].A;
      if (A->ArrayId != B->ArrayId)
        continue; // Distinct arrays never share blocks (aligned layout).
      // Only the coefficient of the *warped* iterator matters (paper
      // Sec. 5.3): accesses with equal coefficients induce the same
      // block shift, so their ranges may overlap freely. The classic
      // example of a conflicting pair is A[i+50] vs A[i+j] when warping
      // j (coefficients 0 vs 1).
      if (Nodes[I].CoefBytes == Nodes[J].CoefBytes)
        continue;

      // Variables: x, xa, ya..., xb, yb..., q (block index).
      unsigned NYA = A->Depth > D + 1 ? A->Depth - D - 1 : 0;
      unsigned NYB = B->Depth > D + 1 ? B->Depth - D - 1 : 0;
      unsigned VX = 0, VXA = 1, VYA = 2, VXB = 2 + NYA, VYB = 3 + NYA,
               VQ = 3 + NYA + NYB;
      unsigned NV = VQ + 1;
      LinearSystem Sys(NV);

      auto AddDom = [&](const AccessNode *N, unsigned XVar, unsigned YBase) {
        for (const ReducedConstraint &R : reduceDomain(N, Scope.Prefix)) {
          std::vector<int64_t> Row(NV, 0);
          Row[XVar] = R.Cx;
          for (size_t K = 0; K < R.Cy.size(); ++K)
            Row[YBase + K] = R.Cy[K];
          if (R.IsEq)
            Sys.addEQ(Row, R.C0);
          else
            Sys.addGE(std::move(Row), R.C0);
        }
      };
      AddDom(A, VXA, VYA);
      AddDom(B, VXB, VYB);

      auto AddSimple = [&](unsigned Var, int64_t Coef, int64_t C) {
        std::vector<int64_t> Row(NV, 0);
        Row[Var] = Coef;
        Sys.addGE(std::move(Row), C);
      };
      // xa, xb in [X0, Hi]; overlap at iteration x >= xa, xb.
      AddSimple(VXA, 1, -X0);
      AddSimple(VXA, -1, Scope.Hi);
      AddSimple(VXB, 1, -X0);
      AddSimple(VXB, -1, Scope.Hi);
      {
        std::vector<int64_t> Row(NV, 0);
        Row[VX] = 1;
        Row[VXA] = -1;
        Sys.addGE(Row, 0); // x >= xa
        std::vector<int64_t> Row2(NV, 0);
        Row2[VX] = 1;
        Row2[VXB] = -1;
        Sys.addGE(Row2, 0); // x >= xb
      }
      AddSimple(VX, -1, Scope.Hi);

      // Same block: q*BB <= addr <= q*BB + BB - 1 for both addresses.
      auto AddBlockEq = [&](const AccessNode *N, unsigned XVar,
                            unsigned YBase) {
        int64_t C0 = N->Address.constantTerm();
        for (unsigned K = 0; K < std::min<unsigned>(N->Address.numDims(), D);
             ++K)
          C0 += N->Address.coeff(K) * Scope.Prefix[K];
        std::vector<int64_t> Lo(NV, 0), HiRow(NV, 0);
        if (N->Address.numDims() > D) {
          Lo[XVar] = N->Address.coeff(D);
          for (unsigned K = D + 1; K < N->Address.numDims(); ++K)
            Lo[YBase + K - D - 1] = N->Address.coeff(K);
        }
        HiRow = Lo;
        for (int64_t &V : HiRow)
          V = -V;
        Lo[VQ] = -static_cast<int64_t>(BlockBytes);
        Sys.addGE(std::move(Lo), C0); // addr - q*BB >= 0.
        HiRow[VQ] = static_cast<int64_t>(BlockBytes);
        Sys.addGE(std::move(HiRow),
                  static_cast<int64_t>(BlockBytes) - 1 - C0);
        // q*BB + BB - 1 - addr >= 0.
      };
      AddBlockEq(A, VXA, VYA);
      AddBlockEq(B, VXB, VYB);

      std::optional<Rational> Min;
      FMStatus St = Sys.minimize(VX, Min);
      if (St == FMStatus::Unknown)
        return -1;
      if (St == FMStatus::Infeasible)
        continue;
      int64_t Cand = Min ? Min->floor() : X0;
      XF = std::min(XF, Cand);
    }
  }
  return XF;
}

//===----------------------------------------------------------------------===//
// CacheAgrees
//===----------------------------------------------------------------------===//

bool WarpEngine::nodeBlockRange(const WarpScope &Scope, const NodeShift &NS,
                                int64_t X0, int64_t SpanEnd, int64_t &LoBlock,
                                int64_t &HiBlock, bool &Unknown) const {
  const unsigned D = Scope.Loop->Depth;
  unsigned NY = NS.A->Depth > D + 1 ? NS.A->Depth - D - 1 : 0;
  // Variables: v (address bound), x, y...
  unsigned NV = 2 + NY;
  int64_t Bounds[2]; // min address, then -(max address).
  for (int Dir = 0; Dir < 2; ++Dir) {
    LinearSystem Sys(NV);
    for (const ReducedConstraint &R : reduceDomain(NS.A, Scope.Prefix)) {
      std::vector<int64_t> Row(NV, 0);
      Row[1] = R.Cx;
      for (size_t K = 0; K < R.Cy.size(); ++K)
        Row[2 + K] = R.Cy[K];
      if (R.IsEq)
        Sys.addEQ(Row, R.C0);
      else
        Sys.addGE(std::move(Row), R.C0);
    }
    {
      std::vector<int64_t> Row(NV, 0);
      Row[1] = 1;
      Sys.addGE(Row, -X0); // x >= X0.
      std::vector<int64_t> Row2(NV, 0);
      Row2[1] = -1;
      Sys.addGE(Row2, SpanEnd - 1); // x <= SpanEnd - 1.
    }
    // v == +-addr.
    int64_t C0 = NS.A->Address.constantTerm();
    for (unsigned K = 0; K < std::min<unsigned>(NS.A->Address.numDims(), D);
         ++K)
      C0 += NS.A->Address.coeff(K) * Scope.Prefix[K];
    std::vector<int64_t> Eq(NV, 0);
    Eq[0] = 1;
    int64_t Sign = Dir == 0 ? -1 : 1;
    if (NS.A->Address.numDims() > D) {
      Eq[1] = Sign * NS.A->Address.coeff(D);
      for (unsigned K = D + 1; K < NS.A->Address.numDims(); ++K)
        Eq[2 + K - D - 1] = Sign * NS.A->Address.coeff(K);
    }
    Sys.addEQ(Eq, Sign * C0);
    std::optional<Rational> Min;
    FMStatus St = Sys.minimize(0, Min);
    if (St == FMStatus::Unknown) {
      Unknown = true;
      return false;
    }
    if (St == FMStatus::Infeasible)
      return false; // No access in the span.
    if (!Min) {
      Unknown = true; // Unbounded address range: treat conservatively.
      return false;
    }
    Bounds[Dir] = Dir == 0 ? Min->floor() : -Min->floor();
  }
  LoBlock = floorDiv(Bounds[0], BlockBytes);
  HiBlock = floorDiv(Bounds[1], BlockBytes);
  return true;
}

bool WarpEngine::cacheAgrees(
    const WarpScope &Scope, int64_t X0, int64_t SpanEnd,
    const std::vector<NodeShift> &Nodes,
    const std::unordered_map<BlockId, BlockId> &Pi) const {
  for (const NodeShift &NS : Nodes) {
    int64_t Lo = 0, Hi = 0;
    bool Unknown = false;
    if (!nodeBlockRange(Scope, NS, X0, SpanEnd, Lo, Hi, Unknown)) {
      if (Unknown)
        return false;
      continue; // Node touches nothing in the span.
    }
    for (const auto &[B0, B1] : Pi) {
      int64_t ExpectedDelta = B1 - B0;
      // If pi's explicit pair lies in (or maps into) this node's touched
      // range, it must shift by exactly the node's block shift.
      if (B0 >= Lo && B0 <= Hi && ExpectedDelta != NS.TBlocks)
        return false;
      if (B1 >= Lo + NS.TBlocks && B1 <= Hi + NS.TBlocks &&
          ExpectedDelta != NS.TBlocks)
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// checkWarp / applyWarp
//===----------------------------------------------------------------------===//

bool WarpEngine::checkWarp(const SymbolicHierarchy &Old,
                           const SymbolicHierarchy &Cur,
                           const WarpScope &Scope, int64_t X0, int64_t X1,
                           WarpPlan &Plan) const {
  const unsigned D = Scope.Loop->Depth;
  const int First = Scope.Loop->FirstAccess;
  const int End = Scope.Loop->EndAccess;
  const int64_t Delta = X1 - X0;
  assert(Delta >= 1 && "match distance must be positive");
  Plan.Delta = Delta;

  for (unsigned Lv = 0; Lv < NumLevels; ++Lv)
    Plan.Rot[Lv] = floorMod(static_cast<int64_t>(Cur.level(Lv).mraSet()) -
                                static_cast<int64_t>(Old.level(Lv).mraSet()),
                            SetCount[Lv]);

  // The access mapping must be a uniform, index-preserving block shift per
  // node, consistent with both levels' rotations.
  std::vector<NodeShift> Nodes;
  if (!collectShifts(Scope, Delta, Plan.Rot, Nodes))
    return false;

  // Line-pair verification: build the partial bijection pi.
  std::unordered_map<BlockId, BlockId> PiFwd, PiRev;
  for (unsigned Lv = 0; Lv < NumLevels; ++Lv) {
    const SymbolicCache &CO = Old.level(Lv);
    const SymbolicCache &CC = Cur.level(Lv);
    unsigned Sets = CO.numSets(), Assoc = CO.assoc();
    Plan.Moving[Lv].assign(static_cast<size_t>(Sets) * Assoc, 0);
    for (unsigned S = 0; S < Sets; ++S) {
      unsigned S2 = static_cast<unsigned>((S + Plan.Rot[Lv]) & (Sets - 1));
      if (CO.policyWord(S) != CC.policyWord(S2))
        return false;
      for (unsigned W = 0; W < Assoc; ++W) {
        BlockId B0 = CO.blockAt(S, W);
        BlockId B1 = CC.blockAt(S2, W);
        bool V0 = B0 != kInvalidBlock, V1 = B1 != kInvalidBlock;
        if (V0 != V1)
          return false;
        if (!V0)
          continue;

        const SymTag &L0 = CO.tagAt(S, W);
        const SymTag &L1 = CC.tagAt(S2, W);
        int64_t BlockDelta = B1 - B0;
        bool Moving = false;
        if (L0.NodeId == L1.NodeId && L0.NodeId >= First && L0.NodeId < End) {
          const AccessNode *A = Program.accesses()[L0.NodeId];
          unsigned M = A->Depth;
          if (L0.Iter.size() == M && L1.Iter.size() == M && M > D &&
              L0.Iter.prefixEquals(Scope.Prefix, D) &&
              L1.Iter.prefixEquals(Scope.Prefix, D) &&
              L0.Iter[D] + Delta == L1.Iter[D]) {
            bool InnerEq = true;
            for (unsigned K = D + 1; K < M; ++K)
              InnerEq &= L0.Iter[K] == L1.Iter[K];
            if (InnerEq) {
              int64_t CoefBytes =
                  A->Address.numDims() > D ? A->Address.coeff(D) : 0;
              // collectShifts established BB | CoefBytes*Delta for all
              // subtree nodes, so the shift below is integral.
              Moving = BlockDelta * static_cast<int64_t>(BlockBytes) ==
                       CoefBytes * Delta;
            }
          }
        }
        if (!Moving && BlockDelta != 0)
          return false; // Fixed lines must hold the identical block.

        // pi must shift set indices by Rot at *every* level.
        for (unsigned L2 = 0; L2 < NumLevels; ++L2)
          if (floorMod(BlockDelta - Plan.Rot[L2], SetCount[L2]) != 0)
            return false;

        // Functionality and injectivity of pi across both levels.
        auto [FIt, FNew] = PiFwd.try_emplace(B0, B1);
        if (!FNew && FIt->second != B1)
          return false;
        auto [RIt, RNew] = PiRev.try_emplace(B1, B0);
        if (!RNew && RIt->second != B0)
          return false;
        Plan.Moving[Lv][static_cast<size_t>(S2) * Assoc + W] = Moving;
      }
    }
  }

  // How far may we warp? (FurthestByDomains / FurthestByOverlap.)
  int64_t XFd = furthestByDomains(Scope, X0, X1, Delta, Nodes);
  if (XFd < 0)
    return false;
  int64_t XFo = furthestByOverlap(Scope, X0, Nodes);
  if (XFo < 0)
    return false;
  int64_t XF = std::min(XFd, XFo);
  int64_t N = floorDiv(XF - X1, Delta);
  if (N < 1)
    return false;

  // CacheAgrees: pi must be compatible with every block the warped
  // iterations touch.
  int64_t SpanEnd = X1 + N * Delta;
  if (!cacheAgrees(Scope, X0, SpanEnd, Nodes, PiFwd))
    return false;

  Plan.N = N;
  return true;
}

void WarpEngine::applyWarp(SymbolicHierarchy &State, const WarpScope &Scope,
                           const WarpPlan &Plan) const {
  const unsigned D = Scope.Loop->Depth;
  const int64_t Shift = Plan.N * Plan.Delta;
  for (unsigned Lv = 0; Lv < NumLevels; ++Lv) {
    SymbolicCache &C = State.level(Lv);
    unsigned Sets = C.numSets(), Assoc = C.assoc();
    for (unsigned S = 0; S < Sets; ++S) {
      for (unsigned W = 0; W < Assoc; ++W) {
        if (!Plan.Moving[Lv][static_cast<size_t>(S) * Assoc + W])
          continue;
        SymTag &T = C.tagAt(S, W);
        T.Iter[D] += Shift;
        C.setBlockAt(S, W,
                     Program.accesses()[T.NodeId]->Address.eval(T.Iter) >>
                         BlockShift);
      }
    }
    C.rotateSets(Plan.N * Plan.Rot[Lv]);
  }
}
