//===- wcs/sim/WarpEngine.h - Warp detection & applicability ---*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warping machinery of paper Sec. 5: rotation-invariant state keys
/// (Sec. 5.3), exact state-match verification under set rotations
/// (Theorem 3), the applicability checks of IterationsToWarp
/// (FurthestByDomains, FurthestByOverlap, ConstructAccessMapping /
/// CacheAgrees; Theorem 4), and warp application.
///
/// Matching is *semantic*: two states match under rotations r_l and
/// iteration delta if every line pair is either
///  - "moving": both tagged by the same access node of the warped
///    subtree, at inner-identical instances delta apart, with the block
///    advancing by exactly coef_d * delta / blocksize (which must be an
///    integer); or
///  - "fixed": the same concrete block at the same position (only
///    possible at levels with rotation 0).
/// The per-line images define a partial bijection pi; the engine checks
/// that pi is functional and injective across both cache levels, shifts
/// sets consistently (t == r_l mod S_l at every level), and agrees with
/// the blocks the warped iterations will touch (per-node block ranges
/// over the warp span). Every relaxation (rational Fourier-Motzkin,
/// range hulls) errs toward rejecting or shortening warps, never toward
/// admitting an unsound one.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_WARPENGINE_H
#define WCS_SIM_WARPENGINE_H

#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SymbolicCache.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wcs {

/// The context of one warping loop activation: the loop node, the values
/// of the enclosing iterators, and the final iteration of the warped
/// dimension.
struct WarpScope {
  const LoopNode *Loop = nullptr;
  IterVec Prefix; ///< Loop->Depth outer iterator values.
  int64_t Hi = 0; ///< Last iteration (inclusive) of the warped dimension.
};

/// A verified warp: delta, repetition count, per-level rotations and the
/// per-line moving classification (indexed by logical set * assoc + way
/// of the *current* state).
struct WarpPlan {
  int64_t Delta = 0;
  int64_t N = 0;
  int64_t Rot[2] = {0, 0};
  std::vector<uint8_t> Moving[2];
};

/// Stateless warp logic over a program and hierarchy configuration.
class WarpEngine {
public:
  WarpEngine(const ScopProgram &Program, const HierarchyConfig &Cache,
             const SimOptions &Options);

  /// The smallest match distance that can possibly satisfy the
  /// functional-block-shift requirement for every access node under
  /// \p Loop: the LCM over nodes of B / gcd(B, |coef_d|). Any viable
  /// delta is a multiple of this unit, so the simulator skips cheaper.
  /// Returns 0 if the loop can never warp (e.g. disjunctive domains).
  int64_t deltaUnit(const LoopNode *Loop) const;

  /// Rotation-invariant hash of the symbolic state relative to \p Scope.
  /// Two states that can match (for any delta) hash equally: per-line
  /// contributions use the tag's access node and inner iterators for
  /// subtree tags (stable across periodic re-touching) and the concrete
  /// block otherwise; set traversal starts at the most-recently-accessed
  /// set so rotated states collide.
  uint64_t stateKey(const SymbolicHierarchy &State,
                    const WarpScope &Scope) const;

  /// Verifies that \p Cur (at iteration \p X1) matches \p Old (snapshot
  /// at \p X0) and computes how many deltas may be warped (Theorem 4).
  /// On success fills \p Plan (N >= 1) and returns true.
  bool checkWarp(const SymbolicHierarchy &Old, const SymbolicHierarchy &Cur,
                 const WarpScope &Scope, int64_t X0, int64_t X1,
                 WarpPlan &Plan) const;

  /// Applies a verified plan: advances moving tags by N*Delta,
  /// re-concretizes their blocks, and rotates each level by N*Rot[l]
  /// (an O(1) base-offset update).
  void applyWarp(SymbolicHierarchy &State, const WarpScope &Scope,
                 const WarpPlan &Plan) const;

private:
  /// Per-access-node shift info for one warp attempt.
  struct NodeShift {
    const AccessNode *A;
    int64_t CoefBytes; ///< Address coefficient of the warped dimension.
    int64_t TBlocks;   ///< Block shift per delta: CoefBytes*Delta/B.
  };

  /// A constraint reduced under the scope prefix: Cx*x + Cy.y + C0 (>= 0
  /// or == 0) where x is the warped dimension and y the inner dimensions.
  struct ReducedConstraint {
    int64_t Cx = 0;
    std::vector<int64_t> Cy;
    int64_t C0 = 0;
    bool IsEq = false;
  };

  bool collectShifts(const WarpScope &Scope, int64_t Delta,
                     const int64_t Rot[2], std::vector<NodeShift> &Out) const;

  /// First iteration whose access pattern conflicts with the template
  /// window (exclusive warp bound); Hi+1 if none, -1 on Unknown.
  int64_t furthestByDomains(const WarpScope &Scope, int64_t X0, int64_t X1,
                            int64_t Delta,
                            const std::vector<NodeShift> &Nodes) const;

  /// First iteration at which two same-array accesses with different
  /// linear parts have touched a common block; Hi+1 if none, -1 on
  /// Unknown.
  int64_t furthestByOverlap(const WarpScope &Scope, int64_t X0,
                            const std::vector<NodeShift> &Nodes) const;

  /// Checks the collected line-pair bijection against the block ranges
  /// each node touches during the warp span (paper's CacheAgrees).
  bool cacheAgrees(const WarpScope &Scope, int64_t X0, int64_t SpanEnd,
                   const std::vector<NodeShift> &Nodes,
                   const std::unordered_map<BlockId, BlockId> &Pi) const;

  std::vector<ReducedConstraint> reduceDomain(const AccessNode *A,
                                              const IterVec &Prefix) const;

  /// Inclusive block range touched by \p NS over iterations
  /// [X0, SpanEnd) of the warped dimension. Returns false if the node
  /// performs no access in the span; sets Unknown on FM overflow.
  bool nodeBlockRange(const WarpScope &Scope, const NodeShift &NS,
                      int64_t X0, int64_t SpanEnd, int64_t &LoBlock,
                      int64_t &HiBlock, bool &Unknown) const;

  const ScopProgram &Program;
  WarpConfig WC;
  unsigned NumLevels;
  unsigned SetCount[2] = {1, 1};
  unsigned BlockBytes;
  unsigned BlockShift;
  bool IncludeScalars;
};

} // namespace wcs

#endif // WCS_SIM_WARPENGINE_H
