//===- src/driver/SweepRequest.cpp - The sweep request/response API -------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/SweepRequest.h"

#include "wcs/driver/Results.h"
#include "wcs/frontend/Frontend.h"
#include "wcs/support/Hashing.h"
#include "wcs/support/JsonReader.h"

using namespace wcs;
using namespace wcs::jsonfield;
using json::Value;

std::string SweepRequest::programLabel() const {
  if (!Kernel.empty())
    return Kernel;
  return SourceName.empty() ? "scop" : SourceName;
}

std::string SweepRequest::sizeLabel() const {
  return Kernel.empty() ? "" : problemSizeName(Size);
}

bool wcs::validateSweepRequest(const SweepRequest &Req, std::string *Err) {
  if (Req.Kernel.empty() && Req.Source.empty())
    return failMsg(Err, "request names no program (kernel or source)");
  if (!Req.Kernel.empty() && !Req.Source.empty())
    return failMsg(Err, "request names both a kernel and inline source");
  if (Req.L1.SizesBytes.empty())
    return failMsg(Err, "request has an empty L1 grid");
  if (!Req.HasL2 && Req.Inclusion !=
                        InclusionPolicy::NonInclusiveNonExclusive)
    return failMsg(Err, "inclusion policy requires an L2 grid");
  return true;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

Value gridToJson(const SweepLevelGrid &G) {
  Value V = Value::object();
  Value Sizes = Value::array();
  for (uint64_t S : G.SizesBytes)
    Sizes.push(Value(S));
  V.set("sizes_bytes", std::move(Sizes));
  Value Assocs = Value::array();
  for (unsigned A : G.Assocs)
    Assocs.push(Value(static_cast<uint64_t>(A)));
  V.set("assocs", std::move(Assocs));
  Value Policies = Value::array();
  for (PolicyKind P : G.Policies)
    Policies.push(Value(policyName(P)));
  V.set("policies", std::move(Policies));
  V.set("block_bytes", static_cast<uint64_t>(G.BlockBytes));
  return V;
}

bool gridFromJson(const Value &V, SweepLevelGrid &Out, std::string *Err) {
  SweepLevelGrid G;
  G.Assocs.clear();
  G.Policies.clear();
  const Value *Sizes, *Assocs, *Policies;
  if (!needArray(V, "sizes_bytes", Sizes, Err) ||
      !needArray(V, "assocs", Assocs, Err) ||
      !needArray(V, "policies", Policies, Err) ||
      !needU32(V, "block_bytes", G.BlockBytes, Err))
    return false;
  for (const Value &S : Sizes->items()) {
    if (S.kind() != Value::Kind::Int || S.asInt() < 0)
      return failMsg(Err, "sizes_bytes entries must be non-negative "
                          "integers");
    G.SizesBytes.push_back(S.asUInt());
  }
  for (const Value &A : Assocs->items()) {
    // 0 is the fully-associative sentinel, valid in documents.
    if (A.kind() != Value::Kind::Int || A.asInt() < 0 ||
        A.asInt() > 4096)
      return failMsg(Err, "assocs entries must be integers in [0, 4096]");
    G.Assocs.push_back(static_cast<unsigned>(A.asUInt()));
  }
  for (const Value &P : Policies->items()) {
    PolicyKind K;
    if (!P.isString() || !parsePolicyName(P.asString(), K))
      return failMsg(Err, "unknown policy in grid");
    G.Policies.push_back(K);
  }
  if (G.SizesBytes.empty())
    return failMsg(Err, "grid names no capacity");
  if (G.Assocs.empty() || G.Policies.empty())
    return failMsg(Err, "grid has empty assocs or policies");
  Out = std::move(G);
  return true;
}

Value programToJson(const SweepRequest &R) {
  Value P = Value::object();
  if (!R.Kernel.empty()) {
    P.set("kernel", R.Kernel);
    P.set("size", problemSizeName(R.Size));
    return P;
  }
  P.set("name", R.programLabel());
  P.set("source", R.Source);
  Value Params = Value::object();
  for (const auto &[Name, Val] : R.Params) // std::map: sorted, canonical.
    Params.set(Name, Val);
  P.set("params", std::move(Params));
  return P;
}

Value optionsToJson(const SweepOptions &O) {
  Value V = Value::object();
  V.set("sim", toJson(O.Sim));
  V.set("backend", backendName(O.Backend));
  V.set("max_filtered_records", O.MaxFilteredRecords);
  V.set("warp_sweep", O.WarpSweep);
  V.set("warp_sweep_min_accesses", O.WarpSweepMinAccesses);
  return V;
}

bool optionsFromJson(const Value &V, SweepOptions &Out, std::string *Err) {
  const Value *Sim;
  std::string Backend;
  if (!needMember(V, "sim", Sim, Err) || !fromJson(*Sim, Out.Sim, Err) ||
      !needString(V, "backend", Backend, Err) ||
      !needUInt(V, "max_filtered_records", Out.MaxFilteredRecords, Err) ||
      !needBool(V, "warp_sweep", Out.WarpSweep, Err) ||
      !needUInt(V, "warp_sweep_min_accesses", Out.WarpSweepMinAccesses,
                Err))
    return false;
  if (!parseBackendName(Backend, Out.Backend))
    return failMsg(Err, "unknown backend '" + Backend + "'");
  return true;
}

} // namespace

Value wcs::toJson(const SweepRequest &R) {
  Value V = Value::object();
  V.set("schema", RequestSchemaName);
  V.set("schema_version", RequestSchemaVersion);
  V.set("program", programToJson(R));
  Value Grid = Value::object();
  Grid.set("l1", gridToJson(R.L1));
  if (R.HasL2)
    Grid.set("l2", gridToJson(R.L2));
  Grid.set("inclusion", inclusionName(R.Inclusion));
  V.set("grid", std::move(Grid));
  V.set("options", optionsToJson(R.Options));
  // Only when set: deadline-free requests must keep their historical
  // bytes (and hash). The deadline lives at the top level, NOT in
  // "options", because sweepPointKey() canonicalizes options -- a
  // deadline bounds serving time without changing what a point means,
  // so it must not split the store keyspace.
  if (R.DeadlineSeconds > 0)
    V.set("deadline_seconds", R.DeadlineSeconds);
  return V;
}

bool wcs::fromJson(const Value &V, SweepRequest &Out, std::string *Err) {
  if (!needSchema(V, RequestSchemaName, RequestSchemaVersion, Err))
    return false;
  SweepRequest R;
  const Value *Prog, *Grid, *Opts;
  if (!needObject(V, "program", Prog, Err) ||
      !needObject(V, "grid", Grid, Err) ||
      !needObject(V, "options", Opts, Err))
    return false;
  if (Prog->find("kernel")) {
    std::string SizeName;
    if (!needString(*Prog, "kernel", R.Kernel, Err) ||
        !needString(*Prog, "size", SizeName, Err))
      return false;
    if (!parseProblemSize(SizeName, R.Size))
      return failMsg(Err, "unknown problem size '" + SizeName + "'");
  } else {
    const Value *Params;
    if (!needString(*Prog, "name", R.SourceName, Err) ||
        !needString(*Prog, "source", R.Source, Err) ||
        !needObject(*Prog, "params", Params, Err))
      return false;
    for (const json::Member &M : Params->members()) {
      if (M.Val.kind() != Value::Kind::Int)
        return failMsg(Err, "param '" + M.Key + "' must be an integer");
      R.Params[M.Key] = M.Val.asInt();
    }
  }
  std::string Inclusion;
  const Value *L1;
  if (!needObject(*Grid, "l1", L1, Err) ||
      !gridFromJson(*L1, R.L1, Err) ||
      !needString(*Grid, "inclusion", Inclusion, Err))
    return false;
  if (!parseInclusionName(Inclusion, R.Inclusion))
    return failMsg(Err, "unknown inclusion policy '" + Inclusion + "'");
  if (const Value *L2 = Grid->find("l2")) {
    R.HasL2 = true;
    if (!gridFromJson(*L2, R.L2, Err))
      return false;
  }
  if (!optionsFromJson(*Opts, R.Options, Err))
    return false;
  // Joined the v1 schema with wcs-serve hardening: optional on read
  // (0 = no deadline, what deadline-free documents say by omission).
  if (!optDouble(V, "deadline_seconds", R.DeadlineSeconds, Err))
    return false;
  if (R.DeadlineSeconds < 0)
    return failMsg(Err, "deadline_seconds must be non-negative");
  if (!validateSweepRequest(R, Err))
    return false;
  Out = std::move(R);
  return true;
}

bool wcs::writeRequestFile(const std::string &Path, const SweepRequest &R,
                           std::string *Err) {
  return json::writeFile(Path, toJson(R), Err);
}

bool wcs::readRequestFile(const std::string &Path, SweepRequest &Out,
                          std::string *Err) {
  Value V;
  if (!json::readFile(Path, V, Err))
    return false;
  std::string ParseErr;
  if (!fromJson(V, Out, &ParseErr)) {
    if (Err)
      *Err = Path + ": " + ParseErr;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

bool wcs::prepareSweep(const SweepRequest &Req, PreparedSweep &Out,
                       std::string *Err) {
  if (!validateSweepRequest(Req, Err))
    return false;
  if (!Req.Kernel.empty()) {
    std::string BuildErr;
    Out.Program = buildKernel(Req.Kernel, Req.Size, &BuildErr);
    if (!BuildErr.empty())
      return failMsg(Err, BuildErr);
  } else {
    ParseResult PR = parseScop(Req.Source, Req.Params, Req.programLabel());
    if (!PR.ok())
      return failMsg(Err, Req.programLabel() + ": " + PR.message());
    Out.Program = std::move(PR.Program);
  }
  Out.Configs.clear();
  return expandSweepGrid(Req.L1, Req.HasL2 ? &Req.L2 : nullptr,
                         Req.Inclusion, Out.Configs, Err);
}

bool wcs::runSweepRequest(const SweepRequest &Req, unsigned Threads,
                          PreparedSweep &Prep, SweepReport &Report,
                          std::string *Err) {
  if (!prepareSweep(Req, Prep, Err))
    return false;
  SweepOptions SO = Req.Options;
  SO.Threads = Threads;
  Report = runSweep(Prep.Program, Prep.Configs, SO);
  return true;
}

//===----------------------------------------------------------------------===//
// Content addressing
//===----------------------------------------------------------------------===//

std::string wcs::sweepPointKey(const SweepRequest &Req,
                               const HierarchyConfig &H) {
  Value V = Value::object();
  V.set("program", programToJson(Req));
  V.set("options", optionsToJson(Req.Options));
  V.set("cache", toJson(H));
  return V.dump(false);
}

std::string wcs::requestHash(const SweepRequest &Req) {
  return hashHex(hashString(toJson(Req).dump(false)));
}

//===----------------------------------------------------------------------===//
// The wcs-response document
//===----------------------------------------------------------------------===//

Value wcs::toJson(const SweepResponse &R) {
  Value V = Value::object();
  V.set("schema", ResponseSchemaName);
  V.set("schema_version", ResponseSchemaVersion);
  V.set("ok", R.Ok);
  V.set("error", R.Error);
  V.set("request_hash", R.RequestHash);
  V.set("store_hits", R.StoreHits);
  V.set("store_misses", R.StoreMisses);
  V.set("inflight_hits", R.InFlightHits);
  V.set("store_entries", R.StoreEntries);
  if (R.RetryAfterSeconds > 0)
    V.set("retry_after_seconds", R.RetryAfterSeconds);
  if (R.Ok)
    V.set("sweep", toJson(R.Sweep));
  return V;
}

bool wcs::fromJson(const Value &V, SweepResponse &Out, std::string *Err) {
  if (!needSchema(V, ResponseSchemaName, ResponseSchemaVersion, Err))
    return false;
  SweepResponse R;
  if (!needBool(V, "ok", R.Ok, Err) ||
      !needString(V, "error", R.Error, Err) ||
      !needString(V, "request_hash", R.RequestHash, Err) ||
      !needUInt(V, "store_hits", R.StoreHits, Err) ||
      !needUInt(V, "store_misses", R.StoreMisses, Err) ||
      // Joined the v1 schema with the concurrent scheduler: optional
      // on read (0, which is what serial servers genuinely produce),
      // always written.
      !optUInt(V, "inflight_hits", R.InFlightHits, Err) ||
      !needUInt(V, "store_entries", R.StoreEntries, Err) ||
      // "retry_after_seconds" rides on overload-shed responses only;
      // optional on read like every field that joined v1 late.
      !optDouble(V, "retry_after_seconds", R.RetryAfterSeconds, Err))
    return false;
  if (R.Ok) {
    const Value *Sweep;
    if (!needObject(V, "sweep", Sweep, Err) ||
        !fromJson(*Sweep, R.Sweep, Err))
      return false;
  }
  Out = std::move(R);
  return true;
}
