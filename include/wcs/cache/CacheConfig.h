//===- wcs/cache/CacheConfig.h - Cache geometry and policies ----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache geometry, replacement-policy and write-policy configuration
/// (paper Sec. 2 and Sec. 6.1). A cache is described by total size,
/// associativity and block size; the number of sets is derived and must be
/// a power of two (modulo placement, the paper's stated restriction).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_CACHECONFIG_H
#define WCS_CACHE_CACHECONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace wcs {

/// Replacement policies supported by the simulator (paper Sec. 2.1).
/// All of them satisfy the data-independence property (Property 1).
enum class PolicyKind {
  Lru,        ///< Least-recently-used.
  Fifo,       ///< First-in first-out.
  Plru,       ///< Tree-based Pseudo-LRU (associativity must be 2^k).
  QuadAgeLru, ///< Quad-age LRU, modeled as 2-bit RRIP (paper ref. [40]).
};

/// Write-miss policy. Write-back vs write-through affects traffic, not
/// hit/miss classification, and is modeled in the trace simulator.
enum class WriteAllocate {
  Yes, ///< Write misses allocate the block (paper's default).
  No,  ///< Write misses bypass the cache.
};

const char *policyName(PolicyKind K);

/// Inverse of policyName, case-insensitive ("plru", "PLRU", ...). Also
/// accepts the wcs-sim spelling "qlru" for Quad-age LRU. Returns false
/// on an unknown name, leaving \p Out untouched.
bool parsePolicyName(const std::string &Name, PolicyKind &Out);

/// Geometry and policy of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 32 * 1024;
  unsigned Assoc = 8;
  unsigned BlockBytes = 64;
  PolicyKind Policy = PolicyKind::Lru;
  WriteAllocate WriteAlloc = WriteAllocate::Yes;

  unsigned numSets() const {
    return static_cast<unsigned>(SizeBytes / (Assoc * BlockBytes));
  }
  unsigned numLines() const { return numSets() * Assoc; }

  /// True for a fully-associative geometry (a single set).
  bool isFullyAssociative() const { return numSets() == 1; }

  /// Validates size/associativity/block-size consistency; returns an error
  /// message or the empty string.
  std::string validate() const;

  std::string str() const;

  /// Exact configuration equality (the sweep driver groups grid points
  /// that share an L1 by it).
  friend bool operator==(const CacheConfig &, const CacheConfig &) = default;

  /// The paper's test system L1: 32 KiB, 8-way, PLRU, 64 B lines.
  static CacheConfig testSystemL1();
  /// The paper's test system L2: 1 MiB, 16-way, Quad-age LRU, 64 B lines.
  static CacheConfig testSystemL2();
  /// Laptop-scaled variants preserving associativity and policy while
  /// restoring the paper's working-set/cache ratio at the scaled
  /// PolyBench problem sizes (see EXPERIMENTS.md): 4 KiB L1 (8 sets) and
  /// 32 KiB L2 (32 sets).
  static CacheConfig scaledL1();
  static CacheConfig scaledL2();
};

/// Inclusion policies of two-level hierarchies (paper Sec. 2.3 /
/// appendix A.2). The paper's implementation supports NINE; inclusive
/// and exclusive hierarchies also satisfy data independence, and this
/// implementation supports warping for all three.
enum class InclusionPolicy {
  NonInclusiveNonExclusive, ///< Levels evolve independently (Eq. (24)).
  Inclusive,  ///< L1 contents are a subset of L2 (back-invalidation).
  Exclusive,  ///< L1 and L2 contents are disjoint (victim caching).
};

const char *inclusionName(InclusionPolicy P);

/// Inverse of inclusionName, case-insensitive. Returns false on an
/// unknown name, leaving \p Out untouched.
bool parseInclusionName(const std::string &Name, InclusionPolicy &Out);

/// A one- or two-level cache hierarchy. Level 0 is the L1.
struct HierarchyConfig {
  std::vector<CacheConfig> Levels;
  InclusionPolicy Inclusion = InclusionPolicy::NonInclusiveNonExclusive;

  static HierarchyConfig singleLevel(CacheConfig L1);
  static HierarchyConfig twoLevel(
      CacheConfig L1, CacheConfig L2,
      InclusionPolicy Inclusion =
          InclusionPolicy::NonInclusiveNonExclusive);

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }
  unsigned blockBytes() const { return Levels.front().BlockBytes; }

  std::string validate() const;
  std::string str() const;
};

} // namespace wcs

#endif // WCS_CACHE_CACHECONFIG_H
