//===- wcs/trace/TraceGenerator.h - Memory-trace generation -----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the explicit memory-access trace of a ScopProgram, either
/// streamed record-by-record or in materialized chunks. Chunked
/// generation models the trace transport of traditional trace-driven
/// simulation (Dinero IV fed by QEMU in the paper's appendix B): the
/// trace is produced into a buffer that the consumer then drains, so the
/// measured baseline pays for trace materialization like a real
/// trace-driven pipeline does.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TRACE_TRACEGENERATOR_H
#define WCS_TRACE_TRACEGENERATOR_H

#include "wcs/scop/Program.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace wcs {

/// One memory access of the trace.
struct TraceRecord {
  int64_t Addr;
  uint32_t Size;
  bool IsWrite;
};

/// Options of trace generation.
struct TraceOptions {
  bool IncludeScalars = false; ///< Emit scalar accesses (Dinero sees them).
};

/// Streams the full access trace of \p Program into \p Sink, in execution
/// order. Returns the number of records emitted.
uint64_t generateTrace(const ScopProgram &Program, const TraceOptions &Opts,
                       const std::function<void(const TraceRecord &)> &Sink);

/// Chunked generator: fills an internal buffer of \p ChunkRecords records
/// at a time; nextChunk() exposes each full (or final partial) chunk.
class ChunkedTraceGenerator {
public:
  ChunkedTraceGenerator(const ScopProgram &Program, TraceOptions Opts,
                        size_t ChunkRecords = 1 << 20);
  ~ChunkedTraceGenerator();

  /// Returns the next chunk, or an empty span-equivalent when exhausted.
  /// The returned vector is owned by the generator and invalidated by the
  /// next call.
  const std::vector<TraceRecord> &nextChunk();

private:
  struct Walker;
  std::unique_ptr<Walker> W;
  std::vector<TraceRecord> Buffer;
  size_t ChunkRecords;
};

} // namespace wcs

#endif // WCS_TRACE_TRACEGENERATOR_H
