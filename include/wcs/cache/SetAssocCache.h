//===- wcs/cache/SetAssocCache.h - Generic set-associative cache -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative cache over an arbitrary line payload, shared by the
/// concrete simulator (payload: block + dirty bit) and the symbolic warping
/// simulator (payload: block + symbolic tag).
///
/// The hot-loop layout is struct-of-arrays: one cache-line-aligned BlockId
/// array (what the per-access scan reads), one dirty bitset, and the policy
/// metadata words -- instead of a vector of interleaved line structs. Any
/// payload beyond (Block, Dirty) lives in a separate tag array described by
/// a CacheLineTraits specialization, so the concrete cache's scan touches
/// nothing but 8-byte block ids. The replacement policy is dispatched once
/// per access() call -- or once per batch via accessAs<P>() -- into a
/// per-policy accessImpl instantiation; there is no per-access dispatch
/// inside the hit/fill handling.
///
/// Two features exist specifically for warping (paper Sec. 5):
///  - logical-to-physical set indirection, so that applying the set
///    rotation pi_rot^n of Theorem 4 is an O(1) base-offset update;
///  - the most-recently-accessed set is tracked, anchoring the
///    rotation-invariant state hash of Algorithm 2.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_SETASSOCCACHE_H
#define WCS_CACHE_SETASSOCCACHE_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/cache/Policy.h"
#include "wcs/support/AlignedAlloc.h"
#include "wcs/support/MathUtil.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

namespace wcs {

/// Memory-block identifier (byte address / block size). Non-negative for
/// real blocks; kInvalidBlock marks empty cache lines.
using BlockId = int64_t;
inline constexpr BlockId kInvalidBlock = -1;

/// Describes how a line payload maps onto the struct-of-arrays storage.
/// The primary template covers payloads that are nothing but
/// (Block, Dirty) -- e.g. ConcreteLine -- and stores no tag array at all.
/// Payload types with extra state (the symbolic line's node id and
/// iteration vector) specialize this with HasTag = true and a Tag struct
/// holding exactly that extra state.
template <typename LineT>
struct CacheLineTraits {
  static constexpr bool HasTag = false;
  struct Tag {};
  static void packTag(Tag &, const LineT &) {}
  static void unpackTag(LineT &, const Tag &) {}
};

/// Outcome of a single cache access.
struct AccessOutcome {
  bool Hit = false;
  bool Inserted = false;   ///< A new line was allocated.
  unsigned Set = 0;        ///< Logical set index.
  unsigned Way = 0;        ///< Way of the (hit or inserted) line.
  /// On a hit: the way the line occupied BEFORE the policy update. Under
  /// LRU the lines of a set sit in recency order, so this is the per-set
  /// stack distance of the access (the quantity Mattson histograms
  /// count); the depth-profiling passes of trace/PeriodicPass read it.
  unsigned HitDepth = 0;
  bool EvictedValid = false;
  bool EvictedDirty = false;
  BlockId EvictedBlock = kInvalidBlock;
};

/// Set-associative cache with pluggable line payload.
///
/// \tparam LineT must provide members `BlockId Block` and `bool Dirty`,
/// be cheaply copyable, and default-construct to an invalid line
/// (`Block == kInvalidBlock`). Extra payload members require a
/// CacheLineTraits specialization (see above); LineT itself is only ever
/// assembled on demand (lineAt, lastEvicted, invalidate) -- the stored
/// state is pure struct-of-arrays.
template <typename LineT>
class SetAssocCache {
  using Traits = CacheLineTraits<LineT>;

public:
  using TagT = typename Traits::Tag;

  explicit SetAssocCache(const CacheConfig &Config)
      : Cfg(Config), Sets(Config.numSets()), Assoc(Config.Assoc),
        SetMask(Sets - 1), WordsPerSet((Assoc + 63) / 64),
        WayMask(Assoc >= 64 ? ~0ull : (1ull << Assoc) - 1),
        Blocks(static_cast<size_t>(Sets) * Assoc, kInvalidBlock),
        DirtyBits(static_cast<size_t>(Sets) * WordsPerSet, 0),
        PlruBits(Sets, 0),
        Ages(Config.Policy == PolicyKind::QuadAgeLru
                 ? static_cast<size_t>(Sets) * Assoc
                 : 0,
             QlruOps::EvictAge) {
    assert(Config.validate().empty() && "invalid cache configuration");
    if constexpr (Traits::HasTag)
      Tags.resize(static_cast<size_t>(Sets) * Assoc);
  }

  const CacheConfig &config() const { return Cfg; }
  unsigned numSets() const { return Sets; }
  unsigned assoc() const { return Assoc; }

  /// Logical set of a block under modulo placement.
  unsigned setOf(BlockId B) const {
    return static_cast<unsigned>(static_cast<uint64_t>(B) & SetMask);
  }

  /// Most-recently-accessed logical set (hash anchor for warping).
  unsigned mraSet() const { return MraSet; }

  /// The full payload of the line evicted by the most recent inserting
  /// access (valid when AccessOutcome::EvictedValid). Exclusive
  /// hierarchies use this to migrate a victim (with its symbolic tag)
  /// into the next level.
  const LineT &lastEvicted() const { return EvictedLine; }

  /// Accesses block \p B. On a miss with \p Allocate, the block is
  /// inserted and the victim (if any) reported in the outcome. The caller
  /// is responsible for updating the payload at (Set, Way) after the call
  /// (e.g. refreshing the symbolic tag, setting the dirty bit). Dispatches
  /// the replacement policy exactly once, at entry.
  AccessOutcome access(BlockId B, bool Allocate) {
    switch (Cfg.Policy) {
    case PolicyKind::Lru:
      return accessImpl<PolicyKind::Lru>(B, Allocate);
    case PolicyKind::Fifo:
      return accessImpl<PolicyKind::Fifo>(B, Allocate);
    case PolicyKind::Plru:
      return accessImpl<PolicyKind::Plru>(B, Allocate);
    case PolicyKind::QuadAgeLru:
      return accessImpl<PolicyKind::QuadAgeLru>(B, Allocate);
    }
    return AccessOutcome();
  }

  /// access() with the policy -- and optionally the associativity --
  /// dispatched at the CALL SITE: batch loops switch once per chunk and
  /// then run the fully specialized access path with zero per-access
  /// dispatch. A nonzero \p CtAssoc bakes the way count into the
  /// instantiation (it must equal assoc()), which fully unrolls the hit
  /// scan into straight-line branchless code -- the win is largest for
  /// the fixed-way policies (PLRU/QLRU), whose resident lines sit at
  /// uniformly distributed scan depths.
  template <PolicyKind P, unsigned CtAssoc = 0>
  AccessOutcome accessAs(BlockId B, bool Allocate) {
    assert(Cfg.Policy == P && "accessAs policy mismatch");
    assert((CtAssoc == 0 || CtAssoc == Assoc) && "accessAs assoc mismatch");
    return accessImpl<P, CtAssoc>(B, Allocate);
  }

  /// accessAs() without the per-access MRA-set bookkeeping: batch loops
  /// call this and re-establish the invariant once per chunk with
  /// noteAccessedSet(last block's set). Identical cache state otherwise.
  template <PolicyKind P, unsigned CtAssoc = 0>
  AccessOutcome accessAsNoMra(BlockId B, bool Allocate) {
    assert(Cfg.Policy == P && "accessAs policy mismatch");
    assert((CtAssoc == 0 || CtAssoc == Assoc) && "accessAs assoc mismatch");
    return accessImpl<P, CtAssoc, /*TrackMra=*/false>(B, Allocate);
  }

  /// Restores the most-recently-accessed-set invariant after a batch of
  /// accessAsNoMra() calls.
  void noteAccessedSet(unsigned LogicalSet) { MraSet = LogicalSet; }

  /// True if \p B is currently cached (no state change).
  bool probe(BlockId B) const {
    const BlockId *Row = row(phys(setOf(B)));
    for (unsigned I = 0; I < Assoc; ++I)
      if (Row[I] == B)
        return true;
    return false;
  }

  /// Invalidates \p B if present (back-invalidation in inclusive
  /// hierarchies, or the L2->L1 promotion of exclusive hierarchies).
  /// Returns the removed line, or std::nullopt. Under LRU/FIFO the
  /// remaining lines keep their relative order (the freed slot sinks to
  /// the back); PLRU/QLRU metadata for the slot is reset.
  std::optional<LineT> invalidate(BlockId B) {
    unsigned S = setOf(B);
    unsigned Ph = phys(S);
    BlockId *Row = row(Ph);
    for (unsigned I = 0; I < Assoc; ++I) {
      if (Row[I] != B)
        continue;
      LineT Removed = assembleLine(Ph, I);
      switch (Cfg.Policy) {
      case PolicyKind::Lru:
      case PolicyKind::Fifo:
        // Close the recency gap; empty lines live at the back.
        std::memmove(Row + I, Row + I + 1,
                     (Assoc - 1 - I) * sizeof(BlockId));
        Row[Assoc - 1] = kInvalidBlock;
        dirtyGapClose(Ph, I);
        if constexpr (Traits::HasTag) {
          TagT *TR = tagRow(Ph);
          std::move(TR + I + 1, TR + Assoc, TR + I);
          TR[Assoc - 1] = TagT();
        }
        break;
      case PolicyKind::QuadAgeLru:
        Ages[static_cast<size_t>(Ph) * Assoc + I] = QlruOps::EvictAge;
        [[fallthrough]];
      case PolicyKind::Plru:
        Row[I] = kInvalidBlock;
        dirtyAssign(Ph, I, false);
        if constexpr (Traits::HasTag)
          tagRow(Ph)[I] = TagT();
        break;
      }
      return Removed;
    }
    return std::nullopt;
  }

  //===------------------------------------------------------------------===//
  // Per-line accessors (logical set index). The stored state is
  // struct-of-arrays, so there is no reference-to-whole-line accessor;
  // readers assemble a value with lineAt and writers touch the exact
  // component they mean.
  //===------------------------------------------------------------------===//

  /// The assembled payload at (Set, Way), by value.
  LineT lineAt(unsigned Set, unsigned Way) const {
    return assembleLine(phys(Set), Way);
  }

  BlockId blockAt(unsigned Set, unsigned Way) const {
    return Blocks[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }
  void setBlockAt(unsigned Set, unsigned Way, BlockId B) {
    Blocks[static_cast<size_t>(phys(Set)) * Assoc + Way] = B;
  }

  bool dirtyAt(unsigned Set, unsigned Way) const {
    return dirtyBit(phys(Set), Way);
  }
  void setDirtyAt(unsigned Set, unsigned Way, bool V) {
    dirtyAssign(phys(Set), Way, V);
  }
  void orDirtyAt(unsigned Set, unsigned Way, bool V) {
    if (V)
      dirtyAssign(phys(Set), Way, true);
  }

  /// The extra payload (beyond Block/Dirty) at (Set, Way); only
  /// instantiable for payloads whose traits define a tag.
  TagT &tagAt(unsigned Set, unsigned Way) {
    static_assert(Traits::HasTag, "payload has no tag state");
    return Tags[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }
  const TagT &tagAt(unsigned Set, unsigned Way) const {
    static_assert(Traits::HasTag, "payload has no tag state");
    return Tags[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }

  uint32_t plruBits(unsigned Set) const { return PlruBits[phys(Set)]; }
  uint8_t age(unsigned Set, unsigned Way) const {
    assert(!Ages.empty() && "ages only exist under Quad-age LRU");
    return Ages[static_cast<size_t>(phys(Set)) * Assoc + Way];
  }

  /// Per-set policy metadata as a single word, for hashing and state
  /// comparison. Captures PLRU tree bits or QLRU ages; LRU/FIFO state is
  /// already encoded in the line order.
  uint64_t policyWord(unsigned Set) const {
    switch (Cfg.Policy) {
    case PolicyKind::Lru:
    case PolicyKind::Fifo:
      return 0;
    case PolicyKind::Plru:
      return PlruBits[phys(Set)];
    case PolicyKind::QuadAgeLru: {
      uint64_t W = 0;
      const uint8_t *A = &Ages[static_cast<size_t>(phys(Set)) * Assoc];
      for (unsigned I = 0; I < Assoc; ++I)
        W = (W << 2) | A[I];
      return W;
    }
    }
    return 0;
  }

  /// Exact logical-state equality: line contents in logical (set, way)
  /// order plus the replacement metadata that decides future victims.
  /// The internal rotation base and the MRA anchor are representation
  /// details with no effect on future hit/miss behavior, so they are
  /// deliberately NOT compared. Used by the periodic replay fast path of
  /// trace/FilteredStream to prove that one more period repetition maps
  /// the cache onto itself (and may then be applied analytically).
  bool stateEquals(const SetAssocCache &O) const {
    if (Sets != O.Sets || Assoc != O.Assoc || Cfg.Policy != O.Cfg.Policy)
      return false;
    for (unsigned S = 0; S < Sets; ++S) {
      unsigned Ph = phys(S), OPh = O.phys(S);
      const BlockId *RA = row(Ph), *RB = O.row(OPh);
      if (std::memcmp(RA, RB, Assoc * sizeof(BlockId)) != 0)
        return false;
      for (unsigned W = 0; W < Assoc; ++W)
        if (dirtyBit(Ph, W) != O.dirtyBit(OPh, W))
          return false;
      if (Cfg.Policy == PolicyKind::QuadAgeLru &&
          std::memcmp(&Ages[static_cast<size_t>(Ph) * Assoc],
                      &O.Ages[static_cast<size_t>(OPh) * Assoc],
                      Assoc) != 0)
        return false;
      if (Cfg.Policy == PolicyKind::Plru &&
          PlruBits[Ph] != O.PlruBits[OPh])
        return false;
    }
    return true;
  }

  /// Applies the set rotation `s -> s + Amount (mod Sets)` to the whole
  /// cache state in O(1) (paper Theorem 4: warping rotates cache sets).
  /// Line payloads are NOT rewritten; the symbolic layer re-derives
  /// concrete blocks from tags after a warp.
  void rotateSets(int64_t Amount) {
    Base = static_cast<unsigned>(
        static_cast<uint64_t>(Base + floorMod(-Amount, Sets)) & SetMask);
    MraSet = static_cast<unsigned>(
        static_cast<uint64_t>(MraSet + floorMod(Amount, Sets)) & SetMask);
  }

  /// Resets to the empty cache.
  void reset() {
    std::fill(Blocks.begin(), Blocks.end(), kInvalidBlock);
    std::fill(DirtyBits.begin(), DirtyBits.end(), 0ull);
    std::fill(PlruBits.begin(), PlruBits.end(), 0u);
    std::fill(Ages.begin(), Ages.end(), QlruOps::EvictAge);
    if constexpr (Traits::HasTag)
      std::fill(Tags.begin(), Tags.end(), TagT());
    Base = 0;
    MraSet = 0;
  }

private:
  unsigned phys(unsigned LogicalSet) const {
    return static_cast<unsigned>(
        static_cast<uint64_t>(LogicalSet + Base) & SetMask);
  }

  BlockId *row(unsigned Ph) {
    return &Blocks[static_cast<size_t>(Ph) * Assoc];
  }
  const BlockId *row(unsigned Ph) const {
    return &Blocks[static_cast<size_t>(Ph) * Assoc];
  }
  /// row() with the way count supplied by the caller, so accessImpl
  /// instantiations with a compile-time associativity index with a
  /// constant multiplier (a shift for the power-of-two counts).
  BlockId *rowAt(unsigned Ph, unsigned A) {
    return &Blocks[static_cast<size_t>(Ph) * A];
  }
  TagT *tagRow(unsigned Ph) {
    return &Tags[static_cast<size_t>(Ph) * Assoc];
  }

  //===------------------------------------------------------------------===//
  // Dirty bitset: WordsPerSet 64-bit words per physical set, so a set's
  // window never straddles another set's. Assoc <= 64 (every policy but
  // LRU, and most LRU configs) is a single-word fast path; the multi-word
  // fallback (fully-associative LRU up to 4096 ways) moves bits
  // individually -- the block-id memmove dominates there anyway.
  //===------------------------------------------------------------------===//

  bool dirtyBit(unsigned Ph, unsigned W) const {
    return (DirtyBits[static_cast<size_t>(Ph) * WordsPerSet + (W >> 6)] >>
            (W & 63)) &
           1;
  }
  void dirtyAssign(unsigned Ph, unsigned W, bool V) {
    uint64_t &Word =
        DirtyBits[static_cast<size_t>(Ph) * WordsPerSet + (W >> 6)];
    uint64_t M = 1ull << (W & 63);
    Word = V ? (Word | M) : (Word & ~M);
  }

  /// LRU hit at way \p I: dirty bits [0, I) shift up one, bit I moves to
  /// the front (mirrors the block-id rotate-to-front).
  void dirtyRotateToFront(unsigned Ph, unsigned I) {
    if (WordsPerSet == 1) {
      uint64_t &Word = DirtyBits[Ph];
      uint64_t V = Word;
      uint64_t HitBit = (V >> I) & 1;
      uint64_t Low = V & ((1ull << I) - 1);
      // (2ull << I) wraps to 0 at I == 63, masking off every bit -- which
      // is exactly right: there are no bits above 63.
      Word = (V & ~((2ull << I) - 1)) | (Low << 1) | HitBit;
      return;
    }
    bool HitBit = dirtyBit(Ph, I);
    for (unsigned J = I; J > 0; --J)
      dirtyAssign(Ph, J, dirtyBit(Ph, J - 1));
    dirtyAssign(Ph, 0, HitBit);
  }

  /// LRU/FIFO fill: every bit shifts up one (the last drops out with the
  /// victim), the new front line starts clean.
  void dirtyShiftInsert(unsigned Ph) {
    if (WordsPerSet == 1) {
      uint64_t &Word = DirtyBits[Ph];
      Word = (Word << 1) & WayMask;
      return;
    }
    for (unsigned J = Assoc - 1; J > 0; --J)
      dirtyAssign(Ph, J, dirtyBit(Ph, J - 1));
    dirtyAssign(Ph, 0, false);
  }

  /// LRU/FIFO invalidate at way \p I: bits above close the gap.
  void dirtyGapClose(unsigned Ph, unsigned I) {
    if (WordsPerSet == 1) {
      uint64_t &Word = DirtyBits[Ph];
      uint64_t V = Word;
      uint64_t Low = V & ((1ull << I) - 1);
      uint64_t High = I + 1 >= 64 ? 0 : (V >> (I + 1)) << I;
      Word = Low | High;
      return;
    }
    for (unsigned J = I; J + 1 < Assoc; ++J)
      dirtyAssign(Ph, J, dirtyBit(Ph, J + 1));
    dirtyAssign(Ph, Assoc - 1, false);
  }

  LineT assembleLine(unsigned Ph, unsigned W) const {
    LineT L;
    L.Block = Blocks[static_cast<size_t>(Ph) * Assoc + W];
    L.Dirty = dirtyBit(Ph, W);
    if constexpr (Traits::HasTag)
      Traits::unpackTag(L, Tags[static_cast<size_t>(Ph) * Assoc + W]);
    return L;
  }

  /// One fully specialized access path per policy; `if constexpr` keeps
  /// each instantiation free of foreign-policy code and of any dispatch.
  /// With a nonzero compile-time associativity the hit scan compares all
  /// ways branchlessly into a match mask (one ctz recovers the way); the
  /// runtime-assoc variant keeps the early-exit loop, which is what the
  /// recency-ordered policies want when the way count is unknown.
  template <PolicyKind P, unsigned CtAssoc = 0, bool TrackMra = true>
  AccessOutcome accessImpl(BlockId B, bool Allocate) {
    assert(B >= 0 && "accessing an invalid block");
    const unsigned A = CtAssoc != 0 ? CtAssoc : Assoc;
    unsigned S = setOf(B);
    if constexpr (TrackMra)
      MraSet = S;
    unsigned Ph = phys(S);
    BlockId *Row = rowAt(Ph, A);
    AccessOutcome R;
    R.Set = S;
    unsigned I;
    if constexpr (CtAssoc != 0 && P != PolicyKind::Lru) {
      // Only LRU keeps its rows recency-ordered; under the fixed-way
      // policies (PLRU/QLRU) and FIFO's insertion order, resident lines
      // sit at uniformly distributed scan depths, so an early-exit scan
      // mispredicts its exit on nearly every access. Comparing the
      // whole row into a mask is branch-free and fully unrolled.
      static_assert(CtAssoc <= 32, "mask scan is a narrow-way fast path");
      uint32_t M = 0;
      for (unsigned W = 0; W < CtAssoc; ++W)
        M |= static_cast<uint32_t>(Row[W] == B) << W;
      I = M != 0 ? static_cast<unsigned>(__builtin_ctz(M)) : CtAssoc;
    } else {
      // Recency-ordered rows (LRU/FIFO) hit near the front; the early
      // exit is usually taken on the first or second compare.
      for (I = 0; I < A; ++I)
        if (Row[I] == B)
          break;
    }
    if (I != A) {
      R.Hit = true;
      R.HitDepth = I;
      if constexpr (P == PolicyKind::Lru) {
        if (I != 0) {
          std::memmove(Row + 1, Row, I * sizeof(BlockId));
          Row[0] = B;
          dirtyRotateToFront(Ph, I);
          if constexpr (Traits::HasTag) {
            TagT *TR = tagRow(Ph);
            std::rotate(TR, TR + I, TR + I + 1);
          }
        }
        R.Way = 0;
      } else if constexpr (P == PolicyKind::Plru) {
        PlruOps::touch(PlruBits[Ph], A, I);
        R.Way = I;
      } else if constexpr (P == PolicyKind::QuadAgeLru) {
        Ages[static_cast<size_t>(Ph) * A + I] = QlruOps::HitAge;
        R.Way = I;
      } else { // FIFO: a hit changes nothing.
        R.Way = I;
      }
      return R;
    }
    if (!Allocate)
      return R;
    R.Inserted = true;
    if constexpr (P == PolicyKind::Lru || P == PolicyKind::Fifo) {
      recordVictim(Ph, A - 1, R);
      std::memmove(Row + 1, Row, (A - 1) * sizeof(BlockId));
      Row[0] = B;
      dirtyShiftInsert(Ph);
      if constexpr (Traits::HasTag) {
        TagT *TR = tagRow(Ph);
        std::rotate(TR, TR + A - 1, TR + A);
        TR[0] = TagT();
      }
      R.Way = 0;
    } else if constexpr (P == PolicyKind::Plru) {
      unsigned Way = firstInvalid(Row, A);
      if (Way == A)
        Way = PlruOps::victim(PlruBits[Ph], A);
      recordVictim(Ph, Way, R);
      PlruOps::touch(PlruBits[Ph], A, Way);
      fillSlot(Ph, Way, B);
      R.Way = Way;
    } else { // Quad-age LRU.
      uint8_t *Age = &Ages[static_cast<size_t>(Ph) * A];
      unsigned Way = firstInvalid(Row, A);
      if (Way == A)
        Way = QlruOps::victimAging(Age, A);
      recordVictim(Ph, Way, R);
      Age[Way] = QlruOps::InsertAge;
      fillSlot(Ph, Way, B);
      R.Way = Way;
    }
    return R;
  }

  unsigned firstInvalid(const BlockId *Row, unsigned A) const {
    for (unsigned I = 0; I < A; ++I)
      if (Row[I] == kInvalidBlock)
        return I;
    return A;
  }

  /// In-place fill (PLRU/QLRU): new line, clean, default tag.
  void fillSlot(unsigned Ph, unsigned Way, BlockId B) {
    Blocks[static_cast<size_t>(Ph) * Assoc + Way] = B;
    dirtyAssign(Ph, Way, false);
    if constexpr (Traits::HasTag)
      tagRow(Ph)[Way] = TagT();
  }

  /// Captures the victim at (Ph, Way) into \p R and EvictedLine BEFORE
  /// the slot is overwritten.
  void recordVictim(unsigned Ph, unsigned Way, AccessOutcome &R) {
    BlockId VB = Blocks[static_cast<size_t>(Ph) * Assoc + Way];
    R.EvictedValid = VB != kInvalidBlock;
    R.EvictedBlock = VB;
    R.EvictedDirty = R.EvictedValid && dirtyBit(Ph, Way);
    if (R.EvictedValid) {
      EvictedLine = LineT();
      EvictedLine.Block = VB;
      EvictedLine.Dirty = R.EvictedDirty;
      if constexpr (Traits::HasTag)
        Traits::unpackTag(EvictedLine,
                          Tags[static_cast<size_t>(Ph) * Assoc + Way]);
    }
  }

  CacheConfig Cfg;
  unsigned Sets;
  unsigned Assoc;
  uint64_t SetMask;
  unsigned WordsPerSet; ///< Dirty-bitset words per set.
  uint64_t WayMask;     ///< Low Assoc bits set (single-word sets only).
  unsigned Base = 0;    ///< Logical-to-physical set rotation offset.
  unsigned MraSet = 0;  ///< Most-recently-accessed logical set.
  LineT EvictedLine;    ///< Payload of the most recent victim.
  /// Struct-of-arrays state, hot to cold: block ids (the scan), dirty
  /// bits, policy metadata, then any cold tag payload.
  std::vector<BlockId, AlignedAllocator<BlockId, 64>> Blocks;
  std::vector<uint64_t, AlignedAllocator<uint64_t, 64>> DirtyBits;
  std::vector<uint32_t> PlruBits;
  std::vector<uint8_t> Ages;
  std::vector<TagT> Tags; ///< Sized only when Traits::HasTag.
};

} // namespace wcs

#endif // WCS_CACHE_SETASSOCCACHE_H
