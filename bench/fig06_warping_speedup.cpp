//===- bench/fig06_warping_speedup.cpp - Paper Fig. 6 ---------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates Fig. 6: the speedup of warping simulation over non-warping
// simulation (bottom panel) and the share of non-warped accesses (top
// panel), per kernel and per replacement policy (LRU, FIFO, PLRU,
// Quad-age LRU), simulating the scaled test-system L1.
//
// Expected shape (see EXPERIMENTS.md): stencil kernels (adi, fdtd-2d,
// heat-3d, jacobi-1d/2d, seidel-2d, deriche) warp almost everything and
// win by large factors, roughly 1/(share of non-warped accesses); dense
// kernels with multi-directional reuse (gemm, lu, floyd-warshall, ...)
// do not warp and stay near 1x.
//
// Environment: WCS_SIZE=mini|small|medium|large|xlarge (default large);
//              WCS_JOBS=N batch worker threads. Defaults to 1 because the
//              timing columns feed the figure: concurrent jobs contend
//              for cores and bandwidth, so parallel runs (fine for
//              counter checks, not for timings) are an explicit opt-in.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <vector>

using namespace wcs;
using namespace wcs::bench;

int main() {
  ProblemSize Size = sizeFromEnv(ProblemSize::Large);
  CacheConfig Base = CacheConfig::scaledL1();
  std::printf("== Figure 6: warping vs non-warping simulation, L1 %s, "
              "problem size %s ==\n\n",
              Base.str().c_str(), problemSizeName(Size));

  const PolicyKind Policies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                 PolicyKind::Plru, PolicyKind::QuadAgeLru};

  // The whole figure as one batch: per kernel and policy, a non-warping
  // job and a warping job. Results come back in job order, so the table
  // below is identical for any WCS_JOBS.
  const std::vector<KernelInfo> &Kernels = polybenchKernels();
  std::vector<ScopProgram> Programs;
  Programs.reserve(Kernels.size());
  std::vector<BatchJob> Jobs;
  for (const KernelInfo &K : Kernels) {
    Programs.push_back(mustBuild(K, Size));
    for (unsigned PI = 0; PI < 4; ++PI) {
      CacheConfig C = Base;
      C.Policy = Policies[PI];
      BatchJob J;
      J.Program = &Programs.back();
      J.Cache = HierarchyConfig::singleLevel(C);
      J.Tag = std::string(K.Name) + "/" + policyName(Policies[PI]);
      J.Backend = SimBackend::Concrete;
      Jobs.push_back(J);
      J.Backend = SimBackend::Warping;
      Jobs.push_back(std::move(J));
    }
  }
  BatchReport Rep = runBatch(Jobs);

  std::printf("%-15s %-6s %12s %11s %11s %9s %13s\n", "kernel", "policy",
              "accesses", "nonwarp[s]", "warp[s]", "speedup",
              "non-warped[%]");
  GeoMean Mean[4];
  for (size_t KI = 0; KI < Kernels.size(); ++KI) {
    for (unsigned PI = 0; PI < 4; ++PI) {
      const SimStats &R = Rep.Results[(KI * 4 + PI) * 2].Stats;
      const SimStats &W = Rep.Results[(KI * 4 + PI) * 2 + 1].Stats;
      requireEqualMisses(Kernels[KI].Name, R, W);
      double Speedup = R.Seconds / W.Seconds;
      Mean[PI].add(Speedup);
      std::printf("%-15s %-6s %12llu %11.3f %11.3f %8.2fx %13.2f\n",
                  Kernels[KI].Name, policyName(Policies[PI]),
                  static_cast<unsigned long long>(R.totalAccesses()),
                  R.Seconds, W.Seconds, Speedup,
                  100.0 * W.nonWarpedShare());
    }
  }
  std::printf("\ngeomean speedup:");
  for (unsigned PI = 0; PI < 4; ++PI)
    std::printf("  %s %.2fx", policyName(Policies[PI]), Mean[PI].value());
  std::printf("\nall per-kernel miss counts verified equal between warping "
              "and non-warping simulation\n");
  return 0;
}
