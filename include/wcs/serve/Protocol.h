//===- wcs/serve/Protocol.h - wcs-serve wire protocol -----------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wcs-serve wire protocol: line-framed compact JSON documents over
/// a Unix-domain stream socket. One connection serves one exchange:
///
///   client -> server   one line: a wcs-request v1 document, or the
///                      control document {"schema":"wcs-control",
///                      "schema_version":1,"cmd":"shutdown"} (or
///                      "status", whose ack carries the scheduler and
///                      store counters)
///   server -> client   zero or more wcs-progress lines (one per grid
///                      point as its result lands: {"schema":
///                      "wcs-progress","schema_version":1,"request":R,
///                      "point":I,"total":N,"cache":"...","method":
///                      "store","ok":true}), then exactly one final
///                      line -- a wcs-response v1 document (or a
///                      wcs-control ack for shutdown/status) -- and
///                      the server closes. The daemon serves many
///                      connections concurrently; "request" is the
///                      daemon-assigned serial tying progress lines to
///                      their request.
///
/// Compact dumps contain no raw newlines (the JSON writer escapes them
/// inside strings), so '\n' frames are unambiguous. This header also
/// carries the client side used by `wcs-serve --client` and the tests:
/// submit a request, surface each progress line, return the parsed
/// response.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SERVE_PROTOCOL_H
#define WCS_SERVE_PROTOCOL_H

#include "wcs/driver/SweepRequest.h"

#include <functional>
#include <string>

namespace wcs {

inline constexpr const char ControlSchemaName[] = "wcs-control";
inline constexpr const char ProgressSchemaName[] = "wcs-progress";
inline constexpr const char StatusSchemaName[] = "wcs-status";
inline constexpr int64_t ServeProtocolVersion = 1;
inline constexpr int64_t StatusSchemaVersion = 1;

/// One per-point progress notification.
struct ProgressEvent {
  /// Daemon-assigned request serial. With the concurrent scheduler a
  /// daemon interleaves many requests; the serial ties every progress
  /// line (and the daemon's stderr log) to one of them. Serialized as
  /// "request", optional on read (0 -- what pre-scheduler daemons
  /// emitted), always written.
  uint64_t Request = 0;
  size_t Point = 0;    ///< Grid-point index, input order.
  size_t Total = 0;    ///< Points in the request.
  std::string Cache;   ///< HierarchyConfig::str() of the point.
  SweepMethod Method = SweepMethod::Simulated;
  bool Ok = false;
};

json::Value toJson(const ProgressEvent &E);
bool fromJson(const json::Value &V, ProgressEvent &Out, std::string *Err);

/// The daemon's answer to the wcs-control "status" command: a
/// schema-versioned wcs-status v1 document (rejection pinned in
/// tests/json_reader_test.cpp alongside the other wire documents).
/// Scheduler counters plus the server's connection and uptime figures.
struct StatusDoc {
  uint64_t RequestsServed = 0;
  uint64_t PointsComputed = 0;
  uint64_t StoreHits = 0;
  uint64_t InFlightHits = 0;
  uint64_t CancelledJobs = 0;
  uint64_t ActiveRequests = 0;
  uint64_t QueuedJobs = 0;
  uint64_t StoreEntries = 0;
  uint64_t ActiveConnections = 0;
  uint64_t MaxConnections = 0;
  double UptimeSeconds = 0.0;
  /// Robustness counters; joined the v1 schema with deadline/shedding
  /// support, so they are optional on read (0 from older daemons) but
  /// always written.
  uint64_t DeadlineExpired = 0;
  uint64_t ShedRequests = 0;
  uint64_t QueuedPoints = 0;
};

json::Value toJson(const StatusDoc &D);
bool fromJson(const json::Value &V, StatusDoc &Out, std::string *Err);

//===----------------------------------------------------------------------===//
// Socket plumbing (thin POSIX wrappers; fd < 0 = failure)
//===----------------------------------------------------------------------===//

/// Binds and listens on a Unix-domain stream socket at \p Path.
/// Probes the path with connect() first: a socket that answers means a
/// live daemon owns it, and the call refuses with a "daemon already
/// running" diagnostic instead of silently stealing it. A socket that
/// refuses the probe is a stale file from a crashed daemon and is
/// unlinked. Returns the listening fd or -1 with a diagnostic.
int listenUnix(const std::string &Path, std::string *Err);

/// Connects to the daemon at \p Path. Returns the fd or -1.
int connectUnix(const std::string &Path, std::string *Err);

/// Arms SO_RCVTIMEO/SO_SNDTIMEO on \p Fd so every blocking read and
/// write gives up after \p Seconds (surfaced as a "timed out"
/// diagnostic by sendLine/readLine). Seconds <= 0 is a no-op: the
/// socket keeps blocking indefinitely.
bool setSocketTimeout(int Fd, double Seconds, std::string *Err);

/// Writes \p Line plus the '\n' frame, handling short writes.
bool sendLine(int Fd, const std::string &Line, std::string *Err);

/// A line without '\n' longer than this is a protocol violation (or a
/// hostile peer); LineReader fails the connection instead of growing
/// its buffer without bound. Compact request documents are far below
/// this even with megabyte kernel sources inlined.
inline constexpr size_t DefaultMaxLineBytes = 64u << 20; // 64 MiB

/// Buffered '\n'-framed reader for one socket.
class LineReader {
public:
  explicit LineReader(int Fd) : Fd(Fd) {}
  /// Caps the longest accepted line (see DefaultMaxLineBytes).
  void setMaxLineBytes(size_t Bytes) { MaxLineBytes = Bytes; }
  /// Reads one line (without the '\n'). Returns false on EOF or error;
  /// the two are told apart by \p Err, untouched on clean EOF. A read
  /// that exceeds the line cap or the socket's SO_RCVTIMEO fails with
  /// a diagnostic.
  bool readLine(std::string &Out, std::string *Err);

private:
  int Fd;
  size_t MaxLineBytes = DefaultMaxLineBytes;
  std::string Buf;
};

void closeFd(int Fd);

//===----------------------------------------------------------------------===//
// Client side
//===----------------------------------------------------------------------===//

/// Client-side retry behaviour for submitSweepRequest. Retrying a
/// sweep request is always safe: requests are idempotent (results are
/// content-addressed in the daemon's store), so a replay either hits
/// the store or recomputes the same points.
struct ClientRetryPolicy {
  /// Extra attempts after the first (0 = the pre-retry behaviour:
  /// one shot, fail on any transport error).
  unsigned Retries = 0;
  /// First backoff delay; doubles per attempt with jitter in
  /// [0.5, 1.0) of the nominal value, capped at MaxBackoffSeconds.
  double BaseBackoffSeconds = 0.1;
  double MaxBackoffSeconds = 5.0;
  /// Seeds the deterministic jitter sequence.
  uint64_t JitterSeed = 1;
  /// Socket timeout armed on the client connection (0 = none).
  double IoTimeoutSeconds = 0.0;
};

/// Submits \p Req to the daemon at \p SocketPath and blocks until the
/// final response line. Every wcs-progress line is surfaced through
/// \p OnProgress (may be null). Returns false -- with a transport- or
/// protocol-level diagnostic -- only when no well-formed response
/// arrived; a response with Ok=false returns true (the failure is the
/// daemon's answer, in \p Response).
///
/// Under \p Policy the client retries with bounded exponential backoff
/// on connect/transport failures and on Error="overloaded" responses
/// (sleeping at least the daemon's retry_after_seconds hint); any
/// other daemon answer -- including Ok=false errors -- is final. Each
/// retry bumps the `client.retries` telemetry counter.
bool submitSweepRequest(const std::string &SocketPath,
                        const SweepRequest &Req, SweepResponse &Response,
                        const std::function<void(const ProgressEvent &)>
                            &OnProgress,
                        const ClientRetryPolicy &Policy, std::string *Err);

/// One-shot submission (no retries, no socket timeout).
inline bool submitSweepRequest(const std::string &SocketPath,
                               const SweepRequest &Req,
                               SweepResponse &Response,
                               const std::function<void(const ProgressEvent &)>
                                   &OnProgress,
                               std::string *Err) {
  return submitSweepRequest(SocketPath, Req, Response, OnProgress,
                            ClientRetryPolicy(), Err);
}

/// Asks the daemon to shut down and waits for its ack.
bool requestShutdown(const std::string &SocketPath, std::string *Err);

/// Asks the daemon for its status (the wcs-control "status" command)
/// and parses the answer -- a wcs-status v1 document -- into \p Out.
/// Returns false on transport errors or a malformed document.
bool requestStatus(const std::string &SocketPath, StatusDoc &Out,
                   std::string *Err);

} // namespace wcs

#endif // WCS_SERVE_PROTOCOL_H
