//===- wcs/support/Hashing.h - 64-bit hashing utilities ---------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic 64-bit hashing used for symbolic cache-state keys.
/// The warping simulator hashes full symbolic cache states once per loop
/// iteration probe, so the mixer is a cheap splitmix64-style function.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_HASHING_H
#define WCS_SUPPORT_HASHING_H

#include <cstdint>

namespace wcs {

/// splitmix64 finalizer; a solid, fast 64-bit mixer.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines an existing hash with a new value, order-sensitively.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashMix(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// Incremental order-sensitive hasher for streaming state fingerprints.
class HashStream {
public:
  void add(uint64_t V) { State = hashCombine(State, V); }
  void add(int64_t V) { add(static_cast<uint64_t>(V)); }
  void add(int32_t V) { add(static_cast<uint64_t>(static_cast<uint64_t>(V))); }
  void add(uint32_t V) { add(static_cast<uint64_t>(V)); }

  uint64_t digest() const { return State; }

private:
  uint64_t State = 0x2545f4914f6cdd1dULL;
};

} // namespace wcs

#endif // WCS_SUPPORT_HASHING_H
