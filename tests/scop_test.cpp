//===- tests/scop_test.cpp - SCoP representation unit tests --------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/scop/Builder.h"
#include "wcs/scop/Program.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

/// Builds the paper's Fig. 4 program: upper-triangular matrix-vector
/// product.
ScopProgram buildTriangularMatvec(std::string *Err) {
  ScopBuilder B("trimatvec");
  unsigned C = B.addArray("c", 8, {100});
  unsigned A = B.addArray("A", 8, {100, 100});
  unsigned X = B.addArray("x", 8, {100});

  B.beginLoop("i", B.cst(0), B.cst(99));
  B.write(C, {B.iter("i")});
  B.beginLoop("j", B.iter("i"), B.cst(99));
  B.read(C, {B.iter("i")});
  B.read(A, {B.iter("i"), B.iter("j")});
  B.read(X, {B.iter("j")});
  B.write(C, {B.iter("i")});
  B.endLoop();
  B.endLoop();
  return B.finish(Err);
}

TEST(ScopBuilder, TriangularMatvecStructure) {
  std::string Err;
  ScopProgram P = buildTriangularMatvec(&Err);
  ASSERT_EQ(Err, "");

  ASSERT_EQ(P.accesses().size(), 5u);
  ASSERT_EQ(P.loops().size(), 2u);
  EXPECT_EQ(P.maxLoopDepth(), 2u);

  const LoopNode *Li = P.loops()[0];
  const LoopNode *Lj = P.loops()[1];
  EXPECT_EQ(Li->Depth, 0u);
  EXPECT_EQ(Lj->Depth, 1u);
  EXPECT_EQ(Li->IterName, "i");
  EXPECT_EQ(Lj->IterName, "j");

  // DFS access-id ranges: the i-loop covers all five accesses; the j-loop
  // covers the inner four.
  EXPECT_EQ(Li->FirstAccess, 0);
  EXPECT_EQ(Li->EndAccess, 5);
  EXPECT_EQ(Lj->FirstAccess, 1);
  EXPECT_EQ(Lj->EndAccess, 5);

  // Triangular domain of the inner loop: (i,j) with i <= j.
  EXPECT_TRUE(Lj->Domain.contains(IterVec{3, 3}));
  EXPECT_TRUE(Lj->Domain.contains(IterVec{3, 99}));
  EXPECT_FALSE(Lj->Domain.contains(IterVec{3, 2}));
  auto B = Lj->Domain.lastDimBounds(IterVec{42});
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Lo, 42);
  EXPECT_EQ(B->Hi, 99);
}

TEST(ScopBuilder, AddressLinearization) {
  std::string Err;
  ScopProgram P = buildTriangularMatvec(&Err);
  ASSERT_EQ(Err, "");

  const ArrayInfo &A = P.array(1);
  ASSERT_EQ(A.Name, "A");
  const AccessNode *AccA = P.accesses()[2]; // read A[i][j]
  EXPECT_EQ(AccA->ArrayId, 1u);
  // Row-major: addr = base + 8 * (100*i + j).
  EXPECT_EQ(AccA->Address.eval(IterVec{2, 5}), A.BaseAddr + 8 * (200 + 5));
  EXPECT_EQ(AccA->Address.eval(IterVec{0, 0}), A.BaseAddr);

  const AccessNode *AccX = P.accesses()[3]; // read x[j]
  const ArrayInfo &X = P.array(2);
  EXPECT_EQ(AccX->Address.eval(IterVec{2, 5}), X.BaseAddr + 8 * 5);
}

TEST(ScopLayout, ArraysAreDisjointAndAligned) {
  std::string Err;
  ScopProgram P = buildTriangularMatvec(&Err);
  ASSERT_EQ(Err, "");
  const auto &Arrays = P.arrays();
  for (size_t I = 0; I < Arrays.size(); ++I) {
    EXPECT_GE(Arrays[I].BaseAddr, 4096);
    EXPECT_EQ(Arrays[I].BaseAddr % 4096, 0) << "page alignment";
    for (size_t J = I + 1; J < Arrays.size(); ++J) {
      bool Disjoint =
          Arrays[I].BaseAddr + Arrays[I].byteSize() <= Arrays[J].BaseAddr ||
          Arrays[J].BaseAddr + Arrays[J].byteSize() <= Arrays[I].BaseAddr;
      EXPECT_TRUE(Disjoint) << Arrays[I].Name << " overlaps "
                            << Arrays[J].Name;
    }
  }
}

TEST(ScopBuilder, GuardsRestrictAccessDomains) {
  ScopBuilder B("guarded");
  unsigned A = B.addArray("A", 8, {50});
  B.beginLoop("i", B.cst(0), B.cst(49));
  // if (i >= 10) A[i] = ...
  B.beginGuard(Constraint::ge(B.iter("i") - B.cst(10)));
  B.write(A, {B.iter("i")});
  B.endGuard();
  B.read(A, {B.iter("i")});
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  ASSERT_EQ(Err, "");
  ASSERT_EQ(P.accesses().size(), 2u);
  const AccessNode *W = P.accesses()[0];
  const AccessNode *R = P.accesses()[1];
  EXPECT_TRUE(W->Guarded);
  EXPECT_FALSE(R->Guarded);
  EXPECT_FALSE(W->Domain.contains(IterVec{5}));
  EXPECT_TRUE(W->Domain.contains(IterVec{10}));
  EXPECT_TRUE(R->Domain.contains(IterVec{5}));
}

TEST(ScopBuilder, ScalarsAreZeroDimensional) {
  ScopBuilder B("scalars");
  unsigned S = B.addScalar("nrm");
  unsigned A = B.addArray("A", 8, {10});
  B.beginLoop("i", B.cst(0), B.cst(9));
  B.readScalar(S);
  B.read(A, {B.iter("i")});
  B.writeScalar(S);
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  ASSERT_EQ(Err, "");
  EXPECT_TRUE(P.array(S).isScalar());
  EXPECT_EQ(P.array(S).byteSize(), 8);
  const AccessNode *RS = P.accesses()[0];
  EXPECT_TRUE(RS->Subscripts.empty());
  EXPECT_EQ(RS->Address.eval(IterVec{7}), P.array(S).BaseAddr)
      << "scalar address is iteration-independent";
}

TEST(ScopBuilder, MultipleTopLevelNests) {
  ScopBuilder B("twonests");
  unsigned A = B.addArray("A", 8, {20});
  B.beginLoop("i", B.cst(0), B.cst(19));
  B.write(A, {B.iter("i")});
  B.endLoop();
  B.beginLoop("i", B.cst(0), B.cst(19));
  B.read(A, {B.iter("i")});
  B.endLoop();
  // A top-level statement outside any loop (e.g. corr[N-1][N-1] = 1).
  B.write(A, {AffineExpr::constant(0, 19)});
  std::string Err;
  ScopProgram P = B.finish(&Err);
  ASSERT_EQ(Err, "");
  EXPECT_EQ(P.roots().size(), 3u);
  EXPECT_EQ(P.accesses().size(), 3u);
  const AccessNode *Top = P.accesses()[2];
  EXPECT_EQ(Top->Depth, 0u);
  EXPECT_EQ(Top->Address.eval(IterVec{}), P.array(A).BaseAddr + 8 * 19);
}

TEST(ScopProgram, PrintingMentionsStructure) {
  std::string Err;
  ScopProgram P = buildTriangularMatvec(&Err);
  ASSERT_EQ(Err, "");
  std::string S = P.str();
  EXPECT_NE(S.find("for i"), std::string::npos);
  EXPECT_NE(S.find("for j"), std::string::npos);
  EXPECT_NE(S.find("A[i][j]"), std::string::npos);
  EXPECT_NE(S.find("write c"), std::string::npos);
}

} // namespace
