//===- src/driver/BatchRunner.cpp - Parallel batch simulation -------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/BatchRunner.h"

#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/support/StringUtil.h"
#include "wcs/support/Telemetry.h"
#include "wcs/trace/FilteredStream.h"
#include "wcs/trace/StackDistance.h"
#include "wcs/trace/TraceSimulator.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

using namespace wcs;

const char *wcs::backendName(SimBackend B) {
  switch (B) {
  case SimBackend::Warping:
    return "warping";
  case SimBackend::Concrete:
    return "concrete";
  case SimBackend::Trace:
    return "trace";
  case SimBackend::StackDistance:
    return "stack-distance";
  }
  return "?";
}

bool wcs::parseBackendName(const std::string &Name, SimBackend &Out) {
  std::string L = toLowerAscii(Name);
  if (L == "warping" || L == "warp")
    Out = SimBackend::Warping;
  else if (L == "concrete")
    Out = SimBackend::Concrete;
  else if (L == "trace")
    Out = SimBackend::Trace;
  else if (L == "stack-distance" || L == "stackdistance")
    Out = SimBackend::StackDistance;
  else
    return false;
  return true;
}

bool BatchReport::allOk() const {
  for (const BatchResult &R : Results)
    if (!R.Ok)
      return false;
  return true;
}

uint64_t BatchReport::totalAccesses() const {
  uint64_t N = 0;
  for (const BatchResult &R : Results)
    if (R.Ok)
      N += R.Stats.totalAccesses();
  return N;
}

double BatchReport::cpuSeconds() const {
  double S = 0.0;
  for (const BatchResult &R : Results)
    if (R.Ok)
      S += R.Stats.Seconds;
  return S;
}

double BatchReport::jobsPerSecond() const {
  return WallSeconds > 0.0 ? Results.size() / WallSeconds : 0.0;
}

double BatchReport::accessesPerSecond() const {
  return WallSeconds > 0.0 ? totalAccesses() / WallSeconds : 0.0;
}

std::string BatchReport::summary() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%zu jobs on %u threads in %.3f s  (%.1f jobs/s, %.2e "
                "accesses/s, %.2fx vs serial)",
                Results.size(), Threads, WallSeconds, jobsPerSecond(),
                accessesPerSecond(),
                WallSeconds > 0.0 ? cpuSeconds() / WallSeconds : 0.0);
  return Buf;
}

BatchRunner::BatchRunner(unsigned NumThreads) : NumThreads(NumThreads) {
  if (this->NumThreads == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    this->NumThreads = HW == 0 ? 1 : HW;
  }
}

BatchResult BatchRunner::runJob(const BatchJob &Job, size_t JobIndex) {
  telemetry::Span JobSpan("batch.job");
  JobSpan.arg("tag", Job.Tag);
  JobSpan.arg("backend",
              Job.Filtered ? "replay" : backendName(Job.Backend));
  BatchResult R;
  R.JobIndex = JobIndex;
  R.Tag = Job.Tag;
  if (!Job.Program && !Job.Filtered) {
    R.Error = "job has no program";
    return R;
  }
  std::string CfgErr = Job.Cache.validate();
  if (!CfgErr.empty()) {
    R.Error = CfgErr;
    return R;
  }
  // Exception barrier: a throwing job (e.g. bad_alloc materializing a
  // trace) must become a per-job failure, not escape a worker thread
  // and terminate the whole batch.
  try {
    if (Job.Filtered) {
      // Filtered-stream replay: the recorded L1-miss stream drives the
      // L2 directly (NINE fast path of the sweep driver).
      std::string Why;
      if (!Job.Filtered->answersHierarchy(Job.Cache, &Why)) {
        R.Error = Why;
        return R;
      }
      R.Stats = Job.Filtered->replay(Job.Cache.Levels[1]);
      R.Ok = true;
      return R;
    }
    switch (Job.Backend) {
    case SimBackend::Warping: {
      WarpingSimulator Sim(*Job.Program, Job.Cache, Job.Options);
      R.Stats = Sim.run();
      break;
    }
    case SimBackend::Concrete: {
      ConcreteSimulator Sim(*Job.Program, Job.Cache, Job.Options);
      R.Stats = Sim.run();
      break;
    }
    case SimBackend::Trace: {
      // Writeback propagation off: hit/miss counts then agree with the
      // symbolic backends, keeping the three backends interchangeable.
      TraceSimOptions TO;
      TO.IncludeScalars = Job.Options.IncludeScalars;
      TO.PropagateWritebacks = false;
      TraceSimulator Sim(Job.Cache, TO);
      R.Stats = Sim.runOnProgram(*Job.Program).Stats;
      break;
    }
    case SimBackend::StackDistance: {
      const CacheConfig &C = Job.Cache.Levels.front();
      if (Job.Cache.numLevels() != 1 || C.Policy != PolicyKind::Lru ||
          C.WriteAlloc != WriteAllocate::Yes) {
        R.Error = "the stack-distance backend models single-level "
                  "write-allocate LRU only";
        return R;
      }
      double Seconds = 0.0;
      SetDistanceBank Bank =
          profileProgramSets(*Job.Program, C.BlockBytes, C.numSets(),
                             Job.Options.IncludeScalars, &Seconds);
      R.Stats.NumLevels = 1;
      R.Stats.Level[0].Accesses = Bank.totalAccesses();
      R.Stats.Level[0].Misses = Bank.missesForCache(C);
      // The analytical model walks the trace instead of a cache: every
      // access is "simulated" in the explicit-work sense, none warped.
      R.Stats.SimulatedAccesses = Bank.totalAccesses();
      R.Stats.Seconds = Seconds;
      break;
    }
    }
  } catch (const std::exception &E) {
    R.Error = E.what();
    return R;
  } catch (...) {
    R.Error = "unknown exception";
    return R;
  }
  R.Ok = true;
  return R;
}

bool wcs::parseJobCount(const char *Text, unsigned &Out) {
  uint64_t V;
  if (!Text || !parseUInt64(Text, V, 0xFFFFFFFFu))
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

void BatchRunner::startPool(
    std::function<bool(std::function<void()> &)> Next) {
  stopPool();
  PoolNext = std::move(Next);
  Pool.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T)
    Pool.emplace_back([this, T] {
      telemetry::setThreadName("worker-" + std::to_string(T));
      std::function<void()> Task;
      while (PoolNext(Task)) {
        Task();
        // Drop captured state promptly: a task may pin large request
        // state (program, configs) that must not outlive its run by a
        // whole blocking Next call.
        Task = nullptr;
      }
    });
}

void BatchRunner::stopPool() {
  for (std::thread &T : Pool)
    T.join();
  Pool.clear();
  PoolNext = nullptr;
}

void BatchRunner::runTasks(const std::vector<std::function<void()>> &Tasks) {
  unsigned Threads = static_cast<unsigned>(std::min<size_t>(
      NumThreads, std::max<size_t>(1, Tasks.size())));
  std::atomic<size_t> Cursor{0};
  // An exception escaping a worker thread would terminate the process,
  // so the pool captures the first one, keeps draining the remaining
  // tasks (they own independent result slots), and rethrows on the
  // caller's thread after the join. Callers that want per-task failure
  // handling must catch inside the task body.
  std::mutex ErrorMutex;
  std::exception_ptr FirstError;
  auto Worker = [&]() {
    for (;;) {
      size_t I = Cursor.fetch_add(1, std::memory_order_relaxed);
      if (I >= Tasks.size())
        return;
      try {
        Tasks[I]();
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrorMutex);
        if (!FirstError)
          FirstError = std::current_exception();
      }
    }
  };
  if (Threads <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T < Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}

BatchReport BatchRunner::run(const std::vector<BatchJob> &Jobs) {
  BatchReport Report;
  Report.Results.resize(Jobs.size());
  Report.Threads = static_cast<unsigned>(
      std::min<size_t>(NumThreads, std::max<size_t>(1, Jobs.size())));

  telemetry::Span RunSpan("batch.run");
  RunSpan.arg("jobs", static_cast<uint64_t>(Jobs.size()));
  RunSpan.arg("threads", static_cast<uint64_t>(Report.Threads));
  telemetry::TimePoint T0 = telemetry::now();

  // One thunk per job over the shared fan-out: each task owns its
  // preallocated result slot, so only the progress callback needs the
  // lock.
  std::mutex ProgressMutex;
  std::vector<std::function<void()>> Tasks;
  Tasks.reserve(Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    Tasks.push_back([this, &Jobs, &Report, &ProgressMutex, I] {
      Report.Results[I] = runJob(Jobs[I], I);
      if (Progress) {
        std::lock_guard<std::mutex> Lock(ProgressMutex);
        Progress(Report.Results[I]);
      }
    });
  runTasks(Tasks);

  Report.WallSeconds = telemetry::secondsSince(T0);
  return Report;
}
