//===- bench/ablation_warp_bounds.cpp - Design-choice ablations -----------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Ablates the engineering bounds of the warping search (DESIGN.md
// Sec. 3.3) on representative kernels: the match-distance cap MaxDelta,
// the probe window, eager vs two-phase snapshots, and the profit guard.
// Every configuration is exact by construction (validated continuously
// by the test suite); what changes is how much gets warped and at what
// overhead.
//
// Environment: WCS_SIZE (default medium: the ablation sweeps 4 kernels
// x 9 configurations).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <cstdio>

using namespace wcs;
using namespace wcs::bench;

namespace {

struct Ablation {
  std::string Name;
  WarpConfig W;
};

std::vector<Ablation> ablations() {
  std::vector<Ablation> A;
  A.push_back({"defaults", WarpConfig()});
  for (int64_t D : {8, 64, 512}) {
    WarpConfig W;
    W.MaxDelta = D;
    A.push_back({"max-delta=" + std::to_string(D), W});
  }
  for (unsigned P : {64u, 512u, 4096u}) {
    WarpConfig W;
    W.MaxProbeIters = P;
    A.push_back({"probe-window=" + std::to_string(P), W});
  }
  {
    WarpConfig W;
    W.EagerSnapshotTripLimit = 0;
    A.push_back({"no-eager-snapshots", W});
  }
  {
    WarpConfig W;
    W.EnableProfitGuard = false;
    A.push_back({"no-profit-guard", W});
  }
  return A;
}

} // namespace

int main() {
  ProblemSize Size = sizeFromEnv(ProblemSize::Medium);
  CacheConfig C = CacheConfig::scaledL1();
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  const char *Kernels[] = {"jacobi-2d", "adi", "atax", "gemm"};
  std::printf("== Ablation: warping search bounds, L1 %s, size %s ==\n\n",
              C.str().c_str(), problemSizeName(Size));
  for (const char *Name : Kernels) {
    const KernelInfo *K = findKernel(Name);
    ScopProgram P = mustBuild(*K, Size);
    ConcreteSimulator Ref(P, H);
    SimStats R = Ref.run();
    std::printf("%s (non-warping: %.3fs, %llu accesses)\n", Name, R.Seconds,
                static_cast<unsigned long long>(R.totalAccesses()));
    std::printf("  %-22s %9s %9s %13s %7s\n", "configuration", "warp[s]",
                "speedup", "non-warped[%]", "warps");
    for (const Ablation &Ab : ablations()) {
      SimOptions O;
      O.Warp = Ab.W;
      WarpingSimulator Warp(P, H, O);
      SimStats W = Warp.run();
      requireEqualMisses(Name, R, W);
      std::printf("  %-22s %8.3fs %8.2fx %13.2f %7llu\n", Ab.Name.c_str(),
                  W.Seconds, R.Seconds / W.Seconds,
                  100.0 * W.nonWarpedShare(),
                  static_cast<unsigned long long>(W.Warps));
    }
    std::printf("\n");
  }
  std::printf("takeaways: rotating PLRU matches need a generous MaxDelta; "
              "the probe window must cover\nthe cold-start transient; the "
              "profit guard only matters for low-yield kernels (atax).\n");
  return 0;
}
