//===- cache/Policy.cpp ---------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/Policy.h"

#include <cassert>

using namespace wcs;

void PlruOps::touch(uint32_t &Bits, unsigned Assoc, unsigned Way) {
  assert(Way < Assoc && "way out of range");
  unsigned Node = 1, Lo = 0, Hi = Assoc;
  while (Hi - Lo > 1) {
    unsigned Mid = Lo + (Hi - Lo) / 2;
    if (Way < Mid) {
      Bits |= (1u << Node); // Accessed left; victim path points right.
      Node = 2 * Node;
      Hi = Mid;
    } else {
      Bits &= ~(1u << Node); // Accessed right; victim path points left.
      Node = 2 * Node + 1;
      Lo = Mid;
    }
  }
}

unsigned PlruOps::victim(uint32_t Bits, unsigned Assoc) {
  unsigned Node = 1, Lo = 0, Hi = Assoc;
  while (Hi - Lo > 1) {
    unsigned Mid = Lo + (Hi - Lo) / 2;
    if (Bits & (1u << Node)) {
      Node = 2 * Node + 1;
      Lo = Mid;
    } else {
      Node = 2 * Node;
      Hi = Mid;
    }
  }
  return Lo;
}

unsigned QlruOps::victimAging(uint8_t *Ages, unsigned Assoc) {
  for (;;) {
    for (unsigned W = 0; W < Assoc; ++W)
      if (Ages[W] >= EvictAge)
        return W;
    for (unsigned W = 0; W < Assoc; ++W)
      ++Ages[W];
  }
}
