//===- wcs/frontend/Parser.h - Recursive-descent SCoP parser ----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-pass recursive-descent parser that lowers the loop-nest dialect
/// directly into a ScopBuilder (no intermediate AST: the only semantic
/// content of a statement is the ordered sequence of array accesses it
/// performs, which the parser can emit on the fly).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_FRONTEND_PARSER_H
#define WCS_FRONTEND_PARSER_H

#include "wcs/frontend/Frontend.h"
#include "wcs/frontend/Lexer.h"
#include "wcs/scop/Builder.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wcs {

/// Parses one kernel; use via parseScop() (Frontend.h).
class Parser {
public:
  Parser(const std::string &Source,
         const std::map<std::string, int64_t> &Params, std::string Name);

  ParseResult run(int64_t AlignBytes);

private:
  // -- Symbols -----------------------------------------------------------
  struct Symbol {
    enum class Kind { Param, Array, Scalar, Iterator };
    Kind K = Kind::Param;
    int64_t ParamValue = 0; ///< Param: bound value.
    unsigned ArrayId = 0;   ///< Array/Scalar: ScopBuilder id.
    unsigned NumDims = 0;   ///< Array: declared dimensionality.
    AffineExpr IterExpr;    ///< Iterator: source iterator in terms of the
                            ///< canonical dims (handles -- and +=c loops).
  };

  // -- Token stream ------------------------------------------------------
  void bump();
  bool expect(Token::Kind K, const char *Context);
  bool expectIdent(std::string &Out, const char *Context);

  // -- Diagnostics -------------------------------------------------------
  bool fail(SrcLoc Loc, std::string Msg);

  // -- Declarations and statements (Lowering.cpp) -------------------------
  bool parseTopLevel();
  bool parseParamDecl();
  bool parseVarDecl(unsigned ElemBytes);
  bool parseStmt();
  bool parseFor();
  bool parseIf();
  bool parseBlock();
  bool parseAssign();

  // -- Expressions (Parser.cpp) -------------------------------------------
  /// Affine expressions over the canonical iterator dims at current depth.
  std::optional<AffineExpr> parseAffine();
  std::optional<AffineExpr> parseAffineAdditive();
  std::optional<AffineExpr> parseAffineTerm();
  std::optional<AffineExpr> parseAffinePrimary();

  /// Constant-folds an affine expression; error if not constant.
  std::optional<int64_t> parseConstant(const char *Context);

  /// Value expressions: emits reads for array/scalar operands.
  bool parseValueExpr();
  bool parseValueAdditive();
  bool parseValueTerm();
  bool parseValueUnary();
  bool parseValuePrimary();

  /// A conjunction of affine comparisons; produces one Constraint per
  /// comparison (x != y and || are rejected with a diagnostic).
  bool parseCondition(std::vector<Constraint> &Out);
  bool parseComparison(std::vector<Constraint> &Out);

  /// Parses `name[e]...[e]`; returns the symbol and affine subscripts.
  bool parseLValue(Symbol &SymOut, std::vector<AffineExpr> &SubsOut,
                   SrcLoc &LocOut);

  const Symbol *lookup(const std::string &Name) const;
  bool isTypeKeyword(const std::string &Ident, unsigned &ElemBytes) const;

  Lexer Lex;
  Token Tok;
  std::map<std::string, int64_t> Params;
  std::map<std::string, Symbol> Syms;
  ScopBuilder Builder;
  bool SeenStmt = false;
  std::string Error;
  SrcLoc ErrorLoc;
};

} // namespace wcs

#endif // WCS_FRONTEND_PARSER_H
