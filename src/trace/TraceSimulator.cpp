//===- trace/TraceSimulator.cpp -------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/TraceSimulator.h"

#include "wcs/support/MathUtil.h"
#include "wcs/support/Telemetry.h"


using namespace wcs;

TraceSimulator::TraceSimulator(const HierarchyConfig &CacheCfg,
                               TraceSimOptions Options)
    : Cache(CacheCfg, Options.PropagateWritebacks), Options(Options),
      BlockShift(log2Exact(CacheCfg.blockBytes())),
      BlockBytes(CacheCfg.blockBytes()) {
  Result.Stats.NumLevels = CacheCfg.numLevels();
}

void TraceSimulator::access(const TraceRecord &R) {
  // An access may straddle a block boundary; real trace simulators split
  // it into one access per touched block.
  BlockId First = R.Addr >> BlockShift;
  BlockId Last = (R.Addr + R.Size - 1) >> BlockShift;
  for (BlockId B = First; B <= Last; ++B) {
    HierarchyOutcome O = Cache.access(B, R.IsWrite);
    ++Result.Stats.SimulatedAccesses;
    ++Result.Stats.Level[0].Accesses;
    if (!O.L1Hit)
      ++Result.Stats.Level[0].Misses;
    if (O.L2Accessed) {
      ++Result.Stats.Level[1].Accesses;
      if (!O.L2Hit)
        ++Result.Stats.Level[1].Misses;
    }
    Result.Writebacks += O.L2Writebacks;
    Result.WritebackMisses += O.L2WritebackMisses;
  }
}

TraceSimResult TraceSimulator::runOnProgram(const ScopProgram &Program) {
  telemetry::TimePoint Start = telemetry::now();
  TraceOptions TO;
  TO.IncludeScalars = Options.IncludeScalars;
  ChunkedTraceGenerator Gen(Program, TO);
  for (;;) {
    const std::vector<TraceRecord> &Chunk = Gen.nextChunk();
    if (Chunk.empty())
      break;
    for (const TraceRecord &R : Chunk)
      access(R);
  }
  Result.Stats.Seconds = telemetry::secondsSince(Start);
  return Result;
}
