//===- wcs/cache/Policy.h - Replacement policy primitives -------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-set replacement-policy primitives shared by the concrete and the
/// symbolic cache (paper Sec. 2.1).
///
/// LRU and FIFO encode their state purely in the physical order of the
/// ways (most-recent / last-in first), matching the paper's formalization
/// where cache-line position equals recency rank; PLRU keeps per-set tree
/// bits and Quad-age LRU keeps 2-bit ages, both with lines at fixed ways.
/// All primitives depend only on way indices and metadata — never on block
/// identities — which is exactly the data-independence property
/// (Property 1) that warping exploits.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_CACHE_POLICY_H
#define WCS_CACHE_POLICY_H

#include <cstdint>

namespace wcs {

/// Tree-based Pseudo-LRU over power-of-two associativity. Tree bits are
/// stored heap-style in a uint32 (node 1 = root); bit == 1 means "the
/// victim path continues right".
struct PlruOps {
  /// Updates \p Bits after an access to \p Way (points the path away).
  static void touch(uint32_t &Bits, unsigned Assoc, unsigned Way);
  /// Returns the way selected for eviction by following the tree bits.
  static unsigned victim(uint32_t Bits, unsigned Assoc);
};

/// Quad-age LRU modeled as 2-bit RRIP (paper reference [40], Jaleel et
/// al.): hit promotes to age 0, insertion uses age 2, the victim is the
/// lowest-index way of age 3, aging all ways when none qualifies. The
/// "aging" step is applied by the caller via victimAging on the per-way
/// age array.
struct QlruOps {
  static constexpr uint8_t HitAge = 0;
  static constexpr uint8_t InsertAge = 2;
  static constexpr uint8_t EvictAge = 3;

  /// Selects a victim among \p Assoc ways, aging in place as needed.
  static unsigned victimAging(uint8_t *Ages, unsigned Assoc);
};

/// Moves element \p Way of \p Ways to the front, shifting [0, Way) down by
/// one. Used to maintain the recency order of LRU sets.
template <typename LineT>
void rotateToFront(LineT *Ways, unsigned Way) {
  if (Way == 0)
    return;
  LineT Tmp = Ways[Way];
  for (unsigned I = Way; I > 0; --I)
    Ways[I] = Ways[I - 1];
  Ways[0] = Tmp;
}

/// Shifts all of [0, Assoc-1) down by one, freeing position 0; the caller
/// overwrites position 0 with the newly inserted line. The previous last
/// element (the LRU / first-in line) is returned by value.
template <typename LineT>
LineT shiftDownForInsert(LineT *Ways, unsigned Assoc) {
  LineT Last = Ways[Assoc - 1];
  for (unsigned I = Assoc - 1; I > 0; --I)
    Ways[I] = Ways[I - 1];
  return Last;
}

} // namespace wcs

#endif // WCS_CACHE_POLICY_H
