//===- tests/stack_distance_test.cpp - Stack-distance cross-checks --------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Validates the stack-distance profiler (the HayStack-style LRU model)
// against ground truth from two directions: hand-computed distances on
// tiny traces, and a seeded property test cross-checking the derived
// fully-associative LRU miss counts against ConcreteSimulator over
// randomized programs and associativities.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/trace/StackDistance.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

using namespace wcs;
using testutil::generateProgram;

namespace {

TEST(StackDistance, HandComputedTinyTrace) {
  // Block trace a b c a c b with 64-byte blocks:
  //   a,b,c cold; then a at distance 2, c at distance 1, b at distance 2.
  StackDistanceProfiler Prof(64);
  for (int64_t Block : {0, 1, 2, 0, 2, 1})
    Prof.accessAddr(Block * 64);

  EXPECT_EQ(Prof.totalAccesses(), 6u);
  EXPECT_EQ(Prof.coldAccesses(), 3u);
  ASSERT_GE(Prof.histogram().size(), 3u);
  EXPECT_EQ(Prof.histogram()[1], 1u);
  EXPECT_EQ(Prof.histogram()[2], 2u);

  // 1 line: only the repeat at distance 0 would hit; everything misses.
  EXPECT_EQ(Prof.missesForAssoc(1), 6u);
  // 2 lines: the distance-1 access hits.
  EXPECT_EQ(Prof.missesForAssoc(2), 5u);
  // 3+ lines: only the colds miss.
  EXPECT_EQ(Prof.missesForAssoc(3), 3u);
  EXPECT_EQ(Prof.missesForAssoc(64), 3u);
}

TEST(StackDistance, SameBlockHitsAtAnyCapacity) {
  StackDistanceProfiler Prof(64);
  for (int I = 0; I < 5; ++I)
    Prof.accessAddr(8 * I); // All within block 0.
  EXPECT_EQ(Prof.coldAccesses(), 1u);
  EXPECT_EQ(Prof.missesForAssoc(1), 1u);
}

TEST(StackDistance, HistogramAccountsForEveryAccess) {
  std::mt19937 Rng(2022);
  ScopProgram P = generateProgram(Rng);
  StackDistanceProfiler Prof = profileProgram(P, 64, /*IncludeScalars=*/false);
  uint64_t Finite = std::accumulate(Prof.histogram().begin(),
                                    Prof.histogram().end(), uint64_t{0});
  EXPECT_EQ(Finite + Prof.coldAccesses(), Prof.totalAccesses());
}

TEST(StackDistance, PeriodCaptureAndBulkUpdateMatchLinearWalk) {
  // Stream: prefix, then period P repeated 5 times, then a suffix that
  // re-touches both periodic and pre-periodic blocks. The bulk-updated
  // bank walks P only twice (the second under capture) and applies the
  // other three repetitions analytically; it must agree with the
  // linearly walked twin at every associativity, including on the
  // suffix distances (the profilers' markers stay equivalent).
  const std::vector<BlockId> Prefix = {0, 1, 2};
  const std::vector<BlockId> Period = {3, 4, 5, 3, 6};
  const std::vector<BlockId> Suffix = {1, 4, 0, 6};
  const uint64_t Reps = 5;

  SetDistanceBank Linear(64, 2), Bulk(64, 2);
  auto Walk = [](SetDistanceBank &B, const std::vector<BlockId> &Seq) {
    for (BlockId Blk : Seq)
      B.accessBlock(Blk);
  };
  Walk(Linear, Prefix);
  for (uint64_t R = 0; R < Reps; ++R)
    Walk(Linear, Period);
  Walk(Linear, Suffix);

  Walk(Bulk, Prefix);
  Walk(Bulk, Period); // Repetition 1: entered from the prefix state.
  Bulk.beginPeriodCapture();
  Walk(Bulk, Period); // Repetition 2: the stationary one.
  DistanceHistogram H = Bulk.endPeriodCapture();
  EXPECT_EQ(H.Colds, 0u) << "identical repetition cannot touch new blocks";
  EXPECT_EQ(H.Accesses, Period.size());
  ASSERT_TRUE(Bulk.addPeriodicContribution(H, Reps - 2));
  Walk(Bulk, Suffix);

  EXPECT_EQ(Bulk.totalAccesses(), Linear.totalAccesses());
  EXPECT_EQ(Bulk.truncatedAtAssoc(), 0u); // Untruncated contribution.
  for (uint64_t Assoc = 1; Assoc <= 16; ++Assoc)
    EXPECT_EQ(Bulk.missesForAssoc(Assoc), Linear.missesForAssoc(Assoc))
        << "assoc " << Assoc;
}

TEST(StackDistance, OverflowingBulkUpdateIsRejectedAtomically) {
  // Adversarial repetition counts: any scaled accumulation that would
  // overflow uint64 must be rejected with the bank left bit-identical,
  // so the caller can demote to walking the repetitions (the Colds>0
  // path). Pre-fix this silently wrapped and produced garbage miss
  // counts.
  SetDistanceBank Bank(64, 1);
  for (BlockId B : {0, 1, 2, 0, 2, 1})
    Bank.accessBlock(B);
  DistanceHistogram Seed;
  Seed.Hist = {5, 1};
  Seed.Beyond = 2;
  Seed.Accesses = 8;
  ASSERT_TRUE(Bank.addPeriodicContribution(Seed, 3));
  const uint64_t Total = Bank.totalAccesses();
  const uint64_t M1 = Bank.missesForAssoc(1);
  const uint64_t M2 = Bank.missesForAssoc(2);

  // Histogram scaling overflows: 3 * (2^64 / 2) > 2^64 - 1.
  DistanceHistogram H;
  H.Hist = {0, 3};
  H.Accesses = 3;
  EXPECT_FALSE(Bank.addPeriodicContribution(H, UINT64_MAX / 2));

  // Later checks overflow after earlier ones pass: the histogram column
  // scales fine (1 * 2), the access total does not. The bank must not
  // keep the partially validated histogram bump.
  DistanceHistogram Tail;
  Tail.Hist = {1};
  Tail.Accesses = UINT64_MAX;
  EXPECT_FALSE(Bank.addPeriodicContribution(Tail, 2));

  // Always-miss scaling overflows (Beyond * Reps).
  DistanceHistogram Far;
  Far.Beyond = UINT64_MAX / 2;
  Far.Accesses = 1;
  EXPECT_FALSE(Bank.addPeriodicContribution(Far, 3));

  EXPECT_EQ(Bank.totalAccesses(), Total);
  EXPECT_EQ(Bank.missesForAssoc(1), M1);
  EXPECT_EQ(Bank.missesForAssoc(2), M2);
  EXPECT_EQ(Bank.truncatedAtAssoc(), 0u);

  // The rejected fragment still enters fine at a sane repetition count
  // and lands exactly where an untouched bank would put it.
  ASSERT_TRUE(Bank.addPeriodicContribution(H, 4));
  EXPECT_EQ(Bank.totalAccesses(), Total + 12);
  EXPECT_EQ(Bank.missesForAssoc(1), M1 + 12);
  EXPECT_EQ(Bank.missesForAssoc(2), M2);
}

TEST(StackDistance, CaptureFlagsColdAccessesAsPeriodicityViolation) {
  SetDistanceBank Bank(64, 1);
  for (BlockId B : {0, 1, 2})
    Bank.accessBlock(B);
  Bank.beginPeriodCapture();
  for (BlockId B : {1, 2, 7}) // 7 is new: not a repetition of anything.
    Bank.accessBlock(B);
  DistanceHistogram H = Bank.endPeriodCapture();
  EXPECT_EQ(H.Colds, 1u);
  EXPECT_EQ(H.Accesses, 3u);
}

TEST(StackDistance, TruncatedContributionLimitsMatches) {
  SetDistanceBank Bank(64, 1);
  DistanceHistogram H;
  H.Hist = {4, 2};
  H.Beyond = 3;
  H.Accesses = 9;
  ASSERT_TRUE(Bank.addPeriodicContribution(H, 2, /*TruncatedAtAssoc=*/4));
  EXPECT_EQ(Bank.truncatedAtAssoc(), 4u);
  EXPECT_EQ(Bank.totalAccesses(), 18u);
  // missesForAssoc(1) = (2 + 3) * 2; missesForAssoc(2+) = 3 * 2.
  EXPECT_EQ(Bank.missesForAssoc(1), 10u);
  EXPECT_EQ(Bank.missesForAssoc(2), 6u);
  EXPECT_EQ(Bank.missesForAssoc(4), 6u);
  CacheConfig Within{4 * 64, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Beyond{8 * 64, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  EXPECT_TRUE(Bank.matches(Within));
  EXPECT_FALSE(Bank.matches(Beyond));
  // A tighter later truncation wins; a looser one must not widen it.
  ASSERT_TRUE(Bank.addPeriodicContribution(H, 1, /*TruncatedAtAssoc=*/8));
  EXPECT_EQ(Bank.truncatedAtAssoc(), 4u);
  ASSERT_TRUE(Bank.addPeriodicContribution(H, 1, /*TruncatedAtAssoc=*/2));
  EXPECT_EQ(Bank.truncatedAtAssoc(), 2u);
}

TEST(StackDistance, MissesMonotoneInAssociativity) {
  std::mt19937 Rng(31337);
  ScopProgram P = generateProgram(Rng);
  StackDistanceProfiler Prof = profileProgram(P, 64, false);
  for (uint64_t A = 1; A < 64; ++A)
    EXPECT_GE(Prof.missesForAssoc(A), Prof.missesForAssoc(A + 1)) << A;
}

/// The profiler's derived miss count must equal concrete simulation of a
/// fully-associative LRU cache, access for access (Mattson's inclusion
/// property made executable).
TEST(StackDistance, MatchesConcreteFullyAssociativeLru) {
  std::mt19937 Rng(424242);
  for (int Trial = 0; Trial < 10; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    StackDistanceProfiler Prof = profileProgram(P, 64, false);
    for (unsigned Lines : {1u, 2u, 4u, 8u, 32u}) {
      CacheConfig C;
      C.BlockBytes = 64;
      C.Assoc = Lines; // One set: fully associative.
      C.SizeBytes = static_cast<uint64_t>(Lines) * 64;
      C.Policy = PolicyKind::Lru;
      ASSERT_EQ(C.validate(), "");

      ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(C));
      SimStats S = Sim.run();
      ASSERT_EQ(S.totalAccesses(), Prof.totalAccesses())
          << "trial " << Trial << " lines " << Lines;
      EXPECT_EQ(Prof.missesForCache(C), S.Level[0].Misses)
          << "trial " << Trial << " lines " << Lines << "\n"
          << P.str();
    }
  }
}

/// Same cross-check at a different block size (the profiler's only
/// geometry parameter).
TEST(StackDistance, MatchesConcreteAtSmallBlockSize) {
  std::mt19937 Rng(55);
  ScopProgram P = generateProgram(Rng);
  StackDistanceProfiler Prof = profileProgram(P, 16, false);
  for (unsigned Lines : {2u, 8u}) {
    CacheConfig C;
    C.BlockBytes = 16;
    C.Assoc = Lines;
    C.SizeBytes = static_cast<uint64_t>(Lines) * 16;
    C.Policy = PolicyKind::Lru;
    ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(C));
    EXPECT_EQ(Prof.missesForCache(C), Sim.run().Level[0].Misses) << Lines;
  }
}

} // namespace
