//===- wcs/sim/ConcreteSimulator.h - Algorithm 1 ---------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Non-warping cache simulation of polyhedral programs (paper
/// Algorithm 1): walk the SCoP tree, enumerate every iteration point in
/// lexicographic order, and update a concrete cache hierarchy per access.
/// This is both the baseline that warping is measured against (Fig. 6)
/// and the golden model the warping simulator is validated against.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SIM_CONCRETESIMULATOR_H
#define WCS_SIM_CONCRETESIMULATOR_H

#include "wcs/cache/ConcreteCache.h"
#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"

#include <functional>
#include <vector>

namespace wcs {

/// Non-warping simulator (paper Algorithm 1).
class ConcreteSimulator {
public:
  ConcreteSimulator(const ScopProgram &Program, const HierarchyConfig &Cache,
                    SimOptions Options = SimOptions());

  /// Simulates the whole program on an initially empty hierarchy.
  SimStats run();

  /// The hierarchy state after run() (e.g. to chain SCoPs).
  const ConcreteHierarchy &hierarchy() const { return Cache; }

  /// Observer invoked once per simulated access with the block, the
  /// write flag and the full hierarchy outcome. This is the filter tap
  /// of trace/FilteredStream: recording the accesses with !L1Hit yields
  /// exactly the stream a NINE L2 sees. Must be set before run(); the
  /// tap may throw to abort the simulation (the exception propagates
  /// out of run()).
  using AccessTap =
      std::function<void(BlockId, bool IsWrite, const HierarchyOutcome &)>;
  void setTap(AccessTap T) { Tap = std::move(T); }

  /// Narrower observer invoked only on L1 misses, in program order, with
  /// the block and the write flag. Unlike setTap, a miss tap does NOT
  /// disable batching: hits never reach it, so the batched hot loop can
  /// keep running and call it from the (rare) miss branch. This is how
  /// trace/FilteredStream records the L1-filtered stream at batched
  /// speed. Must be set before run(); may throw to abort the simulation.
  using MissTap = ConcreteHierarchy::L1MissSink;
  void setMissTap(MissTap T) { MissTapFn = std::move(T); }

private:
  void simulateNode(const Node *N, IterVec &Iter);
  void simulateLoop(const LoopNode *L, IterVec &Iter);
  void simulateAccess(const AccessNode *A, const IterVec &Iter);

  /// True when \p L can run through the batched address path: every
  /// child is an unguarded access whose subscripts are affine in the
  /// loop iterator (i.e. plain AccessNodes -- the innermost-loop shape
  /// of the polybench kernels).
  bool loopIsBatchable(const LoopNode *L) const;
  /// The batched walk of one loop activation over [Lo, Hi]: per included
  /// child, a start address and a constant innermost stride; addresses
  /// are generated incrementally into chunks and handed to
  /// ConcreteHierarchy::accessBatch.
  void simulateLoopBatched(const LoopNode *L, IterVec &Iter, int64_t Lo,
                           int64_t Hi);

  const ScopProgram &Program;
  ConcreteHierarchy Cache;
  SimOptions Options;
  SimStats Stats;
  unsigned BlockShift;
  AccessTap Tap;
  MissTap MissTapFn;
  bool UseBatch = false; ///< Resolved at run(): BatchConcrete && !Tap.
  /// One batched child access: its running byte address and constant
  /// innermost-loop stride.
  struct BatchLane {
    int64_t Addr;
    int64_t Stride;
    bool IsWrite;
  };
  std::vector<BatchLane> Lanes;        ///< Per-activation scratch.
  std::vector<BatchedAccess> BatchBuf; ///< Chunk scratch, reused.
};

} // namespace wcs

#endif // WCS_SIM_CONCRETESIMULATOR_H
