//===- wcs/support/IterVec.h - Small loop-iteration vectors -----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-capacity vector of loop iterator values. Loop nests in the
/// polyhedral model are shallow (PolyBench's deepest nest has four loops),
/// so a small inline array avoids any allocation in the simulator's hot
/// path, where one IterVec is stored per cache line.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_ITERVEC_H
#define WCS_SUPPORT_ITERVEC_H

#include "wcs/support/Hashing.h"

#include <array>
#include <cassert>
#include <compare>
#include <cstdint>

namespace wcs {

/// Maximum supported loop-nest depth.
inline constexpr unsigned MaxLoopDepth = 8;

/// A loop iteration point: a short vector of iterator values.
class IterVec {
public:
  IterVec() = default;

  explicit IterVec(unsigned Size) : N(static_cast<uint8_t>(Size)) {
    assert(Size <= MaxLoopDepth && "loop nest too deep");
    V.fill(0);
  }

  IterVec(std::initializer_list<int64_t> Init) {
    assert(Init.size() <= MaxLoopDepth && "loop nest too deep");
    for (int64_t X : Init)
      V[N++] = X;
  }

  unsigned size() const { return N; }
  bool empty() const { return N == 0; }

  int64_t operator[](unsigned I) const {
    assert(I < N && "IterVec index out of range");
    return V[I];
  }
  int64_t &operator[](unsigned I) {
    assert(I < N && "IterVec index out of range");
    return V[I];
  }

  int64_t back() const {
    assert(N > 0 && "back() on empty IterVec");
    return V[N - 1];
  }
  int64_t &back() {
    assert(N > 0 && "back() on empty IterVec");
    return V[N - 1];
  }

  void push(int64_t X) {
    assert(N < MaxLoopDepth && "loop nest too deep");
    V[N++] = X;
  }
  void pop() {
    assert(N > 0 && "pop() on empty IterVec");
    --N;
  }

  /// Returns the first \p K components as a new vector.
  IterVec prefix(unsigned K) const {
    assert(K <= N && "prefix longer than vector");
    IterVec P;
    for (unsigned I = 0; I < K; ++I)
      P.push(V[I]);
    return P;
  }

  /// True if the first \p K components equal those of \p Other.
  bool prefixEquals(const IterVec &Other, unsigned K) const {
    assert(K <= N && K <= Other.N && "prefix longer than vector");
    for (unsigned I = 0; I < K; ++I)
      if (V[I] != Other.V[I])
        return false;
    return true;
  }

  friend bool operator==(const IterVec &A, const IterVec &B) {
    if (A.N != B.N)
      return false;
    for (unsigned I = 0; I < A.N; ++I)
      if (A.V[I] != B.V[I])
        return false;
    return true;
  }

  /// Lexicographic order (only meaningful for equal sizes).
  friend std::strong_ordering operator<=>(const IterVec &A, const IterVec &B) {
    assert(A.N == B.N && "lexicographic compare of different dimensions");
    for (unsigned I = 0; I < A.N; ++I)
      if (A.V[I] != B.V[I])
        return A.V[I] <=> B.V[I];
    return std::strong_ordering::equal;
  }

  uint64_t hash() const {
    HashStream H;
    H.add(static_cast<uint64_t>(N));
    for (unsigned I = 0; I < N; ++I)
      H.add(V[I]);
    return H.digest();
  }

private:
  std::array<int64_t, MaxLoopDepth> V = {};
  uint8_t N = 0;
};

} // namespace wcs

#endif // WCS_SUPPORT_ITERVEC_H
