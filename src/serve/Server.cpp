//===- src/serve/Server.cpp - The wcs-serve daemon ------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Server.h"

#include "wcs/serve/Scheduler.h"
#include "wcs/support/JsonReader.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

using namespace wcs;
using json::Value;

SweepResponse wcs::serveSweepRequest(
    const SweepRequest &Req, ResultStore &Store, unsigned Threads,
    const std::function<void(const ProgressEvent &)> &OnProgress) {
  SweepResponse Resp;
  Resp.RequestHash = requestHash(Req);

  PreparedSweep Prep;
  std::string Err;
  if (!prepareSweep(Req, Prep, &Err)) {
    Resp.Error = Err;
    Resp.StoreEntries = Store.numEntries();
    return Resp;
  }

  // Partition the expanded grid by store state. Hits come back
  // verbatim -- the stored counters ARE the fresh-simulation counters,
  // property-tested bit-identical -- under method "store" so the
  // provenance of every answer stays honest.
  size_t Total = Prep.Configs.size();
  std::vector<SweepPoint> Points(Total);
  std::vector<size_t> MissIdx;
  std::vector<std::string> Keys(Total);
  for (size_t I = 0; I < Total; ++I) {
    Keys[I] = sweepPointKey(Req, Prep.Configs[I]);
    SweepPoint Hit;
    if (Store.lookup(Keys[I], Hit)) {
      Hit.Method = SweepMethod::Store;
      Points[I] = std::move(Hit);
      ++Resp.StoreHits;
      if (OnProgress) {
        ProgressEvent E;
        E.Point = I;
        E.Total = Total;
        E.Cache = Prep.Configs[I].str();
        E.Method = SweepMethod::Store;
        E.Ok = Points[I].Ok;
        OnProgress(E);
      }
    } else {
      MissIdx.push_back(I);
    }
  }
  Resp.StoreMisses = MissIdx.size();

  // The misses run as ONE sub-sweep, so they still share passes and
  // streams among themselves exactly as a CLI sweep would.
  SweepReport Merged;
  Merged.Threads = Threads == 0 ? 1 : Threads;
  if (!MissIdx.empty()) {
    std::vector<HierarchyConfig> MissConfigs;
    MissConfigs.reserve(MissIdx.size());
    for (size_t I : MissIdx)
      MissConfigs.push_back(Prep.Configs[I]);
    SweepOptions SO = Req.Options;
    SO.Threads = Threads;
    Merged = runSweep(Prep.Program, MissConfigs, SO);
    for (size_t J = 0; J < MissIdx.size(); ++J) {
      size_t I = MissIdx[J];
      Points[I] = Merged.Points[J];
      if (Points[I].Ok)
        Store.insert(Keys[I], Points[I], nullptr);
      if (OnProgress) {
        ProgressEvent E;
        E.Point = I;
        E.Total = Total;
        E.Cache = Prep.Configs[I].str();
        E.Method = Points[I].Method;
        E.Ok = Points[I].Ok;
        OnProgress(E);
      }
    }
  }
  Merged.Points = std::move(Points);

  Resp.Ok = true;
  Resp.StoreEntries = Store.numEntries();
  Resp.Sweep = makeSweepDoc("wcs-serve", Req.programLabel(),
                            Req.sizeLabel(), Merged);
  return Resp;
}

//===----------------------------------------------------------------------===//
// The accept loop
//===----------------------------------------------------------------------===//

namespace {

/// Everything the connection threads share with the accept loop.
struct ServerState {
  Scheduler *Sched = nullptr;
  unsigned MaxConnections = 0; ///< 0 = unlimited.
  int ListenFd = -1;
  telemetry::TimePoint Start; ///< For uptime_seconds.

  std::mutex Mu;
  std::condition_variable Cv; ///< Capacity freed / shutdown requested.
  unsigned Active = 0;
  bool ShuttingDown = false;
  /// Set when the drain timeout expires: every in-flight request's
  /// IsCancelled turns true, so they wind down like disconnects.
  std::atomic<bool> DrainExpired{false};

  /// The --log sink: one compact JSON object per request, its own lock
  /// so a slow disk never blocks the accept loop.
  std::mutex LogMu;
  std::FILE *Log = nullptr;

  struct ConnSlot {
    std::thread T;
    std::atomic<bool> Done{false};
  };
  std::list<std::unique_ptr<ConnSlot>> Conns;
};

/// SIGTERM/SIGINT -> graceful drain. Handlers may run on any thread,
/// so everything here is async-signal-safe: set a flag, then
/// ::shutdown() the listening socket -- that wakes a blocked accept()
/// no matter which thread owns it. The accept loop translates the flag
/// into the same ShuttingDown path the wcs-control shutdown command
/// takes.
std::atomic<int> SignalListenFd{-1};
std::atomic<bool> SignalStop{false};

void onShutdownSignal(int) {
  SignalStop.store(true);
  int Fd = SignalListenFd.load();
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

/// Appends the request's JSON-lines log record (under LogMu; fflush so
/// a crash or kill -9 loses at most the line being written).
void logRequest(ServerState &S, const SweepRequest &Req,
                const SweepResponse &Resp,
                const Scheduler::RequestTelemetry &Tel) {
  if (!S.Log)
    return;
  Value V = Value::object();
  V.set("time", telemetry::secondsSince(S.Start));
  V.set("request", Resp.RequestHash);
  V.set("program", Req.programLabel());
  V.set("points",
        Resp.StoreHits + Resp.StoreMisses + Resp.InFlightHits);
  V.set("store_hits", Resp.StoreHits);
  V.set("store_misses", Resp.StoreMisses);
  V.set("inflight_hits", Resp.InFlightHits);
  V.set("queue_wait_seconds", Tel.QueueWaitSeconds);
  V.set("compute_seconds", Tel.ComputeSeconds);
  V.set("wall_seconds", Tel.WallSeconds);
  V.set("ok", Resp.Ok);
  if (!Resp.Error.empty())
    V.set("error", Resp.Error);
  std::string Line = V.dump(false);
  std::lock_guard<std::mutex> L(S.LogMu);
  std::fprintf(S.Log, "%s\n", Line.c_str());
  std::fflush(S.Log);
}

/// Serves one accepted connection on its own thread: one line in, the
/// progress stream and one response (or a control ack) out.
void serveConnection(int Fd, ServerState &S) {
  telemetry::Span ConnSpan("serve.connection");
  LineReader Reader(Fd);
  std::string Line, Err;
  if (!Reader.readLine(Line, &Err)) {
    if (!Err.empty())
      std::fprintf(stderr, "wcs-serve: %s\n", Err.c_str());
    return; // Client went away before sending anything.
  }

  Value V;
  std::string Schema;
  SweepResponse Resp;
  if (!json::parse(Line, V, &Err) ||
      !jsonfield::needString(V, "schema", Schema, &Err)) {
    Resp.Error = "malformed request: " + Err;
    sendLine(Fd, toJson(Resp).dump(false), nullptr);
    return;
  }

  if (Schema == ControlSchemaName) {
    std::string Cmd;
    jsonfield::needString(V, "cmd", Cmd, nullptr);
    Value Ack = Value::object();
    Ack.set("schema", ControlSchemaName);
    Ack.set("schema_version", ServeProtocolVersion);
    if (Cmd == "status") {
      // The status answer is its own versioned document, not a control
      // ack: clients validate it through fromJson like every other
      // wire document.
      Scheduler::Stats St = S.Sched->stats();
      StatusDoc D;
      D.RequestsServed = St.RequestsServed;
      D.PointsComputed = St.PointsComputed;
      D.StoreHits = St.StoreHits;
      D.InFlightHits = St.InFlightHits;
      D.CancelledJobs = St.CancelledJobs;
      D.ActiveRequests = St.ActiveRequests;
      D.QueuedJobs = St.QueuedJobs;
      D.StoreEntries = St.StoreEntries;
      D.DeadlineExpired = St.DeadlineExpired;
      D.ShedRequests = St.ShedRequests;
      D.QueuedPoints = St.QueuedPoints;
      {
        std::lock_guard<std::mutex> L(S.Mu);
        // This connection is one of the active ones.
        D.ActiveConnections = S.Active;
      }
      D.MaxConnections = S.MaxConnections;
      D.UptimeSeconds = telemetry::secondsSince(S.Start);
      sendLine(Fd, toJson(D).dump(false), nullptr);
      return;
    }
    bool Shutdown = Cmd == "shutdown";
    Ack.set("ok", Shutdown);
    sendLine(Fd, Ack.dump(false), nullptr);
    if (Shutdown) {
      {
        std::lock_guard<std::mutex> L(S.Mu);
        S.ShuttingDown = true;
      }
      S.Cv.notify_all();
      // Unblock the accept loop; a shut-down listener fails accept.
      ::shutdown(S.ListenFd, SHUT_RDWR);
    }
    return;
  }

  SweepRequest Req;
  if (!fromJson(V, Req, &Err)) {
    Resp.Error = Err;
    sendLine(Fd, toJson(Resp).dump(false), nullptr);
    return;
  }

  // A watcher thread blocks on the (otherwise idle) read side of the
  // socket: EOF there means the client is gone, which cancels the
  // request even while no progress line is due. The progress callback
  // doubles as a second disconnect detector -- a failed send (EPIPE)
  // also cancels.
  std::atomic<bool> Gone{false};
  std::thread Watch([Fd, &Gone] {
    char Buf[256];
    for (;;) {
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N > 0)
        continue; // Protocol violation (nothing follows the request
                  // line); ignore rather than misread it as an EOF.
      if (N < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
        continue; // EAGAIN: just the connection's SO_RCVTIMEO ticking
                  // on an idle-but-live socket, NOT a disconnect.
      break; // EOF or error: the peer is gone, or we are done with it.
    }
    Gone.store(true);
  });

  Scheduler::RequestTelemetry Tel;
  Resp = S.Sched->serve(
      Req,
      [Fd](const ProgressEvent &E) {
        return sendLine(Fd, toJson(E).dump(false), nullptr);
      },
      [&Gone, &S] { return Gone.load() || S.DrainExpired.load(); }, &Tel);
  // A request cut short by the drain timeout was cancelled by the
  // server, not the client; say so.
  if (!Resp.Ok && S.DrainExpired.load() &&
      Resp.Error == "cancelled: client disconnected")
    Resp.Error = "cancelled: server shutting down (drain timeout)";
  sendLine(Fd, toJson(Resp).dump(false), nullptr);
  // Wake the watcher (its recv returns 0 once the read side shuts) and
  // reap it before the fd closes.
  ::shutdown(Fd, SHUT_RDWR);
  Watch.join();

  logRequest(S, Req, Resp, Tel);
  std::fprintf(stderr,
               "wcs-serve: %s %s: %llu hits, %llu misses, %llu "
               "in-flight, store %llu entries\n",
               Req.programLabel().c_str(), Resp.Ok ? "ok" : "FAILED",
               static_cast<unsigned long long>(Resp.StoreHits),
               static_cast<unsigned long long>(Resp.StoreMisses),
               static_cast<unsigned long long>(Resp.InFlightHits),
               static_cast<unsigned long long>(Resp.StoreEntries));
}

/// Joins and forgets every finished connection thread. Called with
/// S.Mu held.
void reapLocked(ServerState &S) {
  for (auto It = S.Conns.begin(); It != S.Conns.end();) {
    if ((*It)->Done.load()) {
      (*It)->T.join();
      It = S.Conns.erase(It);
    } else {
      ++It;
    }
  }
}

} // namespace

bool wcs::runServer(const ServerOptions &Opts,
                    const std::function<void()> &OnReady,
                    std::string *Err) {
  ResultStore Store;
  if (!Store.open(Opts.StorePath, Err))
    return false;
  if (Store.recoveredBytes() > 0)
    std::fprintf(stderr,
                 "wcs-serve: recovered torn tail (%llu bytes dropped)\n",
                 static_cast<unsigned long long>(Store.recoveredBytes()));
  int Listen = listenUnix(Opts.SocketPath, Err);
  if (Listen < 0)
    return false;

  // From here on the store belongs to the scheduler: every lookup and
  // insert -- from any connection -- goes through its lock.
  Scheduler Sched(Store, Opts.Threads, Opts.MaxQueuedPoints);
  ServerState St;
  St.Sched = &Sched;
  St.MaxConnections = Opts.MaxConnections;
  St.ListenFd = Listen;
  St.Start = telemetry::now();
  if (!Opts.LogPath.empty()) {
    St.Log = std::fopen(Opts.LogPath.c_str(), "a");
    if (!St.Log) {
      if (Err)
        *Err = "cannot open log file " + Opts.LogPath;
      closeFd(Listen);
      ::unlink(Opts.SocketPath.c_str());
      return false;
    }
  }

  // Signal-driven shutdown takes the exact same drain path as the
  // wcs-control shutdown command. Installed only on request (the tool
  // asks; tests do not), and restored on return.
  struct sigaction OldTerm, OldInt;
  bool SignalsInstalled = false;
  if (Opts.HandleSignals) {
    SignalStop.store(false);
    SignalListenFd.store(Listen);
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onShutdownSignal;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = 0; // No SA_RESTART: a blocked accept() must wake.
    ::sigaction(SIGTERM, &SA, &OldTerm);
    ::sigaction(SIGINT, &SA, &OldInt);
    SignalsInstalled = true;
  }

  std::fprintf(stderr,
               "wcs-serve: listening on %s (%zu stored entries, %u "
               "workers, %u connections max)\n",
               Opts.SocketPath.c_str(), Store.numEntries(),
               Sched.threads(), Opts.MaxConnections);
  if (OnReady)
    OnReady();

  telemetry::setThreadName("accept");
  for (;;) {
    {
      std::unique_lock<std::mutex> L(St.Mu);
      // Timed wait, not wait(): a signal handler cannot safely notify
      // a condition variable, so SignalStop is polled while parked at
      // max capacity.
      while (!(St.ShuttingDown || SignalStop.load() ||
               St.MaxConnections == 0 || St.Active < St.MaxConnections))
        St.Cv.wait_for(L, std::chrono::milliseconds(100));
      reapLocked(St);
      if (SignalStop.load())
        St.ShuttingDown = true;
      if (St.ShuttingDown)
        break;
    }
    int Fd = ::accept(Listen, nullptr, nullptr);
    if (Fd < 0) {
      if (SignalStop.load()) {
        std::fprintf(stderr,
                     "wcs-serve: received shutdown signal, draining\n");
        std::lock_guard<std::mutex> L(St.Mu);
        St.ShuttingDown = true;
        break;
      }
      if (errno == EINTR)
        continue;
      std::lock_guard<std::mutex> L(St.Mu);
      if (St.ShuttingDown)
        break;
      if (Err)
        *Err = "accept failed";
      // Fall through to the drain below so in-flight requests finish.
      St.ShuttingDown = true;
      break;
    }
    setSocketTimeout(Fd, Opts.IoTimeoutSeconds, nullptr);
    std::lock_guard<std::mutex> L(St.Mu);
    if (St.ShuttingDown || SignalStop.load()) {
      closeFd(Fd);
      St.ShuttingDown = true;
      break;
    }
    ++St.Active;
    auto Slot = std::make_unique<ServerState::ConnSlot>();
    ServerState::ConnSlot *SP = Slot.get();
    St.Conns.push_back(std::move(Slot));
    SP->T = std::thread([Fd, SP, &St] {
      telemetry::setThreadName("conn-" + std::to_string(Fd));
      serveConnection(Fd, St);
      closeFd(Fd);
      {
        std::lock_guard<std::mutex> CL(St.Mu);
        --St.Active;
        SP->Done.store(true);
      }
      St.Cv.notify_all();
    });
  }

  // Drain: every connection thread finishes its request (the shutdown
  // ack'ed connection included) before the scheduler and store go away.
  // Under a drain timeout, requests still running past the budget are
  // cancelled (DrainExpired flows into their IsCancelled within one
  // scheduler poll tick), after which the joins below complete fast.
  telemetry::TimePoint DrainStart = telemetry::now();
  if (Opts.DrainTimeoutSeconds > 0) {
    std::unique_lock<std::mutex> L(St.Mu);
    telemetry::TimePoint Deadline =
        DrainStart + std::chrono::duration_cast<
                         telemetry::TimePoint::duration>(
                         std::chrono::duration<double>(
                             Opts.DrainTimeoutSeconds));
    auto AllDone = [&St] {
      for (const auto &C : St.Conns)
        if (!C->Done.load())
          return false;
      return true;
    };
    while (!AllDone() && telemetry::now() < Deadline)
      St.Cv.wait_for(L, std::chrono::milliseconds(50));
    if (!AllDone()) {
      St.DrainExpired.store(true);
      std::fprintf(stderr,
                   "wcs-serve: drain timeout (%.1fs) expired, "
                   "cancelling in-flight requests\n",
                   Opts.DrainTimeoutSeconds);
    }
  }
  for (;;) {
    std::unique_ptr<ServerState::ConnSlot> Slot;
    {
      std::lock_guard<std::mutex> L(St.Mu);
      if (St.Conns.empty())
        break;
      Slot = std::move(St.Conns.front());
      St.Conns.pop_front();
    }
    Slot->T.join();
  }
  telemetry::registry()
      .gauge("serve.drain_seconds")
      .set(telemetry::secondsSince(DrainStart));
  if (SignalsInstalled) {
    ::sigaction(SIGTERM, &OldTerm, nullptr);
    ::sigaction(SIGINT, &OldInt, nullptr);
    SignalListenFd.store(-1);
  }
  closeFd(Listen);
  ::unlink(Opts.SocketPath.c_str());
  if (St.Log)
    std::fclose(St.Log);
  Scheduler::Stats Final = Sched.stats();
  std::fprintf(stderr,
               "wcs-serve: shut down (%llu requests: %llu store hits, "
               "%llu in-flight hits, %llu points computed, %llu jobs "
               "cancelled)\n",
               static_cast<unsigned long long>(Final.RequestsServed),
               static_cast<unsigned long long>(Final.StoreHits),
               static_cast<unsigned long long>(Final.InFlightHits),
               static_cast<unsigned long long>(Final.PointsComputed),
               static_cast<unsigned long long>(Final.CancelledJobs));
  return true;
}
