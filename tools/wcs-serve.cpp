//===- tools/wcs-serve.cpp - Sweep-as-a-service daemon --------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// A long-running sweep server with a persistent content-addressed result
// store: every (program, options, hierarchy-config) point a request
// expands to is keyed by canonical content, so overlapping grids -- from
// one client or many, across daemon restarts -- pay for each point once.
//
//   wcs-serve --socket /tmp/wcs.sock --store /var/lib/wcs/store.jsonl
//   wcs-serve --client --socket /tmp/wcs.sock --request sweep.json
//   wcs-serve --client --socket /tmp/wcs.sock --status
//   wcs-serve --client --socket /tmp/wcs.sock --shutdown
//   wcs-serve --compact --store /var/lib/wcs/store.jsonl --max-entries 10000
//
// Request documents come from `wcs-sim --sweep ... --emit-request FILE`
// (or any writer of the wcs-request v1 schema). Stdout is machine-clean
// in every mode: the client prints exactly one wcs-response document
// there and nothing else; the daemon and --compact print nothing to
// stdout at all. All diagnostics and progress go to stderr.
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Server.h"
#include "wcs/support/FaultInjection.h"
#include "wcs/support/StringUtil.h"
#include "wcs/support/Telemetry.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace wcs;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: wcs-serve [options]\n"
      "daemon (default mode):\n"
      "  --socket PATH         Unix-domain socket to listen on (required)\n"
      "  --store PATH          persistent result store, a JSON-lines log\n"
      "                        (default: in-memory only)\n"
      "  --jobs N              scheduler worker threads shared by all\n"
      "                        connections (default 0 = all cores)\n"
      "  --max-connections N   connections served at once; further clients\n"
      "                        wait in the listen backlog (default 8,\n"
      "                        0 = unlimited)\n"
      "  --io-timeout S        disconnect a client that stalls a socket\n"
      "                        read/write for S seconds (default 30,\n"
      "                        0 = never)\n"
      "  --drain-timeout S     on shutdown (SIGTERM/SIGINT/--shutdown),\n"
      "                        cancel in-flight requests still running\n"
      "                        after S seconds (default 0 = wait)\n"
      "  --max-queued-points N shed requests that would push the compute\n"
      "                        queue past N points; they get an\n"
      "                        'overloaded' response with a retry hint\n"
      "                        (default 0 = admit everything)\n"
      "  --log FILE            append one JSON line per served request\n"
      "                        (hash, point counts, hit/miss split, queue\n"
      "                        wait, compute time, outcome)\n"
      "  --trace-json FILE     record spans while serving and write a\n"
      "                        Chrome trace-event file on shutdown\n"
      "  --metrics FILE        write a wcs-metrics v1 document (counters,\n"
      "                        histograms, span aggregates) on shutdown\n"
      "client mode:\n"
      "  --client              submit a request instead of serving\n"
      "  --request FILE        wcs-request document to submit (from\n"
      "                        wcs-sim --emit-request); the response\n"
      "                        document is printed to stdout\n"
      "  --out FILE            also write the response document to FILE\n"
      "  --status              print the daemon's status counters to\n"
      "                        stdout instead\n"
      "  --shutdown            ask the daemon to exit instead\n"
      "  --retries N           retry a failed connect or an 'overloaded'\n"
      "                        response up to N times with exponential\n"
      "                        backoff + jitter (default 0)\n"
      "  --retry-base-ms N     first-retry backoff in milliseconds;\n"
      "                        doubles per attempt, capped at 5s\n"
      "                        (default 100)\n"
      "store maintenance:\n"
      "  --compact             rewrite the --store log in place: one line\n"
      "                        per live key, oldest first\n"
      "  --max-entries N       with --compact: evict oldest-inserted\n"
      "                        entries beyond N (default 0 = keep all)\n"
      "fault injection (testing): set WCS_FAULT=point:prob,... (points:\n"
      "store.write, socket.send, socket.recv, scheduler.job) and\n"
      "optionally WCS_FAULT_SEED=N to make the named operations fail\n"
      "with the given probabilities, deterministically per seed.\n");
}

int runClient(const std::string &SocketPath, const std::string &RequestPath,
              const std::string &OutPath, bool Shutdown, bool Status,
              const ClientRetryPolicy &Retry) {
  std::string Err;
  if (Shutdown) {
    if (!requestShutdown(SocketPath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "wcs-serve: daemon acknowledged shutdown\n");
    return 0;
  }
  if (Status) {
    StatusDoc D;
    if (!requestStatus(SocketPath, D, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    // Same stdout contract as a request: exactly one document, pretty.
    std::printf("%s\n", toJson(D).dump(true).c_str());
    return 0;
  }

  SweepRequest Req;
  if (!readRequestFile(RequestPath, Req, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  SweepResponse Resp;
  bool Sent = submitSweepRequest(
      SocketPath, Req, Resp,
      [](const ProgressEvent &E) {
        std::fprintf(stderr, "point %zu/%zu  %-14s %s  %s\n", E.Point + 1,
                     E.Total, sweepMethodName(E.Method),
                     E.Ok ? "ok" : "FAILED", E.Cache.c_str());
      },
      Retry, &Err);
  if (!Sent) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  // The response document is the ONLY thing on stdout, pretty-printed
  // like every other wcs document file.
  std::string Doc = toJson(Resp).dump(true);
  std::printf("%s\n", Doc.c_str());
  if (!OutPath.empty() && !json::writeFile(OutPath, toJson(Resp), &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!Resp.Ok) {
    std::fprintf(stderr, "error: daemon refused request: %s\n",
                 Resp.Error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "served   %zu points: %llu from store, %llu simulated "
               "(store now %llu entries)\n",
               Resp.Sweep.Points.size(),
               static_cast<unsigned long long>(Resp.StoreHits),
               static_cast<unsigned long long>(Resp.StoreMisses),
               static_cast<unsigned long long>(Resp.StoreEntries));
  return 0;
}

int runCompact(const std::string &StorePath, uint64_t MaxEntries) {
  ResultStore Store;
  std::string Err;
  if (!Store.open(StorePath, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  size_t Before = Store.numEntries();
  if (Store.recoveredBytes() > 0)
    std::fprintf(stderr,
                 "wcs-serve: recovered torn tail (%llu bytes dropped)\n",
                 static_cast<unsigned long long>(Store.recoveredBytes()));
  if (!Store.compact(static_cast<size_t>(MaxEntries), &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "wcs-serve: compacted %s: %zu -> %zu entries\n",
               StorePath.c_str(), Before, Store.numEntries());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath, StorePath, RequestPath, OutPath;
  std::string LogPath, TracePath, MetricsPath;
  bool Client = false, Shutdown = false, Status = false, Compact = false;
  unsigned Jobs = 0, MaxConnections = 8, Retries = 0, RetryBaseMs = 100;
  uint64_t MaxEntries = 0, MaxQueuedPoints = 0;
  double IoTimeout = 30.0, DrainTimeout = 0.0;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    // Seconds flags: non-negative decimal, whole token.
    auto NextSeconds = [&](double &Out) {
      const char *N = Next();
      char *End = nullptr;
      double V = std::strtod(N, &End);
      if (End == N || *End != '\0' || !(V >= 0)) {
        std::fprintf(stderr,
                     "error: %s expects a non-negative number of seconds, "
                     "got '%s'\n",
                     A.c_str(), N);
        std::exit(2);
      }
      Out = V;
    };
    if (A == "--socket") {
      SocketPath = Next();
    } else if (A == "--store") {
      StorePath = Next();
    } else if (A == "--request") {
      RequestPath = Next();
    } else if (A == "--out") {
      OutPath = Next();
    } else if (A == "--log") {
      LogPath = Next();
    } else if (A == "--trace-json") {
      TracePath = Next();
    } else if (A == "--metrics") {
      MetricsPath = Next();
    } else if (A == "--client") {
      Client = true;
    } else if (A == "--shutdown") {
      Shutdown = true;
      Client = true;
    } else if (A == "--status") {
      Status = true;
      Client = true;
    } else if (A == "--compact") {
      Compact = true;
    } else if (A == "--jobs") {
      const char *N = Next();
      if (!parseJobCount(N, Jobs)) {
        std::fprintf(stderr,
                     "error: --jobs expects a non-negative number, got "
                     "'%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--max-connections") {
      const char *N = Next();
      if (!parseJobCount(N, MaxConnections)) {
        std::fprintf(stderr,
                     "error: --max-connections expects a non-negative "
                     "number, got '%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--io-timeout") {
      NextSeconds(IoTimeout);
    } else if (A == "--drain-timeout") {
      NextSeconds(DrainTimeout);
    } else if (A == "--max-queued-points") {
      const char *N = Next();
      if (!parseUInt64(N, MaxQueuedPoints, UINT64_MAX)) {
        std::fprintf(stderr,
                     "error: --max-queued-points expects a non-negative "
                     "number, got '%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--retries") {
      const char *N = Next();
      if (!parseJobCount(N, Retries)) {
        std::fprintf(stderr,
                     "error: --retries expects a non-negative number, got "
                     "'%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--retry-base-ms") {
      const char *N = Next();
      if (!parseJobCount(N, RetryBaseMs)) {
        std::fprintf(stderr,
                     "error: --retry-base-ms expects a non-negative number, "
                     "got '%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--max-entries") {
      const char *N = Next();
      if (!parseUInt64(N, MaxEntries, UINT64_MAX)) {
        std::fprintf(stderr,
                     "error: --max-entries expects a non-negative number, "
                     "got '%s'\n",
                     N);
        return 2;
      }
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  // Fault injection arms from the environment (WCS_FAULT), never from a
  // flag: the CI harness can point it at exactly one process in a
  // pipeline without every caller growing pass-through options.
  std::string FaultErr;
  if (!faultinject::armFromEnv(&FaultErr)) {
    std::fprintf(stderr, "error: %s\n", FaultErr.c_str());
    return 2;
  }
  if (faultinject::armed())
    std::fprintf(stderr, "wcs-serve: fault injection armed: %s\n",
                 faultinject::armedSpec().c_str());

  if (Compact) {
    if (Client || StorePath.empty()) {
      std::fprintf(stderr,
                   "error: --compact takes --store (and no --client)\n");
      return 2;
    }
    return runCompact(StorePath, MaxEntries);
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    usage();
    return 2;
  }
  if (Client) {
    if (!Shutdown && !Status && RequestPath.empty()) {
      std::fprintf(stderr, "error: --client needs --request FILE, "
                           "--status, or --shutdown\n");
      return 2;
    }
    ClientRetryPolicy Retry;
    Retry.Retries = Retries;
    Retry.BaseBackoffSeconds = RetryBaseMs / 1000.0;
    Retry.IoTimeoutSeconds = IoTimeout;
    return runClient(SocketPath, RequestPath, OutPath, Shutdown, Status,
                     Retry);
  }

  ServerOptions SO;
  SO.SocketPath = SocketPath;
  SO.StorePath = StorePath;
  SO.Threads = Jobs;
  SO.MaxConnections = MaxConnections;
  SO.LogPath = LogPath;
  SO.IoTimeoutSeconds = IoTimeout;
  SO.DrainTimeoutSeconds = DrainTimeout;
  SO.MaxQueuedPoints = MaxQueuedPoints;
  SO.HandleSignals = true;
  if (!TracePath.empty())
    telemetry::enableTracing();
  else if (!MetricsPath.empty())
    telemetry::enableSpanAggregation();
  std::string Err;
  if (!runServer(SO, nullptr, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!TracePath.empty()) {
    if (!telemetry::writeTraceFile(TracePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "wcs-serve: trace written to %s\n",
                 TracePath.c_str());
  }
  if (!MetricsPath.empty()) {
    MetricsDoc MD = telemetry::registry().snapshot("wcs-serve");
    if (!writeMetricsFile(MetricsPath, MD, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "wcs-serve: metrics written to %s\n",
                 MetricsPath.c_str());
  }
  return 0;
}
