//===- frontend/Lowering.cpp - Declarations and statements ----------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Declaration and statement parsing, lowered on the fly into the
// ScopBuilder: loops become loop nodes (with descending and strided
// source loops normalized to stride +1 via an affine change of
// iterators), guards become domain constraints, and assignments become
// the ordered read/write access nodes they perform.
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Parser.h"

#include "wcs/support/MathUtil.h"

#include <cassert>

using namespace wcs;

bool Parser::parseTopLevel() {
  while (!Tok.is(Token::Kind::End)) {
    if (Tok.is(Token::Kind::Error))
      return fail(Tok.Loc, Tok.Text);
    if (Tok.is(Token::Kind::Ident)) {
      unsigned ElemBytes = 0;
      if (Tok.Text == "param") {
        bump();
        if (!parseParamDecl())
          return false;
        continue;
      }
      if (isTypeKeyword(Tok.Text, ElemBytes)) {
        bump();
        if (!parseVarDecl(ElemBytes))
          return false;
        continue;
      }
    }
    SeenStmt = true;
    if (!parseStmt())
      return false;
  }
  return true;
}

bool Parser::parseParamDecl() {
  std::string Name;
  SrcLoc Loc = Tok.Loc;
  if (!expectIdent(Name, "after 'param'"))
    return false;
  if (lookup(Name))
    return fail(Loc, "redeclaration of '" + Name + "'");
  std::optional<int64_t> Default;
  if (Tok.is(Token::Kind::Assign)) {
    bump();
    Default = parseConstant("as the parameter default");
    if (!Default)
      return false;
  }
  if (!expect(Token::Kind::Semi, "after the parameter declaration"))
    return false;
  Symbol S;
  S.K = Symbol::Kind::Param;
  auto It = Params.find(Name);
  if (It != Params.end())
    S.ParamValue = It->second;
  else if (Default)
    S.ParamValue = *Default;
  else
    return fail(Loc, "parameter '" + Name +
                         "' has no binding and no default value");
  Syms[Name] = S;
  return true;
}

bool Parser::parseVarDecl(unsigned ElemBytes) {
  for (;;) {
    std::string Name;
    SrcLoc Loc = Tok.Loc;
    if (!expectIdent(Name, "in a declaration"))
      return false;
    if (lookup(Name))
      return fail(Loc, "redeclaration of '" + Name + "'");
    std::vector<int64_t> Dims;
    while (Tok.is(Token::Kind::LBracket)) {
      bump();
      std::optional<int64_t> D = parseConstant("as an array extent");
      if (!D)
        return false;
      if (*D <= 0)
        return fail(Loc, "array '" + Name + "' has non-positive extent");
      Dims.push_back(*D);
      if (!expect(Token::Kind::RBracket, "to close the array extent"))
        return false;
    }
    Symbol S;
    if (Dims.empty()) {
      S.K = Symbol::Kind::Scalar;
      S.ArrayId = Builder.addScalar(Name, ElemBytes);
    } else {
      S.K = Symbol::Kind::Array;
      S.NumDims = static_cast<unsigned>(Dims.size());
      S.ArrayId = Builder.addArray(Name, ElemBytes, std::move(Dims));
    }
    Syms[Name] = S;
    if (Tok.is(Token::Kind::Comma)) {
      bump();
      continue;
    }
    return expect(Token::Kind::Semi, "after the declaration");
  }
}

bool Parser::parseStmt() {
  if (Tok.is(Token::Kind::Error))
    return fail(Tok.Loc, Tok.Text);
  if (Tok.is(Token::Kind::LBrace))
    return parseBlock();
  if (Tok.is(Token::Kind::Ident)) {
    if (Tok.Text == "for")
      return parseFor();
    if (Tok.Text == "if")
      return parseIf();
    if (Tok.Text == "else")
      return fail(Tok.Loc, "'else' is not supported; use a second 'if' "
                           "with the negated condition");
    return parseAssign();
  }
  return fail(Tok.Loc, std::string("expected a statement, found ") +
                           tokenKindName(Tok.K));
}

bool Parser::parseBlock() {
  if (!expect(Token::Kind::LBrace, "to open a block"))
    return false;
  while (!Tok.is(Token::Kind::RBrace)) {
    if (Tok.is(Token::Kind::End))
      return fail(Tok.Loc, "unexpected end of input inside a block");
    if (!parseStmt())
      return false;
  }
  bump(); // consume '}'
  return true;
}

bool Parser::parseFor() {
  SrcLoc ForLoc = Tok.Loc;
  bump(); // 'for'
  if (!expect(Token::Kind::LParen, "after 'for'"))
    return false;

  // Optional induction-variable type.
  if (Tok.is(Token::Kind::Ident)) {
    unsigned Ignored;
    if (isTypeKeyword(Tok.Text, Ignored))
      bump();
  }
  std::string IterName;
  if (!expectIdent(IterName, "as the loop iterator"))
    return false;
  const Symbol *Existing = lookup(IterName);
  if (Existing && (Existing->K == Symbol::Kind::Array ||
                   Existing->K == Symbol::Kind::Scalar ||
                   Existing->K == Symbol::Kind::Param))
    return fail(ForLoc, "loop iterator '" + IterName +
                            "' collides with a declared variable");
  if (!expect(Token::Kind::Assign, "in the loop initialization"))
    return false;
  std::optional<AffineExpr> Init = parseAffine();
  if (!Init)
    return false;
  if (!expect(Token::Kind::Semi, "after the loop initialization"))
    return false;

  std::string CondName;
  if (!expectIdent(CondName, "in the loop condition"))
    return false;
  if (CondName != IterName)
    return fail(ForLoc, "loop condition must test the iterator '" +
                            IterName + "'");
  Token::Kind Rel = Tok.K;
  if (Rel != Token::Kind::Lt && Rel != Token::Kind::Le &&
      Rel != Token::Kind::Gt && Rel != Token::Kind::Ge)
    return fail(Tok.Loc, "loop condition must be one of < <= > >=");
  bump();
  std::optional<AffineExpr> Bound = parseAffine();
  if (!Bound)
    return false;
  if (!expect(Token::Kind::Semi, "after the loop condition"))
    return false;

  // Increment: i++ / ++i / i-- / --i / i += c / i -= c.
  int64_t Step = 0;
  if (Tok.is(Token::Kind::PlusPlus) || Tok.is(Token::Kind::MinusMinus)) {
    Step = Tok.is(Token::Kind::PlusPlus) ? 1 : -1;
    bump();
    std::string Name;
    if (!expectIdent(Name, "after the prefix increment"))
      return false;
    if (Name != IterName)
      return fail(ForLoc, "loop increment must update the iterator");
  } else {
    std::string Name;
    if (!expectIdent(Name, "in the loop increment"))
      return false;
    if (Name != IterName)
      return fail(ForLoc, "loop increment must update the iterator");
    if (Tok.is(Token::Kind::PlusPlus)) {
      Step = 1;
      bump();
    } else if (Tok.is(Token::Kind::MinusMinus)) {
      Step = -1;
      bump();
    } else if (Tok.is(Token::Kind::PlusAssign) ||
               Tok.is(Token::Kind::MinusAssign)) {
      bool Neg = Tok.is(Token::Kind::MinusAssign);
      bump();
      std::optional<int64_t> C = parseConstant("as the loop step");
      if (!C)
        return false;
      if (*C <= 0)
        return fail(ForLoc, "loop step must be positive");
      Step = Neg ? -*C : *C;
    } else {
      return fail(Tok.Loc, "expected ++, --, += or -= in the loop "
                           "increment");
    }
  }
  if (!expect(Token::Kind::RParen, "to close the loop header"))
    return false;

  // Canonicalize to a stride +1 loop over [Lo, Hi] with the source
  // iterator expressed as an affine function of the canonical one.
  unsigned D = Builder.depth();
  AffineExpr Lo(D), Hi(D);
  AffineExpr IterExpr(D + 1); // Source iterator over D+1 dims.
  AffineExpr Canon = AffineExpr::dim(D + 1, D);
  if (Step == 1) {
    if (Rel != Token::Kind::Lt && Rel != Token::Kind::Le)
      return fail(ForLoc, "ascending loop requires '<' or '<='");
    Lo = *Init;
    Hi = Rel == Token::Kind::Lt ? *Bound + AffineExpr::constant(D, -1)
                                : *Bound;
    IterExpr = Canon;
  } else if (Step == -1) {
    if (Rel != Token::Kind::Gt && Rel != Token::Kind::Ge)
      return fail(ForLoc, "descending loop requires '>' or '>='");
    // i runs Init, Init-1, ..., LoI; canonical t = Init - i in [0, Init-LoI].
    AffineExpr LoI = Rel == Token::Kind::Gt
                         ? *Bound + AffineExpr::constant(D, 1)
                         : *Bound;
    Lo = AffineExpr::constant(D, 0);
    Hi = *Init - LoI;
    IterExpr = Init->extendedTo(D + 1) - Canon;
  } else {
    // |Step| > 1: require constant bounds so the trip count is affine.
    if (!Init->isConstant() || !Bound->isConstant())
      return fail(ForLoc, "loops with step other than +-1 require "
                          "constant bounds");
    int64_t I0 = Init->constantTerm(), B0 = Bound->constantTerm();
    int64_t Trip; // Number of iterations - 1 (inclusive Hi).
    if (Step > 0) {
      if (Rel != Token::Kind::Lt && Rel != Token::Kind::Le)
        return fail(ForLoc, "ascending loop requires '<' or '<='");
      int64_t HiI = Rel == Token::Kind::Lt ? B0 - 1 : B0;
      Trip = HiI < I0 ? -1 : floorDiv(HiI - I0, Step);
    } else {
      if (Rel != Token::Kind::Gt && Rel != Token::Kind::Ge)
        return fail(ForLoc, "descending loop requires '>' or '>='");
      int64_t LoI = Rel == Token::Kind::Gt ? B0 + 1 : B0;
      Trip = I0 < LoI ? -1 : floorDiv(I0 - LoI, -Step);
    }
    Lo = AffineExpr::constant(D, 0);
    Hi = AffineExpr::constant(D, Trip);
    IterExpr = Canon * Step + AffineExpr::constant(D + 1, I0);
  }

  Builder.beginLoop(IterName, std::move(Lo), std::move(Hi));

  // Bind (possibly shadowing) the iterator symbol.
  std::optional<Symbol> Shadowed;
  if (const Symbol *Old = lookup(IterName))
    Shadowed = *Old;
  Symbol IterSym;
  IterSym.K = Symbol::Kind::Iterator;
  IterSym.IterExpr = IterExpr;
  Syms[IterName] = IterSym;

  bool BodyOk = parseStmt();

  if (Shadowed)
    Syms[IterName] = *Shadowed;
  else
    Syms.erase(IterName);
  Builder.endLoop();
  return BodyOk;
}

bool Parser::parseIf() {
  bump(); // 'if'
  if (!expect(Token::Kind::LParen, "after 'if'"))
    return false;
  std::vector<Constraint> Guards;
  if (!parseCondition(Guards))
    return false;
  if (!expect(Token::Kind::RParen, "to close the condition"))
    return false;
  for (const Constraint &C : Guards)
    Builder.beginGuard(C);
  bool BodyOk = parseStmt();
  for (size_t I = 0; I < Guards.size(); ++I)
    Builder.endGuard();
  if (BodyOk && Tok.is(Token::Kind::Ident) && Tok.Text == "else")
    return fail(Tok.Loc, "'else' is not supported; use a second 'if' with "
                         "the negated condition");
  return BodyOk;
}

bool Parser::parseAssign() {
  Symbol LHS;
  std::vector<AffineExpr> Subs;
  SrcLoc Loc;
  if (!parseLValue(LHS, Subs, Loc))
    return false;

  bool Compound;
  switch (Tok.K) {
  case Token::Kind::Assign:
    Compound = false;
    break;
  case Token::Kind::PlusAssign:
  case Token::Kind::MinusAssign:
  case Token::Kind::StarAssign:
  case Token::Kind::SlashAssign:
    Compound = true;
    break;
  default:
    return fail(Tok.Loc,
                std::string("expected an assignment operator, found ") +
                    tokenKindName(Tok.K));
  }
  bump();

  // `x op= e` reads x first, then the right-hand side, then writes x
  // (matching the access order pet derives for the desugared form).
  if (Compound)
    Builder.access(LHS.ArrayId, AccessKind::Read, Subs);
  if (!parseValueExpr())
    return false;
  if (!expect(Token::Kind::Semi, "after the assignment"))
    return false;
  Builder.access(LHS.ArrayId, AccessKind::Write, std::move(Subs));
  return true;
}
