//===- wcs/serve/Server.h - The wcs-serve daemon ----------------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving core behind tools/wcs-serve: serveSweepRequest() answers
/// one wcs-request against a ResultStore -- store hits return their
/// stored SweepPoint verbatim under method "store" provenance, misses
/// are sharded through the existing runSweep machinery (which itself
/// partitions them across the stack-distance / filtered-stream /
/// simulated fast paths) and the fresh results are inserted back -- and
/// runServer() wraps it in the accept loop speaking serve/Protocol.
/// serveSweepRequest is the whole semantic surface; the tests drive it
/// directly and through the socket, and both must agree bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SERVE_SERVER_H
#define WCS_SERVE_SERVER_H

#include "wcs/serve/Protocol.h"
#include "wcs/serve/ResultStore.h"

#include <functional>
#include <string>

namespace wcs {

/// Serves one request: prepare, look every expanded point up in
/// \p Store, run the misses through runSweep with \p Threads workers,
/// insert the fresh Ok points, and package everything as a
/// wcs-response. Store hits keep their stored counters bit-identical
/// and are re-labeled method "store"; failed points are never stored.
/// \p OnProgress (may be null) fires once per point in input order.
/// Malformed requests come back as Ok=false responses, never as a
/// transport error.
SweepResponse
serveSweepRequest(const SweepRequest &Req, ResultStore &Store,
                  unsigned Threads,
                  const std::function<void(const ProgressEvent &)>
                      &OnProgress);

struct ServerOptions {
  std::string SocketPath;
  std::string StorePath; ///< Empty = in-memory store.
  unsigned Threads = 0;  ///< Workers per request (0 = all cores).
};

/// The daemon: open the store, listen, serve one connection at a time
/// (each request already fans out across the BatchRunner pool, so
/// serialized connections keep the machine's parallelism budget in one
/// place), exit cleanly on a wcs-control shutdown. Diagnostics on
/// stderr only; nothing is ever written to stdout. \p OnReady (may be
/// null) fires once the socket is accepting -- tests use it instead of
/// polling. Returns false with \p Err on setup failure.
bool runServer(const ServerOptions &Opts,
               const std::function<void()> &OnReady, std::string *Err);

} // namespace wcs

#endif // WCS_SERVE_SERVER_H
