//===- bench/fig08_vs_haystack.cpp - Paper Fig. 8 -------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates Fig. 8: warping simulation against HayStack on the
// fully-associative LRU version of the test-system L1 (the only cache
// model HayStack supports).
//
// Substitution (DESIGN.md): HayStack itself is replaced by an exact
// stack-distance profiler that computes the identical quantity (per-
// access reuse distances -> fully-associative LRU misses). Miss counts
// are therefore comparable one-to-one and are verified equal against
// warping simulation. Runtime comparisons carry a caveat: the substitute
// is trace-based (runtime proportional to the access count), whereas the
// real HayStack is analytical and largely problem-size-independent, so
// the paper's "HayStack wins on non-warping kernels" does not transfer;
// the complementary shape "warping wins on stencils" does.
//
// Environment: WCS_SIZE (default large).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/WarpingSimulator.h"
#include "wcs/trace/StackDistance.h"

#include <cstdio>

using namespace wcs;
using namespace wcs::bench;

int main() {
  ProblemSize Size = sizeFromEnv(ProblemSize::Large);
  CacheConfig FA = fullyAssociativeTwin(CacheConfig::scaledL1());
  HierarchyConfig H = HierarchyConfig::singleLevel(FA);
  std::printf("== Figure 8: warping vs HayStack-substitute, "
              "fully-associative LRU L1 (%s), size %s ==\n\n",
              FA.str().c_str(), problemSizeName(Size));
  std::printf("%-15s %12s %12s %12s %12s %10s\n", "kernel", "accesses",
              "misses", "haystack[s]", "warp[s]", "speedup");
  GeoMean Mean;
  for (const KernelInfo &K : polybenchKernels()) {
    ScopProgram P = mustBuild(K, Size);

    double ProfSecs = 0.0;
    StackDistanceProfiler Prof =
        profileProgram(P, FA.BlockBytes, /*IncludeScalars=*/false,
                       &ProfSecs);
    uint64_t ModelMisses = Prof.missesForCache(FA);

    WarpingSimulator Warp(P, H);
    SimStats W = Warp.run();
    if (W.Level[0].Misses != ModelMisses) {
      std::fprintf(stderr,
                   "fatal: %s: warping (%llu) and the stack-distance "
                   "model (%llu) disagree on FA-LRU misses\n",
                   K.Name,
                   static_cast<unsigned long long>(W.Level[0].Misses),
                   static_cast<unsigned long long>(ModelMisses));
      return 1;
    }
    double Speedup = ProfSecs / W.Seconds;
    Mean.add(Speedup);
    std::printf("%-15s %12llu %12llu %12.3f %12.3f %9.2fx\n", K.Name,
                static_cast<unsigned long long>(W.totalAccesses()),
                static_cast<unsigned long long>(ModelMisses), ProfSecs,
                W.Seconds, Speedup);
  }
  std::printf("\ngeomean speedup vs the trace-based substitute: %.2fx\n"
              "all miss counts verified equal (both models are exact for "
              "fully-associative LRU)\n",
              Mean.value());
  return 0;
}
