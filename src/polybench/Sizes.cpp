//===- polybench/Sizes.cpp - Problem-size handling -------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The five problem-size classes mirror PolyBench's MINI .. EXTRALARGE but
// are scaled down (roughly 1/5 in linear dimension at LARGE) so that
// non-warping baselines finish in seconds on a laptop. The paper's L/XL
// experiments correspond to our Large/ExtraLarge; cache sizes are scaled
// alongside in the benchmark configurations (EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"

#include "wcs/support/StringUtil.h"

#include <cassert>

using namespace wcs;

const char *wcs::problemSizeName(ProblemSize S) {
  switch (S) {
  case ProblemSize::Mini:
    return "MINI";
  case ProblemSize::Small:
    return "SMALL";
  case ProblemSize::Medium:
    return "MEDIUM";
  case ProblemSize::Large:
    return "LARGE";
  case ProblemSize::ExtraLarge:
    return "EXTRALARGE";
  }
  return "?";
}

bool wcs::parseProblemSize(const std::string &Name, ProblemSize &Out) {
  std::string L = toLowerAscii(Name);
  if (L == "xlarge") {
    Out = ProblemSize::ExtraLarge;
    return true;
  }
  for (unsigned I = 0; I < NumProblemSizes; ++I) {
    ProblemSize S = static_cast<ProblemSize>(I);
    if (toLowerAscii(problemSizeName(S)) == L) {
      Out = S;
      return true;
    }
  }
  return false;
}

std::map<std::string, int64_t> wcs::paramBinding(const KernelInfo &K,
                                                 ProblemSize S) {
  const std::vector<int64_t> &Vals =
      K.SizeValues[static_cast<unsigned>(S)];
  assert(Vals.size() == K.ParamNames.size() &&
         "size table does not match the parameter list");
  std::map<std::string, int64_t> Binding;
  for (size_t I = 0; I < Vals.size(); ++I)
    Binding[K.ParamNames[I]] = Vals[I];
  return Binding;
}
