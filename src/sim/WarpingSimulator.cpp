//===- sim/WarpingSimulator.cpp -------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/sim/WarpingSimulator.h"

#include "wcs/support/MathUtil.h"
#include "wcs/support/Telemetry.h"

#include <cassert>
#include <unordered_map>

using namespace wcs;

namespace {

/// Counter snapshot for warp accounting.
struct CounterState {
  uint64_t L1Acc, L1Miss, L2Acc, L2Miss;

  static CounterState capture(const SimStats &S) {
    return CounterState{S.Level[0].Accesses, S.Level[0].Misses,
                        S.Level[1].Accesses, S.Level[1].Misses};
  }
};

/// One stored state with its snapshot slot in the activation's ring.
struct StoredEntry {
  int64_t X0;
  CounterState Counters;
  unsigned Slot;      ///< Ring slot of the snapshot.
  uint32_t Generation; ///< Must match the slot's generation to be valid.
};

struct Bucket {
  unsigned SeenWithoutSnapshot = 0;
  std::vector<StoredEntry> Entries;
};

} // namespace

/// Pooled per-activation scratch: the state-key map plus reusable
/// snapshot storage (copy-assignment into an existing SymbolicHierarchy
/// reuses its buffers, so steady-state activations allocate nothing).
struct WarpingSimulator::Activation {
  std::unordered_map<uint64_t, Bucket> Map;
  std::vector<SymbolicHierarchy> Snapshots; ///< Ring storage.
  /// Depth-histogram copy per ring slot (depth-profiling runs only;
  /// copy-assignment reuses capacity like the snapshots themselves).
  std::vector<std::vector<uint64_t>> SnapshotHists;
  std::vector<uint32_t> SlotGen;            ///< Generation per slot.
  unsigned NextSlot = 0;
  uint64_t StoresThisActivation = 0;
  int64_t LastStoreX = INT64_MIN / 4;

  void reset() {
    Map.clear();
    NextSlot = 0;
    StoresThisActivation = 0;
    LastStoreX = INT64_MIN / 4;
    // Generations persist across activations; entries die with the map.
  }

  bool valid(const StoredEntry &E) const {
    return E.Slot < SlotGen.size() && SlotGen[E.Slot] == E.Generation;
  }

  /// Stores into the ring, overwriting (and thereby invalidating) the
  /// oldest slot once the ring is full.
  StoredEntry store(const SymbolicHierarchy &State, unsigned RingSize,
                    int64_t X, const CounterState &Counters,
                    const std::vector<uint64_t> *Hist) {
    unsigned Slot = NextSlot;
    NextSlot = (NextSlot + 1) % RingSize;
    if (Slot < Snapshots.size()) {
      Snapshots[Slot] = State;
    } else {
      Snapshots.resize(Slot + 1, State);
      SlotGen.resize(Slot + 1, 0);
    }
    if (Hist) {
      if (SnapshotHists.size() <= Slot)
        SnapshotHists.resize(Slot + 1);
      SnapshotHists[Slot] = *Hist;
    }
    ++SlotGen[Slot];
    ++StoresThisActivation;
    LastStoreX = X;
    return StoredEntry{X, Counters, Slot, SlotGen[Slot]};
  }
};

WarpingSimulator::~WarpingSimulator() = default;

WarpingSimulator::Activation &
WarpingSimulator::activationAtDepth(unsigned Depth) {
  while (Pools.size() <= Depth)
    Pools.push_back(std::make_unique<Activation>());
  Pools[Depth]->reset();
  return *Pools[Depth];
}

WarpingSimulator::WarpingSimulator(const ScopProgram &Program,
                                   const HierarchyConfig &CacheCfg,
                                   SimOptions Options)
    : Program(Program), CacheCfg(CacheCfg), Cache(CacheCfg),
      Engine(Program, CacheCfg, Options), Options(Options),
      BlockShift(log2Exact(CacheCfg.blockBytes())),
      LoopFailures(Program.loops().size(), 0),
      LoopDisabled(Program.loops().size(), 0),
      ProbeCost(Program.loops().size(), 0),
      ProbeGain(Program.loops().size(), 0),
      GuardedActivations(Program.loops().size(), 0),
      DeltaUnit(Program.loops().size(), -1) {
  Stats.NumLevels = CacheCfg.numLevels();
  for (const CacheConfig &C : CacheCfg.Levels)
    TotalLines += C.numLines();
}

void WarpingSimulator::enableDepthProfile() {
  const CacheConfig &L1 = CacheCfg.Levels.front();
  assert(CacheCfg.numLevels() == 1 && L1.Policy == PolicyKind::Lru &&
         L1.WriteAlloc == WriteAllocate::Yes &&
         "depth profiling needs single-level write-allocate LRU (hit "
         "way == per-set stack distance)");
  DepthProfile = true;
  DepthHist.assign(L1.Assoc, 0);
}

SimStats WarpingSimulator::run() {
  telemetry::TimePoint Start = telemetry::now();
  IterVec Iter;
  for (const std::unique_ptr<Node> &R : Program.roots())
    runNode(R.get(), Iter);
  Stats.Seconds = telemetry::secondsSince(Start);
  return Stats;
}

void WarpingSimulator::runNode(const Node *N, IterVec &Iter) {
  if (const LoopNode *L = asLoop(N))
    runLoop(L, Iter);
  else
    runAccess(asAccess(N), Iter);
}

void WarpingSimulator::runLoop(const LoopNode *L, IterVec &Iter) {
  std::optional<VarBounds> B = L->Domain.lastDimBounds(Iter);
  assert(B && "loop domain must be bounded");
  if (B->empty())
    return;
  const WarpConfig &WC = Options.Warp;
  bool NeedMembership = !L->Domain.isSingleDisjunct();
  // Viable match distances are multiples of the loop's delta unit
  // (computed once per loop node); a zero unit means the loop can never
  // satisfy the warping conditions, so probing is skipped entirely.
  if (DeltaUnit[L->Id] == -1)
    DeltaUnit[L->Id] = Engine.deltaUnit(L);
  int64_t Unit = DeltaUnit[L->Id];
  bool CanProbe = WC.Enable && !LoopDisabled[L->Id] && !NeedMembership &&
                  L->EndAccess > L->FirstAccess && Unit > 0;

  WarpScope Scope;
  Scope.Loop = L;
  Scope.Prefix = Iter;
  Scope.Hi = B->Hi;

  // Paper Algorithm 2 line 4: a fresh map per activation; warping is only
  // attempted while the enclosing iterators are unchanged. The backing
  // storage is pooled per nesting depth.
  Activation &Act = activationAtDepth(L->Depth);
  unsigned Probes = 0;
  bool WarpedAny = false;
  bool EagerSnapshots = B->Hi - B->Lo + 1 <= WC.EagerSnapshotTripLimit;
  uint64_t GainBefore = Stats.WarpedAccesses;

  Iter.push(0);
  int64_t X = B->Lo;
  while (X <= B->Hi) {
    Iter.back() = X;
    if (NeedMembership && !L->Domain.contains(Iter)) {
      ++X;
      continue; // Hole inside the hull of a disjunctive domain.
    }
    if (CanProbe && Probes < WC.MaxProbeIters) {
      ++Probes;
      uint64_t Key = Engine.stateKey(Cache, Scope);
      Bucket &Bk = Act.Map[Key];
      bool Warped = false;
      // Try stored snapshots, most recent (smallest delta) first.
      for (auto It = Bk.Entries.rbegin(); It != Bk.Entries.rend(); ++It) {
        if (!Act.valid(*It))
          continue; // The ring recycled this snapshot.
        int64_t Delta = X - It->X0;
        if (Delta < 1 || Delta > WC.MaxDelta || Delta % Unit != 0)
          continue;
        WarpPlan Plan;
        if (!Engine.checkWarp(Act.Snapshots[It->Slot], Cache, Scope,
                              It->X0, X, Plan)) {
          ++Stats.FailedWarpChecks;
          continue;
        }
        // Fast-forward counters by N copies of the match window
        // (Theorem 4, Eq. (19)).
        CounterState Now = CounterState::capture(Stats);
        uint64_t N = static_cast<uint64_t>(Plan.N);
        uint64_t DAcc1 = Now.L1Acc - It->Counters.L1Acc;
        Stats.Level[0].Accesses += N * DAcc1;
        Stats.Level[0].Misses += N * (Now.L1Miss - It->Counters.L1Miss);
        Stats.Level[1].Accesses += N * (Now.L2Acc - It->Counters.L2Acc);
        Stats.Level[1].Misses += N * (Now.L2Miss - It->Counters.L2Miss);
        Stats.WarpedAccesses += N * DAcc1;
        ++Stats.Warps;
        if (DepthProfile) {
          // The verified state bijection preserves per-set recency
          // positions (rotations rename sets, block shifts rename
          // lines; neither moves a line within its set's recency
          // order), so the hit-depth sequence of every warped
          // repetition equals the match window's: scale the window's
          // histogram delta like the counters above.
          const std::vector<uint64_t> &H0 = Act.SnapshotHists[It->Slot];
          for (size_t D = 0; D < DepthHist.size(); ++D)
            DepthHist[D] += N * (DepthHist[D] - H0[D]);
        }
        Engine.applyWarp(Cache, Scope, Plan);
        X += Plan.N * Plan.Delta;
        Warped = true;
        WarpedAny = true;
        break;
      }
      if (Warped)
        continue; // Re-enter at the fast-forwarded iteration.
      // Store: marker on first occurrence, snapshot on the second (or
      // immediately for short loops), with a minimum spacing between
      // snapshots of the same bucket.
      if (!EagerSnapshots && Bk.Entries.empty() &&
          Bk.SeenWithoutSnapshot == 0) {
        Bk.SeenWithoutSnapshot = 1;
      } else if (X - Act.LastStoreX >= WC.MinSnapshotSpacing ||
                 EagerSnapshots) {
        // Drop entries whose ring slot was recycled, then store.
        std::erase_if(Bk.Entries, [&](const StoredEntry &E) {
          return !Act.valid(E);
        });
        if (Bk.Entries.size() < WC.MaxSnapshotsPerBucket)
          Bk.Entries.push_back(
              Act.store(Cache, WC.SnapshotRingSize, X,
                        CounterState::capture(Stats),
                        DepthProfile ? &DepthHist : nullptr));
      }
    }
    for (const std::unique_ptr<Node> &C : L->Children)
      runNode(C.get(), Iter);
    ++X;
  }
  Iter.pop();

  // Learning: loops that probe a lot without ever warping stop probing.
  if (CanProbe) {
    if (WarpedAny)
      LoopFailures[L->Id] = 0;
    else if (Probes >= WC.MinProbesForLearning &&
             ++LoopFailures[L->Id] >= WC.DisableAfterFailedActivations)
      LoopDisabled[L->Id] = 1;
    // Profit guard: warping must pay for its probing and snapshot cost
    // (in access-equivalents; a probe hashes the whole state, a snapshot
    // copies it).
    if (WC.EnableProfitGuard) {
      ProbeCost[L->Id] +=
          Probes * (TotalLines / 8 + 1) +
          Act.StoresThisActivation * TotalLines;
      ProbeGain[L->Id] += Stats.WarpedAccesses - GainBefore;
      if (++GuardedActivations[L->Id] >= WC.ProfitGuardActivations &&
          ProbeGain[L->Id] < ProbeCost[L->Id])
        LoopDisabled[L->Id] = 1;
    }
  }
}

void WarpingSimulator::runAccess(const AccessNode *A, const IterVec &Iter) {
  if (!Options.IncludeScalars && Program.array(A->ArrayId).isScalar())
    return;
  if (A->Guarded && !A->Domain.contains(Iter))
    return;
  BlockId B = A->Address.eval(Iter) >> BlockShift;
  SymAccessOutcome O =
      Cache.access(B, A->isWrite(), static_cast<int32_t>(A->Id), Iter);
  ++Stats.SimulatedAccesses;
  ++Stats.Level[0].Accesses;
  if (!O.L1Hit)
    ++Stats.Level[0].Misses;
  else if (DepthProfile)
    ++DepthHist[O.L1HitDepth];
  if (O.L2Accessed) {
    ++Stats.Level[1].Accesses;
    if (!O.L2Hit)
      ++Stats.Level[1].Misses;
  }
}
