//===- tests/cache_test.cpp - Cache model unit tests ---------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Hand-traced behavior of every replacement policy, the set mapping, the
// logical set rotation used by warping, and the two-level hierarchy
// semantics of paper Eq. (24).
//
//===----------------------------------------------------------------------===//

#include "wcs/cache/ConcreteCache.h"

#include <gtest/gtest.h>

using namespace wcs;

namespace {

CacheConfig smallConfig(PolicyKind K, unsigned Assoc, unsigned Sets) {
  CacheConfig C;
  C.BlockBytes = 64;
  C.Assoc = Assoc;
  C.SizeBytes = static_cast<uint64_t>(Assoc) * Sets * 64;
  C.Policy = K;
  return C;
}

/// Accesses block B and reports hit/miss.
bool hit(ConcreteCache &C, BlockId B) { return C.access(B, true).Hit; }

TEST(CacheConfig, Validation) {
  EXPECT_EQ(smallConfig(PolicyKind::Lru, 2, 4).validate(), "");
  CacheConfig Bad = smallConfig(PolicyKind::Lru, 2, 4);
  Bad.BlockBytes = 48;
  EXPECT_NE(Bad.validate(), "");
  CacheConfig BadSets = smallConfig(PolicyKind::Lru, 2, 3);
  EXPECT_NE(BadSets.validate(), "") << "3 sets is not a power of two";
  CacheConfig BadPlru = smallConfig(PolicyKind::Plru, 3, 4);
  BadPlru.SizeBytes = 3 * 4 * 64;
  EXPECT_NE(BadPlru.validate(), "") << "PLRU needs power-of-two assoc";
  EXPECT_EQ(CacheConfig::testSystemL1().validate(), "");
  EXPECT_EQ(CacheConfig::testSystemL2().validate(), "");
  EXPECT_EQ(
      HierarchyConfig::twoLevel(CacheConfig::scaledL1(),
                                CacheConfig::scaledL2())
          .validate(),
      "");
}

TEST(ConcreteCache, SetMappingIsModulo) {
  ConcreteCache C(smallConfig(PolicyKind::Lru, 1, 4));
  EXPECT_EQ(C.setOf(0), 0u);
  EXPECT_EQ(C.setOf(5), 1u);
  EXPECT_EQ(C.setOf(7), 3u);
  // Blocks in different sets never evict each other in a 1-way cache.
  EXPECT_FALSE(hit(C, 0));
  EXPECT_FALSE(hit(C, 1));
  EXPECT_FALSE(hit(C, 2));
  EXPECT_TRUE(hit(C, 0));
  EXPECT_FALSE(hit(C, 4)); // Same set as 0: evicts it.
  EXPECT_FALSE(hit(C, 0));
}

TEST(ConcreteCache, LruEvictsLeastRecentlyUsed) {
  ConcreteCache C(smallConfig(PolicyKind::Lru, 2, 1));
  EXPECT_FALSE(hit(C, 10));
  EXPECT_FALSE(hit(C, 20));
  EXPECT_TRUE(hit(C, 10));  // Order now [10, 20].
  EXPECT_FALSE(hit(C, 30)); // Evicts 20.
  EXPECT_TRUE(hit(C, 10));
  EXPECT_FALSE(hit(C, 20));
}

TEST(ConcreteCache, FifoIgnoresHits) {
  ConcreteCache C(smallConfig(PolicyKind::Fifo, 2, 1));
  EXPECT_FALSE(hit(C, 10));
  EXPECT_FALSE(hit(C, 20));
  EXPECT_TRUE(hit(C, 10));  // Does not refresh 10 under FIFO.
  EXPECT_FALSE(hit(C, 30)); // Evicts 10 (first in), unlike LRU.
  EXPECT_FALSE(C.probe(10));
  EXPECT_TRUE(C.probe(20));
}

TEST(ConcreteCache, PlruClassicVictimSequence) {
  ConcreteCache C(smallConfig(PolicyKind::Plru, 4, 1));
  EXPECT_FALSE(hit(C, 0)); // way 0
  EXPECT_FALSE(hit(C, 1)); // way 1
  EXPECT_FALSE(hit(C, 2)); // way 2
  EXPECT_FALSE(hit(C, 3)); // way 3
  // Tree bits now point at way 0 as the victim.
  EXPECT_TRUE(hit(C, 0)); // Touch way 0: victim moves to the right pair.
  EXPECT_FALSE(hit(C, 4)); // Should evict way 2 (block 2).
  EXPECT_FALSE(C.probe(2));
  EXPECT_TRUE(C.probe(0));
  EXPECT_TRUE(C.probe(1));
  EXPECT_TRUE(C.probe(3));
  EXPECT_TRUE(C.probe(4));
}

TEST(ConcreteCache, QuadAgeLruAgingAndPromotion) {
  ConcreteCache C(smallConfig(PolicyKind::QuadAgeLru, 2, 1));
  EXPECT_FALSE(hit(C, 10)); // age 2
  EXPECT_FALSE(hit(C, 20)); // age 2
  EXPECT_TRUE(hit(C, 10));  // age(10) = 0
  EXPECT_FALSE(hit(C, 30)); // aging: {1,3}: evict 20
  EXPECT_TRUE(C.probe(10));
  EXPECT_FALSE(C.probe(20));
  EXPECT_TRUE(C.probe(30));
}

TEST(ConcreteCache, QuadAgeLruIsScanResistantWhereLruIsNot) {
  // Hot block + streaming scan: Quad-age LRU keeps the age-0 hot block and
  // evicts a scan block instead; LRU evicts the hot block (it is the least
  // recently used when the scan overflows the set). This is the paper's
  // explanation for QLRU's distinct behavior (Sec. 6.2).
  ConcreteCache Q(smallConfig(PolicyKind::QuadAgeLru, 4, 1));
  ConcreteCache L(smallConfig(PolicyKind::Lru, 4, 1));
  for (ConcreteCache *C : {&Q, &L}) {
    hit(*C, 100);
    hit(*C, 100); // Hot: QLRU age 0 / LRU most-recent.
    hit(*C, 201); // Scan fills the remaining ways...
    hit(*C, 202);
    hit(*C, 203);
    hit(*C, 204); // ...and overflows the set.
  }
  EXPECT_FALSE(hit(L, 100)) << "LRU evicted the hot block";
  ConcreteCache Q2(smallConfig(PolicyKind::QuadAgeLru, 4, 1));
  hit(Q2, 100);
  hit(Q2, 100);
  hit(Q2, 201);
  hit(Q2, 202);
  hit(Q2, 203);
  hit(Q2, 204); // Aging makes the scan blocks age 3; hot stays age 1.
  EXPECT_TRUE(hit(Q2, 100)) << "QLRU kept the hot block through the scan";
}

TEST(ConcreteCache, EvictionReporting) {
  ConcreteCache C(smallConfig(PolicyKind::Lru, 1, 1));
  AccessOutcome A = C.access(42, true);
  EXPECT_FALSE(A.Hit);
  EXPECT_TRUE(A.Inserted);
  EXPECT_FALSE(A.EvictedValid);
  C.setDirtyAt(A.Set, A.Way, true);
  AccessOutcome B = C.access(43, true);
  EXPECT_TRUE(B.EvictedValid);
  EXPECT_TRUE(B.EvictedDirty);
  EXPECT_EQ(B.EvictedBlock, 42);
}

TEST(ConcreteCache, NonAllocatingAccessLeavesStateUnchanged) {
  ConcreteCache C(smallConfig(PolicyKind::Lru, 2, 1));
  EXPECT_FALSE(C.access(10, false).Hit);
  EXPECT_FALSE(C.access(10, true).Hit) << "bypassed write did not allocate";
  EXPECT_TRUE(C.access(10, false).Hit);
}

TEST(ConcreteCache, RotateSetsMovesContentLogically) {
  ConcreteCache C(smallConfig(PolicyKind::Lru, 1, 4));
  for (BlockId B = 0; B < 4; ++B)
    C.access(B, true);
  EXPECT_EQ(C.mraSet(), 3u);
  for (unsigned S = 0; S < 4; ++S)
    EXPECT_EQ(C.blockAt(S, 0), static_cast<BlockId>(S));
  C.rotateSets(1);
  EXPECT_EQ(C.mraSet(), 0u);
  for (unsigned S = 0; S < 4; ++S)
    EXPECT_EQ(C.blockAt((S + 1) % 4, 0), static_cast<BlockId>(S))
        << "content of set " << S << " moved to set " << (S + 1) % 4;
  C.rotateSets(-1); // Rotation is invertible.
  for (unsigned S = 0; S < 4; ++S)
    EXPECT_EQ(C.blockAt(S, 0), static_cast<BlockId>(S));
}

TEST(ConcreteCache, PolicyWordCapturesMetadata) {
  ConcreteCache P(smallConfig(PolicyKind::Plru, 4, 1));
  uint64_t W0 = P.policyWord(0);
  P.access(1, true);
  EXPECT_NE(P.policyWord(0), W0) << "PLRU bits must change on fill";
  ConcreteCache L(smallConfig(PolicyKind::Lru, 4, 1));
  L.access(1, true);
  EXPECT_EQ(L.policyWord(0), 0u) << "LRU state lives in the line order";
}

TEST(ConcreteHierarchy, L2SeesExactlyTheL1Misses) {
  HierarchyConfig H = HierarchyConfig::twoLevel(
      smallConfig(PolicyKind::Lru, 1, 1), smallConfig(PolicyKind::Lru, 2, 1));
  ConcreteHierarchy HC(H);
  HierarchyOutcome A = HC.access(100, false);
  EXPECT_FALSE(A.L1Hit);
  EXPECT_TRUE(A.L2Accessed);
  EXPECT_FALSE(A.L2Hit);
  HierarchyOutcome B = HC.access(200, false); // Evicts 100 from L1 only.
  EXPECT_FALSE(B.L1Hit);
  HierarchyOutcome A2 = HC.access(100, false);
  EXPECT_FALSE(A2.L1Hit);
  EXPECT_TRUE(A2.L2Hit) << "non-inclusive L2 retains the L1 victim's block";
  HierarchyOutcome A3 = HC.access(100, false);
  EXPECT_TRUE(A3.L1Hit);
  EXPECT_FALSE(A3.L2Accessed) << "L1 hits never reach the L2 (Eq. 24)";
}

TEST(ConcreteHierarchy, WritebackPropagationMode) {
  HierarchyConfig H = HierarchyConfig::twoLevel(
      smallConfig(PolicyKind::Lru, 1, 1), smallConfig(PolicyKind::Lru, 4, 1));
  ConcreteHierarchy HC(H, /*PropagateWritebacks=*/true);
  HC.access(100, /*IsWrite=*/true); // Dirty in L1.
  HierarchyOutcome B = HC.access(200, false);
  EXPECT_EQ(B.L2Writebacks, 1u) << "dirty victim written back to L2";
  EXPECT_EQ(B.L2WritebackMisses, 0u) << "block 100 already resides in L2";

  ConcreteHierarchy NoWB(H, /*PropagateWritebacks=*/false);
  NoWB.access(100, true);
  HierarchyOutcome B2 = NoWB.access(200, false);
  EXPECT_EQ(B2.L2Writebacks, 0u);
}

TEST(ConcreteHierarchy, NoWriteAllocateBypassesOnWriteMiss) {
  CacheConfig L1 = smallConfig(PolicyKind::Lru, 2, 1);
  L1.WriteAlloc = WriteAllocate::No;
  ConcreteHierarchy HC(HierarchyConfig::singleLevel(L1));
  EXPECT_FALSE(HC.access(10, true).L1Hit);
  EXPECT_FALSE(HC.access(10, false).L1Hit) << "write miss did not allocate";
  EXPECT_TRUE(HC.access(10, false).L1Hit);
  EXPECT_TRUE(HC.access(10, true).L1Hit) << "write hits still hit";
}

} // namespace
