//===- tests/sweep_test.cpp - Sweep-driver cross-checks -------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The sweep driver's contract is bit-identity: every grid point --
// whether answered from the shared stack-distance pass or from a
// deduplicated simulation job -- must report exactly the counters an
// independent per-config simulation of that point produces. The
// property suite enforces this across random programs, capacities,
// associativities and all four replacement policies, plus grid-syntax,
// dedup and wcs-sweep document round-trip checks.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/driver/Sweep.h"
#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/trace/StackDistance.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;
using testutil::generateProgram;

namespace {

/// Sweep \p Configs over \p P and require every point to match an
/// independent ConcreteSimulator run bit for bit.
void expectSweepMatchesConcrete(const ScopProgram &P,
                                const std::vector<HierarchyConfig> &Configs,
                                unsigned Threads) {
  SweepOptions SO;
  SO.Threads = Threads;
  SweepReport Rep = runSweep(P, Configs, SO);
  ASSERT_EQ(Rep.Points.size(), Configs.size());
  for (size_t I = 0; I < Configs.size(); ++I) {
    const SweepPoint &Pt = Rep.Points[I];
    ASSERT_TRUE(Pt.Ok) << Configs[I].str() << ": " << Pt.Error;
    ConcreteSimulator Sim(P, Configs[I]);
    SimStats Ref = Sim.run();
    ASSERT_EQ(Pt.Stats.NumLevels, Ref.NumLevels) << Configs[I].str();
    for (unsigned L = 0; L < Ref.NumLevels; ++L) {
      EXPECT_EQ(Pt.Stats.Level[L].Accesses, Ref.Level[L].Accesses)
          << Configs[I].str() << " level " << L << "\n"
          << P.str();
      EXPECT_EQ(Pt.Stats.Level[L].Misses, Ref.Level[L].Misses)
          << Configs[I].str() << " level " << L << " ("
          << sweepMethodName(Pt.Method) << ")\n"
          << P.str();
    }
  }
}

/// The headline property: random programs x random geometries x all
/// four policies, fast path and simulated partition alike.
TEST(Sweep, MatchesConcretePerConfigAllPolicies) {
  std::mt19937 Rng(20220613);
  const PolicyKind Policies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                 PolicyKind::Plru, PolicyKind::QuadAgeLru};
  for (int Trial = 0; Trial < 5; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    auto Rand = [&](int Lo, int Hi) {
      return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
    };
    std::vector<HierarchyConfig> Grid;
    for (PolicyKind K : Policies)
      for (int N = 0; N < 3; ++N) {
        CacheConfig C;
        C.BlockBytes = 64;
        C.Assoc = 1u << Rand(0, 3);      // 1..8 ways (PLRU-safe).
        unsigned Sets = 1u << Rand(0, 4); // 1..16 sets.
        C.SizeBytes = static_cast<uint64_t>(C.Assoc) * Sets * 64;
        C.Policy = K;
        ASSERT_EQ(C.validate(), "");
        Grid.push_back(HierarchyConfig::singleLevel(C));
      }
    expectSweepMatchesConcrete(P, Grid, /*Threads=*/2);
  }
}

/// Capacity axis of the fast path: fully-associative LRU points of many
/// capacities share one bank; set-associative points get per-set banks.
TEST(Sweep, MatchesConcreteAcrossLruCapacities) {
  std::mt19937 Rng(7);
  ScopProgram P = generateProgram(Rng);
  std::vector<HierarchyConfig> Grid;
  for (uint64_t Bytes = 64; Bytes <= 8192; Bytes *= 2) {
    CacheConfig FA;
    FA.BlockBytes = 64;
    FA.SizeBytes = Bytes;
    FA.Assoc = static_cast<unsigned>(Bytes / 64);
    Grid.push_back(HierarchyConfig::singleLevel(FA));
    CacheConfig SA = FA;
    SA.Assoc = std::min<unsigned>(FA.Assoc, 4); // >1 set beyond 256 B.
    Grid.push_back(HierarchyConfig::singleLevel(SA));
  }
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  for (const SweepPoint &Pt : Rep.Points)
    EXPECT_EQ(Pt.Method, SweepMethod::StackDistance) << Pt.Cache.str();
  expectSweepMatchesConcrete(P, Grid, /*Threads=*/1);
}

/// Two-level points take the simulated partition and still match.
TEST(Sweep, MatchesConcreteTwoLevel) {
  std::mt19937 Rng(99);
  ScopProgram P = generateProgram(Rng);
  std::vector<HierarchyConfig> Grid;
  Grid.push_back(testutil::randomHierarchy(Rng, PolicyKind::Lru, true));
  Grid.push_back(testutil::randomHierarchy(Rng, PolicyKind::Fifo, true));
  expectSweepMatchesConcrete(P, Grid, /*Threads=*/2);
}

TEST(Sweep, PartitionAndProvenance) {
  std::mt19937 Rng(3);
  ScopProgram P = generateProgram(Rng);
  CacheConfig Lru{4096, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig LruNwa = Lru;
  LruNwa.WriteAlloc = WriteAllocate::No;
  CacheConfig Plru = Lru;
  Plru.Policy = PolicyKind::Plru;
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::singleLevel(Lru),
      HierarchyConfig::singleLevel(LruNwa),
      HierarchyConfig::singleLevel(Plru),
      HierarchyConfig::singleLevel(Plru), // Duplicate: must dedup.
  };
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  // Write-allocate LRU is analytical; no-write-allocate LRU and PLRU
  // must simulate (a non-allocating write miss leaves the stack
  // untouched in hardware but not in the histogram).
  EXPECT_EQ(Rep.Points[0].Method, SweepMethod::StackDistance);
  EXPECT_EQ(Rep.Points[0].Backend, SimBackend::StackDistance);
  EXPECT_EQ(Rep.Points[1].Method, SweepMethod::Simulated);
  EXPECT_EQ(Rep.Points[2].Method, SweepMethod::Simulated);
  EXPECT_EQ(Rep.StackDistancePoints, 1u);
  EXPECT_EQ(Rep.SimulatedJobs, 2u);
  EXPECT_EQ(Rep.DedupedPoints, 1u);
  // The deduplicated twin reports the shared job's counters.
  EXPECT_EQ(Rep.Points[3].Stats.Level[0].Misses,
            Rep.Points[2].Stats.Level[0].Misses);
  EXPECT_EQ(Rep.Points[3].Stats.Level[0].Accesses,
            Rep.Points[2].Stats.Level[0].Accesses);
}

TEST(Sweep, ErroredJobsSurfaceAsFailedPointsNotZeroMisses) {
  // A grid point whose job errors (here: a FIFO point forced onto the
  // stack-distance backend, which models LRU only) must come back as a
  // failed point with a non-empty error -- never as an Ok point with
  // zero-miss counters -- and must not poison the answerable points.
  std::mt19937 Rng(99);
  ScopProgram P = generateProgram(Rng);

  CacheConfig Lru{8 * 64, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Fifo{8 * 64, 8, 64, PolicyKind::Fifo, WriteAllocate::Yes};
  std::vector<HierarchyConfig> Configs = {
      HierarchyConfig::singleLevel(Lru), HierarchyConfig::singleLevel(Fifo)};

  SweepOptions SO;
  SO.Backend = SimBackend::StackDistance;
  SweepReport Rep = runSweep(P, Configs, SO);
  ASSERT_EQ(Rep.Points.size(), 2u);

  const SweepPoint &Good = Rep.Points[0];
  EXPECT_TRUE(Good.Ok) << Good.Error;
  EXPECT_GT(Good.Stats.Level[0].Misses, 0u);

  const SweepPoint &Bad = Rep.Points[1];
  EXPECT_FALSE(Bad.Ok);
  EXPECT_NE(Bad.Error, "");

  for (const SweepPoint &Pt : Rep.Points)
    if (Pt.Ok) {
      EXPECT_GT(Pt.Stats.Level[0].Accesses, 0u)
          << "an Ok point must carry real counters";
    }
}

TEST(Sweep, BankDegeneratesToFullyAssociativeProfiler) {
  std::mt19937 Rng(11);
  ScopProgram P = generateProgram(Rng);
  StackDistanceProfiler Prof = profileProgram(P, 64, false);
  SetDistanceBank Bank = profileProgramSets(P, 64, 1, false);
  ASSERT_EQ(Bank.totalAccesses(), Prof.totalAccesses());
  for (uint64_t A : {1u, 2u, 8u, 64u})
    EXPECT_EQ(Bank.missesForAssoc(A), Prof.missesForAssoc(A)) << A;
}

//===----------------------------------------------------------------------===//
// Sub-sweep partitioning (the scheduler's job seams)
//===----------------------------------------------------------------------===//

TEST(SweepPartition, GroupsCoverEveryIndexAlongMethodSeams) {
  CacheConfig Lru{4096, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Lru2 = Lru;
  Lru2.SizeBytes = 8192;
  CacheConfig Fifo = Lru;
  Fifo.Policy = PolicyKind::Fifo;
  CacheConfig L2{32768, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Invalid;
  Invalid.SizeBytes = 100; // Not set-aligned: validate() rejects it.

  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::singleLevel(Lru),      // 0: sd
      HierarchyConfig::singleLevel(Fifo),     // 1: sim
      HierarchyConfig::twoLevel(Lru, L2),     // 2: fs (L1 = Lru)
      HierarchyConfig::singleLevel(Lru2),     // 3: sd, with 0
      HierarchyConfig::singleLevel(Fifo),     // 4: sim, dup of 1
      HierarchyConfig::twoLevel(Lru2, L2),    // 5: fs (L1 = Lru2)
      HierarchyConfig::twoLevel(Lru, L2),     // 6: fs, with 2
      HierarchyConfig::singleLevel(Invalid),  // 7: its own group
  };
  std::vector<std::vector<size_t>> Groups = partitionSweepGroups(Grid);

  // A partition: every input index in exactly one group.
  std::vector<unsigned> Seen(Grid.size(), 0);
  for (const auto &G : Groups)
    for (size_t I : G)
      ++Seen.at(I);
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I], 1u) << "index " << I;

  auto groupOf = [&](size_t I) -> const std::vector<size_t> & {
    for (const auto &G : Groups)
      for (size_t J : G)
        if (J == I)
          return G;
    static const std::vector<size_t> None;
    return None;
  };
  // Both LRU capacities share one stack-distance pass; the two-level
  // points group by their L1 stream; identical sim configs share a job.
  EXPECT_EQ(groupOf(0), groupOf(3));
  EXPECT_EQ(groupOf(2), groupOf(6));
  EXPECT_NE(groupOf(2), groupOf(5));
  EXPECT_EQ(groupOf(1), groupOf(4));
  EXPECT_EQ(groupOf(7).size(), 1u); // Invalid: isolated, still covered.
}

TEST(SweepPartition, GroupedSubSweepsMatchOneCombinedSweep) {
  // The invariant the concurrent scheduler rests on: running each
  // partition group as its own runSweep call and merging the reports
  // is bit-identical per point to one combined call.
  std::mt19937 Rng(20220613);
  ScopProgram P = generateProgram(Rng);
  CacheConfig Lru{4096, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Lru2 = Lru;
  Lru2.SizeBytes = 2048;
  CacheConfig Fifo = Lru;
  Fifo.Policy = PolicyKind::Fifo;
  CacheConfig Plru = Lru;
  Plru.Policy = PolicyKind::Plru;
  CacheConfig L2{32768, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::singleLevel(Lru),
      HierarchyConfig::singleLevel(Fifo),
      HierarchyConfig::twoLevel(Lru, L2),
      HierarchyConfig::singleLevel(Lru2),
      HierarchyConfig::singleLevel(Plru),
      HierarchyConfig::twoLevel(Lru2, L2),
  };

  SweepOptions SO;
  SO.Threads = 1;
  SweepReport Combined = runSweep(P, Grid, SO);
  ASSERT_TRUE(Combined.allOk());

  std::vector<SweepPoint> Points(Grid.size());
  SweepReport Merged;
  for (const std::vector<size_t> &G : partitionSweepGroups(Grid)) {
    std::vector<HierarchyConfig> Sub;
    for (size_t I : G)
      Sub.push_back(Grid[I]);
    SweepReport Rep = runSweep(P, Sub, SO);
    for (size_t K = 0; K < G.size(); ++K)
      Points[G[K]] = Rep.Points[K];
    mergeSweepReports(Merged, Rep);
  }

  for (size_t I = 0; I < Grid.size(); ++I) {
    SweepPoint A = Combined.Points[I], B = Points[I];
    A.Stats.Seconds = B.Stats.Seconds = 0.0;
    EXPECT_EQ(toJson(A).dump(false), toJson(B).dump(false))
        << "point " << I << " " << Grid[I].str();
  }
  // The merged cost figures describe the same partition: same pass
  // counts and method population, whatever the timing.
  EXPECT_EQ(Merged.StackDistancePoints, Combined.StackDistancePoints);
  EXPECT_EQ(Merged.FilteredPoints, Combined.FilteredPoints);
  EXPECT_EQ(Merged.NumBanks, Combined.NumBanks);
  EXPECT_EQ(Merged.FilteredGroups, Combined.FilteredGroups);
  EXPECT_EQ(Merged.SimulatedJobs, Combined.SimulatedJobs);
}

TEST(SweepPartition, MergeSumsAdditiveFiguresAndOrsFlags) {
  SweepReport A, B;
  A.TracePassSeconds = 1.0;
  A.TraceAccesses = 100;
  A.NumBanks = 2;
  A.StackDistancePoints = 3;
  A.SimulatedJobs = 1;
  A.DemotedL1s = {"l1-a"};
  B.TracePassSeconds = 0.5;
  B.TraceAccesses = 250; // Larger shared pass: max wins, not sum.
  B.PeriodicPass = true;
  B.PeriodicWarps = 7;
  B.FilteredPoints = 4;
  B.DemotedL1s = {"l1-b"};

  SweepReport Into;
  mergeSweepReports(Into, A);
  mergeSweepReports(Into, B);
  EXPECT_DOUBLE_EQ(Into.TracePassSeconds, 1.5);
  EXPECT_EQ(Into.TraceAccesses, 250u);
  EXPECT_EQ(Into.NumBanks, 2u);
  EXPECT_EQ(Into.StackDistancePoints, 3u);
  EXPECT_EQ(Into.SimulatedJobs, 1u);
  EXPECT_TRUE(Into.PeriodicPass);
  EXPECT_EQ(Into.PeriodicWarps, 7u);
  EXPECT_EQ(Into.FilteredPoints, 4u);
  ASSERT_EQ(Into.DemotedL1s.size(), 2u);
  EXPECT_EQ(Into.DemotedL1s[0], "l1-a");
  EXPECT_EQ(Into.DemotedL1s[1], "l1-b");
}

//===----------------------------------------------------------------------===//
// Grid syntax
//===----------------------------------------------------------------------===//

TEST(SweepGrid, ParsesRangesAndKeys) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid("8K:256K:x2,assoc=4,8", G, &Err)) << Err;
  ASSERT_EQ(G.SizesBytes.size(), 6u);
  EXPECT_EQ(G.SizesBytes.front(), 8u * 1024);
  EXPECT_EQ(G.SizesBytes.back(), 256u * 1024);
  ASSERT_EQ(G.Assocs.size(), 2u);
  EXPECT_EQ(G.Assocs[0], 4u);
  EXPECT_EQ(G.Assocs[1], 8u);
  ASSERT_EQ(G.Policies.size(), 1u); // Defaulted.
  EXPECT_EQ(G.Policies[0], PolicyKind::Lru);
  EXPECT_EQ(G.BlockBytes, 64u);

  std::vector<HierarchyConfig> Grid;
  ASSERT_TRUE(expandSweepGrid(
      G, nullptr, InclusionPolicy::NonInclusiveNonExclusive, Grid, &Err))
      << Err;
  EXPECT_EQ(Grid.size(), 12u); // 6 capacities x 2 way counts.
}

TEST(SweepGrid, ParsesFullAssocPoliciesAndBlock) {
  SweepLevelGrid G;
  std::string Err;
  ASSERT_TRUE(parseSweepLevelGrid(
      "1K,4096,assoc=full,policy=lru,qlru,block=128", G, &Err))
      << Err;
  ASSERT_EQ(G.SizesBytes.size(), 2u);
  EXPECT_EQ(G.SizesBytes[1], 4096u);
  ASSERT_EQ(G.Assocs.size(), 1u);
  EXPECT_EQ(G.Assocs[0], 0u); // 0 encodes fully associative.
  ASSERT_EQ(G.Policies.size(), 2u);
  EXPECT_EQ(G.BlockBytes, 128u);

  // Expansion resolves assoc=full per capacity: 1K/128B = 8 ways.
  G.Policies = {PolicyKind::Lru};
  std::vector<HierarchyConfig> Grid;
  ASSERT_TRUE(expandSweepGrid(
      G, nullptr, InclusionPolicy::NonInclusiveNonExclusive, Grid, &Err))
      << Err;
  ASSERT_EQ(Grid.size(), 2u);
  EXPECT_EQ(Grid[0].Levels[0].Assoc, 8u);
  EXPECT_TRUE(Grid[0].Levels[0].isFullyAssociative());
}

TEST(SweepGrid, RejectsMalformedSpecs) {
  SweepLevelGrid G;
  std::string Err;
  EXPECT_FALSE(parseSweepLevelGrid("", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("assoc=4", G, &Err)); // No capacity.
  EXPECT_FALSE(parseSweepLevelGrid("8K:1K:x2", G, &Err)); // Empty range.
  EXPECT_FALSE(parseSweepLevelGrid("1K:8K:x1", G, &Err)); // Step < 2.
  EXPECT_FALSE(parseSweepLevelGrid("1K:8K:2", G, &Err));  // Missing 'x'.
  EXPECT_FALSE(parseSweepLevelGrid("4K,ways=2", G, &Err)); // Unknown key.
  EXPECT_FALSE(parseSweepLevelGrid("4K,assoc=nope", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("4K,assoc=0", G, &Err)); // Not 'full'.
  EXPECT_FALSE(parseSweepLevelGrid("4K,policy=mru", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("4K,block=64,128", G, &Err));
  EXPECT_FALSE(parseSweepLevelGrid("4K,,8K", G, &Err)); // Empty token.
}

TEST(SweepGrid, ExpansionRejectsInvalidPoints) {
  SweepLevelGrid G;
  std::string Err;
  // 1K at 8 ways x 128 B blocks: 1024 / (8*128) = 1 set, fine; but PLRU
  // with 3 ways is invalid.
  ASSERT_TRUE(parseSweepLevelGrid("1K,assoc=3,policy=plru", G, &Err));
  std::vector<HierarchyConfig> Grid;
  EXPECT_FALSE(expandSweepGrid(
      G, nullptr, InclusionPolicy::NonInclusiveNonExclusive, Grid, &Err));
  EXPECT_NE(Err.find("PLRU"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// The wcs-sweep document
//===----------------------------------------------------------------------===//

TEST(SweepDoc, RoundTripsExactly) {
  std::mt19937 Rng(5);
  ScopProgram P = generateProgram(Rng);
  CacheConfig Lru{2048, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Fifo = Lru;
  Fifo.Policy = PolicyKind::Fifo;
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::singleLevel(Lru),
      HierarchyConfig::singleLevel(Fifo),
  };
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  SweepDoc Doc = makeSweepDoc("wcs-sim", "random", "SMALL", Rep);

  json::Value V = toJson(Doc);
  std::string Text = V.dump();
  json::Value Parsed;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, Parsed, &Err)) << Err;
  SweepDoc Back;
  ASSERT_TRUE(fromJson(Parsed, Back, &Err)) << Err;

  EXPECT_EQ(Back.Tool, "wcs-sim");
  EXPECT_EQ(Back.Program, "random");
  EXPECT_EQ(Back.SizeName, "SMALL");
  EXPECT_EQ(Back.TraceAccesses, Doc.TraceAccesses);
  ASSERT_EQ(Back.Points.size(), 2u);
  EXPECT_EQ(Back.Points[0].Method, SweepMethod::StackDistance);
  EXPECT_EQ(Back.Points[0].Backend, SimBackend::StackDistance);
  EXPECT_EQ(Back.Points[1].Method, SweepMethod::Simulated);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ(Back.Points[I].Stats.Level[0].Misses,
              Rep.Points[I].Stats.Level[0].Misses);
    EXPECT_EQ(Back.Points[I].Cache.str(), Grid[I].str());
  }
  // Serialization is deterministic: a round trip reproduces the text.
  EXPECT_EQ(toJson(Back).dump(), Text);
}

/// Periodic-pass provenance and cap-demoted groups survive the round
/// trip (and the demotion is visible in the report, which is what the
/// wcs-sim warning and the wcs-report "demoted" lines render).
TEST(SweepDoc, RoundTripsPeriodicAndDemotedProvenance) {
  // A program with plenty of L1 misses, so a 1-record stream cap is
  // guaranteed to overrun and demote the group.
  ScopBuilder B("missy");
  unsigned A = B.addArray("A", 8, {4096});
  B.beginLoop("i", B.cst(0), B.cst(4095));
  B.read(A, {B.iterAt(0)});
  B.endLoop();
  std::string BuildErr;
  ScopProgram P = B.finish(&BuildErr);
  ASSERT_EQ(BuildErr, "");
  CacheConfig Lru{2048, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2{8192, 8, 64, PolicyKind::QuadAgeLru,
                 WriteAllocate::Yes};
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::singleLevel(Lru),
      HierarchyConfig::twoLevel(Lru, L2),
  };
  SweepOptions SO;
  SO.WarpSweepMinAccesses = 0; // Force the periodic pass flavor.
  SO.MaxFilteredRecords = 1;   // Force the recording to demote.
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  EXPECT_TRUE(Rep.PeriodicPass);
  ASSERT_EQ(Rep.DemotedL1s.size(), 1u);
  EXPECT_EQ(Rep.DemotedL1s[0], Lru.str());

  SweepDoc Doc = makeSweepDoc("wcs-sim", "random", "SMALL", Rep);
  std::string Text = toJson(Doc).dump();
  json::Value Parsed;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, Parsed, &Err)) << Err;
  SweepDoc Back;
  ASSERT_TRUE(fromJson(Parsed, Back, &Err)) << Err;
  EXPECT_TRUE(Back.PeriodicPass);
  EXPECT_EQ(Back.PeriodicWarps, Doc.PeriodicWarps);
  EXPECT_EQ(Back.PeriodicPassSeconds, Doc.PeriodicPassSeconds);
  EXPECT_EQ(Back.FilteredStoredRecords, Doc.FilteredStoredRecords);
  ASSERT_EQ(Back.DemotedL1s.size(), 1u);
  EXPECT_EQ(Back.DemotedL1s[0], Lru.str());
  EXPECT_EQ(toJson(Back).dump(), Text);
}

TEST(SweepDoc, RejectsWrongSchemaAndVersion) {
  SweepDoc D;
  json::Value V = toJson(D);
  SweepDoc Out;
  std::string Err;

  json::Value Wrong = V;
  Wrong.set("schema", "wcs-results");
  EXPECT_FALSE(fromJson(Wrong, Out, &Err));
  EXPECT_NE(Err.find("schema"), std::string::npos);

  json::Value Future = V;
  Future.set("schema_version", SweepSchemaVersion + 1);
  EXPECT_FALSE(fromJson(Future, Out, &Err));
  EXPECT_NE(Err.find("version"), std::string::npos);
}

} // namespace
