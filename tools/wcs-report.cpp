//===- tools/wcs-report.cpp - Results diff and regression gate ------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Diffs two results files (wcs-results schema, written by wcs-sim --json
// or wcs-bench) entry by entry and prints a per-kernel speedup /
// miss-delta table. Counters are deterministic, so any miss or access
// drift is a correctness bug; wall-clock is noisy, so time only gates
// through a threshold on the geometric-mean ratio.
//
// Given a single file, wcs-report instead renders a wcs-sweep document
// (written by wcs-sim --sweep-json) as capacity-axis tables: one table
// per configuration series, rows ordered by the capacity of the swept
// level, misses per level per row -- the misses-vs-capacity view of the
// paper's Fig. 9 rather than one flat row per grid point. A wcs-response
// document (from wcs-serve --client) renders the same way, prefixed by
// its serving provenance: request hash and the store hit/miss split.
//
//   wcs-report baseline.json current.json
//   wcs-report bench/baseline.json BENCH_results.json --check --threshold 2
//   wcs-report sweep.json
//   wcs-report response.json
//
// Exit status: 0 clean; 1 when --check trips; 2 on usage or I/O errors.
// --check trips on any counter drift, on entries that disappeared or
// failed, and on geomean time ratio above the threshold. Entries only
// present in the current file are informational (new kernels are not a
// regression).
//
//===----------------------------------------------------------------------===//

#include "wcs/driver/Results.h"
#include "wcs/driver/Sweep.h"
#include "wcs/driver/SweepRequest.h"
#include "wcs/support/Stats.h"
#include "wcs/support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace wcs;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: wcs-report BASELINE.json CURRENT.json [options]\n"
      "       wcs-report SWEEP.json\n"
      "  --check          gate: exit 1 on any miss/access drift, on\n"
      "                   missing or failed entries, or on time regression\n"
      "  --threshold X    time gate: fail when geomean(current/baseline)\n"
      "                   wall-time ratio exceeds X (default 1.25); when\n"
      "                   either file carries per-rep samples (wcs-bench\n"
      "                   --reps) the gate widens by the measured noise\n"
      "                   (2 sigma of the geomean), so a noisy runner\n"
      "                   cannot fail a genuinely unchanged build\n"
      "  --quiet          print only drifting entries and the summary\n"
      "With a single file (a wcs-sweep, wcs-response or wcs-metrics\n"
      "document), renders it: sweeps as capacity-axis tables (misses vs\n"
      "swept-level capacity, one table per configuration series), a\n"
      "wcs-response additionally with its request hash and store\n"
      "hit/miss figures, and a wcs-metrics document (wcs-serve\n"
      "--metrics) as top spans by cumulative time, the store hit rate\n"
      "and the request-latency histogram (--check does not apply).\n");
}

/// Total misses across levels (the headline drift number of one entry).
uint64_t totalMisses(const SimStats &S) {
  uint64_t M = 0;
  for (unsigned L = 0; L < S.NumLevels; ++L)
    M += S.Level[L].Misses;
  return M;
}

/// Wall-time floor for the time gate. Tiny --size small entries on fast
/// runners can legitimately measure 0 s; feeding that into the
/// current/baseline ratio would divide by zero (and a 0-vs-0 pair would
/// put NaN into the geomean, silently disabling the gate). Clamping to
/// a nanosecond keeps every compared entry in the gate with a finite,
/// bounded contribution.
constexpr double MinGateSeconds = 1e-9;
/// Per-entry ratio clamp: one degenerate timing must not be able to
/// move the geomean by more than 1000x in either direction.
constexpr double MaxGateRatio = 1e3;

/// Clamps one entry's wall time for the time gate; returns true (and
/// warns once) when clamping was needed.
bool clampSeconds(const char *Tag, const char *Which, double &S) {
  if (std::isfinite(S) && S >= MinGateSeconds)
    return false;
  std::fprintf(stderr,
               "warning: %s: %s wall time %g s is zero or non-finite; "
               "clamping to %g s for the time gate\n",
               Tag, Which, S, MinGateSeconds);
  S = MinGateSeconds;
  return true;
}

/// One entry's wall-time distribution. Multi-sample entries (wcs-bench
/// --reps) get a real mean/stddev; legacy single-sample entries degrade
/// to {Stats.Seconds, 0} and contribute nothing to the noise allowance,
/// so a pre-reps baseline gates exactly as it always did.
struct Timing {
  double Mean = 0.0;
  double StdErr = 0.0; ///< Standard error OF THE MEAN, not per-sample.
  unsigned N = 1;
};

Timing entryTiming(const ResultEntry &E) {
  if (E.Samples.size() < 2)
    return {E.Stats.Seconds, 0.0, 1};
  MeanStddev MS;
  for (double S : E.Samples)
    MS.add(S);
  return {MS.mean(), MS.stderror(), MS.count()};
}

/// True when the two runs produced identical counters (everything except
/// wall-clock, which legitimately varies run to run).
bool countersEqual(const SimStats &A, const SimStats &B) {
  if (A.NumLevels != B.NumLevels)
    return false;
  for (unsigned L = 0; L < A.NumLevels; ++L)
    if (A.Level[L].Accesses != B.Level[L].Accesses ||
        A.Level[L].Misses != B.Level[L].Misses)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Sweep-document rendering (single-file mode)
//===----------------------------------------------------------------------===//

std::string capacityStr(uint64_t Bytes) {
  return Bytes % 1024 == 0 ? std::to_string(Bytes / 1024) + "KiB"
                           : std::to_string(Bytes) + "B";
}

/// The per-level descriptor of a series: everything of the level's
/// config except the capacity when \p IsAxis. Fully-associative points
/// keep "full" rather than a way count, so a fully-associative capacity
/// ladder (whose way count grows with the capacity) forms one series.
std::string levelDesc(const CacheConfig &C, bool IsAxis) {
  std::string S;
  if (!IsAxis)
    S += capacityStr(C.SizeBytes) + " ";
  S += C.isFullyAssociative() && IsAxis
           ? std::string("full-assoc")
           : std::to_string(C.Assoc) + "-way";
  S += std::string(" ") + policyName(C.Policy);
  S += " " + std::to_string(C.BlockBytes) + "B-lines";
  S += C.WriteAlloc == WriteAllocate::Yes ? " WA" : " NWA";
  return S;
}

/// Renders a wcs-sweep document as capacity-axis tables: points are
/// grouped into series that differ only in the capacity of the swept
/// ("axis") level, and each series prints one row per capacity with the
/// per-level miss counts. The axis is the level with the most distinct
/// capacities among the document's points (computed per level-count
/// class, so mixed single/two-level documents render sensibly).
int renderSweep(const SweepDoc &Doc, const std::string &Path) {
  std::printf("sweep    %s  (%s%s%s, %zu points, %u threads)\n",
              Path.c_str(), Doc.Tool.c_str(),
              Doc.Program.empty() ? "" : " ", Doc.Program.c_str(),
              Doc.Points.size(), Doc.Threads);
  if (!Doc.SizeName.empty())
    std::printf("size     %s\n", Doc.SizeName.c_str());
  if (Doc.PeriodicPass)
    std::printf("shared   periodic warp pass %.3f s (%llu accesses, "
                "%llu warped, %llu warps); %u filtered L1 streams "
                "%.3f s (%llu records, %llu stored); %zu jobs (%zu "
                "deduped points)\n",
                Doc.PeriodicPassSeconds,
                static_cast<unsigned long long>(Doc.TraceAccesses),
                static_cast<unsigned long long>(
                    Doc.PeriodicWarpedAccesses),
                static_cast<unsigned long long>(Doc.PeriodicWarps),
                Doc.FilteredGroups, Doc.RecordSeconds,
                static_cast<unsigned long long>(Doc.FilteredRecords),
                static_cast<unsigned long long>(
                    Doc.FilteredStoredRecords),
                Doc.SimulatedJobs, Doc.DedupedPoints);
  else
    std::printf("shared   trace pass %.3f s (%llu accesses); %u filtered "
                "L1 streams %.3f s (%llu records); %zu jobs (%zu deduped "
                "points)\n",
                Doc.TracePassSeconds,
                static_cast<unsigned long long>(Doc.TraceAccesses),
                Doc.FilteredGroups, Doc.RecordSeconds,
                static_cast<unsigned long long>(Doc.FilteredRecords),
                Doc.SimulatedJobs, Doc.DedupedPoints);

  // Per-method breakdown: point counts per method (from the points
  // themselves) and the seconds the document attributes to each, so a
  // sweep file alone substantiates its speedup claims. Shared with the
  // wcs-sim live output (methodBreakdownLine).
  std::printf("methods  %s\n", methodBreakdownLine(Doc).c_str());
  for (const std::string &L1 : Doc.DemotedL1s)
    std::printf("demoted  L1 group %s fell back to full simulation "
                "(stream cap)\n",
                L1.c_str());

  size_t Failed = 0;
  for (const SweepPoint &P : Doc.Points)
    if (!P.Ok) {
      std::printf("FAILED   %s: %s\n", P.Cache.str().c_str(),
                  P.Error.c_str());
      ++Failed;
    }

  // Pick the axis level per level-count class: the one whose capacity
  // varies most across the class's points.
  std::map<unsigned, unsigned> AxisOf; ///< numLevels -> axis level.
  for (unsigned NumLevels : {1u, 2u}) {
    std::vector<std::set<uint64_t>> Caps(NumLevels);
    for (const SweepPoint &P : Doc.Points)
      if (P.Ok && P.Cache.numLevels() == NumLevels)
        for (unsigned L = 0; L < NumLevels; ++L)
          Caps[L].insert(P.Cache.Levels[L].SizeBytes);
    unsigned Axis = NumLevels - 1;
    for (unsigned L = 0; L < NumLevels; ++L)
      if (Caps[L].size() > Caps[Axis].size())
        Axis = L;
    AxisOf[NumLevels] = Axis;
  }

  // Group points into series and order rows by axis capacity.
  struct Series {
    std::vector<size_t> Points;
  };
  std::map<std::string, Series> BySeries;
  for (size_t I = 0; I < Doc.Points.size(); ++I) {
    const SweepPoint &P = Doc.Points[I];
    if (!P.Ok)
      continue;
    unsigned Axis = AxisOf[P.Cache.numLevels()];
    std::string Key;
    for (unsigned L = 0; L < P.Cache.numLevels(); ++L) {
      if (L != 0)
        Key += " + ";
      Key += "L" + std::to_string(L + 1) + "[" +
             levelDesc(P.Cache.Levels[L], L == Axis) + "]";
    }
    if (P.Cache.numLevels() == 2)
      Key += std::string(" (") + inclusionName(P.Cache.Inclusion) + ")";
    Key += "  axis: L" + std::to_string(Axis + 1) + " capacity";
    BySeries[Key].Points.push_back(I);
  }

  for (auto &[Key, S] : BySeries) {
    unsigned Axis = AxisOf[Doc.Points[S.Points.front()].Cache.numLevels()];
    std::stable_sort(S.Points.begin(), S.Points.end(),
                     [&](size_t A, size_t B) {
                       return Doc.Points[A].Cache.Levels[Axis].SizeBytes <
                              Doc.Points[B].Cache.Levels[Axis].SizeBytes;
                     });
    std::printf("\nseries   %s\n", Key.c_str());
    std::printf("%10s %14s %14s %10s %-16s %9s\n", "capacity",
                "L1-misses", "L2-misses", "ratio", "method", "time[s]");
    for (size_t I : S.Points) {
      const SweepPoint &P = Doc.Points[I];
      const SimStats &St = P.Stats;
      char L2Buf[24] = "-";
      if (St.NumLevels > 1)
        std::snprintf(L2Buf, sizeof(L2Buf), "%llu",
                      static_cast<unsigned long long>(
                          St.Level[1].Misses));
      // The headline ratio: misses of the LAST level over all accesses
      // (the hierarchy's traffic to memory), Fig. 9's y axis.
      double Ratio =
          St.Level[0].Accesses == 0
              ? 0.0
              : static_cast<double>(
                    St.Level[St.NumLevels - 1].Misses) /
                    static_cast<double>(St.Level[0].Accesses);
      std::printf("%10s %14llu %14s %9.3f%% %-16s %9.4f\n",
                  capacityStr(P.Cache.Levels[Axis].SizeBytes).c_str(),
                  static_cast<unsigned long long>(St.Level[0].Misses),
                  L2Buf, 100.0 * Ratio, sweepMethodName(P.Method),
                  St.Seconds);
    }
  }
  if (Failed) {
    std::printf("\n%zu point(s) FAILED\n", Failed);
    return 1;
  }
  return 0;
}

/// Renders a wcs-response document: the serving provenance (request
/// hash, store hit/miss split), then the embedded sweep through the
/// same tables as a plain wcs-sweep file.
int renderResponse(const SweepResponse &R, const std::string &Path) {
  std::printf("response %s  (request %s)\n", Path.c_str(),
              R.RequestHash.c_str());
  if (!R.Ok) {
    std::printf("REFUSED  %s\n", R.Error.c_str());
    return 1;
  }
  uint64_t Total = R.StoreHits + R.StoreMisses;
  std::printf("store    %llu/%llu points from store (%.1f%% hit rate), "
              "%llu simulated; store holds %llu entries\n",
              static_cast<unsigned long long>(R.StoreHits),
              static_cast<unsigned long long>(Total),
              Total == 0 ? 0.0 : 100.0 * static_cast<double>(R.StoreHits) /
                                     static_cast<double>(Total),
              static_cast<unsigned long long>(R.StoreMisses),
              static_cast<unsigned long long>(R.StoreEntries));
  return renderSweep(R.Sweep, Path);
}

//===----------------------------------------------------------------------===//
// Metrics-document rendering (single-file mode)
//===----------------------------------------------------------------------===//

/// Renders one latency histogram as labeled buckets with a bar chart.
void renderHistogram(const MetricsDoc::Hist &H) {
  std::printf("\n%s  (%llu observations, total %.4f s)\n", H.Name.c_str(),
              static_cast<unsigned long long>(H.Count), H.Sum);
  uint64_t Max = 0;
  for (uint64_t C : H.Counts)
    Max = std::max(Max, C);
  for (size_t B = 0; B < H.Counts.size(); ++B) {
    char Label[32];
    if (B < H.Bounds.size())
      std::snprintf(Label, sizeof(Label), "<= %g s", H.Bounds[B]);
    else
      std::snprintf(Label, sizeof(Label), " > %g s",
                    H.Bounds.empty() ? 0.0 : H.Bounds.back());
    int Bar =
        Max == 0 ? 0 : static_cast<int>(40 * H.Counts[B] / Max);
    std::printf("  %-12s %8llu  %.*s\n", Label,
                static_cast<unsigned long long>(H.Counts[B]), Bar,
                "########################################");
  }
}

/// Renders a wcs-metrics document (wcs-serve --metrics): the store hit
/// rate, the top spans by cumulative time, and every histogram.
int renderMetrics(const MetricsDoc &D, const std::string &Path) {
  std::printf("metrics  %s%s\n", Path.c_str(),
              D.Tool.empty() ? "" : ("  (" + D.Tool + ")").c_str());

  // How much serving work the store and in-flight sharing absorbed.
  uint64_t Hits = D.counter("serve.store_hits");
  uint64_t InFlight = D.counter("serve.inflight_hits");
  uint64_t Misses = D.counter("serve.store_misses");
  uint64_t Total = Hits + InFlight + Misses;
  if (Total > 0)
    std::printf("store    %llu of %llu points shared (%.1f%% hit rate: "
                "%llu store, %llu in-flight), %llu computed\n",
                static_cast<unsigned long long>(Hits + InFlight),
                static_cast<unsigned long long>(Total),
                100.0 * static_cast<double>(Hits + InFlight) /
                    static_cast<double>(Total),
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(InFlight),
                static_cast<unsigned long long>(Misses));

  if (!D.Spans.empty()) {
    std::vector<const MetricsDoc::SpanAgg *> Top;
    Top.reserve(D.Spans.size());
    for (const MetricsDoc::SpanAgg &S : D.Spans)
      Top.push_back(&S);
    std::stable_sort(Top.begin(), Top.end(),
                     [](const auto *A, const auto *B) {
                       return A->TotalSeconds > B->TotalSeconds;
                     });
    size_t N = std::min<size_t>(Top.size(), 10);
    std::printf("\ntop %zu spans by cumulative time:\n", N);
    std::printf("  %-28s %10s %12s %12s\n", "span", "count", "total[s]",
                "mean[ms]");
    for (size_t I = 0; I < N; ++I) {
      const MetricsDoc::SpanAgg &S = *Top[I];
      std::printf("  %-28s %10llu %12.4f %12.4f\n", S.Name.c_str(),
                  static_cast<unsigned long long>(S.Count),
                  S.TotalSeconds,
                  S.Count == 0 ? 0.0
                               : 1e3 * S.TotalSeconds /
                                     static_cast<double>(S.Count));
    }
    if (Top.size() > N)
      std::printf("  (%zu more)\n", Top.size() - N);
  }

  for (const MetricsDoc::Hist &H : D.Histograms)
    renderHistogram(H);

  if (!D.Counters.empty()) {
    std::printf("\ncounters:\n");
    for (const auto &[Name, V] : D.Counters)
      std::printf("  %-32s %llu\n", Name.c_str(),
                  static_cast<unsigned long long>(V));
  }
  if (!D.Gauges.empty()) {
    std::printf("\ngauges:\n");
    for (const auto &[Name, V] : D.Gauges)
      std::printf("  %-32s %g\n", Name.c_str(), V);
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string BasePath, CurPath;
  bool Check = false, Quiet = false;
  double Threshold = 1.25;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--check") {
      Check = true;
    } else if (A == "--threshold") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --threshold needs an argument\n");
        return 2;
      }
      char *End = nullptr;
      Threshold = std::strtod(argv[++I], &End);
      // !(> 0) also rejects NaN, and !isfinite rejects inf: either would
      // silently disable the time gate (every comparison false / true).
      if (!End || *End != '\0' || !(Threshold > 0) ||
          !std::isfinite(Threshold)) {
        std::fprintf(stderr, "error: bad --threshold '%s'\n", argv[I]);
        return 2;
      }
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else if (BasePath.empty()) {
      BasePath = A;
    } else if (CurPath.empty()) {
      CurPath = A;
    } else {
      std::fprintf(stderr, "error: more than two files given\n");
      usage();
      return 2;
    }
  }
  if (BasePath.empty()) {
    usage();
    return 2;
  }
  if (CurPath.empty()) {
    // Single-file mode: render a wcs-sweep or wcs-response document,
    // told apart by the schema member.
    if (Check) {
      std::fprintf(stderr,
                   "error: --check diffs two results files; a single "
                   "sweep/response file only renders\n");
      return 2;
    }
    json::Value V;
    std::string Err;
    if (!json::readFile(BasePath, V, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 2;
    }
    const json::Value *Schema = V.find("schema");
    if (Schema && Schema->isString() &&
        Schema->asString() == ResponseSchemaName) {
      SweepResponse Resp;
      if (!fromJson(V, Resp, &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", BasePath.c_str(),
                     Err.c_str());
        return 2;
      }
      return renderResponse(Resp, BasePath);
    }
    if (Schema && Schema->isString() &&
        Schema->asString() == MetricsSchemaName) {
      MetricsDoc MD;
      if (!fromJson(V, MD, &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", BasePath.c_str(),
                     Err.c_str());
        return 2;
      }
      return renderMetrics(MD, BasePath);
    }
    SweepDoc Doc;
    if (!fromJson(V, Doc, &Err)) {
      std::fprintf(stderr,
                   "error: %s: %s\n(single-file mode renders wcs-sweep "
                   "and wcs-response documents; diffing results needs "
                   "two files)\n",
                   BasePath.c_str(), Err.c_str());
      return 2;
    }
    return renderSweep(Doc, BasePath);
  }

  ResultsDoc Base, Cur;
  std::string Err;
  if (!readResultsFile(BasePath, Base, &Err) ||
      !readResultsFile(CurPath, Cur, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  // Comparing runs of different problem sizes would surface as counter
  // drift on every entry — a configuration error, not a simulator
  // regression, so refuse it outright.
  if (!Base.SizeName.empty() && !Cur.SizeName.empty() &&
      Base.SizeName != Cur.SizeName) {
    std::fprintf(stderr,
                 "error: problem-size mismatch: baseline is %s, current "
                 "is %s; results are only comparable at the same size\n",
                 Base.SizeName.c_str(), Cur.SizeName.c_str());
    return 2;
  }

  std::printf("baseline %s  (%s%s%s, %zu entries)\n", BasePath.c_str(),
              Base.Tool.c_str(), Base.SizeName.empty() ? "" : " ",
              Base.SizeName.c_str(), Base.Entries.size());
  std::printf("current  %s  (%s%s%s, %zu entries)\n\n", CurPath.c_str(),
              Cur.Tool.c_str(), Cur.SizeName.empty() ? "" : " ",
              Cur.SizeName.c_str(), Cur.Entries.size());

  std::printf("%-40s %14s %11s %10s %10s %9s\n", "entry", "accesses",
              "miss-delta", "base[s]", "cur[s]", "speedup");

  size_t Compared = 0, Drifted = 0, Missing = 0, Failed = 0;
  GeoMean RatioMean;
  // Log-space variance of the geomean ratio, accumulated from each
  // pair's standard errors (first-order: Var[log(c/b)] ~ (se_c/c)^2 +
  // (se_b/b)^2). Zero for sample-free files.
  double SumVarLog = 0.0;
  for (const ResultEntry &B : Base.Entries) {
    const ResultEntry *C = Cur.find(B.Tag);
    if (!C) {
      std::printf("%-40s MISSING from current\n", B.Tag.c_str());
      ++Missing;
      continue;
    }
    if (!B.Ok || !C->Ok) {
      std::printf("%-40s FAILED (%s)\n", B.Tag.c_str(),
                  !C->Ok ? C->Error.c_str() : "baseline entry failed");
      ++Failed;
      continue;
    }
    ++Compared;
    bool Equal = countersEqual(B.Stats, C->Stats);
    if (!Equal)
      ++Drifted;
    int64_t MissDelta = static_cast<int64_t>(totalMisses(C->Stats)) -
                        static_cast<int64_t>(totalMisses(B.Stats));
    // Every compared entry feeds the time gate: degenerate timings are
    // clamped (with a warning) instead of silently dropped or allowed
    // to poison the geomean with NaN. Multi-sample entries compare by
    // their means and contribute their standard errors to the noise
    // allowance.
    Timing BaseT = entryTiming(B), CurT = entryTiming(*C);
    double BaseS = BaseT.Mean, CurS = CurT.Mean;
    bool Clamped = clampSeconds(B.Tag.c_str(), "baseline", BaseS);
    Clamped |= clampSeconds(B.Tag.c_str(), "current", CurS);
    double Ratio = CurS / BaseS;
    if (Clamped)
      Ratio = std::min(std::max(Ratio, 1.0 / MaxGateRatio), MaxGateRatio);
    RatioMean.add(Ratio);
    if (Ratio > 0 && !Clamped) {
      double RelBase = BaseT.StdErr / BaseS, RelCur = CurT.StdErr / CurS;
      SumVarLog += RelBase * RelBase + RelCur * RelCur;
    }
    if (!Quiet || !Equal)
      std::printf("%-40s %14llu %11lld %10.4f %10.4f %8.2fx%s%s\n",
                  B.Tag.c_str(),
                  static_cast<unsigned long long>(
                      C->Stats.totalAccesses()),
                  static_cast<long long>(MissDelta), BaseT.Mean,
                  CurT.Mean, Ratio > 0 ? 1.0 / Ratio : 0.0,
                  BaseT.N > 1 || CurT.N > 1 ? "  (mean)" : "",
                  Equal ? "" : "  COUNTER DRIFT");
  }

  size_t Extra = 0;
  for (const ResultEntry &C : Cur.Entries)
    if (!Base.find(C.Tag))
      ++Extra;

  // Neutral 1.0 when no pair had usable timings (nothing to gate on).
  double GeoRatio = RatioMean.count() ? RatioMean.value() : 1.0;
  // 2-sigma one-sided noise allowance on the geomean: with per-rep
  // samples the gate only trips when the regression clears both the
  // threshold AND what measurement noise alone could explain. Without
  // samples SigmaGeo is 0 and the gate is exactly the classic one.
  double SigmaGeo =
      RatioMean.count() ? std::sqrt(SumVarLog) / RatioMean.count() : 0.0;
  double Gate = Threshold * std::exp(2.0 * SigmaGeo);
  std::printf("\ncompared %zu entries: %zu counter drift(s), %zu missing, "
              "%zu failed, %zu new\n",
              Compared, Drifted, Missing, Failed, Extra);
  std::printf("geomean time ratio current/baseline: %.3f "
              "(speedup %.2fx; gate threshold %.2f%s)\n",
              GeoRatio, GeoRatio > 0 ? 1.0 / GeoRatio : 0.0, Threshold,
              SigmaGeo > 0 ? " before noise allowance" : "");
  if (SigmaGeo > 0)
    std::printf("noise    geomean sigma %.4f from per-rep samples; "
                "effective gate %.3f (threshold x 2-sigma allowance)\n",
                SigmaGeo, Gate);

  if (!Check)
    return 0;
  bool Bad = false;
  if (Drifted) {
    std::printf("CHECK FAIL: %zu entries changed deterministic counters\n",
                Drifted);
    Bad = true;
  }
  if (Missing) {
    std::printf("CHECK FAIL: %zu baseline entries missing from current\n",
                Missing);
    Bad = true;
  }
  if (Failed) {
    std::printf("CHECK FAIL: %zu entries failed\n", Failed);
    Bad = true;
  }
  if (GeoRatio > Gate) {
    std::printf("CHECK FAIL: geomean time ratio %.3f exceeds %s %.3f\n",
                GeoRatio,
                SigmaGeo > 0 ? "noise-adjusted gate" : "threshold", Gate);
    Bad = true;
  }
  if (!Bad)
    std::printf("CHECK OK\n");
  return Bad ? 1 : 0;
}
