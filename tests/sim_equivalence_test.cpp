//===- tests/sim_equivalence_test.cpp - Warping soundness property --------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The central soundness property of the whole system: warping simulation
// and non-warping simulation produce identical access and miss counts at
// every cache level, for every replacement policy, over randomized
// polyhedral programs (random nests, triangular bounds, guards, strided
// subscripts) and randomized cache geometries.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;
using testutil::generateProgram;
using testutil::randomHierarchy;

namespace {

struct GenConfig {
  unsigned Seed;
  PolicyKind Policy;
  bool TwoLevel;
};

class RandomProgramEquivalence : public ::testing::TestWithParam<GenConfig> {};

TEST_P(RandomProgramEquivalence, WarpingEqualsConcrete) {
  GenConfig G = GetParam();
  std::mt19937 Rng(G.Seed);
  for (int Trial = 0; Trial < 12; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    HierarchyConfig H = randomHierarchy(Rng, G.Policy, G.TwoLevel);
    // Aggressive warping bounds to exercise the machinery on small loops.
    SimOptions O;
    O.Warp.MinProbesForLearning = 1000000; // Never disable probing.
    O.Warp.EnableProfitGuard = false;

    ConcreteSimulator Ref(P, H);
    WarpingSimulator Warp(P, H, O);
    SimStats R = Ref.run(), W = Warp.run();

    ASSERT_EQ(W.totalAccesses(), R.totalAccesses())
        << "trial " << Trial << "\n"
        << P.str() << H.str();
    ASSERT_EQ(W.Level[0].Misses, R.Level[0].Misses)
        << "trial " << Trial << "\n"
        << P.str() << H.str();
    if (G.TwoLevel) {
      ASSERT_EQ(W.Level[1].Accesses, R.Level[1].Accesses)
          << "trial " << Trial << "\n"
          << P.str() << H.str();
      ASSERT_EQ(W.Level[1].Misses, R.Level[1].Misses)
          << "trial " << Trial << "\n"
          << P.str() << H.str();
    }
    ASSERT_EQ(W.SimulatedAccesses + W.WarpedAccesses, W.totalAccesses());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgramEquivalence,
    ::testing::Values(GenConfig{101, PolicyKind::Lru, false},
                      GenConfig{102, PolicyKind::Lru, true},
                      GenConfig{201, PolicyKind::Fifo, false},
                      GenConfig{202, PolicyKind::Fifo, true},
                      GenConfig{301, PolicyKind::Plru, false},
                      GenConfig{302, PolicyKind::Plru, true},
                      GenConfig{401, PolicyKind::QuadAgeLru, false},
                      GenConfig{402, PolicyKind::QuadAgeLru, true}),
    [](const ::testing::TestParamInfo<GenConfig> &Info) {
      return std::string(policyName(Info.param.Policy)) +
             (Info.param.TwoLevel ? "_L2" : "_L1") + "_s" +
             std::to_string(Info.param.Seed);
    });

/// Dense streaming programs exercise the rotating-match path heavily;
/// run them over every policy with several block/element ratios.
class StreamEquivalence
    : public ::testing::TestWithParam<std::tuple<PolicyKind, int>> {};

TEST_P(StreamEquivalence, RotatingWarpsAreExact) {
  auto [K, ElemBytes] = GetParam();
  ScopBuilder B("stream");
  unsigned A = B.addArray("A", ElemBytes, {6000});
  unsigned C = B.addArray("C", ElemBytes, {6000});
  B.beginLoop("i", B.cst(2), B.cst(5500));
  B.read(A, {B.iter("i") - B.cst(2)});
  B.read(A, {B.iter("i") + B.cst(1)});
  B.write(C, {B.iter("i")});
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  ASSERT_EQ(Err, "");

  CacheConfig Cfg;
  Cfg.BlockBytes = 64;
  Cfg.Assoc = 4;
  Cfg.SizeBytes = 8 * 4 * 64;
  Cfg.Policy = K;
  HierarchyConfig H = HierarchyConfig::singleLevel(Cfg);
  ConcreteSimulator Ref(P, H);
  WarpingSimulator Warp(P, H);
  SimStats R = Ref.run(), W = Warp.run();
  EXPECT_EQ(W.Level[0].Misses, R.Level[0].Misses) << policyName(K);
  EXPECT_EQ(W.totalAccesses(), R.totalAccesses());
  EXPECT_GE(W.Warps, 1u) << "dense streams must warp under "
                         << policyName(K);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, StreamEquivalence,
    ::testing::Combine(::testing::Values(PolicyKind::Lru, PolicyKind::Fifo,
                                         PolicyKind::Plru,
                                         PolicyKind::QuadAgeLru),
                       ::testing::Values(4, 8, 64)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyKind, int>> &Info) {
      return std::string(policyName(std::get<0>(Info.param))) + "_e" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
