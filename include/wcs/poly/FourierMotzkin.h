//===- wcs/poly/FourierMotzkin.h - Rational FM elimination ------*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fourier-Motzkin elimination over systems of linear inequalities with
/// integer coefficients. This is the engine behind the warping
/// applicability checks (FurthestByDomains / FurthestByOverlap, paper
/// Sec. 5.3): they reduce to "minimize one variable subject to a linear
/// system", solved here over the rationals.
///
/// Rational relaxation is sound for warping: it can only report a conflict
/// at an iteration *no later* than the true integer conflict, which shrinks
/// the warp distance but never admits an incorrect warp. Coefficient
/// overflow is detected and reported as `Unknown`, which callers treat as
/// an immediate conflict (again sound).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_POLY_FOURIERMOTZKIN_H
#define WCS_POLY_FOURIERMOTZKIN_H

#include <cstdint>
#include <optional>
#include <vector>

namespace wcs {

/// An exact rational number with int64 numerator/denominator.
struct Rational {
  int64_t Num = 0;
  int64_t Den = 1; ///< Always positive.

  Rational() = default;
  Rational(int64_t N, int64_t D);
  static Rational fromInt(int64_t N) { return Rational(N, 1); }

  int64_t floor() const;
  int64_t ceil() const;

  friend bool operator<(const Rational &A, const Rational &B) {
    return static_cast<__int128>(A.Num) * B.Den <
           static_cast<__int128>(B.Num) * A.Den;
  }
  friend bool operator<=(const Rational &A, const Rational &B) {
    return !(B < A);
  }
  friend bool operator==(const Rational &A, const Rational &B) {
    return A.Num == B.Num && A.Den == B.Den;
  }
};

/// Result category of a rational feasibility / optimization query.
enum class FMStatus {
  Feasible,   ///< The system has a rational solution.
  Infeasible, ///< The system is rationally (hence integrally) empty.
  Unknown,    ///< Coefficient overflow; treat conservatively.
};

/// A system of linear inequalities `a . x + c >= 0` over NumVars variables.
class LinearSystem {
public:
  explicit LinearSystem(unsigned NumVars) : NumVars(NumVars) {}

  unsigned numVars() const { return NumVars; }
  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }

  /// Adds the inequality `Coeffs . x + Const >= 0`.
  void addGE(std::vector<int64_t> Coeffs, int64_t Const);

  /// Adds the equality `Coeffs . x + Const == 0` (as two inequalities).
  void addEQ(const std::vector<int64_t> &Coeffs, int64_t Const);

  /// Rational feasibility via elimination of all variables.
  FMStatus feasible() const;

  /// Computes the rational minimum of variable \p Var subject to the
  /// system. On Feasible, \p Min is set if the variable is bounded below
  /// (unset means unbounded below).
  FMStatus minimize(unsigned Var, std::optional<Rational> &Min) const;

private:
  struct Row {
    std::vector<int64_t> Coeffs;
    int64_t Const;
  };

  /// Eliminates variable \p Var from \p Rows in place. Returns false on
  /// coefficient overflow.
  static bool eliminate(std::vector<Row> &Rows, unsigned Var);

  /// Normalizes a row by the gcd of its coefficients. Returns false if a
  /// coefficient does not fit int64.
  static bool normalize(Row &R);

  unsigned NumVars;
  std::vector<Row> Rows;
};

} // namespace wcs

#endif // WCS_POLY_FOURIERMOTZKIN_H
