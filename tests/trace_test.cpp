//===- tests/trace_test.cpp - Trace substrate unit tests ------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Frontend.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/trace/StackDistance.h"
#include "wcs/trace/TraceGenerator.h"
#include "wcs/trace/TraceSimulator.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;

namespace {

ScopProgram smallKernel() {
  ParseResult R = parseScop(R"(
    param N = 300;
    double s; double A[N]; double B[N];
    for (t = 0; t < 3; t++)
      for (i = 1; i < N; i++) {
        B[i] = A[i] + A[i-1];
        s += B[i];
      }
  )");
  EXPECT_TRUE(R.ok()) << R.message();
  return std::move(R.Program);
}

TEST(TraceGenerator, StreamedAndChunkedAgree) {
  ScopProgram P = smallKernel();
  TraceOptions TO;
  TO.IncludeScalars = true;
  std::vector<TraceRecord> Streamed;
  uint64_t N = generateTrace(
      P, TO, [&](const TraceRecord &R) { Streamed.push_back(R); });
  EXPECT_EQ(N, Streamed.size());
  // 3 reads + 1 write for stmt 1; scalar read + B read + scalar write for
  // stmt 2 => 7 per iteration, hmm: B[i]=A[i]+A[i-1] is 2 reads + 1
  // write; s += B[i] is read s, read B[i], write s.
  EXPECT_EQ(N, 3u * 299u * 6u);

  ChunkedTraceGenerator Gen(P, TO, /*ChunkRecords=*/777);
  std::vector<TraceRecord> Chunked;
  for (;;) {
    const std::vector<TraceRecord> &C = Gen.nextChunk();
    if (C.empty())
      break;
    Chunked.insert(Chunked.end(), C.begin(), C.end());
  }
  ASSERT_EQ(Chunked.size(), Streamed.size());
  for (size_t I = 0; I < Streamed.size(); ++I) {
    EXPECT_EQ(Chunked[I].Addr, Streamed[I].Addr) << I;
    EXPECT_EQ(Chunked[I].IsWrite, Streamed[I].IsWrite) << I;
    EXPECT_EQ(Chunked[I].Size, Streamed[I].Size) << I;
  }
}

TEST(TraceGenerator, ScalarExclusionMatchesSimulatorAccounting) {
  ScopProgram P = smallKernel();
  TraceOptions TO;
  TO.IncludeScalars = false;
  uint64_t N = generateTrace(P, TO, [](const TraceRecord &) {});
  // Without scalars: A[i], A[i-1], B[i] write, B[i] read.
  EXPECT_EQ(N, 3u * 299u * 4u);
}

TEST(TraceSimulator, AgreesWithTreeSimulatorWithoutWritebacks) {
  ScopProgram P = smallKernel();
  CacheConfig L1;
  L1.Assoc = 2;
  L1.BlockBytes = 64;
  L1.SizeBytes = 4 * 2 * 64;
  L1.Policy = PolicyKind::Lru;
  CacheConfig L2 = L1;
  L2.SizeBytes *= 4;
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);

  TraceSimOptions TSO;
  TSO.IncludeScalars = false;
  TSO.PropagateWritebacks = false;
  TraceSimulator TS(H, TSO);
  TraceSimResult TR = TS.runOnProgram(P);

  ConcreteSimulator Ref(P, H);
  SimStats R = Ref.run();
  EXPECT_EQ(TR.Stats.totalAccesses(), R.totalAccesses());
  EXPECT_EQ(TR.Stats.Level[0].Misses, R.Level[0].Misses);
  EXPECT_EQ(TR.Stats.Level[1].Accesses, R.Level[1].Accesses);
  EXPECT_EQ(TR.Stats.Level[1].Misses, R.Level[1].Misses);
  EXPECT_EQ(TR.Writebacks, 0u);
}

TEST(TraceSimulator, WritebacksOnlyAddL2Traffic) {
  ScopProgram P = smallKernel();
  CacheConfig L1;
  L1.Assoc = 1;
  L1.BlockBytes = 64;
  L1.SizeBytes = 2 * 64;
  L1.Policy = PolicyKind::Lru;
  CacheConfig L2 = L1;
  L2.SizeBytes *= 8;
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);

  TraceSimOptions A;
  A.PropagateWritebacks = true;
  TraceSimOptions B = A;
  B.PropagateWritebacks = false;
  TraceSimulator SA(H, A), SB(H, B);
  TraceSimResult RA = SA.runOnProgram(P), RB = SB.runOnProgram(P);
  EXPECT_EQ(RA.Stats.Level[0].Misses, RB.Stats.Level[0].Misses)
      << "write-backs never change L1 behavior";
  EXPECT_GT(RA.Writebacks, 0u) << "dirty victims must occur here";
}

TEST(StackDistance, MatchesBruteForceLruStack) {
  // Reference: explicit LRU stack simulation over random block traces.
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<BlockId> Trace;
    std::uniform_int_distribution<BlockId> Blocks(0, 30);
    for (int I = 0; I < 600; ++I)
      Trace.push_back(Blocks(Rng));

    StackDistanceProfiler Prof;
    std::vector<BlockId> Stack; // Front = most recent.
    std::vector<uint64_t> RefHist;
    uint64_t RefColds = 0;
    for (BlockId B : Trace) {
      auto It = std::find(Stack.begin(), Stack.end(), B);
      if (It == Stack.end()) {
        ++RefColds;
      } else {
        uint64_t D = static_cast<uint64_t>(It - Stack.begin());
        if (RefHist.size() <= D)
          RefHist.resize(D + 1, 0);
        ++RefHist[D];
        Stack.erase(It);
      }
      Stack.insert(Stack.begin(), B);
      Prof.accessBlock(B);
    }
    EXPECT_EQ(Prof.coldAccesses(), RefColds);
    ASSERT_EQ(Prof.histogram().size(), RefHist.size());
    for (size_t D = 0; D < RefHist.size(); ++D)
      EXPECT_EQ(Prof.histogram()[D], RefHist[D]) << "distance " << D;
  }
}

TEST(StackDistance, MissesMatchFullyAssociativeLruSimulation) {
  ScopProgram P = smallKernel();
  StackDistanceProfiler Prof = profileProgram(P, 64);
  for (unsigned Lines : {1u, 2u, 4u, 8u, 16u}) {
    CacheConfig C;
    C.Assoc = Lines;
    C.BlockBytes = 64;
    C.SizeBytes = static_cast<uint64_t>(Lines) * 64;
    C.Policy = PolicyKind::Lru;
    ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(C));
    SimStats S = Sim.run();
    EXPECT_EQ(Prof.missesForCache(C), S.Level[0].Misses)
        << Lines << " lines";
  }
}

TEST(StackDistance, StackHistogramIsMonotoneInCacheSize) {
  ScopProgram P = smallKernel();
  StackDistanceProfiler Prof = profileProgram(P, 64);
  uint64_t Prev = UINT64_MAX;
  for (unsigned K = 1; K <= 64; K *= 2) {
    uint64_t M = Prof.missesForAssoc(K);
    EXPECT_LE(M, Prev) << "LRU inclusion property";
    Prev = M;
  }
  EXPECT_GE(Prof.missesForAssoc(1u << 20), Prof.coldAccesses());
}

} // namespace
