//===- src/support/Telemetry.cpp - Spans, metrics, one clock --------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Telemetry.h"

#include "wcs/support/JsonReader.h"

#include <algorithm>
#include <cmath>

using namespace wcs;
using namespace wcs::telemetry;
using json::Value;

//===----------------------------------------------------------------------===//
// The tracer: per-thread rings behind one global registry
//===----------------------------------------------------------------------===//

namespace {

/// One completed span as stored in a ring. Times are nanoseconds since
/// the trace epoch; the name is copied at completion so a drained
/// trace never dangles.
struct SpanEvent {
  std::string Name;
  int64_t StartNs = 0;
  int64_t DurNs = 0;
  std::vector<std::pair<std::string, std::string>> Args;
};

/// One thread's ring. Only the owning thread pushes; any thread may
/// drain. The per-buffer mutex makes both sides whole-event atomic --
/// a drained event is never torn -- and is uncontended except during
/// an actual drain.
struct ThreadBuffer {
  std::mutex Mu;
  unsigned Tid = 0;
  std::string Name;
  std::vector<SpanEvent> Ring;
  size_t Capacity = 0;
  size_t Head = 0;      ///< Oldest slot once the ring is full.
  uint64_t Pushed = 0;  ///< Lifetime pushes; ring holds the newest.
  uint64_t Drained = 0; ///< Events already handed out by a drain.

  void push(SpanEvent E) {
    std::lock_guard<std::mutex> L(Mu);
    if (Capacity == 0)
      return;
    if (Ring.size() < Capacity) {
      Ring.push_back(std::move(E));
    } else {
      Ring[Head] = std::move(E); // The oldest slot dies, whole.
      Head = (Head + 1) % Capacity;
    }
    ++Pushed;
  }
};

struct TracerState {
  std::mutex Mu;
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  TimePoint Epoch;
  bool EpochSet = false;
  size_t RingCapacity = 8192;
  unsigned NextTid = 0;
  uint64_t Dropped = 0; ///< Ring-overflow losses across all drains.
};

TracerState &tracerState() {
  static TracerState S;
  return S;
}

thread_local std::shared_ptr<ThreadBuffer> LocalBuf;
thread_local std::string PendingThreadName;

/// The calling thread's ring, registering it on first use.
ThreadBuffer &localBuffer() {
  if (!LocalBuf) {
    TracerState &S = tracerState();
    auto B = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> L(S.Mu);
    B->Tid = S.NextTid++;
    B->Capacity = S.RingCapacity;
    B->Name = PendingThreadName.empty()
                  ? "thread-" + std::to_string(B->Tid)
                  : PendingThreadName;
    S.Buffers.push_back(B);
    LocalBuf = std::move(B);
  }
  return *LocalBuf;
}

} // namespace

void telemetry::enableTracing(size_t RingCapacity) {
  TracerState &S = tracerState();
  {
    std::lock_guard<std::mutex> L(S.Mu);
    if (RingCapacity != 0)
      S.RingCapacity = RingCapacity;
    if (!S.EpochSet) {
      S.Epoch = now();
      S.EpochSet = true;
    }
  }
  detail::Flags.fetch_or(TraceSpans | AggregateSpans,
                         std::memory_order_relaxed);
}

void telemetry::enableSpanAggregation() {
  detail::Flags.fetch_or(AggregateSpans, std::memory_order_relaxed);
}

void telemetry::disableTracing() {
  detail::Flags.store(0, std::memory_order_relaxed);
  TracerState &S = tracerState();
  std::lock_guard<std::mutex> L(S.Mu);
  for (auto &B : S.Buffers) {
    std::lock_guard<std::mutex> BL(B->Mu);
    B->Ring.clear();
    B->Head = 0;
    B->Pushed = 0;
    B->Drained = 0;
  }
  S.Dropped = 0;
  S.EpochSet = false;
}

void telemetry::setThreadName(std::string Name) {
  PendingThreadName = Name;
  if (LocalBuf) {
    std::lock_guard<std::mutex> L(LocalBuf->Mu);
    LocalBuf->Name = std::move(Name);
  }
}

void Span::finish() {
  TimePoint End = now();
  double Seconds = secondsBetween(Start, End);
  if (F & AggregateSpans)
    registry().recordSpan(Name, Seconds);
  if (!(F & TraceSpans))
    return;
  TracerState &S = tracerState();
  TimePoint Epoch;
  {
    std::lock_guard<std::mutex> L(S.Mu);
    if (!S.EpochSet)
      return; // disableTracing raced this span; drop it.
    Epoch = S.Epoch;
  }
  SpanEvent E;
  E.Name = Name;
  E.StartNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Start - Epoch)
                  .count();
  E.DurNs =
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count();
  E.Args = std::move(Args);
  localBuffer().push(std::move(E));
}

TraceSnapshot telemetry::drainTrace() {
  TracerState &S = tracerState();
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  {
    std::lock_guard<std::mutex> L(S.Mu);
    Buffers = S.Buffers;
  }
  TraceSnapshot Snap;
  uint64_t NewlyDropped = 0;
  for (auto &B : Buffers) {
    std::lock_guard<std::mutex> BL(B->Mu);
    size_t N = B->Ring.size();
    // Everything before the ring's oldest surviving event overflowed.
    uint64_t Oldest = B->Pushed - N;
    if (Oldest > B->Drained)
      NewlyDropped += Oldest - B->Drained;
    for (size_t I = 0; I < N; ++I) {
      // Chronological: the ring's oldest slot is Head once it has
      // wrapped, 0 before.
      size_t Idx = N < B->Capacity ? I : (B->Head + I) % B->Capacity;
      SpanEvent &E = B->Ring[Idx];
      DrainedSpan D;
      D.Name = std::move(E.Name);
      D.Tid = B->Tid;
      D.ThreadName = B->Name;
      D.StartSeconds = E.StartNs * 1e-9;
      D.DurSeconds = E.DurNs * 1e-9;
      D.Args = std::move(E.Args);
      Snap.Spans.push_back(std::move(D));
    }
    B->Ring.clear();
    B->Head = 0;
    B->Drained = B->Pushed;
  }
  {
    std::lock_guard<std::mutex> L(S.Mu);
    S.Dropped += NewlyDropped;
    Snap.Dropped = S.Dropped;
  }
  std::stable_sort(Snap.Spans.begin(), Snap.Spans.end(),
                   [](const DrainedSpan &A, const DrainedSpan &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.StartSeconds != B.StartSeconds)
                       return A.StartSeconds < B.StartSeconds;
                     return A.DurSeconds > B.DurSeconds; // Parent first.
                   });
  return Snap;
}

json::Value telemetry::traceToJson(const TraceSnapshot &Snap) {
  Value Events = Value::array();
  // One thread_name metadata record per lane, so the viewer labels
  // them; emit each lane once.
  std::vector<unsigned> Seen;
  for (const DrainedSpan &D : Snap.Spans) {
    if (std::find(Seen.begin(), Seen.end(), D.Tid) == Seen.end()) {
      Seen.push_back(D.Tid);
      Value M = Value::object();
      M.set("ph", "M");
      M.set("name", "thread_name");
      M.set("pid", 1);
      M.set("tid", static_cast<uint64_t>(D.Tid));
      Value MA = Value::object();
      MA.set("name", D.ThreadName);
      M.set("args", std::move(MA));
      Events.push(std::move(M));
    }
    Value E = Value::object();
    E.set("ph", "X");
    E.set("name", D.Name);
    E.set("pid", 1);
    E.set("tid", static_cast<uint64_t>(D.Tid));
    E.set("ts", D.StartSeconds * 1e6);  // Trace-event time unit: us.
    E.set("dur", D.DurSeconds * 1e6);
    if (!D.Args.empty()) {
      Value A = Value::object();
      for (const auto &[K, V] : D.Args)
        A.set(K.c_str(), V);
      E.set("args", std::move(A));
    }
    Events.push(std::move(E));
  }
  Value Top = Value::object();
  Top.set("traceEvents", std::move(Events));
  Top.set("displayTimeUnit", "ms");
  if (Snap.Dropped > 0)
    Top.set("wcsDroppedSpans", Snap.Dropped);
  return Top;
}

bool telemetry::writeTraceFile(const std::string &Path, std::string *Err) {
  return json::writeFile(Path, traceToJson(drainTrace()), Err);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> Bounds)
    : Bounds(std::move(Bounds)), Counts(this->Bounds.size() + 1) {}

void Histogram::observe(double X) {
  // First bound >= X is the bucket: a value exactly on a boundary
  // belongs to that boundary's bucket, anything above every bound to
  // the overflow bucket.
  size_t I = std::lower_bound(Bounds.begin(), Bounds.end(), X) -
             Bounds.begin();
  Counts[I].fetch_add(1, std::memory_order_relaxed);
  Num.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(X, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::vector<uint64_t> Out(Counts.size());
  for (size_t I = 0; I < Counts.size(); ++I)
    Out[I] = Counts[I].load(std::memory_order_relaxed);
  return Out;
}

double Histogram::sum() const {
  return Sum.load(std::memory_order_relaxed);
}

const std::vector<double> &telemetry::defaultLatencyBounds() {
  static const std::vector<double> B = {1e-4, 1e-3, 1e-2, 0.1, 1.0,
                                        10.0, 100.0};
  return B;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name,
                               const std::vector<double> &Bounds) {
  std::lock_guard<std::mutex> L(Mu);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(Bounds);
  return *Slot;
}

void Registry::recordSpan(const char *Name, double Seconds) {
  std::lock_guard<std::mutex> L(Mu);
  SpanAgg &A = SpanAggs[Name];
  ++A.Count;
  A.TotalSeconds += Seconds;
}

MetricsDoc Registry::snapshot(std::string Tool) const {
  MetricsDoc D;
  D.Tool = std::move(Tool);
  std::lock_guard<std::mutex> L(Mu);
  for (const auto &[Name, C] : Counters)
    D.Counters.emplace_back(Name, C->value());
  for (const auto &[Name, G] : Gauges)
    D.Gauges.emplace_back(Name, G->value());
  for (const auto &[Name, H] : Histograms) {
    MetricsDoc::Hist Out;
    Out.Name = Name;
    Out.Bounds = H->bounds();
    Out.Counts = H->bucketCounts();
    Out.Count = H->count();
    Out.Sum = H->sum();
    D.Histograms.push_back(std::move(Out));
  }
  for (const auto &[Name, A] : SpanAggs) {
    MetricsDoc::SpanAgg Out;
    Out.Name = Name;
    Out.Count = A.Count;
    Out.TotalSeconds = A.TotalSeconds;
    D.Spans.push_back(std::move(Out));
  }
  return D;
}

Registry &telemetry::registry() {
  static Registry R;
  return R;
}

//===----------------------------------------------------------------------===//
// The wcs-metrics document
//===----------------------------------------------------------------------===//

using namespace wcs::jsonfield;

uint64_t MetricsDoc::counter(const std::string &Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return V;
  return 0;
}

const MetricsDoc::Hist *
MetricsDoc::histogram(const std::string &Name) const {
  for (const Hist &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

json::Value wcs::toJson(const MetricsDoc &D) {
  Value V = Value::object();
  V.set("schema", MetricsSchemaName);
  V.set("schema_version", MetricsSchemaVersion);
  V.set("tool", D.Tool);
  Value C = Value::object();
  for (const auto &[Name, X] : D.Counters)
    C.set(Name.c_str(), X);
  V.set("counters", std::move(C));
  Value G = Value::object();
  for (const auto &[Name, X] : D.Gauges)
    G.set(Name.c_str(), X);
  V.set("gauges", std::move(G));
  Value Hs = Value::array();
  for (const MetricsDoc::Hist &H : D.Histograms) {
    Value HV = Value::object();
    HV.set("name", H.Name);
    Value B = Value::array();
    for (double X : H.Bounds)
      B.push(X);
    HV.set("bounds", std::move(B));
    Value Cs = Value::array();
    for (uint64_t X : H.Counts)
      Cs.push(X);
    HV.set("counts", std::move(Cs));
    HV.set("count", H.Count);
    HV.set("sum", H.Sum);
    Hs.push(std::move(HV));
  }
  V.set("histograms", std::move(Hs));
  Value Ss = Value::array();
  for (const MetricsDoc::SpanAgg &A : D.Spans) {
    Value SV = Value::object();
    SV.set("name", A.Name);
    SV.set("count", A.Count);
    SV.set("total_seconds", A.TotalSeconds);
    Ss.push(std::move(SV));
  }
  V.set("spans", std::move(Ss));
  return V;
}

bool wcs::fromJson(const json::Value &V, MetricsDoc &Out, std::string *Err) {
  if (!needSchema(V, MetricsSchemaName, MetricsSchemaVersion, Err))
    return false;
  MetricsDoc D;
  const Value *C, *G, *Hs, *Ss;
  if (!needString(V, "tool", D.Tool, Err) ||
      !needObject(V, "counters", C, Err) ||
      !needObject(V, "gauges", G, Err) ||
      !needArray(V, "histograms", Hs, Err) ||
      !needArray(V, "spans", Ss, Err))
    return false;
  for (const auto &M : C->members()) {
    if (M.Val.kind() != Value::Kind::Int || M.Val.asInt() < 0)
      return failMsg(Err, "counter '" + M.Key +
                              "' must be a non-negative integer");
    D.Counters.emplace_back(M.Key, M.Val.asUInt());
  }
  for (const auto &M : G->members()) {
    if (!M.Val.isNumber())
      return failMsg(Err, "gauge '" + M.Key + "' must be a number");
    D.Gauges.emplace_back(M.Key, M.Val.asDouble());
  }
  for (const Value &HV : Hs->items()) {
    MetricsDoc::Hist H;
    const Value *B, *Cs;
    if (!needString(HV, "name", H.Name, Err) ||
        !needArray(HV, "bounds", B, Err) ||
        !needArray(HV, "counts", Cs, Err) ||
        !needUInt(HV, "count", H.Count, Err) ||
        !needDouble(HV, "sum", H.Sum, Err))
      return false;
    for (const Value &X : B->items()) {
      if (!X.isNumber())
        return failMsg(Err, "histogram bound must be a number");
      H.Bounds.push_back(X.asDouble());
    }
    for (const Value &X : Cs->items()) {
      if (X.kind() != Value::Kind::Int || X.asInt() < 0)
        return failMsg(Err, "histogram count must be a non-negative "
                            "integer");
      H.Counts.push_back(X.asUInt());
    }
    if (H.Counts.size() != H.Bounds.size() + 1)
      return failMsg(Err, "histogram '" + H.Name +
                              "' must have one count per bucket");
    D.Histograms.push_back(std::move(H));
  }
  for (const Value &SV : Ss->items()) {
    MetricsDoc::SpanAgg A;
    if (!needString(SV, "name", A.Name, Err) ||
        !needUInt(SV, "count", A.Count, Err) ||
        !needDouble(SV, "total_seconds", A.TotalSeconds, Err))
      return false;
    D.Spans.push_back(std::move(A));
  }
  Out = std::move(D);
  return true;
}

bool wcs::writeMetricsFile(const std::string &Path, const MetricsDoc &D,
                           std::string *Err) {
  return json::writeFile(Path, toJson(D), Err);
}

bool wcs::readMetricsFile(const std::string &Path, MetricsDoc &Out,
                          std::string *Err) {
  Value V;
  if (!json::readFile(Path, V, Err))
    return false;
  return fromJson(V, Out, Err);
}
