//===- poly/ConvexSet.cpp -------------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/poly/ConvexSet.h"

#include "wcs/support/MathUtil.h"

#include <cassert>
#include <limits>
#include <sstream>

using namespace wcs;

void ConvexSet::addConstraint(Constraint C) {
  assert(C.Expr.numDims() <= Dims && "constraint over too many dimensions");
  if (C.Expr.numDims() < Dims)
    C.Expr = C.Expr.extendedTo(Dims);
  Cons.push_back(std::move(C));
}

void ConvexSet::intersectWith(const ConvexSet &Other) {
  assert(Other.Dims == Dims && "dimension mismatch in intersection");
  for (const Constraint &C : Other.Cons)
    Cons.push_back(C);
}

ConvexSet ConvexSet::extendedTo(unsigned NumDims) const {
  assert(NumDims >= Dims && "cannot shrink a set");
  ConvexSet S(NumDims);
  for (const Constraint &C : Cons)
    S.addConstraint(Constraint(C.Expr.extendedTo(NumDims), C.K));
  return S;
}

bool ConvexSet::contains(const IterVec &At) const {
  assert(At.size() >= Dims && "point too shallow for membership test");
  for (const Constraint &C : Cons)
    if (!C.holdsAt(At))
      return false;
  return true;
}

std::optional<VarBounds>
ConvexSet::lastDimBounds(const IterVec &Prefix) const {
  assert(Dims >= 1 && "lastDimBounds on zero-dimensional set");
  unsigned Last = Dims - 1;
  assert(Prefix.size() >= Last && "prefix too short");

  int64_t Lo = std::numeric_limits<int64_t>::min();
  int64_t Hi = std::numeric_limits<int64_t>::max();
  bool HasLo = false, HasHi = false;

  for (const Constraint &C : Cons) {
    int64_t A = C.Expr.numDims() > Last ? C.Expr.coeff(Last) : 0;
    // Rest = constant + sum over prefix dims.
    int64_t Rest = C.Expr.constantTerm();
    for (unsigned I = 0; I < Last && I < C.Expr.numDims(); ++I)
      Rest += C.Expr.coeff(I) * Prefix[I];

    if (A == 0) {
      bool Holds = C.K == Constraint::Kind::EQ ? Rest == 0 : Rest >= 0;
      if (!Holds)
        return VarBounds{1, 0}; // Empty for this prefix.
      continue;
    }
    // A*x + Rest >= 0  <=>  x >= ceil(-Rest/A) (A>0) or x <= floor(-Rest/A).
    if (A > 0 || C.K == Constraint::Kind::EQ) {
      int64_t B = A > 0 ? ceilDiv(-Rest, A) : floorDiv(-Rest, A);
      // For EQ with A<0, -Rest/A is both a lower and an upper bound; the
      // branch above computes the lower one (floorDiv == exact or empty).
      if (!HasLo || B > Lo) {
        Lo = B;
        HasLo = true;
      }
    }
    if (A < 0 || C.K == Constraint::Kind::EQ) {
      int64_t B = A < 0 ? floorDiv(Rest, -A) : floorDiv(-Rest, A);
      if (!HasHi || B < Hi) {
        Hi = B;
        HasHi = true;
      }
    }
    if (C.K == Constraint::Kind::EQ && (-Rest) % A != 0)
      return VarBounds{1, 0}; // Equality has no integer solution.
  }
  if (!HasLo || !HasHi)
    return std::nullopt;
  return VarBounds{Lo, Hi};
}

FMStatus ConvexSet::emptyRational() const { return toSystem().feasible(); }

LinearSystem ConvexSet::toSystem() const {
  LinearSystem Sys(Dims);
  std::vector<unsigned> Identity(Dims);
  for (unsigned I = 0; I < Dims; ++I)
    Identity[I] = I;
  addToSystem(Sys, Identity);
  return Sys;
}

void ConvexSet::addToSystem(LinearSystem &Sys,
                            const std::vector<unsigned> &VarMap) const {
  assert(VarMap.size() >= Dims && "VarMap too short");
  for (const Constraint &C : Cons) {
    std::vector<int64_t> Row(Sys.numVars(), 0);
    for (unsigned I = 0, N = C.Expr.numDims(); I < N; ++I)
      Row[VarMap[I]] += C.Expr.coeff(I);
    if (C.K == Constraint::Kind::EQ)
      Sys.addEQ(Row, C.Expr.constantTerm());
    else
      Sys.addGE(std::move(Row), C.Expr.constantTerm());
  }
}

std::string ConvexSet::str(const std::vector<std::string> &DimNames) const {
  std::ostringstream OS;
  OS << "{ ";
  for (size_t I = 0; I < Cons.size(); ++I) {
    if (I != 0)
      OS << " and ";
    OS << Cons[I].Expr.str(DimNames)
       << (Cons[I].K == Constraint::Kind::EQ ? " == 0" : " >= 0");
  }
  if (Cons.empty())
    OS << "true";
  OS << " }";
  return OS.str();
}
