//===- wcs/poly/AffineExpr.h - Affine expressions over iterators -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions `c0 + c1*i1 + ... + cn*in` over loop iterators.
/// These are the building blocks of iteration domains (paper Sec. 3.1) and
/// of access functions (paper Sec. 3.2). Parameters (problem sizes) are
/// bound to constants before a ScopProgram is built, so expressions only
/// range over loop iterators.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_POLY_AFFINEEXPR_H
#define WCS_POLY_AFFINEEXPR_H

#include "wcs/support/IterVec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wcs {

/// An affine expression over a fixed number of iterator dimensions.
class AffineExpr {
public:
  AffineExpr() = default;

  /// Creates the zero expression over \p NumDims dimensions.
  explicit AffineExpr(unsigned NumDims) : Coeffs(NumDims, 0) {}

  /// Creates a constant expression over \p NumDims dimensions.
  static AffineExpr constant(unsigned NumDims, int64_t C);

  /// Creates the expression `1 * dim`.
  static AffineExpr dim(unsigned NumDims, unsigned Dim);

  unsigned numDims() const { return static_cast<unsigned>(Coeffs.size()); }

  int64_t coeff(unsigned Dim) const { return Coeffs[Dim]; }
  void setCoeff(unsigned Dim, int64_t C) { Coeffs[Dim] = C; }

  int64_t constantTerm() const { return Const; }
  void setConstantTerm(int64_t C) { Const = C; }

  /// True if every iterator coefficient is zero.
  bool isConstant() const;

  /// True if the linear parts (all coefficients, ignoring the constant
  /// term) of this and \p Other are identical. This is the "same
  /// coefficients" test of the paper's FurthestByOverlap.
  bool sameLinearPart(const AffineExpr &Other) const;

  /// Evaluates the expression at iteration point \p At. \p At must provide
  /// at least numDims() values; extra values are ignored so callers can
  /// evaluate a shallow access function under a deeper iterator state.
  int64_t eval(const IterVec &At) const;

  /// Returns this expression extended (zero coefficients) to \p NumDims.
  AffineExpr extendedTo(unsigned NumDims) const;

  AffineExpr operator+(const AffineExpr &O) const;
  AffineExpr operator-(const AffineExpr &O) const;
  AffineExpr operator-() const;
  AffineExpr operator*(int64_t S) const;

  AffineExpr &operator+=(const AffineExpr &O);
  AffineExpr &operator+=(int64_t C) {
    Const += C;
    return *this;
  }

  friend bool operator==(const AffineExpr &A, const AffineExpr &B) {
    return A.Const == B.Const && A.Coeffs == B.Coeffs;
  }

  /// Renders the expression using \p DimNames (or i0, i1, ... if empty).
  std::string str(const std::vector<std::string> &DimNames = {}) const;

private:
  std::vector<int64_t> Coeffs;
  int64_t Const = 0;
};

} // namespace wcs

#endif // WCS_POLY_AFFINEEXPR_H
