//===- trace/TraceGenerator.cpp -------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/TraceGenerator.h"

#include <cassert>

using namespace wcs;

namespace {

/// Recursive streaming walk (shared by generateTrace).
class StreamWalk {
public:
  StreamWalk(const ScopProgram &P, const TraceOptions &Opts,
             const std::function<void(const TraceRecord &)> &Sink)
      : P(P), Opts(Opts), Sink(Sink) {}

  uint64_t run() {
    IterVec Iter;
    for (const std::unique_ptr<Node> &R : P.roots())
      visit(R.get(), Iter);
    return Count;
  }

private:
  void visit(const Node *N, IterVec &Iter) {
    if (const LoopNode *L = asLoop(N)) {
      std::optional<VarBounds> B = L->Domain.lastDimBounds(Iter);
      assert(B && "loop domain must be bounded");
      if (B->empty())
        return;
      bool NeedMembership = !L->Domain.isSingleDisjunct();
      Iter.push(0);
      for (int64_t X = B->Lo; X <= B->Hi; ++X) {
        Iter.back() = X;
        if (NeedMembership && !L->Domain.contains(Iter))
          continue;
        for (const std::unique_ptr<Node> &C : L->Children)
          visit(C.get(), Iter);
      }
      Iter.pop();
      return;
    }
    const AccessNode *A = asAccess(N);
    const ArrayInfo &Arr = P.array(A->ArrayId);
    if (!Opts.IncludeScalars && Arr.isScalar())
      return;
    if (A->Guarded && !A->Domain.contains(Iter))
      return;
    Sink(TraceRecord{A->Address.eval(Iter), Arr.ElemBytes, A->isWrite()});
    ++Count;
  }

  const ScopProgram &P;
  const TraceOptions &Opts;
  const std::function<void(const TraceRecord &)> &Sink;
  uint64_t Count = 0;
};

} // namespace

uint64_t
wcs::generateTrace(const ScopProgram &Program, const TraceOptions &Opts,
                   const std::function<void(const TraceRecord &)> &Sink) {
  StreamWalk W(Program, Opts, Sink);
  return W.run();
}

//===----------------------------------------------------------------------===//
// Chunked generation: an explicit, resumable tree walk.
//===----------------------------------------------------------------------===//

struct ChunkedTraceGenerator::Walker {
  struct Frame {
    const LoopNode *L;
    int64_t X, Hi;
    size_t Child;
    bool NeedMembership;
  };

  const ScopProgram &P;
  TraceOptions Opts;
  size_t RootIdx = 0;
  std::vector<Frame> Stack;
  IterVec Iter;
  bool Done = false;

  Walker(const ScopProgram &P, TraceOptions Opts) : P(P), Opts(Opts) {}

  /// Emits records until the buffer reaches Cap or the walk finishes.
  void fill(std::vector<TraceRecord> &Buf, size_t Cap) {
    while (Buf.size() < Cap && !Done) {
      if (Stack.empty()) {
        if (RootIdx >= P.roots().size()) {
          Done = true;
          return;
        }
        dispatch(P.roots()[RootIdx++].get(), Buf);
        continue;
      }
      Frame &F = Stack.back();
      if (F.Child < F.L->Children.size()) {
        dispatch(F.L->Children[F.Child++].get(), Buf);
        continue;
      }
      // End of one body iteration: advance (skipping domain holes).
      for (;;) {
        ++F.X;
        if (F.X > F.Hi) {
          Iter.pop();
          Stack.pop_back();
          break;
        }
        Iter.back() = F.X;
        if (!F.NeedMembership || F.L->Domain.contains(Iter)) {
          F.Child = 0;
          break;
        }
      }
    }
  }

  void dispatch(const Node *N, std::vector<TraceRecord> &Buf) {
    if (const LoopNode *L = asLoop(N)) {
      std::optional<VarBounds> B = L->Domain.lastDimBounds(Iter);
      assert(B && "loop domain must be bounded");
      if (B->empty())
        return;
      bool NeedMembership = !L->Domain.isSingleDisjunct();
      // Find the first member iteration.
      Iter.push(B->Lo);
      int64_t X = B->Lo;
      while (NeedMembership && X <= B->Hi) {
        Iter.back() = X;
        if (L->Domain.contains(Iter))
          break;
        ++X;
      }
      if (X > B->Hi) {
        Iter.pop();
        return;
      }
      Iter.back() = X;
      Stack.push_back(Frame{L, X, B->Hi, 0, NeedMembership});
      return;
    }
    const AccessNode *A = asAccess(N);
    const ArrayInfo &Arr = P.array(A->ArrayId);
    if (!Opts.IncludeScalars && Arr.isScalar())
      return;
    if (A->Guarded && !A->Domain.contains(Iter))
      return;
    Buf.push_back(
        TraceRecord{A->Address.eval(Iter), Arr.ElemBytes, A->isWrite()});
  }
};

ChunkedTraceGenerator::ChunkedTraceGenerator(const ScopProgram &Program,
                                             TraceOptions Opts,
                                             size_t ChunkRecords)
    : W(std::make_unique<Walker>(Program, Opts)), ChunkRecords(ChunkRecords) {
  Buffer.reserve(ChunkRecords);
}

ChunkedTraceGenerator::~ChunkedTraceGenerator() = default;

const std::vector<TraceRecord> &ChunkedTraceGenerator::nextChunk() {
  Buffer.clear();
  W->fill(Buffer, ChunkRecords);
  return Buffer;
}
