//===- tests/fault_injection_test.cpp - Seeded fault injection tests ------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The fault-injection harness itself (spec parsing, deterministic
// seeded schedules, the disarmed fast path) and the crash-consistency
// contract it exists to test: a torn store append loses at most the
// in-flight insert, poisons nothing it already held, and the points it
// failed to persist are honestly recomputed -- bit-identically -- after
// a reopen.
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/Server.h"
#include "wcs/support/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include <unistd.h>

using namespace wcs;

namespace {

/// Every test leaves the process disarmed, whatever its assertions do:
/// the harness state is process-global.
struct DisarmGuard {
  ~DisarmGuard() { faultinject::disarm(); }
};

const char *TestSource = R"(
  int A[512]; int B[512];
  for (int i = 1; i < 511; i++)
    B[i] = A[i-1] + A[i+1];
)";

SweepRequest smallRequest() {
  SweepRequest R;
  R.Source = TestSource;
  R.SourceName = "stencil.wcs";
  R.L1.SizesBytes = {1024, 2048};
  R.L1.Assocs = {2};
  R.L1.Policies = {PolicyKind::Fifo};
  return R;
}

/// Timing- and provenance-independent view of a point.
std::string counters(SweepPoint P) {
  P.Stats.Seconds = 0.0;
  P.Method = SweepMethod::Simulated;
  return toJson(P).dump(false);
}

std::string tempPath(const char *Tag) {
  std::ostringstream OS;
  OS << ::testing::TempDir() << "wcs-fault-" << Tag << "-" << ::getpid()
     << ".jsonl";
  return OS.str();
}

/// A minimal-but-valid point for direct store tests.
SweepPoint somePoint() {
  SweepPoint P;
  P.Ok = true;
  return P;
}

TEST(FaultInjection, SpecParsingRejectsMalformedEntries) {
  DisarmGuard G;
  std::string Err;

  // Unknown point: loud failure that names the valid set, so a typo in
  // WCS_FAULT cannot silently test nothing.
  EXPECT_FALSE(faultinject::arm("store.wrte:0.5", 0, &Err));
  EXPECT_NE(Err.find("unknown fault point"), std::string::npos) << Err;
  EXPECT_NE(Err.find("store.write"), std::string::npos) << Err;
  EXPECT_FALSE(faultinject::armed());

  EXPECT_FALSE(faultinject::arm("store.write", 0, &Err));
  EXPECT_NE(Err.find("point:probability"), std::string::npos) << Err;

  EXPECT_FALSE(faultinject::arm("store.write:1.5", 0, &Err));
  EXPECT_NE(Err.find("[0, 1]"), std::string::npos) << Err;
  EXPECT_FALSE(faultinject::arm("store.write:often", 0, &Err));
  EXPECT_NE(Err.find("[0, 1]"), std::string::npos) << Err;

  // An empty spec arms nothing (the WCS_FAULT="" case).
  EXPECT_TRUE(faultinject::arm("", 0, &Err)) << Err;
  EXPECT_FALSE(faultinject::armed());

  // A good multi-point spec arms and reports itself.
  ASSERT_TRUE(faultinject::arm("store.write:0.25,socket.send:1", 7, &Err))
      << Err;
  EXPECT_TRUE(faultinject::armed());
  std::string Spec = faultinject::armedSpec();
  EXPECT_NE(Spec.find("store.write"), std::string::npos) << Spec;
  EXPECT_NE(Spec.find("socket.send"), std::string::npos) << Spec;
}

TEST(FaultInjection, DisarmedNeverFires) {
  faultinject::disarm();
  EXPECT_FALSE(faultinject::armed());
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(faultinject::shouldFail("store.write"));
    EXPECT_FALSE(faultinject::shouldFail("socket.send"));
    EXPECT_FALSE(faultinject::shouldFail("socket.recv"));
    EXPECT_FALSE(faultinject::shouldFail("scheduler.job"));
  }
  EXPECT_EQ(faultinject::injectedCount(), 0u);
}

TEST(FaultInjection, ProbabilityOneAlwaysFiresAndIsCounted) {
  DisarmGuard G;
  std::string Err;
  ASSERT_TRUE(faultinject::arm("store.write:1", 1, &Err)) << Err;
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(faultinject::shouldFail("store.write"));
    // Points outside the spec never fire, even armed.
    EXPECT_FALSE(faultinject::shouldFail("socket.recv"));
  }
  EXPECT_EQ(faultinject::injectedCount("store.write"), 50u);
  EXPECT_EQ(faultinject::injectedCount("socket.recv"), 0u);
  EXPECT_EQ(faultinject::injectedCount(), 50u);
}

TEST(FaultInjection, SeededScheduleReplaysExactly) {
  DisarmGuard G;
  std::string Err;
  auto Draw100 = [&](uint64_t Seed) {
    EXPECT_TRUE(faultinject::arm("scheduler.job:0.5", Seed, &Err)) << Err;
    std::vector<bool> Seq;
    for (int I = 0; I < 100; ++I)
      Seq.push_back(faultinject::shouldFail("scheduler.job"));
    return Seq;
  };
  // arm() resets the draw counter, so the same (spec, seed) replays
  // the same fault schedule -- the property that makes a failed CI
  // fault run reproducible from its logged seed.
  std::vector<bool> A = Draw100(42), B = Draw100(42), C = Draw100(43);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  // p=0.5 over 100 draws: both outcomes occur (up to 2^-99 flakiness).
  EXPECT_NE(std::count(A.begin(), A.end(), true), 0);
  EXPECT_NE(std::count(A.begin(), A.end(), false), 0);
}

TEST(FaultInjection, TornAppendLosesOnlyTheInFlightInsert) {
  DisarmGuard G;
  std::string Path = tempPath("torn");
  std::remove(Path.c_str());
  std::string Err;

  ResultStore Store;
  ASSERT_TRUE(Store.open(Path, &Err)) << Err;
  ASSERT_TRUE(Store.insert("k1", somePoint(), &Err)) << Err;

  // Injected torn append: the insert fails WITHOUT entering the index
  // (the key must stay an honest miss) and poisons the tail.
  ASSERT_TRUE(faultinject::arm("store.write:1", 0, &Err)) << Err;
  EXPECT_FALSE(Store.insert("k2", somePoint(), &Err));
  EXPECT_NE(Err.find("injected fault"), std::string::npos) << Err;
  EXPECT_TRUE(Store.tailDirty());
  EXPECT_EQ(Store.numEntries(), 1u);
  SweepPoint Out;
  EXPECT_FALSE(Store.lookup("k2", Out));
  EXPECT_TRUE(Store.lookup("k1", Out)); // Reads keep serving.

  // Disarming does not bless the torn tail: appends stay refused until
  // a reopen truncates it (a live writer after a tear would garble the
  // next line and lose GOOD lines at replay).
  faultinject::disarm();
  EXPECT_FALSE(Store.insert("k3", somePoint(), &Err));
  EXPECT_NE(Err.find("refusing append"), std::string::npos) << Err;

  // Reopen = the crash-recovery path: the tear is dropped, everything
  // before it survives, and the log accepts appends again.
  ResultStore Reopened;
  ASSERT_TRUE(Reopened.open(Path, &Err)) << Err;
  EXPECT_GT(Reopened.recoveredBytes(), 0u);
  EXPECT_EQ(Reopened.numEntries(), 1u);
  EXPECT_FALSE(Reopened.tailDirty());
  EXPECT_TRUE(Reopened.lookup("k1", Out));
  ASSERT_TRUE(Reopened.insert("k2", somePoint(), &Err)) << Err;

  // And the repaired log replays clean.
  ResultStore Final;
  ASSERT_TRUE(Final.open(Path, &Err)) << Err;
  EXPECT_EQ(Final.recoveredBytes(), 0u);
  EXPECT_EQ(Final.numEntries(), 2u);
  std::remove(Path.c_str());
}

// The acceptance contract end to end: a daemon whose every store write
// tears loses no correctness -- it answers from computation -- and a
// restarted daemon recovers the store, recomputes what was lost, and
// serves it bit-identically, computing each point at most once more.
TEST(FaultInjection, ServeRecomputesUnpersistedPointsAfterRestart) {
  DisarmGuard G;
  std::string Path = tempPath("restart");
  std::remove(Path.c_str());
  std::string Err;
  SweepRequest Req = smallRequest();

  std::vector<std::string> FirstRun;
  {
    ResultStore Store;
    ASSERT_TRUE(Store.open(Path, &Err)) << Err;
    ASSERT_TRUE(faultinject::arm("store.write:1", 0, &Err)) << Err;
    SweepResponse Resp = serveSweepRequest(Req, Store, 1, nullptr);
    // Every answer is computed and correct; persistence failed quietly
    // underneath (at most a torn first line on disk).
    ASSERT_TRUE(Resp.Ok) << Resp.Error;
    EXPECT_EQ(Resp.StoreMisses, 2u);
    for (const SweepPoint &P : Resp.Sweep.Points) {
      ASSERT_TRUE(P.Ok) << P.Error;
      FirstRun.push_back(counters(P));
    }
    faultinject::disarm();
  }

  // "Restart": a fresh store over the same log recovers the tear and
  // holds nothing, so the same request honestly recomputes...
  ResultStore Store;
  ASSERT_TRUE(Store.open(Path, &Err)) << Err;
  EXPECT_EQ(Store.numEntries(), 0u);
  SweepResponse Again = serveSweepRequest(Req, Store, 1, nullptr);
  ASSERT_TRUE(Again.Ok) << Again.Error;
  EXPECT_EQ(Again.StoreMisses, 2u);
  ASSERT_EQ(Again.Sweep.Points.size(), FirstRun.size());
  for (size_t I = 0; I < FirstRun.size(); ++I)
    EXPECT_EQ(counters(Again.Sweep.Points[I]), FirstRun[I]) << "point " << I;

  // ...exactly once: with writes healthy the points persisted, and a
  // third submission is all store hits, still bit-identical.
  SweepResponse Hits = serveSweepRequest(Req, Store, 1, nullptr);
  ASSERT_TRUE(Hits.Ok) << Hits.Error;
  EXPECT_EQ(Hits.StoreHits, 2u);
  EXPECT_EQ(Hits.StoreMisses, 0u);
  for (size_t I = 0; I < FirstRun.size(); ++I)
    EXPECT_EQ(counters(Hits.Sweep.Points[I]), FirstRun[I]) << "point " << I;
  std::remove(Path.c_str());
}

} // namespace
