//===- src/serve/ResultStore.cpp - Content-addressed result store ---------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/serve/ResultStore.h"

#include "wcs/support/FaultInjection.h"
#include "wcs/support/Hashing.h"
#include "wcs/support/JsonReader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace wcs;
using namespace wcs::jsonfield;
using json::Value;

std::string wcs::resultStoreLine(const std::string &Key,
                                 const SweepPoint &Point) {
  Value V = Value::object();
  V.set("hash", hashHex(hashString(Key)));
  V.set("key", Key);
  V.set("point", toJson(Point));
  return V.dump(false);
}

namespace {

/// Parses and self-checks one log line. Returns false on any defect --
/// the caller treats the line (and everything after it) as torn.
bool parseStoreLine(const std::string &Line, std::string &Key,
                    SweepPoint &Point) {
  Value V;
  if (!json::parse(Line, V))
    return false;
  std::string Hash;
  const Value *P;
  if (!needString(V, "hash", Hash, nullptr) ||
      !needString(V, "key", Key, nullptr) ||
      !needMember(V, "point", P, nullptr))
    return false;
  if (Hash != hashHex(hashString(Key)))
    return false; // Hash/key mismatch: corruption, not data.
  return fromJson(*P, Point, nullptr);
}

} // namespace

bool ResultStore::open(const std::string &OpenPath, std::string *Err) {
  Path = OpenPath;
  Entries.clear();
  Index.clear();
  NextSeq = 0;
  Hits = Misses = RecoveredBytes = 0;
  TailDirty = false;
  if (Path.empty())
    return true;

  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open()) {
    // Not there yet: create an empty log so later appends and a
    // concurrent --compact see the same file.
    std::ofstream Create(Path, std::ios::binary | std::ios::app);
    if (!Create.is_open())
      return failMsg(Err, Path + ": cannot create store");
    return true;
  }

  // Replay. GoodBytes tracks the end of the last intact line; anything
  // after the first bad line is a torn tail (a crashed writer never
  // reorders lines, so nothing after the tear can be trusted).
  uint64_t GoodBytes = 0;
  std::string Line;
  bool Torn = false;
  while (std::getline(In, Line)) {
    // A final line without its trailing '\n' is in-flight: even if it
    // parses, the writer died mid-append, so only count it intact when
    // the newline made it to disk.
    bool HasNewline = !In.eof();
    std::string Key;
    SweepPoint Point;
    if (!HasNewline || !parseStoreLine(Line, Key, Point)) {
      Torn = true;
      break;
    }
    GoodBytes += Line.size() + 1;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Entries[It->second].Point = std::move(Point);
      Entries[It->second].Seq = NextSeq++;
    } else {
      Index[Key] = Entries.size();
      Entries.push_back({std::move(Key), std::move(Point), NextSeq++});
    }
  }
  In.clear(); // getline set eofbit on a clean full read; seekg needs it gone.
  In.seekg(0, std::ios::end);
  uint64_t FileBytes = static_cast<uint64_t>(In.tellg());
  In.close();

  if (Torn && FileBytes > GoodBytes) {
    RecoveredBytes = FileBytes - GoodBytes;
    // Truncate the tear away so the next append starts a clean line.
    std::ifstream Re(Path, std::ios::binary);
    std::string Keep(GoodBytes, '\0');
    Re.read(Keep.data(), static_cast<std::streamsize>(GoodBytes));
    Re.close();
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    if (!Out.is_open())
      return failMsg(Err, Path + ": cannot truncate torn tail");
    Out.write(Keep.data(), static_cast<std::streamsize>(GoodBytes));
    Out.close();
    if (!Out)
      return failMsg(Err, Path + ": torn-tail truncation failed");
  }
  return true;
}

bool ResultStore::lookup(const std::string &Key, SweepPoint &Out) {
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return false;
  }
  ++Hits;
  Out = Entries[It->second].Point;
  return true;
}

bool ResultStore::appendLine(const Entry &E, std::string *Err) {
  if (Path.empty())
    return true;
  if (TailDirty)
    // A previous append failed partway, so the bytes at the end of the
    // log are not a clean line boundary. Appending after them would
    // merge into the torn fragment and -- unlike a real crash, which
    // stops the writer -- poison every later line for replay. Refuse
    // until a reopen truncates the tear.
    return failMsg(Err, Path + ": refusing append after a failed write "
                        "(torn tail; reopen to recover)");
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  if (!Out.is_open())
    return failMsg(Err, Path + ": cannot append");
  if (faultinject::shouldFail("store.write")) {
    // Crash-equivalent tear: write a prefix of the line, no '\n', and
    // fail. The next open() sees exactly what a daemon killed mid-
    // append leaves behind and truncates it.
    std::string Line = resultStoreLine(E.Key, E.Point);
    Out.write(Line.data(), static_cast<std::streamsize>(Line.size() / 2));
    Out.flush();
    TailDirty = true;
    return failMsg(Err, Path + ": injected fault (store.write), torn "
                        "append");
  }
  Out << resultStoreLine(E.Key, E.Point) << '\n';
  Out.flush();
  if (!Out) {
    TailDirty = true;
    return failMsg(Err, Path + ": append failed");
  }
  return true;
}

bool ResultStore::insert(const std::string &Key, const SweepPoint &Point,
                         std::string *Err) {
  Entry E{Key, Point, NextSeq++};
  if (!appendLine(E, Err))
    return false;
  auto It = Index.find(Key);
  if (It != Index.end()) {
    Entries[It->second].Point = Point;
    Entries[It->second].Seq = E.Seq;
  } else {
    Index[Key] = Entries.size();
    Entries.push_back(std::move(E));
  }
  return true;
}

bool ResultStore::compact(size_t MaxEntries, std::string *Err) {
  // Evict oldest-inserted beyond the cap (0 = keep everything live).
  if (MaxEntries > 0 && Entries.size() > MaxEntries) {
    std::sort(Entries.begin(), Entries.end(),
              [](const Entry &A, const Entry &B) { return A.Seq < B.Seq; });
    Entries.erase(Entries.begin(),
                  Entries.end() - static_cast<ptrdiff_t>(MaxEntries));
    Index.clear();
    for (size_t I = 0; I < Entries.size(); ++I)
      Index[Entries[I].Key] = I;
  }
  if (Path.empty())
    return true;

  // One line per live key, oldest first, written beside the log and
  // renamed over it so a crash mid-compaction leaves the old log.
  std::vector<const Entry *> Order;
  Order.reserve(Entries.size());
  for (const Entry &E : Entries)
    Order.push_back(&E);
  std::sort(Order.begin(), Order.end(),
            [](const Entry *A, const Entry *B) { return A->Seq < B->Seq; });

  std::string Tmp = Path + ".compact";
  std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
  if (!Out.is_open())
    return failMsg(Err, Tmp + ": cannot write");
  for (const Entry *E : Order)
    Out << resultStoreLine(E->Key, E->Point) << '\n';
  Out.close();
  if (!Out)
    return failMsg(Err, Tmp + ": write failed");
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return failMsg(Err, Path + ": rename failed");
  }
  return true;
}
