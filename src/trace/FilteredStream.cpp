//===- trace/FilteredStream.cpp -------------------------------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/trace/FilteredStream.h"

#include "wcs/sim/ConcreteSimulator.h"

#include <cassert>
#include <chrono>

using namespace wcs;

namespace {

/// Thrown by the recording tap to abort the simulation once MaxRecords
/// is exceeded: the stream is useless from that point on, so finishing
/// the walk would only burn the time the fallback simulation needs.
struct RecordCapExceeded {};

} // namespace

FilteredStream FilteredStream::record(const ScopProgram &Program,
                                      const CacheConfig &L1,
                                      const SimOptions &Opts,
                                      uint64_t MaxRecords) {
  FilteredStream FS;
  FS.L1 = L1;
  auto T0 = std::chrono::steady_clock::now();
  ConcreteSimulator Sim(Program, HierarchyConfig::singleLevel(L1), Opts);
  Sim.setTap([&FS, MaxRecords](BlockId B, bool IsWrite,
                               const HierarchyOutcome &O) {
    if (O.L1Hit)
      return;
    if (MaxRecords != 0 && FS.Records.size() >= MaxRecords)
      throw RecordCapExceeded{};
    FS.Records.push_back(FilteredRecord{B, IsWrite});
  });
  try {
    SimStats S = Sim.run();
    FS.L1Stats = S.Level[0];
    assert(FS.L1Stats.Misses == FS.Records.size() &&
           "every L1 miss must be recorded");
  } catch (const RecordCapExceeded &) {
    FS.Truncated = true;
    FS.Records.clear();
    FS.Records.shrink_to_fit();
  }
  FS.Seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
  return FS;
}

bool FilteredStream::answersHierarchy(const HierarchyConfig &H,
                                      std::string *Why) const {
  auto Fail = [&](const char *Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Truncated)
    return Fail("stream recording was truncated");
  if (H.numLevels() != 2)
    return Fail("filtered streams answer two-level hierarchies only");
  if (H.Inclusion != InclusionPolicy::NonInclusiveNonExclusive)
    return Fail("inclusive/exclusive L2s couple back into the L1; only "
                "NINE hierarchies share L1-filtered streams");
  if (!(H.Levels.front() == L1))
    return Fail("hierarchy L1 differs from the recorded L1");
  return true;
}

void FilteredStream::feed(SetDistanceBank &Bank) const {
  assert(!Truncated && "cannot condition a bank on a truncated stream");
  assert(Bank.blockBytes() == L1.BlockBytes &&
         "bank block size must equal the recorded L1's");
  for (const FilteredRecord &R : Records)
    Bank.accessBlock(R.Block);
}

SimStats FilteredStream::replay(const CacheConfig &L2) const {
  assert(!Truncated && "cannot replay a truncated stream");
  assert(L2.BlockBytes == L1.BlockBytes &&
         "levels of a hierarchy share one block size");
  auto T0 = std::chrono::steady_clock::now();
  SimStats S;
  S.NumLevels = 2;
  S.Level[0] = L1Stats;
  S.Level[1].Accesses = Records.size();
  ConcreteCache Cache(L2);
  uint64_t Misses = 0;
  for (const FilteredRecord &R : Records) {
    // Mirror of ConcreteHierarchy's NINE L2 leg: the L2 sees the same
    // block, allocating unless a write miss under no-write-allocate.
    bool Alloc = !(R.IsWrite && L2.WriteAlloc == WriteAllocate::No);
    AccessOutcome O = Cache.access(R.Block, Alloc);
    if (!O.Hit)
      ++Misses;
  }
  S.Level[1].Misses = Misses;
  // The replay walks only the filtered stream; the full-trace L1 walk
  // happened once, at recording time.
  S.SimulatedAccesses = Records.size();
  S.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  return S;
}
