//===- wcs/frontend/Lexer.h - Tokenizer for the SCoP dialect ----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the C-like loop-nest dialect accepted by the wcs
/// frontend (the "mini-pet"; the paper uses pet [63] for this role).
/// Supports identifiers, integer and floating literals, the punctuation
/// and operators of C expressions/for/if statements, and // and /* */
/// comments.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_FRONTEND_LEXER_H
#define WCS_FRONTEND_LEXER_H

#include <cstdint>
#include <string>

namespace wcs {

/// Source location (1-based).
struct SrcLoc {
  int Line = 1;
  int Col = 1;
};

struct Token {
  enum class Kind {
    End,
    Ident,
    IntLit,
    FloatLit,
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,     // =
    PlusAssign, // +=
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Error,
  };

  Kind K = Kind::End;
  std::string Text;   ///< Identifier spelling or literal text.
  int64_t IntValue = 0;
  SrcLoc Loc;

  bool is(Kind Other) const { return K == Other; }
};

const char *tokenKindName(Token::Kind K);

/// Single-pass tokenizer with one-token lookahead handled by the parser.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Returns the next token, advancing. Malformed input yields a token of
  /// kind Error whose Text describes the problem.
  Token next();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool skipWhitespaceAndComments(Token &ErrOut);

  std::string Src;
  size_t Pos = 0;
  SrcLoc Loc;
};

} // namespace wcs

#endif // WCS_FRONTEND_LEXER_H
