//===- examples/quickstart.cpp - First steps with wcs ---------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The paper's Fig. 1 running example: a 1D stencil simulated on a small
// fully-associative LRU cache, first without warping (Algorithm 1), then
// with warping (Algorithm 2). Warping fast-forwards through the loop
// after a handful of explicit iterations and reproduces the exact miss
// count.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Frontend.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <cstdio>

using namespace wcs;

int main() {
  // 1. Describe the program in the wcs loop-nest dialect. Each array
  //    cell occupies a full 64-byte cache line here, as in the paper's
  //    example (hence the `long` elements and the padded arrays).
  const char *Source = R"(
    param N = 1000;
    long A[N][8]; long B[N][8];
    for (i = 1; i < N - 1; i++)
      B[i-1][0] = A[i-1][0] + A[i][0];
  )";
  ParseResult PR = parseScop(Source, {}, "fig1-stencil");
  if (!PR.ok()) {
    std::fprintf(stderr, "parse error: %s\n", PR.message().c_str());
    return 1;
  }
  std::printf("=== program ===\n%s\n", PR.Program.str().c_str());

  // 2. A fully-associative cache with two lines and LRU replacement.
  CacheConfig C;
  C.SizeBytes = 2 * 64;
  C.Assoc = 2;
  C.BlockBytes = 64;
  C.Policy = PolicyKind::Lru;
  HierarchyConfig H = HierarchyConfig::singleLevel(C);
  std::printf("=== cache ===\n%s\n\n", H.str().c_str());

  // 3. Non-warping simulation (paper Algorithm 1).
  ConcreteSimulator Ref(PR.Program, H);
  SimStats R = Ref.run();
  std::printf("non-warping: %s\n", R.str().c_str());

  // 4. Warping simulation (paper Algorithm 2).
  WarpingSimulator Warp(PR.Program, H);
  SimStats W = Warp.run();
  std::printf("warping:     %s\n", W.str().c_str());

  std::printf("\nThe paper predicts 3 misses in the first iteration and "
              "1 hit + 2 misses afterwards;\nboth simulators report %llu "
              "misses over %llu accesses.\n",
              static_cast<unsigned long long>(W.Level[0].Misses),
              static_cast<unsigned long long>(W.totalAccesses()));
  std::printf("Warping simulated %llu accesses explicitly and "
              "fast-forwarded across %llu (%llu warps).\n",
              static_cast<unsigned long long>(W.SimulatedAccesses),
              static_cast<unsigned long long>(W.WarpedAccesses),
              static_cast<unsigned long long>(W.Warps));
  return W.Level[0].Misses == R.Level[0].Misses ? 0 : 1;
}
