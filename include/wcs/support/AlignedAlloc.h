//===- wcs/support/AlignedAlloc.h - Aligned std::vector storage -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal over-aligning allocator so the hot struct-of-arrays cache
/// state (block ids, dirty bitsets) starts on a cache-line boundary:
/// per-set windows then span the fewest possible lines and never share a
/// line with unrelated vector bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_ALIGNEDALLOC_H
#define WCS_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <new>

namespace wcs {

template <typename T, std::size_t Align>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept {}

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator &, const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &, const AlignedAllocator &) {
    return false;
  }
};

} // namespace wcs

#endif // WCS_SUPPORT_ALIGNEDALLOC_H
