//===- wcs/support/Json.h - Dependency-free JSON value/writer/parser -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON library: a Value variant, a writer with
/// stable key order, and a recursive-descent parser. Backs the results
/// pipeline (structured SimStats / config / batch-result files consumed
/// by wcs-report and CI), so the design goals are determinism and
/// round-trip fidelity, not feature breadth:
///
///  - Objects keep *insertion* order and the writer emits keys in that
///    order, so serializing the same data always yields byte-identical
///    text (diffable results files, stable golden tests).
///  - Integers are stored as int64_t exactly (counter values survive a
///    round trip bit-for-bit; doubles would silently lose precision
///    beyond 2^53). Doubles print with %.17g, enough to round-trip.
///  - The parser reports line/column on malformed input and enforces a
///    nesting-depth limit instead of recursing unboundedly.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SUPPORT_JSON_H
#define WCS_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wcs {
namespace json {

struct Member;

/// A JSON document node: null, bool, integer, double, string, array or
/// object. Value is cheap to move; copying deep-copies the subtree.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool V) : K(Kind::Bool), B(V) {}
  Value(int V) : K(Kind::Int), I(V) {}
  Value(int64_t V) : K(Kind::Int), I(V) {}
  Value(unsigned V) : K(Kind::Int), I(static_cast<int64_t>(V)) {}
  /// JSON integers are modeled as int64; a uint64 above int64 max cannot
  /// round-trip exactly, so it degrades to a double (nearest value)
  /// instead of wrapping to a nonsense negative. Counter values in
  /// practice stay far below 2^63.
  Value(uint64_t V) {
    if (V <= static_cast<uint64_t>(9223372036854775807LL)) {
      K = Kind::Int;
      I = static_cast<int64_t>(V);
    } else {
      K = Kind::Double;
      D = static_cast<double>(V);
    }
  }
  Value(double V) : K(Kind::Double), D(V) {}
  Value(const char *V) : K(Kind::String), S(V) {}
  Value(std::string V) : K(Kind::String), S(std::move(V)) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Scalar getters; on a kind mismatch they return \p Def. Numeric
  /// kinds convert between each other, but only when the conversion is
  /// representable: a double outside int64/uint64 range and a negative
  /// value under asUInt yield \p Def instead of undefined behavior.
  bool asBool(bool Def = false) const { return isBool() ? B : Def; }
  int64_t asInt(int64_t Def = 0) const;
  uint64_t asUInt(uint64_t Def = 0) const;
  double asDouble(double Def = 0.0) const;
  const std::string &asString() const;

  /// Elements of an array, members of an object, 0 otherwise.
  size_t size() const;

  // --- Array interface ---

  /// Appends \p V (the value becomes an array if it was null).
  void push(Value V);
  /// Element \p Idx, or a shared null Value when out of range.
  const Value &at(size_t Idx) const;
  const std::vector<Value> &items() const { return Arr; }

  // --- Object interface ---

  /// Sets member \p Key to \p V: replaces the existing member in place
  /// (key order is unchanged) or appends a new one. The value becomes an
  /// object if it was null. Returns *this to allow chaining.
  Value &set(std::string Key, Value V);
  /// The member named \p Key, or nullptr. Objects never hold duplicate
  /// keys: set() replaces, and the parser builds through set(), so a
  /// duplicate key in parsed text keeps the last value.
  const Value *find(std::string_view Key) const;
  /// The member named \p Key, or a shared null Value.
  const Value &operator[](std::string_view Key) const;
  const std::vector<Member> &members() const { return Obj; }

  /// Serializes the value. \p Pretty adds two-space indentation and
  /// newlines; the compact form has no whitespace at all. Object keys are
  /// always written in insertion order.
  std::string dump(bool Pretty = true) const;

  bool operator==(const Value &O) const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<Value> Arr;
  std::vector<Member> Obj;

  void dumpTo(std::string &Out, unsigned Depth, bool Pretty) const;
};

/// One key/value member of an object.
struct Member {
  std::string Key;
  Value Val;
};

/// Appends the JSON string-literal encoding of \p S (including the
/// surrounding quotes) to \p Out, escaping quotes, backslashes and
/// control characters. Non-ASCII bytes pass through untouched (the
/// writer assumes UTF-8 input).
void appendEscaped(std::string &Out, std::string_view S);

/// Parses a complete JSON document. Returns false on malformed input or
/// trailing garbage and, when \p Err is non-null, stores a
/// "line:col: message" diagnostic. Nesting is limited to 100 levels.
bool parse(std::string_view Text, Value &Out, std::string *Err = nullptr);

/// Reads and parses the file at \p Path.
bool readFile(const std::string &Path, Value &Out, std::string *Err = nullptr);

/// Pretty-prints \p V to the file at \p Path (trailing newline included).
bool writeFile(const std::string &Path, const Value &V,
               std::string *Err = nullptr);

} // namespace json
} // namespace wcs

#endif // WCS_SUPPORT_JSON_H
