//===- tests/RandomProgram.h - Randomized SCoP/cache generators -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized program and cache-geometry generators shared by the
/// property-test suites (simulator equivalence, batch determinism,
/// stack-distance cross-checks). All randomness flows from the caller's
/// seeded engine, so every failure is reproducible from the test name.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TESTS_RANDOMPROGRAM_H
#define WCS_TESTS_RANDOMPROGRAM_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/scop/Builder.h"

#include <gtest/gtest.h>

#include <random>

namespace wcs {
namespace testutil {

/// Generates a random but well-formed SCoP: loop nests of depth 1-3 with
/// constant or triangular bounds, in-bounds affine accesses (so that the
/// block-aligned layout keeps arrays disjoint), occasional guards.
inline ScopProgram generateProgram(std::mt19937 &Rng) {
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };

  ScopBuilder B("random");
  // Loop extent cap: subscripts stay within MaxIter*2 + 4.
  const int MaxIter = Rand(6, 14);
  struct Arr {
    unsigned Id;
    unsigned Dims;
  };
  std::vector<Arr> Arrays;
  unsigned NumArrays = Rand(1, 3);
  for (unsigned I = 0; I < NumArrays; ++I) {
    unsigned Dims = Rand(1, 2);
    std::vector<int64_t> Ext(Dims, 2 * MaxIter + 6);
    unsigned Elem = Rand(0, 1) ? 8 : 4;
    Arrays.push_back(
        Arr{B.addArray("A" + std::to_string(I), Elem, std::move(Ext)), Dims});
  }

  // A random affine subscript over the current iterators, guaranteed to
  // stay within [0, 2*MaxIter + 5].
  auto Subscript = [&]() {
    if (B.depth() == 0 || Rand(0, 4) == 0)
      return B.cst(Rand(0, 3));
    unsigned Lvl = Rand(0, static_cast<int>(B.depth()) - 1);
    int Coef = Rand(0, 3) == 0 ? 2 : 1;
    return B.iterAt(Lvl) * Coef + B.cst(Rand(0, 3));
  };
  auto EmitAccess = [&]() {
    const Arr &A = Arrays[Rand(0, static_cast<int>(Arrays.size()) - 1)];
    std::vector<AffineExpr> Subs;
    for (unsigned K = 0; K < A.Dims; ++K)
      Subs.push_back(Subscript());
    B.access(A.Id, Rand(0, 2) == 0 ? AccessKind::Write : AccessKind::Read,
             std::move(Subs));
  };

  unsigned NumNests = Rand(1, 2);
  for (unsigned Nest = 0; Nest < NumNests; ++Nest) {
    unsigned Depth = Rand(1, 3);
    for (unsigned D = 0; D < Depth; ++D) {
      AffineExpr Lo = B.cst(Rand(0, 2));
      // Occasionally triangular: lower bound = an outer iterator.
      if (D > 0 && Rand(0, 2) == 0)
        Lo = B.iterAt(Rand(0, static_cast<int>(B.depth()) - 1));
      B.beginLoop("i" + std::to_string(Nest) + std::to_string(D),
                  std::move(Lo), B.cst(MaxIter));
      if (Rand(0, 3) == 0)
        EmitAccess(); // Access between loop levels.
    }
    unsigned Body = Rand(1, 4);
    for (unsigned S = 0; S < Body; ++S) {
      bool Guarded = Rand(0, 3) == 0;
      if (Guarded)
        B.beginGuard(Constraint::ge(
            B.iterAt(static_cast<int>(B.depth()) - 1) - B.cst(Rand(1, 5))));
      EmitAccess();
      if (Guarded)
        B.endGuard();
    }
    for (unsigned D = 0; D < Depth; ++D)
      B.endLoop();
  }
  std::string Err;
  ScopProgram P = B.finish(&Err);
  EXPECT_EQ(Err, "");
  return P;
}

/// A random one- or two-level hierarchy with policy \p K (the L2 policy
/// is varied for PLRU, whose associativity constraint limits geometries).
inline HierarchyConfig randomHierarchy(std::mt19937 &Rng, PolicyKind K,
                                       bool TwoLevel) {
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  CacheConfig L1;
  L1.BlockBytes = 64;
  L1.Assoc = 1u << Rand(0, 2);             // 1, 2 or 4 ways.
  unsigned Sets = 1u << Rand(0, 3);        // 1..8 sets.
  L1.SizeBytes = static_cast<uint64_t>(L1.Assoc) * Sets * 64;
  L1.Policy = K;
  if (!TwoLevel)
    return HierarchyConfig::singleLevel(L1);
  CacheConfig L2 = L1;
  L2.SizeBytes *= 1u << Rand(1, 2); // 2x or 4x the sets.
  L2.Policy = K == PolicyKind::Plru ? PolicyKind::QuadAgeLru : K;
  return HierarchyConfig::twoLevel(L1, L2);
}

} // namespace testutil
} // namespace wcs

#endif // WCS_TESTS_RANDOMPROGRAM_H
