//===- bench/fig09_polycache_config.cpp - Paper Fig. 9 --------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Regenerates the warping side of Fig. 9: warping simulation on
// PolyCache's evaluation configuration -- a two-level LRU write-back
// write-allocate hierarchy (scaled: 4 KiB 4-way L1 + 32 KiB 4-way L2).
//
// Substitution (DESIGN.md): PolyCache has no replication package (the
// paper compares against published numbers), so this harness reports the
// quantity our side controls: warping vs non-warping simulation time on
// exactly PolyCache's cache configuration, plus per-level miss counts.
// The paper's qualitative finding -- relative performance varies wildly
// across kernels, with stencils favoring warping -- shows up as the
// spread of the speedup column.
//
// Environment: WCS_SIZE (default large).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/sim/WarpingSimulator.h"

#include <cstdio>

using namespace wcs;
using namespace wcs::bench;

int main() {
  ProblemSize Size = sizeFromEnv(ProblemSize::Large);
  HierarchyConfig H = scaledPolyCacheConfig();
  std::printf("== Figure 9: the PolyCache configuration (%s), size %s ==\n\n",
              H.str().c_str(), problemSizeName(Size));
  std::printf("%-15s %12s %11s %11s | %10s %10s %9s\n", "kernel",
              "accesses", "L1 misses", "L2 misses", "nonwarp[s]", "warp[s]",
              "speedup");
  GeoMean Mean;
  for (const KernelInfo &K : polybenchKernels()) {
    ScopProgram P = mustBuild(K, Size);
    ConcreteSimulator Ref(P, H);
    SimStats R = Ref.run();
    WarpingSimulator Warp(P, H);
    SimStats W = Warp.run();
    requireEqualMisses(K.Name, R, W);
    double Speedup = R.Seconds / W.Seconds;
    Mean.add(Speedup);
    std::printf("%-15s %12llu %11llu %11llu | %9.3fs %9.3fs %8.2fx\n",
                K.Name, static_cast<unsigned long long>(R.totalAccesses()),
                static_cast<unsigned long long>(R.Level[0].Misses),
                static_cast<unsigned long long>(R.Level[1].Misses),
                R.Seconds, W.Seconds, Speedup);
  }
  std::printf("\ngeomean warping speedup on the PolyCache configuration: "
              "%.2fx\n",
              Mean.value());
  return 0;
}
