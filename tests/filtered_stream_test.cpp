//===- tests/filtered_stream_test.cpp - Filtered-stream cross-checks ------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// The filtered-stream engine's contract is bit-identity on NINE
// hierarchies: recording the L1-miss stream once and answering every L2
// from it -- analytically (conditioned stack-distance banks) or by
// replay -- must reproduce exactly the counters of a full two-level
// ConcreteSimulator run. The property suite enforces this across random
// programs, random geometries and all four L2 policies, and checks that
// everything the engine cannot share (inclusive/exclusive hierarchies,
// truncated recordings) falls back to full simulation with honest
// provenance.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "wcs/driver/Sweep.h"
#include "wcs/scop/Builder.h"
#include "wcs/sim/ConcreteSimulator.h"
#include "wcs/trace/FilteredStream.h"

#include <gtest/gtest.h>

#include <random>

using namespace wcs;
using testutil::generateProgram;

namespace {

const PolicyKind AllPolicies[] = {PolicyKind::Lru, PolicyKind::Fifo,
                                  PolicyKind::Plru, PolicyKind::QuadAgeLru};

/// A random two-level hierarchy with independent L1/L2 policies and a
/// valid set-count relation (L2 sets a multiple of L1 sets).
HierarchyConfig randomTwoLevel(std::mt19937 &Rng, PolicyKind L1Pol,
                               PolicyKind L2Pol, InclusionPolicy Inclusion) {
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  CacheConfig L1;
  L1.BlockBytes = 64;
  L1.Assoc = 1u << Rand(0, 2);      // 1, 2 or 4 ways (PLRU-safe).
  unsigned Sets = 1u << Rand(0, 3); // 1..8 sets.
  L1.SizeBytes = static_cast<uint64_t>(L1.Assoc) * Sets * 64;
  L1.Policy = L1Pol;
  CacheConfig L2 = L1;
  L2.Policy = L2Pol;
  L2.Assoc = 1u << Rand(1, 3); // 2..8 ways.
  L2.SizeBytes =
      static_cast<uint64_t>(L2.Assoc) * (Sets << Rand(0, 2)) * 64;
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2, Inclusion);
  EXPECT_EQ(H.validate(), "") << H.str();
  return H;
}

void expectStatsMatchConcrete(const ScopProgram &P, const HierarchyConfig &H,
                              const SimStats &Got, const char *What) {
  ConcreteSimulator Sim(P, H);
  SimStats Ref = Sim.run();
  ASSERT_EQ(Got.NumLevels, Ref.NumLevels) << What << " " << H.str();
  for (unsigned L = 0; L < Ref.NumLevels; ++L) {
    EXPECT_EQ(Got.Level[L].Accesses, Ref.Level[L].Accesses)
        << What << " " << H.str() << " level " << L << "\n"
        << P.str();
    EXPECT_EQ(Got.Level[L].Misses, Ref.Level[L].Misses)
        << What << " " << H.str() << " level " << L << "\n"
        << P.str();
  }
}

/// Sweeps \p Configs over \p P and requires bit-identity with
/// independent ConcreteSimulator runs, point for point.
void expectSweepMatchesConcrete(const ScopProgram &P,
                                const std::vector<HierarchyConfig> &Configs,
                                const SweepOptions &SO) {
  SweepReport Rep = runSweep(P, Configs, SO);
  ASSERT_EQ(Rep.Points.size(), Configs.size());
  for (size_t I = 0; I < Configs.size(); ++I) {
    const SweepPoint &Pt = Rep.Points[I];
    ASSERT_TRUE(Pt.Ok) << Configs[I].str() << ": " << Pt.Error;
    expectStatsMatchConcrete(P, Configs[I], Pt.Stats,
                             sweepMethodName(Pt.Method));
  }
}

//===----------------------------------------------------------------------===//
// The FilteredStream layer itself
//===----------------------------------------------------------------------===//

TEST(FilteredStream, RecordsExactlyTheL1Misses) {
  std::mt19937 Rng(20260729);
  for (int Trial = 0; Trial < 3; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    CacheConfig L1{1024, 4, 64, PolicyKind::Plru, WriteAllocate::Yes};
    FilteredStream FS = FilteredStream::record(P, L1);
    ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(L1));
    SimStats Ref = Sim.run();
    EXPECT_FALSE(FS.truncated());
    EXPECT_EQ(FS.l1Accesses(), Ref.Level[0].Accesses);
    EXPECT_EQ(FS.l1Misses(), Ref.Level[0].Misses);
    EXPECT_EQ(FS.size(), Ref.Level[0].Misses);
  }
}

/// The direct-replay identity: record + replay == full two-level
/// concrete simulation, for every L2 policy over every L1 policy.
TEST(FilteredStream, ReplayMatchesConcreteAllPolicies) {
  std::mt19937 Rng(42);
  for (int Trial = 0; Trial < 2; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    for (PolicyKind L1Pol : AllPolicies)
      for (PolicyKind L2Pol : AllPolicies) {
        HierarchyConfig H =
            randomTwoLevel(Rng, L1Pol, L2Pol,
                           InclusionPolicy::NonInclusiveNonExclusive);
        FilteredStream FS = FilteredStream::record(P, H.Levels[0]);
        ASSERT_TRUE(FS.answersHierarchy(H));
        expectStatsMatchConcrete(P, H, FS.replay(H.Levels[1]), "replay");
      }
  }
}

/// The analytical identity: an L2 stack-distance bank conditioned on
/// the stream answers every LRU write-allocate L2 geometry.
TEST(FilteredStream, ConditionedBankMatchesConcreteLruL2) {
  std::mt19937 Rng(7);
  ScopProgram P = generateProgram(Rng);
  CacheConfig L1{512, 2, 64, PolicyKind::Lru, WriteAllocate::Yes};
  FilteredStream FS = FilteredStream::record(P, L1);
  for (unsigned L2Sets : {1u, 4u, 16u}) {
    SetDistanceBank Bank(64, L2Sets);
    FS.feed(Bank);
    EXPECT_EQ(Bank.totalAccesses(), FS.size());
    for (unsigned L2Assoc : {2u, 8u}) {
      CacheConfig L2{static_cast<uint64_t>(L2Assoc) * L2Sets * 64, L2Assoc,
                     64, PolicyKind::Lru, WriteAllocate::Yes};
      HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);
      if (!H.validate().empty())
        continue; // L2 sets must be a multiple of L1 sets.
      ConcreteSimulator Sim(P, H);
      SimStats Ref = Sim.run();
      EXPECT_EQ(Bank.missesForCache(L2), Ref.Level[1].Misses)
          << H.str() << "\n"
          << P.str();
    }
  }
}

/// No-write-allocate levels stay exact: an L1 write miss that bypasses
/// the L1 still reaches the L2, and the record's write bit drives the
/// L2's own allocate decision.
TEST(FilteredStream, NoWriteAllocateLevelsMatchConcrete) {
  std::mt19937 Rng(31);
  for (int Trial = 0; Trial < 3; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    for (WriteAllocate L1Alloc : {WriteAllocate::Yes, WriteAllocate::No})
      for (WriteAllocate L2Alloc :
           {WriteAllocate::Yes, WriteAllocate::No}) {
        CacheConfig L1{1024, 4, 64, PolicyKind::Lru, L1Alloc};
        CacheConfig L2{8192, 8, 64, PolicyKind::Fifo, L2Alloc};
        HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);
        FilteredStream FS = FilteredStream::record(P, L1);
        ASSERT_TRUE(FS.answersHierarchy(H));
        expectStatsMatchConcrete(P, H, FS.replay(L2), "NWA replay");
      }
  }
}

TEST(FilteredStream, RejectsWhatItCannotAnswer) {
  std::mt19937 Rng(13);
  ScopProgram P = generateProgram(Rng);
  CacheConfig L1{512, 2, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2 = L1;
  L2.SizeBytes = 2048;
  L2.Assoc = 8;
  FilteredStream FS = FilteredStream::record(P, L1);
  std::string Why;

  EXPECT_FALSE(
      FS.answersHierarchy(HierarchyConfig::singleLevel(L1), &Why));
  EXPECT_NE(Why.find("two-level"), std::string::npos);

  EXPECT_FALSE(FS.answersHierarchy(
      HierarchyConfig::twoLevel(L1, L2, InclusionPolicy::Inclusive), &Why));
  EXPECT_NE(Why.find("NINE"), std::string::npos);

  CacheConfig OtherL1 = L1;
  OtherL1.Assoc = 4;
  EXPECT_FALSE(FS.answersHierarchy(
      HierarchyConfig::twoLevel(OtherL1, L2), &Why));
  EXPECT_NE(Why.find("L1"), std::string::npos);

  FilteredStream Capped = FilteredStream::record(P, L1, SimOptions(),
                                                 /*MaxRecords=*/1);
  EXPECT_TRUE(Capped.truncated());
  EXPECT_FALSE(
      Capped.answersHierarchy(HierarchyConfig::twoLevel(L1, L2), &Why));
  EXPECT_NE(Why.find("truncated"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Run-length-encoded (periodic) streams
//===----------------------------------------------------------------------===//

/// A time-stepped sweep over an array: the miss stream under a small L1
/// repeats verbatim every step, so the recording must compress.
ScopProgram timeSteppedProgram(int Steps, int Elems) {
  ScopBuilder B("stepped");
  unsigned A = B.addArray("A", 8, {static_cast<int64_t>(Elems)});
  B.beginLoop("t", B.cst(0), B.cst(Steps - 1));
  B.beginLoop("i", B.cst(0), B.cst(Elems - 1));
  B.read(A, {B.iterAt(1)});
  B.write(A, {B.iterAt(1)});
  B.endLoop();
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  EXPECT_EQ(Err, "");
  return P;
}

TEST(FilteredStreamRle, CompressesPeriodicStreamsExactly) {
  // 256 blocks through a 16-block L1: every access misses the L1 sweep
  // after sweep, and the miss stream repeats verbatim per time step.
  ScopProgram P = timeSteppedProgram(/*Steps=*/12, /*Elems=*/2048);
  CacheConfig L1{1024, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  FilteredStream FS = FilteredStream::record(P, L1);
  ASSERT_FALSE(FS.truncated());
  EXPECT_TRUE(FS.compressed());
  EXPECT_LT(FS.storedRecords(), FS.size() / 4)
      << "a 12-fold repetition must fold";

  // The segment cover is exact: expansion reproduces the stream length
  // and the record-by-record walk drives a bit-identical replica.
  uint64_t Expanded = 0;
  for (const FilteredSegment &S : FS.segments())
    Expanded += S.Len * S.Reps;
  EXPECT_EQ(Expanded, FS.size());
  EXPECT_EQ(FS.size(), FS.l1Misses());

  // Replay and conditioned banks over the compressed stream must still
  // match full two-level simulation.
  for (PolicyKind L2Pol : AllPolicies) {
    CacheConfig L2{8192, 8, 64, L2Pol, WriteAllocate::Yes};
    HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);
    ASSERT_TRUE(FS.answersHierarchy(H));
    expectStatsMatchConcrete(P, H, FS.replay(L2), "RLE replay");
  }
  SetDistanceBank Bank(64, 4);
  FS.feed(Bank);
  EXPECT_EQ(Bank.totalAccesses(), FS.size());
  CacheConfig L2{16 * 4 * 64, 16, 64, PolicyKind::Lru,
                 WriteAllocate::Yes};
  ConcreteSimulator Sim(P, HierarchyConfig::twoLevel(L1, L2));
  SimStats Ref = Sim.run();
  EXPECT_EQ(Bank.missesForCache(L2), Ref.Level[1].Misses);
}

TEST(FilteredStreamRle, ForEachRecordExpandsInOrder) {
  ScopProgram P = timeSteppedProgram(/*Steps=*/6, /*Elems=*/1024);
  CacheConfig L1{512, 2, 64, PolicyKind::Lru, WriteAllocate::Yes};
  FilteredStream Compressed = FilteredStream::record(P, L1);
  ASSERT_TRUE(Compressed.compressed());
  // An independent tap-order reference: drive the same L1 concretely.
  std::vector<FilteredRecord> Ref;
  ConcreteSimulator Sim(P, HierarchyConfig::singleLevel(L1));
  Sim.setTap([&Ref](BlockId B, bool IsWrite, const HierarchyOutcome &O) {
    if (!O.L1Hit)
      Ref.push_back(FilteredRecord{B, IsWrite});
  });
  Sim.run();
  ASSERT_EQ(Compressed.size(), Ref.size());
  size_t I = 0;
  Compressed.forEachRecord([&](const FilteredRecord &R) {
    ASSERT_LT(I, Ref.size());
    EXPECT_TRUE(R == Ref[I]) << "record " << I;
    ++I;
  });
  EXPECT_EQ(I, Ref.size());
}

TEST(FilteredStreamRle, CapCompressesThenContinues) {
  ScopProgram P = timeSteppedProgram(/*Steps=*/16, /*Elems=*/4096);
  CacheConfig L1{1024, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  FilteredStream Free = FilteredStream::record(P, L1);
  ASSERT_FALSE(Free.truncated());
  // A cap between the compressed and the expanded footprint: recording
  // must fold at the cap and finish, not truncate.
  uint64_t Cap = Free.storedRecords() * 3;
  ASSERT_LT(Cap, Free.size());
  FilteredStream Capped =
      FilteredStream::record(P, L1, SimOptions(), Cap);
  EXPECT_FALSE(Capped.truncated());
  EXPECT_LE(Capped.storedRecords(), Cap);
  EXPECT_EQ(Capped.size(), Free.size());
  // And the capped stream still answers exactly.
  CacheConfig L2{8192, 8, 64, PolicyKind::Fifo, WriteAllocate::Yes};
  HierarchyConfig H = HierarchyConfig::twoLevel(L1, L2);
  expectStatsMatchConcrete(P, H, Capped.replay(L2), "capped replay");
}

TEST(FilteredStreamRle, IncompressibleStreamStillTruncates) {
  // One sweep over a large array: every miss names a fresh block, so
  // the stream has no repetition at all and the cap must truncate.
  ScopBuilder B("onesweep");
  unsigned A = B.addArray("A", 8, {4096});
  B.beginLoop("i", B.cst(0), B.cst(4095));
  B.read(A, {B.iterAt(0)});
  B.endLoop();
  std::string Err;
  ScopProgram P = B.finish(&Err);
  ASSERT_EQ(Err, "");
  CacheConfig L1{128, 2, 64, PolicyKind::Lru, WriteAllocate::Yes};
  FilteredStream Free = FilteredStream::record(P, L1);
  ASSERT_FALSE(Free.compressed());
  ASSERT_EQ(Free.size(), 512u); // One miss per 64-byte block.
  FilteredStream Capped = FilteredStream::record(
      P, L1, SimOptions(), Free.storedRecords() / 2);
  EXPECT_TRUE(Capped.truncated());
  EXPECT_EQ(Capped.size(), 0u);
  EXPECT_EQ(Capped.storedRecords(), 0u);
}

//===----------------------------------------------------------------------===//
// The sweep driver's multi-level path
//===----------------------------------------------------------------------===//

/// The headline property: random programs x random NINE two-level
/// configs across all four L2 policies, every point bit-identical to an
/// independent full simulation and carrying filtered-stream provenance.
TEST(SweepFiltered, MatchesConcreteOnRandomNineGrids) {
  std::mt19937 Rng(20220613);
  for (int Trial = 0; Trial < 3; ++Trial) {
    ScopProgram P = generateProgram(Rng);
    std::vector<HierarchyConfig> Grid;
    for (PolicyKind L2Pol : AllPolicies)
      for (int N = 0; N < 2; ++N)
        Grid.push_back(randomTwoLevel(
            Rng, N == 0 ? PolicyKind::Lru : PolicyKind::Plru, L2Pol,
            InclusionPolicy::NonInclusiveNonExclusive));
    SweepOptions SO;
    SO.Threads = 2;
    SweepReport Rep = runSweep(P, Grid, SO);
    for (const SweepPoint &Pt : Rep.Points)
      EXPECT_EQ(Pt.Method, SweepMethod::FilteredStream) << Pt.Cache.str();
    expectSweepMatchesConcrete(P, Grid, SO);
  }
}

/// Grid points sharing an L1 share one recording, and the second stage
/// is visible in the provenance: conditioned banks for LRU
/// write-allocate L2s, concrete replays for the rest.
TEST(SweepFiltered, GroupsByL1WithAnalyticAndReplayProvenance) {
  std::mt19937 Rng(3);
  ScopProgram P = generateProgram(Rng);
  CacheConfig L1{1024, 4, 64, PolicyKind::Plru, WriteAllocate::Yes};
  CacheConfig L2Lru{8192, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2Big = L2Lru;
  L2Big.SizeBytes = 16384;
  CacheConfig L2Qlru = L2Lru;
  L2Qlru.Policy = PolicyKind::QuadAgeLru;
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::twoLevel(L1, L2Lru),
      HierarchyConfig::twoLevel(L1, L2Big),
      HierarchyConfig::twoLevel(L1, L2Qlru),
      HierarchyConfig::twoLevel(L1, L2Qlru), // Duplicate: must dedup.
  };
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  EXPECT_EQ(Rep.FilteredGroups, 1u); // One L1 -> one recording.
  EXPECT_EQ(Rep.FilteredPoints, 4u);
  EXPECT_EQ(Rep.StackDistancePoints, 0u);
  EXPECT_EQ(Rep.SimulatedJobs, 1u); // The deduplicated QLRU replay.
  EXPECT_EQ(Rep.ReplayJobs, 1u);
  EXPECT_EQ(Rep.DedupedPoints, 1u);
  for (const SweepPoint &Pt : Rep.Points)
    EXPECT_EQ(Pt.Method, SweepMethod::FilteredStream) << Pt.Cache.str();
  EXPECT_EQ(Rep.Points[0].Backend, SimBackend::StackDistance);
  EXPECT_EQ(Rep.Points[1].Backend, SimBackend::StackDistance);
  EXPECT_EQ(Rep.Points[2].Backend, SimBackend::Concrete);
  EXPECT_EQ(Rep.Points[3].Backend, SimBackend::Concrete);
  // The deduplicated twin reports the shared job's counters.
  EXPECT_EQ(Rep.Points[3].Stats.Level[1].Misses,
            Rep.Points[2].Stats.Level[1].Misses);
  expectSweepMatchesConcrete(P, Grid, SO);
}

/// Inclusive and exclusive hierarchies couple the L1 to the L2, so they
/// must fall back to full simulation -- with honest provenance -- and
/// still match.
TEST(SweepFiltered, InclusiveExclusiveFallBackToSimulation) {
  std::mt19937 Rng(99);
  ScopProgram P = generateProgram(Rng);
  std::vector<HierarchyConfig> Grid = {
      randomTwoLevel(Rng, PolicyKind::Lru, PolicyKind::Lru,
                     InclusionPolicy::Inclusive),
      randomTwoLevel(Rng, PolicyKind::Lru, PolicyKind::QuadAgeLru,
                     InclusionPolicy::Exclusive),
  };
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  EXPECT_EQ(Rep.FilteredPoints, 0u);
  for (const SweepPoint &Pt : Rep.Points) {
    EXPECT_EQ(Pt.Method, SweepMethod::Simulated) << Pt.Cache.str();
    EXPECT_EQ(Pt.Backend, SimBackend::Warping) << Pt.Cache.str();
  }
  // Warping and concrete agree (the equivalence suite's guarantee), so
  // the concrete cross-check stays valid for the fallback points.
  expectSweepMatchesConcrete(P, Grid, SO);
}

/// A recording that overruns the stream cap demotes its whole group to
/// plain simulation -- honest provenance, identical counters.
TEST(SweepFiltered, TruncatedRecordingFallsBackToSimulation) {
  std::mt19937 Rng(17);
  ScopProgram P = generateProgram(Rng);
  CacheConfig L1{512, 2, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2{4096, 4, 64, PolicyKind::QuadAgeLru, WriteAllocate::Yes};
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::twoLevel(L1, L2),
      HierarchyConfig::twoLevel(L1, L2), // Duplicate: dedups as a job.
  };
  SweepOptions SO;
  SO.MaxFilteredRecords = 1; // Force truncation.
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  EXPECT_EQ(Rep.FilteredGroups, 0u);
  EXPECT_EQ(Rep.FilteredPoints, 0u);
  EXPECT_EQ(Rep.ReplayJobs, 0u);
  EXPECT_EQ(Rep.SimulatedJobs, 1u);
  EXPECT_EQ(Rep.DedupedPoints, 1u);
  for (const SweepPoint &Pt : Rep.Points)
    EXPECT_EQ(Pt.Method, SweepMethod::Simulated) << Pt.Cache.str();
  expectSweepMatchesConcrete(P, Grid, SO);
}

/// Mixed grids keep every partition honest: single-level LRU points
/// stay on the shared pass, NINE two-level points go filtered, the rest
/// simulates.
TEST(SweepFiltered, MixedGridPartitions) {
  std::mt19937 Rng(23);
  ScopProgram P = generateProgram(Rng);
  CacheConfig L1{1024, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2{8192, 8, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig Fifo = L1;
  Fifo.Policy = PolicyKind::Fifo;
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::singleLevel(L1),
      HierarchyConfig::twoLevel(L1, L2),
      HierarchyConfig::twoLevel(L1, L2, InclusionPolicy::Inclusive),
      HierarchyConfig::singleLevel(Fifo),
  };
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  EXPECT_EQ(Rep.Points[0].Method, SweepMethod::StackDistance);
  EXPECT_EQ(Rep.Points[1].Method, SweepMethod::FilteredStream);
  EXPECT_EQ(Rep.Points[2].Method, SweepMethod::Simulated);
  EXPECT_EQ(Rep.Points[3].Method, SweepMethod::Simulated);
  expectSweepMatchesConcrete(P, Grid, SO);
}

/// wcs-sweep documents round-trip the new provenance exactly.
TEST(SweepFiltered, DocRoundTripsFilteredProvenance) {
  std::mt19937 Rng(5);
  ScopProgram P = generateProgram(Rng);
  CacheConfig L1{1024, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2Lru{4096, 4, 64, PolicyKind::Lru, WriteAllocate::Yes};
  CacheConfig L2Fifo = L2Lru;
  L2Fifo.Policy = PolicyKind::Fifo;
  std::vector<HierarchyConfig> Grid = {
      HierarchyConfig::twoLevel(L1, L2Lru),
      HierarchyConfig::twoLevel(L1, L2Fifo),
  };
  SweepOptions SO;
  SweepReport Rep = runSweep(P, Grid, SO);
  ASSERT_TRUE(Rep.allOk());
  SweepDoc Doc = makeSweepDoc("wcs-sim", "random", "SMALL", Rep);

  std::string Text = toJson(Doc).dump();
  json::Value Parsed;
  std::string Err;
  ASSERT_TRUE(json::parse(Text, Parsed, &Err)) << Err;
  SweepDoc Back;
  ASSERT_TRUE(fromJson(Parsed, Back, &Err)) << Err;

  EXPECT_EQ(Back.FilteredGroups, 1u);
  EXPECT_EQ(Back.FilteredRecords, Doc.FilteredRecords);
  ASSERT_EQ(Back.Points.size(), 2u);
  EXPECT_EQ(Back.Points[0].Method, SweepMethod::FilteredStream);
  EXPECT_EQ(Back.Points[0].Backend, SimBackend::StackDistance);
  EXPECT_EQ(Back.Points[1].Method, SweepMethod::FilteredStream);
  EXPECT_EQ(Back.Points[1].Backend, SimBackend::Concrete);
  EXPECT_EQ(toJson(Back).dump(), Text);
}

/// The filtered-stream figures joined the v1 schema after its first
/// release: a pre-engine v1 document (no filtered_groups /
/// filtered_records / record_seconds) must still parse, with the
/// figures defaulting to zero.
TEST(SweepFiltered, ReadsPreEngineV1Documents) {
  json::Value V = json::Value::object();
  V.set("schema", SweepSchemaName);
  V.set("schema_version", SweepSchemaVersion);
  V.set("tool", "wcs-sim");
  V.set("program", "gemm");
  V.set("size", "MINI");
  V.set("threads", 1u);
  V.set("trace_pass_seconds", 0.5);
  V.set("trace_accesses", static_cast<uint64_t>(100));
  V.set("simulated_jobs", static_cast<uint64_t>(0));
  V.set("deduped_points", static_cast<uint64_t>(0));
  V.set("points", json::Value::array());
  SweepDoc Out;
  Out.FilteredGroups = 7; // Must be reset, not left stale.
  std::string Err;
  ASSERT_TRUE(fromJson(V, Out, &Err)) << Err;
  EXPECT_EQ(Out.FilteredGroups, 0u);
  EXPECT_EQ(Out.FilteredRecords, 0u);
  EXPECT_EQ(Out.RecordSeconds, 0.0);
  EXPECT_EQ(Out.Program, "gemm");
  // The periodic-pass figures joined v1 even later; they too default.
  EXPECT_FALSE(Out.PeriodicPass);
  EXPECT_EQ(Out.PeriodicPassSeconds, 0.0);
  EXPECT_EQ(Out.PeriodicWarps, 0u);
  EXPECT_EQ(Out.FilteredStoredRecords, 0u);
  EXPECT_TRUE(Out.DemotedL1s.empty());

  // Present but mistyped still fails loudly.
  V.set("filtered_groups", "three");
  EXPECT_FALSE(fromJson(V, Out, &Err));
  EXPECT_NE(Err.find("filtered_groups"), std::string::npos);
}

} // namespace
