//===- wcs/trace/FilteredStream.h - L1-miss-filtered streams ----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recorded, replayable L1-miss-filtered access streams: the substrate
/// of multi-level design-space sweeps. In a NINE (non-inclusive
/// non-exclusive) hierarchy the L2 is accessed exactly when the L1
/// misses, with the same block (paper Eq. (24)), and the L1 evolves
/// independently of the L2. The stream of L1 misses therefore fully
/// determines every L2's behavior: record it once per distinct L1
/// configuration and every (L1, L2) grid point sharing that L1 follows
/// without re-simulating the L1.
///
/// Filtered streams of polyhedral programs are themselves strongly
/// periodic (the same loop structure that makes warping work), so a
/// recorded stream is stored run-length encoded: a trace-level period
/// detector finds segments whose records repeat an IDENTICAL sequence
/// and stores one copy plus a repetition count. Compression is exact
/// (only verified verbatim repeats are folded), shrinks the stream
/// memory the MaxRecords cap guards -- a recording that would overrun
/// the cap first compresses and only truncates when the stream really
/// is incompressible -- and opens sublinear consumption:
///
///  - replay(): drives the records through a concrete L2 of any policy
///    and write-miss mode, reproducing the two-level NINE counters bit
///    for bit. Repeated segments walk until the L2 state maps onto
///    itself across one repetition (an exact state comparison), then
///    apply the remaining repetitions analytically; if the state never
///    recurs, every repetition is walked -- the sound fallback.
///  - feed(): conditions a per-set stack-distance bank on the stream.
///    Repeated segments walk twice (the second repetition under a
///    period capture) and enter the bank's bulk update
///    (SetDistanceBank::addPeriodicContribution) for the rest.
///
/// Inclusive and exclusive hierarchies couple the L1 to the L2
/// (back-invalidation, victim caching), so their L1 streams depend on
/// the L2 and cannot be shared; answersHierarchy() rejects them and the
/// sweep planner falls back to full simulation with honest provenance.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TRACE_FILTEREDSTREAM_H
#define WCS_TRACE_FILTEREDSTREAM_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/scop/Program.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"
#include "wcs/trace/StackDistance.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wcs {

/// One record of an L1-miss-filtered stream: the block the L2 sees and
/// whether the originating access was a write (which decides the L2's
/// allocate-on-miss behavior under no-write-allocate).
struct FilteredRecord {
  BlockId Block;
  bool IsWrite;
};

inline bool operator==(const FilteredRecord &A, const FilteredRecord &B) {
  return A.Block == B.Block && A.IsWrite == B.IsWrite;
}

/// One segment of a run-length-encoded stream: the stored records
/// [Offset, Offset + Len) replayed Reps times back to back. Reps == 1
/// is a literal segment.
struct FilteredSegment {
  size_t Offset = 0;
  uint64_t Len = 0;
  uint64_t Reps = 1;
};

/// The L1-miss-filtered access stream of one program under one L1
/// configuration, plus the L1 counters of the recording run.
class FilteredStream {
public:
  FilteredStream() = default;

  /// Records the stream: one concrete simulation of \p L1 alone over
  /// \p Program, appending a record per L1 miss. When \p MaxRecords is
  /// nonzero it caps the STORED records: a stream about to overrun it
  /// is first period-compressed, and only when that cannot free room
  /// does recording abort with a truncated() result -- unusable for
  /// answering grid points, so callers must fall back to full
  /// simulation.
  static FilteredStream record(const ScopProgram &Program,
                               const CacheConfig &L1,
                               const SimOptions &Opts = SimOptions(),
                               uint64_t MaxRecords = 0);

  const CacheConfig &l1() const { return L1; }

  /// Length of the (logical, expanded) stream: the number of L1 misses.
  uint64_t size() const { return Expanded; }
  /// Records physically stored after run-length encoding (what the
  /// MaxRecords cap bounds).
  size_t storedRecords() const { return Records.size(); }
  /// The RLE segment cover of the stream, in stream order.
  const std::vector<FilteredSegment> &segments() const { return Segments; }
  /// True when at least one segment folds repetitions.
  bool compressed() const {
    for (const FilteredSegment &S : Segments)
      if (S.Reps > 1)
        return true;
    return false;
  }
  bool truncated() const { return Truncated; }

  /// Visits every record of the expanded stream, in stream order.
  template <typename Fn> void forEachRecord(Fn &&F) const {
    for (const FilteredSegment &S : Segments)
      for (uint64_t R = 0; R < S.Reps; ++R)
        for (uint64_t I = 0; I < S.Len; ++I)
          F(Records[S.Offset + I]);
  }

  /// L1 counters of the recording run. l1Misses() == size(): in NINE
  /// every L1 miss -- including a non-allocating write miss -- accesses
  /// the L2.
  uint64_t l1Accesses() const { return L1Stats.Accesses; }
  uint64_t l1Misses() const { return L1Stats.Misses; }
  const LevelStats &l1Stats() const { return L1Stats; }

  /// Wall-clock seconds of the recording simulation.
  double recordSeconds() const { return Seconds; }

  /// True when \p H is answerable from this stream: a two-level NINE
  /// hierarchy whose L1 equals the recorded one (and the stream was not
  /// truncated). On false, \p Why (if given) names the reason.
  bool answersHierarchy(const HierarchyConfig &H,
                        std::string *Why = nullptr) const;

  /// True when an L2 with config \p L2 is answerable analytically from
  /// a stack-distance bank conditioned on the stream (LRU,
  /// write-allocate: every filtered access then allocates, so the L2 is
  /// a pure per-set LRU stack over the stream).
  static bool l2IsAnalytic(const CacheConfig &L2) {
    return L2.Policy == PolicyKind::Lru &&
           L2.WriteAlloc == WriteAllocate::Yes;
  }

  /// Conditions \p Bank on the (expanded) stream. The bank's block size
  /// must equal the L1's: levels of a hierarchy share one block size,
  /// so records are already at L2 block granularity. Repeated segments
  /// are applied analytically after two concrete walks (see file
  /// comment), so the cost is sublinear in size() on periodic streams
  /// while the conditioned bank stays bit-identical.
  void feed(SetDistanceBank &Bank) const;

  /// Replays the stream through a concrete L2 \p L2 and returns the
  /// full two-level NINE counters: Level[0] from the recording run,
  /// Level[1] from the replay. Stats.Seconds is the replay time only
  /// (the recording is shared across many replays; attribution is the
  /// caller's policy); Stats.SimulatedAccesses counts the records
  /// actually walked (repetitions skipped via state recurrence are
  /// accounted analytically, like warped accesses elsewhere).
  SimStats replay(const CacheConfig &L2) const;

private:
  /// Appends one record to the trailing literal segment.
  void appendRecord(const FilteredRecord &R);
  /// Period-compresses the trailing literal segment in place. Returns
  /// the number of stored records freed.
  size_t compressTail();

  CacheConfig L1;
  LevelStats L1Stats;
  double Seconds = 0.0;
  bool Truncated = false;
  uint64_t Expanded = 0;
  std::vector<FilteredRecord> Records;  ///< Stored (compressed) records.
  std::vector<FilteredSegment> Segments; ///< Ordered cover of the stream.
};

} // namespace wcs

#endif // WCS_TRACE_FILTEREDSTREAM_H
