//===- wcs/serve/ResultStore.h - Content-addressed result store -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wcs-serve memoization store: canonical sweep-point keys
/// (driver/SweepRequest's sweepPointKey) mapped to their SweepPoint
/// results, persisted as an append-only JSON-lines log. One line per
/// insert:
///
///   {"hash":"<16 hex>","key":"<canonical key>","point":{...}}
///
/// where hash is hashHex(hashString(key)) -- redundant with the key,
/// which makes every line self-checking: a line whose hash does not
/// match its key is corruption, not data. Loading replays the log
/// (last insert wins); a torn tail -- a partial final line from a
/// crashed writer, or any line that fails to parse or self-check --
/// truncates the file at the first bad byte and keeps everything
/// before it, so a crash can lose at most the in-flight insert.
/// Inserts append and flush one line; there is no background
/// rewriting. Explicit compaction (the wcs-serve --compact command)
/// rewrites the log atomically (temp file + rename), dropping
/// superseded duplicates and, given a cap, the oldest-inserted entries
/// beyond it.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_SERVE_RESULTSTORE_H
#define WCS_SERVE_RESULTSTORE_H

#include "wcs/driver/Sweep.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace wcs {

class ResultStore {
public:
  /// Opens the log at \p Path, creating it if absent, replaying and
  /// tail-recovering it if present. An empty \p Path makes a purely
  /// in-memory store (tests, --store-less serving). Returns false only
  /// on I/O errors; corruption is recovered, not fatal.
  bool open(const std::string &Path, std::string *Err);

  /// Looks up one canonical point key. A hit copies the stored point
  /// into \p Out exactly as inserted (stats, provenance, seconds) and
  /// counts toward hits(); a miss counts toward misses().
  bool lookup(const std::string &Key, SweepPoint &Out);

  /// Inserts (or supersedes) the result for \p Key: appends one line
  /// to the log and updates the index. Last insert wins on reload.
  /// A failed append (I/O error, injected store.write fault) returns
  /// false WITHOUT updating the index -- the key stays a miss, so the
  /// point is honestly recomputed later -- and marks the log tail
  /// dirty: the on-disk bytes after the failure point cannot be
  /// trusted, so further appends are refused until the store is
  /// reopened (open() truncates the torn tail, recovering every line
  /// before it). Lookups keep serving from memory throughout.
  bool insert(const std::string &Key, const SweepPoint &Point,
              std::string *Err);

  /// Rewrites the log to one line per live key, atomically (temp file
  /// + rename). \p MaxEntries > 0 additionally evicts the
  /// oldest-inserted entries beyond the cap. No-op for in-memory
  /// stores (the index is already compact).
  bool compact(size_t MaxEntries, std::string *Err);

  size_t numEntries() const { return Index.size(); }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  /// Bytes dropped by torn-tail recovery at open() (0 = clean load).
  uint64_t recoveredBytes() const { return RecoveredBytes; }
  /// True after a failed append: the log refuses further writes until
  /// reopened (see insert()).
  bool tailDirty() const { return TailDirty; }
  const std::string &path() const { return Path; }

private:
  struct Entry {
    std::string Key;
    SweepPoint Point;
    uint64_t Seq = 0; ///< Insertion order; compaction evicts lowest.
  };

  bool appendLine(const Entry &E, std::string *Err);

  std::string Path; ///< Empty = in-memory.
  std::vector<Entry> Entries; ///< Live entries, unordered; see Index.
  std::unordered_map<std::string, size_t> Index; ///< Key -> Entries idx.
  uint64_t NextSeq = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t RecoveredBytes = 0;
  bool TailDirty = false; ///< A failed append poisoned the log tail.
};

/// Renders one store log line (exposed for tests and external tooling
/// that wants to audit a log).
std::string resultStoreLine(const std::string &Key, const SweepPoint &Point);

} // namespace wcs

#endif // WCS_SERVE_RESULTSTORE_H
