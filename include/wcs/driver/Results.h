//===- wcs/driver/Results.h - Structured results serialization -*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable face of the simulator: JSON serialization of the
/// simulation counters (SimStats), configurations (CacheConfig,
/// HierarchyConfig, WarpConfig, SimOptions) and batch outcomes
/// (BatchResult), plus the schema-versioned results-file container that
/// wcs-sim --json and wcs-bench write and wcs-report diffs. Every
/// toJson emits keys in a fixed order, so a given run always serializes
/// to byte-identical text; every fromJson validates kinds and rejects
/// unknown enum spellings so a results file survives a round trip
/// exactly or fails loudly.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_DRIVER_RESULTS_H
#define WCS_DRIVER_RESULTS_H

#include "wcs/cache/CacheConfig.h"
#include "wcs/driver/BatchRunner.h"
#include "wcs/sim/SimConfig.h"
#include "wcs/sim/SimStats.h"
#include "wcs/support/Json.h"

#include <string>
#include <vector>

namespace wcs {

/// Results-file format identifier and version. The version bumps on any
/// change a reader could misinterpret silently; readers reject files
/// whose schema name or version does not match exactly.
inline constexpr const char ResultsSchemaName[] = "wcs-results";
inline constexpr int64_t ResultsSchemaVersion = 1;

json::Value toJson(const LevelStats &S);
json::Value toJson(const SimStats &S);
json::Value toJson(const CacheConfig &C);
json::Value toJson(const HierarchyConfig &H);
json::Value toJson(const WarpConfig &W);
json::Value toJson(const SimOptions &O);
json::Value toJson(const BatchResult &R);

/// Each fromJson parses the corresponding toJson output. On malformed
/// input it returns false and, when \p Err is non-null, stores a
/// diagnostic; \p Out is unspecified then.
bool fromJson(const json::Value &V, LevelStats &Out, std::string *Err);
bool fromJson(const json::Value &V, SimStats &Out, std::string *Err);
bool fromJson(const json::Value &V, CacheConfig &Out, std::string *Err);
bool fromJson(const json::Value &V, HierarchyConfig &Out, std::string *Err);
bool fromJson(const json::Value &V, WarpConfig &Out, std::string *Err);
bool fromJson(const json::Value &V, SimOptions &Out, std::string *Err);
bool fromJson(const json::Value &V, BatchResult &Out, std::string *Err);

/// One simulation outcome in a results file: a batch result plus the
/// context (backend, cache hierarchy, simulation options) needed to
/// interpret and diff it.
/// Tag is the diff key — wcs-report matches entries of two files by Tag,
/// so producers must make it unique within a file (e.g.
/// "fig06/gemm/PLRU/warping").
struct ResultEntry {
  std::string Tag;
  SimBackend Backend = SimBackend::Warping;
  HierarchyConfig Cache;
  SimOptions Options;
  bool Ok = false;
  std::string Error;
  SimStats Stats;
  /// Per-repetition wall-time samples in seconds (wcs-bench --reps N).
  /// When present, Stats.Seconds is their mean; single-sample producers
  /// leave this empty and readers fall back to {Stats.Seconds}.
  /// Serialized as "samples", optional on read so pre-reps baseline
  /// files still parse.
  std::vector<double> Samples;
};

/// A whole results file: producer metadata plus entries.
struct ResultsDoc {
  std::string Tool;     ///< Producing tool ("wcs-sim", "wcs-bench").
  std::string SizeName; ///< Problem-size label, empty when inapplicable.
  unsigned Threads = 1; ///< Worker threads the batch ran on.
  std::vector<ResultEntry> Entries;

  /// The entry tagged \p Tag, or nullptr.
  const ResultEntry *find(const std::string &Tag) const;
};

json::Value toJson(const ResultEntry &E);
bool fromJson(const json::Value &V, ResultEntry &Out, std::string *Err);

/// The document serializer stamps schema name + version; the parser
/// rejects a missing or mismatching stamp (including files from a future
/// schema version).
json::Value toJson(const ResultsDoc &D);
bool fromJson(const json::Value &V, ResultsDoc &Out, std::string *Err);

bool writeResultsFile(const std::string &Path, const ResultsDoc &D,
                      std::string *Err);
bool readResultsFile(const std::string &Path, ResultsDoc &Out,
                     std::string *Err);

/// Zips a batch work list with its report into result entries (jobs and
/// results are index-aligned by BatchRunner). Entries inherit the job
/// Tag, backend and cache config verbatim.
std::vector<ResultEntry> makeResultEntries(const std::vector<BatchJob> &Jobs,
                                           const BatchReport &Report);

} // namespace wcs

#endif // WCS_DRIVER_RESULTS_H
