//===- polybench/Registry.cpp - Kernel lookup and construction -------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"

#include "wcs/frontend/Frontend.h"

using namespace wcs;

const KernelInfo *wcs::findKernel(const std::string &Name) {
  for (const KernelInfo &K : polybenchKernels())
    if (Name == K.Name)
      return &K;
  return nullptr;
}

ScopProgram wcs::buildKernel(const KernelInfo &K, ProblemSize S,
                             std::string *Error) {
  ParseResult R = parseScop(K.Source, paramBinding(K, S), K.Name);
  if (Error)
    *Error = R.ok() ? "" : R.message();
  return std::move(R.Program);
}

ScopProgram wcs::buildKernel(const std::string &Name, ProblemSize S,
                             std::string *Error) {
  const KernelInfo *K = findKernel(Name);
  if (!K) {
    if (Error)
      *Error = "unknown PolyBench kernel '" + Name + "'";
    return ScopProgram();
  }
  return buildKernel(*K, S, Error);
}
