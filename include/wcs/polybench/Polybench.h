//===- wcs/polybench/Polybench.h - PolyBench 4.2.1 workloads ----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 30 PolyBench 4.2.1 kernels (the paper's benchmark suite, Sec. 6.1)
/// re-derived from the reference C sources and expressed in the wcs
/// frontend dialect, with problem-size tables scaled for laptop-sized
/// experiments (see EXPERIMENTS.md: cache sizes and problem sizes are
/// scaled together to preserve the working-set/cache-size regime).
///
/// Deviations from the C sources are documented per kernel in
/// Kernels.cpp; they never change the array access pattern except where
/// noted (e.g. data-dependent ternaries become min/max calls with the
/// same reads).
///
//===----------------------------------------------------------------------===//

#ifndef WCS_POLYBENCH_POLYBENCH_H
#define WCS_POLYBENCH_POLYBENCH_H

#include "wcs/scop/Program.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wcs {

/// PolyBench problem-size classes (scaled; paper uses L and XL).
enum class ProblemSize { Mini, Small, Medium, Large, ExtraLarge };
inline constexpr unsigned NumProblemSizes = 5;

const char *problemSizeName(ProblemSize S);

/// Inverse of problemSizeName, case-insensitive; also accepts the
/// command-line spelling "xlarge" for ExtraLarge. Returns false on an
/// unknown name, leaving \p Out untouched.
bool parseProblemSize(const std::string &Name, ProblemSize &Out);

/// Static description of one kernel.
struct KernelInfo {
  const char *Name;
  const char *Category; ///< blas, kernels, solvers, datamining, stencils,
                        ///< medley, dynprog.
  std::vector<std::string> ParamNames;
  /// Parameter values per problem size (same order as ParamNames).
  std::array<std::vector<int64_t>, NumProblemSizes> SizeValues;
  const char *Source; ///< Kernel in the wcs frontend dialect.
};

/// All 30 kernels, in the paper's Fig. 10 order.
const std::vector<KernelInfo> &polybenchKernels();

/// Finds a kernel by name; nullptr if unknown.
const KernelInfo *findKernel(const std::string &Name);

/// Parameter binding of \p K at \p S.
std::map<std::string, int64_t> paramBinding(const KernelInfo &K,
                                            ProblemSize S);

/// Parses and finalizes kernel \p K at problem size \p S. On failure
/// returns an empty program and sets \p Error.
ScopProgram buildKernel(const KernelInfo &K, ProblemSize S,
                        std::string *Error = nullptr);
ScopProgram buildKernel(const std::string &Name, ProblemSize S,
                        std::string *Error = nullptr);

} // namespace wcs

#endif // WCS_POLYBENCH_POLYBENCH_H
