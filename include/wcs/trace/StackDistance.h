//===- wcs/trace/StackDistance.h - Stack-distance profiling -----*- C++ -*-===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact stack-distance (reuse-distance) profiling at block granularity:
/// for every access, the number of *distinct* blocks touched since the
/// previous access to the same block. This is precisely the quantity
/// HayStack [34] computes by symbolic counting; here it is computed
/// exactly with Mattson's algorithm over a binary indexed tree (see
/// DESIGN.md on this substitution). From the resulting histogram, the
/// miss count of a fully-associative LRU cache of *any* associativity
/// follows immediately: an access misses iff its stack distance is at
/// least the associativity (or it is a cold access). This also yields
/// the full stack histograms of Mattson et al. [44] / Cascaval-Padua
/// [14] in one pass.
///
//===----------------------------------------------------------------------===//

#ifndef WCS_TRACE_STACKDISTANCE_H
#define WCS_TRACE_STACKDISTANCE_H

#include "wcs/cache/SetAssocCache.h"
#include "wcs/scop/Program.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace wcs {

/// Online exact stack-distance profiler at block granularity.
class StackDistanceProfiler {
public:
  /// \p InitialTreeCapacity sizes the binary indexed tree before the
  /// first growth step (rounded up to a power of two, which the growth
  /// logic requires). The default suits a lone profiler; per-set banks
  /// pass a small value so thousands of profilers start cheap.
  explicit StackDistanceProfiler(unsigned BlockBytes = 64,
                                 size_t InitialTreeCapacity = 1024);

  /// Records an access to byte address \p Addr.
  void accessAddr(int64_t Addr) { accessBlock(Addr >> BlockShift); }
  void accessBlock(BlockId B);

  /// Number of cold (first-touch) accesses.
  uint64_t coldAccesses() const { return Colds; }
  uint64_t totalAccesses() const { return Time; }

  /// Histogram of finite stack distances (index = distance).
  const std::vector<uint64_t> &histogram() const { return Hist; }

  /// Misses of a fully-associative LRU cache with \p Assoc lines:
  /// cold accesses plus all accesses with stack distance >= Assoc.
  uint64_t missesForAssoc(uint64_t Assoc) const;

  /// Convenience: misses of the fully-associative LRU cache with the
  /// same capacity as \p C (the HayStack cache model).
  uint64_t missesForCache(const CacheConfig &C) const {
    return missesForAssoc(C.numLines());
  }

private:
  /// Binary indexed tree over access timestamps; position t holds 1 iff
  /// t is the most recent access of some block.
  void bitAdd(uint64_t Pos, int64_t Val);
  int64_t bitPrefix(uint64_t Pos) const; ///< Sum of [1, Pos].

  unsigned BlockShift;
  uint64_t Time = 0;
  uint64_t Colds = 0;
  int64_t TreeTotal = 0;                 ///< Sum of all BIT elements.
  std::vector<int64_t> Bit;              ///< 1-based BIT, grown on demand.
  std::unordered_map<BlockId, uint64_t> LastAccess; ///< Block -> time.
  std::vector<uint64_t> Hist;
};

/// Bank of per-set stack-distance profilers: exact LRU miss counts of a
/// fixed (block size, set count) geometry for *every* associativity at
/// once. Under modulo placement each set is an independent
/// fully-associative LRU over the blocks mapping to it, so per-set
/// Mattson histograms generalize the fully-associative profiler
/// (NumSets == 1 degenerates to exactly it). This is the single-pass
/// fast path of the sweep driver: one trace pass feeds one bank per
/// distinct geometry, and every LRU capacity point is answered from the
/// histograms.
class SetDistanceBank {
public:
  /// \p NumSets must be a power of two (modulo placement).
  SetDistanceBank(unsigned BlockBytes, unsigned NumSets);

  unsigned numSets() const { return static_cast<unsigned>(Sets.size()); }
  unsigned blockBytes() const { return 1u << BlockShift; }

  void accessAddr(int64_t Addr) { accessBlock(Addr >> BlockShift); }

  /// Records an access that is already at block granularity (e.g. a
  /// record of an L1-miss-filtered stream; the block size of the
  /// producing L1 must equal this bank's).
  void accessBlock(BlockId B) {
    Sets[static_cast<size_t>(static_cast<uint64_t>(B) & SetMask)]
        .accessBlock(B);
    ++Total;
  }

  uint64_t totalAccesses() const { return Total; }

  /// Misses of the set-associative LRU cache with this bank's geometry
  /// and \p Assoc ways: per set, cold accesses plus accesses at stack
  /// distance >= Assoc.
  uint64_t missesForAssoc(uint64_t Assoc) const;

  /// True when \p C is answerable from this bank: same block size and
  /// set count, LRU, write-allocate (a non-allocating write miss leaves
  /// the stack untouched in hardware but not in the histogram).
  bool matches(const CacheConfig &C) const;

  /// Miss count of \p C; \p C must satisfy matches().
  uint64_t missesForCache(const CacheConfig &C) const;

private:
  unsigned BlockShift;
  uint64_t SetMask;
  uint64_t Total = 0;
  std::vector<StackDistanceProfiler> Sets;
};

/// Profiles every (array) access of \p Program; scalar accesses are
/// excluded to match HayStack's accounting.
StackDistanceProfiler profileProgram(const ScopProgram &Program,
                                     unsigned BlockBytes,
                                     bool IncludeScalars = false,
                                     double *Seconds = nullptr);

/// One-config companion of the sweep fast path: profiles \p Program into
/// a single bank of \p NumSets per-set histograms (the stack-distance
/// simulation backend of BatchRunner).
SetDistanceBank profileProgramSets(const ScopProgram &Program,
                                   unsigned BlockBytes, unsigned NumSets,
                                   bool IncludeScalars = false,
                                   double *Seconds = nullptr);

} // namespace wcs

#endif // WCS_TRACE_STACKDISTANCE_H
