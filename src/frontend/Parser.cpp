//===- frontend/Parser.cpp - Expressions, symbols, entry point ------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/frontend/Parser.h"

#include <cassert>
#include <sstream>

using namespace wcs;

std::string ParseResult::message() const {
  if (ok())
    return "";
  std::ostringstream OS;
  OS << "line " << ErrorLoc.Line << ", column " << ErrorLoc.Col << ": "
     << Error;
  return OS.str();
}

ParseResult wcs::parseScop(const std::string &Source,
                           const std::map<std::string, int64_t> &Params,
                           const std::string &Name, int64_t AlignBytes) {
  Parser P(Source, Params, Name);
  return P.run(AlignBytes);
}

Parser::Parser(const std::string &Source,
               const std::map<std::string, int64_t> &Params, std::string Name)
    : Lex(Source), Params(Params), Builder(std::move(Name)) {}

ParseResult Parser::run(int64_t AlignBytes) {
  ParseResult R;
  bump();
  if (parseTopLevel()) {
    std::string FinishErr;
    R.Program = Builder.finish(&FinishErr, AlignBytes);
    R.Error = FinishErr;
  } else {
    R.Error = Error;
    R.ErrorLoc = ErrorLoc;
  }
  return R;
}

// -- Token stream ---------------------------------------------------------

void Parser::bump() { Tok = Lex.next(); }

bool Parser::expect(Token::Kind K, const char *Context) {
  if (Tok.is(Token::Kind::Error))
    return fail(Tok.Loc, Tok.Text);
  if (!Tok.is(K)) {
    std::ostringstream OS;
    OS << "expected " << tokenKindName(K) << " " << Context << ", found "
       << tokenKindName(Tok.K);
    if (Tok.is(Token::Kind::Ident))
      OS << " '" << Tok.Text << "'";
    return fail(Tok.Loc, OS.str());
  }
  bump();
  return true;
}

bool Parser::expectIdent(std::string &Out, const char *Context) {
  if (!Tok.is(Token::Kind::Ident)) {
    std::ostringstream OS;
    OS << "expected identifier " << Context << ", found "
       << tokenKindName(Tok.K);
    return fail(Tok.Loc, OS.str());
  }
  Out = Tok.Text;
  bump();
  return true;
}

bool Parser::fail(SrcLoc Loc, std::string Msg) {
  if (Error.empty()) { // Keep the first error.
    Error = std::move(Msg);
    ErrorLoc = Loc;
  }
  return false;
}

const Parser::Symbol *Parser::lookup(const std::string &Name) const {
  auto It = Syms.find(Name);
  return It == Syms.end() ? nullptr : &It->second;
}

bool Parser::isTypeKeyword(const std::string &Ident,
                           unsigned &ElemBytes) const {
  if (Ident == "double" || Ident == "long") {
    ElemBytes = 8;
    return true;
  }
  if (Ident == "float" || Ident == "int") {
    ElemBytes = 4;
    return true;
  }
  return false;
}

// -- Affine expressions ---------------------------------------------------

std::optional<AffineExpr> Parser::parseAffine() {
  return parseAffineAdditive();
}

std::optional<AffineExpr> Parser::parseAffineAdditive() {
  std::optional<AffineExpr> L = parseAffineTerm();
  if (!L)
    return std::nullopt;
  while (Tok.is(Token::Kind::Plus) || Tok.is(Token::Kind::Minus)) {
    bool Neg = Tok.is(Token::Kind::Minus);
    bump();
    std::optional<AffineExpr> R = parseAffineTerm();
    if (!R)
      return std::nullopt;
    *L = Neg ? (*L - *R) : (*L + *R);
  }
  return L;
}

std::optional<AffineExpr> Parser::parseAffineTerm() {
  std::optional<AffineExpr> L = parseAffinePrimary();
  if (!L)
    return std::nullopt;
  for (;;) {
    if (Tok.is(Token::Kind::Star)) {
      SrcLoc Loc = Tok.Loc;
      bump();
      std::optional<AffineExpr> R = parseAffinePrimary();
      if (!R)
        return std::nullopt;
      if (L->isConstant())
        *L = *R * L->constantTerm();
      else if (R->isConstant())
        *L = *L * R->constantTerm();
      else {
        fail(Loc, "non-affine product of two iterator expressions");
        return std::nullopt;
      }
      continue;
    }
    if (Tok.is(Token::Kind::Slash) || Tok.is(Token::Kind::Percent)) {
      bool IsMod = Tok.is(Token::Kind::Percent);
      SrcLoc Loc = Tok.Loc;
      bump();
      std::optional<AffineExpr> R = parseAffinePrimary();
      if (!R)
        return std::nullopt;
      if (!L->isConstant() || !R->isConstant() || R->constantTerm() == 0) {
        fail(Loc, IsMod ? "'%' in an affine expression requires constant "
                          "operands"
                        : "'/' in an affine expression requires constant "
                          "operands");
        return std::nullopt;
      }
      int64_t V = IsMod ? L->constantTerm() % R->constantTerm()
                        : L->constantTerm() / R->constantTerm();
      *L = AffineExpr::constant(Builder.depth(), V);
      continue;
    }
    return L;
  }
}

std::optional<AffineExpr> Parser::parseAffinePrimary() {
  if (Tok.is(Token::Kind::Error)) {
    fail(Tok.Loc, Tok.Text);
    return std::nullopt;
  }
  if (Tok.is(Token::Kind::IntLit)) {
    AffineExpr E = AffineExpr::constant(Builder.depth(), Tok.IntValue);
    bump();
    return E;
  }
  if (Tok.is(Token::Kind::Minus)) {
    bump();
    std::optional<AffineExpr> E = parseAffinePrimary();
    if (!E)
      return std::nullopt;
    return -*E;
  }
  if (Tok.is(Token::Kind::LParen)) {
    bump();
    std::optional<AffineExpr> E = parseAffine();
    if (!E)
      return std::nullopt;
    if (!expect(Token::Kind::RParen, "to close a parenthesized expression"))
      return std::nullopt;
    return E;
  }
  if (Tok.is(Token::Kind::Ident)) {
    const Symbol *S = lookup(Tok.Text);
    if (!S) {
      fail(Tok.Loc, "undeclared identifier '" + Tok.Text +
                        "' in an affine expression");
      return std::nullopt;
    }
    SrcLoc Loc = Tok.Loc;
    std::string Name = Tok.Text;
    bump();
    switch (S->K) {
    case Symbol::Kind::Param:
      return AffineExpr::constant(Builder.depth(), S->ParamValue);
    case Symbol::Kind::Iterator:
      return S->IterExpr.extendedTo(Builder.depth());
    case Symbol::Kind::Array:
    case Symbol::Kind::Scalar:
      fail(Loc, "variable '" + Name +
                    "' is not affine (only iterators, parameters and "
                    "constants may appear in bounds and subscripts)");
      return std::nullopt;
    }
  }
  fail(Tok.Loc, std::string("expected an affine expression, found ") +
                    tokenKindName(Tok.K));
  return std::nullopt;
}

std::optional<int64_t> Parser::parseConstant(const char *Context) {
  SrcLoc Loc = Tok.Loc;
  std::optional<AffineExpr> E = parseAffine();
  if (!E)
    return std::nullopt;
  if (!E->isConstant()) {
    fail(Loc, std::string("expected a constant expression ") + Context);
    return std::nullopt;
  }
  return E->constantTerm();
}

// -- Conditions ------------------------------------------------------------

bool Parser::parseCondition(std::vector<Constraint> &Out) {
  if (!parseComparison(Out))
    return false;
  while (Tok.is(Token::Kind::AndAnd)) {
    bump();
    if (!parseComparison(Out))
      return false;
  }
  if (Tok.is(Token::Kind::OrOr))
    return fail(Tok.Loc, "disjunctive guards ('||') are not supported; "
                         "split the statement into separate guarded "
                         "statements");
  return true;
}

bool Parser::parseComparison(std::vector<Constraint> &Out) {
  std::optional<AffineExpr> L = parseAffine();
  if (!L)
    return false;
  Token::Kind Op = Tok.K;
  SrcLoc Loc = Tok.Loc;
  switch (Op) {
  case Token::Kind::Lt:
  case Token::Kind::Le:
  case Token::Kind::Gt:
  case Token::Kind::Ge:
  case Token::Kind::EqEq:
    break;
  case Token::Kind::NotEq:
    return fail(Loc, "'!=' guards are not supported (they produce "
                     "disjunctive domains); rewrite with '<' / '>'");
  default:
    return fail(Loc, std::string("expected a comparison operator, found ") +
                         tokenKindName(Op));
  }
  bump();
  std::optional<AffineExpr> R = parseAffine();
  if (!R)
    return false;
  switch (Op) {
  case Token::Kind::Lt: // L < R  <=>  R - L - 1 >= 0
    Out.push_back(Constraint::ge(*R - *L + AffineExpr::constant(
                                               Builder.depth(), -1)));
    break;
  case Token::Kind::Le:
    Out.push_back(Constraint::ge(*R - *L));
    break;
  case Token::Kind::Gt:
    Out.push_back(Constraint::ge(*L - *R + AffineExpr::constant(
                                               Builder.depth(), -1)));
    break;
  case Token::Kind::Ge:
    Out.push_back(Constraint::ge(*L - *R));
    break;
  case Token::Kind::EqEq:
    Out.push_back(Constraint::eq(*L - *R));
    break;
  default:
    break;
  }
  return true;
}

// -- Value expressions -----------------------------------------------------

bool Parser::parseValueExpr() { return parseValueAdditive(); }

bool Parser::parseValueAdditive() {
  if (!parseValueTerm())
    return false;
  while (Tok.is(Token::Kind::Plus) || Tok.is(Token::Kind::Minus)) {
    bump();
    if (!parseValueTerm())
      return false;
  }
  return true;
}

bool Parser::parseValueTerm() {
  if (!parseValueUnary())
    return false;
  while (Tok.is(Token::Kind::Star) || Tok.is(Token::Kind::Slash) ||
         Tok.is(Token::Kind::Percent)) {
    bump();
    if (!parseValueUnary())
      return false;
  }
  return true;
}

bool Parser::parseValueUnary() {
  while (Tok.is(Token::Kind::Minus) || Tok.is(Token::Kind::Plus))
    bump();
  return parseValuePrimary();
}

bool Parser::parseValuePrimary() {
  if (Tok.is(Token::Kind::Error))
    return fail(Tok.Loc, Tok.Text);
  if (Tok.is(Token::Kind::IntLit) || Tok.is(Token::Kind::FloatLit)) {
    bump();
    return true;
  }
  if (Tok.is(Token::Kind::LParen)) {
    bump();
    if (!parseValueExpr())
      return false;
    return expect(Token::Kind::RParen, "to close a parenthesized expression");
  }
  if (!Tok.is(Token::Kind::Ident))
    return fail(Tok.Loc, std::string("expected an expression, found ") +
                             tokenKindName(Tok.K));

  std::string Name = Tok.Text;
  SrcLoc Loc = Tok.Loc;
  bump();

  // Call: any identifier followed by '(' (sqrt, min, max, pow, ...).
  // Arguments are value expressions; their reads are emitted in order.
  if (Tok.is(Token::Kind::LParen)) {
    bump();
    if (!Tok.is(Token::Kind::RParen)) {
      if (!parseValueExpr())
        return false;
      while (Tok.is(Token::Kind::Comma)) {
        bump();
        if (!parseValueExpr())
          return false;
      }
    }
    return expect(Token::Kind::RParen, "to close the call argument list");
  }

  const Symbol *S = lookup(Name);
  if (!S)
    return fail(Loc, "undeclared identifier '" + Name + "'");

  // Array reference: emit a read access.
  if (Tok.is(Token::Kind::LBracket)) {
    if (S->K != Symbol::Kind::Array)
      return fail(Loc, "'" + Name + "' is not an array");
    std::vector<AffineExpr> Subs;
    while (Tok.is(Token::Kind::LBracket)) {
      bump();
      std::optional<AffineExpr> Sub = parseAffine();
      if (!Sub)
        return false;
      Subs.push_back(std::move(*Sub));
      if (!expect(Token::Kind::RBracket, "to close the subscript"))
        return false;
    }
    if (Subs.size() != S->NumDims)
      return fail(Loc, "array '" + Name + "' expects " +
                           std::to_string(S->NumDims) + " subscripts, got " +
                           std::to_string(Subs.size()));
    Builder.read(S->ArrayId, std::move(Subs));
    return true;
  }

  switch (S->K) {
  case Symbol::Kind::Scalar:
    Builder.readScalar(S->ArrayId);
    return true;
  case Symbol::Kind::Param:
  case Symbol::Kind::Iterator:
    return true; // No memory access.
  case Symbol::Kind::Array:
    return fail(Loc, "array '" + Name + "' used without subscripts");
  }
  return true;
}

// -- L-values ---------------------------------------------------------------

bool Parser::parseLValue(Symbol &SymOut, std::vector<AffineExpr> &SubsOut,
                         SrcLoc &LocOut) {
  std::string Name;
  LocOut = Tok.Loc;
  if (!expectIdent(Name, "as assignment target"))
    return false;
  const Symbol *S = lookup(Name);
  if (!S)
    return fail(LocOut, "undeclared identifier '" + Name + "'");
  if (S->K == Symbol::Kind::Param || S->K == Symbol::Kind::Iterator)
    return fail(LocOut, "cannot assign to '" + Name +
                            "' (parameters and iterators are read-only)");
  SubsOut.clear();
  while (Tok.is(Token::Kind::LBracket)) {
    bump();
    std::optional<AffineExpr> Sub = parseAffine();
    if (!Sub)
      return false;
    SubsOut.push_back(std::move(*Sub));
    if (!expect(Token::Kind::RBracket, "to close the subscript"))
      return false;
  }
  if (S->K == Symbol::Kind::Array && SubsOut.size() != S->NumDims)
    return fail(LocOut, "array '" + Name + "' expects " +
                            std::to_string(S->NumDims) + " subscripts, got " +
                            std::to_string(SubsOut.size()));
  if (S->K == Symbol::Kind::Scalar && !SubsOut.empty())
    return fail(LocOut, "scalar '" + Name + "' cannot be subscripted");
  SymOut = *S;
  return true;
}
