//===- polybench/Kernels.cpp - The 30 PolyBench kernels -------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
// Every kernel is re-derived from the PolyBench 4.2.1 reference sources.
// Scalar temporaries are declared as scalars (zero-dimensional arrays,
// paper footnote 1) and excluded from simulation by default, matching the
// paper's accounting (Sec. 6.4: the tool considers array accesses only).
// Data-dependent selections (ternaries in floyd-warshall, nussinov,
// correlation) are written as min/max-style calls or plain updates with
// the same array reads, since only the access pattern is simulated.
// Numeric coefficients (alpha, beta, 1/9, ...) that PolyBench reads from
// scalars precomputed outside the scop appear as literals or scalars.
//
//===----------------------------------------------------------------------===//

#include "wcs/polybench/Polybench.h"

using namespace wcs;

namespace {

using Sizes = std::array<std::vector<int64_t>, NumProblemSizes>;

KernelInfo make(const char *Name, const char *Cat,
                std::vector<std::string> Params, Sizes S, const char *Src) {
  KernelInfo K;
  K.Name = Name;
  K.Category = Cat;
  K.ParamNames = std::move(Params);
  K.SizeValues = std::move(S);
  K.Source = Src;
  return K;
}

std::vector<KernelInfo> buildAll() {
  std::vector<KernelInfo> Ks;

  // -- Linear algebra: BLAS ------------------------------------------------

  Ks.push_back(make(
      "gemm", "blas", {"NI", "NJ", "NK"},
      Sizes{{{16, 18, 20},
             {40, 45, 50},
             {90, 100, 110},
             {180, 190, 210},
             {300, 320, 350}}},
      R"(
    param NI; param NJ; param NK;
    double C[NI][NJ]; double A[NI][NK]; double B[NK][NJ];
    double alpha; double beta;
    for (i = 0; i < NI; i++) {
      for (j = 0; j < NJ; j++)
        C[i][j] *= beta;
      for (k = 0; k < NK; k++)
        for (j = 0; j < NJ; j++)
          C[i][j] += alpha * A[i][k] * B[k][j];
    }
  )"));

  Ks.push_back(make(
      "2mm", "blas", {"NI", "NJ", "NK", "NL"},
      Sizes{{{16, 18, 20, 22},
             {40, 45, 50, 55},
             {80, 90, 100, 110},
             {160, 180, 200, 220},
             {260, 280, 300, 320}}},
      R"(
    param NI; param NJ; param NK; param NL;
    double tmp[NI][NJ]; double A[NI][NK]; double B[NK][NJ];
    double C[NJ][NL]; double D[NI][NL];
    double alpha; double beta;
    for (i = 0; i < NI; i++)
      for (j = 0; j < NJ; j++) {
        tmp[i][j] = 0.0;
        for (k = 0; k < NK; k++)
          tmp[i][j] += alpha * A[i][k] * B[k][j];
      }
    for (i = 0; i < NI; i++)
      for (j = 0; j < NL; j++) {
        D[i][j] *= beta;
        for (k = 0; k < NJ; k++)
          D[i][j] += tmp[i][k] * C[k][j];
      }
  )"));

  Ks.push_back(make(
      "3mm", "blas", {"NI", "NJ", "NK", "NL", "NM"},
      Sizes{{{16, 18, 20, 22, 24},
             {40, 45, 50, 55, 60},
             {70, 75, 80, 85, 90},
             {140, 150, 160, 170, 180},
             {230, 240, 250, 260, 270}}},
      R"(
    param NI; param NJ; param NK; param NL; param NM;
    double E[NI][NJ]; double A[NI][NK]; double B[NK][NJ];
    double F[NJ][NL]; double C[NJ][NM]; double D[NM][NL];
    double G[NI][NL];
    for (i = 0; i < NI; i++)
      for (j = 0; j < NJ; j++) {
        E[i][j] = 0.0;
        for (k = 0; k < NK; k++)
          E[i][j] += A[i][k] * B[k][j];
      }
    for (i = 0; i < NJ; i++)
      for (j = 0; j < NL; j++) {
        F[i][j] = 0.0;
        for (k = 0; k < NM; k++)
          F[i][j] += C[i][k] * D[k][j];
      }
    for (i = 0; i < NI; i++)
      for (j = 0; j < NL; j++) {
        G[i][j] = 0.0;
        for (k = 0; k < NJ; k++)
          G[i][j] += E[i][k] * F[k][j];
      }
  )"));

  Ks.push_back(make(
      "atax", "blas", {"M", "N"},
      Sizes{{{38, 42},
             {116, 124},
             {390, 410},
             {1200, 1300},
             {1800, 2200}}},
      R"(
    param M; param N;
    double A[M][N]; double x[N]; double y[N]; double tmp[M];
    for (i = 0; i < N; i++)
      y[i] = 0.0;
    for (i = 0; i < M; i++) {
      tmp[i] = 0.0;
      for (j = 0; j < N; j++)
        tmp[i] = tmp[i] + A[i][j] * x[j];
      for (j = 0; j < N; j++)
        y[j] = y[j] + A[i][j] * tmp[i];
    }
  )"));

  Ks.push_back(make(
      "bicg", "blas", {"M", "N"},
      Sizes{{{38, 42},
             {116, 124},
             {390, 410},
             {1200, 1300},
             {1800, 2200}}},
      R"(
    param M; param N;
    double A[N][M]; double s[M]; double q[N]; double p[M]; double r[N];
    for (i = 0; i < M; i++)
      s[i] = 0.0;
    for (i = 0; i < N; i++) {
      q[i] = 0.0;
      for (j = 0; j < M; j++) {
        s[j] = s[j] + r[i] * A[i][j];
        q[i] = q[i] + A[i][j] * p[j];
      }
    }
  )"));

  Ks.push_back(make(
      "mvt", "blas", {"N"},
      Sizes{{{40}, {120}, {400}, {1300}, {2000}}},
      R"(
    param N;
    double x1[N]; double x2[N]; double y_1[N]; double y_2[N];
    double A[N][N];
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        x1[i] = x1[i] + A[i][j] * y_1[j];
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        x2[i] = x2[i] + A[j][i] * y_2[j];
  )"));

  Ks.push_back(make(
      "gemver", "blas", {"N"},
      Sizes{{{40}, {120}, {400}, {1300}, {2000}}},
      R"(
    param N;
    double A[N][N]; double u1[N]; double v1[N]; double u2[N]; double v2[N];
    double w[N]; double x[N]; double y[N]; double z[N];
    double alpha; double beta;
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        x[i] = x[i] + beta * A[j][i] * y[j];
    for (i = 0; i < N; i++)
      x[i] = x[i] + z[i];
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        w[i] = w[i] + alpha * A[i][j] * x[j];
  )"));

  Ks.push_back(make(
      "gesummv", "blas", {"N"},
      Sizes{{{30}, {90}, {250}, {900}, {1400}}},
      R"(
    param N;
    double A[N][N]; double B[N][N]; double tmp[N]; double x[N]; double y[N];
    double alpha; double beta;
    for (i = 0; i < N; i++) {
      tmp[i] = 0.0;
      y[i] = 0.0;
      for (j = 0; j < N; j++) {
        tmp[i] = A[i][j] * x[j] + tmp[i];
        y[i] = B[i][j] * x[j] + y[i];
      }
      y[i] = alpha * tmp[i] + beta * y[i];
    }
  )"));

  Ks.push_back(make(
      "syrk", "blas", {"N", "M"},
      Sizes{{{20, 30},
             {50, 70},
             {100, 120},
             {180, 220},
             {280, 350}}},
      R"(
    param N; param M;
    double C[N][N]; double A[N][M];
    double alpha; double beta;
    for (i = 0; i < N; i++) {
      for (j = 0; j <= i; j++)
        C[i][j] *= beta;
      for (k = 0; k < M; k++)
        for (j = 0; j <= i; j++)
          C[i][j] += alpha * A[i][k] * A[j][k];
    }
  )"));

  Ks.push_back(make(
      "syr2k", "blas", {"N", "M"},
      Sizes{{{20, 30},
             {50, 70},
             {70, 90},
             {160, 200},
             {260, 320}}},
      R"(
    param N; param M;
    double C[N][N]; double A[N][M]; double B[N][M];
    double alpha; double beta;
    for (i = 0; i < N; i++) {
      for (j = 0; j <= i; j++)
        C[i][j] *= beta;
      for (k = 0; k < M; k++)
        for (j = 0; j <= i; j++)
          C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
    }
  )"));

  Ks.push_back(make(
      "symm", "blas", {"M", "N"},
      Sizes{{{20, 24},
             {50, 60},
             {80, 90},
             {160, 180},
             {250, 280}}},
      R"(
    param M; param N;
    double C[M][N]; double A[M][M]; double B[M][N];
    double alpha; double beta; double temp2;
    for (i = 0; i < M; i++)
      for (j = 0; j < N; j++) {
        temp2 = 0.0;
        for (k = 0; k < i; k++) {
          C[k][j] += alpha * B[i][j] * A[i][k];
          temp2 += B[k][j] * A[i][k];
        }
        C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i]
                  + alpha * temp2;
      }
  )"));

  Ks.push_back(make(
      "trmm", "blas", {"M", "N"},
      Sizes{{{20, 24},
             {50, 60},
             {80, 90},
             {160, 180},
             {250, 280}}},
      R"(
    param M; param N;
    double A[M][M]; double B[M][N];
    double alpha;
    for (i = 0; i < M; i++)
      for (j = 0; j < N; j++) {
        for (k = i + 1; k < M; k++)
          B[i][j] += A[k][i] * B[k][j];
        B[i][j] = alpha * B[i][j];
      }
  )"));

  // -- Linear algebra: kernels / solvers ------------------------------------

  Ks.push_back(make(
      "trisolv", "solvers", {"N"},
      Sizes{{{40}, {120}, {400}, {1600}, {2600}}},
      R"(
    param N;
    double L[N][N]; double x[N]; double b[N];
    for (i = 0; i < N; i++) {
      x[i] = b[i];
      for (j = 0; j < i; j++)
        x[i] -= L[i][j] * x[j];
      x[i] = x[i] / L[i][i];
    }
  )"));

  Ks.push_back(make(
      "cholesky", "solvers", {"N"},
      Sizes{{{24}, {64}, {128}, {260}, {400}}},
      R"(
    param N;
    double A[N][N];
    for (i = 0; i < N; i++) {
      for (j = 0; j < i; j++) {
        for (k = 0; k < j; k++)
          A[i][j] -= A[i][k] * A[j][k];
        A[i][j] /= A[j][j];
      }
      for (k = 0; k < i; k++)
        A[i][i] -= A[i][k] * A[i][k];
      A[i][i] = sqrt(A[i][i]);
    }
  )"));

  Ks.push_back(make(
      "lu", "solvers", {"N"},
      Sizes{{{24}, {60}, {110}, {220}, {340}}},
      R"(
    param N;
    double A[N][N];
    for (i = 0; i < N; i++) {
      for (j = 0; j < i; j++) {
        for (k = 0; k < j; k++)
          A[i][j] -= A[i][k] * A[k][j];
        A[i][j] /= A[j][j];
      }
      for (j = i; j < N; j++)
        for (k = 0; k < i; k++)
          A[i][j] -= A[i][k] * A[k][j];
    }
  )"));

  Ks.push_back(make(
      "ludcmp", "solvers", {"N"},
      Sizes{{{24}, {60}, {110}, {220}, {340}}},
      R"(
    param N;
    double A[N][N]; double b[N]; double x[N]; double y[N];
    double w;
    for (i = 0; i < N; i++) {
      for (j = 0; j < i; j++) {
        w = A[i][j];
        for (k = 0; k < j; k++)
          w -= A[i][k] * A[k][j];
        A[i][j] = w / A[j][j];
      }
      for (j = i; j < N; j++) {
        w = A[i][j];
        for (k = 0; k < i; k++)
          w -= A[i][k] * A[k][j];
        A[i][j] = w;
      }
    }
    for (i = 0; i < N; i++) {
      w = b[i];
      for (j = 0; j < i; j++)
        w -= A[i][j] * y[j];
      y[i] = w;
    }
    for (i = N - 1; i >= 0; i--) {
      w = y[i];
      for (j = i + 1; j < N; j++)
        w -= A[i][j] * x[j];
      x[i] = w / A[i][i];
    }
  )"));

  Ks.push_back(make(
      "durbin", "solvers", {"N"},
      Sizes{{{40}, {120}, {400}, {1200}, {2000}}},
      R"(
    param N;
    double r[N]; double y[N]; double z[N];
    double alpha; double beta; double sum;
    y[0] = -r[0];
    beta = 1.0;
    alpha = -r[0];
    for (k = 1; k < N; k++) {
      beta = (1.0 - alpha * alpha) * beta;
      sum = 0.0;
      for (i = 0; i < k; i++)
        sum += r[k - i - 1] * y[i];
      alpha = -(r[k] + sum) / beta;
      for (i = 0; i < k; i++)
        z[i] = y[i] + alpha * y[k - i - 1];
      for (i = 0; i < k; i++)
        y[i] = z[i];
      y[k] = alpha;
    }
  )"));

  Ks.push_back(make(
      "gramschmidt", "solvers", {"M", "N"},
      Sizes{{{24, 20},
             {60, 50},
             {100, 90},
             {200, 180},
             {320, 280}}},
      R"(
    param M; param N;
    double A[M][N]; double R[N][N]; double Q[M][N];
    double nrm;
    for (k = 0; k < N; k++) {
      nrm = 0.0;
      for (i = 0; i < M; i++)
        nrm += A[i][k] * A[i][k];
      R[k][k] = sqrt(nrm);
      for (i = 0; i < M; i++)
        Q[i][k] = A[i][k] / R[k][k];
      for (j = k + 1; j < N; j++) {
        R[k][j] = 0.0;
        for (i = 0; i < M; i++)
          R[k][j] += Q[i][k] * A[i][j];
        for (i = 0; i < M; i++)
          A[i][j] = A[i][j] - Q[i][k] * R[k][j];
      }
    }
  )"));

  // -- Data mining -----------------------------------------------------------

  Ks.push_back(make(
      "correlation", "datamining", {"M", "N"},
      Sizes{{{20, 24},
             {50, 60},
             {90, 100},
             {160, 180},
             {260, 300}}},
      R"(
    param M; param N;
    double data[N][M]; double corr[M][M]; double mean[M]; double stddev[M];
    for (j = 0; j < M; j++) {
      mean[j] = 0.0;
      for (i = 0; i < N; i++)
        mean[j] += data[i][j];
      mean[j] /= 3.14;
    }
    for (j = 0; j < M; j++) {
      stddev[j] = 0.0;
      for (i = 0; i < N; i++)
        stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
      stddev[j] /= 3.14;
      stddev[j] = sqrt(stddev[j]);
      // 4.2.1 guards against tiny variance with a data-dependent
      // ternary; the accesses are one read and one write of stddev[j].
      stddev[j] = stddev[j] * 1.0;
    }
    for (i = 0; i < N; i++)
      for (j = 0; j < M; j++) {
        data[i][j] -= mean[j];
        data[i][j] /= sqrt(3.14) * stddev[j];
      }
    for (i = 0; i < M - 1; i++) {
      corr[i][i] = 1.0;
      for (j = i + 1; j < M; j++) {
        corr[i][j] = 0.0;
        for (k = 0; k < N; k++)
          corr[i][j] += data[k][i] * data[k][j];
        corr[j][i] = corr[i][j];
      }
    }
    corr[M - 1][M - 1] = 1.0;
  )"));

  Ks.push_back(make(
      "covariance", "datamining", {"M", "N"},
      Sizes{{{20, 24},
             {50, 60},
             {90, 100},
             {160, 180},
             {260, 300}}},
      R"(
    param M; param N;
    double data[N][M]; double cov[M][M]; double mean[M];
    for (j = 0; j < M; j++) {
      mean[j] = 0.0;
      for (i = 0; i < N; i++)
        mean[j] += data[i][j];
      mean[j] /= 3.14;
    }
    for (i = 0; i < N; i++)
      for (j = 0; j < M; j++)
        data[i][j] -= mean[j];
    for (i = 0; i < M; i++)
      for (j = i; j < M; j++) {
        cov[i][j] = 0.0;
        for (k = 0; k < N; k++)
          cov[i][j] += data[k][i] * data[k][j];
        cov[i][j] /= 3.14;
        cov[j][i] = cov[i][j];
      }
  )"));

  // -- Medley / dynamic programming ------------------------------------------

  Ks.push_back(make(
      "floyd-warshall", "medley", {"N"},
      Sizes{{{20}, {60}, {110}, {180}, {280}}},
      R"(
    param N;
    int paths[N][N];
    // 4.2.1 writes the ternary
    //   paths[i][j] < paths[i][k] + paths[k][j] ? ... : ...
    // whose evaluated reads are exactly those of this min call.
    for (k = 0; k < N; k++)
      for (i = 0; i < N; i++)
        for (j = 0; j < N; j++)
          paths[i][j] = min(paths[i][j], paths[i][k] + paths[k][j]);
  )"));

  Ks.push_back(make(
      "nussinov", "dynprog", {"N"},
      Sizes{{{24}, {70}, {140}, {280}, {440}}},
      R"(
    param N;
    int seq[N]; int table[N][N];
    for (i = N - 1; i >= 0; i--) {
      for (j = i + 1; j < N; j++) {
        if (j - 1 >= 0)
          table[i][j] = max(table[i][j], table[i][j - 1]);
        if (i + 1 < N)
          table[i][j] = max(table[i][j], table[i + 1][j]);
        if (j - 1 >= 0 && i + 1 < N) {
          // 4.2.1 splits on i < j-1 (with the base-pair match reading
          // seq) vs i == j-1.
          if (i < j - 1)
            table[i][j] = max(table[i][j],
                              table[i + 1][j - 1] + match(seq[i], seq[j]));
          if (i >= j - 1)
            table[i][j] = max(table[i][j], table[i + 1][j - 1]);
        }
        for (k = i + 1; k < j; k++)
          table[i][j] = max(table[i][j], table[i][k] + table[k + 1][j]);
      }
    }
  )"));

  Ks.push_back(make(
      "deriche", "medley", {"W", "H"},
      Sizes{{{32, 40},
             {96, 120},
             {300, 380},
             {900, 1100},
             {1400, 1700}}},
      R"(
    param W; param H;
    double imgIn[W][H]; double imgOut[W][H]; double y1[W][H]; double y2[W][H];
    double xm1; double ym1; double ym2;
    double xp1; double xp2; double yp1; double yp2;
    double tm1; double tp1; double tp2;
    for (i = 0; i < W; i++) {
      ym1 = 0.0;
      ym2 = 0.0;
      xm1 = 0.0;
      for (j = 0; j < H; j++) {
        y1[i][j] = 0.5 * imgIn[i][j] + 0.25 * xm1 + 0.5 * ym1 + 0.25 * ym2;
        xm1 = imgIn[i][j];
        ym2 = ym1;
        ym1 = y1[i][j];
      }
    }
    for (i = 0; i < W; i++) {
      yp1 = 0.0;
      yp2 = 0.0;
      xp1 = 0.0;
      xp2 = 0.0;
      for (j = H - 1; j >= 0; j--) {
        y2[i][j] = 0.25 * xp1 + 0.25 * xp2 + 0.5 * yp1 + 0.25 * yp2;
        xp2 = xp1;
        xp1 = imgIn[i][j];
        yp2 = yp1;
        yp1 = y2[i][j];
      }
    }
    for (i = 0; i < W; i++)
      for (j = 0; j < H; j++)
        imgOut[i][j] = 0.5 * (y1[i][j] + y2[i][j]);
    for (j = 0; j < H; j++) {
      tm1 = 0.0;
      ym1 = 0.0;
      ym2 = 0.0;
      for (i = 0; i < W; i++) {
        y1[i][j] = 0.5 * imgOut[i][j] + 0.25 * tm1 + 0.5 * ym1 + 0.25 * ym2;
        tm1 = imgOut[i][j];
        ym2 = ym1;
        ym1 = y1[i][j];
      }
    }
    for (j = 0; j < H; j++) {
      tp1 = 0.0;
      tp2 = 0.0;
      yp1 = 0.0;
      yp2 = 0.0;
      for (i = W - 1; i >= 0; i--) {
        y2[i][j] = 0.25 * tp1 + 0.25 * tp2 + 0.5 * yp1 + 0.25 * yp2;
        tp2 = tp1;
        tp1 = imgOut[i][j];
        yp2 = yp1;
        yp1 = y2[i][j];
      }
    }
    for (i = 0; i < W; i++)
      for (j = 0; j < H; j++)
        imgOut[i][j] = 0.5 * (y1[i][j] + y2[i][j]);
  )"));

  // -- Stencils ----------------------------------------------------------------

  Ks.push_back(make(
      "adi", "stencils", {"TSTEPS", "N"},
      Sizes{{{4, 20},
             {10, 40},
             {25, 80},
             {60, 120},
             {80, 160}}},
      R"(
    param TSTEPS; param N;
    double u[N][N]; double v[N][N]; double p[N][N]; double q[N][N];
    for (t = 1; t <= TSTEPS; t++) {
      // Column sweep.
      for (i = 1; i < N - 1; i++) {
        v[0][i] = 1.0;
        p[i][0] = 0.0;
        q[i][0] = v[0][i];
        for (j = 1; j < N - 1; j++) {
          p[i][j] = 0.0 - 0.25 / (0.25 * p[i][j - 1] + 2.0);
          q[i][j] = (0.5 * u[j][i - 1] + (1.0 + 0.5) * u[j][i]
                     - 0.25 * u[j][i + 1] - 0.25 * q[i][j - 1])
                    / (0.25 * p[i][j - 1] + 2.0);
        }
        v[N - 1][i] = 1.0;
        for (j = N - 2; j >= 1; j--)
          v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
      }
      // Row sweep.
      for (i = 1; i < N - 1; i++) {
        u[i][0] = 1.0;
        p[i][0] = 0.0;
        q[i][0] = u[i][0];
        for (j = 1; j < N - 1; j++) {
          p[i][j] = 0.0 - 0.25 / (0.25 * p[i][j - 1] + 2.0);
          q[i][j] = (0.5 * v[i - 1][j] + (1.0 + 0.5) * v[i][j]
                     - 0.25 * v[i + 1][j] - 0.25 * q[i][j - 1])
                    / (0.25 * p[i][j - 1] + 2.0);
        }
        u[i][N - 1] = 1.0;
        for (j = N - 2; j >= 1; j--)
          u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
      }
    }
  )"));

  Ks.push_back(make(
      "fdtd-2d", "stencils", {"TMAX", "NX", "NY"},
      Sizes{{{4, 20, 24},
             {10, 40, 48},
             {25, 64, 64},
             {50, 96, 96},
             {80, 136, 136}}},
      R"(
    param TMAX; param NX; param NY;
    double ex[NX][NY]; double ey[NX][NY]; double hz[NX][NY];
    double fict[TMAX];
    for (t = 0; t < TMAX; t++) {
      for (j = 0; j < NY; j++)
        ey[0][j] = fict[t];
      for (i = 1; i < NX; i++)
        for (j = 0; j < NY; j++)
          ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
      for (i = 0; i < NX; i++)
        for (j = 1; j < NY; j++)
          ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
      for (i = 0; i < NX - 1; i++)
        for (j = 0; j < NY - 1; j++)
          hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j]
                                       + ey[i + 1][j] - ey[i][j]);
    }
  )"));

  Ks.push_back(make(
      "heat-3d", "stencils", {"TSTEPS", "N"},
      Sizes{{{4, 10},
             {8, 16},
             {12, 24},
             {20, 32},
             {30, 40}}},
      R"(
    param TSTEPS; param N;
    double A[N][N][N]; double B[N][N][N];
    for (t = 1; t <= TSTEPS; t++) {
      for (i = 1; i < N - 1; i++)
        for (j = 1; j < N - 1; j++)
          for (k = 1; k < N - 1; k++)
            B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k]
                                  + A[i - 1][j][k])
                         + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k]
                                    + A[i][j - 1][k])
                         + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k]
                                    + A[i][j][k - 1])
                         + A[i][j][k];
      for (i = 1; i < N - 1; i++)
        for (j = 1; j < N - 1; j++)
          for (k = 1; k < N - 1; k++)
            A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k]
                                  + B[i - 1][j][k])
                         + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k]
                                    + B[i][j - 1][k])
                         + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k]
                                    + B[i][j][k - 1])
                         + B[i][j][k];
    }
  )"));

  Ks.push_back(make(
      "jacobi-1d", "stencils", {"TSTEPS", "N"},
      Sizes{{{10, 60},
             {20, 240},
             {50, 800},
             {100, 2400},
             {150, 4000}}},
      R"(
    param TSTEPS; param N;
    double A[N]; double B[N];
    for (t = 0; t < TSTEPS; t++) {
      for (i = 1; i < N - 1; i++)
        B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
      for (i = 1; i < N - 1; i++)
        A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
    }
  )"));

  Ks.push_back(make(
      "jacobi-2d", "stencils", {"TSTEPS", "N"},
      Sizes{{{4, 24},
             {10, 48},
             {25, 88},
             {50, 144},
             {80, 200}}},
      R"(
    param TSTEPS; param N;
    double A[N][N]; double B[N][N];
    for (t = 0; t < TSTEPS; t++) {
      for (i = 1; i < N - 1; i++)
        for (j = 1; j < N - 1; j++)
          B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1]
                           + A[i + 1][j] + A[i - 1][j]);
      for (i = 1; i < N - 1; i++)
        for (j = 1; j < N - 1; j++)
          A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1]
                           + B[i + 1][j] + B[i - 1][j]);
    }
  )"));

  Ks.push_back(make(
      "seidel-2d", "stencils", {"TSTEPS", "N"},
      Sizes{{{4, 24},
             {10, 48},
             {25, 88},
             {50, 144},
             {80, 200}}},
      R"(
    param TSTEPS; param N;
    double A[N][N];
    for (t = 0; t <= TSTEPS - 1; t++)
      for (i = 1; i <= N - 2; i++)
        for (j = 1; j <= N - 2; j++)
          A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                     + A[i][j - 1] + A[i][j] + A[i][j + 1]
                     + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1])
                    / 9.0;
  )"));

  Ks.push_back(make(
      "doitgen", "kernels", {"NR", "NQ", "NP"},
      Sizes{{{8, 7, 10},
             {15, 14, 20},
             {25, 22, 40},
             {35, 30, 60},
             {50, 45, 90}}},
      R"(
    param NR; param NQ; param NP;
    double A[NR][NQ][NP]; double C4[NP][NP]; double sum[NP];
    for (r = 0; r < NR; r++)
      for (q = 0; q < NQ; q++) {
        for (p = 0; p < NP; p++) {
          sum[p] = 0.0;
          for (s = 0; s < NP; s++)
            sum[p] += A[r][q][s] * C4[s][p];
        }
        for (p = 0; p < NP; p++)
          A[r][q][p] = sum[p];
      }
  )"));

  return Ks;
}

} // namespace

const std::vector<KernelInfo> &wcs::polybenchKernels() {
  static const std::vector<KernelInfo> Kernels = buildAll();
  return Kernels;
}
