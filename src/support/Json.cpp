//===- src/support/Json.cpp - JSON writer and parser ----------------------===//
//
// Part of the wcs project, a reproduction of "Warping Cache Simulation of
// Polyhedral Programs" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "wcs/support/Json.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace wcs;
using namespace wcs::json;

namespace {
const Value NullValue;
const std::string EmptyString;
} // namespace

int64_t Value::asInt(int64_t Def) const {
  if (K == Kind::Int)
    return I;
  // A double only converts when the cast is defined behavior: the
  // comparison bounds are exact doubles (-2^63 and 2^63), and any value
  // inside them truncates representably.
  if (K == Kind::Double && D >= -9223372036854775808.0 &&
      D < 9223372036854775808.0)
    return static_cast<int64_t>(D);
  return Def;
}

uint64_t Value::asUInt(uint64_t Def) const {
  if (K == Kind::Int)
    return I >= 0 ? static_cast<uint64_t>(I) : Def;
  if (K == Kind::Double && D >= 0.0 && D < 18446744073709551616.0)
    return static_cast<uint64_t>(D);
  return Def;
}

double Value::asDouble(double Def) const {
  if (K == Kind::Double)
    return D;
  if (K == Kind::Int)
    return static_cast<double>(I);
  return Def;
}

const std::string &Value::asString() const {
  return K == Kind::String ? S : EmptyString;
}

size_t Value::size() const {
  if (K == Kind::Array)
    return Arr.size();
  if (K == Kind::Object)
    return Obj.size();
  return 0;
}

void Value::push(Value V) {
  if (K == Kind::Null)
    K = Kind::Array;
  assert(K == Kind::Array && "push() on a non-array Value");
  Arr.push_back(std::move(V));
}

const Value &Value::at(size_t Idx) const {
  return Idx < Arr.size() ? Arr[Idx] : NullValue;
}

Value &Value::set(std::string Key, Value V) {
  if (K == Kind::Null)
    K = Kind::Object;
  assert(K == Kind::Object && "set() on a non-object Value");
  for (Member &M : Obj)
    if (M.Key == Key) {
      M.Val = std::move(V);
      return *this;
    }
  Obj.push_back(Member{std::move(Key), std::move(V)});
  return *this;
}

const Value *Value::find(std::string_view Key) const {
  for (const Member &M : Obj)
    if (M.Key == Key)
      return &M.Val;
  return nullptr;
}

const Value &Value::operator[](std::string_view Key) const {
  const Value *V = find(Key);
  return V ? *V : NullValue;
}

bool Value::operator==(const Value &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return B == O.B;
  case Kind::Int:
    return I == O.I;
  case Kind::Double:
    return D == O.D;
  case Kind::String:
    return S == O.S;
  case Kind::Array:
    return Arr == O.Arr;
  case Kind::Object:
    if (Obj.size() != O.Obj.size())
      return false;
    for (size_t N = 0; N < Obj.size(); ++N)
      if (Obj[N].Key != O.Obj[N].Key || !(Obj[N].Val == O.Obj[N].Val))
        return false;
    return true;
  }
  return false;
}

void wcs::json::appendEscaped(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void Value::dumpTo(std::string &Out, unsigned Depth, bool Pretty) const {
  auto Indent = [&](unsigned N) {
    if (Pretty) {
      Out += '\n';
      Out.append(2 * N, ' ');
    }
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
    Out += Buf;
    break;
  }
  case Kind::Double: {
    // %.17g round-trips every finite double; JSON has no literal for
    // infinities and NaNs, so those degrade to null.
    if (!std::isfinite(D)) {
      Out += "null";
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case Kind::String:
    appendEscaped(Out, S);
    break;
  case Kind::Array:
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t N = 0; N < Arr.size(); ++N) {
      if (N)
        Out += ',';
      Indent(Depth + 1);
      Arr[N].dumpTo(Out, Depth + 1, Pretty);
    }
    Indent(Depth);
    Out += ']';
    break;
  case Kind::Object:
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t N = 0; N < Obj.size(); ++N) {
      if (N)
        Out += ',';
      Indent(Depth + 1);
      appendEscaped(Out, Obj[N].Key);
      Out += Pretty ? ": " : ":";
      Obj[N].Val.dumpTo(Out, Depth + 1, Pretty);
    }
    Indent(Depth);
    Out += '}';
    break;
  }
}

std::string Value::dump(bool Pretty) const {
  std::string Out;
  dumpTo(Out, 0, Pretty);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned MaxDepth = 100;

class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  bool run(Value &Out, std::string *Err) {
    skipWhitespace();
    if (!parseValue(Out, 0))
      return fail(Err);
    skipWhitespace();
    if (Pos != Text.size()) {
      error("trailing garbage after the document");
      return fail(Err);
    }
    return true;
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  std::string Message;
  size_t ErrPos = 0;

  bool fail(std::string *Err) {
    if (!Err)
      return false;
    // Translate the error offset into line:col.
    size_t Line = 1, Col = 1;
    for (size_t N = 0; N < ErrPos && N < Text.size(); ++N) {
      if (Text[N] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    std::ostringstream OS;
    OS << Line << ":" << Col << ": " << Message;
    *Err = OS.str();
    return false;
  }

  bool error(const std::string &Msg) {
    if (Message.empty()) { // Keep the innermost diagnostic.
      Message = Msg;
      ErrPos = Pos;
    }
    return false;
  }

  bool eof() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (eof() || peek() != C)
      return false;
    ++Pos;
    return true;
  }

  bool expect(char C, const char *What) {
    if (consume(C))
      return true;
    return error(std::string("expected '") + C + "' " + What);
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return error("nesting depth limit exceeded");
    skipWhitespace();
    if (eof())
      return error("unexpected end of input");
    switch (peek()) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    case 't':
      if (literal("true")) {
        Out = Value(true);
        return true;
      }
      return error("invalid literal");
    case 'f':
      if (literal("false")) {
        Out = Value(false);
        return true;
      }
      return error("invalid literal");
    case 'n':
      if (literal("null")) {
        Out = Value(nullptr);
        return true;
      }
      return error("invalid literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, unsigned Depth) {
    expect('{', "to open an object");
    Out = Value::object();
    skipWhitespace();
    if (consume('}'))
      return true;
    while (true) {
      skipWhitespace();
      std::string Key;
      if (!parseString(Key))
        return error("expected a member key string");
      skipWhitespace();
      if (!expect(':', "after a member key"))
        return false;
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.set(std::move(Key), std::move(V));
      skipWhitespace();
      if (consume(','))
        continue;
      return expect('}', "to close an object");
    }
  }

  bool parseArray(Value &Out, unsigned Depth) {
    expect('[', "to open an array");
    Out = Value::array();
    skipWhitespace();
    if (consume(']'))
      return true;
    while (true) {
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.push(std::move(V));
      skipWhitespace();
      if (consume(','))
        continue;
      return expect(']', "to close an array");
    }
  }

  /// Appends the UTF-8 encoding of code point \p CP to \p Out.
  static void appendUtf8(std::string &Out, uint32_t CP) {
    if (CP < 0x80) {
      Out += static_cast<char>(CP);
    } else if (CP < 0x800) {
      Out += static_cast<char>(0xC0 | (CP >> 6));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += static_cast<char>(0xE0 | (CP >> 12));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CP >> 18));
      Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseHex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return error("truncated \\u escape");
    Out = 0;
    for (int N = 0; N < 4; ++N) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return error("invalid hex digit in \\u escape");
    }
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return error("expected a string");
    Out.clear();
    while (true) {
      if (eof())
        return error("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return error("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (eof())
        return error("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t CP;
        if (!parseHex4(CP))
          return false;
        // Combine a surrogate pair into one code point when the low half
        // follows; a lone surrogate encodes as-is (lenient, like most
        // parsers).
        if (CP >= 0xD800 && CP <= 0xDBFF &&
            Text.substr(Pos, 2) == "\\u") {
          size_t Save = Pos;
          Pos += 2;
          uint32_t Low;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            CP = 0x10000 + ((CP - 0xD800) << 10) + (Low - 0xDC00);
          else
            Pos = Save; // Not a pair; re-scan the second escape normally.
        }
        appendUtf8(Out, CP);
        break;
      }
      default:
        return error("invalid escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    consume('-');
    while (!eof() && peek() >= '0' && peek() <= '9')
      ++Pos;
    bool Integral = Pos > Start && Text[Pos - 1] >= '0';
    if (!Integral)
      return error("invalid number");
    if (!eof() && (peek() == '.' || peek() == 'e' || peek() == 'E')) {
      Integral = false;
      if (consume('.')) {
        size_t FracStart = Pos;
        while (!eof() && peek() >= '0' && peek() <= '9')
          ++Pos;
        if (Pos == FracStart)
          return error("expected digits after the decimal point");
      }
      if (!eof() && (peek() == 'e' || peek() == 'E')) {
        ++Pos;
        if (!eof() && (peek() == '+' || peek() == '-'))
          ++Pos;
        size_t ExpStart = Pos;
        while (!eof() && peek() >= '0' && peek() <= '9')
          ++Pos;
        if (Pos == ExpStart)
          return error("expected digits in the exponent");
      }
    }
    std::string Token(Text.substr(Start, Pos - Start));
    errno = 0;
    if (Integral) {
      char *End = nullptr;
      long long V = std::strtoll(Token.c_str(), &End, 10);
      if (errno != ERANGE && End && *End == '\0') {
        Out = Value(static_cast<int64_t>(V));
        return true;
      }
      // Fall through to double on int64 overflow.
    }
    char *End = nullptr;
    errno = 0;
    double V = std::strtod(Token.c_str(), &End);
    if (!End || *End != '\0')
      return error("invalid number");
    Out = Value(V);
    return true;
  }
};

} // namespace

bool wcs::json::parse(std::string_view Text, Value &Out, std::string *Err) {
  return Parser(Text).run(Out, Err);
}

bool wcs::json::readFile(const std::string &Path, Value &Out,
                         std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = Path + ": cannot open for reading";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string ParseErr;
  if (!parse(SS.str(), Out, &ParseErr)) {
    if (Err)
      *Err = Path + ":" + ParseErr;
    return false;
  }
  return true;
}

bool wcs::json::writeFile(const std::string &Path, const Value &V,
                          std::string *Err) {
  std::ofstream OutFile(Path, std::ios::binary | std::ios::trunc);
  if (!OutFile) {
    if (Err)
      *Err = Path + ": cannot open for writing";
    return false;
  }
  OutFile << V.dump(/*Pretty=*/true) << "\n";
  OutFile.flush();
  if (!OutFile) {
    if (Err)
      *Err = Path + ": write failed";
    return false;
  }
  return true;
}
